package chameleon

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end and checks
// for its headline output. Skipped in -short mode (each example runs a
// full anonymization).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"./examples/quickstart", "published:"},
		{"./examples/socialtrust", "overlap with truth"},
		{"./examples/ppi", "neighborhood overlap"},
		{"./examples/b2b", "segment separation"},
		{"./examples/roadnet", "travel-cost distortion"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", tc.dir, err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("%s output missing %q:\n%s", tc.dir, tc.want, out)
			}
		})
	}
}
