// Package runner is the shared lifecycle harness for the long-running
// CLIs (chameleon, experiments). It owns everything that must happen
// around the actual work so interrupted runs die cleanly instead of
// messily: signal handling (first SIGINT/SIGTERM cancels the run's
// context and lets the pipeline drain; a second forces immediate exit),
// an optional wall-clock deadline, the journal begin/end bracket
// (including an end record on panic, so a crash is distinguishable from
// a kill -9), the telemetry server's startup and graceful shutdown, and
// the mapping from the run's outcome to a conventional exit code:
//
//	0   success (including deadline-degraded runs that wrote a result)
//	1   error
//	2   usage error (UsageError)
//	124 deadline expired with nothing to show
//	130 interrupted by SIGINT (143 for SIGTERM)
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/obs/expose"
	"chameleon/internal/obs/journal"
)

// UsageError marks an error as a command-line usage problem: Main (and
// ExitCode) map it to exit code 2, the convention the CLIs already used
// for flag validation failures.
type UsageError struct{ Err error }

func (e UsageError) Error() string { return e.Err.Error() }
func (e UsageError) Unwrap() error { return e.Err }

// Usagef builds a UsageError like fmt.Errorf.
func Usagef(format string, args ...any) error {
	return UsageError{Err: fmt.Errorf(format, args...)}
}

// DegradedError marks a run that was cut short (deadline, signal) but
// still wrote its best-so-far output: the journal records the run as
// "interrupted" with the cause, while the exit code stays 0 because the
// caller got a usable artifact.
type DegradedError struct{ Cause error }

func (e DegradedError) Error() string { return e.Cause.Error() }
func (e DegradedError) Unwrap() error { return e.Cause }

// Options configures one Main invocation.
type Options struct {
	// Command names the run in the journal and /runs (e.g. "chameleon");
	// it also prefixes error messages.
	Command string
	// Args are echoed into the journal's begin record.
	Args []string
	// Deadline, when positive, bounds the run's wall clock: the context
	// handed to the body expires after this long.
	Deadline time.Duration
	// JournalPath, when non-empty, appends a JSONL run journal there.
	JournalPath string
	// ServeAddr, when non-empty, serves live telemetry on that address
	// for the duration of the run.
	ServeAddr string
	// ExtraHandlers mounts additional endpoints (keyed by pattern, e.g.
	// "/query") on the telemetry server's mux, so a run can expose its
	// own HTTP plane on the same listener. Ignored without ServeAddr.
	ExtraHandlers map[string]http.Handler
	// Observer receives the run's metrics; may be nil (telemetry and the
	// journal's final snapshot then degrade gracefully).
	Observer *obs.Observer
	// Stderr is where errors and progress notes go (os.Stderr if nil).
	Stderr io.Writer

	// Test seams. signals, when non-nil, replaces the OS signal
	// subscription; exit, when non-nil, replaces os.Exit for the
	// second-signal force-quit path.
	signals chan os.Signal
	exit    func(int)
}

// Env is the harness state handed to the run body.
type Env struct {
	// Ctx is cancelled by the first SIGINT/SIGTERM and by the deadline.
	// The body must treat cancellation as a request to stop at the next
	// safe boundary and return (wrapping) Ctx.Err().
	Ctx context.Context
	// Obs echoes Options.Observer (possibly nil).
	Obs *obs.Observer
	// Journal is the open journal writer — nil-safe, so the body can
	// call WriteSpan etc. unconditionally.
	Journal *journal.Writer
	// Server is the running telemetry server (nil-safe).
	Server *expose.Server
	// RunID identifies the run in the journal and /runs ("" when neither
	// is enabled).
	RunID string
	// ServeAddr is the telemetry server's bound address ("" when -serve
	// is off). With a ":0" request this is where the port actually
	// landed — load harnesses dial it.
	ServeAddr string
}

// Main runs body inside the full lifecycle harness and returns the
// process exit code; callers end with os.Exit(runner.Main(...)). The
// journal end record is written on every path out — normal return,
// error, interrupt, deadline, even panic (the panic is re-raised after
// the record is flushed, so the crash still reaches the crash handler).
func Main(opts Options, body func(*Env) error) int {
	stderr := opts.Stderr
	if stderr == nil {
		stderr = io.Writer(os.Stderr)
	}
	report := func(err error) {
		fmt.Fprintf(stderr, "%s: %v\n", opts.Command, err)
	}

	var jw *journal.Writer
	var runID string
	if opts.JournalPath != "" {
		var err error
		jw, err = journal.Open(opts.JournalPath)
		if err != nil {
			report(err)
			return 1
		}
		runID, err = jw.Begin(opts.Command, opts.Args, time.Now())
		if err != nil {
			report(err)
			jw.Close()
			return 1
		}
	}

	// finish closes the run everywhere it is recorded: the /runs entry,
	// the telemetry server, and the journal (end record + close). It is
	// the single epilogue for success, failure, interrupt and panic.
	var srv *expose.Server
	finished := false
	finish := func(status, errMsg string) {
		if finished {
			return
		}
		finished = true
		srv.Poll() // final differ tick so the journal sees the end state
		srv.SetRunStatus(runID, status)
		if err := srv.Close(); err != nil {
			report(err)
		}
		var final obs.Snapshot
		if opts.Observer != nil {
			final = opts.Observer.Registry().Snapshot()
		}
		if err := jw.EndWithError(time.Now(), status, errMsg, final); err != nil {
			report(err)
		}
		if err := jw.Close(); err != nil {
			report(err)
		}
	}

	var boundAddr string
	if opts.ServeAddr != "" {
		exOpts := expose.Options{Handlers: opts.ExtraHandlers}
		if jw != nil {
			exOpts.OnSnapshot = func(at time.Time, s obs.Snapshot, rates map[string]float64) {
				jw.WriteSnapshot(at, s, rates)
			}
		}
		srv = expose.New(opts.Observer, exOpts)
		if runID == "" {
			runID = journal.NewRunID(time.Now())
		}
		srv.AddRun(expose.RunInfo{ID: runID, Command: opts.Command, Args: opts.Args, Start: time.Now(), Status: "running"})
		addr, err := srv.Start(opts.ServeAddr)
		if err != nil {
			report(err)
			finish("failed", err.Error())
			return 1
		}
		boundAddr = addr
		fmt.Fprintf(stderr, "%s: serving telemetry on http://%s/metrics\n", opts.Command, addr)
	}

	ctx, cancel := context.WithCancel(context.Background())
	if opts.Deadline > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), opts.Deadline)
	}
	defer cancel()

	sigc := opts.signals
	if sigc == nil {
		sigc = make(chan os.Signal, 2)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigc)
	}
	exit := opts.exit
	if exit == nil {
		exit = os.Exit
	}
	donec := make(chan struct{})
	defer close(donec)
	var caught atomic.Value // os.Signal, set before cancel()
	go func() {
		select {
		case s := <-sigc:
			caught.Store(s)
			fmt.Fprintf(stderr, "%s: %v — stopping at the next safe point (repeat to force quit)\n", opts.Command, s)
			cancel()
			select {
			case s2 := <-sigc:
				fmt.Fprintf(stderr, "%s: %v again — exiting immediately\n", opts.Command, s2)
				exit(signalExitCode(s2))
			case <-donec:
			}
		case <-donec:
		}
	}()

	// A panicking body still closes the run: the journal gets an end
	// record with status "failed" and the panic message, then the panic
	// is re-raised so the stack trace and crash semantics are preserved.
	defer func() {
		if r := recover(); r != nil {
			finish("failed", fmt.Sprintf("panic: %v", r))
			panic(r)
		}
	}()

	err := body(&Env{Ctx: ctx, Obs: opts.Observer, Journal: jw, Server: srv, RunID: runID, ServeAddr: boundAddr})

	sig, _ := caught.Load().(os.Signal)
	status, code := classify(err, sig)
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
		report(err)
	}
	finish(status, errMsg)
	return code
}

// classify maps the body's outcome (and any signal caught along the way)
// to the run's journal status and exit code.
func classify(err error, sig os.Signal) (status string, code int) {
	var usage UsageError
	var degraded DegradedError
	switch {
	case err == nil:
		return "done", 0
	case errors.As(err, &degraded):
		return "interrupted", 0
	case errors.As(err, &usage):
		return "failed", 2
	case errors.Is(err, context.DeadlineExceeded):
		return "interrupted", 124
	case errors.Is(err, context.Canceled) && sig != nil:
		return "interrupted", signalExitCode(sig)
	default:
		return "failed", 1
	}
}

// ExitCode maps an error from a plain run() function to its exit code
// (0 ok, 2 usage, 1 otherwise) — for the small CLIs that don't need the
// full Main harness but share the usage-error convention.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.As(err, new(UsageError)):
		return 2
	default:
		return 1
	}
}

// signalExitCode follows the shell convention 128+signum (SIGINT: 130,
// SIGTERM: 143), defaulting to 130 for non-POSIX signal values.
func signalExitCode(s os.Signal) int {
	if ss, ok := s.(syscall.Signal); ok {
		return 128 + int(ss)
	}
	return 130
}
