package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/obs/journal"
)

// readOneRun replays the journal at path and requires exactly one run.
func readOneRun(t *testing.T, path string) *journal.Run {
	t.Helper()
	runs, err := journal.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("journal holds %d runs, want 1", len(runs))
	}
	return runs[0]
}

func TestMainSuccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	var sb strings.Builder
	o := obs.NewObserver()
	o.Registry().Counter("work.items").Add(5)
	code := Main(Options{Command: "t", JournalPath: path, Observer: o, Stderr: &sb}, func(env *Env) error {
		if env.Ctx.Err() != nil {
			t.Error("context cancelled before any signal")
		}
		if env.RunID == "" {
			t.Error("no run ID with a journal open")
		}
		return nil
	})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, sb.String())
	}
	run := readOneRun(t, path)
	if run.Status != "done" || run.Truncated() || run.Error != "" {
		t.Errorf("run = status %q, truncated %v, error %q; want done, false, \"\"", run.Status, run.Truncated(), run.Error)
	}
	if run.Final == nil || run.Final.Counters["work.items"] != 5 {
		t.Errorf("final snapshot missing the observer's counters: %+v", run.Final)
	}
}

func TestMainError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	var sb strings.Builder
	boom := errors.New("boom")
	code := Main(Options{Command: "t", JournalPath: path, Stderr: &sb}, func(*Env) error {
		return boom
	})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	run := readOneRun(t, path)
	if run.Status != "failed" || run.Error != "boom" {
		t.Errorf("run = status %q error %q, want failed/boom", run.Status, run.Error)
	}
	if !strings.Contains(sb.String(), "t: boom") {
		t.Errorf("stderr missing the error: %q", sb.String())
	}
}

func TestMainUsageError(t *testing.T) {
	code := Main(Options{Command: "t", Stderr: &strings.Builder{}}, func(*Env) error {
		return Usagef("-k must be >= 2")
	})
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestFirstSignalCancelsContext(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	sigc := make(chan os.Signal, 2)
	var sb strings.Builder
	code := Main(Options{Command: "t", JournalPath: path, Stderr: &sb, signals: sigc}, func(env *Env) error {
		sigc <- os.Interrupt
		select {
		case <-env.Ctx.Done():
		case <-time.After(5 * time.Second):
			t.Fatal("context not cancelled after SIGINT")
		}
		return fmt.Errorf("sweep interrupted: %w", env.Ctx.Err())
	})
	if code != 130 {
		t.Fatalf("exit code = %d, want 130", code)
	}
	run := readOneRun(t, path)
	if run.Status != "interrupted" {
		t.Errorf("journal status = %q, want interrupted", run.Status)
	}
	if !strings.Contains(run.Error, "interrupted") {
		t.Errorf("journal error = %q, want the interrupt cause", run.Error)
	}
	if !strings.Contains(sb.String(), "stopping at the next safe point") {
		t.Errorf("stderr missing the interrupt notice: %q", sb.String())
	}
}

func TestSecondSignalForcesExit(t *testing.T) {
	sigc := make(chan os.Signal, 2)
	forced := make(chan int, 1)
	code := Main(Options{
		Command: "t", Stderr: &strings.Builder{}, signals: sigc,
		exit: func(c int) { forced <- c },
	}, func(env *Env) error {
		sigc <- os.Interrupt
		<-env.Ctx.Done()
		sigc <- os.Interrupt
		select {
		case <-forced:
			forced <- 130 // repost for the assertion below
		case <-time.After(5 * time.Second):
			t.Fatal("second signal did not force an exit")
		}
		return env.Ctx.Err()
	})
	if code != 130 {
		t.Fatalf("exit code = %d, want 130", code)
	}
	if c := <-forced; c != 130 {
		t.Fatalf("forced exit code = %d, want 130", c)
	}
}

func TestSIGTERMExitCode(t *testing.T) {
	sigc := make(chan os.Signal, 2)
	code := Main(Options{Command: "t", Stderr: &strings.Builder{}, signals: sigc}, func(env *Env) error {
		sigc <- syscall.SIGTERM
		<-env.Ctx.Done()
		return env.Ctx.Err()
	})
	if code != 143 {
		t.Fatalf("exit code = %d, want 143 (128+SIGTERM)", code)
	}
}

func TestDeadlineWithoutResult(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	code := Main(Options{Command: "t", JournalPath: path, Deadline: 20 * time.Millisecond, Stderr: &strings.Builder{}}, func(env *Env) error {
		select {
		case <-env.Ctx.Done():
		case <-time.After(5 * time.Second):
			t.Fatal("deadline never fired")
		}
		return env.Ctx.Err()
	})
	if code != 124 {
		t.Fatalf("exit code = %d, want 124", code)
	}
	if run := readOneRun(t, path); run.Status != "interrupted" {
		t.Errorf("journal status = %q, want interrupted", run.Status)
	}
}

func TestDegradedRunExitsZero(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	code := Main(Options{Command: "t", JournalPath: path, Deadline: 20 * time.Millisecond, Stderr: &strings.Builder{}}, func(env *Env) error {
		<-env.Ctx.Done()
		// Pretend a best-so-far artifact was written before returning.
		return DegradedError{Cause: fmt.Errorf("deadline reached, wrote best-so-far result: %w", env.Ctx.Err())}
	})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 for a degraded-but-productive run", code)
	}
	run := readOneRun(t, path)
	if run.Status != "interrupted" {
		t.Errorf("journal status = %q, want interrupted", run.Status)
	}
	if !strings.Contains(run.Error, "best-so-far") {
		t.Errorf("journal error = %q, want the degradation cause", run.Error)
	}
}

func TestPanicStillWritesEndRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic was swallowed instead of re-raised")
			}
		}()
		Main(Options{Command: "t", JournalPath: path, Stderr: &strings.Builder{}}, func(*Env) error {
			panic("kaboom")
		})
	}()
	run := readOneRun(t, path)
	if run.Status != "failed" {
		t.Errorf("journal status = %q, want failed", run.Status)
	}
	if !strings.Contains(run.Error, "kaboom") {
		t.Errorf("journal error = %q, want the panic message", run.Error)
	}
	if run.Truncated() {
		t.Error("panicking run left a truncated journal (no end record)")
	}
}

func TestCancelledWithoutSignalIsFailure(t *testing.T) {
	// A context.Canceled that the harness did not cause (no signal) is a
	// plain failure, not an interrupt.
	code := Main(Options{Command: "t", Stderr: &strings.Builder{}}, func(*Env) error {
		return context.Canceled
	})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

func TestTelemetryServerLifecycle(t *testing.T) {
	o := obs.NewObserver()
	o.Registry().Counter("c").Add(1)
	var sb strings.Builder
	code := Main(Options{Command: "t", ServeAddr: "127.0.0.1:0", Observer: o, Stderr: &sb}, func(env *Env) error {
		if env.Server == nil {
			t.Error("no telemetry server despite ServeAddr")
		}
		if env.RunID == "" {
			t.Error("no run ID despite telemetry being on")
		}
		return nil
	})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, sb.String())
	}
	if !strings.Contains(sb.String(), "serving telemetry on http://") {
		t.Errorf("stderr missing the telemetry banner: %q", sb.String())
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{Usagef("bad flag"), 2},
		{fmt.Errorf("wrapped: %w", Usagef("bad flag")), 2},
		{errors.New("boom"), 1},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
