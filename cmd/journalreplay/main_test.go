package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"chameleon/cmd/internal/runner"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// golden runs the tool with args and compares its stdout against the
// golden file, rewriting it under -update. The fixture journal uses fixed
// UTC timestamps, so the summary table (start, duration) and the -metric
// comparison are fully deterministic.
func golden(t *testing.T, goldenFile string, args ...string) {
	t.Helper()
	var out bytes.Buffer
	if err := run(&out, args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	path := filepath.Join("testdata", goldenFile)
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s (re-run with -update to regenerate):\n--- got ---\n%s--- want ---\n%s", path, out.String(), want)
	}
}

// TestSummaryGolden pins the summary table: a completed run, a failed run
// whose error lands in the ERROR column, and a truncated run (begin with
// no end record) reported with status "truncated" and a "-" duration.
func TestSummaryGolden(t *testing.T) {
	golden(t, "summary.golden", filepath.Join("testdata", "runs.jsonl"))
}

// TestMetricQualityGolden pins -metric resolving a quality stream: the
// mean is annotated with its 95% CI and sample count, runs after the
// first get a delta, and the truncated run (no final snapshot) shows
// "(absent)".
func TestMetricQualityGolden(t *testing.T) {
	golden(t, "metric_quality.golden", "-metric", "mc.quality.err", filepath.Join("testdata", "runs.jsonl"))
}

// TestMetricCounterGolden pins -metric resolving a plain counter, with no
// CI annotation.
func TestMetricCounterGolden(t *testing.T) {
	golden(t, "metric_counter.golden", "-metric", "mc.worlds_sampled", filepath.Join("testdata", "runs.jsonl"))
}

// TestMetricLatencyGolden pins -metric resolving a latency instrument by
// stat suffix against a pair of ugload runs: query.latency.all.p99 reads
// the p99 of the HDR-backed latency histogram, annotated with the
// human-readable duration, and the second run gets a delta vs the first.
func TestMetricLatencyGolden(t *testing.T) {
	golden(t, "metric_latency.golden", "-metric", "query.latency.all.p99", filepath.Join("testdata", "ugload.jsonl"))
}

func TestNoArgsIsUsageError(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, nil)
	var ue runner.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("run with no args: err = %v, want a usage error", err)
	}
	if runner.ExitCode(err) != 2 {
		t.Fatalf("ExitCode = %d, want 2", runner.ExitCode(err))
	}
}

func TestMissingFileFails(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{filepath.Join(t.TempDir(), "absent.jsonl")}); err == nil {
		t.Fatal("run on a missing journal succeeded")
	}
}
