// Command journalreplay reloads JSONL run journals written by the
// -journal flag of chameleon and experiments, summarizes each run, and
// compares metrics across runs.
//
// Usage:
//
//	journalreplay runs.jsonl                     # per-run summary table
//	journalreplay -full runs.jsonl               # + each run's final snapshot
//	journalreplay -metric mc.worlds_sampled a.jsonl b.jsonl
//	                                             # final value per run, delta vs first
//	journalreplay -json runs.jsonl               # dump replayed runs as JSON
//
// -metric resolves against the final snapshot: counters and gauges by
// name, quality streams by their mean (with the 95% CI alongside).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"chameleon/cmd/internal/runner"
	"chameleon/internal/obs/journal"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "journalreplay:", err)
		os.Exit(runner.ExitCode(err))
	}
}

// run is the whole tool behind a writer so the golden-file test can
// capture its exact output without a subprocess.
func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("journalreplay", flag.ContinueOnError)
	var (
		jsonOut = fs.Bool("json", false, "dump the replayed runs as JSON")
		metric  = fs.String("metric", "", "compare this metric's final value across runs")
		full    = fs.Bool("full", false, "print each run's final metrics snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return runner.Usagef("%v", err)
	}
	if fs.NArg() == 0 {
		return runner.Usagef("at least one journal file is required")
	}

	var runs []*journal.Run
	for _, path := range fs.Args() {
		rs, err := journal.ReadFile(path)
		if err != nil {
			return err
		}
		runs = append(runs, rs...)
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(runs)
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "RUN\tCOMMAND\tSTATUS\tSTART\tDURATION\tSNAPSHOTS\tSPANS\tERROR")
	for _, run := range runs {
		dur := "-"
		if !run.End.IsZero() && !run.Start.IsZero() {
			dur = run.End.Sub(run.Start).Round(time.Millisecond).String()
		}
		status := run.Status
		if run.Truncated() {
			// No end record at all: the process died without flushing one
			// (crash, kill -9) or is still in flight. Distinct from
			// "interrupted", which means the handler got to say goodbye.
			status = "truncated"
		}
		errCol := "-"
		if run.Error != "" {
			errCol = run.Error
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\t%d\t%s\n",
			run.ID, run.Command, status, run.Start.Format(time.RFC3339), dur,
			len(run.Snapshots), len(run.Spans), errCol)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if *metric != "" {
		fmt.Fprintf(out, "\nfinal %s per run:\n", *metric)
		tw = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		var base float64
		haveBase := false
		for _, run := range runs {
			v, detail, ok := lookupMetric(run, *metric)
			if !ok {
				fmt.Fprintf(tw, "%s\t(absent)\t\n", run.ID)
				continue
			}
			delta := ""
			if haveBase && base != 0 {
				delta = fmt.Sprintf("%+.2f%% vs first", 100*(v-base)/base)
			} else if !haveBase {
				base, haveBase = v, true
			}
			fmt.Fprintf(tw, "%s\t%g%s\t%s\n", run.ID, v, detail, delta)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if *full {
		for _, run := range runs {
			fmt.Fprintf(out, "\n=== %s (%s, %s) ===\n", run.ID, run.Command, run.Status)
			if run.Error != "" {
				fmt.Fprintf(out, "stopped by: %s\n", run.Error)
			}
			if run.Final == nil {
				fmt.Fprintln(out, "(no end record: run truncated or still in flight)")
				continue
			}
			if err := run.Final.WriteText(out); err != nil {
				return err
			}
		}
	}
	return nil
}

// lookupMetric resolves a dotted metric name against a run's final
// snapshot: counter, gauge, quality-stream mean (annotated with its
// 95% CI), then latency instruments via a stat suffix —
// "query.latency.all.p99" reads the p99 of the "query.latency.all"
// latency histogram (suffixes: p50 p90 p99 p999 min max count mean;
// nanosecond values are annotated with the human-readable duration).
func lookupMetric(run *journal.Run, name string) (value float64, detail string, ok bool) {
	if run.Final == nil {
		return 0, "", false
	}
	if v, ok := run.Final.Counters[name]; ok {
		return float64(v), "", true
	}
	if v, ok := run.Final.Gauges[name]; ok {
		return v, "", true
	}
	if q, ok := run.Final.Quality[name]; ok {
		return q.Mean, fmt.Sprintf(" (ci95 [%.6g, %.6g], n=%d)", q.CI95Lo, q.CI95Hi, q.Count), true
	}
	if i := strings.LastIndex(name, "."); i > 0 {
		if l, ok := run.Final.Latencies[name[:i]]; ok {
			ns := func(v int64) (float64, string, bool) {
				return float64(v), fmt.Sprintf(" (%v)", time.Duration(v)), true
			}
			switch name[i+1:] {
			case "p50":
				return ns(l.P50NS)
			case "p90":
				return ns(l.P90NS)
			case "p99":
				return ns(l.P99NS)
			case "p999":
				return ns(l.P999NS)
			case "min":
				return ns(l.MinNS)
			case "max":
				return ns(l.MaxNS)
			case "mean":
				return ns(int64(l.Mean()))
			case "count":
				return float64(l.Count), "", true
			}
		}
	}
	return 0, "", false
}
