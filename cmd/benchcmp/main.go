// Command benchcmp compares two benchmark-artifact JSON files (the
// BENCH_obs.json / BENCH_reliability.json schema written by
// scripts/check.sh: an array of {name, ns_per_op, allocs_per_op,
// iterations} records) and fails when any benchmark present in both got
// slower than the allowed budget.
//
// Usage:
//
//	benchcmp [-max-slowdown 25] baseline.json current.json
//
// Exit status 1 means at least one regression beyond the budget;
// benchmarks present in only one file are reported but never fail the
// gate (they are additions or retirements, not regressions).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

func main() {
	maxSlowdown := flag.Float64("max-slowdown", 25, "fail when ns_per_op grows more than this percentage")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "benchcmp: want exactly two arguments: baseline.json current.json")
		flag.Usage()
		os.Exit(2)
	}
	base := load(flag.Arg(0))
	cur := load(flag.Arg(1))

	baseByName := map[string]entry{}
	for _, e := range base {
		baseByName[e.Name] = e
	}
	seen := map[string]bool{}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "BENCHMARK\tBASE ns/op\tNOW ns/op\tDELTA\t")
	regressions := 0
	for _, e := range cur {
		b, ok := baseByName[e.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\tnew\t\n", e.Name, e.NsPerOp)
			continue
		}
		seen[e.Name] = true
		if b.NsPerOp <= 0 {
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t(zero baseline)\t\n", e.Name, b.NsPerOp, e.NsPerOp)
			continue
		}
		pct := 100 * (e.NsPerOp - b.NsPerOp) / b.NsPerOp
		mark := ""
		if pct > *maxSlowdown {
			mark = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\n", e.Name, b.NsPerOp, e.NsPerOp, pct, mark)
	}
	for _, b := range base {
		if !seen[b.Name] {
			found := false
			for _, e := range cur {
				if e.Name == b.Name {
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(tw, "%s\t%.0f\t-\tretired\t\n", b.Name, b.NsPerOp)
			}
		}
	}
	tw.Flush()

	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d benchmark(s) regressed more than %.0f%%\n", regressions, *maxSlowdown)
		os.Exit(1)
	}
}

func load(path string) []entry {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	var out []entry
	if err := json.Unmarshal(raw, &out); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %s: %v\n", path, err)
		os.Exit(2)
	}
	return out
}
