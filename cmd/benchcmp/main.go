// Command benchcmp compares two benchmark-artifact JSON files (the
// BENCH_obs.json / BENCH_reliability.json / BENCH_mc.json /
// BENCH_format.json schema written by scripts/check.sh: an array of
// {name, ns_per_op, allocs_per_op, iterations, samples_to_target_rse?,
// bytes_on_disk?} records) and fails when any benchmark present in both
// got slower than the allowed budget.
//
// Usage:
//
//	benchcmp [-max-slowdown 25] [-skip-ns] baseline.json current.json
//
// Two quantities are gated against the same percentage budget: ns_per_op
// (unless -skip-ns) and, where present in both files, the
// samples_to_target_rse sample-efficiency metric — a variance-reduction
// regression shows up there long before it moves wall time. -skip-ns
// exists for artifacts like BENCH_mc.json whose gated quantity is the
// sample count: their wall time is dominated by the sample count itself,
// so gating both would double-count the noise.
//
// Exit status 1 means at least one regression beyond the budget;
// benchmarks present in only one file are reported but never fail the
// gate (they are additions or retirements, not regressions).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
	// SamplesToTargetRSE is the Monte Carlo sample-efficiency metric of
	// the adaptive-sampling benchmarks: worlds needed to reach the target
	// relative standard error. Zero when the benchmark does not report it.
	SamplesToTargetRSE float64 `json:"samples_to_target_rse,omitempty"`
	// Load-harness extension (BENCH_load.json, written by ugload): tail
	// latency quantiles, throughput and error rate. P99NS is gated like
	// ns_per_op (even under -skip-ns — the whole point of the artifact
	// is its tail); the rest are informational.
	P50NS     int64   `json:"p50_ns,omitempty"`
	P99NS     int64   `json:"p99_ns,omitempty"`
	P999NS    int64   `json:"p999_ns,omitempty"`
	QPS       float64 `json:"qps,omitempty"`
	ErrorRate float64 `json:"error_rate,omitempty"`
	// Format-artifact extension (BENCH_format.json): encoded size of the
	// benchmark graph in that format. Size is deterministic, so unlike
	// wall time any growth beyond the budget is a real encoding
	// regression; it is gated even under -skip-ns.
	BytesOnDisk int64 `json:"bytes_on_disk,omitempty"`
}

func main() {
	maxSlowdown := flag.Float64("max-slowdown", 25, "fail when a gated metric grows more than this percentage")
	skipNs := flag.Bool("skip-ns", false, "do not gate ns_per_op (for sample-efficiency artifacts where wall time is a function of the gated sample count)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "benchcmp: want exactly two arguments: baseline.json current.json")
		flag.Usage()
		os.Exit(2)
	}
	base := load(flag.Arg(0))
	cur := load(flag.Arg(1))

	baseByName := map[string]entry{}
	for _, e := range base {
		baseByName[e.Name] = e
	}
	seen := map[string]bool{}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "BENCHMARK\tBASE ns/op\tNOW ns/op\tDELTA\tSAMPLES\t")
	regressions := 0
	for _, e := range cur {
		b, ok := baseByName[e.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\tnew\t%s\t\n", e.Name, e.NsPerOp, samplesCell(entry{}, e))
			continue
		}
		seen[e.Name] = true
		if b.NsPerOp <= 0 {
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t(zero baseline)\t%s\t\n", e.Name, b.NsPerOp, e.NsPerOp, samplesCell(b, e))
			continue
		}
		pct := 100 * (e.NsPerOp - b.NsPerOp) / b.NsPerOp
		mark := ""
		if !*skipNs && pct > *maxSlowdown {
			mark = "REGRESSION"
			regressions++
		}
		if b.SamplesToTargetRSE > 0 && e.SamplesToTargetRSE > 0 {
			if 100*(e.SamplesToTargetRSE-b.SamplesToTargetRSE)/b.SamplesToTargetRSE > *maxSlowdown {
				mark = "REGRESSION (samples)"
				regressions++
			}
		}
		if b.P99NS > 0 && e.P99NS > 0 {
			if 100*float64(e.P99NS-b.P99NS)/float64(b.P99NS) > *maxSlowdown {
				mark = "REGRESSION (p99)"
				regressions++
			}
		}
		if b.BytesOnDisk > 0 && e.BytesOnDisk > 0 {
			if 100*float64(e.BytesOnDisk-b.BytesOnDisk)/float64(b.BytesOnDisk) > *maxSlowdown {
				mark = "REGRESSION (bytes)"
				regressions++
			}
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\t%s\n", e.Name, b.NsPerOp, e.NsPerOp, pct, samplesCell(b, e), mark)
	}
	for _, b := range base {
		if !seen[b.Name] {
			found := false
			for _, e := range cur {
				if e.Name == b.Name {
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(tw, "%s\t%.0f\t-\tretired\t\t\n", b.Name, b.NsPerOp)
			}
		}
	}
	tw.Flush()

	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d benchmark(s) regressed more than %.0f%%\n", regressions, *maxSlowdown)
		os.Exit(1)
	}
}

// samplesCell renders the sample-efficiency column: "base->now" when both
// sides report the metric, the single value when only one does, empty
// otherwise.
func samplesCell(b, e entry) string {
	switch {
	case b.SamplesToTargetRSE > 0 && e.SamplesToTargetRSE > 0:
		return fmt.Sprintf("%.0f->%.0f", b.SamplesToTargetRSE, e.SamplesToTargetRSE)
	case e.SamplesToTargetRSE > 0:
		return fmt.Sprintf("%.0f", e.SamplesToTargetRSE)
	case b.SamplesToTargetRSE > 0:
		return fmt.Sprintf("%.0f->-", b.SamplesToTargetRSE)
	}
	return ""
}

func load(path string) []entry {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	var out []entry
	if err := json.Unmarshal(raw, &out); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %s: %v\n", path, err)
		os.Exit(2)
	}
	return out
}
