// Command ugquery answers reliability queries over an uncertain graph —
// the workloads an anonymized release is published for.
//
// Usage:
//
//	ugquery -g graph.tsv -pair 3,17            # two-terminal reliability
//	ugquery -g graph.tsv -knn 3 -k 10          # reliability k-NN of vertex 3
//	ugquery -g graph.tsv -relevance -top 10    # most reliability-relevant edges
//	ugquery -g graph.tsv -components           # support components
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"chameleon"
	"chameleon/cmd/internal/runner"
)

type queryFlags struct {
	gPath      string
	pair       string
	knn        int
	k          int
	relevance  bool
	top        int
	components bool
	samples    int
	seed       uint64
}

func main() {
	var f queryFlags
	flag.StringVar(&f.gPath, "g", "", "uncertain graph (TSV or binary)")
	flag.StringVar(&f.pair, "pair", "", "two-terminal reliability of 'u,v'")
	flag.IntVar(&f.knn, "knn", -1, "reliability k-NN of this vertex")
	flag.IntVar(&f.k, "k", 10, "neighborhood size for -knn")
	flag.BoolVar(&f.relevance, "relevance", false, "rank edges by reliability relevance")
	flag.IntVar(&f.top, "top", 10, "rows to print for -relevance")
	flag.BoolVar(&f.components, "components", false, "list support components")
	flag.IntVar(&f.samples, "samples", 1000, "Monte Carlo samples")
	flag.Uint64Var(&f.seed, "seed", 1, "random seed")
	flag.Parse()

	err := run(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ugquery:", err)
		if errors.As(err, new(runner.UsageError)) {
			flag.Usage()
		}
	}
	os.Exit(runner.ExitCode(err))
}

func run(f queryFlags) error {
	if f.gPath == "" {
		return runner.Usagef("-g is required")
	}
	g, err := chameleon.LoadGraph(f.gPath)
	if err != nil {
		return err
	}

	ran := false
	if f.pair != "" {
		ran = true
		u, v, err := parsePair(f.pair, g.NumNodes())
		if err != nil {
			return err
		}
		r := chameleon.PairReliability(g, u, v, f.samples, f.seed)
		fmt.Printf("R(%d,%d) = %.4f\n", u, v, r)
	}
	if f.knn >= 0 {
		ran = true
		nbrs, err := chameleon.ReliabilityKNN(g, chameleon.NodeID(f.knn), f.k, f.samples, f.seed)
		if err != nil {
			return err
		}
		rel := chameleon.ReliabilityFrom(g, chameleon.NodeID(f.knn), f.samples, f.seed)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "reliability %d-NN of vertex %d:\n", f.k, f.knn)
		for i, v := range nbrs {
			fmt.Fprintf(tw, "  %d\t%d\t%.4f\n", i+1, v, rel[v])
		}
		tw.Flush()
	}
	if f.relevance {
		ran = true
		rel := chameleon.EdgeRelevance(g, f.samples, f.seed)
		idx := make([]int, len(rel))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return rel[idx[a]] > rel[idx[b]] })
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "most reliability-relevant edges:")
		limit := f.top
		if limit > len(idx) {
			limit = len(idx)
		}
		for i := 0; i < limit; i++ {
			e := g.Edge(idx[i])
			fmt.Fprintf(tw, "  (%d,%d)\tp=%.3f\tERR=%.2f\n", e.U, e.V, e.P, rel[idx[i]])
		}
		tw.Flush()
	}
	if f.components {
		ran = true
		comps := g.SupportComponents()
		fmt.Printf("%d support components; sizes of the largest 10:", len(comps))
		for i, comp := range comps {
			if i == 10 {
				break
			}
			fmt.Printf(" %d", len(comp))
		}
		fmt.Println()
	}
	if !ran {
		return runner.Usagef("nothing to do (pass -pair, -knn, -relevance or -components)")
	}
	return nil
}

func parsePair(s string, n int) (chameleon.NodeID, chameleon.NodeID, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want 'u,v', got %q", s)
	}
	u, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, err
	}
	if u < 0 || v < 0 || u >= n || v >= n {
		return 0, 0, fmt.Errorf("pair (%d,%d) out of range (n=%d)", u, v, n)
	}
	return chameleon.NodeID(u), chameleon.NodeID(v), nil
}
