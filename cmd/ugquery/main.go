// Command ugquery answers reliability queries over an uncertain graph —
// the workloads an anonymized release is published for.
//
// Usage:
//
//	ugquery -g graph.tsv -pair 3,17            # two-terminal reliability
//	ugquery -g graph.tsv -knn 3 -k 10          # reliability k-NN of vertex 3
//	ugquery -g graph.tsv -relevance -top 10    # most reliability-relevant edges
//	ugquery -g graph.tsv -components           # support components
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"chameleon"
)

func main() {
	var (
		gPath      = flag.String("g", "", "uncertain graph (TSV or binary)")
		pair       = flag.String("pair", "", "two-terminal reliability of 'u,v'")
		knn        = flag.Int("knn", -1, "reliability k-NN of this vertex")
		k          = flag.Int("k", 10, "neighborhood size for -knn")
		relevance  = flag.Bool("relevance", false, "rank edges by reliability relevance")
		top        = flag.Int("top", 10, "rows to print for -relevance")
		components = flag.Bool("components", false, "list support components")
		samples    = flag.Int("samples", 1000, "Monte Carlo samples")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *gPath == "" {
		fmt.Fprintln(os.Stderr, "ugquery: -g is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := chameleon.LoadGraph(*gPath)
	fail(err)

	ran := false
	if *pair != "" {
		ran = true
		u, v, err := parsePair(*pair, g.NumNodes())
		fail(err)
		r := chameleon.PairReliability(g, u, v, *samples, *seed)
		fmt.Printf("R(%d,%d) = %.4f\n", u, v, r)
	}
	if *knn >= 0 {
		ran = true
		nbrs, err := chameleon.ReliabilityKNN(g, chameleon.NodeID(*knn), *k, *samples, *seed)
		fail(err)
		rel := chameleon.ReliabilityFrom(g, chameleon.NodeID(*knn), *samples, *seed)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "reliability %d-NN of vertex %d:\n", *k, *knn)
		for i, v := range nbrs {
			fmt.Fprintf(tw, "  %d\t%d\t%.4f\n", i+1, v, rel[v])
		}
		tw.Flush()
	}
	if *relevance {
		ran = true
		rel := chameleon.EdgeRelevance(g, *samples, *seed)
		idx := make([]int, len(rel))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return rel[idx[a]] > rel[idx[b]] })
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "most reliability-relevant edges:")
		limit := *top
		if limit > len(idx) {
			limit = len(idx)
		}
		for i := 0; i < limit; i++ {
			e := g.Edge(idx[i])
			fmt.Fprintf(tw, "  (%d,%d)\tp=%.3f\tERR=%.2f\n", e.U, e.V, e.P, rel[idx[i]])
		}
		tw.Flush()
	}
	if *components {
		ran = true
		comps := g.SupportComponents()
		fmt.Printf("%d support components; sizes of the largest 10:", len(comps))
		for i, comp := range comps {
			if i == 10 {
				break
			}
			fmt.Printf(" %d", len(comp))
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "ugquery: nothing to do (pass -pair, -knn, -relevance or -components)")
		os.Exit(2)
	}
}

func parsePair(s string, n int) (chameleon.NodeID, chameleon.NodeID, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want 'u,v', got %q", s)
	}
	u, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, err
	}
	if u < 0 || v < 0 || u >= n || v >= n {
		return 0, 0, fmt.Errorf("pair (%d,%d) out of range (n=%d)", u, v, n)
	}
	return chameleon.NodeID(u), chameleon.NodeID(v), nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ugquery:", err)
		os.Exit(1)
	}
}
