// Command chameleond is the anonymization job daemon: a long-running
// service that accepts (k, ε)-obfuscation jobs over HTTP, runs them
// through the same σ-search as the chameleon CLI, and keeps every job
// durable in a spool directory so a crash or restart never loses work.
//
// Usage:
//
//	chameleond -serve :8080 -spool /var/spool/chameleon
//
// The job API mounts next to the telemetry endpoints on one listener:
//
//	POST   /jobs                  submit a job (JSON spec naming a
//	                              server-side graph_path, or multipart
//	                              "spec" + "graph" upload) → 202 + job ID
//	GET    /jobs                  list all jobs
//	GET    /jobs/{id}             status with live σ-search progress/ETA
//	DELETE /jobs/{id}             cancel
//	GET    /jobs/{id}/result      the anonymized graph (v2 binary)
//	GET    /jobs/{id}/certificate independent privacy re-verification
//	GET    /metrics               Prometheus text (jobs.* series included)
//
// Durability: every job's input graph, state record and σ-search
// checkpoints live under the spool; a daemon killed mid-search (even
// SIGKILL) and restarted on the same spool re-enqueues its in-flight
// jobs and resumes them from the last checkpoint, bit-identical to an
// uninterrupted run. SIGINT/SIGTERM shut down gracefully: running
// searches checkpoint at their next safe point and park for the next
// daemon life.
//
// Admission control: -max-jobs bounds concurrency, -queue the waiting
// line; a submission beyond either (or beyond the -max-pending-seconds
// worker-seconds budget) is rejected with 429 and a Retry-After hint
// instead of being silently queued forever.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"chameleon"
	"chameleon/cmd/internal/runner"
	"chameleon/internal/jobs"
	"chameleon/internal/query"
	"chameleon/internal/uncertain"
)

func main() {
	var (
		serveAt   = flag.String("serve", ":8080", "address for the combined job API + telemetry listener")
		spool     = flag.String("spool", "", "spool directory for durable job state (required)")
		maxJobs   = flag.Int("max-jobs", 2, "jobs anonymizing concurrently")
		queueLen  = flag.Int("queue", 16, "admission queue depth; submissions beyond it get 429")
		maxPend   = flag.Float64("max-pending-seconds", 0, "reject submissions while estimated pending worker-seconds exceed this budget (0 = queue-depth gate only)")
		wPerJob   = flag.Int("workers-per-job", 0, "sampling parallelism per job (0 = GOMAXPROCS / max-jobs)")
		ckptEvery = flag.Int("checkpoint-every", 1, "σ-search checkpoint cadence in genobf calls (crash-recovery granularity; -1 = interrupt-only)")
		maxUpload = flag.Int64("max-upload", 0, "submission body size limit in bytes (0 = 256 MiB)")
		queryPath = flag.String("query", "", "also serve /query over this graph file")
		querySmp  = flag.Int("query-samples", 200, "Monte Carlo budget for /query estimators")
		querySeed = flag.Uint64("query-seed", 1, "seed for /query estimators")
		jrnPath   = flag.String("journal", "", "append a JSONL run journal to this file")
		verbose   = flag.Bool("v", false, "log structured progress to stderr")
	)
	flag.Parse()
	if *spool == "" {
		fmt.Fprintln(os.Stderr, "chameleond: -spool is required")
		flag.Usage()
		os.Exit(2)
	}
	if *serveAt == "" {
		fmt.Fprintln(os.Stderr, "chameleond: -serve is required")
		flag.Usage()
		os.Exit(2)
	}

	o := chameleon.NewObserver()
	if *verbose {
		o.Logger = chameleon.NewLogger(os.Stderr)
	}

	store, err := jobs.NewStore(*spool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chameleond:", err)
		os.Exit(1)
	}
	mgr := jobs.NewManager(jobs.Config{
		Store:             store,
		MaxConcurrent:     *maxJobs,
		QueueDepth:        *queueLen,
		MaxPendingSeconds: *maxPend,
		WorkersPerJob:     *wPerJob,
		CheckpointEvery:   *ckptEvery,
		Obs:               o,
	})
	api := jobs.NewAPI(mgr)
	api.MaxUploadBytes = *maxUpload

	// The jobs subtree needs both patterns on the expose mux: "/jobs"
	// matches the collection, "/jobs/" the per-job paths. The API's own
	// mux routes methods and IDs from there.
	handlers := map[string]http.Handler{"/jobs": api, "/jobs/": api}
	if *queryPath != "" {
		qg, err := uncertain.LoadFile(*queryPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chameleond:", err)
			os.Exit(1)
		}
		eng := query.New(qg, query.Options{Samples: *querySmp, Seed: *querySeed, Obs: o})
		handlers["/query"] = eng.Handler()
	}

	os.Exit(runner.Main(runner.Options{
		Command:       "chameleond",
		Args:          os.Args[1:],
		JournalPath:   *jrnPath,
		ServeAddr:     *serveAt,
		Observer:      o,
		ExtraHandlers: handlers,
	}, func(env *runner.Env) error {
		defer store.Close()
		recovered, err := mgr.Start(env.Ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "chameleond: spool %s ready, %d job(s) recovered; job API on http://%s/jobs\n",
			store.Dir(), recovered, env.ServeAddr)

		// The daemon's work happens on the listener and the worker pool;
		// the body just waits for shutdown, then drains.
		<-env.Ctx.Done()
		mgr.Wait()
		fmt.Fprintln(os.Stderr, "chameleond: workers drained; in-flight jobs parked for recovery")
		// A signalled shutdown is the daemon's normal exit: report
		// "interrupted" in the journal but exit 0 — the spool holds
		// everything needed to pick the work back up.
		return runner.DegradedError{Cause: env.Ctx.Err()}
	}))
}
