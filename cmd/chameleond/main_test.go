package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"chameleon/internal/jobs"
	"chameleon/internal/uncertain"
)

// buildTools compiles the named cmd/ binaries into dir once per test.
func buildTools(t *testing.T, dir string, tools ...string) map[string]string {
	t.Helper()
	if testing.Short() {
		t.Skip("daemon e2e test skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	bins := map[string]string{}
	for _, tool := range tools {
		bin := filepath.Join(dir, tool)
		if out, err := exec.Command("go", "build", "-o", bin, "chameleon/cmd/"+tool).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
		bins[tool] = bin
	}
	return bins
}

// daemon is one running chameleond subprocess.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon launches chameleond and waits for its announced address.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-serve", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the daemon's own readiness line — it prints after the
	// manager has started, so the job API is live (the runner announces
	// the listener earlier, before the scheduler accepts work).
	addrRe := regexp.MustCompile(`job API on http://([^/\s]+)/jobs`)
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("chameleond never announced its job API address")
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained
	return &daemon{cmd: cmd, addr: addr}
}

// stop shuts the daemon down gracefully and checks the exit code is 0
// (a signalled shutdown is the daemon's normal exit).
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("delivering SIGINT: %v", err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon shutdown exit: %v", err)
	}
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

// submitMultipart uploads a graph file with the given spec JSON and
// returns the raw response.
func submitMultipart(t *testing.T, d *daemon, spec string, graphPath string) *http.Response {
	t.Helper()
	graph, err := os.ReadFile(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormField("spec")
	fw.Write([]byte(spec))
	fw, _ = mw.CreateFormFile("graph", filepath.Base(graphPath))
	fw.Write(graph)
	mw.Close()
	resp, err := http.Post(d.url("/jobs"), mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// jobStatus fetches one job's status document.
func jobStatus(t *testing.T, d *daemon, id string) jobs.Status {
	t.Helper()
	resp, err := http.Get(d.url("/jobs/" + id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /jobs/%s = %d: %s", id, resp.StatusCode, body)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// pollDone polls a job until it leaves the in-flight states, recording
// the progress samples seen along the way.
func pollDone(t *testing.T, d *daemon, id string, budget time.Duration) (jobs.Status, []float64) {
	t.Helper()
	deadline := time.Now().Add(budget)
	var progress []float64
	for {
		st := jobStatus(t, d, id)
		if st.State == jobs.StateDone || st.State == jobs.StateFailed || st.State == jobs.StateCancelled {
			return st, progress
		}
		if st.Progress > 0 {
			progress = append(progress, st.Progress)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, budget)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetchResultCanonical downloads a job's result and re-encodes it in the
// canonical v1 binary form for byte comparison.
func fetchResultCanonical(t *testing.T, d *daemon, id string) []byte {
	t.Helper()
	resp, err := http.Get(d.url("/jobs/" + id + "/result"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("result fetch = %d: %s", resp.StatusCode, body)
	}
	g, err := uncertain.ReadAuto(resp.Body)
	if err != nil {
		t.Fatalf("result does not decode: %v", err)
	}
	var buf bytes.Buffer
	if err := uncertain.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDaemonE2E drives the full daemon lifecycle: submit a job by graph
// upload, watch its progress monotonically advance, fetch the result and
// check it is byte-identical to a direct chameleon CLI run with the same
// parameters and seed, verify the certificate endpoint certifies it, and
// shut the daemon down cleanly.
func TestDaemonE2E(t *testing.T) {
	dir := t.TempDir()
	bins := buildTools(t, dir, "genug", "chameleon", "chameleond")

	graphPath := filepath.Join(dir, "g.tsv")
	basePath := filepath.Join(dir, "base.bin")
	if out, err := exec.Command(bins["genug"], "-topology", "ba", "-nodes", "150", "-degree", "2",
		"-probs", "discrete", "-seed", "3", "-o", graphPath).CombinedOutput(); err != nil {
		t.Fatalf("genug: %v\n%s", err, out)
	}
	// The reference: a direct CLI run, canonical binary output.
	if out, err := exec.Command(bins["chameleon"], "-in", graphPath, "-out", basePath, "-binary",
		"-k", "5", "-eps", "0.05", "-samples", "100", "-seed", "7", "-q", "-workers", "2").CombinedOutput(); err != nil {
		t.Fatalf("chameleon baseline: %v\n%s", err, out)
	}
	base, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}

	spool := filepath.Join(dir, "spool")
	d := startDaemon(t, bins["chameleond"], "-spool", spool, "-max-jobs", "2", "-workers-per-job", "2")

	// The telemetry index must advertise the mounted job plane.
	iresp, err := http.Get(d.url("/"))
	if err != nil {
		t.Fatal(err)
	}
	index, _ := io.ReadAll(iresp.Body)
	iresp.Body.Close()
	if !strings.Contains(string(index), "/jobs") {
		t.Errorf("index page does not list the job plane:\n%s", index)
	}

	resp := submitMultipart(t, d, `{"k": 5, "eps": 0.05, "samples": 100, "seed": 7}`, graphPath)
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var job jobs.Job
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if job.ID == "" || job.Nodes != 150 {
		t.Fatalf("submitted job = %+v", job)
	}

	st, progress := pollDone(t, d, job.ID, 2*time.Minute)
	if st.State != jobs.StateDone {
		t.Fatalf("job finished %s (%s), want done", st.State, st.Job.Error)
	}
	// Progress, when observed at all, must never move backwards.
	for i := 1; i < len(progress); i++ {
		if progress[i] < progress[i-1] {
			t.Fatalf("progress moved backwards: %v", progress)
		}
	}

	// Byte-identical to the direct CLI run: same seed, same search, same
	// published graph.
	if got := fetchResultCanonical(t, d, job.ID); !bytes.Equal(got, base) {
		t.Fatalf("daemon result differs from the CLI run (%d vs %d bytes)", len(got), len(base))
	}

	// The certificate endpoint re-verifies the stored artifacts.
	cresp, err := http.Get(d.url("/jobs/" + job.ID + "/certificate"))
	if err != nil {
		t.Fatal(err)
	}
	var cert jobs.Certificate
	json.NewDecoder(cresp.Body).Decode(&cert)
	cresp.Body.Close()
	if !cert.Valid || cert.K != 5 {
		t.Fatalf("certificate = %+v, want valid k=5", cert)
	}
	if cert.EpsilonTilde > 0.05 {
		t.Fatalf("certificate eps~ = %v exceeds the claim", cert.EpsilonTilde)
	}

	// The listing shows the job done.
	lresp, err := http.Get(d.url("/jobs"))
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []jobs.Status `json:"jobs"`
	}
	json.NewDecoder(lresp.Body).Decode(&listing)
	lresp.Body.Close()
	if len(listing.Jobs) != 1 || listing.Jobs[0].State != jobs.StateDone {
		t.Fatalf("listing = %+v", listing)
	}

	d.stop(t)
}

// TestDaemonCrashRecovery SIGKILLs the daemon mid-σ-search and restarts
// it on the same spool: the job must resume from its checkpoint and
// publish a graph byte-identical to an uninterrupted run.
func TestDaemonCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	bins := buildTools(t, dir, "genug", "chameleon", "chameleond", "certify")

	graphPath := filepath.Join(dir, "big.tsv")
	basePath := filepath.Join(dir, "base.bin")
	if out, err := exec.Command(bins["genug"], "-topology", "ba", "-nodes", "3000", "-degree", "5",
		"-probs", "uniform", "-seed", "7", "-o", graphPath).CombinedOutput(); err != nil {
		t.Fatalf("genug: %v\n%s", err, out)
	}
	// Heavy enough that the search holds many seconds of work past its
	// first checkpoint — the kill window (same sizing as the CLI
	// interrupt test).
	spec := fmt.Sprintf(`{"k": 60, "eps": 0.01, "samples": 2000, "seed": 3, "graph_path": %q}`, graphPath)
	if out, err := exec.Command(bins["chameleon"], "-in", graphPath, "-out", basePath, "-binary",
		"-k", "60", "-eps", "0.01", "-samples", "2000", "-seed", "3", "-q", "-workers", "2").CombinedOutput(); err != nil {
		t.Fatalf("chameleon baseline: %v\n%s", err, out)
	}
	base, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}

	spool := filepath.Join(dir, "spool")
	d := startDaemon(t, bins["chameleond"], "-spool", spool, "-max-jobs", "1", "-workers-per-job", "2")

	resp, err := http.Post(d.url("/jobs"), "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var job jobs.Job
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()

	// Wait for a valid checkpoint with search progress, then SIGKILL —
	// no graceful anything; the spool must carry the whole truth.
	ckptPath := filepath.Join(spool, job.ID, "checkpoint.json")
	type sigmaFile struct {
		Version     int `json:"version"`
		GenObfCalls int `json:"genobf_calls"`
	}
	killDeadline := time.Now().Add(2 * time.Minute)
	for {
		if data, err := os.ReadFile(ckptPath); err == nil {
			var ck sigmaFile
			if json.Unmarshal(data, &ck) == nil && ck.GenObfCalls >= 1 {
				break
			}
		}
		if time.Now().After(killDeadline) {
			d.cmd.Process.Kill()
			d.cmd.Wait()
			t.Fatalf("no checkpoint appeared at %s", ckptPath)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait() // exit code is meaningless after SIGKILL

	// Restart on the same spool: the job must come back and finish.
	d2 := startDaemon(t, bins["chameleond"], "-spool", spool, "-max-jobs", "1", "-workers-per-job", "2")
	st, _ := pollDone(t, d2, job.ID, 3*time.Minute)
	if st.State != jobs.StateDone {
		t.Fatalf("recovered job finished %s (%s), want done", st.State, st.Job.Error)
	}
	if st.Recovered < 1 {
		t.Fatalf("Recovered = %d, want >= 1", st.Recovered)
	}

	// Bit-identical to the uninterrupted CLI run — the whole point of
	// checkpoint-backed recovery.
	got := fetchResultCanonical(t, d2, job.ID)
	if !bytes.Equal(got, base) {
		t.Fatalf("recovered result differs from the uninterrupted run (%d vs %d bytes)", len(got), len(base))
	}

	// The independent auditor certifies the recovered release.
	recoveredPath := filepath.Join(dir, "recovered.bin")
	if err := os.WriteFile(recoveredPath, got, 0o644); err != nil {
		t.Fatal(err)
	}
	cout, err := exec.Command(bins["certify"], "-orig", graphPath, "-pub", recoveredPath,
		"-k", "60", "-eps", "0.01").CombinedOutput()
	if err != nil {
		t.Fatalf("certify refused the recovered release: %v\n%s", err, cout)
	}
	if !strings.Contains(string(cout), "CERTIFIED") {
		t.Fatalf("certify verdict missing:\n%s", cout)
	}

	// The spool's event journal recorded the whole story across both
	// daemon lives.
	evs, err := jobs.ReadEvents(spool)
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	for _, ev := range evs {
		if ev.JobID == job.ID {
			seen = append(seen, ev.Event)
		}
	}
	joined := strings.Join(seen, ",")
	for _, want := range []string{"submitted", "started", "recovered", "done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("event journal missing %q: %v", want, seen)
		}
	}

	d2.stop(t)
}

// TestDaemonLoad saturates a deliberately tiny daemon with concurrent
// submissions: accepted jobs must all complete, overload must shed with
// 429 + Retry-After, and the telemetry and query planes must stay
// responsive throughout.
func TestDaemonLoad(t *testing.T) {
	dir := t.TempDir()
	bins := buildTools(t, dir, "genug", "chameleond")

	graphPath := filepath.Join(dir, "g.tsv")
	if out, err := exec.Command(bins["genug"], "-topology", "ba", "-nodes", "300", "-degree", "3",
		"-probs", "uniform", "-seed", "5", "-o", graphPath).CombinedOutput(); err != nil {
		t.Fatalf("genug: %v\n%s", err, out)
	}

	spool := filepath.Join(dir, "spool")
	d := startDaemon(t, bins["chameleond"], "-spool", spool,
		"-max-jobs", "2", "-queue", "2", "-workers-per-job", "1",
		"-query", graphPath, "-query-samples", "50")

	// Fire 16 simultaneous submissions at a daemon with 2 workers and 2
	// queue slots: some must land, the rest must shed.
	const burst = 16
	spec := `{"k": 8, "eps": 0.05, "samples": 300, "seed": 11}`
	type outcome struct {
		status     int
		id         string
		retryAfter string
		body       string
	}
	outcomes := make([]outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := submitMultipart(t, d, spec, graphPath)
			defer resp.Body.Close()
			o := outcome{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
			body, _ := io.ReadAll(resp.Body)
			o.body = string(body)
			if resp.StatusCode == http.StatusAccepted {
				var j jobs.Job
				if json.Unmarshal(body, &j) == nil {
					o.id = j.ID
				}
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()

	var accepted []string
	rejected := 0
	for _, o := range outcomes {
		switch o.status {
		case http.StatusAccepted:
			accepted = append(accepted, o.id)
		case http.StatusTooManyRequests:
			rejected++
			if secs, err := strconv.Atoi(o.retryAfter); err != nil || secs < 1 {
				t.Errorf("429 Retry-After = %q, want a positive integer of seconds", o.retryAfter)
			}
		default:
			t.Errorf("unexpected submit status %d: %s", o.status, o.body)
		}
	}
	if len(accepted) == 0 {
		t.Fatal("no submission was accepted")
	}
	if rejected == 0 {
		t.Fatal("no submission was shed with 429")
	}
	t.Logf("burst of %d: %d accepted, %d shed", burst, len(accepted), rejected)

	// While the accepted jobs run, the daemon's other planes must answer.
	mresp, err := http.Get(d.url("/metrics"))
	if err != nil {
		t.Fatalf("/metrics under load: %v", err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics under load = %d", mresp.StatusCode)
	}
	for _, want := range []string{"chameleon_jobs_submitted", "chameleon_jobs_rejected", "chameleon_uptime_seconds"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %s under load", want)
		}
	}
	qresp, err := http.Post(d.url("/query"), "application/json",
		strings.NewReader(`{"kind": "degree", "u": 0}`))
	if err != nil {
		t.Fatalf("/query under load: %v", err)
	}
	qbody, _ := io.ReadAll(qresp.Body)
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("/query under load = %d: %s", qresp.StatusCode, qbody)
	}

	// Every accepted job completes.
	for _, id := range accepted {
		st, _ := pollDone(t, d, id, 3*time.Minute)
		if st.State != jobs.StateDone {
			t.Fatalf("accepted job %s finished %s (%s), want done", id, st.State, st.Job.Error)
		}
	}

	// The jobs.* instruments reflect the story.
	mresp, err = http.Get(d.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ = io.ReadAll(mresp.Body)
	mresp.Body.Close()
	completedRe := regexp.MustCompile(`chameleon_jobs_completed (\d+)`)
	m := completedRe.FindStringSubmatch(string(mbody))
	if m == nil {
		t.Fatalf("/metrics missing chameleon_jobs_completed:\n%s", mbody)
	}
	if n, _ := strconv.Atoi(m[1]); n != len(accepted) {
		t.Errorf("jobs_completed = %s, want %d", m[1], len(accepted))
	}

	d.stop(t)
}

// TestDaemonUsage covers the flag-validation exits.
func TestDaemonUsage(t *testing.T) {
	dir := t.TempDir()
	bins := buildTools(t, dir, "chameleond")
	err := exec.Command(bins["chameleond"]).Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("chameleond without -spool: %v, want exit 2", err)
	}
}
