// Command certify independently re-verifies the (k, ε)-obfuscation
// guarantee of a published uncertain graph (Definition 3 of the paper).
// Unlike ugstat's privacy check, which calls the production
// internal/privacy code, certify goes through internal/testkit's
// certificate checker: expected degrees by direct edge scan, degree
// distributions by divide-and-conquer convolution, posterior entropies by
// explicit normalization. A graph that passes both checks is certified by
// two algorithmically independent implementations.
//
// Usage:
//
//	certify -orig original.tsv -pub published.tsv -k 20 -eps 0.01
//
// Exit status 0 when the certificate holds, 1 when the published graph
// fails the claimed guarantee (or on any other error).
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"chameleon"
	"chameleon/cmd/internal/runner"
	"chameleon/internal/testkit"
)

func main() {
	var (
		origPath = flag.String("orig", "", "original uncertain graph (TSV or binary)")
		pubPath  = flag.String("pub", "", "published graph whose guarantee to certify")
		k        = flag.Int("k", 20, "claimed obfuscation level")
		eps      = flag.Float64("eps", 0.01, "claimed tolerance ε")
	)
	flag.Parse()

	err := run(os.Stdout, *origPath, *pubPath, *k, *eps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "certify:", err)
		if errors.As(err, new(runner.UsageError)) {
			flag.Usage()
		}
	}
	os.Exit(runner.ExitCode(err))
}

// errNotCertified signals a sound run whose verdict is negative.
var errNotCertified = errors.New("certificate check FAILED")

func run(out *os.File, origPath, pubPath string, k int, eps float64) error {
	if origPath == "" || pubPath == "" {
		return runner.Usagef("-orig and -pub are required")
	}
	orig, err := chameleon.LoadGraph(origPath)
	if err != nil {
		return err
	}
	pub, err := chameleon.LoadGraph(pubPath)
	if err != nil {
		return err
	}
	cert, err := testkit.CheckCertificate(orig, pub, k, eps)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "claim:\t(k=%d, eps=%g)-obfuscation of %s by %s\n", k, eps, origPath, pubPath)
	fmt.Fprintf(tw, "vertices:\t%d\n", cert.Vertices)
	fmt.Fprintf(tw, "non-obfuscated:\t%d\n", cert.NonObfuscated)
	fmt.Fprintf(tw, "eps~:\t%.6f\n", cert.EpsilonTilde)
	fmt.Fprintf(tw, "min posterior entropy:\t%.4f bits (threshold %.4f)\n", cert.MinEntropy, math.Log2(float64(k)))
	if cert.Boundary > 0 {
		fmt.Fprintf(tw, "WARNING:\t%d vertices within %g bits of the threshold\n", cert.Boundary, testkit.EntropyTolerance)
	}
	if cert.Valid {
		fmt.Fprintf(tw, "verdict:\tCERTIFIED\n")
	} else {
		fmt.Fprintf(tw, "verdict:\tNOT CERTIFIED (eps~ %.6f > eps %g)\n", cert.EpsilonTilde, eps)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if !cert.Valid {
		return errNotCertified
	}
	return nil
}
