// Command genug generates synthetic uncertain graphs: either one of the
// paper's scaled evaluation datasets by name, or a custom random topology.
//
// Usage:
//
//	genug -dataset dblp-s -seed 7 -o dblp.tsv
//	genug -topology ba -nodes 1000 -degree 3 -probs uniform -o g.tsv
//	genug -topology er -nodes 500 -edges 2000 -probs small -o g.tsv
//	genug -topology er -nodes 1000000 -edges 10000000 -format v2 -stream -o big.ug2
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"

	"chameleon/cmd/internal/runner"
	"chameleon/internal/gen"
	"chameleon/internal/uncertain"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "named dataset: dblp-s | brightkite-s | ppi-s (overrides topology flags)")
		topology = flag.String("topology", "ba", "random topology: ba | er | sbm")
		nodes    = flag.Int("nodes", 1000, "number of vertices")
		edges    = flag.Int("edges", 4000, "number of edges (er topology)")
		degree   = flag.Int("degree", 3, "edges per new vertex (ba topology)")
		blocks   = flag.Int("blocks", 4, "number of blocks (sbm topology)")
		pin      = flag.Float64("pin", 0.05, "intra-block edge rate (sbm)")
		pout     = flag.Float64("pout", 0.002, "inter-block edge rate (sbm)")
		probs    = flag.String("probs", "uniform", "probability profile: uniform | small | discrete")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
		binaryF  = flag.Bool("binary", false, "shorthand for -format v1 (kept for compatibility)")
		format   = flag.String("format", "", "output format: tsv | v1 | v2 (default tsv; v1 = legacy binary triples, v2 = sectioned binary)")
		stream   = flag.Bool("stream", false, "stream straight to disk without materializing the graph (er topology, v2 format only)")
	)
	flag.Parse()

	err := run(config{
		dataset: *dataset, topology: *topology,
		nodes: *nodes, edges: *edges, degree: *degree, blocks: *blocks,
		pin: *pin, pout: *pout, probs: *probs, seed: *seed,
		out: *out, binaryF: *binaryF, format: *format, stream: *stream,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "genug:", err)
		if errors.As(err, new(runner.UsageError)) {
			flag.Usage()
		}
	}
	os.Exit(runner.ExitCode(err))
}

type config struct {
	dataset, topology    string
	nodes, edges, degree int
	blocks               int
	pin, pout            float64
	probs                string
	seed                 uint64
	out                  string
	binaryF              bool
	format               string
	stream               bool
}

// resolveFormat merges the -format flag with the legacy -binary shorthand.
func resolveFormat(format string, binaryF bool) (string, error) {
	switch format {
	case "":
		if binaryF {
			return "v1", nil
		}
		return "tsv", nil
	case "tsv", "v1", "v2":
		if binaryF && format == "tsv" {
			return "", runner.Usagef("-binary conflicts with -format tsv")
		}
		return format, nil
	default:
		return "", runner.Usagef("unknown format %q (want tsv, v1 or v2)", format)
	}
}

func run(c config) error {
	format, err := resolveFormat(c.format, c.binaryF)
	if err != nil {
		return err
	}

	if c.stream {
		// The streaming path writes v2 sections straight to the output,
		// skipping graph materialization entirely; it exists precisely for
		// graphs too big to hold as a *Graph.
		if c.dataset != "" || c.topology != "er" {
			return runner.Usagef("-stream supports only -topology er")
		}
		if format != "v2" {
			return runner.Usagef("-stream requires -format v2")
		}
		pa, err := probAssigner(c.probs)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewPCG(c.seed, 0xda7a5e7))
		w := os.Stdout
		if c.out != "" {
			f, err := os.Create(c.out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := gen.StreamErdosRenyi(w, c.nodes, c.edges, pa, rng); err != nil {
			return err
		}
		if c.out != "" {
			fmt.Fprintf(os.Stderr, "wrote %s: %d nodes, %d edges (streamed v2)\n", c.out, c.nodes, c.edges)
		}
		return nil
	}

	g, err := build(c)
	if err != nil {
		return err
	}
	if c.out == "" {
		switch format {
		case "v1":
			return uncertain.WriteBinary(os.Stdout, g)
		case "v2":
			return uncertain.WriteBinaryV2(os.Stdout, g)
		default:
			return uncertain.WriteTSV(os.Stdout, g)
		}
	}
	save := uncertain.SaveFile
	switch format {
	case "v1":
		save = uncertain.SaveBinaryFile
	case "v2":
		save = uncertain.SaveBinaryV2File
	}
	if err := save(c.out, g); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d nodes, %d edges, mean p %.3f\n",
		c.out, g.NumNodes(), g.NumEdges(), g.MeanProb())
	return nil
}

func probAssigner(probs string) (gen.ProbAssigner, error) {
	switch probs {
	case "uniform":
		return gen.UniformProbs(0.05, 0.95), nil
	case "small":
		return gen.SmallProbs(0.29), nil
	case "discrete":
		return gen.DiscreteProbs(
			[]float64{0.13, 0.28, 0.46, 0.64, 0.80},
			[]float64{0.15, 0.23, 0.27, 0.22, 0.13},
		), nil
	default:
		return nil, runner.Usagef("unknown probability profile %q", probs)
	}
}

func build(c config) (*uncertain.Graph, error) {
	rng := rand.New(rand.NewPCG(c.seed, 0xda7a5e7))
	if c.dataset != "" {
		d, err := gen.DatasetByName(c.dataset)
		if err != nil {
			return nil, runner.UsageError{Err: fmt.Errorf("%w (known: %s)", err, strings.Join(datasetNames(), ", "))}
		}
		return d.Build(rng)
	}
	pa, err := probAssigner(c.probs)
	if err != nil {
		return nil, err
	}
	switch c.topology {
	case "ba":
		return gen.BarabasiAlbert(c.nodes, c.degree, pa, rng)
	case "er":
		return gen.ErdosRenyi(c.nodes, c.edges, pa, rng)
	case "sbm":
		return gen.SBM(c.nodes, c.blocks, c.pin, c.pout, pa, rng)
	default:
		return nil, runner.Usagef("unknown topology %q", c.topology)
	}
}

func datasetNames() []string {
	var names []string
	for _, d := range gen.Datasets() {
		names = append(names, d.Name)
	}
	return names
}
