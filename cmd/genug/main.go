// Command genug generates synthetic uncertain graphs: either one of the
// paper's scaled evaluation datasets by name, or a custom random topology.
//
// Usage:
//
//	genug -dataset dblp-s -seed 7 -o dblp.tsv
//	genug -topology ba -nodes 1000 -degree 3 -probs uniform -o g.tsv
//	genug -topology er -nodes 500 -edges 2000 -probs small -o g.tsv
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"

	"chameleon/cmd/internal/runner"
	"chameleon/internal/gen"
	"chameleon/internal/uncertain"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "named dataset: dblp-s | brightkite-s | ppi-s (overrides topology flags)")
		topology = flag.String("topology", "ba", "random topology: ba | er | sbm")
		nodes    = flag.Int("nodes", 1000, "number of vertices")
		edges    = flag.Int("edges", 4000, "number of edges (er topology)")
		degree   = flag.Int("degree", 3, "edges per new vertex (ba topology)")
		blocks   = flag.Int("blocks", 4, "number of blocks (sbm topology)")
		pin      = flag.Float64("pin", 0.05, "intra-block edge rate (sbm)")
		pout     = flag.Float64("pout", 0.002, "inter-block edge rate (sbm)")
		probs    = flag.String("probs", "uniform", "probability profile: uniform | small | discrete")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
		binaryF  = flag.Bool("binary", false, "write the compact binary format instead of TSV")
	)
	flag.Parse()

	err := run(*dataset, *topology, *nodes, *edges, *degree, *blocks, *pin, *pout, *probs, *seed, *out, *binaryF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genug:", err)
		if errors.As(err, new(runner.UsageError)) {
			flag.Usage()
		}
	}
	os.Exit(runner.ExitCode(err))
}

func run(dataset, topology string, nodes, edges, degree, blocks int, pin, pout float64, probs string, seed uint64, out string, binaryF bool) error {
	g, err := build(dataset, topology, nodes, edges, degree, blocks, pin, pout, probs, seed)
	if err != nil {
		return err
	}
	if out == "" {
		return uncertain.WriteTSV(os.Stdout, g)
	}
	save := uncertain.SaveFile
	if binaryF {
		save = uncertain.SaveBinaryFile
	}
	if err := save(out, g); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d nodes, %d edges, mean p %.3f\n",
		out, g.NumNodes(), g.NumEdges(), g.MeanProb())
	return nil
}

func build(dataset, topology string, nodes, edges, degree, blocks int, pin, pout float64, probs string, seed uint64) (*uncertain.Graph, error) {
	rng := rand.New(rand.NewPCG(seed, 0xda7a5e7))
	if dataset != "" {
		d, err := gen.DatasetByName(dataset)
		if err != nil {
			return nil, runner.UsageError{Err: fmt.Errorf("%w (known: %s)", err, strings.Join(datasetNames(), ", "))}
		}
		return d.Build(rng)
	}
	var pa gen.ProbAssigner
	switch probs {
	case "uniform":
		pa = gen.UniformProbs(0.05, 0.95)
	case "small":
		pa = gen.SmallProbs(0.29)
	case "discrete":
		pa = gen.DiscreteProbs(
			[]float64{0.13, 0.28, 0.46, 0.64, 0.80},
			[]float64{0.15, 0.23, 0.27, 0.22, 0.13},
		)
	default:
		return nil, runner.Usagef("unknown probability profile %q", probs)
	}
	switch topology {
	case "ba":
		return gen.BarabasiAlbert(nodes, degree, pa, rng)
	case "er":
		return gen.ErdosRenyi(nodes, edges, pa, rng)
	case "sbm":
		return gen.SBM(nodes, blocks, pin, pout, pa, rng)
	default:
		return nil, runner.Usagef("unknown topology %q", topology)
	}
}

func datasetNames() []string {
	var names []string
	for _, d := range gen.Datasets() {
		names = append(names, d.Name)
	}
	return names
}
