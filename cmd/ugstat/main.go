// Command ugstat prints possible-world statistics of an uncertain graph,
// and — when given two graphs — the privacy and utility comparison between
// an original and a published version.
//
// Usage:
//
//	ugstat -g graph.tsv
//	ugstat -g original.tsv -pub anonymized.tsv -k 20
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"chameleon"
	"chameleon/cmd/internal/runner"
	"chameleon/internal/metrics"
)

func main() {
	var (
		gPath   = flag.String("g", "", "uncertain graph (TSV)")
		pubPath = flag.String("pub", "", "published graph to compare against -g")
		k       = flag.Int("k", 20, "obfuscation level for the privacy check")
		samples = flag.Int("samples", 1000, "Monte Carlo samples (reliability)")
		msample = flag.Int("metric-samples", 50, "Monte Carlo samples (distance/clustering)")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	err := run(*gPath, *pubPath, *k, *samples, *msample, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ugstat:", err)
		if errors.As(err, new(runner.UsageError)) {
			flag.Usage()
		}
	}
	os.Exit(runner.ExitCode(err))
}

func run(gPath, pubPath string, k, samples, msample int, seed uint64) error {
	if gPath == "" {
		return runner.Usagef("-g is required")
	}
	g, err := chameleon.LoadGraph(gPath)
	if err != nil {
		return err
	}
	printStats(gPath, g, msample, seed)

	if pubPath == "" {
		return nil
	}
	pub, err := chameleon.LoadGraph(pubPath)
	if err != nil {
		return err
	}
	printStats(pubPath, pub, msample, seed)

	priv, err := chameleon.CheckPrivacy(g, pub, k)
	if err != nil {
		return err
	}
	util, err := chameleon.EvaluateUtility(g, pub, chameleon.UtilityOptions{
		Samples: samples, MetricSamples: msample, Seed: seed,
	})
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "privacy (k=%d):\tnon-obfuscated=%d\teps~=%.4f\n", k, priv.NonObfuscated, priv.EpsilonTilde)
	fmt.Fprintf(tw, "utility:\treliability discrepancy=%.4f\n", util.ReliabilityDiscrepancy)
	fmt.Fprintf(tw, "\tavg degree err=%.4f\n", util.AvgDegreeError)
	fmt.Fprintf(tw, "\tavg distance err=%.4f\n", util.AvgDistanceError)
	fmt.Fprintf(tw, "\tclustering err=%.4f\n", util.ClusteringError)
	fmt.Fprintf(tw, "\teff diameter err=%.4f\n", util.EffectiveDiameterError)
	return tw.Flush()
}

func printStats(name string, g *chameleon.Graph, msamples int, seed uint64) {
	mo := metrics.Options{Samples: msamples, Seed: seed}
	dist := mo.Distances(g)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s:\n", name)
	fmt.Fprintf(tw, "  nodes\t%d\n", g.NumNodes())
	fmt.Fprintf(tw, "  edges\t%d\n", g.NumEdges())
	fmt.Fprintf(tw, "  mean edge prob\t%.4f\n", g.MeanProb())
	fmt.Fprintf(tw, "  expected avg degree\t%.3f\n", metrics.AverageDegree(g))
	fmt.Fprintf(tw, "  expected max degree\t%.2f\n", mo.MaxDegree(g))
	fmt.Fprintf(tw, "  avg distance\t%.3f\n", dist.AverageDistance)
	fmt.Fprintf(tw, "  effective diameter\t%.3f\n", dist.EffectiveDiameter)
	fmt.Fprintf(tw, "  clustering coefficient\t%.4f\n", mo.ClusteringCoefficient(g))
	tw.Flush()
}
