// Command chameleon anonymizes an uncertain graph under the syntactic
// (k, eps)-obfuscation privacy model while minimizing reliability
// distortion.
//
// Usage:
//
//	chameleon -in g.tsv -out g_anon.tsv -k 20 -eps 0.01 -method RSME
//
// Observability: -v logs structured progress to stderr; -stats FILE dumps
// the final metrics registry and the full sigma-search trace as JSON
// (-stats - writes the aligned-text form to stderr); -serve ADDR keeps a
// live telemetry endpoint (/metrics, /healthz, /runs, /debug/pprof) up for
// the duration of the run; -journal FILE appends a replayable JSONL run
// journal; -cpuprofile, -memprofile and -trace enable the runtime
// profilers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chameleon"
)

func main() {
	var (
		in      = flag.String("in", "", "input uncertain graph (TSV)")
		out     = flag.String("out", "", "output anonymized graph (TSV, default stdout)")
		k       = flag.Int("k", 20, "obfuscation level k")
		eps     = flag.Float64("eps", 0.01, "tolerance epsilon (fraction of vertices allowed to stay exposed)")
		method  = flag.String("method", "RSME", "method: RSME | RS | ME | Rep-An")
		samples = flag.Int("samples", 1000, "Monte Carlo samples for reliability relevance")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "Monte Carlo sampling parallelism (0 = all cores)")
		binaryF = flag.Bool("binary", false, "write the compact binary format instead of TSV")
		quiet   = flag.Bool("q", false, "suppress the summary on stderr")
		verbose = flag.Bool("v", false, "log structured progress to stderr")
		stats   = flag.String("stats", "", "dump the final metrics snapshot: a path writes JSON, '-' writes text to stderr")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
		trace   = flag.String("trace", "", "write a runtime execution trace to this file")
		serveAt = flag.String("serve", "", "serve live telemetry (/metrics, /healthz, /runs, /debug/pprof) on this address for the duration of the run")
		jrnPath = flag.String("journal", "", "append a JSONL run journal (begin, periodic snapshots, phase spans, final CI report) to this file")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "chameleon: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	stopProfiles, err := chameleon.StartProfiles(*cpuProf, *memProf, *trace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chameleon:", err)
		os.Exit(1)
	}

	obs := chameleon.NewObserver()
	if *verbose {
		obs.Logger = chameleon.NewLogger(os.Stderr)
	}

	var jw *chameleon.Journal
	var runID string
	if *jrnPath != "" {
		jw, err = chameleon.OpenJournal(*jrnPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chameleon:", err)
			os.Exit(1)
		}
		runID, err = jw.Begin("chameleon", os.Args[1:], time.Now())
		if err != nil {
			fmt.Fprintln(os.Stderr, "chameleon:", err)
			os.Exit(1)
		}
	}
	var srv *chameleon.TelemetryServer

	// fatal marks the run "failed" before exiting — in /runs and, when a
	// journal is open, with a final "end" record carrying the snapshot at
	// the point of failure — so failed runs are distinguishable from
	// truncated in-flight ones. Safe at any point: srv and jw are nil-safe
	// until their features are enabled.
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "chameleon:", err)
		srv.Poll()
		srv.SetRunStatus(runID, "failed")
		srv.Close()
		if jw != nil {
			jw.End(time.Now(), "failed", obs.Registry().Snapshot())
			jw.Close()
		}
		os.Exit(1)
	}

	if *serveAt != "" {
		opts := chameleon.TelemetryOptions{}
		if jw != nil {
			opts.OnSnapshot = func(at time.Time, s chameleon.MetricsSnapshot, rates map[string]float64) {
				jw.WriteSnapshot(at, s, rates)
			}
		}
		srv = chameleon.NewTelemetryServer(obs, opts)
		if runID == "" {
			runID = chameleon.NewRunID(time.Now())
		}
		srv.AddRun(chameleon.RunInfo{ID: runID, Command: "chameleon", Args: os.Args[1:], Start: time.Now(), Status: "running"})
		addr, err := srv.Start(*serveAt)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chameleon: serving telemetry on http://%s/metrics\n", addr)
	}

	g, err := chameleon.LoadGraph(*in)
	if err != nil {
		fatal(err)
	}
	obs.Log("loaded graph", "path", *in, "nodes", g.NumNodes(), "edges", g.NumEdges())

	start := time.Now()
	res, err := chameleon.Anonymize(g, chameleon.Options{
		K:        *k,
		Epsilon:  *eps,
		Method:   chameleon.Method(*method),
		Samples:  *samples,
		Seed:     *seed,
		Workers:  *workers,
		Observer: obs,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if *out == "" {
		if err := chameleon.WriteGraph(os.Stdout, res.Graph); err != nil {
			fatal(err)
		}
	} else {
		save := chameleon.SaveGraph
		if *binaryF {
			save = chameleon.SaveGraphBinary
		}
		if err := save(*out, res.Graph); err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"anonymized %d nodes / %d->%d edges with %s: k=%d eps~=%.4f sigma=%.4f (%v)\n",
			g.NumNodes(), g.NumEdges(), res.Graph.NumEdges(), res.Method,
			*k, res.EpsilonTilde, res.Sigma, elapsed.Round(time.Millisecond))
		writePhaseBreakdown(res)
	}
	srv.Poll() // one final differ tick so the journal sees the end state
	srv.SetRunStatus(runID, "done")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "chameleon:", err)
		os.Exit(1)
	}
	if jw != nil {
		if err := jw.WriteSpan(time.Now(), res.Trace()); err != nil {
			fmt.Fprintln(os.Stderr, "chameleon:", err)
			os.Exit(1)
		}
		if err := jw.End(time.Now(), "done", obs.Registry().Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "chameleon:", err)
			os.Exit(1)
		}
		if err := jw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "chameleon:", err)
			os.Exit(1)
		}
	}
	if err := writeStats(*stats, obs); err != nil {
		fmt.Fprintln(os.Stderr, "chameleon:", err)
		os.Exit(1)
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "chameleon:", err)
		os.Exit(1)
	}
}

// writePhaseBreakdown reports where the run's time went: the relevance/
// uniqueness precompute versus the two sigma-search phases, with the
// genObf effort behind each.
func writePhaseBreakdown(res *chameleon.Result) {
	t := res.Trace()
	if t == nil {
		return
	}
	rnd := func(s *chameleon.Trace) time.Duration { return s.Duration().Round(time.Millisecond) }
	pre := t.Find("precompute")
	exp := t.Find("exponential-search")
	bis := t.Find("bisection")
	if pre == nil || exp == nil || bis == nil {
		return
	}
	fmt.Fprintf(os.Stderr,
		"phases: precompute %v (relevance+uniqueness), sigma search %v (exponential %v in %d genobf calls, bisection %v in %d calls)\n",
		rnd(pre), (exp.Duration() + bis.Duration()).Round(time.Millisecond),
		rnd(exp), len(exp.FindAll("genobf")), rnd(bis), len(bis.FindAll("genobf")))
}

// writeStats dumps the observer snapshot per the -stats flag contract: ""
// is off, "-" writes aligned text to stderr, anything else is a JSON file.
func writeStats(dest string, obs *chameleon.Observer) error {
	switch dest {
	case "":
		return nil
	case "-":
		return obs.WriteText(os.Stderr)
	default:
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		if err := obs.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}
