// Command chameleon anonymizes an uncertain graph under the syntactic
// (k, eps)-obfuscation privacy model while minimizing reliability
// distortion.
//
// Usage:
//
//	chameleon -in g.tsv -out g_anon.tsv -k 20 -eps 0.01 -method RSME
//
// Interruption: the first SIGINT/SIGTERM stops the run at the next safe
// point (a second forces immediate exit); with -checkpoint FILE the
// σ-search state is saved atomically so -resume FILE continues it later,
// bit-identical to an uninterrupted run. -deadline DUR bounds the wall
// clock, degrading gracefully: if a feasible obfuscation was already
// found the best-so-far graph is written and the process exits 0,
// otherwise it exits 124.
//
// Observability: -v logs structured progress to stderr; -stats FILE dumps
// the final metrics registry and the full sigma-search trace as JSON
// (-stats - writes the aligned-text form to stderr); -serve ADDR keeps a
// live telemetry endpoint (/metrics, /healthz, /runs, /trace,
// /debug/pprof) up for the duration of the run; -journal FILE appends a
// replayable JSONL run journal; -traceout FILE exports the σ-search span
// timeline as a Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing; -cpuprofile, -memprofile and -trace enable the
// runtime profilers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"chameleon"
	"chameleon/cmd/internal/runner"
)

func main() {
	var (
		in        = flag.String("in", "", "input uncertain graph (TSV)")
		out       = flag.String("out", "", "output anonymized graph (TSV, default stdout)")
		k         = flag.Int("k", 20, "obfuscation level k")
		eps       = flag.Float64("eps", 0.01, "tolerance epsilon (fraction of vertices allowed to stay exposed)")
		method    = flag.String("method", "RSME", "method: RSME | RS | ME | Rep-An")
		samples   = flag.Int("samples", 1000, "Monte Carlo samples for reliability relevance")
		smpMode   = flag.String("sampling-mode", "independent", "world sampling strategy: independent | antithetic | stratified | coupled")
		targetRSE = flag.Float64("target-rse", 0, "adaptive stopping: sample until the relative standard error falls below this target (0 = fixed -samples budget)")
		maxSmp    = flag.Int("max-samples", 0, "cap on adaptive sampling (0 = package default; requires -target-rse)")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "Monte Carlo sampling parallelism (0 = all cores)")
		binaryF   = flag.Bool("binary", false, "write the compact binary format instead of TSV")
		quiet     = flag.Bool("q", false, "suppress the summary on stderr")
		verbose   = flag.Bool("v", false, "log structured progress to stderr")
		stats     = flag.String("stats", "", "dump the final metrics snapshot: a path writes JSON, '-' writes text to stderr")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		trace     = flag.String("trace", "", "write a runtime execution trace to this file")
		serveAt   = flag.String("serve", "", "serve live telemetry (/metrics, /healthz, /runs, /debug/pprof) on this address for the duration of the run")
		jrnPath   = flag.String("journal", "", "append a JSONL run journal (begin, periodic snapshots, phase spans, final CI report) to this file")
		traceOut  = flag.String("traceout", "", "export the span timeline as Chrome trace-event JSON to this file on exit (open in Perfetto)")
		deadline  = flag.Duration("deadline", 0, "bound the run's wall clock; on expiry the best-so-far graph is written (exit 0) or, with nothing found yet, the run fails (exit 124)")
		ckptPath  = flag.String("checkpoint", "", "save the σ-search state to this file on interrupt (atomic write; enables -resume)")
		ckptEvery = flag.Int("checkpoint-every", 0, "additionally checkpoint every N genobf calls (requires -checkpoint)")
		resumeAt  = flag.String("resume", "", "resume an interrupted σ-search from this checkpoint file")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "chameleon: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	obs := chameleon.NewObserver()
	if *verbose {
		obs.Logger = chameleon.NewLogger(os.Stderr)
	}

	os.Exit(runner.Main(runner.Options{
		Command:     "chameleon",
		Args:        os.Args[1:],
		Deadline:    *deadline,
		JournalPath: *jrnPath,
		ServeAddr:   *serveAt,
		Observer:    obs,
	}, func(env *runner.Env) error {
		stopProfiles, err := chameleon.StartProfiles(*cpuProf, *memProf, *trace)
		if err != nil {
			return err
		}
		err = run(env, obs, runFlags{
			in: *in, out: *out, k: *k, eps: *eps, method: *method,
			samples: *samples, seed: *seed, workers: *workers,
			samplingMode: *smpMode, targetRSE: *targetRSE, maxSamples: *maxSmp,
			binary: *binaryF, quiet: *quiet, stats: *stats,
			ckptPath: *ckptPath, ckptEvery: *ckptEvery, resumeAt: *resumeAt,
		})
		if pErr := stopProfiles(); err == nil {
			err = pErr
		}
		if *traceOut != "" {
			// Exported on every exit path: an interrupted or failed search
			// still leaves a timeline (running spans carry live durations).
			if tErr := chameleon.ExportTrace(*traceOut, obs); err == nil {
				err = tErr
			}
		}
		return err
	}))
}

type runFlags struct {
	in, out, method, stats string
	k, samples, workers    int
	samplingMode           string
	targetRSE              float64
	maxSamples             int
	eps                    float64
	seed                   uint64
	binary, quiet          bool
	ckptPath               string
	ckptEvery              int
	resumeAt               string
}

func run(env *runner.Env, obs *chameleon.Observer, f runFlags) error {
	var resume *chameleon.Checkpoint
	ckptPath := f.ckptPath
	if f.resumeAt != "" {
		var err error
		resume, err = chameleon.LoadCheckpoint(f.resumeAt)
		if err != nil {
			return err
		}
		if ckptPath == "" {
			// Keep checkpointing to the file being resumed from, so a run
			// interrupted twice stays resumable.
			ckptPath = f.resumeAt
		}
		obs.Log("resuming sigma-search", "checkpoint", f.resumeAt)
	}

	g, err := chameleon.LoadGraph(f.in)
	if err != nil {
		return err
	}
	obs.Log("loaded graph", "path", f.in, "nodes", g.NumNodes(), "edges", g.NumEdges())

	start := time.Now()
	res, err := chameleon.AnonymizeContext(env.Ctx, g, chameleon.Options{
		K:               f.k,
		Epsilon:         f.eps,
		Method:          chameleon.Method(f.method),
		Samples:         f.samples,
		Seed:            f.seed,
		Workers:         f.workers,
		SamplingMode:    f.samplingMode,
		TargetRSE:       f.targetRSE,
		MaxSamples:      f.maxSamples,
		Observer:        obs,
		CheckpointPath:  ckptPath,
		CheckpointEvery: f.ckptEvery,
		Resume:          resume,
	})
	if err != nil {
		// Deadline degradation: when the wall clock ran out but a feasible
		// obfuscation was already in hand, publish the best-so-far graph
		// and exit 0. SIGINT does not degrade — it checkpoints (when
		// configured) and exits 130, leaving the choice between resuming
		// and settling for less to the operator.
		if res != nil && res.Graph != nil && errors.Is(err, context.DeadlineExceeded) {
			if wErr := writeOutput(f, res); wErr != nil {
				return errors.Join(err, wErr)
			}
			fmt.Fprintf(os.Stderr,
				"chameleon: deadline reached; wrote best-so-far graph (eps~=%.4f sigma=%.4f, search incomplete)\n",
				res.EpsilonTilde, res.Sigma)
			env.Journal.WriteSpan(time.Now(), res.Trace())
			return runner.DegradedError{Cause: err}
		}
		return err
	}
	elapsed := time.Since(start)

	if err := writeOutput(f, res); err != nil {
		return err
	}
	if !f.quiet {
		fmt.Fprintf(os.Stderr,
			"anonymized %d nodes / %d->%d edges with %s: k=%d eps~=%.4f sigma=%.4f (%v)\n",
			g.NumNodes(), g.NumEdges(), res.Graph.NumEdges(), res.Method,
			f.k, res.EpsilonTilde, res.Sigma, elapsed.Round(time.Millisecond))
		writePhaseBreakdown(res)
	}
	if err := env.Journal.WriteSpan(time.Now(), res.Trace()); err != nil {
		return err
	}
	return writeStats(f.stats, obs)
}

// writeOutput publishes the result graph per the -out/-binary flags.
func writeOutput(f runFlags, res *chameleon.Result) error {
	if f.out == "" {
		return chameleon.WriteGraph(os.Stdout, res.Graph)
	}
	save := chameleon.SaveGraph
	if f.binary {
		save = chameleon.SaveGraphBinary
	}
	return save(f.out, res.Graph)
}

// writePhaseBreakdown reports where the run's time went: the relevance/
// uniqueness precompute versus the two sigma-search phases, with the
// genObf effort behind each.
func writePhaseBreakdown(res *chameleon.Result) {
	t := res.Trace()
	if t == nil {
		return
	}
	rnd := func(s *chameleon.Trace) time.Duration { return s.Duration().Round(time.Millisecond) }
	pre := t.Find("precompute")
	exp := t.Find("exponential-search")
	bis := t.Find("bisection")
	if pre == nil || exp == nil || bis == nil {
		return
	}
	fmt.Fprintf(os.Stderr,
		"phases: precompute %v (relevance+uniqueness), sigma search %v (exponential %v in %d genobf calls, bisection %v in %d calls)\n",
		rnd(pre), (exp.Duration() + bis.Duration()).Round(time.Millisecond),
		rnd(exp), len(exp.FindAll("genobf")), rnd(bis), len(bis.FindAll("genobf")))
}

// writeStats dumps the observer snapshot per the -stats flag contract: ""
// is off, "-" writes aligned text to stderr, anything else is a JSON file.
func writeStats(dest string, obs *chameleon.Observer) error {
	switch dest {
	case "":
		return nil
	case "-":
		return obs.WriteText(os.Stderr)
	default:
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		if err := obs.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}
