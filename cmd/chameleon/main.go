// Command chameleon anonymizes an uncertain graph under the syntactic
// (k, eps)-obfuscation privacy model while minimizing reliability
// distortion.
//
// Usage:
//
//	chameleon -in g.tsv -out g_anon.tsv -k 20 -eps 0.01 -method RSME
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chameleon"
)

func main() {
	var (
		in      = flag.String("in", "", "input uncertain graph (TSV)")
		out     = flag.String("out", "", "output anonymized graph (TSV, default stdout)")
		k       = flag.Int("k", 20, "obfuscation level k")
		eps     = flag.Float64("eps", 0.01, "tolerance epsilon (fraction of vertices allowed to stay exposed)")
		method  = flag.String("method", "RSME", "method: RSME | RS | ME | Rep-An")
		samples = flag.Int("samples", 1000, "Monte Carlo samples for reliability relevance")
		seed    = flag.Uint64("seed", 1, "random seed")
		binaryF = flag.Bool("binary", false, "write the compact binary format instead of TSV")
		quiet   = flag.Bool("q", false, "suppress the summary on stderr")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "chameleon: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	g, err := chameleon.LoadGraph(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chameleon:", err)
		os.Exit(1)
	}

	start := time.Now()
	res, err := chameleon.Anonymize(g, chameleon.Options{
		K:       *k,
		Epsilon: *eps,
		Method:  chameleon.Method(*method),
		Samples: *samples,
		Seed:    *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chameleon:", err)
		os.Exit(1)
	}

	if *out == "" {
		if err := chameleon.WriteGraph(os.Stdout, res.Graph); err != nil {
			fmt.Fprintln(os.Stderr, "chameleon:", err)
			os.Exit(1)
		}
	} else {
		save := chameleon.SaveGraph
		if *binaryF {
			save = chameleon.SaveGraphBinary
		}
		if err := save(*out, res.Graph); err != nil {
			fmt.Fprintln(os.Stderr, "chameleon:", err)
			os.Exit(1)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"anonymized %d nodes / %d->%d edges with %s: k=%d eps~=%.4f sigma=%.4f (%v)\n",
			g.NumNodes(), g.NumEdges(), res.Graph.NumEdges(), res.Method,
			*k, res.EpsilonTilde, res.Sigma, time.Since(start).Round(time.Millisecond))
	}
}
