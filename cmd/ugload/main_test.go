package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"chameleon/internal/obs/journal"
	"chameleon/internal/obs/wideevent"
)

func testConfig(t *testing.T) (config, string) {
	t.Helper()
	dir := t.TempDir()
	mix, err := parseMix("pair_reliability=4,knn=2,degree=3,degree_distribution=1,centrality=1")
	if err != nil {
		t.Fatal(err)
	}
	return config{
		nodes: 60, mode: "both", qps: 300, workers: 4,
		duration: 150 * time.Millisecond, warmup: 20 * time.Millisecond,
		mix: mix, k: 5, samples: 64, seed: 3,
		benchOut: filepath.Join(dir, "BENCH_load.json"),
	}, dir
}

// TestLoadBothModes: a short in-process run in both loop modes exits
// clean and writes a schema-valid benchmark artifact, per-mode journal
// snapshots, and a parseable wide-event log.
func TestLoadBothModes(t *testing.T) {
	cfg, dir := testConfig(t)
	jpath := filepath.Join(dir, "run.jsonl")
	epath := filepath.Join(dir, "events.jsonl")

	code, err := run(cfg, "pair_reliability=4,knn=2,degree=3,degree_distribution=1,centrality=1", "", epath, 8, jpath)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}

	raw, err := os.ReadFile(cfg.benchOut)
	if err != nil {
		t.Fatal(err)
	}
	var entries []benchEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d bench entries, want 2 (open + closed)", len(entries))
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name] = true
		if e.Iterations <= 0 || e.NsPerOp <= 0 || e.QPS <= 0 {
			t.Fatalf("degenerate entry: %+v", e)
		}
		if !(e.P50NS > 0 && e.P50NS <= e.P99NS && e.P99NS <= e.P999NS) {
			t.Fatalf("quantiles out of order: %+v", e)
		}
		if e.ErrorRate != 0 {
			t.Fatalf("unexpected errors: %+v", e)
		}
	}
	if !names["ugload/open"] || !names["ugload/closed"] {
		t.Fatalf("entry names: %v", names)
	}

	runs, err := journal.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("journal has %d runs, want 1", len(runs))
	}
	if runs[0].Truncated() || runs[0].Status != "done" {
		t.Fatalf("journal run status %q (truncated=%v)", runs[0].Status, runs[0].Truncated())
	}
	// One snapshot per completed mode.
	if n := len(runs[0].Snapshots); n != 2 {
		t.Fatalf("journal has %d snapshots, want 2", n)
	}
	last := runs[0].Snapshots[len(runs[0].Snapshots)-1]
	if lat, ok := last.Snapshot.Latencies["query.latency.all"]; !ok || lat.Count == 0 {
		t.Fatalf("journal snapshot missing query latency: %+v", last.Snapshot.Latencies)
	}

	events, err := wideevent.ReadFile(epath)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no wide events written")
	}
	for _, e := range events {
		if e.RequestID == "" || e.Kind == "" || e.SampledN < 1 {
			t.Fatalf("malformed event: %+v", e)
		}
	}
}

// TestLoadServeHTTP: the harness drives its own expose /query endpoint.
func TestLoadServeHTTP(t *testing.T) {
	cfg, _ := testConfig(t)
	cfg.mode = "closed"
	cfg.duration = 100 * time.Millisecond
	cfg.benchOut = ""
	code, err := run(cfg, "degree=3,pair_reliability=1", "127.0.0.1:0", "", 8, "")
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

// TestSLOViolation: an impossible p99 budget fails the run.
func TestSLOViolation(t *testing.T) {
	cfg, _ := testConfig(t)
	cfg.mode = "closed"
	cfg.duration = 80 * time.Millisecond
	cfg.benchOut = ""
	cfg.sloP99 = time.Nanosecond
	code, err := run(cfg, "degree=1", "", "", 8, "")
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1 on SLO violation", code)
	}
}

// TestParseMix: validation of the workload-mix flag.
func TestParseMix(t *testing.T) {
	if _, err := parseMix("degree=2, knn=1"); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}
	for _, bad := range []string{"", "degree", "degree=0", "degree=x", "bogus=1"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("mix %q accepted", bad)
		}
	}
}
