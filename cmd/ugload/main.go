// Command ugload load-tests the query plane: it drives typed queries
// (pairwise reliability, k-NN, degree/centrality metrics) against an
// uncertain graph and reports SLO-grade latency quantiles from HDR
// histograms.
//
// Two loop disciplines are built in, because they answer different
// questions:
//
//   - open loop (-mode open): requests arrive on a Poisson schedule at
//     -qps regardless of how fast the server answers, like independent
//     clients. Latency is measured from each request's *intended* start,
//     so a stall penalizes every request scheduled behind it — the
//     coordinated-omission-free number an operator's SLO is about. The
//     same run also records raw service times through the CO corrector
//     (view open/service) so the two estimates can be compared.
//   - closed loop (-mode closed): -workers callers issue requests
//     back-to-back, measuring pure service time under saturation — the
//     capacity number.
//
// The run prints a latency/throughput table, appends per-mode metric
// snapshots to the -journal, and with -bench-out writes a
// BENCH_load.json artifact (qps, p50/p99/p999 ns, error rate) in the
// benchcmp schema so CI can gate tail-latency regressions.
//
// Usage:
//
//	ugload -nodes 300 -mode both -qps 500 -workers 16 -duration 2s
//	ugload -g graph.tsv -mode open -qps 2000 -bench-out BENCH_load.json
//	ugload -nodes 300 -mode closed -serve 127.0.0.1:0   # drive the HTTP plane
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"chameleon/cmd/internal/runner"
	"chameleon/internal/gen"
	"chameleon/internal/obs"
	"chameleon/internal/obs/hdr"
	"chameleon/internal/obs/wideevent"
	"chameleon/internal/query"
	"chameleon/internal/uncertain"
)

type config struct {
	graphPath string
	nodes     int
	mode      string
	qps       float64
	workers   int
	duration  time.Duration
	warmup    time.Duration
	mix       []mixEntry
	k         int
	samples   int
	seed      uint64
	benchOut  string
	sloP99    time.Duration
}

func main() {
	var (
		graphPath = flag.String("g", "", "uncertain graph TSV (default: generate a BA graph)")
		nodes     = flag.Int("nodes", 300, "vertices of the generated graph when -g is absent")
		mode      = flag.String("mode", "both", "loop discipline: open | closed | both")
		qps       = flag.Float64("qps", 500, "open-loop arrival rate (Poisson)")
		workers   = flag.Int("workers", 16, "closed-loop concurrency")
		duration  = flag.Duration("duration", 2*time.Second, "measured run length per mode")
		warmup    = flag.Duration("warmup", 200*time.Millisecond, "unmeasured warmup before the first mode")
		mixSpec   = flag.String("mix", "pair_reliability=4,knn=2,degree=3,degree_distribution=1,centrality=1", "query mix as kind=weight, comma-separated")
		k         = flag.Int("k", 8, "answer-set size for knn queries")
		samples   = flag.Int("samples", 256, "Monte Carlo world budget for reliability-backed queries")
		seed      = flag.Uint64("seed", 1, "seed for graph generation, the query mix and arrivals")
		serve     = flag.String("serve", "", "serve telemetry + /query on this address and drive the HTTP plane instead of in-process calls")
		events    = flag.String("events", "", "append sampled wide events (JSONL) here")
		sampleEv  = flag.Int("sample-events", 64, "keep 1-in-N ok wide events (errors and slow requests always kept)")
		benchOut  = flag.String("bench-out", "", "write a benchcmp artifact (BENCH_load.json schema) here")
		journalP  = flag.String("journal", "", "append a run journal (JSONL) here")
		sloP99    = flag.Duration("slo-p99", 0, "fail the run when a gated view's p99 exceeds this latency (0 = off)")
	)
	flag.Parse()

	cfg := config{
		graphPath: *graphPath, nodes: *nodes, mode: *mode, qps: *qps,
		workers: *workers, duration: *duration, warmup: *warmup,
		k: *k, samples: *samples, seed: *seed, benchOut: *benchOut, sloP99: *sloP99,
	}
	code, err := run(cfg, *mixSpec, *serve, *events, *sampleEv, *journalP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ugload:", err)
		if errors.As(err, new(runner.UsageError)) {
			flag.Usage()
		}
		os.Exit(runner.ExitCode(err))
	}
	os.Exit(code)
}

// run validates flags, builds the graph and engine, and hands off to the
// runner harness. Returns a non-zero code via runner.Main's lifecycle,
// or an error for pre-harness failures (usage, graph load).
func run(cfg config, mixSpec, serve, events string, sampleEv int, journalPath string) (int, error) {
	switch cfg.mode {
	case "open", "closed", "both":
	default:
		return 0, runner.Usagef("-mode must be open, closed or both, got %q", cfg.mode)
	}
	if cfg.qps <= 0 {
		return 0, runner.Usagef("-qps must be positive, got %v", cfg.qps)
	}
	if cfg.workers < 1 {
		return 0, runner.Usagef("-workers must be >= 1, got %d", cfg.workers)
	}
	if cfg.duration <= 0 {
		return 0, runner.Usagef("-duration must be positive, got %v", cfg.duration)
	}
	mix, err := parseMix(mixSpec)
	if err != nil {
		return 0, runner.UsageError{Err: err}
	}
	cfg.mix = mix

	g, err := buildGraph(cfg)
	if err != nil {
		return 0, err
	}

	o := obs.NewObserver()
	var ew *wideevent.Writer
	if events != "" {
		ew, err = wideevent.Open(events, wideevent.Options{
			SampleEvery: sampleEv, SlowThreshold: 100 * time.Millisecond})
		if err != nil {
			return 0, err
		}
		defer ew.Close()
	}
	eng := query.New(g, query.Options{
		Samples: cfg.samples, Seed: cfg.seed, Obs: o, Events: ew,
	})

	code := runner.Main(runner.Options{
		Command:       "ugload",
		Args:          os.Args[1:],
		JournalPath:   journalPath,
		ServeAddr:     serve,
		Observer:      o,
		ExtraHandlers: map[string]http.Handler{"/query": eng.Handler()},
	}, func(env *runner.Env) error {
		return load(env, eng, cfg)
	})
	return code, nil
}

func buildGraph(cfg config) (*uncertain.Graph, error) {
	if cfg.graphPath != "" {
		return uncertain.LoadFile(cfg.graphPath)
	}
	rng := rand.New(rand.NewPCG(cfg.seed, 0x10ad))
	return gen.BarabasiAlbert(cfg.nodes, 3, gen.UniformProbs(0.2, 0.9), rng)
}

// mixEntry is one weighted query kind in the generated workload.
type mixEntry struct {
	kind   string
	weight int
}

func parseMix(spec string) ([]mixEntry, error) {
	known := map[string]bool{}
	for _, k := range query.Kinds() {
		known[k] = true
	}
	var out []mixEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, ws, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-mix entry %q: want kind=weight", part)
		}
		if !known[kind] {
			return nil, fmt.Errorf("-mix kind %q unknown (known: %s)", kind, strings.Join(query.Kinds(), ", "))
		}
		w, err := strconv.Atoi(ws)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-mix entry %q: weight must be a positive integer", part)
		}
		out = append(out, mixEntry{kind: kind, weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-mix is empty")
	}
	return out, nil
}

// genReq draws one request from the weighted mix.
func genReq(rng *rand.Rand, n int, cfg config) query.Request {
	total := 0
	for _, m := range cfg.mix {
		total += m.weight
	}
	x := rng.IntN(total)
	kind := cfg.mix[len(cfg.mix)-1].kind
	for _, m := range cfg.mix {
		if x < m.weight {
			kind = m.kind
			break
		}
		x -= m.weight
	}
	req := query.Request{Kind: kind}
	switch kind {
	case query.KindPairReliability:
		req.U = uncertain.NodeID(rng.IntN(n))
		req.V = uncertain.NodeID(rng.IntN(n))
	case query.KindKNN:
		req.U = uncertain.NodeID(rng.IntN(n))
		req.K = cfg.k
	case query.KindDegree, query.KindCentrality:
		req.U = uncertain.NodeID(rng.IntN(n))
	}
	return req
}

// doer issues one request, in-process or over HTTP.
type doer func(ctx context.Context, req query.Request) error

func inprocDoer(eng *query.Engine) doer {
	return func(ctx context.Context, req query.Request) error {
		_, err := eng.Do(ctx, req)
		return err
	}
}

func httpDoer(addr string) doer {
	client := &http.Client{}
	url := "http://" + addr + "/query"
	return func(ctx context.Context, req query.Request) error {
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		res, err := client.Do(hreq)
		if err != nil {
			return err
		}
		defer res.Body.Close()
		var qr query.Response
		if err := json.NewDecoder(res.Body).Decode(&qr); err != nil {
			return err
		}
		io.Copy(io.Discard, res.Body)
		if qr.Error != "" {
			return errors.New(qr.Error)
		}
		return nil
	}
}

// view is one recorded latency stream of a run.
type view struct {
	Mode, View string
	Reqs, Errs int64
	Wall       time.Duration
	Snap       hdr.Snapshot
}

func (v view) qps() float64 {
	if v.Wall <= 0 {
		return 0
	}
	return float64(v.Reqs) / v.Wall.Seconds()
}

func load(env *runner.Env, eng *query.Engine, cfg config) error {
	do := inprocDoer(eng)
	target := "in-process"
	if env.ServeAddr != "" {
		do = httpDoer(env.ServeAddr)
		target = "http://" + env.ServeAddr + "/query"
	}

	// Pay the one-time sampling and precompute costs before measuring:
	// Warm populates the label cache, the warmup loop touches every kind
	// in the mix (so lazy precomputes like centrality run here, not
	// inside the measured window).
	eng.Warm(env.Ctx)
	for _, m := range cfg.mix {
		// One deterministic request per kind forces every lazy precompute
		// (centrality, the degree distribution) before measurement.
		req := query.Request{Kind: m.kind, U: 0, V: 0, K: cfg.k}
		do(env.Ctx, req)
	}
	warmupLoop(env.Ctx, do, eng.Graph().NumNodes(), cfg)
	if err := env.Ctx.Err(); err != nil {
		return err
	}

	g := eng.Graph()
	fmt.Fprintf(os.Stderr, "ugload: %d nodes, %d edges, target %s, mix %s\n",
		g.NumNodes(), g.NumEdges(), target, mixString(cfg.mix))

	var views []view
	runMode := func(mode string) error {
		var vs []view
		switch mode {
		case "open":
			vs = openLoop(env.Ctx, do, eng, cfg)
		case "closed":
			vs = closedLoop(env.Ctx, do, eng, cfg)
		}
		views = append(views, vs...)
		// One journal snapshot per completed mode, so journalreplay can
		// attribute the counter/latency deltas to the loop discipline.
		if env.Obs != nil {
			env.Journal.WriteSnapshot(time.Now(), env.Obs.Registry().Snapshot(), nil)
		}
		return env.Ctx.Err()
	}
	modes := []string{cfg.mode}
	if cfg.mode == "both" {
		modes = []string{"open", "closed"}
	}
	for _, m := range modes {
		if err := runMode(m); err != nil {
			return err
		}
	}

	printTable(os.Stdout, views)
	if cfg.benchOut != "" {
		if err := writeBench(cfg.benchOut, views); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ugload: wrote %s\n", cfg.benchOut)
	}
	return checkSLO(views, cfg.sloP99)
}

func mixString(mix []mixEntry) string {
	parts := make([]string, len(mix))
	for i, m := range mix {
		parts[i] = fmt.Sprintf("%s=%d", m.kind, m.weight)
	}
	return strings.Join(parts, ",")
}

// warmupLoop runs a short unmeasured closed loop over the full mix, so
// lazy per-kind precomputes (centrality, the degree distribution) run
// before the measured window.
func warmupLoop(ctx context.Context, do doer, n int, cfg config) {
	if cfg.warmup <= 0 {
		return
	}
	workers := cfg.workers
	if workers > 4 {
		workers = 4
	}
	deadline := time.Now().Add(cfg.warmup)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(cfg.seed, 0xaa00+uint64(w)))
			for ctx.Err() == nil && time.Now().Before(deadline) {
				do(ctx, genReq(rng, n, cfg))
			}
		}(w)
	}
	wg.Wait()
}

// openLoop drives Poisson arrivals at cfg.qps: each request has a
// deterministic intended start; its latency is completion minus that
// intended start, however late dispatch actually happened. The same
// completions also feed a service-time histogram through the
// coordinated-omission corrector, so the two estimates of the same
// truth sit side by side in the output.
func openLoop(ctx context.Context, do doer, eng *query.Engine, cfg config) []view {
	n := eng.Graph().NumNodes()
	rng := rand.New(rand.NewPCG(cfg.seed, 0x09e4))
	meanIntervalNS := float64(time.Second) / cfg.qps

	// Pre-generate the arrival schedule so the dispatch loop does no
	// random-number work on the critical path.
	type arrival struct {
		at  time.Duration
		req query.Request
	}
	var schedule []arrival
	var t time.Duration
	for {
		t += time.Duration(rng.ExpFloat64() * meanIntervalNS)
		if t > cfg.duration {
			break
		}
		schedule = append(schedule, arrival{at: t, req: genReq(rng, n, cfg)})
	}

	intended := hdr.NewRecorder(hdr.Config{}, 0)
	service := hdr.NewRecorder(hdr.Config{}, 0)
	var errs atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	dispatched := 0
	for _, a := range schedule {
		if ctx.Err() != nil {
			break
		}
		if wait := time.Until(start.Add(a.at)); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		dispatched++
		wg.Add(1)
		go func(a arrival) {
			defer wg.Done()
			svcStart := time.Now()
			err := do(ctx, a.req)
			end := time.Now()
			if err != nil {
				errs.Add(1)
			}
			intended.RecordDuration(end.Sub(start.Add(a.at)))
			service.RecordCorrected(int64(end.Sub(svcStart)), int64(meanIntervalNS))
		}(a)
	}
	wg.Wait()
	wall := time.Since(start)
	return []view{
		{Mode: "open", View: "intended", Reqs: int64(dispatched), Errs: errs.Load(), Wall: wall, Snap: intended.Snapshot()},
		{Mode: "open", View: "service", Reqs: service.Count(), Errs: errs.Load(), Wall: wall, Snap: service.Snapshot()},
	}
}

// closedLoop saturates the engine with cfg.workers back-to-back callers
// and records pure service time.
func closedLoop(ctx context.Context, do doer, eng *query.Engine, cfg config) []view {
	n := eng.Graph().NumNodes()
	rec := hdr.NewRecorder(hdr.Config{}, 0)
	var reqs, errs atomic.Int64
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(cfg.seed, 0xc105ed+uint64(w)))
			for ctx.Err() == nil && time.Now().Before(deadline) {
				req := genReq(rng, n, cfg)
				s := time.Now()
				err := do(ctx, req)
				rec.RecordDuration(time.Since(s))
				reqs.Add(1)
				if err != nil {
					errs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	return []view{{Mode: "closed", View: "service", Reqs: reqs.Load(), Errs: errs.Load(), Wall: wall, Snap: rec.Snapshot()}}
}

func printTable(w io.Writer, views []view) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "MODE\tVIEW\tREQS\tERR\tQPS\tp50\tp90\tp99\tp999\tmax")
	for _, v := range views {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.0f\t%v\t%v\t%v\t%v\t%v\n",
			v.Mode, v.View, v.Reqs, v.Errs, v.qps(),
			time.Duration(v.Snap.Quantile(0.50)),
			time.Duration(v.Snap.Quantile(0.90)),
			time.Duration(v.Snap.Quantile(0.99)),
			time.Duration(v.Snap.Quantile(0.999)),
			time.Duration(v.Snap.Max))
	}
	tw.Flush()
}

// benchEntry is one BENCH_load.json record: the benchcmp base schema
// plus the load-harness extension fields.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
	P50NS       int64   `json:"p50_ns"`
	P99NS       int64   `json:"p99_ns"`
	P999NS      int64   `json:"p999_ns"`
	QPS         float64 `json:"qps"`
	ErrorRate   float64 `json:"error_rate"`
}

// gated returns the SLO-bearing view of each mode: intended-start
// latency for the open loop (the CO-free number), service time for the
// closed loop.
func gated(views []view) []view {
	var out []view
	for _, v := range views {
		if (v.Mode == "open" && v.View == "intended") || (v.Mode == "closed" && v.View == "service") {
			out = append(out, v)
		}
	}
	return out
}

func writeBench(path string, views []view) error {
	var entries []benchEntry
	for _, v := range gated(views) {
		errRate := 0.0
		if v.Reqs > 0 {
			errRate = float64(v.Errs) / float64(v.Reqs)
		}
		entries = append(entries, benchEntry{
			Name:        "ugload/" + v.Mode,
			NsPerOp:     v.Snap.Mean(),
			AllocsPerOp: 0,
			Iterations:  v.Reqs,
			P50NS:       v.Snap.Quantile(0.50),
			P99NS:       v.Snap.Quantile(0.99),
			P999NS:      v.Snap.Quantile(0.999),
			QPS:         v.qps(),
			ErrorRate:   errRate,
		})
	}
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func checkSLO(views []view, sloP99 time.Duration) error {
	if sloP99 <= 0 {
		return nil
	}
	for _, v := range gated(views) {
		if p99 := time.Duration(v.Snap.Quantile(0.99)); p99 > sloP99 {
			return fmt.Errorf("SLO violation: %s/%s p99 %v exceeds %v", v.Mode, v.View, p99, sloP99)
		}
		if v.Reqs == 0 {
			return fmt.Errorf("SLO check: %s/%s completed zero requests", v.Mode, v.View)
		}
	}
	return nil
}
