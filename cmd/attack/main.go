// Command attack simulates the degree-knowledge re-identification attack
// against a published uncertain graph: a Bayesian adversary who knows
// each target's degree in the original graph ranks the published vertices
// by posterior probability. Use it to validate a release empirically
// before sharing it.
//
// Usage:
//
//	attack -orig g.tsv -pub anon.tsv -k 20
//	attack -orig g.tsv -pub anon.tsv -k 20 -target 17
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"chameleon"
	"chameleon/internal/attack"
	"chameleon/internal/privacy"
)

func main() {
	var (
		origPath = flag.String("orig", "", "original uncertain graph (TSV)")
		pubPath  = flag.String("pub", "", "published graph to attack (default: the original itself)")
		k        = flag.Int("k", 20, "adversary shortlist size / obfuscation level")
		target   = flag.Int("target", -1, "single target vertex to attack in detail (default: aggregate over all)")
	)
	flag.Parse()
	if *origPath == "" {
		fmt.Fprintln(os.Stderr, "attack: -orig is required")
		flag.Usage()
		os.Exit(2)
	}
	orig, err := chameleon.LoadGraph(*origPath)
	fail(err)
	pub := orig
	if *pubPath != "" {
		pub, err = chameleon.LoadGraph(*pubPath)
		fail(err)
	}

	if *target >= 0 {
		attackOne(orig, pub, *target, *k)
		return
	}

	rep, err := attack.Simulate(orig, pub, *k)
	fail(err)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "targets\t%d\n", rep.Targets)
	fmt.Fprintf(tw, "mean posterior on true vertex\t%.4f\t(random: %.4f, k-obf target: <= %.4f)\n",
		rep.MeanPosterior, 1/float64(rep.Targets), 1/float64(*k))
	fmt.Fprintf(tw, "top-1 identification rate\t%.4f\n", rep.Top1Rate)
	fmt.Fprintf(tw, "top-%d shortlist hit rate\t%.4f\n", *k, rep.TopKRate)
	fmt.Fprintf(tw, "mean rank of true vertex\t%.1f\n", rep.MeanRank)
	tw.Flush()
}

func attackOne(orig, pub *chameleon.Graph, target, k int) {
	if target >= orig.NumNodes() {
		fail(fmt.Errorf("target %d out of range (n=%d)", target, orig.NumNodes()))
	}
	w := privacy.DegreeProperty(orig)[target]
	fmt.Printf("target %d: known degree %d (expected degree %.2f in the original)\n",
		target, w, orig.ExpectedDegree(chameleon.NodeID(target)))
	cands := attack.Shortlist(pub, w, k)
	if len(cands) == 0 {
		fmt.Println("the adversary's posterior is empty: no published vertex can have this degree")
		return
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tvertex\tposterior\tnote")
	for i, c := range cands {
		note := ""
		if int(c.Node) == target {
			note = "<- true vertex"
		}
		fmt.Fprintf(tw, "%d\t%d\t%.4f\t%s\n", i+1, c.Node, c.Posterior, note)
	}
	tw.Flush()
	// Entropy of the full posterior, the quantity (k, eps)-obf bounds.
	full := attack.Shortlist(pub, w, pub.NumNodes())
	var h float64
	for _, c := range full {
		if c.Posterior > 0 {
			h -= c.Posterior * math.Log2(c.Posterior)
		}
	}
	fmt.Printf("posterior entropy %.2f bits (k-obfuscated for k <= %.0f)\n", h, math.Exp2(h))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		os.Exit(1)
	}
}
