// Command tracestat summarizes a run's span timeline: per-phase time
// aggregation (count, total, self, min/max/mean) and the critical path
// through each root span. It reads either a Chrome trace-event JSON file
// written by the -traceout flag of chameleon/experiments, or a JSONL run
// journal written by -journal (using its span records); the format is
// auto-detected.
//
// Usage:
//
//	tracestat trace.json          # from -traceout
//	tracestat runs.jsonl          # from -journal (span records)
//	tracestat -top 5 trace.json   # only the 5 largest phases
//
// Self time is a span's duration minus the sum of its children's
// durations, clamped at zero for spans whose children overlap (parallel
// sweep cells). The critical path descends from each root into its
// longest child, repeatedly, so the chain printed is where an
// optimization pays off end to end.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"chameleon/cmd/internal/runner"
	"chameleon/internal/obs"
	"chameleon/internal/obs/journal"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(runner.ExitCode(err))
	}
}

// node is one reconstructed span, format-independent: both input formats
// reduce to (name, absolute start, duration) trees in microseconds, the
// trace-event time unit.
type node struct {
	name     string
	startUS  float64
	durUS    float64
	children []*node
}

// run is the whole tool behind a writer so the golden-file test can
// capture its exact output without a subprocess.
func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	top := fs.Int("top", 0, "print only the N phases with the largest total time (0 = all)")
	if err := fs.Parse(args); err != nil {
		return runner.Usagef("%v", err)
	}
	if fs.NArg() == 0 {
		return runner.Usagef("at least one trace or journal file is required")
	}

	var roots []*node
	for _, path := range fs.Args() {
		rs, err := load(path)
		if err != nil {
			return err
		}
		roots = append(roots, rs...)
	}
	if len(roots) == 0 {
		fmt.Fprintln(out, "no spans found")
		return nil
	}

	if err := writePhases(out, roots, *top); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return writeCriticalPaths(out, roots)
}

// load reads one input file, auto-detecting its format: a single JSON
// object with a traceEvents array is a Chrome trace; anything else is
// tried as a JSONL journal.
func load(path string) ([]*node, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err == nil && tf.TraceEvents != nil {
		return fromTrace(tf.TraceEvents), nil
	}
	runs, jErr := journal.Read(bytes.NewReader(data))
	if jErr != nil {
		return nil, fmt.Errorf("%s: neither a Chrome trace (no traceEvents object) nor a journal: %w", path, jErr)
	}
	var roots []*node
	for _, r := range runs {
		for _, s := range r.Spans {
			roots = append(roots, fromSpan(s, 0))
		}
	}
	return roots, nil
}

// traceEvent is the subset of the Chrome trace-event fields tracestat
// consumes; metadata ("M") events are skipped by ph.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// fromTrace rebuilds span trees from flattened "X" complete events by
// time containment: within each (pid, tid) lane, events sorted by start
// (longest first on ties, so parents precede their children) nest under
// the nearest still-open enclosing event.
func fromTrace(events []traceEvent) []*node {
	byLane := map[[2]int][]traceEvent{}
	var laneOrder [][2]int
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		key := [2]int{ev.PID, ev.TID}
		if _, ok := byLane[key]; !ok {
			laneOrder = append(laneOrder, key)
		}
		byLane[key] = append(byLane[key], ev)
	}

	var roots []*node
	for _, key := range laneOrder {
		evs := byLane[key]
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].TS != evs[j].TS {
				return evs[i].TS < evs[j].TS
			}
			return evs[i].Dur > evs[j].Dur
		})
		var stack []*node
		for _, ev := range evs {
			n := &node{name: ev.Name, startUS: ev.TS, durUS: ev.Dur}
			for len(stack) > 0 {
				open := stack[len(stack)-1]
				if n.startUS < open.startUS+open.durUS {
					break
				}
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 {
				roots = append(roots, n)
			} else {
				p := stack[len(stack)-1]
				p.children = append(p.children, n)
			}
			stack = append(stack, n)
		}
	}
	return roots
}

// fromSpan converts a rehydrated journal span (parent-relative StartNS,
// nanosecond durations) into a node tree with absolute microsecond
// starts.
func fromSpan(s *obs.Span, parentStartUS float64) *node {
	n := &node{
		name:    s.Name,
		startUS: parentStartUS + float64(s.StartNS)/1e3,
		durUS:   float64(s.DurationNS) / 1e3,
	}
	for _, c := range s.Children {
		n.children = append(n.children, fromSpan(c, n.startUS))
	}
	return n
}

type phaseStat struct {
	name        string
	count       int
	total, self float64
	min, max    float64
}

func collect(n *node, stats map[string]*phaseStat) {
	st := stats[n.name]
	if st == nil {
		st = &phaseStat{name: n.name, min: math.Inf(1)}
		stats[n.name] = st
	}
	st.count++
	st.total += n.durUS
	st.min = math.Min(st.min, n.durUS)
	st.max = math.Max(st.max, n.durUS)
	var childUS float64
	for _, c := range n.children {
		childUS += c.durUS
		collect(c, stats)
	}
	st.self += math.Max(0, n.durUS-childUS)
}

func writePhases(out io.Writer, roots []*node, top int) error {
	stats := map[string]*phaseStat{}
	for _, r := range roots {
		collect(r, stats)
	}
	rows := make([]*phaseStat, 0, len(stats))
	for _, st := range stats {
		rows = append(rows, st)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].name < rows[j].name
	})
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PHASE\tCOUNT\tTOTAL\tSELF\tMIN\tMAX\tMEAN")
	for _, st := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n",
			st.name, st.count, fmtDur(st.total), fmtDur(st.self),
			fmtDur(st.min), fmtDur(st.max), fmtDur(st.total/float64(st.count)))
	}
	return tw.Flush()
}

func writeCriticalPaths(out io.Writer, roots []*node) error {
	for i, root := range roots {
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "critical path (%s, %s):\n", root.name, fmtDur(root.durUS))
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		for n, depth := root, 0; n != nil; depth++ {
			var childUS float64
			var next *node
			for _, c := range n.children {
				childUS += c.durUS
				if next == nil || c.durUS > next.durUS {
					next = c
				}
			}
			pct := 0.0
			if root.durUS > 0 {
				pct = 100 * n.durUS / root.durUS
			}
			fmt.Fprintf(tw, "%s%s\t%s\tself %s\t%.1f%%\n",
				strings.Repeat("  ", depth), n.name,
				fmtDur(n.durUS), fmtDur(math.Max(0, n.durUS-childUS)), pct)
			n = next
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// fmtDur renders a microsecond quantity with Go duration units.
func fmtDur(us float64) string {
	return time.Duration(math.Round(us * 1e3)).String()
}
