package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chameleon/cmd/internal/runner"
	"chameleon/internal/obs"
	"chameleon/internal/obs/traceout"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// golden runs the tool with args and compares its stdout against the
// golden file, rewriting it under -update. The fixtures carry fixed
// microsecond/nanosecond timings, so the phase table and critical path
// are fully deterministic.
func golden(t *testing.T, goldenFile string, args ...string) {
	t.Helper()
	var out bytes.Buffer
	if err := run(&out, args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	path := filepath.Join("testdata", goldenFile)
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s (re-run with -update to regenerate):\n--- got ---\n%s--- want ---\n%s", path, out.String(), want)
	}
}

// TestTraceGolden pins the Chrome-trace path: the containment stack must
// rebuild the anonymize tree from flattened X events (metadata events
// skipped), aggregate the four genobf calls into one phase row, and walk
// the critical path anonymize -> bisection -> longest genobf.
func TestTraceGolden(t *testing.T) {
	golden(t, "trace.golden", filepath.Join("testdata", "trace.json"))
}

// TestJournalGolden pins the journal path: span records rehydrate with
// parent-relative StartNS, and each of the two recorded roots gets its
// own critical path.
func TestJournalGolden(t *testing.T) {
	golden(t, "journal.golden", filepath.Join("testdata", "runs.jsonl"))
}

// TestTopGolden pins -top trimming the phase table to the N largest
// totals without touching the critical path.
func TestTopGolden(t *testing.T) {
	golden(t, "top.golden", "-top", "2", filepath.Join("testdata", "trace.json"))
}

// TestRoundTripFromObserver feeds tracestat a file written by the real
// exporter, closing the loop between traceout's flattening and the
// containment-stack reconstruction here.
func TestRoundTripFromObserver(t *testing.T) {
	o := obs.NewObserver()
	root := o.StartSpan("anonymize")
	pre := root.StartChild("precompute")
	pre.End()
	bis := root.StartChild("bisection")
	for i := 0; i < 3; i++ {
		g := bis.StartChild("genobf")
		g.End()
	}
	bis.End()
	root.End()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := traceout.ExportObserver(path, o); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, []string{path}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"PHASE", "anonymize", "precompute", "bisection", "critical path (anonymize"} {
		if !strings.Contains(got, want) {
			t.Errorf("round-trip output missing %q:\n%s", want, got)
		}
	}
	// The three genobf calls must aggregate into a single phase row.
	for _, line := range strings.Split(got, "\n") {
		if !strings.HasPrefix(line, "genobf") {
			continue
		}
		if f := strings.Fields(line); len(f) < 2 || f[1] != "3" {
			t.Errorf("genobf row count = %v, want 3:\n%s", f, got)
		}
		break
	}
}

func TestNoArgsIsUsageError(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, nil)
	var ue runner.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("run with no args: err = %v, want a usage error", err)
	}
	if runner.ExitCode(err) != 2 {
		t.Fatalf("ExitCode = %d, want 2", runner.ExitCode(err))
	}
}

func TestMissingFileFails(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{filepath.Join(t.TempDir(), "absent.json")}); err == nil {
		t.Fatal("run on a missing file succeeded")
	}
}

// TestMalformedInputFails covers the format sniffing: a file that is
// neither a trace-event object nor journal JSONL must error, naming the
// file.
func TestMalformedInputFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run(&out, []string{path})
	if err == nil {
		t.Fatal("run on garbage input succeeded")
	}
	if !strings.Contains(err.Error(), "garbage.json") {
		t.Errorf("error does not name the offending file: %v", err)
	}
}
