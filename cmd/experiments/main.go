// Command experiments reproduces the paper's evaluation: Table I, Table
// II, Figure 3 (dataset distributions), Figure 4 (Rep-An distortion vs the
// Chameleon lower bound) and Figures 8-11 (reliability, average degree,
// average distance and clustering preservation across methods and k), plus
// the two ablation studies (ERR estimator cost; ME-vs-unguided entropy
// gain).
//
// Usage:
//
//	experiments                  # full sweep (several minutes)
//	experiments -quick           # miniature datasets, seconds
//	experiments -run fig8        # one artifact: tableI tableII fig3 fig4
//	                             # fig8 fig9 fig10 fig11 ablations sweep
//	experiments -csv runs.csv    # also dump the raw grid
//	experiments -serve :9100     # live /metrics, /healthz, /runs, /debug/pprof
//	experiments -journal r.jsonl # append a replayable JSONL run journal
//
// Interruption: the first SIGINT/SIGTERM stops the sweep at the next cell
// boundary (a second forces immediate exit) and -deadline DUR does the
// same on a wall-clock budget; with -checkpoint FILE every completed
// sweep cell is saved atomically, so rerunning with the same flags skips
// the finished cells and recomputes only the rest (per-cell seeding keeps
// the merged results identical to an uninterrupted run).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chameleon/cmd/internal/runner"
	"chameleon/internal/exp"
	"chameleon/internal/obs"
	"chameleon/internal/obs/traceout"
	"chameleon/internal/uncertain"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "miniature datasets and reduced sampling budgets")
		runSel   = flag.String("run", "all", "comma-separated artifacts: tableI,tableII,fig3,fig4,fig8,fig9,fig10,fig11,attack,knn,dp,centrality,timing,ablations,all")
		samples  = flag.Int("samples", 0, "override reliability sample budget")
		smpMode  = flag.String("sampling-mode", "independent", "world sampling strategy: independent | antithetic | stratified | coupled")
		tgtRSE   = flag.Float64("target-rse", 0, "adaptive stopping: sample until the relative standard error falls below this target (0 = fixed budget)")
		maxSmp   = flag.Int("max-samples", 0, "cap on adaptive sampling (0 = package default; requires -target-rse)")
		seed     = flag.Uint64("seed", 7, "random seed")
		csvPath  = flag.String("csv", "", "write the raw sweep grid as CSV")
		workers  = flag.Int("workers", 0, "Monte Carlo sampling parallelism (0 = all cores)")
		verbose  = flag.Bool("v", false, "log structured per-cell progress to stderr")
		stats    = flag.String("stats", "", "dump the final metrics snapshot: a path writes JSON, '-' writes text to stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		trcPath  = flag.String("trace", "", "write a runtime execution trace to this file")
		serveAt  = flag.String("serve", "", "serve live telemetry (/metrics, /healthz, /runs, /debug/pprof) on this address for the duration of the sweep")
		jrnPath  = flag.String("journal", "", "append a JSONL run journal (begin, periodic snapshots, phase spans, final CI report) to this file")
		traceOut = flag.String("traceout", "", "export the sweep's span timeline as Chrome trace-event JSON to this file on exit (open in Perfetto)")
		deadline = flag.Duration("deadline", 0, "bound the run's wall clock; the sweep stops at the next cell boundary (exit 124)")
		ckptPath = flag.String("checkpoint", "", "save completed sweep cells to this file (atomic writes); rerunning with the same flags resumes, recomputing only unfinished cells")
	)
	flag.Parse()

	var observer *obs.Observer
	if *stats != "" || *verbose || *serveAt != "" || *jrnPath != "" || *traceOut != "" {
		observer = obs.NewObserver()
		if *verbose {
			observer.Logger = obs.NewLogger(os.Stderr)
		}
	}

	os.Exit(runner.Main(runner.Options{
		Command:     "experiments",
		Args:        os.Args[1:],
		Deadline:    *deadline,
		JournalPath: *jrnPath,
		ServeAddr:   *serveAt,
		Observer:    observer,
	}, func(env *runner.Env) error {
		stopProfiles, err := obs.StartProfiles(*cpuProf, *memProf, *trcPath)
		if err != nil {
			return err
		}
		mode, err := uncertain.ParseSamplingMode(*smpMode)
		if err != nil {
			return err
		}
		cfg := exp.Config{
			Quick: *quick, Samples: *samples, Seed: *seed,
			SamplingMode: mode, TargetRSE: *tgtRSE, MaxSamples: *maxSmp,
			Workers: *workers, Obs: observer, Ctx: env.Ctx,
		}
		if *ckptPath != "" {
			cfg.Cells, err = exp.OpenCellStore(*ckptPath, cfg)
			if err != nil {
				return err
			}
			if n := cfg.Cells.Len(); n > 0 {
				fmt.Fprintf(os.Stderr, "experiments: resuming sweep, %d cells restored from %s\n", n, *ckptPath)
			}
		}
		err = run(env, cfg, *runSel, *csvPath, *stats, observer)
		if pErr := stopProfiles(); err == nil {
			err = pErr
		}
		if *traceOut != "" {
			// Exported on every exit path: an interrupted sweep still
			// leaves a timeline of the cells that ran.
			if tErr := traceout.ExportObserver(*traceOut, observer); err == nil {
				err = tErr
			}
		}
		return err
	}))
}

func run(env *runner.Env, cfg exp.Config, runSel, csvPath, stats string, observer *obs.Observer) error {
	want := map[string]bool{}
	for _, r := range strings.Split(runSel, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]
	out := os.Stdout

	start := time.Now()
	if all || want["tableII"] {
		exp.WriteTableII(out)
		fmt.Fprintln(out)
	}
	if all || want["fig3"] {
		probs, degs, err := cfg.Fig3()
		if err != nil {
			return err
		}
		exp.WriteHistogram(out, "Figure 3a: edge probability distributions", probs)
		exp.WriteHistogram(out, "Figure 3b: degree distributions (log-spaced buckets)", degs)
		fmt.Fprintln(out)
	}
	if all || want["fig4"] {
		rows, err := cfg.Fig4()
		if err != nil {
			return err
		}
		exp.WriteFig4(out, rows)
		fmt.Fprintln(out)
	}

	needSweep := all || want["tableI"] || want["fig8"] || want["fig9"] || want["fig10"] || want["fig11"] || want["timing"] || want["sweep"]
	if needSweep {
		runs, bases, err := cfg.SweepAll(exp.Methods)
		if err != nil {
			return err
		}
		if all || want["tableI"] {
			cfg.WriteTableI(out, bases)
			fmt.Fprintln(out)
		}
		for _, fig := range []string{"fig8", "fig9", "fig10", "fig11"} {
			if all || want[fig] {
				if err := exp.WriteFigure(out, fig, runs); err != nil {
					return err
				}
				fmt.Fprintln(out)
			}
		}
		if all || want["timing"] {
			exp.WriteTiming(out, runs)
			fmt.Fprintln(out)
		}
		if csvPath != "" {
			f, err := os.Create(csvPath)
			if err != nil {
				return err
			}
			exp.WriteRunsCSV(f, runs)
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote raw grid to %s\n\n", csvPath)
		}
	}

	if all || want["attack"] {
		rows, err := cfg.AttackExperiment()
		if err != nil {
			return err
		}
		exp.WriteAttack(out, rows)
		fmt.Fprintln(out)
	}
	if all || want["centrality"] {
		rows, err := cfg.CentralityExperiment()
		if err != nil {
			return err
		}
		exp.WriteCentrality(out, rows)
		fmt.Fprintln(out)
	}
	if all || want["dp"] {
		rows, err := cfg.DPComparison()
		if err != nil {
			return err
		}
		exp.WriteDP(out, rows)
		fmt.Fprintln(out)
	}
	if all || want["knn"] {
		rows, err := cfg.KNNExperiment()
		if err != nil {
			return err
		}
		exp.WriteKNN(out, rows)
		fmt.Fprintln(out)
	}
	if all || want["ablations"] {
		if err := runAblations(cfg, out); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "total: %v\n", time.Since(start).Round(time.Millisecond))

	if observer != nil {
		for _, span := range observer.Spans() {
			if err := env.Journal.WriteSpan(time.Now(), span); err != nil {
				return err
			}
		}
	}
	if err := writeStats(stats, observer); err != nil {
		return err
	}
	// The whole requested artifact set completed: a sweep checkpoint has
	// nothing left to resume, so clear it.
	return cfg.Finish()
}

// writeStats dumps the observer snapshot per the -stats flag contract: ""
// is off, "-" writes aligned text to stderr, anything else is a JSON file.
func writeStats(dest string, observer *obs.Observer) error {
	if dest == "" {
		return nil
	}
	if dest == "-" {
		return observer.WriteText(os.Stderr)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := observer.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runAblations(cfg exp.Config, out *os.File) error {
	// ERR estimator cost on purpose-built small graphs: the naive
	// estimator of Lemma 2 is quadratic in |E| and exists only to show why
	// the Algorithm 2 reuse estimator matters.
	sizes := []int{100, 200, 400}
	samples := 100
	if cfg.Quick {
		sizes = []int{50, 100}
		samples = 30
	}
	var rows []exp.ERRCostRow
	for _, m := range sizes {
		g, err := exp.ERRCostGraph(m, cfg.Seed)
		if err != nil {
			return err
		}
		rows = append(rows, exp.ERRCost(g, samples, cfg.Seed, cfg.Workers))
	}
	exp.WriteERRCost(out, rows)
	fmt.Fprintln(out)

	d := cfg.Datasets()[0]
	g, err := cfg.BuildDataset(d)
	if err != nil {
		return err
	}
	gain := exp.EntropyGain(g, []float64{0.01, 0.05, 0.1, 0.2, 0.4}, cfg.Seed)
	exp.WriteEntropyGain(out, gain)
	fmt.Fprintln(out)

	eRows, err := cfg.ExtractionAblation()
	if err != nil {
		return err
	}
	exp.WriteExtraction(out, eRows)
	fmt.Fprintln(out)

	cRows, err := cfg.CSweepAblation(nil)
	if err != nil {
		return err
	}
	exp.WriteCSweep(out, cRows)
	fmt.Fprintln(out)

	budgets := []int{10, 100, 1000}
	reps := 10
	if cfg.Quick {
		budgets = []int{10, 100, 500}
		reps = 6
	}
	conv := exp.ConvergenceStudy(g, budgets, reps, cfg.Seed, cfg.Workers)
	exp.WriteConvergence(out, conv)
	fmt.Fprintln(out)

	epsRows, err := cfg.EpsilonSweep(nil)
	if err != nil {
		return err
	}
	exp.WriteEpsilonSweep(out, epsRows)
	fmt.Fprintln(out)
	return nil
}
