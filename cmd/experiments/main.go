// Command experiments reproduces the paper's evaluation: Table I, Table
// II, Figure 3 (dataset distributions), Figure 4 (Rep-An distortion vs the
// Chameleon lower bound) and Figures 8-11 (reliability, average degree,
// average distance and clustering preservation across methods and k), plus
// the two ablation studies (ERR estimator cost; ME-vs-unguided entropy
// gain).
//
// Usage:
//
//	experiments                  # full sweep (several minutes)
//	experiments -quick           # miniature datasets, seconds
//	experiments -run fig8        # one artifact: tableI tableII fig3 fig4
//	                             # fig8 fig9 fig10 fig11 ablations sweep
//	experiments -csv runs.csv    # also dump the raw grid
//	experiments -serve :9100     # live /metrics, /healthz, /runs, /debug/pprof
//	experiments -journal r.jsonl # append a replayable JSONL run journal
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chameleon/internal/exp"
	"chameleon/internal/obs"
	"chameleon/internal/obs/expose"
	"chameleon/internal/obs/journal"
)

// Run-scoped telemetry handles, package-level so fail can mark the run
// "failed" (in /runs and the journal) from any exit path. All are nil-safe
// zero values until their flags enable them.
var (
	observer *obs.Observer
	jw       *journal.Writer
	srv      *expose.Server
	runID    string
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "miniature datasets and reduced sampling budgets")
		run     = flag.String("run", "all", "comma-separated artifacts: tableI,tableII,fig3,fig4,fig8,fig9,fig10,fig11,attack,knn,dp,centrality,timing,ablations,all")
		samples = flag.Int("samples", 0, "override reliability sample budget")
		seed    = flag.Uint64("seed", 7, "random seed")
		csvPath = flag.String("csv", "", "write the raw sweep grid as CSV")
		workers = flag.Int("workers", 0, "Monte Carlo sampling parallelism (0 = all cores)")
		verbose = flag.Bool("v", false, "log structured per-cell progress to stderr")
		stats   = flag.String("stats", "", "dump the final metrics snapshot: a path writes JSON, '-' writes text to stderr")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
		trcPath = flag.String("trace", "", "write a runtime execution trace to this file")
		serveAt = flag.String("serve", "", "serve live telemetry (/metrics, /healthz, /runs, /debug/pprof) on this address for the duration of the sweep")
		jrnPath = flag.String("journal", "", "append a JSONL run journal (begin, periodic snapshots, phase spans, final CI report) to this file")
	)
	flag.Parse()

	stopProfiles, err := obs.StartProfiles(*cpuProf, *memProf, *trcPath)
	fail(err)

	if *stats != "" || *verbose || *serveAt != "" || *jrnPath != "" {
		observer = obs.NewObserver()
		if *verbose {
			observer.Logger = obs.NewLogger(os.Stderr)
		}
	}

	if *jrnPath != "" {
		jw, err = journal.Open(*jrnPath)
		fail(err)
		runID, err = jw.Begin("experiments", os.Args[1:], time.Now())
		fail(err)
	}
	if *serveAt != "" {
		opts := expose.Options{}
		if jw != nil {
			opts.OnSnapshot = func(at time.Time, s obs.Snapshot, rates map[string]float64) {
				jw.WriteSnapshot(at, s, rates)
			}
		}
		srv = expose.New(observer, opts)
		if runID == "" {
			runID = journal.NewRunID(time.Now())
		}
		srv.AddRun(expose.RunInfo{ID: runID, Command: "experiments", Args: os.Args[1:], Start: time.Now(), Status: "running"})
		addr, err := srv.Start(*serveAt)
		fail(err)
		fmt.Fprintf(os.Stderr, "experiments: serving telemetry on http://%s/metrics\n", addr)
	}

	cfg := exp.Config{Quick: *quick, Samples: *samples, Seed: *seed, Workers: *workers, Obs: observer}
	want := map[string]bool{}
	for _, r := range strings.Split(*run, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]
	out := os.Stdout

	start := time.Now()
	if all || want["tableII"] {
		exp.WriteTableII(out)
		fmt.Fprintln(out)
	}
	if all || want["fig3"] {
		probs, degs, err := cfg.Fig3()
		fail(err)
		exp.WriteHistogram(out, "Figure 3a: edge probability distributions", probs)
		exp.WriteHistogram(out, "Figure 3b: degree distributions (log-spaced buckets)", degs)
		fmt.Fprintln(out)
	}
	if all || want["fig4"] {
		rows, err := cfg.Fig4()
		fail(err)
		exp.WriteFig4(out, rows)
		fmt.Fprintln(out)
	}

	needSweep := all || want["tableI"] || want["fig8"] || want["fig9"] || want["fig10"] || want["fig11"] || want["timing"] || want["sweep"]
	if needSweep {
		runs, bases, err := cfg.SweepAll(exp.Methods)
		fail(err)
		if all || want["tableI"] {
			cfg.WriteTableI(out, bases)
			fmt.Fprintln(out)
		}
		for _, fig := range []string{"fig8", "fig9", "fig10", "fig11"} {
			if all || want[fig] {
				fail(exp.WriteFigure(out, fig, runs))
				fmt.Fprintln(out)
			}
		}
		if all || want["timing"] {
			exp.WriteTiming(out, runs)
			fmt.Fprintln(out)
		}
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			fail(err)
			exp.WriteRunsCSV(f, runs)
			fail(f.Close())
			fmt.Fprintf(out, "wrote raw grid to %s\n\n", *csvPath)
		}
	}

	if all || want["attack"] {
		rows, err := cfg.AttackExperiment()
		fail(err)
		exp.WriteAttack(out, rows)
		fmt.Fprintln(out)
	}
	if all || want["centrality"] {
		rows, err := cfg.CentralityExperiment()
		fail(err)
		exp.WriteCentrality(out, rows)
		fmt.Fprintln(out)
	}
	if all || want["dp"] {
		rows, err := cfg.DPComparison()
		fail(err)
		exp.WriteDP(out, rows)
		fmt.Fprintln(out)
	}
	if all || want["knn"] {
		rows, err := cfg.KNNExperiment()
		fail(err)
		exp.WriteKNN(out, rows)
		fmt.Fprintln(out)
	}
	if all || want["ablations"] {
		runAblations(cfg, out)
	}
	fmt.Fprintf(out, "total: %v\n", time.Since(start).Round(time.Millisecond))

	srv.Poll() // one final differ tick so the journal sees the end state
	srv.SetRunStatus(runID, "done")
	fail(srv.Close())
	if jw != nil {
		for _, span := range observer.Spans() {
			fail(jw.WriteSpan(time.Now(), span))
		}
		fail(jw.End(time.Now(), "done", observer.Registry().Snapshot()))
		fail(jw.Close())
	}
	fail(writeStats(*stats, observer))
	fail(stopProfiles())
}

// writeStats dumps the observer snapshot per the -stats flag contract: ""
// is off, "-" writes aligned text to stderr, anything else is a JSON file.
func writeStats(dest string, observer *obs.Observer) error {
	if dest == "" {
		return nil
	}
	if dest == "-" {
		return observer.WriteText(os.Stderr)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := observer.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runAblations(cfg exp.Config, out *os.File) {
	// ERR estimator cost on purpose-built small graphs: the naive
	// estimator of Lemma 2 is quadratic in |E| and exists only to show why
	// the Algorithm 2 reuse estimator matters.
	sizes := []int{100, 200, 400}
	samples := 100
	if cfg.Quick {
		sizes = []int{50, 100}
		samples = 30
	}
	var rows []exp.ERRCostRow
	for _, m := range sizes {
		g, err := exp.ERRCostGraph(m, cfg.Seed)
		fail(err)
		rows = append(rows, exp.ERRCost(g, samples, cfg.Seed, cfg.Workers))
	}
	exp.WriteERRCost(out, rows)
	fmt.Fprintln(out)

	d := cfg.Datasets()[0]
	g, err := cfg.BuildDataset(d)
	fail(err)
	gain := exp.EntropyGain(g, []float64{0.01, 0.05, 0.1, 0.2, 0.4}, cfg.Seed)
	exp.WriteEntropyGain(out, gain)
	fmt.Fprintln(out)

	eRows, err := cfg.ExtractionAblation()
	fail(err)
	exp.WriteExtraction(out, eRows)
	fmt.Fprintln(out)

	cRows, err := cfg.CSweepAblation(nil)
	fail(err)
	exp.WriteCSweep(out, cRows)
	fmt.Fprintln(out)

	budgets := []int{10, 100, 1000}
	reps := 10
	if cfg.Quick {
		budgets = []int{10, 100, 500}
		reps = 6
	}
	conv := exp.ConvergenceStudy(g, budgets, reps, cfg.Seed, cfg.Workers)
	exp.WriteConvergence(out, conv)
	fmt.Fprintln(out)

	epsRows, err := cfg.EpsilonSweep(nil)
	fail(err)
	exp.WriteEpsilonSweep(out, epsRows)
	fmt.Fprintln(out)
}

// fail exits on a non-nil error after marking the run "failed": the /runs
// entry flips status, and an open journal gets a final "end" record with
// the snapshot at the point of failure, so failed runs are
// distinguishable from truncated in-flight ones. Nil-safe at every stage
// of startup: srv, jw and observer may still be their zero values.
func fail(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "experiments:", err)
	srv.Poll()
	srv.SetRunStatus(runID, "failed")
	srv.Close()
	if jw != nil {
		var final obs.Snapshot
		if observer != nil {
			final = observer.Registry().Snapshot()
		}
		jw.End(time.Now(), "failed", final)
		jw.Close()
	}
	os.Exit(1)
}
