package chameleon

import (
	"chameleon/internal/obs/wideevent"
	"chameleon/internal/query"
)

// QueryEngine is the in-process query plane: typed queries (pairwise
// reliability, k-NN, degree and centrality metrics) over one uncertain
// graph behind a shared label cache, with per-request IDs, HDR latency
// instruments, sampled spans and optional wide-event request logs. It
// is what cmd/ugload load-tests and what Serve can mount at /query.
type QueryEngine = query.Engine

// QueryOptions configures NewQueryEngine.
type QueryOptions = query.Options

// QueryRequest is one typed query descriptor.
type QueryRequest = query.Request

// QueryResponse is the answer to one QueryRequest.
type QueryResponse = query.Response

// NewQueryEngine builds a query engine over g.
func NewQueryEngine(g *Graph, opts QueryOptions) *QueryEngine {
	return query.New(g, opts)
}

// IsBadQuery reports whether err is a request-validation failure (as
// opposed to an engine failure); the HTTP layer maps these to 400.
func IsBadQuery(err error) bool { return query.IsBadRequest(err) }

// WideEvent is one structured request-log record: every dimension of a
// single request (identity, kind, parameters, outcome, latency) in one
// JSON line.
type WideEvent = wideevent.Event

// WideEventOptions configures a wide-event writer's sampling policy.
type WideEventOptions = wideevent.Options

// WideEventWriter appends sampled wide events as JSON lines. A nil
// writer drops everything.
type WideEventWriter = wideevent.Writer

// OpenWideEvents opens (creating or appending) a wide-event log at path.
func OpenWideEvents(path string, opts WideEventOptions) (*WideEventWriter, error) {
	return wideevent.Open(path, opts)
}

// ReadWideEvents reads a wide-event log back from disk.
func ReadWideEvents(path string) ([]WideEvent, error) {
	return wideevent.ReadFile(path)
}
