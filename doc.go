// Package chameleon is a from-scratch Go implementation of the Chameleon
// framework from "Sharing Uncertain Graphs Using Syntactic Private Graph
// Models" (Xiao, Eltabakh, Kong — ICDE 2018): privacy-preserving
// publication of uncertain graphs under the syntactic (k, ε)-obfuscation
// model with a reliability-based utility objective.
//
// # The problem
//
// An uncertain graph labels each edge with an independent existence
// probability; under possible-world semantics it denotes a distribution
// over deterministic graphs. Publishing such graphs naively exposes
// participants to identity disclosure: an adversary who knows a target's
// degree can re-identify its vertex. Conventional graph anonymizers assume
// deterministic edges; detaching the probabilities first (the Rep-An
// baseline) injects so much noise that the published graph becomes
// structurally useless.
//
// # The approach
//
// Chameleon integrates the uncertainty into every step:
//
//   - Utility is measured by reliability discrepancy — the change in
//     two-terminal connection probabilities over all vertex pairs.
//   - Edges are ranked by reliability relevance (a probabilistic
//     generalization of cut edges) so that perturbation avoids
//     structurally critical edges, estimated with a sample-reuse Monte
//     Carlo algorithm that is |E| times cheaper than the naive estimator.
//   - Probabilities are perturbed along the degree-entropy gradient
//     (p~ = p + (1-2p)·r), which maximizes the anonymity gained per unit
//     of injected noise.
//   - A binary search finds the smallest noise level σ that achieves the
//     requested (k, ε)-obfuscation.
//
// # Quick start
//
//	g, _ := chameleon.GenerateDataset("dblp-s", 1)
//	res, err := chameleon.Anonymize(g, chameleon.Options{K: 20, Epsilon: 0.01})
//	if err != nil { ... }
//	fmt.Println(res.Graph.NumEdges(), res.Sigma)
//
// See the examples/ directory for complete scenarios and DESIGN.md for the
// system inventory and the paper-experiment index.
package chameleon
