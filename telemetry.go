package chameleon

import (
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/obs/expose"
	"chameleon/internal/obs/journal"
	"chameleon/internal/obs/traceout"
)

// MetricsSnapshot is the frozen state of an observer's metrics registry:
// counters, gauges, histograms and estimator-quality streams. Obtain one
// with Observer.Registry().Snapshot().
type MetricsSnapshot = obs.Snapshot

// TelemetryServer serves an observer's live state over HTTP: /metrics in
// Prometheus text format (estimator-quality gauges included), /healthz,
// /runs, and /debug/pprof, plus a periodic snapshot differ that turns
// counters into *_per_second rate gauges. A nil *TelemetryServer is a
// usable no-op, mirroring the nil-Observer contract.
type TelemetryServer = expose.Server

// TelemetryOptions configures NewTelemetryServer (namespace, differ
// interval, per-tick snapshot hook).
type TelemetryOptions = expose.Options

// RunInfo is one run record listed by the telemetry server's /runs.
type RunInfo = expose.RunInfo

// NewTelemetryServer builds a telemetry server over the observer; call
// Start(addr) to bind it and Close to tear it down.
func NewTelemetryServer(o *Observer, opts TelemetryOptions) *TelemetryServer {
	return expose.New(o, opts)
}

// Journal appends a run's telemetry — begin/end brackets, periodic metric
// snapshots, finished phase traces — to an append-only JSONL journal. A
// nil *Journal is a usable no-op.
type Journal = journal.Writer

// JournalRun is one replayed run from a journal file.
type JournalRun = journal.Run

// OpenJournal opens (creating or appending) the journal file at path.
func OpenJournal(path string) (*Journal, error) { return journal.Open(path) }

// ReadJournal replays the journal file at path into its runs, in order of
// first appearance.
func ReadJournal(path string) ([]*JournalRun, error) { return journal.ReadFile(path) }

// NewRunID returns a fresh journal run identifier.
func NewRunID(now time.Time) string { return journal.NewRunID(now) }

// ExportTrace writes every span tree the observer has collected to path in
// the Chrome trace-event JSON format, loadable in chrome://tracing and
// Perfetto. Running spans are exported with their live duration and a
// running:true arg, so exporting after an interrupt still yields a
// truthful timeline. A nil observer writes a valid empty trace.
func ExportTrace(path string, o *Observer) error {
	return traceout.ExportObserver(path, o)
}
