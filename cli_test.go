package chameleon

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/obs/journal"
)

// TestCLIPipeline builds the command-line tools and drives the full
// publish workflow end to end: generate -> anonymize -> evaluate ->
// attack. Skipped in -short mode (it shells out to the Go toolchain).
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline test skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"genug", "chameleon", "ugstat", "attack", "ugquery"} {
		bin := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
		bins[tool] = bin
	}

	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[tool], args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
		}
		return string(out)
	}

	graphPath := filepath.Join(dir, "g.tsv")
	anonPath := filepath.Join(dir, "anon.tsv")

	run("genug", "-topology", "ba", "-nodes", "150", "-degree", "2",
		"-probs", "discrete", "-seed", "3", "-o", graphPath)
	if _, err := os.Stat(graphPath); err != nil {
		t.Fatalf("genug did not write the graph: %v", err)
	}

	out := run("chameleon", "-in", graphPath, "-out", anonPath,
		"-k", "5", "-eps", "0.05", "-samples", "100", "-seed", "7")
	if !strings.Contains(out, "eps~=") {
		t.Fatalf("chameleon summary missing: %s", out)
	}
	if !strings.Contains(out, "phases: precompute") {
		t.Fatalf("chameleon summary missing the phase breakdown: %s", out)
	}

	// The published file must load back as a valid graph with the same
	// vertex set.
	orig, err := LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	anon, err := LoadGraph(anonPath)
	if err != nil {
		t.Fatal(err)
	}
	if anon.NumNodes() != orig.NumNodes() {
		t.Fatalf("published graph has %d nodes, want %d", anon.NumNodes(), orig.NumNodes())
	}

	// Observability: -stats must dump a JSON snapshot holding the full
	// sigma-search trace (every attempt with sigma, outcome, duration)
	// plus the Monte Carlo sampling counters.
	snapPath := filepath.Join(dir, "stats.json")
	run("chameleon", "-in", graphPath, "-k", "5", "-eps", "0.05",
		"-samples", "100", "-seed", "7", "-workers", "2", "-q", "-stats", snapPath)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("chameleon -stats wrote nothing: %v", err)
	}
	var snap obs.ObserverSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("-stats snapshot is not valid JSON: %v\n%s", err, raw)
	}
	if snap.Counters["mc.worlds_sampled"] <= 0 {
		t.Fatalf("-stats snapshot missing MC sampling counters: %v", snap.Counters)
	}
	// Per-worker sample-balance counters: the chunked scheduler must account
	// for every drawn world, so the mc.worker.* counters sum exactly to
	// mc.worlds_sampled (both are only incremented by forEachSample).
	var workerSum int64
	workerCounters := 0
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "mc.worker.") {
			workerSum += v
			workerCounters++
		}
	}
	if workerCounters == 0 {
		t.Fatalf("-stats snapshot missing per-worker sample counters: %v", snap.Counters)
	}
	if got := snap.Counters["mc.worlds_sampled"]; workerSum != got {
		t.Fatalf("per-worker samples sum to %d, worlds_sampled says %d", workerSum, got)
	}
	if snap.Counters["core.genobf_calls"] <= 0 || snap.Counters["core.genobf_attempts"] <= 0 {
		t.Fatalf("-stats snapshot missing genobf counters: %v", snap.Counters)
	}
	if len(snap.Spans) == 0 {
		t.Fatal("-stats snapshot has no trace spans")
	}
	genobfs := snap.Spans[0].FindAll("genobf")
	if len(genobfs) == 0 {
		t.Fatalf("search trace has no genobf spans:\n%s", raw)
	}
	var attempts int
	for _, g := range genobfs {
		if _, ok := g.Attr("sigma"); !ok {
			t.Fatalf("genobf span lacks sigma: %+v", g.Attrs)
		}
		for _, a := range g.FindAll("attempt") {
			attempts++
			if _, ok := a.Attr("sigma"); !ok {
				t.Fatalf("attempt lacks sigma: %+v", a.Attrs)
			}
			if _, ok := a.Attr("ok"); !ok {
				t.Fatalf("attempt lacks outcome: %+v", a.Attrs)
			}
			if a.DurationNS <= 0 {
				t.Fatalf("attempt lacks wall time: %+v", a)
			}
		}
	}
	if want := int(snap.Counters["core.genobf_attempts"]); attempts != want {
		t.Fatalf("trace holds %d attempts, counters say %d", attempts, want)
	}

	statsOut := run("ugstat", "-g", graphPath, "-pub", anonPath, "-k", "5",
		"-samples", "100", "-metric-samples", "3")
	for _, want := range []string{"privacy", "reliability discrepancy", "clustering err"} {
		if !strings.Contains(statsOut, want) {
			t.Fatalf("ugstat output missing %q:\n%s", want, statsOut)
		}
	}

	attackOut := run("attack", "-orig", graphPath, "-pub", anonPath, "-k", "5")
	if !strings.Contains(attackOut, "mean posterior") {
		t.Fatalf("attack output missing summary:\n%s", attackOut)
	}
	targetOut := run("attack", "-orig", graphPath, "-pub", anonPath, "-k", "5", "-target", "0")
	if !strings.Contains(targetOut, "posterior entropy") {
		t.Fatalf("attack -target output missing entropy:\n%s", targetOut)
	}

	queryOut := run("ugquery", "-g", graphPath, "-pair", "0,5", "-knn", "0", "-k", "3",
		"-components", "-samples", "200")
	for _, want := range []string{"R(0,5)", "3-NN of vertex 0", "support components"} {
		if !strings.Contains(queryOut, want) {
			t.Fatalf("ugquery output missing %q:\n%s", want, queryOut)
		}
	}
	relOut := run("ugquery", "-g", graphPath, "-relevance", "-top", "5", "-samples", "200")
	if !strings.Contains(relOut, "ERR=") {
		t.Fatalf("ugquery relevance output:\n%s", relOut)
	}
	if err := exec.Command(bins["ugquery"], "-g", graphPath).Run(); err == nil {
		t.Fatal("ugquery without a query should fail")
	}

	// The experiments binary reproduces a single artifact in quick mode.
	expBin := filepath.Join(dir, "experiments")
	if out, err := exec.Command("go", "build", "-o", expBin, "./cmd/experiments").CombinedOutput(); err != nil {
		t.Fatalf("building experiments: %v\n%s", err, out)
	}
	expOut, err := exec.Command(expBin, "-quick", "-run", "tableII,fig3").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -quick: %v\n%s", err, expOut)
	}
	for _, want := range []string{"Table II", "Figure 3a", "dblp-q"} {
		if !strings.Contains(string(expOut), want) {
			t.Fatalf("experiments output missing %q:\n%s", want, expOut)
		}
	}

	// Binary output format round-trips through the tools.
	binGraph := filepath.Join(dir, "g.bin")
	run("genug", "-topology", "er", "-nodes", "60", "-edges", "120",
		"-seed", "4", "-binary", "-o", binGraph)
	statsBin := run("ugstat", "-g", binGraph, "-metric-samples", "3")
	if !strings.Contains(statsBin, "nodes") {
		t.Fatalf("ugstat on binary graph:\n%s", statsBin)
	}

	// Failure paths: missing flags exit nonzero.
	if err := exec.Command(bins["chameleon"]).Run(); err == nil {
		t.Fatal("chameleon without -in should fail")
	}
	if err := exec.Command(bins["ugstat"]).Run(); err == nil {
		t.Fatal("ugstat without -g should fail")
	}
	if err := exec.Command(bins["attack"]).Run(); err == nil {
		t.Fatal("attack without -orig should fail")
	}
	// Unknown dataset is rejected.
	if err := exec.Command(bins["genug"], "-dataset", "bogus").Run(); err == nil {
		t.Fatal("genug with unknown dataset should fail")
	}
}

// TestCLIServeJournal drives the live-telemetry path end to end: an
// experiments sweep with -serve keeps /metrics curl-able for its whole
// duration and must expose the estimator-quality gauges; -journal appends
// a JSONL journal that replays, and journalreplay reads it back. Skipped
// in -short mode.
func TestCLIServeJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI serve/journal test skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"experiments", "journalreplay"} {
		bin := filepath.Join(dir, tool)
		if out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+tool).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
		bins[tool] = bin
	}

	journalPath := filepath.Join(dir, "runs.jsonl")
	cmd := exec.Command(bins["experiments"], "-quick", "-run", "fig4", "-samples", "60",
		"-serve", "127.0.0.1:0", "-journal", journalPath)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// The CLI announces its bound ephemeral address on stderr before the
	// sweep starts.
	addrRe := regexp.MustCompile(`http://([^/\s]+)/metrics`)
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		cmd.Wait()
		t.Fatal("experiments -serve never announced its address")
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return 0, ""
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/runs"); code != 200 || !strings.Contains(body, "experiments") {
		t.Errorf("/runs = %d %q", code, body)
	}

	// Poll /metrics until the run ends: the endpoint must stay up for the
	// whole sweep and at some point expose both the per-estimator quality
	// gauges and the per-edge ERR standard-error gauge.
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	sawQuality, sawERRStderr, scrapes := false, false, 0
poll:
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("experiments -serve run failed: %v", err)
			}
			break poll
		case <-time.After(25 * time.Millisecond):
			code, body := get("/metrics")
			if code == 0 {
				continue // transient: race with process exit
			}
			scrapes++
			if code != 200 {
				t.Fatalf("/metrics status = %d", code)
			}
			if !strings.Contains(body, "chameleon_uptime_seconds") {
				t.Fatalf("/metrics body missing uptime gauge:\n%s", body)
			}
			sawQuality = sawQuality || strings.Contains(body, "chameleon_mc_quality_")
			sawERRStderr = sawERRStderr || strings.Contains(body, "chameleon_err_stderr_mean")
			// A repeated # TYPE line aborts a real Prometheus scrape (the
			// quality-stream expansion and the estimator's last-call gauges
			// must never land on the same name).
			typed := map[string]bool{}
			for _, line := range strings.Split(body, "\n") {
				name, ok := strings.CutPrefix(line, "# TYPE ")
				if !ok {
					continue
				}
				name, _, _ = strings.Cut(name, " ")
				if typed[name] {
					t.Fatalf("/metrics scrape has duplicate # TYPE for %s", name)
				}
				typed[name] = true
			}
		}
	}
	if scrapes == 0 {
		t.Fatal("run finished before a single /metrics scrape")
	}
	if !sawQuality {
		t.Error("no /metrics scrape exposed the mc.quality estimator gauges")
	}
	if !sawERRStderr {
		t.Error("no /metrics scrape exposed chameleon_err_stderr_mean")
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("telemetry endpoint still up after the run ended")
	}

	// The journal replays: one completed run whose final snapshot carries
	// the quality streams the sweep recorded.
	runs, err := journal.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("journal replays %d runs, want 1", len(runs))
	}
	run := runs[0]
	if run.Command != "experiments" || run.Status != "done" {
		t.Fatalf("replayed run = %s/%s, want experiments/done", run.Command, run.Status)
	}
	if run.Final == nil {
		t.Fatal("journal has no final snapshot")
	}
	if len(run.Final.Quality) == 0 {
		t.Errorf("final snapshot has no quality streams: %v", run.Final.Counters)
	}
	if run.Final.Counters["mc.worlds_sampled"] <= 0 {
		t.Errorf("final snapshot missing MC counters: %v", run.Final.Counters)
	}
	if len(run.Snapshots) == 0 {
		t.Error("journal holds no periodic snapshots (final Poll should add one)")
	}

	// journalreplay summarizes and compares.
	out, err := exec.Command(bins["journalreplay"], "-metric", "mc.worlds_sampled", journalPath).CombinedOutput()
	if err != nil {
		t.Fatalf("journalreplay: %v\n%s", err, out)
	}
	for _, want := range []string{"experiments", "done", "mc.worlds_sampled"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("journalreplay output missing %q:\n%s", want, out)
		}
	}
}
