package chameleon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"chameleon/internal/core"
	"chameleon/internal/obs"
	"chameleon/internal/obs/journal"
)

// TestCLIPipeline builds the command-line tools and drives the full
// publish workflow end to end: generate -> anonymize -> evaluate ->
// attack. Skipped in -short mode (it shells out to the Go toolchain).
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline test skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"genug", "chameleon", "ugstat", "attack", "ugquery", "certify"} {
		bin := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
		bins[tool] = bin
	}

	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[tool], args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
		}
		return string(out)
	}

	graphPath := filepath.Join(dir, "g.tsv")
	anonPath := filepath.Join(dir, "anon.tsv")

	run("genug", "-topology", "ba", "-nodes", "150", "-degree", "2",
		"-probs", "discrete", "-seed", "3", "-o", graphPath)
	if _, err := os.Stat(graphPath); err != nil {
		t.Fatalf("genug did not write the graph: %v", err)
	}

	out := run("chameleon", "-in", graphPath, "-out", anonPath,
		"-k", "5", "-eps", "0.05", "-samples", "100", "-seed", "7")
	if !strings.Contains(out, "eps~=") {
		t.Fatalf("chameleon summary missing: %s", out)
	}
	if !strings.Contains(out, "phases: precompute") {
		t.Fatalf("chameleon summary missing the phase breakdown: %s", out)
	}

	// The published file must load back as a valid graph with the same
	// vertex set.
	orig, err := LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	anon, err := LoadGraph(anonPath)
	if err != nil {
		t.Fatal(err)
	}
	if anon.NumNodes() != orig.NumNodes() {
		t.Fatalf("published graph has %d nodes, want %d", anon.NumNodes(), orig.NumNodes())
	}

	// Observability: -stats must dump a JSON snapshot holding the full
	// sigma-search trace (every attempt with sigma, outcome, duration)
	// plus the Monte Carlo sampling counters.
	snapPath := filepath.Join(dir, "stats.json")
	run("chameleon", "-in", graphPath, "-k", "5", "-eps", "0.05",
		"-samples", "100", "-seed", "7", "-workers", "2", "-q", "-stats", snapPath)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("chameleon -stats wrote nothing: %v", err)
	}
	var snap obs.ObserverSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("-stats snapshot is not valid JSON: %v\n%s", err, raw)
	}
	if snap.Counters["mc.worlds_sampled"] <= 0 {
		t.Fatalf("-stats snapshot missing MC sampling counters: %v", snap.Counters)
	}
	// Per-worker sample-balance counters: the chunked scheduler must account
	// for every drawn world, so the mc.worker.* counters sum exactly to
	// mc.worlds_sampled (both are only incremented by forEachSample).
	var workerSum int64
	workerCounters := 0
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "mc.worker.") {
			workerSum += v
			workerCounters++
		}
	}
	if workerCounters == 0 {
		t.Fatalf("-stats snapshot missing per-worker sample counters: %v", snap.Counters)
	}
	if got := snap.Counters["mc.worlds_sampled"]; workerSum != got {
		t.Fatalf("per-worker samples sum to %d, worlds_sampled says %d", workerSum, got)
	}
	if snap.Counters["core.genobf_calls"] <= 0 || snap.Counters["core.genobf_attempts"] <= 0 {
		t.Fatalf("-stats snapshot missing genobf counters: %v", snap.Counters)
	}
	if len(snap.Spans) == 0 {
		t.Fatal("-stats snapshot has no trace spans")
	}
	genobfs := snap.Spans[0].FindAll("genobf")
	if len(genobfs) == 0 {
		t.Fatalf("search trace has no genobf spans:\n%s", raw)
	}
	var attempts int
	for _, g := range genobfs {
		if _, ok := g.Attr("sigma"); !ok {
			t.Fatalf("genobf span lacks sigma: %+v", g.Attrs)
		}
		for _, a := range g.FindAll("attempt") {
			attempts++
			if _, ok := a.Attr("sigma"); !ok {
				t.Fatalf("attempt lacks sigma: %+v", a.Attrs)
			}
			if _, ok := a.Attr("ok"); !ok {
				t.Fatalf("attempt lacks outcome: %+v", a.Attrs)
			}
			if a.DurationNS <= 0 {
				t.Fatalf("attempt lacks wall time: %+v", a)
			}
		}
	}
	if want := int(snap.Counters["core.genobf_attempts"]); attempts != want {
		t.Fatalf("trace holds %d attempts, counters say %d", attempts, want)
	}

	statsOut := run("ugstat", "-g", graphPath, "-pub", anonPath, "-k", "5",
		"-samples", "100", "-metric-samples", "3")
	for _, want := range []string{"privacy", "reliability discrepancy", "clustering err"} {
		if !strings.Contains(statsOut, want) {
			t.Fatalf("ugstat output missing %q:\n%s", want, statsOut)
		}
	}

	// The published graph must pass the independent certificate checker
	// (testkit's re-derivation of Definition 3, not the production code
	// ugstat uses).
	certOut := run("certify", "-orig", graphPath, "-pub", anonPath, "-k", "5", "-eps", "0.05")
	if !strings.Contains(certOut, "CERTIFIED") || strings.Contains(certOut, "NOT CERTIFIED") {
		t.Fatalf("certify did not certify the published graph:\n%s", certOut)
	}
	// A graph that plainly violates the claim is rejected with exit 1: a
	// certain star "published" as itself leaves its hub's unique degree
	// fully exposed.
	starPath := filepath.Join(dir, "star.tsv")
	star := NewGraph(12)
	for v := 1; v < 12; v++ {
		star.MustAddEdge(0, NodeID(v), 1)
	}
	if err := SaveGraph(starPath, star); err != nil {
		t.Fatal(err)
	}
	certCmd := exec.Command(bins["certify"], "-orig", starPath, "-pub", starPath, "-k", "4", "-eps", "0")
	certBad, err := certCmd.CombinedOutput()
	var certExit *exec.ExitError
	if !errors.As(err, &certExit) || certExit.ExitCode() != 1 {
		t.Fatalf("certify on an unprotected graph: err=%v, want exit 1\n%s", err, certBad)
	}
	if !strings.Contains(string(certBad), "NOT CERTIFIED") {
		t.Fatalf("certify rejection output:\n%s", certBad)
	}

	attackOut := run("attack", "-orig", graphPath, "-pub", anonPath, "-k", "5")
	if !strings.Contains(attackOut, "mean posterior") {
		t.Fatalf("attack output missing summary:\n%s", attackOut)
	}
	targetOut := run("attack", "-orig", graphPath, "-pub", anonPath, "-k", "5", "-target", "0")
	if !strings.Contains(targetOut, "posterior entropy") {
		t.Fatalf("attack -target output missing entropy:\n%s", targetOut)
	}

	queryOut := run("ugquery", "-g", graphPath, "-pair", "0,5", "-knn", "0", "-k", "3",
		"-components", "-samples", "200")
	for _, want := range []string{"R(0,5)", "3-NN of vertex 0", "support components"} {
		if !strings.Contains(queryOut, want) {
			t.Fatalf("ugquery output missing %q:\n%s", want, queryOut)
		}
	}
	relOut := run("ugquery", "-g", graphPath, "-relevance", "-top", "5", "-samples", "200")
	if !strings.Contains(relOut, "ERR=") {
		t.Fatalf("ugquery relevance output:\n%s", relOut)
	}
	if err := exec.Command(bins["ugquery"], "-g", graphPath).Run(); err == nil {
		t.Fatal("ugquery without a query should fail")
	}

	// The experiments binary reproduces a single artifact in quick mode.
	expBin := filepath.Join(dir, "experiments")
	if out, err := exec.Command("go", "build", "-o", expBin, "./cmd/experiments").CombinedOutput(); err != nil {
		t.Fatalf("building experiments: %v\n%s", err, out)
	}
	expOut, err := exec.Command(expBin, "-quick", "-run", "tableII,fig3").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -quick: %v\n%s", err, expOut)
	}
	for _, want := range []string{"Table II", "Figure 3a", "dblp-q"} {
		if !strings.Contains(string(expOut), want) {
			t.Fatalf("experiments output missing %q:\n%s", want, expOut)
		}
	}

	// Binary output format round-trips through the tools.
	binGraph := filepath.Join(dir, "g.bin")
	run("genug", "-topology", "er", "-nodes", "60", "-edges", "120",
		"-seed", "4", "-binary", "-o", binGraph)
	statsBin := run("ugstat", "-g", binGraph, "-metric-samples", "3")
	if !strings.Contains(statsBin, "nodes") {
		t.Fatalf("ugstat on binary graph:\n%s", statsBin)
	}

	// Failure paths: missing flags exit nonzero.
	if err := exec.Command(bins["chameleon"]).Run(); err == nil {
		t.Fatal("chameleon without -in should fail")
	}
	if err := exec.Command(bins["ugstat"]).Run(); err == nil {
		t.Fatal("ugstat without -g should fail")
	}
	if err := exec.Command(bins["attack"]).Run(); err == nil {
		t.Fatal("attack without -orig should fail")
	}
	if err := exec.Command(bins["certify"]).Run(); err == nil {
		t.Fatal("certify without -orig/-pub should fail")
	}
	// Unknown dataset is rejected.
	if err := exec.Command(bins["genug"], "-dataset", "bogus").Run(); err == nil {
		t.Fatal("genug with unknown dataset should fail")
	}
}

// TestCLIServeJournal drives the live-telemetry path end to end: an
// experiments sweep with -serve keeps /metrics curl-able for its whole
// duration and must expose the estimator-quality gauges; -journal appends
// a JSONL journal that replays, and journalreplay reads it back. Skipped
// in -short mode.
func TestCLIServeJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI serve/journal test skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"experiments", "journalreplay"} {
		bin := filepath.Join(dir, tool)
		if out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+tool).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
		bins[tool] = bin
	}

	journalPath := filepath.Join(dir, "runs.jsonl")
	cmd := exec.Command(bins["experiments"], "-quick", "-run", "fig4", "-samples", "60",
		"-serve", "127.0.0.1:0", "-journal", journalPath)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// The CLI announces its bound ephemeral address on stderr before the
	// sweep starts.
	addrRe := regexp.MustCompile(`http://([^/\s]+)/metrics`)
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		cmd.Wait()
		t.Fatal("experiments -serve never announced its address")
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return 0, ""
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/runs"); code != 200 || !strings.Contains(body, "experiments") {
		t.Errorf("/runs = %d %q", code, body)
	}

	// One immediate scrape: the address is announced before the sweep
	// starts, so the endpoint must be serving a well-formed body right
	// now. The timing-sensitive assertions (quality gauges appearing as
	// the sweep progresses, duplicate-TYPE detection across differ ticks)
	// live in TestMetricsScrapeDuringRun, which drives the differ
	// in-process via the expose.Server.Poll() hook and cannot flake on
	// scheduling the way a timed subprocess scrape loop can.
	if code, body := get("/metrics"); code != 200 {
		t.Errorf("/metrics status = %d", code)
	} else if !strings.Contains(body, "chameleon_uptime_seconds") {
		t.Errorf("/metrics body missing uptime gauge:\n%s", body)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("experiments -serve run failed: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("telemetry endpoint still up after the run ended")
	}

	// The journal replays: one completed run whose final snapshot carries
	// the quality streams the sweep recorded.
	runs, err := journal.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("journal replays %d runs, want 1", len(runs))
	}
	run := runs[0]
	if run.Command != "experiments" || run.Status != "done" {
		t.Fatalf("replayed run = %s/%s, want experiments/done", run.Command, run.Status)
	}
	if run.Final == nil {
		t.Fatal("journal has no final snapshot")
	}
	if len(run.Final.Quality) == 0 {
		t.Errorf("final snapshot has no quality streams: %v", run.Final.Counters)
	}
	if run.Final.Counters["mc.worlds_sampled"] <= 0 {
		t.Errorf("final snapshot missing MC counters: %v", run.Final.Counters)
	}
	if len(run.Snapshots) == 0 {
		t.Error("journal holds no periodic snapshots (final Poll should add one)")
	}

	// journalreplay summarizes and compares.
	out, err := exec.Command(bins["journalreplay"], "-metric", "mc.worlds_sampled", journalPath).CombinedOutput()
	if err != nil {
		t.Fatalf("journalreplay: %v\n%s", err, out)
	}
	for _, want := range []string{"experiments", "done", "mc.worlds_sampled"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("journalreplay output missing %q:\n%s", want, out)
		}
	}
}

// TestCLIInterrupt drives the interrupt-safety contract end to end, per
// the runner's conventions: a SIGINT mid-run exits 130 with a journal end
// record of status "interrupted" and a valid atomic checkpoint on disk,
// and resuming from that checkpoint reproduces the uninterrupted run's
// output bit for bit. Skipped in -short mode.
func TestCLIInterrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI interrupt test skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"genug", "chameleon", "experiments"} {
		bin := filepath.Join(dir, tool)
		if out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+tool).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
		bins[tool] = bin
	}

	// waitThenInterrupt polls until the checkpoint at path passes valid
	// (atomic writes mean a reader never sees a half-written file), then
	// delivers SIGINT to cmd. The poll budget is generous: the runs below
	// hold many seconds of work beyond their first checkpoint write, so
	// the only way to flake is a machine too slow to run the suite at all.
	waitThenInterrupt := func(t *testing.T, cmd *exec.Cmd, path string, valid func([]byte) bool) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Minute)
		for {
			if data, err := os.ReadFile(path); err == nil && valid(data) {
				break
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				cmd.Wait()
				t.Fatalf("no valid checkpoint appeared at %s", path)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatalf("delivering SIGINT: %v", err)
		}
	}
	wantExit := func(t *testing.T, err error, code int, stderr *bytes.Buffer) {
		t.Helper()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != code {
			t.Fatalf("exit = %v, want code %d\nstderr:\n%s", err, code, stderr)
		}
	}

	// Sweep interruption: experiments checkpoints finished cells, the
	// journal closes with an "interrupted" end record, and rerunning with
	// the same flags resumes and reproduces the uninterrupted stdout.
	t.Run("sweep", func(t *testing.T) {
		journalPath := filepath.Join(dir, "sweep.jsonl")
		ckptPath := filepath.Join(dir, "cells.json")
		sweepArgs := []string{"-quick", "-run", "fig8", "-samples", "40", "-seed", "7"}

		baseline, err := exec.Command(bins["experiments"], sweepArgs...).Output()
		if err != nil {
			t.Fatalf("uninterrupted sweep: %v", err)
		}

		args := append(sweepArgs, "-journal", journalPath, "-checkpoint", ckptPath)
		cmd := exec.Command(bins["experiments"], args...)
		var stderr bytes.Buffer
		cmd.Stdout = io.Discard
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		type cellFile struct {
			Version int                        `json:"version"`
			Cells   map[string]json.RawMessage `json:"cells"`
		}
		waitThenInterrupt(t, cmd, ckptPath, func(data []byte) bool {
			var f cellFile
			return json.Unmarshal(data, &f) == nil && len(f.Cells) >= 1
		})
		wantExit(t, cmd.Wait(), 130, &stderr)

		// The checkpoint survives the interrupt and is valid JSON holding
		// at least one finished cell.
		data, err := os.ReadFile(ckptPath)
		if err != nil {
			t.Fatalf("checkpoint after interrupt: %v", err)
		}
		var cells cellFile
		if err := json.Unmarshal(data, &cells); err != nil {
			t.Fatalf("checkpoint is not valid JSON: %v", err)
		}
		if cells.Version != 1 || len(cells.Cells) == 0 {
			t.Fatalf("checkpoint version=%d cells=%d, want version 1 with cells", cells.Version, len(cells.Cells))
		}

		// The journal got a proper goodbye, not a truncated tail.
		runs, err := journal.ReadFile(journalPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != 1 || runs[0].Status != "interrupted" {
			t.Fatalf("journal after interrupt = %d runs, status %q; want 1 interrupted", len(runs), runs[0].Status)
		}
		if runs[0].Truncated() || runs[0].Error == "" {
			t.Fatalf("interrupted run: truncated=%v error=%q, want end record with cause", runs[0].Truncated(), runs[0].Error)
		}

		// Rerunning with the same flags resumes the sweep and reproduces
		// the uninterrupted output exactly (only the timing line differs).
		cmd = exec.Command(bins["experiments"], args...)
		var resumedOut, resumedErr bytes.Buffer
		cmd.Stdout = &resumedOut
		cmd.Stderr = &resumedErr
		if err := cmd.Run(); err != nil {
			t.Fatalf("resumed sweep: %v\n%s", err, resumedErr.String())
		}
		if !strings.Contains(resumedErr.String(), "resuming sweep") {
			t.Errorf("resumed sweep did not announce restored cells:\n%s", resumedErr.String())
		}
		if got, want := stripTiming(resumedOut.String()), stripTiming(string(baseline)); got != want {
			t.Errorf("resumed sweep output differs from uninterrupted run:\n--- resumed\n%s--- uninterrupted\n%s", got, want)
		}
		if _, err := os.Stat(ckptPath); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("completed sweep left its checkpoint behind (stat err: %v)", err)
		}
		runs, err = journal.ReadFile(journalPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != 2 || runs[1].Status != "done" {
			t.Fatalf("journal after resume = %d runs, last status %q; want 2 with done", len(runs), runs[len(runs)-1].Status)
		}
	})

	// Sigma-search interruption: chameleon checkpoints the search state
	// (every call, via -checkpoint-every 1), SIGINT stops it at the next
	// safe point, and -resume finishes the search with an output graph
	// bit-identical to the uninterrupted run.
	t.Run("sigma-search", func(t *testing.T) {
		graphPath := filepath.Join(dir, "big.tsv")
		basePath := filepath.Join(dir, "base.tsv")
		resumedPath := filepath.Join(dir, "resumed.tsv")
		ckptPath := filepath.Join(dir, "sigma.json")
		if out, err := exec.Command(bins["genug"], "-topology", "ba", "-nodes", "3000",
			"-degree", "5", "-probs", "uniform", "-seed", "7", "-o", graphPath).CombinedOutput(); err != nil {
			t.Fatalf("genug: %v\n%s", err, out)
		}
		// Heavy enough that the search runs for several seconds past its
		// first genobf call — the interrupt window.
		anonArgs := []string{"-in", graphPath, "-k", "60", "-eps", "0.01",
			"-samples", "2000", "-seed", "3", "-q"}

		if out, err := exec.Command(bins["chameleon"],
			append(anonArgs, "-out", basePath)...).CombinedOutput(); err != nil {
			t.Fatalf("uninterrupted run: %v\n%s", err, out)
		}

		cmd := exec.Command(bins["chameleon"], append(anonArgs,
			"-out", filepath.Join(dir, "never.tsv"),
			"-checkpoint", ckptPath, "-checkpoint-every", "1")...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		type sigmaFile struct {
			Version     int    `json:"version"`
			Phase       string `json:"phase"`
			GenObfCalls int    `json:"genobf_calls"`
		}
		waitThenInterrupt(t, cmd, ckptPath, func(data []byte) bool {
			var f sigmaFile
			return json.Unmarshal(data, &f) == nil && f.GenObfCalls >= 1
		})
		wantExit(t, cmd.Wait(), 130, &stderr)

		data, err := os.ReadFile(ckptPath)
		if err != nil {
			t.Fatalf("checkpoint after interrupt: %v", err)
		}
		var ck sigmaFile
		if err := json.Unmarshal(data, &ck); err != nil {
			t.Fatalf("checkpoint is not valid JSON: %v", err)
		}
		if ck.Version != core.CheckpointVersion || ck.Phase == "" || ck.GenObfCalls < 1 {
			t.Fatalf("checkpoint = %+v, want version %d with search progress", ck, core.CheckpointVersion)
		}

		if out, err := exec.Command(bins["chameleon"], append(anonArgs,
			"-out", resumedPath, "-resume", ckptPath)...).CombinedOutput(); err != nil {
			t.Fatalf("resumed run: %v\n%s", err, out)
		}
		base, err := os.ReadFile(basePath)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := os.ReadFile(resumedPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, resumed) {
			t.Errorf("resumed output differs from the uninterrupted run (%d vs %d bytes)", len(base), len(resumed))
		}
		if _, err := os.Stat(ckptPath); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("completed search left its checkpoint behind (stat err: %v)", err)
		}
	})
}

// stripTiming drops the wall-clock summary line ("total: ...") so two runs
// of the same sweep can be compared for semantic equality.
func stripTiming(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "total:") {
			continue
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}
