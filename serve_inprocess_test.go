package chameleon

import (
	"net/http/httptest"
	"strings"
	"testing"

	"chameleon/internal/exp"
	"chameleon/internal/obs/expose"
)

// TestMetricsScrapeDuringRun drives the telemetry endpoint in-process
// while a quick experiment sweep runs, using the expose.Server.Poll()
// test hook instead of wall-clock waits: every loop iteration forces one
// differ tick and scrapes the handler directly, and a final Poll+scrape
// after completion makes the quality-gauge assertions deterministic — the
// sweep's metrics are all committed by then, so the test cannot flake on
// scheduling (e.g. under -race) the way a timed subprocess scrape loop
// can.
func TestMetricsScrapeDuringRun(t *testing.T) {
	o := NewObserver()
	srv := expose.New(o, expose.Options{})
	handler := srv.Handler()
	scrape := func() string {
		t.Helper()
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
		if rr.Code != 200 {
			t.Fatalf("/metrics status = %d", rr.Code)
		}
		return rr.Body.String()
	}
	checkBody := func(body string) {
		t.Helper()
		if !strings.Contains(body, "chameleon_uptime_seconds") {
			t.Fatalf("/metrics body missing uptime gauge:\n%s", body)
		}
		// A repeated # TYPE line aborts a real Prometheus scrape (the
		// quality-stream expansion and the estimator's last-call gauges
		// must never land on the same name).
		typed := map[string]bool{}
		for _, line := range strings.Split(body, "\n") {
			name, ok := strings.CutPrefix(line, "# TYPE ")
			if !ok {
				continue
			}
			name, _, _ = strings.Cut(name, " ")
			if typed[name] {
				t.Fatalf("/metrics scrape has duplicate # TYPE for %s", name)
			}
			typed[name] = true
		}
	}

	done := make(chan error, 1)
	go func() {
		cfg := exp.Config{Quick: true, Samples: 60, Seed: 5, Obs: o}
		_, err := cfg.Fig4()
		done <- err
	}()

	// Scrape concurrently with the sweep: these mid-run bodies must always
	// be well-formed, whatever partial state they catch.
	running := true
	for running {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Fig4 sweep: %v", err)
			}
			running = false
		default:
			srv.Poll()
			checkBody(scrape())
		}
	}

	// Deterministic final state: one more differ tick after completion
	// must expose the per-estimator quality gauges and the ERR
	// standard-error gauge the sweep recorded.
	srv.Poll()
	body := scrape()
	checkBody(body)
	if !strings.Contains(body, "chameleon_mc_quality_") {
		t.Error("final /metrics scrape missing the mc.quality estimator gauges")
	}
	if !strings.Contains(body, "chameleon_err_stderr_mean") {
		t.Error("final /metrics scrape missing chameleon_err_stderr_mean")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
