package chameleon

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

func testGraph(t testing.TB) *Graph {
	t.Helper()
	g, err := GenerateDataset("dblp-s", 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func smallTestGraph(t testing.TB) *Graph {
	t.Helper()
	// Small heavy-tailed graph for fast anonymization tests.
	g := NewGraph(120)
	for i := 1; i < 120; i++ {
		// Preferential-ish: attach to i/2 and i-1.
		g.MustAddEdge(NodeID(i), NodeID(i/2), 0.6)
		if i > 1 && !g.HasEdge(NodeID(i), NodeID(i-1)) {
			g.MustAddEdge(NodeID(i), NodeID(i-1), 0.3)
		}
	}
	return g
}

func TestGenerateDatasetNames(t *testing.T) {
	names := DatasetNames()
	if len(names) != 3 {
		t.Fatalf("DatasetNames = %v", names)
	}
	for _, name := range names {
		g, err := GenerateDataset(name, 1)
		if err != nil {
			t.Fatalf("GenerateDataset(%s): %v", name, err)
		}
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
	}
	if _, err := GenerateDataset("bogus", 1); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestGenerateDatasetDeterministic(t *testing.T) {
	a, err := GenerateDataset("ppi-s", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDataset("ppi-s", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed must generate the same dataset")
	}
}

func TestGraphIO(t *testing.T) {
	g := smallTestGraph(t)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("Write/Read round trip changed the graph")
	}
	path := filepath.Join(t.TempDir(), "g.tsv")
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	h2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h2) {
		t.Fatal("Save/Load round trip changed the graph")
	}
}

func TestAnonymizeAllMethods(t *testing.T) {
	g := smallTestGraph(t)
	for _, m := range []Method{MethodRSME, MethodRS, MethodME, MethodRepAn} {
		m := m
		t.Run(string(m), func(t *testing.T) {
			res, err := Anonymize(g, Options{K: 5, Epsilon: 0.05, Method: m, Samples: 100, Seed: 9})
			if err != nil {
				t.Fatalf("Anonymize(%s): %v", m, err)
			}
			if res.Method != m {
				t.Fatalf("result method %s, want %s", res.Method, m)
			}
			if res.EpsilonTilde > 0.05 {
				t.Fatalf("eps~ = %v", res.EpsilonTilde)
			}
			if res.Graph == nil || res.Graph.NumNodes() != g.NumNodes() {
				t.Fatal("bad published graph")
			}
		})
	}
}

func TestAnonymizeDefaultsToRSME(t *testing.T) {
	g := smallTestGraph(t)
	res, err := Anonymize(g, Options{K: 4, Epsilon: 0.05, Samples: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodRSME {
		t.Fatalf("default method = %s, want RSME", res.Method)
	}
}

func TestAnonymizeUnknownMethod(t *testing.T) {
	g := smallTestGraph(t)
	if _, err := Anonymize(g, Options{K: 4, Epsilon: 0.05, Method: "nope"}); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestAnonymizeInvalidParams(t *testing.T) {
	g := smallTestGraph(t)
	if _, err := Anonymize(g, Options{K: 0}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Anonymize(g, Options{K: g.NumNodes() * 2, Epsilon: 0.01}); err == nil {
		t.Fatal("k > |V| should error")
	}
}

func TestCheckPrivacy(t *testing.T) {
	g := smallTestGraph(t)
	res, err := Anonymize(g, Options{K: 5, Epsilon: 0.05, Samples: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckPrivacy(g, res.Graph, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.K != 5 {
		t.Fatalf("report k = %d", rep.K)
	}
	if rep.EpsilonTilde > 0.05 {
		t.Fatalf("published graph fails the privacy check: %v", rep.EpsilonTilde)
	}
	if _, err := CheckPrivacy(g, res.Graph, 0); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestEvaluateUtilityIdentical(t *testing.T) {
	g := smallTestGraph(t)
	rep, err := EvaluateUtility(g, g.Clone(), UtilityOptions{Samples: 200, MetricSamples: 5, Pairs: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReliabilityDiscrepancy != 0 || rep.AvgDegreeError != 0 {
		t.Fatalf("identical graphs should have zero error: %+v", rep)
	}
}

func TestEvaluateUtilityDetectsDamage(t *testing.T) {
	g := smallTestGraph(t)
	damaged := g.Clone()
	for i := 0; i < damaged.NumEdges(); i += 2 {
		if err := damaged.SetProb(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := EvaluateUtility(g, damaged, UtilityOptions{Samples: 300, MetricSamples: 5, Pairs: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReliabilityDiscrepancy <= 0 {
		t.Fatal("halving the edges should cost reliability")
	}
	if rep.AvgDegreeError <= 0 {
		t.Fatal("halving the edges should change the average degree")
	}
}

func TestPairReliabilityFacade(t *testing.T) {
	g := NewGraph(3)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.4)
	r := PairReliability(g, 0, 2, 20000, 1)
	if math.Abs(r-0.2) > 0.02 {
		t.Fatalf("R(0,2) = %v, want ~0.2", r)
	}
}

func TestReliabilityFromFacade(t *testing.T) {
	g := NewGraph(3)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.4)
	vec := ReliabilityFrom(g, 0, 20000, 1)
	if vec[0] != 1 {
		t.Fatalf("self reliability = %v", vec[0])
	}
	if math.Abs(vec[2]-0.2) > 0.02 {
		t.Fatalf("vec[2] = %v, want ~0.2", vec[2])
	}
}

func TestEdgeRelevanceFacade(t *testing.T) {
	// Bridge beats redundant edge.
	g := NewGraph(4)
	g.MustAddEdge(0, 1, 0.8)
	g.MustAddEdge(1, 2, 0.8)
	g.MustAddEdge(0, 2, 0.8)
	g.MustAddEdge(2, 3, 0.8)
	rel := EdgeRelevance(g, 3000, 2)
	if rel[3] <= rel[0] {
		t.Fatalf("bridge relevance %v should beat triangle edge %v", rel[3], rel[0])
	}
}

func TestRepresentativeFacade(t *testing.T) {
	g := testGraph(t)
	rep := Representative(g)
	if rep.NumNodes() != g.NumNodes() {
		t.Fatal("representative vertex set mismatch")
	}
	for i := 0; i < rep.NumEdges(); i++ {
		if rep.Edge(i).P != 1 {
			t.Fatal("representative must be deterministic")
		}
	}
}

func TestSimulateAttackFacade(t *testing.T) {
	g := smallTestGraph(t)
	res, err := Anonymize(g, Options{K: 5, Epsilon: 0.05, Samples: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	before, err := SimulateAttack(g, g, 5)
	if err != nil {
		t.Fatal(err)
	}
	after, err := SimulateAttack(g, res.Graph, 5)
	if err != nil {
		t.Fatal(err)
	}
	if after.MeanPosterior >= before.MeanPosterior {
		t.Fatalf("attack should weaken after anonymization: %v -> %v",
			before.MeanPosterior, after.MeanPosterior)
	}
	if after.MeanRank <= before.MeanRank {
		t.Fatalf("target rank should worsen for the adversary: %v -> %v",
			before.MeanRank, after.MeanRank)
	}
	if _, err := SimulateAttack(g, res.Graph, 0); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestReliabilityKNNFacade(t *testing.T) {
	g := NewGraph(5)
	g.MustAddEdge(0, 1, 0.9)
	g.MustAddEdge(1, 2, 0.9)
	g.MustAddEdge(2, 3, 0.9)
	nbrs, err := ReliabilityKNN(g, 0, 2, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 2 {
		t.Fatalf("kNN = %v, want [1 2]", nbrs)
	}
	if _, err := ReliabilityKNN(g, 99, 2, 10, 1); err == nil {
		t.Fatal("bad source should error")
	}
}

func TestKNNPreservationFacade(t *testing.T) {
	g := smallTestGraph(t)
	score, err := KNNPreservation(g, g.Clone(), 5, 8, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if score != 1 {
		t.Fatalf("identical graphs: score = %v, want 1", score)
	}
	if _, err := KNNPreservation(g, NewGraph(3), 5, 8, 50, 2); err == nil {
		t.Fatal("size mismatch should error")
	}
}

func TestSaveGraphBinaryAutoLoad(t *testing.T) {
	g := smallTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveGraphBinary(path, g); err != nil {
		t.Fatal(err)
	}
	h, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("binary save + auto-detect load changed the graph")
	}
}
