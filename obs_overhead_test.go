package chameleon

import (
	"os"
	"testing"
	"time"

	"chameleon/internal/core"
	"chameleon/internal/obs"
	"chameleon/internal/obs/expose"
	"chameleon/internal/reliability"
)

// TestObsOverheadGuard enforces the instrumentation budget: with
// observability off (nil observer), the instrumented hot paths must stay
// within 2% of the same paths running with a live observer — i.e. the
// no-op recorder is genuinely free and all cost lives behind the observer.
//
// Wall-clock comparisons are noisy on shared machines, so the guard is
// opt-in: set OBS_OVERHEAD_GUARD=1 (scripts/check.sh documents it). Each
// side takes the best of several rounds to squeeze out scheduler noise.
func TestObsOverheadGuard(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GUARD") == "" {
		t.Skip("set OBS_OVERHEAD_GUARD=1 to run the wall-clock overhead guard")
	}
	cfg := benchConfig()
	g, err := cfg.BuildDataset(cfg.Datasets()[0])
	if err != nil {
		t.Fatal(err)
	}

	best := func(run func(b *testing.B)) float64 {
		const rounds = 5
		min := 0.0
		for r := 0; r < rounds; r++ {
			res := testing.Benchmark(run)
			ns := float64(res.NsPerOp())
			if min == 0 || ns < min {
				min = ns
			}
		}
		return min
	}

	cases := []struct {
		name string
		run  func(o *obs.Observer) func(b *testing.B)
	}{
		{"core.Anonymize", func(o *obs.Observer) func(b *testing.B) {
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Anonymize(g, core.Params{K: 8, Epsilon: 0.02, Samples: 100, Seed: 42, Obs: o}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"reliability.EdgeRelevance", func(o *obs.Observer) func(b *testing.B) {
			return func(b *testing.B) {
				est := reliability.Estimator{Samples: 150, Seed: 1, Obs: o}
				for i := 0; i < b.N; i++ {
					est.EdgeRelevance(g)
				}
			}
		}},
	}
	for _, c := range cases {
		off := best(c.run(nil))
		on := best(c.run(obs.NewObserver()))
		ratio := off / on
		t.Logf("%s: off %.0f ns/op, on %.0f ns/op, off/on %.4f", c.name, off, on, ratio)
		if ratio > 1.02 {
			t.Errorf("%s: disabled observability is %.1f%% slower than enabled — the no-op path regressed",
				c.name, (ratio-1)*100)
		}
	}

	// Serve mode: binding the exposition endpoint and letting its snapshot
	// differ tick in the background must add <2% to the anonymize path.
	// The ticker's only work is Registry().Snapshot() plus a map diff, off
	// the hot path entirely.
	plain := best(cases[0].run(obs.NewObserver()))
	servedObs := obs.NewObserver()
	srv := expose.New(servedObs, expose.Options{Interval: 50 * time.Millisecond})
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	served := best(cases[0].run(servedObs))
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ratio := served / plain
	t.Logf("%s serve-mode: plain %.0f ns/op, serving %.0f ns/op, serving/plain %.4f",
		cases[0].name, plain, served, ratio)
	if ratio > 1.02 {
		t.Errorf("%s: serve mode is %.1f%% slower than a bare observer — the exposition ticker leaked onto the hot path",
			cases[0].name, (ratio-1)*100)
	}
}
