package chameleon

import (
	"context"
	"io"
	"net/http"
	"os"
	"sort"
	"testing"
	"time"

	"chameleon/internal/core"
	"chameleon/internal/obs"
	"chameleon/internal/obs/expose"
	"chameleon/internal/query"
	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

// TestObsOverheadGuard enforces the instrumentation budget: with
// observability off (nil observer), the instrumented hot paths must stay
// within 2% of the same paths running with a live observer — i.e. the
// no-op recorder is genuinely free and all cost lives behind the observer.
//
// Wall-clock comparisons are noisy on shared machines, so the guard is
// opt-in: set OBS_OVERHEAD_GUARD=1 (scripts/check.sh documents it). The
// two sides of each comparison run in interleaved rounds (off, on, off,
// on, ...) so machine-wide drift — another tenant spinning up
// mid-measurement — hits both sides instead of biasing whichever ran
// second, and the verdict needs both the best-case and the median ratio
// over budget (see overBudget).
func TestObsOverheadGuard(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GUARD") == "" {
		t.Skip("set OBS_OVERHEAD_GUARD=1 to run the wall-clock overhead guard")
	}
	cfg := benchConfig()
	g, err := cfg.BuildDataset(cfg.Datasets()[0])
	if err != nil {
		t.Fatal(err)
	}

	// pairRounds interleaves rounds of a and b, returning every round's
	// ns/op per side. setup/teardown bracket each b round (the serve-mode
	// case uses them to scrape only while the served side runs).
	pairRounds := func(a, b func(*testing.B), setup func() func()) (nsA, nsB []float64) {
		const rounds = 5
		for r := 0; r < rounds; r++ {
			nsA = append(nsA, float64(testing.Benchmark(a).NsPerOp()))
			var teardown func()
			if setup != nil {
				teardown = setup()
			}
			nsB = append(nsB, float64(testing.Benchmark(b).NsPerOp()))
			if teardown != nil {
				teardown()
			}
		}
		return nsA, nsB
	}
	// overBudget compares the two sides at both their best-case and their
	// median timing. A genuine regression shifts the entire distribution,
	// so it must exceed the budget in both ratios; a one-off scheduler
	// spike moves only one of them, and is filtered without loosening the
	// 2% budget itself.
	overBudget := func(name string, slow, fast []float64) bool {
		minRatio := minOf(slow) / minOf(fast)
		medRatio := medianOf(slow) / medianOf(fast)
		t.Logf("%s: best %.0f vs %.0f ns/op (ratio %.4f), median %.0f vs %.0f ns/op (ratio %.4f)",
			name, minOf(slow), minOf(fast), minRatio, medianOf(slow), medianOf(fast), medRatio)
		return minRatio > 1.02 && medRatio > 1.02
	}

	cases := []struct {
		name string
		run  func(o *obs.Observer) func(b *testing.B)
	}{
		{"core.Anonymize", func(o *obs.Observer) func(b *testing.B) {
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Anonymize(g, core.Params{K: 8, Epsilon: 0.02, Samples: 100, Seed: 42, Obs: o}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"reliability.EdgeRelevance", func(o *obs.Observer) func(b *testing.B) {
			return func(b *testing.B) {
				est := reliability.Estimator{Samples: 150, Seed: 1, Obs: o}
				for i := 0; i < b.N; i++ {
					est.EdgeRelevance(g)
				}
			}
		}},
		{"query.Do", func(o *obs.Observer) func(b *testing.B) {
			// The query plane adds per-request instrumentation (counters,
			// HDR latency records, sampled spans, wide-event hooks) on top
			// of a cache-served estimate; with a nil observer all of it
			// must cost a pointer test. Warm outside the measured loop so
			// only the steady-state request path is compared.
			eng := query.New(g, query.Options{Samples: 100, Seed: 7, Obs: o})
			eng.Warm(context.Background())
			return func(b *testing.B) {
				ctx := context.Background()
				for i := 0; i < b.N; i++ {
					req := query.Request{Kind: query.KindPairReliability,
						U: 0, V: uncertain.NodeID(1 + i%64)}
					if _, err := eng.Do(ctx, req); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
	}
	for _, c := range cases {
		off, on := pairRounds(c.run(nil), c.run(obs.NewObserver()), nil)
		if overBudget(c.name+" off-vs-on", off, on) {
			t.Errorf("%s: disabled observability is over 2%% slower than enabled — the no-op path regressed", c.name)
		}
	}

	// Serve mode: binding the exposition endpoint, letting its snapshot
	// differ tick (which also samples runtime/metrics into the registry)
	// and scraping /metrics and /trace continuously must add <2% to the
	// anonymize path. Everything the server does — snapshot diffing,
	// runtime sampling, span-tree snapshots for /trace — runs off the hot
	// path, on the ticker goroutine or in request handlers. The scraper is
	// alive only during the served rounds so it cannot contaminate the
	// plain side of the comparison.
	servedObs := obs.NewObserver()
	srv := expose.New(servedObs, expose.Options{Interval: 250 * time.Millisecond})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	startScraper := func() func() {
		stop := make(chan struct{})
		scraped := make(chan struct{})
		go func() {
			defer close(scraped)
			scrape(addr, stop)
		}()
		return func() { close(stop); <-scraped }
	}
	plain, served := pairRounds(cases[0].run(obs.NewObserver()), cases[0].run(servedObs), startScraper)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if overBudget(cases[0].name+" serve-mode", served, plain) {
		t.Errorf("%s: serve mode is over 2%% slower than a bare observer — the exposition ticker, runtime sampler or /trace snapshots leaked onto the hot path",
			cases[0].name)
	}
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// scrape plays a monitoring stack against a live telemetry server: it
// GETs /metrics and /trace every 250ms until stop closes, draining the
// bodies like a real scraper would. 250ms is ~40x more aggressive than
// a production Prometheus interval, but tame enough that the in-process
// client (whose cost a real out-of-process scraper would not charge to
// the server) leaves the measured path most of a single-core machine.
// Scrape errors are ignored — the guard measures the serving cost, not
// endpoint health.
func scrape(addr string, stop <-chan struct{}) {
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			for _, path := range []string{"/metrics", "/trace"} {
				resp, err := http.Get("http://" + addr + path)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
}
