// B2B transaction-likelihood graph sharing (the paper's Motivation
// Scenario II).
//
// A marketplace predicts the likelihood of future transactions between
// companies. The prediction graph is commercially sensitive — a company's
// transaction degree reveals its financial activity — yet analysts need it
// for customer segmentation, which depends on the community structure.
// This example builds a community-structured B2B graph, shows how
// reliability relevance singles out the inter-community bridge edges that
// Chameleon's RS selection protects, and verifies that community
// separation survives publication.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sort"

	"chameleon"
	"chameleon/internal/gen"
)

const (
	companies = 400
	clusters  = 4
	k         = 8
	eps       = 0.02
)

func main() {
	rng := rand.New(rand.NewPCG(11, 0xb2b))
	g, err := gen.SBM(companies, clusters, 0.05, 0.0003, gen.UniformProbs(0.25, 0.75), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B2B graph: %d companies in %d market segments, %d predicted transactions\n",
		companies, clusters, g.NumEdges())

	// Rank edges by reliability relevance: the scarce inter-segment
	// bridges should concentrate at the top (the Figure 5a intuition) —
	// those are the edges Chameleon's RS selection steers noise away from.
	relevance := chameleon.EdgeRelevance(g, 400, 3)
	found, total := bridgeRecall(g, relevance)
	fmt.Printf("reliability relevance: %d of the %d inter-segment bridges rank in the top relevance decile\n",
		found, total)

	// The white-noise floor is lowered for this small, sharply clustered
	// graph: the default 1% floor would inject a handful of strong random
	// cross-segment edges, which is exactly the structure the analysts
	// need preserved.
	res, err := chameleon.Anonymize(g, chameleon.Options{
		K: k, Epsilon: eps, Method: chameleon.MethodRSME, Samples: 400, Seed: 12,
		WhiteNoise: 0.001,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published with k=%d: sigma=%.3f eps~=%.4f\n", k, res.Sigma, res.EpsilonTilde)

	// Segmentation utility: intra-segment pair reliability should stay far
	// above inter-segment reliability in the published graph.
	inOrig, outOrig := separation(g)
	inPub, outPub := separation(res.Graph)
	fmt.Printf("segment separation (intra vs inter pair reliability):\n")
	fmt.Printf("  original:  %.3f vs %.3f\n", inOrig, outOrig)
	fmt.Printf("  published: %.3f vs %.3f\n", inPub, outPub)
	if inPub > outPub {
		fmt.Println("customer segments remain separable after anonymization.")
	}
}

func segment(v chameleon.NodeID) int { return int(v) * clusters / companies }

// bridgeRecall reports how many of the inter-segment bridge edges land in
// the top relevance decile.
func bridgeRecall(g *chameleon.Graph, relevance []float64) (found, total int) {
	type ranked struct {
		idx int
		r   float64
	}
	all := make([]ranked, g.NumEdges())
	for i := range all {
		all[i] = ranked{i, relevance[i]}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].r > all[j].r })
	dec := len(all) / 10
	if dec == 0 {
		dec = 1
	}
	for rank, e := range all {
		edge := g.Edge(e.idx)
		if segment(edge.U) != segment(edge.V) {
			total++
			if rank < dec {
				found++
			}
		}
	}
	return found, total
}

// separation estimates mean intra- and inter-segment pair reliability over
// a fixed probe set.
func separation(g *chameleon.Graph) (intra, inter float64) {
	var nIntra, nInter int
	rng := rand.New(rand.NewPCG(4, 4))
	for probe := 0; probe < 40; probe++ {
		u := chameleon.NodeID(rng.IntN(g.NumNodes()))
		rel := chameleon.ReliabilityFrom(g, u, 200, uint64(probe))
		for t := 0; t < 10; t++ {
			v := chameleon.NodeID(rng.IntN(g.NumNodes()))
			if v == u {
				continue
			}
			if segment(u) == segment(v) {
				intra += rel[v]
				nIntra++
			} else {
				inter += rel[v]
				nInter++
			}
		}
	}
	if nIntra > 0 {
		intra /= float64(nIntra)
	}
	if nInter > 0 {
		inter /= float64(nInter)
	}
	return intra, inter
}
