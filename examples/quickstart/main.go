// Quickstart: generate an uncertain graph, anonymize it with Chameleon,
// check the privacy guarantee and measure the utility cost.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"chameleon"
)

func main() {
	// 1. Build an uncertain graph. Here: the scaled DBLP-like dataset; in
	// a real deployment this is your own data loaded via
	// chameleon.LoadGraph.
	g, err := chameleon.GenerateDataset("dblp-s", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original:   %d nodes, %d edges, mean edge probability %.2f\n",
		g.NumNodes(), g.NumEdges(), g.MeanProb())

	// 2. Anonymize: every vertex must hide among >= k candidates in the
	// adversary's posterior, up to a tolerated fraction eps of outliers.
	const (
		k   = 15
		eps = 0.005
	)
	res, err := chameleon.Anonymize(g, chameleon.Options{
		K:       k,
		Epsilon: eps,
		Method:  chameleon.MethodRSME,
		Samples: 500,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymized: %d edges, noise level sigma=%.4f, eps~=%.4f\n",
		res.Graph.NumEdges(), res.Sigma, res.EpsilonTilde)

	// 3. Verify the syntactic guarantee against the original degrees.
	priv, err := chameleon.CheckPrivacy(g, res.Graph, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("privacy:    %d of %d vertices below the k=%d entropy bar (eps~=%.4f <= eps=%.3f: %v)\n",
		priv.NonObfuscated, g.NumNodes(), k, priv.EpsilonTilde, eps, priv.EpsilonTilde <= eps)

	// 4. Measure what the anonymization cost in graph structure.
	util, err := chameleon.EvaluateUtility(g, res.Graph, chameleon.UtilityOptions{
		Samples: 300, MetricSamples: 20, Pairs: 5000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("utility:    reliability discrepancy %.4f, avg-degree err %.4f, avg-distance err %.4f\n",
		util.ReliabilityDiscrepancy, util.AvgDegreeError, util.AvgDistanceError)

	// 5. Publish: the TSV round-trips through LoadGraph.
	path := filepath.Join(os.TempDir(), "dblp_anonymized.tsv")
	if err := chameleon.SaveGraph(path, res.Graph); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published:  %s\n", path)
}
