// Road-network sharing with coexisting weights and probabilities.
//
// The paper's related work points out that casting probabilities into
// weights is meaningless: a road link carries BOTH a travel time (weight)
// and a congestion likelihood (probability) [19]. A traffic authority
// wants to publish its congestion-prediction network so that routing
// researchers can study expected travel times, without exposing which
// junctions exchange the most traffic (a junction's link count is
// identifying). This example anonymizes the existence probabilities with
// Chameleon, rebinds the travel times, and verifies that expected travel
// costs survive.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"chameleon"
	"chameleon/internal/weighted"
)

const (
	side = 16 // 16x16 junction grid
	k    = 6
	eps  = 0.02
)

func main() {
	g, weights := buildRoadNetwork()
	wg, err := weighted.New(g, weights)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d junctions, %d links (weight = minutes, probability = link open)\n",
		g.NumNodes(), g.NumEdges())

	before := wg.ExpectedTravel(weighted.Options{Samples: 300, Sources: 16, Seed: 4})
	fmt.Printf("original:  expected trip %.2f min, reachability %.2f\n",
		before.MeanCost, before.Reachability)

	res, err := chameleon.Anonymize(g, chameleon.Options{
		K: k, Epsilon: eps, Method: chameleon.MethodRSME, Samples: 400, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	priv, err := chameleon.CheckPrivacy(g, res.Graph, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published with k=%d: sigma=%.3f, %d junctions under the entropy bar (eps~=%.4f)\n",
		k, res.Sigma, priv.NonObfuscated, priv.EpsilonTilde)

	// Rebind travel times to the published probabilities; links invented
	// by the anonymizer get the network's typical travel time.
	pubW, err := wg.WithProbabilities(res.Graph, 3)
	if err != nil {
		log.Fatal(err)
	}
	after := pubW.ExpectedTravel(weighted.Options{Samples: 300, Sources: 16, Seed: 4})
	fmt.Printf("published: expected trip %.2f min, reachability %.2f\n",
		after.MeanCost, after.Reachability)
	fmt.Printf("travel-cost distortion: %.1f%%\n",
		100*abs(after.MeanCost-before.MeanCost)/before.MeanCost)
}

// buildRoadNetwork lays out a grid of junctions; horizontal arteries are
// fast (short weight) and reliable, side streets slower and more
// congestion-prone.
func buildRoadNetwork() (*chameleon.Graph, []float64) {
	rng := rand.New(rand.NewPCG(2024, 0x70ad))
	g := chameleon.NewGraph(side * side)
	var weights []float64
	id := func(r, c int) chameleon.NodeID { return chameleon.NodeID(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				// Horizontal artery: fast, usually open.
				g.MustAddEdge(id(r, c), id(r, c+1), 0.75+0.2*rng.Float64())
				weights = append(weights, 1+rng.Float64())
			}
			if r+1 < side {
				// Side street: slower, congestion-prone.
				g.MustAddEdge(id(r, c), id(r+1, c), 0.35+0.3*rng.Float64())
				weights = append(weights, 2+3*rng.Float64())
			}
		}
	}
	return g, weights
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
