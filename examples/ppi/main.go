// Protein-protein interaction sharing.
//
// A lab holds a PPI network whose edges carry experimental confidence
// values. It wants to release the network for a protein-complex detection
// challenge without exposing which interactions were measured for which
// protein (interaction degree identifies lab targets). Complex detection
// pipelines depend on reliability-based neighborhoods [4, 38], so the
// release is only useful if per-protein reliability neighborhoods survive
// anonymization.
package main

import (
	"fmt"
	"log"
	"sort"

	"chameleon"
)

const (
	k         = 20
	eps       = 0.02
	neighbors = 10
	probes    = 12
)

func main() {
	g, err := chameleon.GenerateDataset("ppi-s", 33)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPI network: %d proteins, %d scored interactions (mean confidence %.2f)\n",
		g.NumNodes(), g.NumEdges(), g.MeanProb())

	res, err := chameleon.Anonymize(g, chameleon.Options{
		K: k, Epsilon: eps, Method: chameleon.MethodRSME, Samples: 400, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	priv, err := chameleon.CheckPrivacy(g, res.Graph, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released with k=%d: sigma=%.3f, %d proteins under the entropy bar (eps~=%.4f)\n",
		k, res.Sigma, priv.NonObfuscated, priv.EpsilonTilde)

	// Measure reliability-neighborhood survival: for a sample of probe
	// proteins, compare the top reliability neighbors before and after.
	var totalOverlap, count int
	for p := 0; p < probes; p++ {
		src := chameleon.NodeID(p * g.NumNodes() / probes)
		before := topReliable(g, src)
		after := topReliable(res.Graph, src)
		ov := overlap(before, after)
		totalOverlap += ov
		count++
		if p < 4 {
			fmt.Printf("  protein %4d: top-%d reliability neighborhood overlap %d/%d\n",
				src, neighbors, ov, neighbors)
		}
	}
	fmt.Printf("mean neighborhood overlap across %d probes: %.1f/%d\n",
		count, float64(totalOverlap)/float64(count), neighbors)
	fmt.Println("complex-detection neighborhoods survive the anonymization.")
}

func topReliable(g *chameleon.Graph, src chameleon.NodeID) map[chameleon.NodeID]bool {
	rel := chameleon.ReliabilityFrom(g, src, 300, 17)
	type scored struct {
		v chameleon.NodeID
		r float64
	}
	var all []scored
	for v := range rel {
		if chameleon.NodeID(v) != src && rel[v] > 0 {
			all = append(all, scored{chameleon.NodeID(v), rel[v]})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].r != all[j].r {
			return all[i].r > all[j].r
		}
		return all[i].v < all[j].v
	})
	out := make(map[chameleon.NodeID]bool, neighbors)
	for i := 0; i < neighbors && i < len(all); i++ {
		out[all[i].v] = true
	}
	return out
}

func overlap(a, b map[chameleon.NodeID]bool) int {
	n := 0
	for v := range a {
		if b[v] {
			n++
		}
	}
	return n
}
