// Social trust network sharing (the paper's Motivation Scenario I).
//
// A social platform holds a trust graph whose probabilistic edges come
// from an influence-prediction model. A research team wants the graph to
// study information dissemination; the platform must not expose who
// trusts whom. This example publishes the graph twice — with Chameleon
// (RSME) and with the conventional Rep-An pipeline — and compares how well
// each release answers the researcher's question: "who are the most
// reliably reachable users from a seed user?"
package main

import (
	"fmt"
	"log"
	"sort"

	"chameleon"
)

const (
	k       = 40
	eps     = 0.01
	samples = 400
	topN    = 20
)

func main() {
	// The platform's private trust graph: heavy-tailed follower structure,
	// mostly weak trust probabilities.
	g, err := chameleon.GenerateDataset("brightkite-s", 21)
	if err != nil {
		log.Fatal(err)
	}
	seedUser := mostConnected(g)
	fmt.Printf("trust graph: %d users, %d trust edges; seed user %d\n",
		g.NumNodes(), g.NumEdges(), seedUser)

	truth := topReachable(g, seedUser)
	fmt.Printf("ground truth: top-%d reliably reachable users computed on the private graph\n", topN)

	for _, method := range []chameleon.Method{chameleon.MethodRSME, chameleon.MethodRepAn} {
		res, err := chameleon.Anonymize(g, chameleon.Options{
			K: k, Epsilon: eps, Method: method, Samples: samples, Seed: 42,
		})
		if err != nil {
			log.Fatalf("%s: %v", method, err)
		}
		released := topReachable(res.Graph, seedUser)
		fmt.Printf("%-7s release: sigma=%.3f, top-%d overlap with truth = %d/%d\n",
			method, res.Sigma, topN, overlap(truth, released), topN)
	}
	fmt.Println("Chameleon keeps the influence ranking usable; Rep-An scrambles it.")
}

// mostConnected returns the user with the highest expected degree.
func mostConnected(g *chameleon.Graph) chameleon.NodeID {
	best, bestDeg := chameleon.NodeID(0), -1.0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.ExpectedDegree(chameleon.NodeID(v)); d > bestDeg {
			best, bestDeg = chameleon.NodeID(v), d
		}
	}
	return best
}

// topReachable ranks users by two-terminal reliability from the seed and
// returns the topN set.
func topReachable(g *chameleon.Graph, seed chameleon.NodeID) map[chameleon.NodeID]bool {
	type scored struct {
		v chameleon.NodeID
		r float64
	}
	rel := chameleon.ReliabilityFrom(g, seed, 300, 99)
	var all []scored
	for v := 0; v < g.NumNodes(); v++ {
		if chameleon.NodeID(v) == seed || rel[v] == 0 {
			continue
		}
		all = append(all, scored{chameleon.NodeID(v), rel[v]})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].r != all[j].r {
			return all[i].r > all[j].r
		}
		return all[i].v < all[j].v
	})
	out := make(map[chameleon.NodeID]bool, topN)
	for i := 0; i < topN && i < len(all); i++ {
		out[all[i].v] = true
	}
	return out
}

func overlap(a, b map[chameleon.NodeID]bool) int {
	n := 0
	for v := range a {
		if b[v] {
			n++
		}
	}
	return n
}
