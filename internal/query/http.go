package query

import (
	"encoding/json"
	"net/http"
)

// Handler exposes the engine over HTTP: POST a JSON Request, receive a
// JSON Response. Request validation failures map to 400 with the error
// in the response body; engine failures map to 500. The expose server
// mounts it at /query so the live metrics plane and the query plane
// share one listener.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "query: POST a JSON request", http.StatusMethodNotAllowed)
			return
		}
		var req Request
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, Response{Error: "query: bad request body: " + err.Error()})
			return
		}
		resp, err := e.Do(r.Context(), req)
		status := http.StatusOK
		switch {
		case err == nil:
		case IsBadRequest(err):
			status = http.StatusBadRequest
		default:
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, resp)
	})
}

func writeJSON(w http.ResponseWriter, status int, resp Response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}
