// Package query is the in-process query plane: it maps typed query
// descriptors (pairwise reliability, k-nearest-neighbors, degree and
// centrality metrics) onto the Monte Carlo engines in
// internal/reliability, internal/knn, internal/metrics and
// internal/centrality, behind a shared label cache so repeated queries
// against the same graph are lookups rather than fresh sampling passes.
//
// Every request gets a request ID, an SLO-grade latency observation
// (query.latency.all plus a per-kind instrument, HDR-backed so tail
// quantiles are exact within the configured relative error), a sampled
// trace span, and — when a wide-event writer is attached — one JSON
// line carrying all of its dimensions. The engine is what cmd/ugload
// drives and what the expose HTTP plane mounts at /query.
package query

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chameleon/internal/centrality"
	"chameleon/internal/knn"
	"chameleon/internal/metrics"
	"chameleon/internal/obs"
	"chameleon/internal/obs/wideevent"
	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

// Query kinds accepted by the engine.
const (
	KindPairReliability    = "pair_reliability"
	KindKNN                = "knn"
	KindDegree             = "degree"
	KindDegreeDistribution = "degree_distribution"
	KindCentrality         = "centrality"
)

// Kinds lists every supported query kind (load generators iterate it).
func Kinds() []string {
	return []string{KindPairReliability, KindKNN, KindDegree,
		KindDegreeDistribution, KindCentrality}
}

// Request is one typed query descriptor.
type Request struct {
	// Kind selects the query (one of the Kind* constants).
	Kind string `json:"kind"`
	// U is the primary vertex (source for knn, subject for degree and
	// centrality, first endpoint for pair_reliability).
	U uncertain.NodeID `json:"u,omitempty"`
	// V is the second endpoint for pair_reliability.
	V uncertain.NodeID `json:"v,omitempty"`
	// K is the answer-set size for knn.
	K int `json:"k,omitempty"`
}

// Neighbor is one knn answer on the wire.
type Neighbor struct {
	Node        uncertain.NodeID `json:"node"`
	Reliability float64          `json:"reliability"`
}

// Response is the answer to one Request. Exactly one of Value,
// Neighbors or Distribution is populated, by kind.
type Response struct {
	RequestID    string     `json:"request_id"`
	Kind         string     `json:"kind"`
	Value        float64    `json:"value,omitempty"`
	Neighbors    []Neighbor `json:"neighbors,omitempty"`
	Distribution []float64  `json:"distribution,omitempty"`
	LatencyNS    int64      `json:"latency_ns"`
	Error        string     `json:"error,omitempty"`
}

// RequestError marks a request the caller got wrong (unknown kind,
// vertex out of range, bad k); the HTTP layer maps it to 400 and load
// generators count it separately from engine failures.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// IsBadRequest reports whether err (or anything it wraps) is a
// RequestError.
func IsBadRequest(err error) bool {
	var re *RequestError
	return errors.As(err, &re)
}

// Options configures an Engine.
type Options struct {
	// Samples is the Monte Carlo world budget for reliability-backed
	// kinds (pair_reliability, knn). Zero means the estimator default.
	Samples int
	// Seed drives world sampling; the same seed answers identically.
	Seed uint64
	// Workers caps sampling parallelism per request. Zero = GOMAXPROCS.
	Workers int
	// Mode selects the world-drawing strategy.
	Mode uncertain.SamplingMode
	// CentralitySamples is the world budget for the expected-betweenness
	// precompute (default 32; Brandes dominates, keep it modest).
	CentralitySamples int
	// Obs receives counters, latency instruments and sampled spans. Nil
	// disables all telemetry.
	Obs *obs.Observer
	// Events, when non-nil, receives one wide event per request
	// (subject to the writer's own sampling policy).
	Events *wideevent.Writer
	// SpanEvery samples 1-in-N requests for a trace span (default 64;
	// values < 0 disable spans). Sampled spans are kept unattached —
	// only the most recent survives, so span overhead stays O(1)
	// however long the engine serves.
	SpanEvery int
}

// Engine answers queries against one uncertain graph. Safe for
// concurrent use; all sampling state is either immutable or behind the
// shared label cache.
type Engine struct {
	g    *uncertain.Graph
	opts Options
	est  reliability.Estimator

	reqSeq  atomic.Int64
	spanSeq atomic.Int64
	span    atomic.Pointer[obs.SpanSnapshot]

	centOnce sync.Once
	cent     []float64

	distOnce sync.Once
	dist     []float64
}

// New returns an engine over g. The engine owns a fresh LabelCache, so
// the first reliability-backed request (or Warm) samples worlds once
// and every later request under the same configuration is a lookup.
func New(g *uncertain.Graph, opts Options) *Engine {
	if opts.SpanEvery == 0 {
		opts.SpanEvery = 64
	}
	if opts.CentralitySamples <= 0 {
		opts.CentralitySamples = 32
	}
	return &Engine{
		g:    g,
		opts: opts,
		est: reliability.Estimator{
			Samples: opts.Samples,
			Seed:    opts.Seed,
			Workers: opts.Workers,
			Mode:    opts.Mode,
			Obs:     opts.Obs,
			Cache:   reliability.NewLabelCache(),
		},
	}
}

// Graph returns the graph the engine answers over.
func (e *Engine) Graph() *uncertain.Graph { return e.g }

// Warm pre-samples the label matrix (and nothing else) so the sampling
// cost lands here instead of on the first request's latency.
func (e *Engine) Warm(ctx context.Context) {
	est := e.est
	est.Ctx = ctx
	est.WarmCache(e.g)
}

// LastSpan returns the most recently sampled request span tree (nil
// until a request has been span-sampled).
func (e *Engine) LastSpan() *obs.SpanSnapshot { return e.span.Load() }

// Do answers one request. The returned Response always carries the
// request ID and latency; on error its Error field mirrors err.
func (e *Engine) Do(ctx context.Context, req Request) (Response, error) {
	id := fmt.Sprintf("q-%08d", e.reqSeq.Add(1))
	reg := e.opts.Obs.Registry()
	reg.Counter("query.requests").Inc()

	var s *obs.Span
	if n := e.opts.SpanEvery; n > 0 && (e.spanSeq.Add(1)-1)%int64(n) == 0 {
		s = obs.NewSpan("query." + req.Kind)
		s.SetAttr("request_id", id)
	}

	start := time.Now()
	resp, err := e.dispatch(ctx, req)
	lat := time.Since(start)

	resp.RequestID = id
	resp.Kind = req.Kind
	resp.LatencyNS = int64(lat)

	reg.Latency("query.latency.all").Observe(lat)
	outcome := "ok"
	if err != nil {
		resp.Error = err.Error()
		outcome = "error"
		reg.Counter("query.errors").Inc()
	}
	if isKind(req.Kind) {
		reg.Counter("query.requests." + req.Kind).Inc()
		reg.Latency("query.latency." + req.Kind).Observe(lat)
		if err != nil {
			reg.Counter("query.errors." + req.Kind).Inc()
		}
	}
	if s != nil {
		s.SetAttr("outcome", outcome)
		s.End()
		e.span.Store(s.SnapshotTree())
	}
	e.opts.Events.Write(wideevent.Event{
		At:        start,
		RequestID: id,
		Kind:      req.Kind,
		Outcome:   outcome,
		Error:     resp.Error,
		LatencyNS: int64(lat),
		Attrs:     attrs(req),
	})
	return resp, err
}

func isKind(k string) bool {
	switch k {
	case KindPairReliability, KindKNN, KindDegree, KindDegreeDistribution, KindCentrality:
		return true
	}
	return false
}

// attrs flattens the request parameters that matter for each kind into
// the wide event.
func attrs(req Request) map[string]any {
	switch req.Kind {
	case KindPairReliability:
		return map[string]any{"u": int64(req.U), "v": int64(req.V)}
	case KindKNN:
		return map[string]any{"u": int64(req.U), "k": req.K}
	case KindDegree, KindCentrality:
		return map[string]any{"u": int64(req.U)}
	default:
		return nil
	}
}

func (e *Engine) checkNode(v uncertain.NodeID) error {
	if v < 0 || int(v) >= e.g.NumNodes() {
		return badRequestf("query: vertex %d out of range (n=%d)", v, e.g.NumNodes())
	}
	return nil
}

func (e *Engine) dispatch(ctx context.Context, req Request) (Response, error) {
	var resp Response
	est := e.est
	est.Ctx = ctx

	switch req.Kind {
	case KindPairReliability:
		if err := e.checkNode(req.U); err != nil {
			return resp, err
		}
		if err := e.checkNode(req.V); err != nil {
			return resp, err
		}
		resp.Value = est.PairReliability(e.g, req.U, req.V)

	case KindKNN:
		if req.K < 1 {
			return resp, badRequestf("query: knn needs k >= 1, got %d", req.K)
		}
		if err := e.checkNode(req.U); err != nil {
			return resp, err
		}
		ns, err := knn.Query(e.g, req.U, req.K, est)
		if err != nil {
			// knn.Query only fails on validation, which checkNode and the
			// k guard above already cover — but stay defensive.
			return resp, badRequestf("query: %v", err)
		}
		resp.Neighbors = make([]Neighbor, len(ns))
		for i, n := range ns {
			resp.Neighbors[i] = Neighbor{Node: n.Node, Reliability: n.Reliability}
		}

	case KindDegree:
		if err := e.checkNode(req.U); err != nil {
			return resp, err
		}
		resp.Value = e.g.ExpectedDegree(req.U)

	case KindDegreeDistribution:
		e.distOnce.Do(func() { e.dist = metrics.ExpectedDegreeDistribution(e.g) })
		resp.Distribution = e.dist

	case KindCentrality:
		if err := e.checkNode(req.U); err != nil {
			return resp, err
		}
		e.centOnce.Do(func() {
			e.cent = centrality.Expected(e.g, centrality.Options{
				Samples: e.opts.CentralitySamples,
				Seed:    e.opts.Seed,
				Workers: e.opts.Workers,
			})
		})
		resp.Value = e.cent[req.U]

	default:
		return resp, badRequestf("query: unknown kind %q", req.Kind)
	}

	// Cooperative cancellation: a cancelled sampling pass returns a
	// truncated estimate; surface the cancellation instead.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return resp, err
		}
	}
	return resp, nil
}
