package query

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chameleon/internal/knn"
	"chameleon/internal/obs"
	"chameleon/internal/obs/wideevent"
	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

func testGraph(t *testing.T) *uncertain.Graph {
	t.Helper()
	rng := rand.New(rand.NewPCG(9, 0))
	g := uncertain.New(30)
	for m := 0; m < 90; m++ {
		u := uncertain.NodeID(rng.IntN(30))
		v := uncertain.NodeID(rng.IntN(30))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 0.2+0.7*rng.Float64())
	}
	return g
}

// TestEngineParity: engine answers match direct calls into the
// underlying estimators with the same configuration.
func TestEngineParity(t *testing.T) {
	g := testGraph(t)
	e := New(g, Options{Samples: 400, Seed: 3, Workers: 2})
	est := reliability.Estimator{Samples: 400, Seed: 3, Workers: 2}

	ctx := context.Background()
	resp, err := e.Do(ctx, Request{Kind: KindPairReliability, U: 2, V: 17})
	if err != nil {
		t.Fatal(err)
	}
	if want := est.PairReliability(g, 2, 17); resp.Value != want {
		t.Fatalf("pair_reliability = %v, direct = %v", resp.Value, want)
	}

	resp, err = e.Do(ctx, Request{Kind: KindKNN, U: 2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := knn.Query(g, 2, 5, est)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Neighbors) != len(want) {
		t.Fatalf("knn returned %d neighbors, direct %d", len(resp.Neighbors), len(want))
	}
	for i := range want {
		if resp.Neighbors[i].Node != want[i].Node || resp.Neighbors[i].Reliability != want[i].Reliability {
			t.Fatalf("neighbor %d = %+v, direct %+v", i, resp.Neighbors[i], want[i])
		}
	}

	resp, err = e.Do(ctx, Request{Kind: KindDegree, U: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := g.ExpectedDegree(4); resp.Value != want {
		t.Fatalf("degree = %v, want %v", resp.Value, want)
	}

	resp, err = e.Do(ctx, Request{Kind: KindDegreeDistribution})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Distribution) == 0 {
		t.Fatal("empty degree distribution")
	}

	resp, err = e.Do(ctx, Request{Kind: KindCentrality, U: 0})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Value < 0 {
		t.Fatalf("negative centrality %v", resp.Value)
	}
}

// TestEngineTelemetry: requests feed counters, per-kind latency
// instruments, request IDs, spans and the label cache.
func TestEngineTelemetry(t *testing.T) {
	g := testGraph(t)
	o := obs.NewObserver()
	e := New(g, Options{Samples: 200, Seed: 1, Obs: o, SpanEvery: 1})
	ctx := context.Background()

	e.Warm(ctx)
	for i := 0; i < 5; i++ {
		if _, err := e.Do(ctx, Request{Kind: KindPairReliability, U: 0, V: uncertain.NodeID(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Do(ctx, Request{Kind: KindDegree, U: 99}); err == nil || !IsBadRequest(err) {
		t.Fatalf("out-of-range degree: err = %v, want bad request", err)
	}
	if _, err := e.Do(ctx, Request{Kind: "bogus"}); err == nil || !IsBadRequest(err) {
		t.Fatalf("unknown kind: err = %v, want bad request", err)
	}

	snap := o.Registry().Snapshot()
	if got := snap.Counters["query.requests"]; got != 7 {
		t.Fatalf("query.requests = %d, want 7", got)
	}
	if got := snap.Counters["query.errors"]; got != 2 {
		t.Fatalf("query.errors = %d, want 2", got)
	}
	if got := snap.Counters["query.requests.pair_reliability"]; got != 5 {
		t.Fatalf("per-kind requests = %d, want 5", got)
	}
	if got := snap.Counters["query.errors.degree"]; got != 1 {
		t.Fatalf("query.errors.degree = %d, want 1", got)
	}
	if lat := snap.Latencies["query.latency.all"]; lat.Count != 7 {
		t.Fatalf("query.latency.all count = %d, want 7", lat.Count)
	}
	if lat := snap.Latencies["query.latency.pair_reliability"]; lat.Count != 5 {
		t.Fatalf("per-kind latency count = %d, want 5", lat.Count)
	}
	// Warm sampled once; every pair query was a cache lookup.
	if misses := snap.Counters["mc.label_cache.misses"]; misses != 1 {
		t.Fatalf("label cache misses = %d, want 1", misses)
	}
	if hits := snap.Counters["mc.label_cache.hits"]; hits != 5 {
		t.Fatalf("label cache hits = %d, want 5", hits)
	}
	// With SpanEvery=1 the last request left a span snapshot, and the
	// observer itself accumulated none (per-request spans stay detached).
	s := e.LastSpan()
	if s == nil || s.Name != "query.bogus" {
		t.Fatalf("last span = %+v, want query.bogus", s)
	}
	if n := len(o.Spans()); n != 0 {
		t.Fatalf("observer accumulated %d spans; request spans must stay detached", n)
	}
}

// TestEngineRequestIDs: IDs are sequential and unique across requests.
func TestEngineRequestIDs(t *testing.T) {
	e := New(testGraph(t), Options{Samples: 50})
	ctx := context.Background()
	r1, _ := e.Do(ctx, Request{Kind: KindDegree, U: 1})
	r2, _ := e.Do(ctx, Request{Kind: KindDegree, U: 2})
	if r1.RequestID != "q-00000001" || r2.RequestID != "q-00000002" {
		t.Fatalf("request IDs %q, %q", r1.RequestID, r2.RequestID)
	}
}

// TestEngineWideEvents: each request emits one wide event (modulo
// sampling) with the request's dimensions flattened in.
func TestEngineWideEvents(t *testing.T) {
	var buf bytes.Buffer
	w := wideevent.NewWriter(&buf, wideevent.Options{})
	e := New(testGraph(t), Options{Samples: 100, Events: w})
	ctx := context.Background()

	e.Do(ctx, Request{Kind: KindKNN, U: 3, K: 4})
	e.Do(ctx, Request{Kind: KindDegree, U: 999}) // error event
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := wideevent.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Kind != KindKNN || events[0].Outcome != "ok" ||
		events[0].Attrs["u"] != float64(3) || events[0].Attrs["k"] != float64(4) {
		t.Fatalf("knn event: %+v", events[0])
	}
	if events[0].RequestID != "q-00000001" || events[0].LatencyNS <= 0 {
		t.Fatalf("knn event identity: %+v", events[0])
	}
	if events[1].Outcome != "error" || events[1].Error == "" {
		t.Fatalf("error event: %+v", events[1])
	}
}

// TestHTTPRoundTrip: the handler answers JSON POSTs, maps validation
// errors to 400 and rejects non-POSTs.
func TestHTTPRoundTrip(t *testing.T) {
	g := testGraph(t)
	e := New(g, Options{Samples: 200, Seed: 3})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	post := func(body string) (*http.Response, Response) {
		t.Helper()
		res, err := http.Post(srv.URL, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var qr Response
		if err := json.NewDecoder(res.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		return res, qr
	}

	res, qr := post(`{"kind":"pair_reliability","u":2,"v":17}`)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	est := reliability.Estimator{Samples: 200, Seed: 3}
	if want := est.PairReliability(g, 2, 17); qr.Value != want {
		t.Fatalf("HTTP pair_reliability = %v, direct = %v", qr.Value, want)
	}
	if qr.RequestID == "" || qr.LatencyNS <= 0 {
		t.Fatalf("response missing telemetry: %+v", qr)
	}

	res, qr = post(`{"kind":"knn","u":1,"k":0}`)
	if res.StatusCode != http.StatusBadRequest || qr.Error == "" {
		t.Fatalf("bad k: status %d, error %q", res.StatusCode, qr.Error)
	}

	res, qr = post(`{"kind":"pair_reliability","bogus":1}`)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", res.StatusCode)
	}

	getRes, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	getRes.Body.Close()
	if getRes.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", getRes.StatusCode)
	}
}

// TestEngineCancelledContext: a cancelled context surfaces as a
// non-bad-request error and never poisons the label cache.
func TestEngineCancelledContext(t *testing.T) {
	o := obs.NewObserver()
	e := New(testGraph(t), Options{Samples: 400, Seed: 2, Obs: o})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Do(ctx, Request{Kind: KindPairReliability, U: 0, V: 1})
	if err == nil || IsBadRequest(err) {
		t.Fatalf("cancelled request: err = %v", err)
	}
	if misses := o.Registry().Snapshot().Counters["mc.label_cache.misses"]; misses != 0 {
		t.Fatalf("cancelled sampling cached a label set (misses=%d)", misses)
	}

	// A later healthy request samples and answers normally.
	resp, err := e.Do(context.Background(), Request{Kind: KindPairReliability, U: 0, V: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := reliability.Estimator{Samples: 400, Seed: 2}.PairReliability(e.Graph(), 0, 1)
	if resp.Value != want {
		t.Fatalf("post-cancel answer = %v, want %v", resp.Value, want)
	}
}
