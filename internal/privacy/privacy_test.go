package privacy

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"chameleon/internal/exact"
	"chameleon/internal/uncertain"
)

func TestDegreeDistributionBasics(t *testing.T) {
	// No incident edges: degree is certainly 0.
	d := DegreeDistribution(nil)
	if len(d) != 1 || d[0] != 1 {
		t.Fatalf("empty distribution = %v", d)
	}
	// Single p=0.5 edge.
	d = DegreeDistribution([]float64{0.5})
	if math.Abs(d[0]-0.5) > 1e-12 || math.Abs(d[1]-0.5) > 1e-12 {
		t.Fatalf("single-edge distribution = %v", d)
	}
	// Two edges: closed form.
	d = DegreeDistribution([]float64{0.3, 0.6})
	want := []float64{0.7 * 0.4, 0.3*0.4 + 0.7*0.6, 0.3 * 0.6}
	for j := range want {
		if math.Abs(d[j]-want[j]) > 1e-12 {
			t.Fatalf("dist[%d] = %v, want %v", j, d[j], want[j])
		}
	}
}

func TestDegreeDistributionSumsToOne(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := rng.IntN(20)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		d := DegreeDistribution(probs)
		if len(d) != n+1 {
			return false
		}
		var sum float64
		for _, p := range d {
			if p < -1e-15 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexDegreeDistributionsMatchExact(t *testing.T) {
	g := uncertain.New(4)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(0, 2, 0.3)
	g.MustAddEdge(0, 3, 0.9)
	g.MustAddEdge(1, 2, 0.4)
	dists := VertexDegreeDistributions(g)
	for v := 0; v < 4; v++ {
		want := exact.DegreeDistribution(g, uncertain.NodeID(v))
		for j := range want {
			if math.Abs(dists[v][j]-want[j]) > 1e-12 {
				t.Fatalf("vertex %d dist[%d] = %v, want %v", v, j, dists[v][j], want[j])
			}
		}
	}
}

func TestDegreeEntropy(t *testing.T) {
	if h := DegreeEntropy([]float64{1}); h != 0 {
		t.Fatalf("certain degree entropy = %v, want 0", h)
	}
	if h := DegreeEntropy([]float64{0.5, 0.5}); math.Abs(h-1) > 1e-12 {
		t.Fatalf("fair-coin entropy = %v, want 1 bit", h)
	}
	// p=0 entries contribute nothing.
	if h := DegreeEntropy([]float64{0.5, 0, 0.5}); math.Abs(h-1) > 1e-12 {
		t.Fatalf("entropy with zero entry = %v, want 1", h)
	}
}

func TestTotalDegreeEntropy(t *testing.T) {
	// Deterministic graph: all degrees certain, total entropy 0.
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	if h := TotalDegreeEntropy(g); h != 0 {
		t.Fatalf("deterministic graph entropy = %v, want 0", h)
	}
	// Max-uncertainty single edge: both endpoints get 1 bit.
	g2 := uncertain.New(2)
	g2.MustAddEdge(0, 1, 0.5)
	if h := TotalDegreeEntropy(g2); math.Abs(h-2) > 1e-12 {
		t.Fatalf("single p=0.5 edge: total entropy %v, want 2", h)
	}
}

func TestDegreeProperty(t *testing.T) {
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.6)
	g.MustAddEdge(0, 2, 0.6)
	prop := DegreeProperty(g)
	if prop[0] != 1 { // 1.2 rounds to 1
		t.Fatalf("prop[0] = %d, want 1", prop[0])
	}
	if prop[1] != 1 || prop[2] != 1 { // 0.6 rounds to 1
		t.Fatalf("prop = %v", prop)
	}
}

func TestCheckObfuscationRegularGraph(t *testing.T) {
	// Certain cycle: every vertex has degree exactly 2, so
	// Y_2 is uniform over n vertices: H = log2(n), k-obf for k <= n.
	const n = 16
	g := uncertain.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID((i+1)%n), 1)
	}
	prop := DegreeProperty(g)
	rep, err := CheckObfuscation(g, prop, n)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NonObfuscated != 0 {
		t.Fatalf("cycle should be fully %d-obfuscated, %d failed", n, rep.NonObfuscated)
	}
	if math.Abs(rep.EntropyByDegree[2]-math.Log2(n)) > 1e-9 {
		t.Fatalf("H(Y_2) = %v, want log2(%d)", rep.EntropyByDegree[2], n)
	}
}

func TestCheckObfuscationStarCenterExposed(t *testing.T) {
	// Certain star: the center's degree (n-1) is unique -> entropy 0 ->
	// non-obfuscated for any k >= 2. Leaves share degree 1.
	const n = 10
	g := uncertain.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, uncertain.NodeID(i), 1)
	}
	prop := DegreeProperty(g)
	rep, err := CheckObfuscation(g, prop, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NonObfuscated != 1 {
		t.Fatalf("only the center should fail, got %d", rep.NonObfuscated)
	}
	if rep.EpsilonTilde != 1.0/n {
		t.Fatalf("eps~ = %v, want %v", rep.EpsilonTilde, 1.0/n)
	}
	if !rep.Obfuscates(0.2) || rep.Obfuscates(0.05) {
		t.Fatal("Obfuscates threshold logic wrong")
	}
}

func TestCheckObfuscationMissingMassConservative(t *testing.T) {
	// Adversary property says a vertex has degree 5, but no vertex of the
	// published graph can reach degree 5: conservative failure.
	g := uncertain.New(4)
	g.MustAddEdge(0, 1, 1)
	prop := []int{5, 1, 0, 0}
	rep, err := CheckObfuscation(g, prop, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NonObfuscated < 1 {
		t.Fatal("unreachable degree value should count as non-obfuscated")
	}
}

func TestCheckObfuscationErrors(t *testing.T) {
	g := uncertain.New(4)
	g.MustAddEdge(0, 1, 0.5)
	if _, err := CheckObfuscation(g, []int{1, 1}, 2); err == nil {
		t.Fatal("short property vector should error")
	}
	if _, err := CheckObfuscation(g, []int{0, 0, 0, 0}, 0); err == nil {
		t.Fatal("k < 1 should error")
	}
	if _, err := CheckObfuscation(g, []int{0, 0, 0, 0}, 5); err == nil {
		t.Fatal("k > |V| should error")
	}
}

func TestCheckObfuscationEntropyBound(t *testing.T) {
	// H(Y_w) can never exceed log2(|V|).
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := 3 + rng.IntN(12)
		g := uncertain.New(n)
		for i := 0; i < 2*n; i++ {
			u := uncertain.NodeID(rng.IntN(n))
			v := uncertain.NodeID(rng.IntN(n))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v, rng.Float64())
		}
		rep, err := CheckObfuscation(g, DegreeProperty(g), 2)
		if err != nil {
			return false
		}
		bound := math.Log2(float64(n)) + 1e-9
		for _, h := range rep.EntropyByDegree {
			if h > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUncertaintyHelpsObfuscation(t *testing.T) {
	// The same topology with uncertain edges must obfuscate at least as
	// many vertices as with certain edges — uncertainty spreads degree
	// distributions and raises entropy. This is the paper's core premise.
	rng := rand.New(rand.NewPCG(5, 5))
	n := 40
	certain := uncertain.New(n)
	fuzzy := uncertain.New(n)
	for i := 0; i < 3*n; i++ {
		u := uncertain.NodeID(rng.IntN(n))
		v := uncertain.NodeID(rng.IntN(n))
		if u == v || certain.HasEdge(u, v) {
			continue
		}
		certain.MustAddEdge(u, v, 1)
		fuzzy.MustAddEdge(u, v, 0.5)
	}
	k := 8
	repC, err := CheckObfuscation(certain, DegreeProperty(certain), k)
	if err != nil {
		t.Fatal(err)
	}
	repF, err := CheckObfuscation(fuzzy, DegreeProperty(certain), k)
	if err != nil {
		t.Fatal(err)
	}
	if repF.NonObfuscated > repC.NonObfuscated {
		t.Fatalf("uncertainty should not hurt obfuscation: fuzzy %d vs certain %d",
			repF.NonObfuscated, repC.NonObfuscated)
	}
}

func TestWindowedAdversaryZeroMatchesExact(t *testing.T) {
	g := uncertain.New(20)
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 40; i++ {
		u := uncertain.NodeID(rng.IntN(20))
		v := uncertain.NodeID(rng.IntN(20))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, rng.Float64())
	}
	prop := DegreeProperty(g)
	exact, err := CheckObfuscation(g, prop, 4)
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := CheckObfuscationWindow(g, prop, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact.NonObfuscated != windowed.NonObfuscated {
		t.Fatalf("t=0 window should match the exact check: %d vs %d",
			exact.NonObfuscated, windowed.NonObfuscated)
	}
}

func TestWindowedAdversaryWeakerMonotone(t *testing.T) {
	// Wider knowledge windows pool more candidates: the non-obfuscated
	// count must be non-increasing in t.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 10))
		n := 8 + rng.IntN(20)
		g := uncertain.New(n)
		for i := 0; i < 3*n; i++ {
			u := uncertain.NodeID(rng.IntN(n))
			v := uncertain.NodeID(rng.IntN(n))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v, rng.Float64())
		}
		prop := DegreeProperty(g)
		prev := n + 1
		for _, t := range []int{0, 1, 2, 4} {
			rep, err := CheckObfuscationWindow(g, prop, 4, t)
			if err != nil {
				return false
			}
			if rep.NonObfuscated > prev {
				return false
			}
			prev = rep.NonObfuscated
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowedAdversaryStarHub(t *testing.T) {
	// Star: with an exact adversary the hub is exposed; with a window as
	// wide as the degree gap, the hub blends with the leaves.
	const n = 8
	g := uncertain.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, uncertain.NodeID(i), 1)
	}
	prop := DegreeProperty(g)
	exact, err := CheckObfuscationWindow(g, prop, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact.NonObfuscated != 1 {
		t.Fatalf("exact adversary should expose the hub, got %d", exact.NonObfuscated)
	}
	wide, err := CheckObfuscationWindow(g, prop, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	if wide.NonObfuscated != 0 {
		t.Fatalf("a window covering all degrees should hide everyone, got %d", wide.NonObfuscated)
	}
}

func TestWindowedAdversaryErrors(t *testing.T) {
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	if _, err := CheckObfuscationWindow(g, []int{0, 0, 0}, 2, -1); err == nil {
		t.Fatal("negative window should error")
	}
	if _, err := CheckObfuscationWindow(g, []int{0}, 2, 1); err == nil {
		t.Fatal("short property should error")
	}
	if _, err := CheckObfuscationWindow(g, []int{0, 0, 0}, 9, 1); err == nil {
		t.Fatal("k > n should error")
	}
}

func BenchmarkDegreeDistribution(b *testing.B) {
	probs := make([]float64, 64)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := range probs {
		probs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DegreeDistribution(probs)
	}
}

func BenchmarkCheckObfuscation(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	g := uncertain.New(1000)
	for i := 0; i < 4000; i++ {
		u := uncertain.NodeID(rng.IntN(1000))
		v := uncertain.NodeID(rng.IntN(1000))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, rng.Float64())
	}
	prop := DegreeProperty(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CheckObfuscation(g, prop, 20); err != nil {
			b.Fatal(err)
		}
	}
}
