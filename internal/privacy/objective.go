package privacy

import (
	"math"

	"chameleon/internal/uncertain"
)

// AnonymityObjective computes the fuzzy anonymity objective of Lemma 4,
//
//	sum over degree values w of s(w) * H(Y_w)
//
// where s(w) is the expected number of vertices with degree w (the
// adversary-side multiplicity) and H(Y_w) the posterior entropy at w.
// Maximizing this quantity is equivalent to maximizing the relaxed
// product-of-constraints anonymity of the published graph; the ME
// perturbation's gradient-ascent step (Lemma 6) pushes it upward. Exposed
// so tests and ablations can observe the optimization target directly.
func AnonymityObjective(g uncertain.View) float64 {
	dists := VertexDegreeDistributions(g)
	maxW := 0
	for _, d := range dists {
		if len(d)-1 > maxW {
			maxW = len(d) - 1
		}
	}
	mass := make([]float64, maxW+1) // s(w)
	sumPlogP := make([]float64, maxW+1)
	for _, d := range dists {
		for w, p := range d {
			if p > 0 {
				mass[w] += p
				sumPlogP[w] += p * math.Log2(p)
			}
		}
	}
	var objective float64
	for w := range mass {
		if mass[w] <= 0 {
			continue
		}
		h := math.Log2(mass[w]) - sumPlogP[w]/mass[w]
		objective += mass[w] * h
	}
	return objective
}

// DegreeUncertaintyDecomposition returns the three terms of Lemma 5's
// identity, which connects the anonymity objective to per-vertex degree
// entropy:
//
//	sum_w s(w) H(Y_w)  =  sum_v H(d_v) + |V| log2 |V| - |V| H(Omega)
//
// where H(Omega) is the entropy of the graph-level degree-value
// distribution s(w)/|V|. The decomposition explains the ME mechanism:
// raising per-vertex degree entropy (the first term) raises global
// anonymity.
func DegreeUncertaintyDecomposition(g uncertain.View) (vertexEntropy, sizeTerm, omegaTerm float64) {
	n := float64(g.NumNodes())
	if n == 0 {
		return 0, 0, 0
	}
	vertexEntropy = TotalDegreeEntropy(g)
	sizeTerm = n * math.Log2(n)

	dists := VertexDegreeDistributions(g)
	maxW := 0
	for _, d := range dists {
		if len(d)-1 > maxW {
			maxW = len(d) - 1
		}
	}
	mass := make([]float64, maxW+1)
	for _, d := range dists {
		for w, p := range d {
			mass[w] += p
		}
	}
	var hOmega float64
	for _, m := range mass {
		if m > 0 {
			q := m / n
			hOmega -= q * math.Log2(q)
		}
	}
	omegaTerm = n * hOmega
	return vertexEntropy, sizeTerm, omegaTerm
}
