// Package privacy implements the syntactic privacy machinery of the paper:
// Poisson-binomial degree distributions for uncertain graphs, the
// entropy-based (k, eps)-obfuscation criterion (Definition 3), and the
// kernel-density uniqueness score (Definition 4).
package privacy

import (
	"math"

	"chameleon/internal/uncertain"
)

// DegreeDistribution computes the exact distribution of the sum of
// independent Bernoulli variables with the given success probabilities
// (the Poisson-binomial distribution) by dynamic programming:
// out[j] = Pr[exactly j successes], j in 0..len(probs).
func DegreeDistribution(probs []float64) []float64 {
	dist := make([]float64, 1, len(probs)+1)
	dist[0] = 1
	for _, p := range probs {
		dist = append(dist, 0)
		q := 1 - p
		for j := len(dist) - 1; j >= 1; j-- {
			dist[j] = dist[j]*q + dist[j-1]*p
		}
		dist[0] *= q
	}
	return dist
}

// VertexDegreeDistributions returns the Poisson-binomial degree
// distribution of every vertex of g. dists[v][j] = Pr[deg(v) = j].
func VertexDegreeDistributions(g uncertain.View) [][]float64 {
	n := g.NumNodes()
	dists := make([][]float64, n)
	var buf []float64
	for v := 0; v < n; v++ {
		buf = g.IncidentProbs(uncertain.NodeID(v), buf[:0])
		dists[v] = DegreeDistribution(buf)
	}
	return dists
}

// DegreeEntropy returns the Shannon entropy (bits) of a vertex's
// Poisson-binomial degree distribution. Per Lemma 6 this is the quantity
// the ME perturbation scheme pushes upward.
func DegreeEntropy(dist []float64) float64 {
	var h float64
	for _, p := range dist {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// TotalDegreeEntropy returns sum over vertices of H(d_v) — the left-hand
// driver of Lemma 5's anonymity objective.
func TotalDegreeEntropy(g uncertain.View) float64 {
	var total float64
	var buf []float64
	for v := 0; v < g.NumNodes(); v++ {
		buf = g.IncidentProbs(uncertain.NodeID(v), buf[:0])
		total += DegreeEntropy(DegreeDistribution(buf))
	}
	return total
}
