package privacy

import (
	"fmt"
	"math"

	"chameleon/internal/uncertain"
)

// DegreeProperty returns the adversary's assumed auxiliary knowledge about
// every vertex: the vertex degree (the paper's property P). For an
// uncertain original graph this is the rounded expected degree.
func DegreeProperty(g uncertain.View) []int {
	degs := g.ExpectedDegrees()
	out := make([]int, len(degs))
	for v, d := range degs {
		out[v] = int(math.Round(d))
	}
	return out
}

// ObfuscationReport is the outcome of the (k, eps)-obf check of a
// published graph against an adversary property vector.
type ObfuscationReport struct {
	K               int
	EntropyByDegree []float64 // H(Y_w) for degree value w; index up to max degree
	NonObfuscated   int       // vertices v with H(Y_{P(v)}) < log2(K)
	EpsilonTilde    float64   // NonObfuscated / |V|
}

// Obfuscates reports whether the check achieved (k, eps)-obf for the given
// tolerance.
func (r ObfuscationReport) Obfuscates(eps float64) bool {
	return r.EpsilonTilde <= eps
}

// CheckObfuscation verifies Definition 3 on the published uncertain graph
// pub: for each degree value w it builds the adversary's posterior
//
//	Y_w(u) = Pr[deg_pub(u) = w] / sum_x Pr[deg_pub(x) = w]
//
// and computes its entropy. A vertex v with known property P(v)=w is
// k-obfuscated iff H(Y_w) >= log2(k). Degree values with zero total mass in
// the published graph are treated conservatively as NOT obfuscated (these
// are exactly the "extreme unique nodes" the epsilon tolerance exists for).
func CheckObfuscation(pub uncertain.View, property []int, k int) (ObfuscationReport, error) {
	n := pub.NumNodes()
	if len(property) != n {
		return ObfuscationReport{}, fmt.Errorf("privacy: property length %d != |V| %d", len(property), n)
	}
	if k < 1 {
		return ObfuscationReport{}, fmt.Errorf("privacy: k must be >= 1, got %d", k)
	}
	if k > n {
		return ObfuscationReport{}, fmt.Errorf("privacy: k=%d exceeds |V|=%d; no graph can satisfy it", k, n)
	}
	maxW := pub.MaxStructuralDegree()
	for _, w := range property {
		if w > maxW {
			maxW = w
		}
	}

	dists := VertexDegreeDistributions(pub)

	// mass[w] = sum_u Pr[deg(u) = w]
	mass := make([]float64, maxW+1)
	for _, d := range dists {
		for w, p := range d {
			mass[w] += p
		}
	}

	// H(Y_w) = -sum_u y log2 y with y = Pr[deg(u)=w]/mass[w]
	//        = log2(mass[w]) - (1/mass[w]) * sum_u p log2 p   (p > 0)
	sumPlogP := make([]float64, maxW+1)
	for _, d := range dists {
		for w, p := range d {
			if p > 0 {
				sumPlogP[w] += p * math.Log2(p)
			}
		}
	}
	entropy := make([]float64, maxW+1)
	for w := range entropy {
		if mass[w] > 0 {
			entropy[w] = math.Log2(mass[w]) - sumPlogP[w]/mass[w]
		}
	}

	threshold := math.Log2(float64(k))
	nonObf := 0
	for _, w := range property {
		if w < 0 {
			w = 0
		}
		if mass[w] <= 0 || entropy[w] < threshold {
			nonObf++
		}
	}
	return ObfuscationReport{
		K:               k,
		EntropyByDegree: entropy,
		NonObfuscated:   nonObf,
		EpsilonTilde:    float64(nonObf) / float64(n),
	}, nil
}

// CheckObfuscationWindow runs the Definition 3 check against a WEAKER
// adversary whose degree knowledge is approximate: for a target with
// property value w the adversary only knows deg is in [w-t, w+t], so the
// posterior pools the probability mass of the whole window:
//
//	Y^t_w(u) = Pr[deg_pub(u) in [w-t, w+t]] / sum_x Pr[deg_pub(x) in [w-t, w+t]]
//
// t = 0 reduces to CheckObfuscation. Wider windows can only raise the
// posterior entropy (more candidates blend in), so the report's
// NonObfuscated count is non-increasing in t — property-tested.
func CheckObfuscationWindow(pub uncertain.View, property []int, k, t int) (ObfuscationReport, error) {
	if t < 0 {
		return ObfuscationReport{}, fmt.Errorf("privacy: window must be >= 0, got %d", t)
	}
	if t == 0 {
		return CheckObfuscation(pub, property, k)
	}
	n := pub.NumNodes()
	if len(property) != n {
		return ObfuscationReport{}, fmt.Errorf("privacy: property length %d != |V| %d", len(property), n)
	}
	if k < 1 || k > n {
		return ObfuscationReport{}, fmt.Errorf("privacy: k=%d out of [1, %d]", k, n)
	}
	maxW := pub.MaxStructuralDegree()
	for _, w := range property {
		if w > maxW {
			maxW = w
		}
	}
	dists := VertexDegreeDistributions(pub)
	// windowMass[u][w] = Pr[deg(u) in [w-t, w+t]] via per-vertex prefix sums.
	prefix := make([][]float64, n)
	for u, d := range dists {
		ps := make([]float64, len(d)+1)
		for j, p := range d {
			ps[j+1] = ps[j] + p
		}
		prefix[u] = ps
	}
	window := func(u, w int) float64 {
		ps := prefix[u]
		lo := w - t
		if lo < 0 {
			lo = 0
		}
		hi := w + t + 1
		if hi > len(ps)-1 {
			hi = len(ps) - 1
		}
		if lo >= hi {
			return 0
		}
		return ps[hi] - ps[lo]
	}

	threshold := math.Log2(float64(k))
	entropy := make([]float64, maxW+1)
	computed := make([]bool, maxW+1)
	nonObf := 0
	for _, w := range property {
		if w < 0 {
			w = 0
		}
		if !computed[w] {
			computed[w] = true
			var mass, plogp float64
			for u := 0; u < n; u++ {
				p := window(u, w)
				if p > 0 {
					mass += p
					plogp += p * math.Log2(p)
				}
			}
			if mass > 0 {
				entropy[w] = math.Log2(mass) - plogp/mass
			} else {
				entropy[w] = -1 // sentinel: empty posterior
			}
		}
		if entropy[w] < threshold {
			nonObf++
		}
	}
	for w := range entropy {
		if entropy[w] < 0 {
			entropy[w] = 0
		}
	}
	return ObfuscationReport{
		K:               k,
		EntropyByDegree: entropy,
		NonObfuscated:   nonObf,
		EpsilonTilde:    float64(nonObf) / float64(n),
	}, nil
}
