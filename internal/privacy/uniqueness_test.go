package privacy

import (
	"math"
	"testing"

	"chameleon/internal/uncertain"
)

func TestCommonnessIdenticalValues(t *testing.T) {
	values := []float64{3, 3, 3, 3}
	c := Commonness(values, 1)
	phi0 := 1 / math.Sqrt(2*math.Pi)
	for i, ci := range c {
		if math.Abs(ci-4*phi0) > 1e-12 {
			t.Fatalf("c[%d] = %v, want %v", i, ci, 4*phi0)
		}
	}
}

func TestCommonnessIsolatedValue(t *testing.T) {
	// One value far away from a tight cluster: its commonness is ~phi(0)
	// (only itself), the cluster's is ~3*phi(0).
	values := []float64{0, 0, 0, 1000}
	c := Commonness(values, 1)
	phi0 := 1 / math.Sqrt(2*math.Pi)
	if math.Abs(c[3]-phi0) > 1e-9 {
		t.Fatalf("outlier commonness = %v, want ~%v", c[3], phi0)
	}
	if math.Abs(c[0]-3*phi0) > 1e-9 {
		t.Fatalf("cluster commonness = %v, want ~%v", c[0], 3*phi0)
	}
}

func TestCommonnessDegenerateKernel(t *testing.T) {
	values := []float64{1, 1, 2}
	c := Commonness(values, 0)
	if c[0] != 2 || c[1] != 2 || c[2] != 1 {
		t.Fatalf("degenerate kernel should count exact matches, got %v", c)
	}
	cn := Commonness(values, math.NaN())
	if cn[0] != 2 {
		t.Fatalf("NaN kernel should fall back to counting, got %v", cn)
	}
}

func TestCommonnessEmpty(t *testing.T) {
	if len(Commonness(nil, 1)) != 0 {
		t.Fatal("empty input should give empty output")
	}
}

func TestUniquenessInvertsCommonness(t *testing.T) {
	values := []float64{0, 0, 10}
	u := Uniqueness(values, 0.5)
	if u[2] <= u[0] {
		t.Fatalf("outlier should be more unique: %v", u)
	}
	for _, x := range u {
		if x <= 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("uniqueness = %v", u)
		}
	}
}

func TestVertexUniquenessHub(t *testing.T) {
	// Star graph: the hub's expected degree is unique; leaves share
	// theirs. Hub uniqueness must exceed leaf uniqueness.
	const n = 12
	g := uncertain.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, uncertain.NodeID(i), 0.8)
	}
	u := VertexUniqueness(g)
	for v := 1; v < n; v++ {
		if u[0] <= u[v] {
			t.Fatalf("hub uniqueness %v should exceed leaf %d uniqueness %v", u[0], v, u[v])
		}
	}
}

func TestVertexUniquenessRegular(t *testing.T) {
	// Regular graph: everyone equally unique (theta falls back to 1).
	const n = 6
	g := uncertain.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID((i+1)%n), 0.5)
	}
	u := VertexUniqueness(g)
	for v := 1; v < n; v++ {
		if math.Abs(u[v]-u[0]) > 1e-12 {
			t.Fatalf("regular graph should have uniform uniqueness, got %v", u)
		}
	}
}
