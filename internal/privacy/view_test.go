package privacy

import (
	"math"
	"testing"

	"chameleon/internal/uncertain"
)

// TestPrivacyMeasuresOnCSRView verifies the privacy measures accept the
// packed CSR view interchangeably with the slice-backed graph and return
// bit-identical results: they are deterministic functions of the edge set,
// so any difference would be a representation bug.
func TestPrivacyMeasuresOnCSRView(t *testing.T) {
	g := randomUncertain(41, 30, 90)
	c := uncertain.NewCSR(g)

	if got, want := AnonymityObjective(c), AnonymityObjective(g); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("AnonymityObjective: CSR %v != graph %v", got, want)
	}
	if got, want := TotalDegreeEntropy(c), TotalDegreeEntropy(g); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("TotalDegreeEntropy: CSR %v != graph %v", got, want)
	}

	gp, cp := DegreeProperty(g), DegreeProperty(c)
	for v := range gp {
		if gp[v] != cp[v] {
			t.Fatalf("DegreeProperty[%d]: CSR %d != graph %d", v, cp[v], gp[v])
		}
	}

	gu, cu := VertexUniqueness(g), VertexUniqueness(c)
	for v := range gu {
		if math.Float64bits(gu[v]) != math.Float64bits(cu[v]) {
			t.Fatalf("VertexUniqueness[%d]: CSR %v != graph %v", v, cu[v], gu[v])
		}
	}

	const k = 3
	repG, errG := CheckObfuscation(g, gp, k)
	repC, errC := CheckObfuscation(c, gp, k)
	if errG != nil || errC != nil {
		t.Fatalf("CheckObfuscation errors: graph %v, CSR %v", errG, errC)
	}
	if repG.K != repC.K || repG.NonObfuscated != repC.NonObfuscated ||
		math.Float64bits(repG.EpsilonTilde) != math.Float64bits(repC.EpsilonTilde) ||
		len(repG.EntropyByDegree) != len(repC.EntropyByDegree) {
		t.Fatalf("CheckObfuscation: CSR %+v != graph %+v", repC, repG)
	}
	for w := range repG.EntropyByDegree {
		if math.Float64bits(repG.EntropyByDegree[w]) != math.Float64bits(repC.EntropyByDegree[w]) {
			t.Fatalf("EntropyByDegree[%d]: CSR %v != graph %v", w, repC.EntropyByDegree[w], repG.EntropyByDegree[w])
		}
	}
}
