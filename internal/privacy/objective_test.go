package privacy

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"chameleon/internal/uncertain"
)

func randomUncertain(seed uint64, n, m int) *uncertain.Graph {
	rng := rand.New(rand.NewPCG(seed, 31))
	g := uncertain.New(n)
	for i := 0; i < m; i++ {
		u := uncertain.NodeID(rng.IntN(n))
		v := uncertain.NodeID(rng.IntN(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, rng.Float64())
	}
	return g
}

// TestLemma5Identity verifies the exact information-theoretic identity of
// Lemma 5: the anonymity objective decomposes into per-vertex degree
// entropy, the size term and the degree-value entropy term.
func TestLemma5Identity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 3 + rng.IntN(15)
		g := randomUncertain(seed, n, 3*n)
		objective := AnonymityObjective(g)
		vertexEntropy, sizeTerm, omegaTerm := DegreeUncertaintyDecomposition(g)
		return math.Abs(objective-(vertexEntropy+sizeTerm-omegaTerm)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAnonymityObjectiveRegularCertainGraph(t *testing.T) {
	// Certain cycle: one degree value shared by all n vertices.
	// s(2) = n, H(Y_2) = log2 n -> objective = n log2 n.
	const n = 12
	g := uncertain.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID((i+1)%n), 1)
	}
	want := float64(n) * math.Log2(n)
	if got := AnonymityObjective(g); math.Abs(got-want) > 1e-9 {
		t.Fatalf("objective = %v, want %v", got, want)
	}
}

func TestAnonymityObjectiveStarIsLow(t *testing.T) {
	// Certain star: hub isolated at its own degree value (contributes 0),
	// leaves share theirs. Objective = (n-1) log2(n-1).
	const n = 9
	g := uncertain.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, uncertain.NodeID(i), 1)
	}
	want := float64(n-1) * math.Log2(n-1)
	if got := AnonymityObjective(g); math.Abs(got-want) > 1e-9 {
		t.Fatalf("objective = %v, want %v", got, want)
	}
}

func TestObjectiveRisesWithUncertainty(t *testing.T) {
	// Replacing certain edges with p=0.5 edges must not lower the
	// anonymity objective on a hub-heavy graph: spread degrees blend the
	// hub with the crowd.
	g := randomUncertain(5, 30, 60)
	certain := g.Clone()
	for i := 0; i < certain.NumEdges(); i++ {
		if err := certain.SetProb(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	fuzzy := g.Clone()
	for i := 0; i < fuzzy.NumEdges(); i++ {
		if err := fuzzy.SetProb(i, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if AnonymityObjective(fuzzy) <= AnonymityObjective(certain) {
		t.Fatalf("max-uncertainty edges should raise the objective: %v vs %v",
			AnonymityObjective(fuzzy), AnonymityObjective(certain))
	}
}

func TestDecompositionEmptyGraph(t *testing.T) {
	a, b, c := DegreeUncertaintyDecomposition(uncertain.New(0))
	if a != 0 || b != 0 || c != 0 {
		t.Fatalf("empty graph decomposition = %v %v %v", a, b, c)
	}
}

func TestObjectiveBoundedByPerfectBlending(t *testing.T) {
	// The objective can never exceed |V| log2 |V| (every vertex perfectly
	// hidden at every degree value).
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		n := 2 + rng.IntN(20)
		g := randomUncertain(seed+1000, n, 2*n)
		return AnonymityObjective(g) <= float64(n)*math.Log2(float64(n))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
