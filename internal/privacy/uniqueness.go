package privacy

import (
	"math"

	"chameleon/internal/uncertain"
)

// Commonness computes the theta-commonness (Definition 4) of each value in
// omega against the whole population: C_theta(w) = sum_u phi_{0,theta}(|w - w_u|),
// with phi the normal density with standard deviation theta.
func Commonness(values []float64, theta float64) []float64 {
	n := len(values)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if theta <= 0 || math.IsNaN(theta) {
		// Degenerate kernel: commonness is the exact-match count.
		counts := make(map[float64]float64, n)
		for _, v := range values {
			counts[v]++
		}
		for i, v := range values {
			out[i] = counts[v]
		}
		return out
	}
	norm := 1 / (theta * math.Sqrt(2*math.Pi))
	inv2t2 := 1 / (2 * theta * theta)
	for i, w := range values {
		var c float64
		for _, x := range values {
			d := w - x
			c += norm * math.Exp(-d*d*inv2t2)
		}
		out[i] = c
	}
	return out
}

// Uniqueness returns the theta-uniqueness of each vertex property value:
// U_theta(w) = 1 / C_theta(w). Higher means the vertex's property value is
// rarer and the vertex needs more anonymization noise.
func Uniqueness(values []float64, theta float64) []float64 {
	c := Commonness(values, theta)
	out := make([]float64, len(c))
	for i, ci := range c {
		if ci > 0 {
			out[i] = 1 / ci
		} else {
			out[i] = math.Inf(1)
		}
	}
	return out
}

// VertexUniqueness computes the uniqueness score of every vertex of g over
// the expected-degree property with the kernel bandwidth theta = sigma_G,
// the standard deviation of the property over the graph (the paper's
// uncertainty-aware choice in Section V-C).
func VertexUniqueness(g uncertain.View) []float64 {
	theta := g.DegreeStdDev()
	if theta <= 0 {
		theta = 1
	}
	return Uniqueness(g.ExpectedDegrees(), theta)
}
