package privacy

import (
	"math"
	"testing"
)

// FuzzDegreeDistribution hardens the Poisson-binomial DP: any probability
// vector (after clamping to [0,1]) must yield a valid distribution.
func FuzzDegreeDistribution(f *testing.F) {
	f.Add(0.5, 0.25, 0.75)
	f.Add(0.0, 1.0, 0.0)
	f.Add(1e-300, 1.0, 0.999999)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) {
				return 0
			}
			if x < 0 {
				return 0
			}
			if x > 1 {
				return 1
			}
			return x
		}
		probs := []float64{clamp(a), clamp(b), clamp(c)}
		dist := DegreeDistribution(probs)
		if len(dist) != 4 {
			t.Fatalf("distribution length %d, want 4", len(dist))
		}
		var sum float64
		for _, p := range dist {
			if p < -1e-15 || math.IsNaN(p) {
				t.Fatalf("invalid mass %v in %v", p, dist)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("distribution sums to %v", sum)
		}
		if h := DegreeEntropy(dist); h < 0 || h > 2+1e-12 {
			t.Fatalf("entropy %v out of [0, 2] for 4 outcomes", h)
		}
	})
}
