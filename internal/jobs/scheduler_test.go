package jobs

import (
	"bytes"
	"context"
	"errors"
	"os"
	"runtime"
	"testing"
	"time"

	"chameleon/internal/core"
	"chameleon/internal/uncertain"
)

// waitDone blocks on a job's completion signal with a test deadline.
func waitDone(t *testing.T, m *Manager, id string) {
	t.Helper()
	ch, err := m.Done(id)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s never finished", id)
	}
}

// startManager builds a store+manager over a temp spool and starts it.
func startManager(t *testing.T, cfg Config) (*Manager, *Store, context.CancelFunc) {
	t.Helper()
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	m := NewManager(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cancel()
		m.Wait()
		st.Close()
	})
	return m, st, cancel
}

// TestManagerLifecycleDeterminism runs one job through the scheduler and
// checks the published graph is bit-identical to a direct engine run
// with the same parameters — the job plane must add scheduling, not
// noise.
func TestManagerLifecycleDeterminism(t *testing.T) {
	g := testGraph(t, 60, 3)
	spec := Spec{K: 4, Epsilon: 0.05, Samples: 60, Seed: 9}
	m, st, _ := startManager(t, Config{MaxConcurrent: 2, WorkersPerJob: 2})

	job, err := m.Submit(spec, g)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateQueued && job.State != StateRunning {
		t.Fatalf("fresh job state = %s", job.State)
	}
	waitDone(t, m, job.ID)

	stt, err := m.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stt.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", stt.State, stt.Job.Error)
	}
	if stt.EpsilonTilde > spec.Epsilon {
		t.Fatalf("eps~ = %v exceeds eps = %v", stt.EpsilonTilde, spec.Epsilon)
	}
	if stt.Sigma <= 0 {
		t.Fatalf("sigma = %v", stt.Sigma)
	}

	// The σ-search checkpoint must be cleaned up after completion.
	if _, err := os.Stat(st.CheckpointPath(job.ID)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("done job left a checkpoint behind (stat err: %v)", err)
	}

	// Direct engine run on the job's durable input (the spool stores the
	// v1 canonical encoding, whose sorted edge order is what the search
	// actually iterated), same parameters and worker budget.
	durable, err := st.LoadInput(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.AnonymizeContext(context.Background(), durable, core.Params{
		K: spec.K, Epsilon: spec.Epsilon, Samples: spec.Samples, Seed: spec.Seed,
		Workers: 2, Variant: core.RSME,
	})
	if err != nil {
		t.Fatal(err)
	}
	viaJobs, err := uncertain.LoadFile(st.ResultPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := uncertain.WriteBinary(&a, viaJobs); err != nil {
		t.Fatal(err)
	}
	if err := uncertain.WriteBinary(&b, direct.Graph); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("job-plane result differs from the direct run (%d vs %d bytes)", a.Len(), b.Len())
	}
	if stt.Sigma != direct.Sigma || stt.EpsilonTilde != direct.EpsilonTilde {
		t.Fatalf("summary differs: job (σ=%v, ε~=%v) direct (σ=%v, ε~=%v)",
			stt.Sigma, stt.EpsilonTilde, direct.Sigma, direct.EpsilonTilde)
	}
}

// TestManagerRecovery simulates a daemon death: a spool holding one job
// marked running (its daemon never finished it) must be re-enqueued by
// Start and driven to done, with the restart counted.
func TestManagerRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 40, 4)
	job, err := st.Create(Spec{K: 3, Epsilon: 0.05, Samples: 40, Seed: 2}, g, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	job.State = StateRunning // as a SIGKILLed daemon leaves it
	if err := st.Persist(job); err != nil {
		t.Fatal(err)
	}
	// A corrupt checkpoint must be ignored, not fatal: the job reruns
	// from scratch.
	if err := os.WriteFile(st.CheckpointPath(job.ID), []byte("torn{"), 0o644); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{Store: st2, MaxConcurrent: 1, WorkersPerJob: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		cancel()
		m.Wait()
		st2.Close()
	}()
	recovered, err := m.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 1 {
		t.Fatalf("recovered %d jobs, want 1", recovered)
	}
	waitDone(t, m, job.ID)
	stt, err := m.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stt.State != StateDone {
		t.Fatalf("recovered job finished %s (%s), want done", stt.State, stt.Job.Error)
	}
	if stt.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", stt.Recovered)
	}
	if _, err := uncertain.LoadFile(st2.ResultPath(job.ID)); err != nil {
		t.Fatalf("recovered job has no readable result: %v", err)
	}
}

// TestManagerAdmissionControl drives the admission gates with a blocked
// worker: beyond the queue depth, Submit must reject with a BusyError
// carrying a positive Retry-After, accepted jobs must all complete once
// released, and the manager must not leak goroutines.
func TestManagerAdmissionControl(t *testing.T) {
	before := runtime.NumGoroutine()

	g := testGraph(t, 30, 5)
	release := make(chan struct{})
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{Store: st, MaxConcurrent: 1, QueueDepth: 2, WorkersPerJob: 1})
	m.runFn = func(ctx context.Context, tr *tracked, job Job) (*core.Result, error) {
		select {
		case <-release:
			return &core.Result{Graph: g, EpsilonTilde: 0.01, Sigma: 0.5}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}

	spec := Spec{K: 3, Epsilon: 0.1}
	first, err := m.Submit(spec, g)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the single worker holds the first job, so the queue
	// occupancy below is deterministic.
	deadline := time.Now().Add(30 * time.Second)
	for {
		stt, err := m.Get(first.ID)
		if err != nil {
			t.Fatal(err)
		}
		if stt.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	var accepted []*Job
	accepted = append(accepted, first)
	for i := 0; i < 2; i++ { // fill the queue
		j, err := m.Submit(spec, g)
		if err != nil {
			t.Fatalf("queue slot %d rejected: %v", i, err)
		}
		accepted = append(accepted, j)
	}
	_, err = m.Submit(spec, g) // beyond the depth
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("over-depth submit: err = %v, want BusyError", err)
	}
	if busy.RetryAfter < time.Second {
		t.Fatalf("Retry-After = %v, want >= 1s", busy.RetryAfter)
	}

	close(release)
	for _, j := range accepted {
		waitDone(t, m, j.ID)
		stt, err := m.Get(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if stt.State != StateDone {
			t.Fatalf("accepted job %s finished %s, want done", j.ID, stt.State)
		}
	}

	// A shut-down manager refuses new work.
	cancel()
	m.Wait()
	st.Close()
	if _, err := m.Submit(spec, g); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown: err = %v, want ErrShuttingDown", err)
	}

	// No goroutine leak: everything the manager started must be gone.
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestManagerCancel covers both cancellation paths: a queued job is
// cancelled in place, a running one is interrupted.
func TestManagerCancel(t *testing.T) {
	g := testGraph(t, 30, 6)
	release := make(chan struct{})
	defer close(release)
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{Store: st, MaxConcurrent: 1, QueueDepth: 4, WorkersPerJob: 1})
	m.runFn = func(ctx context.Context, tr *tracked, job Job) (*core.Result, error) {
		select {
		case <-release:
			return &core.Result{Graph: g, EpsilonTilde: 0.01, Sigma: 0.5}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); m.Wait(); st.Close() }()
	if _, err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}

	spec := Spec{K: 3, Epsilon: 0.1}
	running, err := m.Submit(spec, g)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		stt, _ := m.Get(running.ID)
		if stt.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued, err := m.Submit(spec, g)
	if err != nil {
		t.Fatal(err)
	}

	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, queued.ID)
	if stt, _ := m.Get(queued.ID); stt.State != StateCancelled {
		t.Fatalf("queued job after cancel = %s, want cancelled", stt.State)
	}

	if err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, running.ID)
	if stt, _ := m.Get(running.ID); stt.State != StateCancelled {
		t.Fatalf("running job after cancel = %s, want cancelled", stt.State)
	}

	// Terminal jobs refuse further cancellation; unknown IDs 404.
	if err := m.Cancel(running.ID); err == nil || !IsBadRequest(err) {
		t.Fatalf("cancelling a cancelled job: err = %v", err)
	}
	if err := m.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancelling unknown job: err = %v", err)
	}
}

// TestManagerRejectsBadSubmissions checks the graph-dependent admission
// checks surface as bad requests, not queue entries.
func TestManagerRejectsBadSubmissions(t *testing.T) {
	m, _, _ := startManager(t, Config{MaxConcurrent: 1, WorkersPerJob: 1})
	g := testGraph(t, 10, 7)
	if _, err := m.Submit(Spec{K: 50, Epsilon: 0.1}, g); err == nil || !IsBadRequest(err) {
		t.Fatalf("k > |V|: err = %v", err)
	}
	if _, err := m.Submit(Spec{K: 1, Epsilon: 0.1}, g); err == nil || !IsBadRequest(err) {
		t.Fatalf("k < 2: err = %v", err)
	}
	empty := uncertain.New(5)
	if _, err := m.Submit(Spec{K: 3, Epsilon: 0.1}, empty); err == nil || !IsBadRequest(err) {
		t.Fatalf("edgeless graph: err = %v", err)
	}
	if len(m.List()) != 0 {
		t.Fatalf("rejected submissions leaked into the job list: %v", m.List())
	}
}
