package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"chameleon/internal/core"
	"chameleon/internal/uncertain"
)

// postJob submits a multipart job through the test server.
func postJob(t *testing.T, url string, spec string, g *uncertain.Graph) *http.Response {
	t.Helper()
	var gbuf bytes.Buffer
	if err := uncertain.WriteBinary(&gbuf, g); err != nil {
		t.Fatal(err)
	}
	ct, body := multipartBody(t, []byte(spec), gbuf.Bytes())
	resp, err := http.Post(url+"/jobs", ct, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) Job {
	t.Helper()
	defer resp.Body.Close()
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

// TestAPIEndToEnd drives the whole HTTP surface against a real
// anonymization: submit, status, list, result, certificate, cancel and
// the error statuses.
func TestAPIEndToEnd(t *testing.T) {
	g := testGraph(t, 50, 8)
	m, st, _ := startManager(t, Config{MaxConcurrent: 1, WorkersPerJob: 1})
	srv := httptest.NewServer(NewAPI(m))
	defer srv.Close()

	// Unknown job: 404. Wrong state for result: 409 later.
	if resp, _ := http.Get(srv.URL + "/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d, want 404", resp.StatusCode)
	}

	resp := postJob(t, srv.URL, `{"k": 3, "eps": 0.05, "samples": 50, "seed": 4}`, g)
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); loc == "" {
		t.Fatal("submit response has no Location header")
	}
	job := decodeJob(t, resp)
	if job.ID == "" {
		t.Fatal("submit returned no job ID")
	}

	waitDone(t, m, job.ID)

	// Status: done, with the search summary.
	sresp, err := http.Get(srv.URL + "/jobs/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	var stt Status
	json.NewDecoder(sresp.Body).Decode(&stt)
	sresp.Body.Close()
	if stt.State != StateDone || stt.Sigma <= 0 {
		t.Fatalf("status = %+v, want done with sigma", stt)
	}

	// Listing includes the job.
	lresp, err := http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []Status `json:"jobs"`
	}
	json.NewDecoder(lresp.Body).Decode(&listing)
	lresp.Body.Close()
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != job.ID {
		t.Fatalf("listing = %+v", listing)
	}

	// Result: the v2 container decodes to the same graph stored in the
	// spool.
	rresp, err := http.Get(srv.URL + "/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d", rresp.StatusCode)
	}
	fetched, err := uncertain.ReadAuto(rresp.Body)
	rresp.Body.Close()
	if err != nil {
		t.Fatalf("result does not decode: %v", err)
	}
	spooled, err := uncertain.LoadFile(st.ResultPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	uncertain.WriteBinary(&a, fetched)
	uncertain.WriteBinary(&b, spooled)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("fetched result differs from the spooled result")
	}

	// Certificate: the published graph must verify against the input.
	cresp, err := http.Get(srv.URL + "/jobs/" + job.ID + "/certificate")
	if err != nil {
		t.Fatal(err)
	}
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("certificate = %d", cresp.StatusCode)
	}
	var cert Certificate
	json.NewDecoder(cresp.Body).Decode(&cert)
	cresp.Body.Close()
	if !cert.Valid {
		t.Fatalf("certificate invalid: %+v", cert)
	}
	if cert.K != 3 || cert.EpsilonTilde > 0.05 {
		t.Fatalf("certificate = %+v", cert)
	}

	// Bad submissions are 400 with a JSON error body.
	bresp := postJob(t, srv.URL, `{"k": 1, "eps": 0.05}`, g)
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec = %d, want 400", bresp.StatusCode)
	}
	var eb errorBody
	json.NewDecoder(bresp.Body).Decode(&eb)
	bresp.Body.Close()
	if eb.Error == "" {
		t.Fatal("400 without an error body")
	}

	// JSON route with a server-side path.
	gpath := filepath.Join(t.TempDir(), "g.tsv")
	if err := uncertain.SaveFile(gpath, g); err != nil {
		t.Fatal(err)
	}
	jresp, err := http.Post(srv.URL+"/jobs", "application/json",
		bytes.NewBufferString(fmt.Sprintf(`{"k": 3, "eps": 0.05, "samples": 50, "seed": 4, "graph_path": %q}`, gpath)))
	if err != nil {
		t.Fatal(err)
	}
	if jresp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(jresp.Body)
		t.Fatalf("JSON submit = %d: %s", jresp.StatusCode, body)
	}
	pathJob := decodeJob(t, jresp)
	waitDone(t, m, pathJob.ID)

	// Determinism across submission routes: same spec, same graph, same
	// published bytes.
	viaPath, err := uncertain.LoadFile(st.ResultPath(pathJob.ID))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	uncertain.WriteBinary(&c, viaPath)
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("JSON-route result differs from the multipart-route result")
	}

	// A missing server-side path is the client's fault: 400.
	mresp, err := http.Post(srv.URL+"/jobs", "application/json",
		bytes.NewBufferString(`{"k": 3, "eps": 0.05, "graph_path": "/does/not/exist"}`))
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing graph_path = %d, want 400", mresp.StatusCode)
	}
}

// TestAPIAdmission saturates a deliberately tiny daemon over HTTP:
// beyond the queue, submissions get 429 with a parseable Retry-After;
// accepted jobs complete; results of in-flight jobs are 409.
func TestAPIAdmission(t *testing.T) {
	g := testGraph(t, 30, 9)
	release := make(chan struct{})
	// gate lets the test swap in a fresh blocking channel between phases
	// without racing the workers' runFn reads.
	var gate atomic.Value
	gate.Store(release)
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{Store: st, MaxConcurrent: 1, QueueDepth: 1, WorkersPerJob: 1})
	m.runFn = func(ctx context.Context, tr *tracked, job Job) (*core.Result, error) {
		select {
		case <-gate.Load().(chan struct{}):
			return &core.Result{Graph: g, EpsilonTilde: 0.01, Sigma: 0.5}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); m.Wait(); st.Close() }()
	if _, err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(m))
	defer srv.Close()

	spec := `{"k": 3, "eps": 0.1}`
	first := decodeJob(t, postJob(t, srv.URL, spec, g))
	deadline := time.Now().Add(30 * time.Second)
	for {
		stt, err := m.Get(first.ID)
		if err != nil {
			t.Fatal(err)
		}
		if stt.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	second := decodeJob(t, postJob(t, srv.URL, spec, g)) // fills the queue

	// In-flight result fetch: 409, not a hang or an empty file.
	rresp, err := http.Get(srv.URL + "/jobs/" + first.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("result of running job = %d, want 409", rresp.StatusCode)
	}

	// The saturating submission: 429 + Retry-After.
	oresp := postJob(t, srv.URL, spec, g)
	defer oresp.Body.Close()
	if oresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429", oresp.StatusCode)
	}
	ra := oresp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", ra)
	}

	close(release)
	for _, id := range []string{first.ID, second.ID} {
		waitDone(t, m, id)
		if stt, _ := m.Get(id); stt.State != StateDone {
			t.Fatalf("accepted job %s finished %s, want done", id, stt.State)
		}
	}

	// Cancelled-over-HTTP path: submit against a fresh (blocking) gate,
	// cancel, observe the state.
	gate.Store(make(chan struct{}))
	third := decodeJob(t, postJob(t, srv.URL, spec, g))
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+third.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d, want 200", dresp.StatusCode)
	}
	waitDone(t, m, third.ID)
	if stt, _ := m.Get(third.ID); stt.State != StateCancelled {
		t.Fatalf("cancelled job state = %s", stt.State)
	}
}

// TestAPIUploadLimit bounds submission bodies: anything over the limit
// is 413, not an admitted job.
func TestAPIUploadLimit(t *testing.T) {
	m, _, _ := startManager(t, Config{MaxConcurrent: 1, WorkersPerJob: 1})
	api := NewAPI(m)
	api.MaxUploadBytes = 256
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp := postJob(t, srv.URL, `{"k": 3, "eps": 0.1}`, testGraph(t, 60, 10))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload = %d, want 413", resp.StatusCode)
	}
	if len(m.List()) != 0 {
		t.Fatal("oversized upload was admitted")
	}
}
