package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"chameleon/internal/testkit"
	"chameleon/internal/uncertain"
)

// API is the job plane's HTTP surface, mounted by cmd/chameleond on the
// same listener as /metrics and /query:
//
//	POST   /jobs                  submit (JSON spec, or multipart spec+graph)
//	GET    /jobs                  list every known job
//	GET    /jobs/{id}             one job's status (with live progress/ETA)
//	DELETE /jobs/{id}             cancel a queued or running job
//	GET    /jobs/{id}/result      the published graph, sectioned v2 binary
//	GET    /jobs/{id}/certificate re-verify the result against the input
type API struct {
	Manager *Manager
	// MaxUploadBytes bounds a submission body; 0 = DefaultMaxUploadBytes.
	MaxUploadBytes int64
	mux            *http.ServeMux
}

// NewAPI wires the handler tree over the manager.
func NewAPI(m *Manager) *API {
	a := &API{Manager: m, mux: http.NewServeMux()}
	a.mux.HandleFunc("POST /jobs", a.handleSubmit)
	a.mux.HandleFunc("GET /jobs", a.handleList)
	a.mux.HandleFunc("GET /jobs/{id}", a.handleStatus)
	a.mux.HandleFunc("DELETE /jobs/{id}", a.handleCancel)
	a.mux.HandleFunc("GET /jobs/{id}/result", a.handleResult)
	a.mux.HandleFunc("GET /jobs/{id}/certificate", a.handleCertificate)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// writeJSON emits one JSON document with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// writeError maps the job plane's error taxonomy onto HTTP statuses:
// client mistakes → 400, unknown IDs → 404, admission rejections → 429
// with Retry-After, shutdown → 503, the rest → 500.
func writeError(w http.ResponseWriter, err error) {
	var busy *BusyError
	switch {
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", strconv.Itoa(int(busy.RetryAfter/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: busy.Error()})
	case IsBadRequest(err):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case errors.Is(err, ErrUnknownJob):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// handleSubmit admits one job. The request body is either an
// application/json Spec naming a server-side graph_path, or a
// multipart/form-data pair of "spec" and "graph" parts.
func (a *API) handleSubmit(w http.ResponseWriter, r *http.Request) {
	limit := a.MaxUploadBytes
	if limit <= 0 {
		limit = DefaultMaxUploadBytes
	}
	body := http.MaxBytesReader(w, r.Body, limit)
	spec, g, err := ParseSubmission(r.Header.Get("Content-Type"), body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("jobs: submission exceeds the %d byte limit", limit)})
			return
		}
		writeError(w, err)
		return
	}
	if g == nil {
		// JSON route: the graph lives on the server's filesystem.
		g, err = uncertain.LoadFile(spec.GraphPath)
		if err != nil {
			writeError(w, badRequestf("jobs: loading graph_path %q: %v", spec.GraphPath, err))
			return
		}
	}
	job, err := a.Manager.Submit(*spec, g)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job)
}

// handleList returns every known job's status, oldest first.
func (a *API) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []Status `json:"jobs"`
	}{Jobs: a.Manager.List()})
}

// handleStatus returns one job's status with live σ-search progress.
func (a *API) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := a.Manager.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleCancel stops a queued or running job.
func (a *API) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := a.Manager.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	st, err := a.Manager.Get(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResult streams the published graph in the sectioned v2 binary
// container. 409 while the job is still in flight, 404 for unknown IDs,
// and the terminal non-done states report why there is no result.
func (a *API) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := a.Manager.Get(id)
	if err != nil {
		writeError(w, err)
		return
	}
	switch st.State {
	case StateDone:
	case StateQueued, StateRunning:
		writeJSON(w, http.StatusConflict,
			errorBody{Error: fmt.Sprintf("jobs: job %s is still %s", id, st.State)})
		return
	default:
		writeJSON(w, http.StatusConflict,
			errorBody{Error: fmt.Sprintf("jobs: job %s finished %s: %s", id, st.State, st.Job.Error)})
		return
	}
	f, err := os.Open(a.Manager.cfg.Store.ResultPath(id))
	if err != nil {
		writeError(w, fmt.Errorf("jobs: opening result for %s: %w", id, err))
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".ug2"))
	if fi, err := f.Stat(); err == nil {
		w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	}
	http.ServeContent(w, r, id+".ug2", st.FinishedAt, f)
}

// Certificate is the on-demand re-verification of a finished job: the
// spool's input and result are reloaded from disk and the full privacy
// certificate (Definition 3 entropy check plus tolerated-fraction bound)
// recomputed by testkit's independent checker. Valid is the verdict; a
// false Valid means the stored artifacts no longer deliver the claimed
// guarantee — the response is still 200, because the report itself
// succeeded (report semantics, like /healthz).
type Certificate struct {
	JobID   string  `json:"job_id"`
	K       int     `json:"k"`
	Epsilon float64 `json:"eps"`
	// EpsilonTilde is the re-measured under-obfuscated fraction.
	EpsilonTilde float64 `json:"epsilon_tilde"`
	// MinEntropy is the weakest vertex's posterior entropy in bits.
	MinEntropy float64 `json:"min_entropy"`
	Valid      bool    `json:"valid"`
}

// handleCertificate recomputes the privacy certificate for a done job.
func (a *API) handleCertificate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := a.Manager.Get(id)
	if err != nil {
		writeError(w, err)
		return
	}
	if st.State != StateDone {
		writeJSON(w, http.StatusConflict,
			errorBody{Error: fmt.Sprintf("jobs: job %s is %s; only done jobs certify", id, st.State)})
		return
	}
	store := a.Manager.cfg.Store
	orig, err := store.LoadInput(id)
	if err != nil {
		writeError(w, err)
		return
	}
	pub, err := uncertain.LoadFile(store.ResultPath(id))
	if err != nil {
		writeError(w, fmt.Errorf("jobs: loading result for %s: %w", id, err))
		return
	}
	rep, err := testkit.CheckCertificate(orig, pub, st.Spec.K, st.Spec.Epsilon)
	if err != nil {
		writeError(w, fmt.Errorf("jobs: certifying %s: %w", id, err))
		return
	}
	writeJSON(w, http.StatusOK, Certificate{
		JobID: id, K: st.Spec.K, Epsilon: st.Spec.Epsilon,
		EpsilonTilde: rep.EpsilonTilde, MinEntropy: rep.MinEntropy, Valid: rep.Valid,
	})
}
