package jobs

import (
	"bytes"
	"mime/multipart"
	"testing"

	"chameleon/internal/uncertain"
)

// FuzzJobRequest fuzzes the submission decoder over arbitrary content
// types and bodies: malformed JSON, hostile multipart framing, truncated
// binary uploads. The contract under test is the one the HTTP layer
// relies on: ParseSubmission never panics, never admits an invalid spec,
// and never returns a graph that failed to decode.
func FuzzJobRequest(f *testing.F) {
	// JSON route seeds.
	f.Add("application/json", []byte(`{"k": 4, "eps": 0.05, "graph_path": "/data/g.tsv"}`))
	f.Add("application/json", []byte(`{"k": 1}`))
	f.Add("application/json", []byte(`{`))
	f.Add("application/json", []byte(`{"k": 4, "eps": 0.05, "graph_path": "g"} trailing`))
	f.Add("text/plain", []byte("not a submission"))
	f.Add("", []byte{})

	// Multipart seeds: a well-formed submission with a TSV graph, one
	// with a v2 binary graph, and a truncated binary upload.
	g := uncertain.New(4)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.25)
	g.MustAddEdge(2, 3, 1)
	var v1, v2 bytes.Buffer
	if err := uncertain.WriteBinary(&v1, g); err != nil {
		f.Fatal(err)
	}
	if err := uncertain.WriteBinaryV2(&v2, g); err != nil {
		f.Fatal(err)
	}
	part := func(spec, graph []byte) (string, []byte) {
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		if spec != nil {
			fw, _ := mw.CreateFormField("spec")
			fw.Write(spec)
		}
		if graph != nil {
			fw, _ := mw.CreateFormFile("graph", "g")
			fw.Write(graph)
		}
		mw.Close()
		return mw.FormDataContentType(), buf.Bytes()
	}
	specJSON := []byte(`{"k": 2, "eps": 0.1}`)
	for _, graph := range [][]byte{
		[]byte("4\n0\t1\t0.5\n"),
		v1.Bytes(),
		v2.Bytes(),
		v2.Bytes()[:len(v2.Bytes())/2], // truncated v2 container
		v1.Bytes()[:6],                 // magic but no header
	} {
		ct, body := part(specJSON, graph)
		f.Add(ct, body)
	}
	ct, body := part(nil, []byte("4\n0\t1\t0.5\n"))
	f.Add(ct, body)
	f.Add("multipart/form-data", []byte("no boundary"))
	f.Add("multipart/form-data; boundary=x", []byte("--x\r\ngarbage"))

	f.Fuzz(func(t *testing.T, contentType string, body []byte) {
		spec, g, err := ParseSubmission(contentType, bytes.NewReader(body))
		if err != nil {
			if spec != nil || g != nil {
				t.Fatalf("error %v alongside a non-nil spec/graph", err)
			}
			return
		}
		// Anything admitted must already satisfy the validated contract.
		if spec == nil {
			t.Fatal("nil spec without an error")
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("admitted spec fails validation: %v (%+v)", verr, spec)
		}
		if g != nil {
			if spec.GraphPath != "" {
				t.Fatal("upload admitted alongside graph_path")
			}
			// The decoded graph must be internally consistent enough to
			// serialize — a corrupted accepted graph would poison the spool.
			var buf bytes.Buffer
			if werr := uncertain.WriteBinary(&buf, g); werr != nil {
				t.Fatalf("admitted graph does not re-serialize: %v", werr)
			}
		} else if spec.GraphPath == "" {
			t.Fatal("JSON submission admitted without a graph_path")
		}
	})
}
