// Package jobs is the anonymization job plane: a spool-backed store of
// submitted (k, ε)-obfuscation jobs, a concurrent scheduler with
// admission control and checkpoint-backed crash recovery, and the HTTP
// handlers cmd/chameleond mounts next to /metrics and /query. Every job
// is durable — its input graph, parameter echo, state transitions and
// σ-search checkpoints all live under one spool directory — so a daemon
// killed mid-search and restarted on the same spool resumes its
// in-flight jobs bit-identically to uninterrupted runs.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"

	"chameleon/internal/uncertain"
)

// DefaultMaxUploadBytes bounds a multipart submission body (spec plus
// graph upload) when Config.MaxUploadBytes is zero: 256 MiB holds a v2
// container well past the paper's largest dataset.
const DefaultMaxUploadBytes = 256 << 20

// Methods the job plane accepts; they mirror the chameleon facade.
var validMethods = map[string]bool{
	"": true, "RSME": true, "RS": true, "ME": true, "Rep-An": true,
}

// Spec is the client-supplied parameterization of one anonymization job.
// It travels as JSON — either the whole request body, or the "spec" part
// of a multipart submission whose "graph" part uploads the input.
type Spec struct {
	// K is the obfuscation level (required, >= 2).
	K int `json:"k"`
	// Epsilon is the tolerated under-obfuscated fraction, in [0, 1).
	Epsilon float64 `json:"eps"`
	// Method is RSME (default), RS, ME or Rep-An.
	Method string `json:"method,omitempty"`
	// Samples is the fixed Monte Carlo budget (0 = engine default).
	Samples int `json:"samples,omitempty"`
	// SamplingMode is independent (default), antithetic, stratified or
	// coupled.
	SamplingMode string `json:"sampling_mode,omitempty"`
	// TargetRSE, when positive, switches to adaptive sequential stopping.
	TargetRSE float64 `json:"target_rse,omitempty"`
	// MaxSamples caps adaptive sampling (requires TargetRSE).
	MaxSamples int `json:"max_samples,omitempty"`
	// Seed makes the job reproducible; the same spec and graph always
	// publish the same bytes.
	Seed uint64 `json:"seed,omitempty"`
	// GraphPath names a server-side input file (TSV, v1 or v2 binary,
	// auto-detected). JSON submissions require it; multipart submissions
	// upload the graph instead and must leave it empty.
	GraphPath string `json:"graph_path,omitempty"`
}

// BadRequestError marks a submission the client got wrong (malformed
// body, invalid parameters, undecodable graph); the HTTP layer maps it
// to 400 where anything else would be a 500. The underlying cause (when
// one exists) stays on the unwrap chain, so errors.As can still find
// transport-level errors like http.MaxBytesError behind it.
type BadRequestError struct {
	msg   string
	cause error
}

func (e *BadRequestError) Error() string { return e.msg }
func (e *BadRequestError) Unwrap() error { return e.cause }

func badRequestf(format string, args ...any) error {
	return &BadRequestError{msg: fmt.Sprintf(format, args...)}
}

// badRequestWrap is badRequestf with the cause kept unwrappable.
func badRequestWrap(cause error, format string, args ...any) error {
	return &BadRequestError{msg: fmt.Sprintf(format, args...), cause: cause}
}

// IsBadRequest reports whether err (or anything it wraps) marks a
// client-side submission error.
func IsBadRequest(err error) bool {
	var bre *BadRequestError
	return errors.As(err, &bre)
}

// Validate checks the parameter ranges that are knowable without the
// graph in hand (graph-dependent checks — k <= |V|, a nonempty edge set
// — happen at admission, once the input is decoded).
func (s *Spec) Validate() error {
	if s.K < 2 {
		return badRequestf("jobs: k must be >= 2, got %d", s.K)
	}
	if s.Epsilon < 0 || s.Epsilon >= 1 {
		return badRequestf("jobs: eps must be in [0,1), got %v", s.Epsilon)
	}
	if !validMethods[s.Method] {
		return badRequestf("jobs: unknown method %q", s.Method)
	}
	if _, err := uncertain.ParseSamplingMode(s.SamplingMode); err != nil {
		return badRequestf("jobs: %v", err)
	}
	if s.Samples < 0 {
		return badRequestf("jobs: samples must be >= 0, got %d", s.Samples)
	}
	if s.TargetRSE < 0 || s.TargetRSE >= 1 {
		return badRequestf("jobs: target_rse must be in [0,1), got %v", s.TargetRSE)
	}
	if s.MaxSamples < 0 {
		return badRequestf("jobs: max_samples must be >= 0, got %d", s.MaxSamples)
	}
	if s.MaxSamples > 0 && s.TargetRSE == 0 {
		return badRequestf("jobs: max_samples requires target_rse")
	}
	return nil
}

// ParseSubmission decodes one job submission. contentType routes the
// body: application/json bodies are a bare Spec naming a server-side
// GraphPath; multipart/form-data bodies carry a "spec" JSON part and a
// "graph" file part (TSV, v1 or v2 binary, auto-detected) and return the
// decoded graph. The spec is validated either way; a non-nil error means
// the submission must not be admitted. Malformed or truncated input of
// any kind returns an error, never panics — the decoder is fuzzed on
// that contract (FuzzJobRequest).
func ParseSubmission(contentType string, body io.Reader) (*Spec, *uncertain.Graph, error) {
	mediaType, mtParams, err := mime.ParseMediaType(contentType)
	if err != nil {
		return nil, nil, badRequestf("jobs: bad content type %q: %v", contentType, err)
	}
	switch {
	case mediaType == "application/json":
		spec, err := decodeSpec(body)
		if err != nil {
			return nil, nil, err
		}
		if spec.GraphPath == "" {
			return nil, nil, badRequestf("jobs: JSON submissions must name a server-side graph_path (or upload the graph via multipart)")
		}
		return spec, nil, nil
	case mediaType == "multipart/form-data":
		boundary := mtParams["boundary"]
		if boundary == "" {
			return nil, nil, badRequestf("jobs: multipart submission without a boundary")
		}
		return parseMultipart(multipart.NewReader(body, boundary))
	default:
		return nil, nil, badRequestf("jobs: unsupported content type %q (use application/json or multipart/form-data)", mediaType)
	}
}

// decodeSpec parses and validates a Spec JSON document.
func decodeSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	spec := new(Spec)
	if err := dec.Decode(spec); err != nil {
		return nil, badRequestWrap(err, "jobs: bad spec JSON: %v", err)
	}
	// A second document after the spec is a malformed request, not
	// ignorable garbage.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, badRequestf("jobs: trailing data after the spec JSON")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// parseMultipart walks the submission's parts. Order is free, but both
// "spec" and "graph" must appear exactly once.
func parseMultipart(mr *multipart.Reader) (*Spec, *uncertain.Graph, error) {
	var spec *Spec
	var g *uncertain.Graph
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, badRequestWrap(err, "jobs: bad multipart body: %v", err)
		}
		name := part.FormName()
		switch name {
		case "spec":
			if spec != nil {
				part.Close()
				return nil, nil, badRequestf("jobs: duplicate spec part")
			}
			spec, err = decodeSpec(part)
		case "graph":
			if g != nil {
				part.Close()
				return nil, nil, badRequestf("jobs: duplicate graph part")
			}
			g, err = uncertain.ReadAuto(part)
			if err != nil {
				err = badRequestWrap(err, "jobs: undecodable graph upload: %v", err)
			}
		default:
			err = badRequestf("jobs: unknown multipart part %q", name)
		}
		part.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	if spec == nil {
		return nil, nil, badRequestf("jobs: multipart submission missing the spec part")
	}
	if g == nil {
		return nil, nil, badRequestf("jobs: multipart submission missing the graph part")
	}
	if spec.GraphPath != "" {
		return nil, nil, badRequestf("jobs: graph_path and a graph upload are mutually exclusive")
	}
	return spec, g, nil
}

// checkGraph applies the graph-dependent admission checks shared by both
// submission routes.
func checkGraph(spec *Spec, g *uncertain.Graph) error {
	if g.NumNodes() == 0 {
		return badRequestf("jobs: empty graph")
	}
	if g.NumEdges() == 0 {
		return badRequestf("jobs: graph has no edges to perturb")
	}
	if spec.K > g.NumNodes() {
		return badRequestf("jobs: k=%d exceeds |V|=%d", spec.K, g.NumNodes())
	}
	return nil
}
