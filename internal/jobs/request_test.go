package jobs

import (
	"bytes"
	"mime/multipart"
	"strings"
	"testing"

	"chameleon/internal/uncertain"
)

func validSpec() Spec {
	return Spec{K: 4, Epsilon: 0.05, Samples: 50, Seed: 9, GraphPath: "/tmp/g.tsv"}
}

func TestSpecValidate(t *testing.T) {
	if err := func() error { s := validSpec(); return s.Validate() }(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"k too small", func(s *Spec) { s.K = 1 }},
		{"eps negative", func(s *Spec) { s.Epsilon = -0.1 }},
		{"eps one", func(s *Spec) { s.Epsilon = 1 }},
		{"unknown method", func(s *Spec) { s.Method = "bogus" }},
		{"unknown sampling mode", func(s *Spec) { s.SamplingMode = "bogus" }},
		{"negative samples", func(s *Spec) { s.Samples = -1 }},
		{"target_rse out of range", func(s *Spec) { s.TargetRSE = 1.5 }},
		{"max_samples without target_rse", func(s *Spec) { s.MaxSamples = 10 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("mutated spec accepted: %+v", s)
			}
			if !IsBadRequest(err) {
				t.Fatalf("validation error is not a BadRequestError: %v", err)
			}
		})
	}
}

func TestParseSubmissionJSON(t *testing.T) {
	spec, g, err := ParseSubmission("application/json",
		strings.NewReader(`{"k": 4, "eps": 0.05, "graph_path": "/data/g.tsv"}`))
	if err != nil {
		t.Fatalf("valid JSON submission rejected: %v", err)
	}
	if g != nil {
		t.Fatal("JSON submission returned a graph; the path should be loaded later")
	}
	if spec.K != 4 || spec.GraphPath != "/data/g.tsv" {
		t.Fatalf("spec = %+v", spec)
	}

	bad := []struct {
		name, body string
	}{
		{"no graph_path", `{"k": 4, "eps": 0.05}`},
		{"unknown field", `{"k": 4, "eps": 0.05, "graph_path": "g", "bogus": 1}`},
		{"trailing data", `{"k": 4, "eps": 0.05, "graph_path": "g"} {"again": true}`},
		{"not json", `k=4`},
		{"invalid params", `{"k": 1, "eps": 0.05, "graph_path": "g"}`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ParseSubmission("application/json", strings.NewReader(tc.body))
			if err == nil || !IsBadRequest(err) {
				t.Fatalf("bad body %q: err = %v, want BadRequestError", tc.body, err)
			}
		})
	}

	if _, _, err := ParseSubmission("text/plain", strings.NewReader("hi")); err == nil || !IsBadRequest(err) {
		t.Fatalf("unsupported content type: err = %v", err)
	}
	if _, _, err := ParseSubmission("", strings.NewReader("hi")); err == nil || !IsBadRequest(err) {
		t.Fatalf("empty content type: err = %v", err)
	}
}

// multipartBody builds a submission body with the given parts. A nil
// value skips that part.
func multipartBody(t *testing.T, specJSON, graph []byte) (string, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	if specJSON != nil {
		fw, err := mw.CreateFormField("spec")
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(specJSON)
	}
	if graph != nil {
		fw, err := mw.CreateFormFile("graph", "g.tsv")
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(graph)
	}
	mw.Close()
	return mw.FormDataContentType(), &buf
}

func TestParseSubmissionMultipart(t *testing.T) {
	graphTSV := []byte("3\n0\t1\t0.5\n1\t2\t0.8\n")
	ct, body := multipartBody(t, []byte(`{"k": 2, "eps": 0.1}`), graphTSV)
	spec, g, err := ParseSubmission(ct, body)
	if err != nil {
		t.Fatalf("valid multipart submission rejected: %v", err)
	}
	if g == nil || g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("uploaded graph decoded wrong: %+v", g)
	}
	if spec.K != 2 {
		t.Fatalf("spec = %+v", spec)
	}

	// A binary upload decodes through the same auto-detecting reader.
	orig, _, _ := g, spec, err
	var bin bytes.Buffer
	if err := uncertain.WriteBinaryV2(&bin, orig); err != nil {
		t.Fatal(err)
	}
	ct, body = multipartBody(t, []byte(`{"k": 2, "eps": 0.1}`), bin.Bytes())
	_, g2, err := ParseSubmission(ct, body)
	if err != nil {
		t.Fatalf("v2 binary upload rejected: %v", err)
	}
	if g2.NumEdges() != orig.NumEdges() {
		t.Fatalf("binary upload decoded %d edges, want %d", g2.NumEdges(), orig.NumEdges())
	}

	bad := []struct {
		name  string
		spec  []byte
		graph []byte
	}{
		{"missing graph", []byte(`{"k": 2, "eps": 0.1}`), nil},
		{"missing spec", nil, graphTSV},
		{"graph_path with upload", []byte(`{"k": 2, "eps": 0.1, "graph_path": "g"}`), graphTSV},
		{"undecodable graph", []byte(`{"k": 2, "eps": 0.1}`), []byte("not\ta\tgraph\nat all")},
		{"truncated binary", []byte(`{"k": 2, "eps": 0.1}`), bin.Bytes()[:len(bin.Bytes())/2]},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			ct, body := multipartBody(t, tc.spec, tc.graph)
			_, _, err := ParseSubmission(ct, body)
			if err == nil || !IsBadRequest(err) {
				t.Fatalf("err = %v, want BadRequestError", err)
			}
		})
	}

	if _, _, err := ParseSubmission("multipart/form-data", strings.NewReader("x")); err == nil || !IsBadRequest(err) {
		t.Fatalf("multipart without boundary: err = %v", err)
	}
}
