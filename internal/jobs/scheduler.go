package jobs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"chameleon/internal/core"
	"chameleon/internal/obs"
	"chameleon/internal/repan"
	"chameleon/internal/uncertain"
)

// Config parameterizes a Manager.
type Config struct {
	// Store is the spool persistence layer (required).
	Store *Store
	// MaxConcurrent is the number of jobs anonymizing at once (default 2).
	MaxConcurrent int
	// QueueDepth bounds the admission queue; a submission arriving with
	// this many jobs already waiting is rejected with a BusyError
	// (default 16).
	QueueDepth int
	// MaxPendingSeconds, when positive, is the second admission budget:
	// a submission is rejected while the estimated worker-seconds of
	// queued plus running work (mean completed-job duration times the
	// in-flight count) already exceed it. Zero disables the cost gate.
	MaxPendingSeconds float64
	// WorkersPerJob is each job's Monte Carlo sampling parallelism. Zero
	// carves the budget from the machine: GOMAXPROCS / MaxConcurrent,
	// floored at 1, so a fully loaded daemon never oversubscribes the
	// cores its telemetry and query planes also live on. Worker count
	// never changes a job's output (seed-determinism is worker-count
	// independent), so the budget is pure scheduling policy.
	WorkersPerJob int
	// CheckpointEvery is the σ-search checkpoint cadence in GenObf calls
	// (default 1: every call, the strongest crash-recovery guarantee).
	// Negative disables periodic checkpoints (interrupt-time writes
	// remain).
	CheckpointEvery int
	// EstimateSeconds seeds the admission cost model before the first
	// job completes (default 5).
	EstimateSeconds float64
	// Obs receives the daemon-level jobs.* counters, gauges and the
	// jobs.latency instrument; may be nil.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.WorkersPerJob <= 0 {
		c.WorkersPerJob = max(1, runtime.GOMAXPROCS(0)/c.MaxConcurrent)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1
	}
	if c.EstimateSeconds <= 0 {
		c.EstimateSeconds = 5
	}
	return c
}

// BusyError is the admission-control rejection: the queue (or the
// pending worker-seconds budget) is full. The HTTP layer maps it to 429
// with the RetryAfter hint in the Retry-After header.
type BusyError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("jobs: busy (%s), retry in %s", e.Reason, e.RetryAfter)
}

// ErrUnknownJob is returned for operations on job IDs the manager has
// never seen.
var ErrUnknownJob = errors.New("jobs: unknown job")

// ErrShuttingDown rejects submissions arriving after shutdown began.
var ErrShuttingDown = errors.New("jobs: daemon is shutting down")

// tracked pairs a durable Job record with its in-memory scheduling
// state. Manager.mu guards every mutable field, including the embedded
// record's.
type tracked struct {
	job *Job
	// obs is the job's private observer: the σ-search publishes its
	// run.progress / run.eta_seconds gauges there, so concurrent jobs
	// never fight over one registry. Nil until the job first runs.
	obs *obs.Observer
	// cancel interrupts a running job (set for the duration of runJob).
	cancel context.CancelFunc
	// cancelRequested distinguishes a client DELETE from a daemon
	// shutdown — both cancel the context, but only the former parks the
	// job at StateCancelled.
	cancelRequested bool
	// done is closed when the job reaches a terminal state (or is parked
	// back at queued by a shutdown). Tests and drain loops wait on it.
	done chan struct{}
}

// Manager is the concurrent job scheduler: a bounded FIFO queue feeding
// MaxConcurrent workers, admission control in front, durable state
// behind, and cooperative cancellation throughout. Construct with
// NewManager, call Start exactly once, and Wait after the context ends.
type Manager struct {
	cfg Config

	ctx   context.Context
	wg    sync.WaitGroup
	queue chan *tracked

	mu       sync.Mutex
	jobs     map[string]*tracked
	queued   int
	running  int
	totalSec float64 // summed wall seconds of completed jobs
	finished int     // jobs contributing to totalSec

	// runFn is the job execution seam: nil means the real anonymize
	// path. Tests swap in a blocking stub to drive admission control
	// deterministically.
	runFn func(ctx context.Context, t *tracked, job Job) (*core.Result, error)

	// Metrics (nil-safe through the obs contract).
	mSubmitted, mRejected, mCompleted, mFailed, mCancelled, mRecovered *obs.Counter
	gQueued, gRunning                                                  *obs.Gauge
	lat                                                                *obs.Latency
}

// NewManager builds a manager over the store. Call Start to run it.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	reg := cfg.Obs.Registry()
	return &Manager{
		cfg:        cfg,
		queue:      make(chan *tracked, cfg.QueueDepth+cfg.MaxConcurrent),
		jobs:       map[string]*tracked{},
		mSubmitted: reg.Counter("jobs.submitted"),
		mRejected:  reg.Counter("jobs.rejected"),
		mCompleted: reg.Counter("jobs.completed"),
		mFailed:    reg.Counter("jobs.failed"),
		mCancelled: reg.Counter("jobs.cancelled"),
		mRecovered: reg.Counter("jobs.recovered"),
		gQueued:    reg.Gauge("jobs.queued"),
		gRunning:   reg.Gauge("jobs.running"),
		lat:        reg.Latency("jobs.latency"),
	}
}

// Start launches the worker pool under ctx and recovers the spool: every
// job found queued or running (a previous daemon life never finished it)
// is re-enqueued, resuming from its σ-search checkpoint when one
// survives; terminal jobs are loaded as history so their status and
// results stay fetchable. Cancelling ctx stops the workers at the next
// job boundary — running jobs are interrupted, checkpoint, and park back
// at queued for the next daemon life.
func (m *Manager) Start(ctx context.Context) (recovered int, err error) {
	m.ctx = ctx
	prior, err := m.cfg.Store.Recover()
	if err != nil {
		return 0, err
	}
	now := time.Now()
	m.mu.Lock()
	for _, job := range prior {
		t := &tracked{job: job, done: make(chan struct{})}
		m.jobs[job.ID] = t
		if !job.State.inFlight() {
			close(t.done)
			continue
		}
		// A job found "running" died with the daemon; its on-disk record
		// moves back to queued before the queue sees it, so a second
		// crash before the rerun starts recovers it again.
		job.State = StateQueued
		job.Recovered++
		if perr := m.cfg.Store.Persist(job); perr != nil {
			m.mu.Unlock()
			return 0, perr
		}
		m.queued++
		m.queue <- t
		recovered++
		m.mRecovered.Inc()
		m.cfg.Store.Event(now, job.ID, "recovered", fmt.Sprintf("restart %d", job.Recovered))
	}
	m.gQueued.Set(float64(m.queued))
	m.mu.Unlock()

	for i := 0; i < m.cfg.MaxConcurrent; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return recovered, nil
}

// Wait blocks until every worker has drained — call it after the Start
// context is cancelled to let running jobs reach their checkpoint-and-
// park safe point before the process exits.
func (m *Manager) Wait() { m.wg.Wait() }

// meanJobSecondsLocked is the admission cost model: the mean wall time
// of completed jobs, or the configured prior before any data exists.
func (m *Manager) meanJobSecondsLocked() float64 {
	if m.finished == 0 {
		return m.cfg.EstimateSeconds
	}
	return m.totalSec / float64(m.finished)
}

// retryAfterLocked estimates when a rejected client should try again:
// the time for the backlog to drain one queue slot through
// MaxConcurrent workers, clamped to [1s, 5m].
func (m *Manager) retryAfterLocked() time.Duration {
	est := m.meanJobSecondsLocked() * float64(m.queued+m.running+1) / float64(m.cfg.MaxConcurrent)
	d := time.Duration(math.Ceil(est)) * time.Second
	return min(max(d, time.Second), 5*time.Minute)
}

// Submit admits one job: spec and graph checks, then admission control
// (queue depth and, when configured, the pending worker-seconds budget),
// then durable creation and enqueue. A *BusyError rejection carries the
// Retry-After hint.
func (m *Manager) Submit(spec Spec, g *uncertain.Graph) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := checkGraph(&spec, g); err != nil {
		return nil, err
	}
	if m.ctx == nil || m.ctx.Err() != nil {
		return nil, ErrShuttingDown
	}

	m.mu.Lock()
	if m.queued >= m.cfg.QueueDepth {
		retry := m.retryAfterLocked()
		m.mu.Unlock()
		m.mRejected.Inc()
		return nil, &BusyError{Reason: fmt.Sprintf("queue full (%d waiting)", m.cfg.QueueDepth), RetryAfter: retry}
	}
	if budget := m.cfg.MaxPendingSeconds; budget > 0 {
		mean := m.meanJobSecondsLocked()
		if pending := mean * float64(m.queued+m.running+1); pending > budget {
			retry := m.retryAfterLocked()
			m.mu.Unlock()
			m.mRejected.Inc()
			return nil, &BusyError{Reason: fmt.Sprintf("pending work ~%.0fs exceeds the %.0fs budget", pending, budget), RetryAfter: retry}
		}
	}
	// Reserve the queue slot while still holding the lock, so concurrent
	// submissions cannot both pass the depth check and overfill.
	m.queued++
	m.gQueued.Set(float64(m.queued))
	m.mu.Unlock()

	now := time.Now()
	job, err := m.cfg.Store.Create(spec, g, now)
	if err != nil {
		m.mu.Lock()
		m.queued--
		m.gQueued.Set(float64(m.queued))
		m.mu.Unlock()
		return nil, err
	}
	t := &tracked{job: job, done: make(chan struct{})}
	m.mu.Lock()
	m.jobs[job.ID] = t
	m.mu.Unlock()
	m.queue <- t
	m.mSubmitted.Inc()
	m.cfg.Store.Event(now, job.ID, "submitted",
		fmt.Sprintf("k=%d eps=%g nodes=%d edges=%d", spec.K, spec.Epsilon, job.Nodes, job.Edges))
	m.cfg.Obs.Log("jobs: submitted", "id", job.ID, "k", spec.K, "eps", spec.Epsilon,
		"nodes", job.Nodes, "edges", job.Edges)
	return m.snapshotJob(t), nil
}

// snapshotJob copies the record under the lock so handlers never see a
// field mid-mutation.
func (m *Manager) snapshotJob(t *tracked) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := *t.job
	return &j
}

// Status is a Job record plus the live scheduling view the in-memory
// manager adds on top of the durable state.
type Status struct {
	Job
	// Progress is the running σ-search's completed fraction in [0,1]
	// (from the job's private run.progress gauge); zero when not running.
	Progress float64 `json:"progress,omitempty"`
	// ETASeconds estimates the running search's remaining wall time.
	ETASeconds float64 `json:"eta_seconds,omitempty"`
}

// Get returns one job's status. ErrUnknownJob when the ID was never
// seen.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	t, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	st := Status{Job: *t.job}
	jobObs := t.obs
	m.mu.Unlock()
	if st.State == StateRunning && jobObs != nil {
		snap := jobObs.Registry().Snapshot()
		st.Progress = snap.Gauges[obs.ProgressGauge]
		st.ETASeconds = snap.Gauges[obs.ETAGauge]
	}
	return st, nil
}

// List returns every known job's status, oldest submission first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Strings(ids)
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if st, err := m.Get(id); err == nil {
			out = append(out, st)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].SubmittedAt.Before(out[j].SubmittedAt) })
	return out
}

// Done exposes a job's completion signal (closed at any terminal state,
// or when a shutdown parks the job). ErrUnknownJob for unknown IDs.
func (m *Manager) Done(id string) (<-chan struct{}, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return t.done, nil
}

// Cancel stops a job: a queued job is marked cancelled in place (the
// worker skips it on dequeue), a running one has its context cancelled
// and parks at cancelled once the search stops at its next safe point.
// Terminal jobs return an error.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch t.job.State {
	case StateQueued:
		t.cancelRequested = true
		t.job.State = StateCancelled
		t.job.FinishedAt = time.Now()
		if err := m.cfg.Store.Persist(t.job); err != nil {
			return err
		}
		m.queued--
		m.gQueued.Set(float64(m.queued))
		m.mCancelled.Inc()
		m.cfg.Store.Event(t.job.FinishedAt, id, "cancelled", "while queued")
		close(t.done)
		return nil
	case StateRunning:
		t.cancelRequested = true
		if t.cancel != nil {
			t.cancel()
		}
		return nil
	default:
		return &BadRequestError{msg: fmt.Sprintf("jobs: job %s is already %s", id, t.job.State)}
	}
}

// worker pulls jobs off the queue until the Start context ends.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case t := <-m.queue:
			m.runJob(t)
		}
	}
}

// runJob drives one job from dequeue to a terminal (or parked) state.
func (m *Manager) runJob(t *tracked) {
	m.mu.Lock()
	if t.job.State != StateQueued || t.cancelRequested {
		// Cancelled while waiting; Cancel already persisted and closed.
		m.mu.Unlock()
		return
	}
	jobCtx, cancel := context.WithCancel(m.ctx)
	defer cancel()
	t.cancel = cancel
	t.obs = obs.NewObserver()
	t.job.State = StateRunning
	t.job.StartedAt = time.Now()
	m.queued--
	m.running++
	m.gQueued.Set(float64(m.queued))
	m.gRunning.Set(float64(m.running))
	job := *t.job
	m.mu.Unlock()

	m.cfg.Store.Persist(&job)
	m.cfg.Store.Event(job.StartedAt, job.ID, "started", "")
	m.cfg.Obs.Log("jobs: started", "id", job.ID, "recovered", job.Recovered)

	run := m.runFn
	if run == nil {
		run = m.anonymize
	}
	res, runErr := run(jobCtx, t, job)
	m.finish(t, res, runErr)
}

// anonymize loads the job's durable input, hands any surviving
// checkpoint to the σ-search, and runs it under the job's context. A
// checkpoint that no longer matches (ErrCheckpointMismatch — e.g. a
// spool hand-edited between daemon lives) is discarded and the job
// reruns from scratch rather than failing.
func (m *Manager) anonymize(ctx context.Context, t *tracked, job Job) (*core.Result, error) {
	g, err := m.cfg.Store.LoadInput(job.ID)
	if err != nil {
		return nil, err
	}
	params, err := m.coreParams(t, job)
	if err != nil {
		return nil, err
	}
	ckptPath := m.cfg.Store.CheckpointPath(job.ID)
	if ck, lerr := core.LoadCheckpoint(ckptPath); lerr == nil {
		params.Resume = ck
	}

	res, err := runVariant(ctx, g, job.Spec.Method, params)
	if err != nil && errors.Is(err, core.ErrCheckpointMismatch) && params.Resume != nil {
		m.cfg.Obs.Log("jobs: discarding stale checkpoint", "id", job.ID, "error", err.Error())
		m.cfg.Store.Event(time.Now(), job.ID, "checkpoint-discarded", err.Error())
		params.Resume = nil
		res, err = runVariant(ctx, g, job.Spec.Method, params)
	}
	return res, err
}

// coreParams maps a job spec onto the search parameterization, wiring
// the job's private observer, its spool checkpoint path and the worker
// budget.
func (m *Manager) coreParams(t *tracked, job Job) (core.Params, error) {
	mode, err := uncertain.ParseSamplingMode(job.Spec.SamplingMode)
	if err != nil {
		return core.Params{}, badRequestf("jobs: %v", err)
	}
	every := m.cfg.CheckpointEvery
	if every < 0 {
		every = 0
	}
	return core.Params{
		K:               job.Spec.K,
		Epsilon:         job.Spec.Epsilon,
		Samples:         job.Spec.Samples,
		SamplingMode:    mode,
		TargetRSE:       job.Spec.TargetRSE,
		MaxSamples:      job.Spec.MaxSamples,
		Seed:            job.Spec.Seed,
		Workers:         m.cfg.WorkersPerJob,
		Obs:             t.obs,
		CheckpointPath:  m.cfg.Store.CheckpointPath(job.ID),
		CheckpointEvery: every,
	}, nil
}

// runVariant dispatches the method string onto the core variants. It
// lives here (rather than going through the public facade) so the job
// plane and the CLI share the exact same search code path.
func runVariant(ctx context.Context, g *uncertain.Graph, method string, p core.Params) (*core.Result, error) {
	switch method {
	case "", "RSME":
		p.Variant = core.RSME
	case "RS":
		p.Variant = core.RS
	case "ME":
		p.Variant = core.ME
	case "Rep-An":
		return repan.AnonymizeContext(ctx, g, p)
	default:
		return nil, badRequestf("jobs: unknown method %q", method)
	}
	return core.AnonymizeContext(ctx, g, p)
}

// finish settles the job's terminal (or parked) state from the search
// outcome.
func (m *Manager) finish(t *tracked, res *core.Result, runErr error) {
	// The result bytes must land before anything — in memory or on disk
	// — can say "done": the status endpoint serves the in-memory state,
	// so a client that polls done and immediately fetches the result
	// must find the file already there. A failed write demotes the job
	// to failed below.
	var writeErr error
	if runErr == nil {
		writeErr = m.cfg.Store.WriteResult(t.job.ID, res.Graph)
	}
	now := time.Now()
	m.mu.Lock()
	t.cancel = nil
	m.running--
	m.gRunning.Set(float64(m.running))
	cancelRequested := t.cancelRequested
	job := t.job
	shutdown := m.ctx.Err() != nil && !cancelRequested

	var event, detail string
	var parked bool
	switch {
	case runErr == nil && writeErr == nil:
		job.State = StateDone
		job.FinishedAt = now
		job.EpsilonTilde = res.EpsilonTilde
		job.Sigma = res.Sigma
		event = "done"
		detail = fmt.Sprintf("eps_tilde=%.6f sigma=%.6f", res.EpsilonTilde, res.Sigma)
	case runErr == nil:
		// The search succeeded but its result could not be persisted —
		// without the bytes there is nothing to hand the client.
		job.State = StateFailed
		job.FinishedAt = now
		job.Error = writeErr.Error()
		event = "failed"
		detail = writeErr.Error()
	case cancelRequested:
		job.State = StateCancelled
		job.FinishedAt = now
		job.Error = runErr.Error()
		event = "cancelled"
		detail = runErr.Error()
	case shutdown && errors.Is(runErr, context.Canceled):
		// Daemon shutdown: the search already checkpointed at its safe
		// point; park the job back at queued so the next daemon life
		// resumes it.
		job.State = StateQueued
		job.StartedAt = time.Time{}
		parked = true
		event = "interrupted"
		detail = "daemon shutdown; parked for recovery"
	default:
		job.State = StateFailed
		job.FinishedAt = now
		job.Error = runErr.Error()
		event = "failed"
		detail = runErr.Error()
	}
	// Counter accounting belongs in the same critical section that sets
	// the state: a client that reads a done status and then scrapes
	// /metrics must see the completion counted.
	switch job.State {
	case StateDone:
		m.mCompleted.Inc()
		if !job.StartedAt.IsZero() {
			m.lat.Observe(now.Sub(job.StartedAt))
			m.totalSec += now.Sub(job.StartedAt).Seconds()
			m.finished++
		}
	case StateFailed:
		m.mFailed.Inc()
	case StateCancelled:
		m.mCancelled.Inc()
	}
	jobCopy := *job
	m.mu.Unlock()

	if perr := m.cfg.Store.Persist(&jobCopy); perrLog(m, jobCopy.ID, perr) {
		// A job whose terminal record could not be persisted is still
		// terminal in memory; recovery will rerun it, which is safe
		// (deterministic) if wasteful.
	}
	m.cfg.Store.Event(now, jobCopy.ID, event, detail)
	m.cfg.Obs.Log("jobs: "+event, "id", jobCopy.ID, "detail", detail)

	m.mu.Lock()
	if !parked {
		close(t.done)
	} else {
		m.queued++
		m.gQueued.Set(float64(m.queued))
	}
	m.mu.Unlock()
}

// perrLog reports and logs a persistence error; split out so the call
// site stays one line.
func perrLog(m *Manager, id string, err error) bool {
	if err == nil {
		return false
	}
	m.cfg.Obs.Log("jobs: persisting terminal state failed", "id", id, "error", err.Error())
	return true
}
