package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chameleon/internal/atomicfile"
	"chameleon/internal/uncertain"
)

// State is a job's lifecycle position. Transitions are
// queued → running → {done, failed, cancelled}; a daemon shutdown or
// crash parks a job back at queued/running on disk, and recovery
// re-enqueues both.
type State string

// The job states persisted in state.json.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// inFlight reports whether a job in this state still owes the client a
// result — the states recovery re-enqueues after a restart.
func (s State) inFlight() bool { return s == StateQueued || s == StateRunning }

// Job is the durable record of one anonymization job: the client's spec,
// an input-shape echo, the lifecycle cursor and — once done — the result
// summary. It is what state.json holds and what the status endpoint
// returns.
type Job struct {
	ID          string    `json:"id"`
	Spec        Spec      `json:"spec"`
	State       State     `json:"state"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
	// Nodes and Edges echo the admitted input's shape.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Recovered counts daemon restarts that re-enqueued this job.
	Recovered int `json:"recovered,omitempty"`
	// Error carries the failure cause for StateFailed.
	Error string `json:"error,omitempty"`
	// Result summary, populated for StateDone.
	EpsilonTilde float64 `json:"epsilon_tilde,omitempty"`
	Sigma        float64 `json:"sigma,omitempty"`
}

// Event is one line of the spool's append-only jobs.jsonl journal: every
// job state transition with its wall-clock moment, so an operator (or a
// post-mortem) can reconstruct the daemon's whole admission history even
// across crashes.
type Event struct {
	At     time.Time `json:"at"`
	JobID  string    `json:"job"`
	Event  string    `json:"event"`
	Detail string    `json:"detail,omitempty"`
}

// Spool file names inside each job's directory.
const (
	stateFile      = "state.json"
	inputFile      = "input.ug"
	resultFile     = "result.ug2"
	checkpointFile = "checkpoint.json"
	eventsFile     = "jobs.jsonl"
)

// jobSeq disambiguates job IDs minted in the same second by one process.
var jobSeq atomic.Uint64

// newJobID mints a filesystem-safe, restart-unique job identifier.
func newJobID(now time.Time) string {
	return fmt.Sprintf("%s-%d-%d", now.UTC().Format("20060102T150405"), os.Getpid(), jobSeq.Add(1))
}

// Store is the spool-directory persistence layer. Every mutation is an
// atomic write (temp file + rename via internal/atomicfile), so a
// SIGKILL at any moment leaves either the old record or the new one,
// never a torn file. The store itself is stateless between calls; the
// Manager owns the in-memory view.
type Store struct {
	dir string

	evMu sync.Mutex
	ev   *os.File
}

// NewStore opens (creating if needed) the spool directory and its event
// journal.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: spool directory required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating spool: %w", err)
	}
	ev, err := os.OpenFile(filepath.Join(dir, eventsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening event journal: %w", err)
	}
	return &Store{dir: dir, ev: ev}, nil
}

// Dir returns the spool directory path.
func (s *Store) Dir() string { return s.dir }

// Close releases the event journal. Job files need no teardown.
func (s *Store) Close() error {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	if s.ev == nil {
		return nil
	}
	err := s.ev.Close()
	s.ev = nil
	return err
}

func (s *Store) jobDir(id string) string { return filepath.Join(s.dir, id) }

// InputPath, ResultPath and CheckpointPath locate a job's durable
// artifacts inside the spool.
func (s *Store) InputPath(id string) string      { return filepath.Join(s.jobDir(id), inputFile) }
func (s *Store) ResultPath(id string) string     { return filepath.Join(s.jobDir(id), resultFile) }
func (s *Store) CheckpointPath(id string) string { return filepath.Join(s.jobDir(id), checkpointFile) }

// Create admits a new job: it allocates the job directory, persists the
// input graph in the exact v1 binary encoding (float64 bit patterns
// preserved — the checkpoint machinery hashes this graph, so the stored
// bytes must reproduce it exactly) and writes the initial queued record.
func (s *Store) Create(spec Spec, g *uncertain.Graph, now time.Time) (*Job, error) {
	job := &Job{
		ID:          newJobID(now),
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: now,
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
	}
	dir := s.jobDir(job.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating job dir: %w", err)
	}
	var buf bytes.Buffer
	if err := uncertain.WriteBinary(&buf, g); err != nil {
		return nil, fmt.Errorf("jobs: encoding input graph: %w", err)
	}
	if err := atomicfile.Write(s.InputPath(job.ID), buf.Bytes()); err != nil {
		return nil, fmt.Errorf("jobs: persisting input graph: %w", err)
	}
	if err := s.Persist(job); err != nil {
		return nil, err
	}
	return job, nil
}

// Persist writes the job record atomically.
func (s *Store) Persist(job *Job) error {
	if err := atomicfile.WriteJSON(filepath.Join(s.jobDir(job.ID), stateFile), job); err != nil {
		return fmt.Errorf("jobs: persisting job %s: %w", job.ID, err)
	}
	return nil
}

// LoadInput reads a job's stored input graph back.
func (s *Store) LoadInput(id string) (*uncertain.Graph, error) {
	g, err := uncertain.LoadBinaryFile(s.InputPath(id))
	if err != nil {
		return nil, fmt.Errorf("jobs: loading input for %s: %w", id, err)
	}
	return g, nil
}

// WriteResult persists the published graph in the sectioned v2 container
// (lossless: the quantized probability column only engages when exact),
// atomically, so a crash mid-write never leaves a torn result a client
// could fetch.
func (s *Store) WriteResult(id string, g *uncertain.Graph) error {
	var buf bytes.Buffer
	if err := uncertain.WriteBinaryV2(&buf, g); err != nil {
		return fmt.Errorf("jobs: encoding result for %s: %w", id, err)
	}
	if err := atomicfile.Write(s.ResultPath(id), buf.Bytes()); err != nil {
		return fmt.Errorf("jobs: persisting result for %s: %w", id, err)
	}
	return nil
}

// Recover scans the spool and returns every job record found, oldest
// submission first. Directories without a readable state.json are
// skipped (a crash between MkdirAll and the first Persist leaves one);
// the caller decides what to do with each state.
func (s *Store) Recover() ([]*Job, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: scanning spool: %w", err)
	}
	var out []*Job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, e.Name(), stateFile))
		if err != nil {
			continue
		}
		job := new(Job)
		if err := json.Unmarshal(data, job); err != nil || job.ID != e.Name() {
			continue
		}
		out = append(out, job)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].SubmittedAt.Equal(out[j].SubmittedAt) {
			return out[i].SubmittedAt.Before(out[j].SubmittedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// Event appends one transition record to the spool's jobs.jsonl. Append
// failures are returned, not fatal — the state.json record is the source
// of truth; the journal is the audit trail.
func (s *Store) Event(at time.Time, jobID, event, detail string) error {
	line, err := json.Marshal(Event{At: at, JobID: jobID, Event: event, Detail: detail})
	if err != nil {
		return err
	}
	s.evMu.Lock()
	defer s.evMu.Unlock()
	if s.ev == nil {
		return fmt.Errorf("jobs: event journal closed")
	}
	_, err = s.ev.Write(append(line, '\n'))
	return err
}

// ReadEvents replays a spool's jobs.jsonl journal. Unparseable lines
// (a torn final line after a crash) are skipped.
func ReadEvents(dir string) ([]Event, error) {
	f, err := os.Open(filepath.Join(dir, eventsFile))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev Event
		if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.JobID != "" {
			out = append(out, ev)
		}
	}
	return out, sc.Err()
}
