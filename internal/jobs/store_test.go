package jobs

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
	"time"

	"chameleon/internal/gen"
	"chameleon/internal/uncertain"
)

// testGraph builds a small deterministic uncertain graph.
func testGraph(t *testing.T, nodes int, seed uint64) *uncertain.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(nodes, 2, gen.UniformProbs(0.2, 0.9), rand.New(rand.NewPCG(seed, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStoreCreatePersistRecover(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	g := testGraph(t, 30, 1)
	spec := Spec{K: 3, Epsilon: 0.1, Seed: 5}
	t0 := time.Now().Truncate(time.Second)
	j1, err := st.Create(spec, g, t0)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := st.Create(spec, g, t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID == j2.ID {
		t.Fatalf("job IDs collide: %s", j1.ID)
	}
	if j1.State != StateQueued || j1.Nodes != 30 || j1.Edges != g.NumEdges() {
		t.Fatalf("created job = %+v", j1)
	}

	// The stored input must reproduce the submitted graph bit for bit —
	// the checkpoint machinery hashes it on resume.
	back, err := st.LoadInput(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("input round-trip lost edges: %d vs %d", back.NumEdges(), g.NumEdges())
	}
	for _, e := range g.SortedEdges() {
		p, err := back.Prob(e.U, e.V)
		if err != nil || p != e.P {
			t.Fatalf("edge (%d,%d): stored p=%v err=%v, want exactly %v", e.U, e.V, p, err, e.P)
		}
	}

	// State transitions persist and recover in submission order.
	j2.State = StateRunning
	if err := st.Persist(j2); err != nil {
		t.Fatal(err)
	}
	st.Event(t0, j1.ID, "submitted", "")
	st.Event(t0.Add(time.Second), j2.ID, "started", "")

	// Junk in the spool is skipped, not fatal: a bare file, a dir without
	// state.json, and a dir whose record names a different job.
	os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("x"), 0o644)
	os.MkdirAll(filepath.Join(dir, "half-created"), 0o755)
	os.MkdirAll(filepath.Join(dir, "wrong-id"), 0o755)
	os.WriteFile(filepath.Join(dir, "wrong-id", "state.json"), []byte(`{"id":"elsewhere"}`), 0o644)

	jobs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(jobs))
	}
	if jobs[0].ID != j1.ID || jobs[1].ID != j2.ID {
		t.Fatalf("recovery order = %s, %s; want %s, %s", jobs[0].ID, jobs[1].ID, j1.ID, j2.ID)
	}
	if jobs[1].State != StateRunning {
		t.Fatalf("recovered j2 state = %s, want running", jobs[1].State)
	}

	// The event journal replays (and skips a torn tail line).
	f, _ := os.OpenFile(filepath.Join(dir, "jobs.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString(`{"at":"2026-`) // torn write, as after a crash
	f.Close()
	evs, err := ReadEvents(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Event != "submitted" || evs[1].Event != "started" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestStoreWriteResultRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g := testGraph(t, 25, 2)
	job, err := st.Create(Spec{K: 3, Epsilon: 0.1}, g, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteResult(job.ID, g); err != nil {
		t.Fatal(err)
	}
	back, err := uncertain.LoadFile(st.ResultPath(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("result round-trip: %d/%d, want %d/%d",
			back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

func TestStoreRequiresDir(t *testing.T) {
	if _, err := NewStore(""); err == nil {
		t.Fatal("NewStore(\"\") should fail")
	}
}
