package knn

import (
	"math"
	"math/rand/v2"
	"testing"

	"chameleon/internal/gen"
	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

func lineGraph(n int, p float64) *uncertain.Graph {
	g := uncertain.New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i+1), p)
	}
	return g
}

func TestQueryRanksByReliability(t *testing.T) {
	// Path with decaying reliability from node 0: neighbors must come
	// back in hop order.
	g := lineGraph(6, 0.6)
	est := reliability.Estimator{Samples: 5000, Seed: 1}
	got, err := Query(g, 0, 3, est)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d neighbors, want 3", len(got))
	}
	for i, want := range []uncertain.NodeID{1, 2, 3} {
		if got[i].Node != want {
			t.Fatalf("neighbor %d = %d, want %d", i, got[i].Node, want)
		}
	}
	// Reliabilities must be decreasing and near 0.6^hops.
	for i, hops := range []float64{1, 2, 3} {
		want := math.Pow(0.6, hops)
		if math.Abs(got[i].Reliability-want) > 0.05 {
			t.Fatalf("neighbor %d reliability %v, want ~%v", i, got[i].Reliability, want)
		}
	}
}

func TestQueryExcludesUnreachable(t *testing.T) {
	g := uncertain.New(5)
	g.MustAddEdge(0, 1, 0.9)
	// Nodes 2..4 disconnected from 0.
	est := reliability.Estimator{Samples: 500, Seed: 2}
	got, err := Query(g, 0, 10, est)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Node != 1 {
		t.Fatalf("only node 1 is reachable, got %+v", got)
	}
}

func TestQueryErrors(t *testing.T) {
	g := lineGraph(4, 0.5)
	est := reliability.Estimator{Samples: 10}
	if _, err := Query(g, -1, 2, est); err == nil {
		t.Fatal("negative source should error")
	}
	if _, err := Query(g, 9, 2, est); err == nil {
		t.Fatal("out-of-range source should error")
	}
	if _, err := Query(g, 0, 0, est); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestJaccard(t *testing.T) {
	a := []Neighbor{{Node: 1}, {Node: 2}, {Node: 3}}
	b := []Neighbor{{Node: 2}, {Node: 3}, {Node: 4}}
	if got := Jaccard(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Jaccard = %v, want 0.5", got)
	}
	if Jaccard(nil, nil) != 1 {
		t.Fatal("two empty sets are identical")
	}
	if Jaccard(a, nil) != 0 {
		t.Fatal("empty vs nonempty should be 0")
	}
	if Jaccard(a, a) != 1 {
		t.Fatal("identical sets should be 1")
	}
}

func TestPreservationIdenticalGraphs(t *testing.T) {
	g, err := gen.BarabasiAlbert(80, 2, gen.UniformProbs(0.3, 0.9), rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	est := reliability.Estimator{Samples: 300, Seed: 3}
	score, err := PreservationScore(g, g.Clone(), PreservationOptions{K: 5, Queries: 10, Seed: 4}, est)
	if err != nil {
		t.Fatal(err)
	}
	if score != 1 {
		t.Fatalf("identical graphs should preserve k-NN perfectly, got %v", score)
	}
}

func TestPreservationDetectsDestruction(t *testing.T) {
	g, err := gen.BarabasiAlbert(80, 2, gen.UniformProbs(0.3, 0.9), rand.New(rand.NewPCG(2, 1)))
	if err != nil {
		t.Fatal(err)
	}
	// Destroy: zero all probabilities.
	dead := g.Clone()
	for i := 0; i < dead.NumEdges(); i++ {
		if err := dead.SetProb(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	est := reliability.Estimator{Samples: 300, Seed: 5}
	score, err := PreservationScore(g, dead, PreservationOptions{K: 5, Queries: 10, Seed: 6}, est)
	if err != nil {
		t.Fatal(err)
	}
	if score > 0.01 {
		t.Fatalf("a dead graph preserves nothing, got %v", score)
	}
}

func TestPreservationMismatch(t *testing.T) {
	g := lineGraph(5, 0.5)
	h := lineGraph(6, 0.5)
	est := reliability.Estimator{Samples: 10}
	if _, err := PreservationScore(g, h, PreservationOptions{}, est); err == nil {
		t.Fatal("size mismatch should error")
	}
}

func TestPreservationDefaults(t *testing.T) {
	g := lineGraph(20, 0.7)
	est := reliability.Estimator{Samples: 100, Seed: 7}
	score, err := PreservationScore(g, g.Clone(), PreservationOptions{}, est)
	if err != nil {
		t.Fatal(err)
	}
	if score != 1 {
		t.Fatalf("score = %v", score)
	}
}
