// Package knn implements reliability-based k-nearest-neighbor queries
// over uncertain graphs, following the query model of Potamias et al.
// ("k-nearest neighbors in uncertain graphs", VLDB 2010 — reference [30]
// of the paper): the neighbors of a query vertex are the vertices most
// likely to be connected to it across the possible worlds.
//
// The paper uses exactly this workload to motivate reliability as the
// utility measure, so the package doubles as a downstream-task utility
// probe: PreservationScore measures how much of the k-NN structure an
// anonymized graph retains.
package knn

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

// Neighbor is one query answer: a vertex and its estimated two-terminal
// reliability from the query source.
type Neighbor struct {
	Node        uncertain.NodeID
	Reliability float64
}

// Query returns the k vertices with the highest reliability from src,
// most reliable first. Vertices with zero estimated reliability are never
// returned, so the result may be shorter than k. Ties are broken by
// vertex id for determinism.
func Query(g *uncertain.Graph, src uncertain.NodeID, k int, est reliability.Estimator) ([]Neighbor, error) {
	if src < 0 || int(src) >= g.NumNodes() {
		return nil, fmt.Errorf("knn: source %d out of range (n=%d)", src, g.NumNodes())
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k must be >= 1, got %d", k)
	}
	rel := est.ReliabilityVector(g, src)
	out := make([]Neighbor, 0, k)
	for v, r := range rel {
		if uncertain.NodeID(v) == src || r <= 0 {
			continue
		}
		out = append(out, Neighbor{Node: uncertain.NodeID(v), Reliability: r})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Reliability != out[j].Reliability {
			return out[i].Reliability > out[j].Reliability
		}
		return out[i].Node < out[j].Node
	})
	if k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// Jaccard computes the Jaccard similarity of two answer sets (ignoring
// the reliability scores). Two empty sets are identical by convention.
func Jaccard(a, b []Neighbor) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inA := make(map[uncertain.NodeID]bool, len(a))
	for _, n := range a {
		inA[n.Node] = true
	}
	inter := 0
	union := len(a)
	for _, n := range b {
		if inA[n.Node] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// PreservationOptions configures PreservationScore.
type PreservationOptions struct {
	// K is the neighborhood size (default 10).
	K int
	// Queries is the number of random query vertices (default 20).
	Queries int
	// Seed drives query selection.
	Seed uint64
}

// PreservationScore measures how well the published graph answers k-NN
// queries like the original: the mean Jaccard similarity of the top-K
// reliability neighborhoods over random query vertices. 1 means the
// anonymization left the k-NN structure intact.
func PreservationScore(orig, pub *uncertain.Graph, o PreservationOptions, est reliability.Estimator) (float64, error) {
	if orig.NumNodes() != pub.NumNodes() {
		return 0, fmt.Errorf("knn: vertex count mismatch %d vs %d", orig.NumNodes(), pub.NumNodes())
	}
	if o.K <= 0 {
		o.K = 10
	}
	if o.Queries <= 0 {
		o.Queries = 20
	}
	rng := rand.New(rand.NewPCG(o.Seed, 0x4e4e))
	var total float64
	for q := 0; q < o.Queries; q++ {
		src := uncertain.NodeID(rng.IntN(orig.NumNodes()))
		before, err := Query(orig, src, o.K, est)
		if err != nil {
			return 0, err
		}
		after, err := Query(pub, src, o.K, est)
		if err != nil {
			return 0, err
		}
		total += Jaccard(before, after)
	}
	return total / float64(o.Queries), nil
}
