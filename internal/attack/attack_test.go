package attack

import (
	"math"
	"math/rand/v2"
	"testing"

	"chameleon/internal/core"
	"chameleon/internal/gen"
	"chameleon/internal/uncertain"
)

func starGraph(n int) *uncertain.Graph {
	g := uncertain.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, uncertain.NodeID(i), 1)
	}
	return g
}

func TestSimulateDeterministicStar(t *testing.T) {
	// Publishing a certain star unchanged: the hub's degree is unique, so
	// the adversary identifies it with certainty; leaves hide among n-1
	// peers.
	g := starGraph(10)
	rep, err := Simulate(g, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Targets != 10 {
		t.Fatalf("targets = %d", rep.Targets)
	}
	// Hub: posterior 1, rank 1, top-1 hit. Leaves: posterior 1/9,
	// expected rank 5, top-1 chance 1/9.
	wantPosterior := (1 + 9.0/9.0*(1.0/9.0)*9) / 10 // 1 + 9*(1/9) = 2 over 10
	if math.Abs(rep.MeanPosterior-wantPosterior/1) > 1e-9 {
		// Recompute directly: (1 + 9*(1/9))/10 = 0.2
		if math.Abs(rep.MeanPosterior-0.2) > 1e-9 {
			t.Fatalf("MeanPosterior = %v, want 0.2", rep.MeanPosterior)
		}
	}
	wantTop1 := (1 + 9*(1.0/9.0)) / 10 // hub certain + each leaf 1/9
	if math.Abs(rep.Top1Rate-wantTop1) > 1e-9 {
		t.Fatalf("Top1Rate = %v, want %v", rep.Top1Rate, wantTop1)
	}
	// Top-3 shortlist: hub always; each leaf with prob 3/9.
	wantTop3 := (1 + 9*(3.0/9.0)) / 10
	if math.Abs(rep.TopKRate-wantTop3) > 1e-9 {
		t.Fatalf("TopKRate = %v, want %v", rep.TopKRate, wantTop3)
	}
}

func TestSimulateUniformGraphIsSafe(t *testing.T) {
	// Certain cycle: all degrees equal; the adversary can do no better
	// than uniform guessing.
	const n = 20
	g := uncertain.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID((i+1)%n), 1)
	}
	rep, err := Simulate(g, g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MeanPosterior-1.0/n) > 1e-9 {
		t.Fatalf("MeanPosterior = %v, want 1/%d", rep.MeanPosterior, n)
	}
	if math.Abs(rep.Top1Rate-1.0/n) > 1e-9 {
		t.Fatalf("Top1Rate = %v, want 1/%d", rep.Top1Rate, n)
	}
	if math.Abs(rep.TopKRate-5.0/n) > 1e-9 {
		t.Fatalf("TopKRate = %v, want 5/%d", rep.TopKRate, n)
	}
	if math.Abs(rep.MeanRank-float64(n+1)/2) > 1e-9 {
		t.Fatalf("MeanRank = %v, want %v", rep.MeanRank, float64(n+1)/2)
	}
}

func TestSimulateErrors(t *testing.T) {
	g := starGraph(5)
	if _, err := Simulate(uncertain.New(0), g, 2); err == nil {
		t.Fatal("empty original should error")
	}
	if _, err := Simulate(g, starGraph(6), 2); err == nil {
		t.Fatal("size mismatch should error")
	}
	if _, err := Simulate(g, g, 0); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestSimulateUnreachableDegree(t *testing.T) {
	// Published graph where nobody can reach the target's degree: the
	// attack must fail (rank ~ middle, zero posterior).
	orig := starGraph(6) // hub degree 5
	pub := uncertain.New(6)
	pub.MustAddEdge(0, 1, 1) // max published degree 1
	rep, err := Simulate(orig, pub, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanPosterior >= 0.5 {
		t.Fatalf("attack should mostly fail, MeanPosterior = %v", rep.MeanPosterior)
	}
}

// TestAnonymizationDefeatsAttack is the end-to-end privacy validation:
// the attack's success on the Chameleon output must collapse toward the
// 1/k regime compared to publishing the original.
func TestAnonymizationDefeatsAttack(t *testing.T) {
	pa := gen.DiscreteProbs(
		[]float64{0.13, 0.28, 0.46, 0.64, 0.80},
		[]float64{0.15, 0.23, 0.27, 0.22, 0.13},
	)
	g, err := gen.BarabasiAlbert(250, 3, pa, rand.New(rand.NewPCG(3, 1)))
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	res, err := core.Anonymize(g, core.Params{K: k, Epsilon: 0.04, Samples: 120, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	before, err := Simulate(g, g, k)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Simulate(g, res.Graph, k)
	if err != nil {
		t.Fatal(err)
	}
	if after.MeanPosterior >= before.MeanPosterior {
		t.Fatalf("anonymization should reduce the adversary's posterior: %v -> %v",
			before.MeanPosterior, after.MeanPosterior)
	}
	if after.Top1Rate >= before.Top1Rate {
		t.Fatalf("anonymization should reduce top-1 identification: %v -> %v",
			before.Top1Rate, after.Top1Rate)
	}
	// (k, eps)-obf caps the posterior entropy-wise; empirically the mean
	// posterior must be within a small factor of 1/k (eps fraction of
	// outliers may exceed it).
	if after.MeanPosterior > 3.0/float64(k) {
		t.Fatalf("mean posterior %v too high for k=%d", after.MeanPosterior, k)
	}
}

func TestShortlist(t *testing.T) {
	g := starGraph(8) // hub degree 7, leaves degree 1
	top := Shortlist(g, 7, 3)
	if len(top) != 1 {
		t.Fatalf("only the hub can have degree 7, got %d candidates", len(top))
	}
	if top[0].Node != 0 || math.Abs(top[0].Posterior-1) > 1e-12 {
		t.Fatalf("shortlist = %+v", top)
	}
	leaves := Shortlist(g, 1, 3)
	if len(leaves) != 3 {
		t.Fatalf("want 3 candidates, got %d", len(leaves))
	}
	for _, c := range leaves {
		if math.Abs(c.Posterior-1.0/7.0) > 1e-12 {
			t.Fatalf("leaf posterior = %v, want 1/7", c.Posterior)
		}
	}
	// Determinism: ties broken by id.
	if leaves[0].Node != 1 || leaves[1].Node != 2 {
		t.Fatalf("tie-breaking should be by id: %+v", leaves)
	}
}

func TestShortlistImpossibleDegree(t *testing.T) {
	g := starGraph(5)
	if got := Shortlist(g, 99, 3); len(got) != 0 {
		t.Fatalf("impossible degree should give empty shortlist, got %v", got)
	}
}

func BenchmarkSimulate(b *testing.B) {
	pa := gen.UniformProbs(0.2, 0.8)
	g, err := gen.BarabasiAlbert(500, 3, pa, rand.New(rand.NewPCG(8, 1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(g, g, 10); err != nil {
			b.Fatal(err)
		}
	}
}
