// Package attack simulates the identity-disclosure attack the paper's
// privacy model defends against (Section III-C): an adversary who knows a
// target's degree in the original graph tries to locate the target's
// vertex in the published uncertain graph.
//
// The adversary is Bayesian and plays the model optimally: for a known
// degree value w it forms the posterior
//
//	Y_w(u) = Pr[deg_pub(u) = w] / sum_x Pr[deg_pub(x) = w]
//
// over the published vertices (degrees in an uncertain graph are
// Poisson-binomial) and bets on the most probable candidates. The
// (k, eps)-obfuscation criterion bounds the entropy of exactly this
// posterior, so the simulation is the empirical counterpart of the formal
// check: a correctly anonymized graph must push every success statistic
// down to the 1/k regime.
package attack

import (
	"fmt"
	"sort"

	"chameleon/internal/privacy"
	"chameleon/internal/uncertain"
)

// Report aggregates re-identification success over all targets.
type Report struct {
	// Targets is the number of attacked vertices (|V| of the original).
	Targets int
	// MeanPosterior is the average posterior probability the adversary
	// assigns to the true vertex. Random guessing gives 1/|V|; a perfect
	// k-obfuscation keeps it near 1/k at worst.
	MeanPosterior float64
	// MeanRank is the average rank of the true vertex in the adversary's
	// candidate ordering (1 = identified), with ties broken uniformly.
	MeanRank float64
	// Top1Rate is the fraction of targets the adversary identifies with
	// its single best guess (expected value under random tie-breaking).
	Top1Rate float64
	// TopKRate is the fraction of targets landing in the adversary's top
	// K candidates, for the K passed to Simulate.
	TopKRate float64
	// K echoes the candidate-list size used for TopKRate.
	K int
}

// Simulate runs the degree-knowledge attack against every vertex: the
// adversary knows each target's rounded expected degree in the original
// graph and attacks the published graph pub. K sets the candidate-list
// size for the TopKRate statistic (a natural choice is the k used for
// anonymization: an adversary that shortlists k suspects).
func Simulate(orig, pub *uncertain.Graph, k int) (Report, error) {
	n := orig.NumNodes()
	if n == 0 {
		return Report{}, fmt.Errorf("attack: empty original graph")
	}
	if pub.NumNodes() != n {
		return Report{}, fmt.Errorf("attack: vertex count mismatch %d vs %d", n, pub.NumNodes())
	}
	if k < 1 {
		return Report{}, fmt.Errorf("attack: candidate list size must be >= 1, got %d", k)
	}

	property := privacy.DegreeProperty(orig)
	dists := privacy.VertexDegreeDistributions(pub)

	// mass[w] = sum_u Pr[deg_pub(u) = w]; posterior denominator.
	maxW := 0
	for _, d := range dists {
		if len(d)-1 > maxW {
			maxW = len(d) - 1
		}
	}
	for _, w := range property {
		if w > maxW {
			maxW = w
		}
	}
	mass := make([]float64, maxW+1)
	for _, d := range dists {
		for w, p := range d {
			mass[w] += p
		}
	}

	probAt := func(u, w int) float64 {
		d := dists[u]
		if w < 0 || w >= len(d) {
			return 0
		}
		return d[w]
	}

	rep := Report{Targets: n, K: k}
	for target := 0; target < n; target++ {
		w := property[target]
		if w < 0 {
			w = 0
		}
		var denom float64
		if w <= maxW {
			denom = mass[w]
		}
		if denom <= 0 {
			// No published vertex can have this degree: the adversary's
			// posterior is empty and the attack fails outright.
			rep.MeanRank += float64(n+1) / 2
			continue
		}
		pTarget := probAt(target, w)
		rep.MeanPosterior += pTarget / denom

		// Rank with uniform tie-breaking.
		greater, ties := 0, 0
		for u := 0; u < n; u++ {
			pu := probAt(u, w)
			switch {
			case pu > pTarget:
				greater++
			case pu == pTarget:
				ties++ // includes the target itself
			}
		}
		rep.MeanRank += float64(greater) + float64(ties+1)/2
		// Expected indicator of landing in the top-K shortlist.
		switch {
		case greater >= k:
			// no chance
		case greater+ties <= k:
			rep.TopKRate++
		default:
			rep.TopKRate += float64(k-greater) / float64(ties)
		}
		// Expected top-1 hit.
		if greater == 0 {
			rep.Top1Rate += 1 / float64(ties)
		}
	}
	rep.MeanPosterior /= float64(n)
	rep.MeanRank /= float64(n)
	rep.Top1Rate /= float64(n)
	rep.TopKRate /= float64(n)
	return rep, nil
}

// Candidate is one entry of the adversary's ranked suspect list.
type Candidate struct {
	Node      uncertain.NodeID
	Posterior float64
}

// Shortlist returns the adversary's top-k candidates for a target with
// known degree w, most probable first. Ties are broken by vertex id for
// determinism.
func Shortlist(pub *uncertain.Graph, w, k int) []Candidate {
	dists := privacy.VertexDegreeDistributions(pub)
	var total float64
	cands := make([]Candidate, 0, pub.NumNodes())
	for u, d := range dists {
		var p float64
		if w >= 0 && w < len(d) {
			p = d[w]
		}
		if p > 0 {
			cands = append(cands, Candidate{Node: uncertain.NodeID(u), Posterior: p})
			total += p
		}
	}
	for i := range cands {
		cands[i].Posterior /= total
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Posterior != cands[j].Posterior {
			return cands[i].Posterior > cands[j].Posterior
		}
		return cands[i].Node < cands[j].Node
	})
	if k < len(cands) {
		cands = cands[:k]
	}
	return cands
}
