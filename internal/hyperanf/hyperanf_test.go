package hyperanf

import (
	"math"
	"testing"

	"chameleon/internal/anf"
	"chameleon/internal/uncertain"
)

func pathWorld(t *testing.T, n int) *uncertain.World {
	t.Helper()
	g := uncertain.New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i+1), 1)
	}
	return g.MostProbableWorld()
}

func gridWorld(t *testing.T, side int) *uncertain.World {
	t.Helper()
	g := uncertain.New(side * side)
	id := func(r, c int) uncertain.NodeID { return uncertain.NodeID(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.MustAddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < side {
				g.MustAddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return g.MostProbableWorld()
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.LogRegisters != 6 || o.MaxHops != 256 {
		t.Fatalf("defaults = %+v", o)
	}
	if got := (Options{LogRegisters: 2}).withDefaults().LogRegisters; got != 4 {
		t.Fatalf("too-small b should clamp to 4, got %d", got)
	}
	if got := (Options{LogRegisters: 20}).withDefaults().LogRegisters; got != 16 {
		t.Fatalf("too-large b should clamp to 16, got %d", got)
	}
}

func TestAlphaConstants(t *testing.T) {
	for _, m := range []int{16, 32, 64, 128, 1024} {
		a := alpha(m)
		if a < 0.6 || a > 0.75 {
			t.Fatalf("alpha(%d) = %v out of plausible range", m, a)
		}
	}
}

func TestCounterEstimateLinearCounting(t *testing.T) {
	// A fresh (all-zero) counter estimates ~0 via linear counting.
	c := make(counter, 64)
	if e := c.estimate(alpha(64)); e != 0 {
		t.Fatalf("empty counter estimate = %v, want 0", e)
	}
}

func TestFinalCountMatchesReachability(t *testing.T) {
	w := pathWorld(t, 200)
	r := Neighborhood(w, Options{LogRegisters: 8, Seed: 3})
	final := r.N[len(r.N)-1]
	want := 200.0 * 200.0 // connected path: all ordered pairs + self
	if math.Abs(final-want)/want > 0.15 {
		t.Fatalf("final neighborhood %v, want ~%v", final, want)
	}
}

func TestMatchesExactOnGrid(t *testing.T) {
	w := gridWorld(t, 8)
	approx := Neighborhood(w, Options{LogRegisters: 8, Seed: 5})
	ex := anf.ExactNeighborhood(w)
	if math.Abs(approx.AverageDistance()-ex.AverageDistance())/ex.AverageDistance() > 0.2 {
		t.Fatalf("grid avg distance: HyperANF %v, exact %v",
			approx.AverageDistance(), ex.AverageDistance())
	}
	if math.Abs(approx.EffectiveDiameter(0.9)-ex.EffectiveDiameter(0.9)) > 3 {
		t.Fatalf("grid effective diameter: HyperANF %v, exact %v",
			approx.EffectiveDiameter(0.9), ex.EffectiveDiameter(0.9))
	}
}

func TestAgreesWithFMANF(t *testing.T) {
	w := gridWorld(t, 10)
	hll := Neighborhood(w, Options{LogRegisters: 8, Seed: 7})
	fm := anf.Neighborhood(w, anf.Options{Trials: 64, Seed: 7})
	if math.Abs(hll.AverageDistance()-fm.AverageDistance())/fm.AverageDistance() > 0.25 {
		t.Fatalf("estimators disagree: HLL %v vs FM %v",
			hll.AverageDistance(), fm.AverageDistance())
	}
}

func TestMonotoneNondecreasing(t *testing.T) {
	w := pathWorld(t, 40)
	r := Neighborhood(w, Options{Seed: 9})
	for h := 1; h < len(r.N); h++ {
		if r.N[h] < r.N[h-1]-1e-9 {
			t.Fatalf("N must be nondecreasing: N[%d]=%v < N[%d]=%v", h, r.N[h], h-1, r.N[h-1])
		}
	}
}

func TestConvergesEarly(t *testing.T) {
	w := pathWorld(t, 6)
	r := Neighborhood(w, Options{Seed: 1, MaxHops: 500})
	if len(r.N) > 10 {
		t.Fatalf("propagation should stop at convergence, got %d hops", len(r.N))
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	w := pathWorld(t, 30)
	a := Neighborhood(w, Options{Seed: 11})
	b := Neighborhood(w, Options{Seed: 11})
	if len(a.N) != len(b.N) {
		t.Fatal("hop counts differ")
	}
	for i := range a.N {
		if a.N[i] != b.N[i] {
			t.Fatal("same seed must give identical estimates")
		}
	}
}

func TestDisconnectedComponents(t *testing.T) {
	g := uncertain.New(60)
	for i := 0; i < 29; i++ {
		g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i+1), 1)
	}
	for i := 30; i < 59; i++ {
		g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i+1), 1)
	}
	w := g.MostProbableWorld()
	r := Neighborhood(w, Options{LogRegisters: 8, Seed: 13})
	final := r.N[len(r.N)-1]
	want := 2.0 * 30 * 30 // two components of 30 ordered pairs each
	if math.Abs(final-want)/want > 0.2 {
		t.Fatalf("two-component reachability %v, want ~%v", final, want)
	}
}
