// Package hyperanf implements HyperANF (Boldi, Rosa, Vigna [8]): the
// approximate neighborhood function computed with HyperLogLog counters
// instead of the classic Flajolet–Martin bitmasks of package anf. Each
// vertex carries m = 2^b registers holding the maximum hash rank seen;
// one max-merge round per hop grows the counters over the h-hop
// neighborhood, and the harmonic-mean estimator with small-range
// correction recovers the neighborhood sizes.
//
// Compared to the FM bitmasks, HLL registers give a better
// accuracy/memory trade-off at scale; both estimators are provided so the
// distance metrics can cross-validate them.
package hyperanf

import (
	"math"
	"math/bits"
	"math/rand/v2"

	"chameleon/internal/anf"
	"chameleon/internal/uncertain"
)

// Options configures the estimator.
type Options struct {
	// LogRegisters is b: each vertex carries 2^b registers. Default 6
	// (64 registers, ~6.5% relative error). Valid range 4..16.
	LogRegisters int
	// MaxHops caps the propagation rounds. Default 256.
	MaxHops int
	// Seed drives the per-vertex hashing.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.LogRegisters == 0 {
		o.LogRegisters = 6
	}
	if o.LogRegisters < 4 {
		o.LogRegisters = 4
	}
	if o.LogRegisters > 16 {
		o.LogRegisters = 16
	}
	if o.MaxHops <= 0 {
		o.MaxHops = 256
	}
	return o
}

// alpha returns the HyperLogLog bias-correction constant for m registers.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// counter is one vertex's HLL state: m registers of ranks.
type counter []uint8

// estimate returns the HLL cardinality estimate with the small-range
// (linear counting) correction.
func (c counter) estimate(a float64) float64 {
	m := float64(len(c))
	var invSum float64
	zeros := 0
	for _, r := range c {
		invSum += math.Exp2(-float64(r))
		if r == 0 {
			zeros++
		}
	}
	e := a * m * m / invSum
	if e <= 2.5*m && zeros > 0 {
		e = m * math.Log(m/float64(zeros))
	}
	return e
}

// Neighborhood computes the approximate neighborhood function of the
// world with HyperLogLog counters. The result type is shared with package
// anf so the distance/diameter derivations apply unchanged.
func Neighborhood(w *uncertain.World, o Options) anf.Result {
	o = o.withDefaults()
	n := w.NumNodes()
	m := 1 << o.LogRegisters
	a := alpha(m)
	rng := rand.New(rand.NewPCG(o.Seed, 0x8f8f8f8f))

	// Initialize each vertex's counter with its own 64-bit hash: the low
	// b bits pick the register, the remaining bits' leading-zero rank is
	// stored.
	counters := make([]counter, n)
	for v := 0; v < n; v++ {
		counters[v] = make(counter, m)
		h := rng.Uint64()
		j := int(h & uint64(m-1))
		rest := h >> o.LogRegisters
		// rest occupies 64-b significant bits (the top b are zero after
		// the shift); the HLL rank is the leading-zero run within that
		// window plus one. rest == 0 degenerates to the window size + 1,
		// which the same formula yields at LeadingZeros64(0) == 64.
		rank := uint8(bits.LeadingZeros64(rest) - o.LogRegisters + 1)
		counters[v][j] = rank
	}

	adj := w.AdjacencyLists()
	next := make([]counter, n)
	for v := range next {
		next[v] = make(counter, m)
	}

	sum := func(cs []counter) float64 {
		var total float64
		for _, c := range cs {
			total += c.estimate(a)
		}
		return total
	}

	result := anf.Result{N: []float64{sum(counters)}}
	for h := 1; h <= o.MaxHops; h++ {
		changed := false
		for v := 0; v < n; v++ {
			copy(next[v], counters[v])
			for _, u := range adj[v] {
				cu := counters[u]
				nv := next[v]
				for j := 0; j < m; j++ {
					if cu[j] > nv[j] {
						nv[j] = cu[j]
						changed = true
					}
				}
			}
		}
		counters, next = next, counters
		result.N = append(result.N, sum(counters))
		if !changed {
			break
		}
	}
	return result
}
