package unionfind

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewSingletons(t *testing.T) {
	d := New(5)
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5", d.Len())
	}
	if d.Sets() != 5 {
		t.Fatalf("Sets = %d, want 5", d.Sets())
	}
	for i := 0; i < 5; i++ {
		if d.Find(i) != i {
			t.Errorf("Find(%d) = %d, want %d", i, d.Find(i), i)
		}
		if d.SetSize(i) != 1 {
			t.Errorf("SetSize(%d) = %d, want 1", i, d.SetSize(i))
		}
	}
}

func TestUnionMergesAndReportsChange(t *testing.T) {
	d := New(4)
	if !d.Union(0, 1) {
		t.Fatal("first Union(0,1) should report a merge")
	}
	if d.Union(0, 1) {
		t.Fatal("second Union(0,1) should be a no-op")
	}
	if d.Union(1, 0) {
		t.Fatal("Union(1,0) should be a no-op after Union(0,1)")
	}
	if !d.Connected(0, 1) {
		t.Fatal("0 and 1 should be connected")
	}
	if d.Connected(0, 2) {
		t.Fatal("0 and 2 should not be connected")
	}
	if d.Sets() != 3 {
		t.Fatalf("Sets = %d, want 3", d.Sets())
	}
}

func TestSetSizeGrows(t *testing.T) {
	d := New(6)
	d.Union(0, 1)
	d.Union(2, 3)
	d.Union(0, 2)
	if got := d.SetSize(3); got != 4 {
		t.Fatalf("SetSize(3) = %d, want 4", got)
	}
	if got := d.SetSize(5); got != 1 {
		t.Fatalf("SetSize(5) = %d, want 1", got)
	}
}

func TestConnectedPairs(t *testing.T) {
	tests := []struct {
		name   string
		n      int
		unions [][2]int
		want   int64
	}{
		{"all singletons", 4, nil, 0},
		{"one pair", 4, [][2]int{{0, 1}}, 1},
		{"triangle component", 5, [][2]int{{0, 1}, {1, 2}}, 3},
		{"two components", 6, [][2]int{{0, 1}, {1, 2}, {3, 4}}, 4},
		{"everything", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := New(tt.n)
			for _, u := range tt.unions {
				d.Union(u[0], u[1])
			}
			if got := d.ConnectedPairs(); got != tt.want {
				t.Fatalf("ConnectedPairs = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestComponentSizes(t *testing.T) {
	d := New(5)
	d.Union(0, 1)
	d.Union(2, 3)
	sizes := d.ComponentSizes()
	if len(sizes) != 3 {
		t.Fatalf("got %d components, want 3", len(sizes))
	}
	var total, pairs int
	for _, s := range sizes {
		total += s
		pairs += s * (s - 1) / 2
	}
	if total != 5 {
		t.Fatalf("sizes sum to %d, want 5", total)
	}
	if int64(pairs) != d.ConnectedPairs() {
		t.Fatalf("pairs from sizes %d != ConnectedPairs %d", pairs, d.ConnectedPairs())
	}
}

// bfsComponents computes component labels by BFS over an adjacency list,
// the reference implementation for the property test.
func bfsComponents(n int, edges [][2]int) []int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		queue := []int{s}
		labels[s] = s
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if labels[v] < 0 {
					labels[v] = s
					queue = append(queue, v)
				}
			}
		}
	}
	return labels
}

func TestQuickMatchesBFS(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 2 + rng.IntN(40)
		m := rng.IntN(3 * n)
		edges := make([][2]int, m)
		d := New(n)
		for i := range edges {
			edges[i] = [2]int{rng.IntN(n), rng.IntN(n)}
			d.Union(edges[i][0], edges[i][1])
		}
		labels := bfsComponents(n, edges)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if d.Connected(u, v) != (labels[u] == labels[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		n := 1 + rng.IntN(50)
		d := New(n)
		merges := 0
		for i := 0; i < 2*n; i++ {
			if d.Union(rng.IntN(n), rng.IntN(n)) {
				merges++
			}
		}
		// Sets + merges must equal n; sizes must sum to n.
		if d.Sets()+merges != n {
			return false
		}
		total := 0
		for _, s := range d.ComponentSizes() {
			total += s
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 10000
	rng := rand.New(rand.NewPCG(1, 1))
	pairs := make([][2]int, 2*n)
	for i := range pairs {
		pairs[i] = [2]int{rng.IntN(n), rng.IntN(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(n)
		for _, p := range pairs {
			d.Union(p[0], p[1])
		}
		d.ConnectedPairs()
	}
}
