package unionfind

import (
	"math/rand/v2"
	"testing"
)

// TestResetMatchesFresh: a recycled DSU must be indistinguishable from a
// fresh one — same roots, sizes and set counts for the same union
// sequence — since the Monte Carlo scratch arenas rely on Reset for their
// determinism contract.
func TestResetMatchesFresh(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewPCG(5, 5))
	type edge struct{ x, y int }
	var edges []edge
	for i := 0; i < 80; i++ {
		edges = append(edges, edge{rng.IntN(n), rng.IntN(n)})
	}

	recycled := New(n)
	// Dirty the structure with an unrelated union sequence, then reset.
	for i := 0; i < n-1; i++ {
		recycled.Union(i, i+1)
	}
	recycled.Reset()

	fresh := New(n)
	for _, e := range edges {
		recycled.Union(e.x, e.y)
		fresh.Union(e.x, e.y)
	}
	if recycled.Sets() != fresh.Sets() {
		t.Fatalf("recycled has %d sets, fresh %d", recycled.Sets(), fresh.Sets())
	}
	for v := 0; v < n; v++ {
		if recycled.Find(v) != fresh.Find(v) {
			t.Fatalf("vertex %d: recycled root %d, fresh root %d", v, recycled.Find(v), fresh.Find(v))
		}
		if recycled.SetSize(v) != fresh.SetSize(v) {
			t.Fatalf("vertex %d: recycled size %d, fresh size %d", v, recycled.SetSize(v), fresh.SetSize(v))
		}
	}
	if recycled.ConnectedPairs() != fresh.ConnectedPairs() {
		t.Fatal("connected-pair counts diverge after reset")
	}
}

// TestUnionBitsetEdgesMatchesUnion: the fused bitset kernel must produce
// the same partition as the equivalent sequence of Union calls, and its
// incremental pair count must equal ConnectedPairs.
func TestUnionBitsetEdgesMatchesUnion(t *testing.T) {
	const n = 100
	rng := rand.New(rand.NewPCG(9, 9))
	var uv []uint64
	for i := 0; i < 160; i++ {
		x, y := rng.IntN(n), rng.IntN(n)
		uv = append(uv, uint64(uint32(x))<<32|uint64(uint32(y)))
	}
	words := make([]uint64, (len(uv)+63)/64)
	for j := range uv {
		if rng.IntN(2) == 1 {
			words[j/64] |= 1 << (j % 64)
		}
	}

	kernel := New(n)
	pairs := kernel.UnionBitsetEdges(words, uv)

	plain := New(n)
	for j, p := range uv {
		if words[j/64]&(1<<(j%64)) != 0 {
			plain.Union(int(p>>32), int(uint32(p)))
		}
	}
	if kernel.Sets() != plain.Sets() {
		t.Fatalf("kernel produced %d sets, Union sequence %d", kernel.Sets(), plain.Sets())
	}
	for v := 0; v < n; v++ {
		if kernel.Find(v) != plain.Find(v) {
			t.Fatalf("vertex %d: kernel root %d, Union root %d", v, kernel.Find(v), plain.Find(v))
		}
	}
	if want := plain.ConnectedPairs(); pairs != want {
		t.Fatalf("incremental pair count %d, ConnectedPairs %d", pairs, want)
	}
	if pairs != kernel.ConnectedPairs() {
		t.Fatalf("incremental pair count %d disagrees with kernel's own scan %d", pairs, kernel.ConnectedPairs())
	}
}
