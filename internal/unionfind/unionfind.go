// Package unionfind provides a disjoint-set union structure with union by
// size and path halving. It is the substrate for per-world connected
// component computations (Lemma 2 of the paper): near-constant amortized
// operations, O(alpha(n)) per find.
package unionfind

import "math/bits"

// DSU is a disjoint-set union over n elements labeled 0..n-1.
//
// Each element packs its parent pointer and set size into one uint64
// (parent<<32 | size); the size half is only meaningful at roots. The
// packing means the load that terminates a find — the root's word —
// already carries the size union-by-size needs, so the Monte Carlo union
// kernel touches exactly one cache-resident array.
type DSU struct {
	node []uint64 // parent<<32 | size (size valid at roots)
	sets int
}

func pack(parent int32, size int32) uint64 {
	return uint64(uint32(parent))<<32 | uint64(uint32(size))
}

// New returns a DSU with every element in its own singleton set.
func New(n int) *DSU {
	d := &DSU{node: make([]uint64, n), sets: n}
	d.Reset()
	return d
}

// Reset returns every element to its own singleton set, reusing the
// existing storage. It restores exactly the state New produces, so a
// recycled DSU yields the same parent forest as a fresh one for the same
// union sequence.
func (d *DSU) Reset() {
	for i := range d.node {
		d.node[i] = pack(int32(i), 1)
	}
	d.sets = len(d.node)
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.node) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// parent returns x's parent pointer.
func (d *DSU) parent(x int32) int32 { return int32(d.node[x] >> 32) }

// size returns the size stored at x (meaningful when x is a root).
func (d *DSU) size(x int32) int32 { return int32(uint32(d.node[x])) }

// Find returns the canonical representative of x's set, compressing the
// path by halving as it walks.
func (d *DSU) Find(x int) int {
	p := int32(x)
	for d.parent(p) != p {
		gp := d.parent(d.parent(p))
		d.node[p] = pack(gp, d.size(p))
		p = gp
	}
	return int(p)
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false when they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := int32(d.Find(x)), int32(d.Find(y))
	if rx == ry {
		return false
	}
	sx, sy := d.size(rx), d.size(ry)
	if sx < sy {
		rx, ry = ry, rx
	}
	d.node[ry] = pack(rx, d.size(ry))
	d.node[rx] = pack(rx, sx+sy)
	d.sets--
	return true
}

// UnionBitsetEdges unions the endpoints of every edge j whose bit is set
// in the packed word slice (bit j lives in words[j/64] at position j%64),
// in ascending index order. Edge endpoints arrive packed as
// uv[j] = u<<32 | v so each edge costs one load. It returns the number of
// vertex pairs the unions connected: when components of sizes a and b
// merge, a*b new pairs connect, so starting from all-singletons the return
// value is exactly ConnectedPairs() — sum s*(s-1)/2 over components — for
// free, without the O(n) root scan.
//
// This is the per-world hot loop of the Monte Carlo estimators: find with
// halving (store-free on the dominant depth-0/1 paths) and union by size
// inlined over the packed node array, where the find's terminating load
// already holds the root's size. The partition it produces — and therefore
// every component-level quantity — is exactly what the equivalent
// sequence of Union calls yields.
func (d *DSU) UnionBitsetEdges(words []uint64, uv []uint64) int64 {
	node := d.node
	sets := d.sets
	var pairs int64
	for wi, word := range words {
		base := wi << 6
		for word != 0 {
			j := base + bits.TrailingZeros64(word)
			word &= word - 1
			p := uv[j]
			x, y := int32(p>>32), int32(p&0xffffffff)
			var nx, ny uint64
			for {
				nx = node[x]
				px := int32(nx >> 32)
				if px == x {
					break
				}
				gx := int32(node[px] >> 32)
				if gx == px {
					x = px
					nx = node[px]
					break
				}
				node[x] = uint64(uint32(gx))<<32 | nx&0xffffffff
				x = gx
			}
			for {
				ny = node[y]
				py := int32(ny >> 32)
				if py == y {
					break
				}
				gy := int32(node[py] >> 32)
				if gy == py {
					y = py
					ny = node[py]
					break
				}
				node[y] = uint64(uint32(gy))<<32 | ny&0xffffffff
				y = gy
			}
			if x == y {
				continue
			}
			sx, sy := int32(uint32(nx)), int32(uint32(ny))
			if sx < sy {
				x, y = y, x
			}
			// The size half is only meaningful at roots, so y's word needs
			// just the new parent pointer.
			node[y] = uint64(uint32(x)) << 32
			node[x] = uint64(uint32(x))<<32 | uint64(uint32(sx+sy))
			pairs += int64(sx) * int64(sy)
			sets--
		}
	}
	d.sets = sets
	return pairs
}

// Connected reports whether x and y share a set.
func (d *DSU) Connected(x, y int) bool { return d.Find(x) == d.Find(y) }

// SetSize returns the size of x's set.
func (d *DSU) SetSize(x int) int { return int(d.size(int32(d.Find(x)))) }

// ConnectedPairs returns the number of unordered pairs {x,y}, x != y, that
// are connected: sum over components of s*(s-1)/2.
func (d *DSU) ConnectedPairs() int64 {
	var total int64
	for i, n := range d.node {
		if int(n>>32) == i { // root
			s := int64(uint32(n))
			total += s * (s - 1) / 2
		}
	}
	return total
}

// ComponentSizes returns the multiset of component sizes in no particular
// order.
func (d *DSU) ComponentSizes() []int {
	var out []int
	for i, n := range d.node {
		if int(n>>32) == i {
			out = append(out, int(uint32(n)))
		}
	}
	return out
}
