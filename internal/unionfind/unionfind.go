// Package unionfind provides a disjoint-set union structure with union by
// size and path halving. It is the substrate for per-world connected
// component computations (Lemma 2 of the paper): near-constant amortized
// operations, O(alpha(n)) per find.
package unionfind

// DSU is a disjoint-set union over n elements labeled 0..n-1.
type DSU struct {
	parent []int32
	size   []int32
	sets   int
}

// New returns a DSU with every element in its own singleton set.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int32, n),
		size:   make([]int32, n),
		sets:   n,
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the canonical representative of x's set, compressing the
// path by halving as it walks.
func (d *DSU) Find(x int) int {
	p := int32(x)
	for d.parent[p] != p {
		d.parent[p] = d.parent[d.parent[p]]
		p = d.parent[p]
	}
	return int(p)
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false when they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := int32(d.Find(x)), int32(d.Find(y))
	if rx == ry {
		return false
	}
	if d.size[rx] < d.size[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	d.size[rx] += d.size[ry]
	d.sets--
	return true
}

// Connected reports whether x and y share a set.
func (d *DSU) Connected(x, y int) bool { return d.Find(x) == d.Find(y) }

// SetSize returns the size of x's set.
func (d *DSU) SetSize(x int) int { return int(d.size[d.Find(x)]) }

// ConnectedPairs returns the number of unordered pairs {x,y}, x != y, that
// are connected: sum over components of s*(s-1)/2.
func (d *DSU) ConnectedPairs() int64 {
	var total int64
	for i, p := range d.parent {
		if int(p) == i { // root
			s := int64(d.size[i])
			total += s * (s - 1) / 2
		}
	}
	return total
}

// ComponentSizes returns the multiset of component sizes in no particular
// order.
func (d *DSU) ComponentSizes() []int {
	var out []int
	for i, p := range d.parent {
		if int(p) == i {
			out = append(out, int(d.size[i]))
		}
	}
	return out
}
