package uncertain

import "testing"

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if len(b) != 3 {
		t.Fatalf("130 bits need 3 words, got %d", len(b))
	}
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("fresh bitset has bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 6 {
		t.Fatalf("Count = %d, want 6", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 5 {
		t.Fatal("Clear(64) failed")
	}
	var seen []int
	b.ForEachSet(func(i int) { seen = append(seen, i) })
	want := []int{0, 63, 127, 128, 129}
	if len(seen) != len(want) {
		t.Fatalf("ForEachSet visited %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("ForEachSet visited %v, want %v (ascending)", seen, want)
		}
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
}

// FuzzBitsetMask hardens the bitset<->bool-mask conversion the world
// engine is built on: any mask must round-trip exactly, and the packed
// view must agree bit for bit with the bool view.
func FuzzBitsetMask(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte{0xff}, 8)
	f.Add([]byte{0x00, 0xff, 0x5a}, 20)
	f.Add([]byte{0x80}, 1)
	f.Add([]byte{0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0x01}, 65)
	f.Add([]byte{0x01, 0x02, 0x03}, 17)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 8*len(data) || n > 1<<16 {
			return
		}
		mask := make([]bool, n)
		ones := 0
		for i := range mask {
			mask[i] = data[i/8]&(1<<(i%8)) != 0
			if mask[i] {
				ones++
			}
		}
		b := BitsetFromMask(mask)
		if len(b) != (n+63)/64 {
			t.Fatalf("packed %d bits into %d words", n, len(b))
		}
		if b.Count() != ones {
			t.Fatalf("Count = %d, mask has %d ones", b.Count(), ones)
		}
		for i := range mask {
			if b.Get(i) != mask[i] {
				t.Fatalf("bit %d: packed %v, mask %v", i, b.Get(i), mask[i])
			}
		}
		back := b.Mask(n)
		for i := range mask {
			if back[i] != mask[i] {
				t.Fatalf("round trip changed bit %d", i)
			}
		}
		// ForEachSet must visit exactly the set indices, ascending.
		prev := -1
		visited := 0
		b.ForEachSet(func(i int) {
			if i <= prev {
				t.Fatalf("ForEachSet out of order: %d after %d", i, prev)
			}
			if i >= n || !mask[i] {
				t.Fatalf("ForEachSet visited unset/out-of-range bit %d", i)
			}
			prev = i
			visited++
		})
		if visited != ones {
			t.Fatalf("ForEachSet visited %d bits, want %d", visited, ones)
		}
	})
}
