package uncertain

import (
	"math"
	"math/rand/v2"
	"sync/atomic"
)

// CSR is a read-only compressed-sparse-row adjacency view of an uncertain
// graph: the shared edge storage plus offsets into packed neighbor and
// edge-index arrays. It trades *Graph's mutability and O(1) hash-map edge
// lookups for a compact, allocation-friendly layout — three flat arrays
// instead of |V| adjacency slices and a map — which is what the v2 binary
// decoder materializes directly and what the million-node substrate runs
// on.
//
// A CSR is immutable after construction and safe for concurrent use. It
// implements View, so every engine that accepts a View (reliability,
// privacy, the query plane) runs on it interchangeably with *Graph; when
// it is built with NewCSR the edge order is preserved, so Monte Carlo
// estimates are bit-identical between the two representations.
type CSR struct {
	edgeCore
	offsets []int64  // len n+1: vertex v's incident half-edges are [offsets[v], offsets[v+1])
	neigh   []NodeID // len 2m, packed neighbor endpoints
	eidx    []int32  // len 2m, parallel edge indices into edges

	sampler atomic.Pointer[WorldSampler]
}

// NewCSR builds the CSR view of g, preserving g's edge order (and hence
// its sampled world stream: estimates on the view replay bit-for-bit).
// The edge list is copied; g may be mutated or dropped afterwards without
// affecting the view.
func NewCSR(g *Graph) *CSR {
	return newCSRFromEdges(g.n, g.Edges())
}

// newCSRFromEdges builds a CSR over n vertices from an owned edge slice.
// The edges must already be validated (canonical u < v in range, p in
// [0,1], no duplicates); callers are the CSR constructor above (edges
// from a valid Graph) and the v2 decoder (which validates while
// decoding). The slice is retained.
func newCSRFromEdges(n int, edges []Edge) *CSR {
	c := &CSR{edgeCore: edgeCore{n: n, edges: edges}}
	c.uv = make([]uint64, len(edges))
	c.offsets = make([]int64, n+1)
	for i, e := range edges {
		c.uv[i] = uint64(e.U)<<32 | uint64(e.V)
		c.offsets[e.U+1]++
		c.offsets[e.V+1]++
	}
	for v := 0; v < n; v++ {
		c.offsets[v+1] += c.offsets[v]
	}
	c.neigh = make([]NodeID, 2*len(edges))
	c.eidx = make([]int32, 2*len(edges))
	fill := make([]int64, n)
	copy(fill, c.offsets[:n])
	for i, e := range edges {
		c.neigh[fill[e.U]] = e.V
		c.eidx[fill[e.U]] = int32(i)
		fill[e.U]++
		c.neigh[fill[e.V]] = e.U
		c.eidx[fill[e.V]] = int32(i)
		fill[e.V]++
	}
	return c
}

// Offsets returns the CSR row-offset array (length |V|+1): vertex v's
// incident half-edges occupy [Offsets()[v], Offsets()[v+1]) of the packed
// arrays. Callers must not mutate it.
func (c *CSR) Offsets() []int64 { return c.offsets }

// PackedNeighbors returns the packed neighbor array, parallel to
// PackedEdgeIndices. Callers must not mutate it.
func (c *CSR) PackedNeighbors() []NodeID { return c.neigh }

// PackedEdgeIndices returns the packed per-half-edge edge indices.
// Callers must not mutate it.
func (c *CSR) PackedEdgeIndices() []int32 { return c.eidx }

// Version implements View. A CSR is immutable, so its version never
// changes; pointer identity alone keys caches.
func (c *CSR) Version() uint64 { return 0 }

// EdgeIndex returns the index of edge {u,v}, or -1 if absent. The lookup
// scans the smaller endpoint's neighbor run — O(min degree), no hash map.
func (c *CSR) EdgeIndex(u, v NodeID) int {
	if u < 0 || int(u) >= c.n || v < 0 || int(v) >= c.n || u == v {
		return -1
	}
	if c.Degree(v) < c.Degree(u) {
		u, v = v, u
	}
	for i := c.offsets[u]; i < c.offsets[u+1]; i++ {
		if c.neigh[i] == v {
			return int(c.eidx[i])
		}
	}
	return -1
}

// HasEdge reports whether {u,v} is an edge of the graph.
func (c *CSR) HasEdge(u, v NodeID) bool { return c.EdgeIndex(u, v) >= 0 }

// Degree returns the structural degree of v.
func (c *CSR) Degree(v NodeID) int { return int(c.offsets[v+1] - c.offsets[v]) }

// Neighbors appends the neighbors of v to buf and returns it.
func (c *CSR) Neighbors(v NodeID, buf []NodeID) []NodeID {
	return append(buf, c.neigh[c.offsets[v]:c.offsets[v+1]]...)
}

// IncidentEdges appends indices of edges incident to v to buf.
func (c *CSR) IncidentEdges(v NodeID, buf []int32) []int32 {
	return append(buf, c.eidx[c.offsets[v]:c.offsets[v+1]]...)
}

// IncidentProbs appends the probabilities of edges incident to v to buf.
func (c *CSR) IncidentProbs(v NodeID, buf []float64) []float64 {
	for _, ei := range c.eidx[c.offsets[v]:c.offsets[v+1]] {
		buf = append(buf, c.edges[ei].P)
	}
	return buf
}

// ExpectedDegree returns E[deg(v)] = sum of incident edge probabilities.
func (c *CSR) ExpectedDegree(v NodeID) float64 {
	var s float64
	for _, ei := range c.eidx[c.offsets[v]:c.offsets[v+1]] {
		s += c.edges[ei].P
	}
	return s
}

// MaxStructuralDegree returns the maximum structural degree over vertices.
func (c *CSR) MaxStructuralDegree() int {
	max := 0
	for v := 0; v < c.n; v++ {
		if d := c.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// StructuralDegreeHistogram returns counts[d] = number of vertices with
// structural degree d.
func (c *CSR) StructuralDegreeHistogram() []int {
	h := make([]int, c.MaxStructuralDegree()+1)
	for v := 0; v < c.n; v++ {
		h[c.Degree(NodeID(v))]++
	}
	return h
}

// ExpectedDegrees returns the expected degree of every vertex.
func (c *CSR) ExpectedDegrees() []float64 {
	out := make([]float64, c.n)
	for _, e := range c.edges {
		out[e.U] += e.P
		out[e.V] += e.P
	}
	return out
}

// DegreeStdDev returns the standard deviation of the expected-degree
// property across vertices (Definition 4's kernel bandwidth).
func (c *CSR) DegreeStdDev() float64 { return degreeStdDev(c.n, c.ExpectedDegrees()) }

// MeanProb returns the average edge probability, or 0 for an edgeless
// graph.
func (c *CSR) MeanProb() float64 { return meanProb(c.edges) }

// ExpectedNumEdges returns E[|E(world)|] = sum of edge probabilities.
func (c *CSR) ExpectedNumEdges() float64 { return expectedNumEdges(c.edges) }

// ExpectedAvgDegree returns E[average degree] = 2*sum(p)/|V|.
func (c *CSR) ExpectedAvgDegree() float64 {
	if c.n == 0 {
		return 0
	}
	return 2 * c.ExpectedNumEdges() / float64(c.n)
}

// ProbHistogram buckets the edge probabilities into `bins` equal-width
// bins over [0,1]; p = 1 lands in the last bin.
func (c *CSR) ProbHistogram(bins int) []int { return probHistogram(c.edges, bins) }

// Sampler returns the world-sampler snapshot for the view, building it on
// first use. The CSR is immutable, so the snapshot is built at most once
// (barring a benign race) and shared by all callers.
func (c *CSR) Sampler() *WorldSampler {
	if s := c.sampler.Load(); s != nil {
		return s
	}
	s := newWorldSampler(c)
	c.sampler.Store(s)
	return s
}

// SampleWorld draws one possible world of the view; see Graph.SampleWorld
// for the draw-order contract.
func (c *CSR) SampleWorld(rng *rand.Rand) *World { return sampleWorldOf(c, rng) }

// MostProbableWorld returns the world including exactly the edges with
// p >= 0.5.
func (c *CSR) MostProbableWorld() *World { return mostProbableWorldOf(c) }

// WorldFromMask builds a world from an explicit edge-presence mask.
func (c *CSR) WorldFromMask(present []bool) *World { return worldFromMaskOf(c, present) }

// Materialize converts the view back into a mutable slice-backed *Graph
// (fresh adjacency and edge index). The engines that perturb graphs (the
// σ-search) need mutability; everything else should stay on the view.
func (c *CSR) Materialize() (*Graph, error) { return FromEdges(c.n, c.edges) }

// forIncident iterates the incident half-edges of v.
func (c *CSR) forIncident(v NodeID, fn func(to NodeID, edge int32)) {
	lo, hi := c.offsets[v], c.offsets[v+1]
	for i := lo; i < hi; i++ {
		fn(c.neigh[i], c.eidx[i])
	}
}

// degreeStdDev is the shared population-stddev helper behind
// Graph.DegreeStdDev and CSR.DegreeStdDev.
func degreeStdDev(n int, degs []float64) float64 {
	if n == 0 {
		return 0
	}
	var mean float64
	for _, d := range degs {
		mean += d
	}
	mean /= float64(n)
	var ss float64
	for _, d := range degs {
		diff := d - mean
		ss += diff * diff
	}
	return math.Sqrt(ss / float64(n))
}

func meanProb(edges []Edge) float64 {
	if len(edges) == 0 {
		return 0
	}
	return expectedNumEdges(edges) / float64(len(edges))
}

func expectedNumEdges(edges []Edge) float64 {
	var s float64
	for _, e := range edges {
		s += e.P
	}
	return s
}

func probHistogram(edges []Edge, bins int) []int {
	if bins <= 0 {
		bins = 10
	}
	h := make([]int, bins)
	for _, e := range edges {
		b := int(e.P * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		h[b]++
	}
	return h
}
