package uncertain

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ErrBadFormat is returned for malformed graph input.
var ErrBadFormat = errors.New("uncertain: bad graph format")

// MaxFileNodes caps the node count accepted from a graph file; it guards
// the parser against allocating gigabytes for absurd headers in corrupt
// or hostile input. 16M vertices is an order of magnitude above the
// largest dataset in the paper.
const MaxFileNodes = 1 << 24

// WriteTSV serializes g in the plain text format used by the tools:
//
//	# comment lines allowed
//	<numNodes>
//	<u>\t<v>\t<p>
//	...
//
// Edges are written in sorted order for deterministic output.
func WriteTSV(w io.Writer, g View) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", g.NumNodes()); err != nil {
		return err
	}
	for _, e := range g.SortedEdges() {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%s\n", e.U, e.V,
			strconv.FormatFloat(e.P, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses the format written by WriteTSV. Blank lines and lines
// starting with '#' are ignored. Fields may be separated by tabs or spaces.
func ReadTSV(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if g == nil {
			if len(fields) != 1 {
				return nil, fmt.Errorf("%w: line %d: want node count, got %q", ErrBadFormat, lineNo, line)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil || n < 0 || n > MaxFileNodes {
				return nil, fmt.Errorf("%w: line %d: bad node count %q", ErrBadFormat, lineNo, fields[0])
			}
			g = New(n)
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: line %d: want 'u v p', got %q", ErrBadFormat, lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad node %q", ErrBadFormat, lineNo, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad node %q", ErrBadFormat, lineNo, fields[1])
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad probability %q", ErrBadFormat, lineNo, fields[2])
		}
		if err := g.AddEdge(NodeID(u), NodeID(v), p); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("%w: empty input", ErrBadFormat)
	}
	return g, nil
}

// SaveFile writes g to path in TSV format.
func SaveFile(path string, g View) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTSV(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an uncertain graph from path, auto-detecting the format:
// files starting with the binary magic load as a binary container (either
// the v1 triple format or the sectioned v2 format, dispatched on the
// version word), anything else parses as TSV. Use LoadCSR to decode
// straight into the packed read-only view instead of a mutable *Graph.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAuto(f)
}

// ReadAuto parses a graph from r with the same format auto-detection
// LoadFile applies to files: the binary magic selects the binary
// container (v1 or sectioned v2 by version word), anything else parses
// as TSV. It is the entry point for streamed inputs — uploads, pipes —
// where no file path exists to sniff.
func ReadAuto(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && len(head) == 4 &&
		binary.LittleEndian.Uint32(head) == binaryMagic {
		return ReadBinary(br)
	}
	return ReadTSV(br)
}
