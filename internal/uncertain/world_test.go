package uncertain

import (
	"math/rand/v2"
	"testing"
)

func pathGraph(t *testing.T, n int, p float64) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), p)
	}
	return g
}

func TestSampleWorldExtremes(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 0)
	g.MustAddEdge(1, 2, 1)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 50; i++ {
		w := g.SampleWorld(rng)
		if w.Present(0) {
			t.Fatal("p=0 edge must never be present")
		}
		if !w.Present(1) {
			t.Fatal("p=1 edge must always be present")
		}
		if w.NumEdges() != 1 {
			t.Fatalf("NumEdges = %d, want 1", w.NumEdges())
		}
	}
}

func TestSampleWorldDeterministicPerSeed(t *testing.T) {
	g := pathGraph(t, 20, 0.5)
	w1 := g.SampleWorld(rand.New(rand.NewPCG(7, 9)))
	w2 := g.SampleWorld(rand.New(rand.NewPCG(7, 9)))
	for i := 0; i < g.NumEdges(); i++ {
		if w1.Present(i) != w2.Present(i) {
			t.Fatal("same seed must produce the same world")
		}
	}
}

func TestSampleWorldFrequency(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 0.3)
	rng := rand.New(rand.NewPCG(3, 4))
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.SampleWorld(rng).Present(0) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.28 || got > 0.32 {
		t.Fatalf("edge frequency %v, want ~0.3", got)
	}
}

func TestMostProbableWorld(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 0.9)
	g.MustAddEdge(1, 2, 0.5)
	g.MustAddEdge(2, 3, 0.1)
	w := g.MostProbableWorld()
	if !w.Present(0) || !w.Present(1) || w.Present(2) {
		t.Fatalf("MP world should include p >= 0.5 only; got %v %v %v",
			w.Present(0), w.Present(1), w.Present(2))
	}
}

func TestWorldFromMask(t *testing.T) {
	g := pathGraph(t, 3, 0.5)
	w := g.WorldFromMask([]bool{true, false})
	if !w.Present(0) || w.Present(1) || w.NumEdges() != 1 {
		t.Fatal("mask not honored")
	}
	// The mask must be copied.
	mask := []bool{true, true}
	w2 := g.WorldFromMask(mask)
	mask[0] = false
	if !w2.Present(0) {
		t.Fatal("WorldFromMask must copy the mask")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short mask should panic")
		}
	}()
	g.WorldFromMask([]bool{true})
}

func TestWorldDegreeAndNeighbors(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(0, 3, 1)
	w := g.WorldFromMask([]bool{true, true, false})
	if w.Degree(0) != 2 {
		t.Fatalf("Degree(0) = %d, want 2", w.Degree(0))
	}
	if w.Degree(3) != 0 {
		t.Fatalf("Degree(3) = %d, want 0", w.Degree(3))
	}
	nbrs := w.Neighbors(0, nil)
	if len(nbrs) != 2 {
		t.Fatalf("Neighbors(0) = %v", nbrs)
	}
}

func TestWorldComponents(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 1)
	w := g.MostProbableWorld()
	if got := w.ConnectedPairs(); got != 4 {
		t.Fatalf("ConnectedPairs = %d, want 4", got)
	}
	labels := w.ComponentLabels()
	if labels[0] != labels[2] {
		t.Fatal("0 and 2 should share a component")
	}
	if labels[0] == labels[3] {
		t.Fatal("0 and 3 should not share a component")
	}
}

func TestBFSDistances(t *testing.T) {
	g := pathGraph(t, 5, 1)
	w := g.MostProbableWorld()
	dist := w.BFSDistances(0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSDistancesUnreachable(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	dist := g.MostProbableWorld().BFSDistances(0)
	if dist[1] != 1 {
		t.Fatalf("dist[1] = %d, want 1", dist[1])
	}
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable nodes should be -1, got %v", dist)
	}
}

func TestAdjacencyListsMatchNeighbors(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 5, 1)
	w := g.MostProbableWorld()
	adj := w.AdjacencyLists()
	for v := 0; v < 6; v++ {
		if len(adj[v]) != w.Degree(NodeID(v)) {
			t.Fatalf("adj[%d] has %d entries, Degree says %d", v, len(adj[v]), w.Degree(NodeID(v)))
		}
	}
}

func TestWorldGraphBackref(t *testing.T) {
	g := pathGraph(t, 3, 0.5)
	w := g.MostProbableWorld()
	if w.Source() != View(g) {
		t.Fatal("World.Source should return the source view")
	}
	if w.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", w.NumNodes())
	}
}
