package uncertain

import (
	"math"
)

// mask53 extracts the low 53 bits of a PCG draw — exactly the bits
// math/rand/v2 turns into a Float64 (float64(u<<11>>11) / 2^53).
const mask53 = 1<<53 - 1

// threshAlways marks an edge with p >= 1: included without consuming
// randomness. A threshold of 0 marks p <= 0: excluded without consuming
// randomness. Everything in between is a draw.
const threshAlways = ^uint64(0)

// geomCut and geomMinRun bound when the geometric-skip path kicks in: a
// probability class is skip-sampled only when it is rare enough (few
// successes per scan) and populous enough (the per-class setup amortizes).
const (
	geomCut    = 0.25
	geomMinRun = 16
)

// skipClass is one probability class of the geometric-skip sampler: edges
// sharing the same low probability p, visited by jumping geometric gaps
// instead of flipping a coin per edge.
type skipClass struct {
	invLog1p float64 // 1 / ln(1-p)
	idx      []int32 // edge indices, ascending
}

// WorldSampler is the allocation-free possible-world sampler for one graph
// snapshot. It precomputes, per edge, the integer threshold t = ceil(p*2^53)
// such that
//
//	rand.Float64() < p  ⇔  pcg.Uint64() & mask53 < t
//
// so SampleInto draws the bit-for-bit identical world to Graph.SampleWorld
// from the same PCG state, without the rand.Rand wrapper's interface
// dispatch, float division, or per-world allocations.
//
// A sampler is an immutable snapshot of the graph's probabilities: it is
// safe for concurrent use by many workers, and it is invalidated (rebuilt
// by Graph.Sampler) when the graph's edge set or probabilities change.
type WorldSampler struct {
	src     View
	core    *edgeCore
	version uint64
	thresh  []uint64 // per edge: 0 = never, threshAlways = certain, else draw

	// Geometric-skip layout (SampleIntoGeometric): low-probability classes
	// are skip-sampled, everything else falls back to per-edge draws.
	classes []skipClass
	dense   []int32 // edges outside every skip class, ascending
}

// newWorldSampler builds the sampler snapshot for the view's current state.
func newWorldSampler(src View) *WorldSampler {
	core := src.dataCore()
	s := &WorldSampler{src: src, core: core, version: src.Version(), thresh: make([]uint64, len(core.edges))}
	counts := make(map[float64]int)
	for i, e := range core.edges {
		switch {
		case e.P >= 1:
			s.thresh[i] = threshAlways
		case e.P <= 0:
			s.thresh[i] = 0
		default:
			// p*2^53 is an exact power-of-two scaling, so the ceiling is the
			// exact integer threshold for the Float64 comparison above.
			s.thresh[i] = uint64(math.Ceil(e.P * (1 << 53)))
			if e.P < geomCut {
				counts[e.P]++
			}
		}
	}
	classIdx := make(map[float64]int)
	for i, e := range core.edges {
		if e.P > 0 && e.P < geomCut && counts[e.P] >= geomMinRun {
			ci, ok := classIdx[e.P]
			if !ok {
				ci = len(s.classes)
				classIdx[e.P] = ci
				s.classes = append(s.classes, skipClass{invLog1p: 1 / math.Log1p(-e.P)})
			}
			s.classes[ci].idx = append(s.classes[ci].idx, int32(i))
		} else if s.thresh[i] != 0 {
			s.dense = append(s.dense, int32(i))
		}
	}
	return s
}

// NumEdges returns the edge count the sampler was built for.
func (s *WorldSampler) NumEdges() int { return len(s.core.edges) }

// Sampler returns the world sampler snapshot for g's current state,
// building and caching it on first use and rebuilding it after any
// AddEdge/SetProb. The returned sampler is immutable and safe for
// concurrent use; callers must not mutate the graph while sampling.
func (g *Graph) Sampler() *WorldSampler {
	if s := g.sampler.Load(); s != nil && s.version == g.version {
		return s
	}
	s := newWorldSampler(g)
	g.sampler.Store(s)
	return s
}
