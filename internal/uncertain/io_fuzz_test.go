package uncertain

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeedV2 builds a tiny valid v2 file for the corpus, plus mutants the
// fuzzer can grow from: flipped checksum, truncated section, bad varint,
// trailing garbage.
func fuzzSeedV2() ([]byte, [][]byte) {
	g := New(3)
	g.MustAddEdge(0, 1, Quantize16(0.5))
	g.MustAddEdge(1, 2, Quantize16(0.25))
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		panic(err)
	}
	valid := buf.Bytes()
	flipCRC := append([]byte{}, valid...)
	flipCRC[8+12] ^= 1 // META section CRC field
	truncated := append([]byte{}, valid[:len(valid)-9]...)
	badVarint := append([]byte{}, valid...)
	badVarint[8+16] = 0x80 // META payload now starts with an unterminated uvarint
	trailing := append(append([]byte{}, valid...), 0xCC)
	return valid, [][]byte{flipCRC, truncated, badVarint, trailing}
}

// FuzzGraphRoundTrip hardens all three serialization formats from two
// sides: arbitrary bytes fed to the binary readers (both the *Graph and
// the CSR decoder) must fail cleanly with ErrBadFormat — never panic —
// or yield an internally consistent graph, and any graph constructed from
// the fuzzed bytes must survive TSV, v1 and v2 round trips unchanged,
// including cross-format trips (TSV -> v1 -> v2), since LoadFile
// auto-detects the format and all paths must agree on the graph.
func FuzzGraphRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 128, 1, 2, 255, 0, 2, 0})
	f.Add([]byte("GRGU\x01\x00\x00\x00"))
	f.Add([]byte{0x47, 0x52, 0x47, 0x55, 1, 0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{7}, 64))
	validV2, mutants := fuzzSeedV2()
	f.Add(validV2)
	for _, m := range mutants {
		f.Add(m)
	}
	// A v2 header with a huge claimed section length: the reader must
	// bound its allocation, not trust the length field.
	huge := make([]byte, 24)
	binary.LittleEndian.PutUint32(huge[0:4], binaryMagic)
	binary.LittleEndian.PutUint32(huge[4:8], binaryVersionV2)
	binary.LittleEndian.PutUint32(huge[8:12], secMETA)
	binary.LittleEndian.PutUint64(huge[12:20], 1<<60)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Side 1: the binary readers on raw fuzz input. Both decoders must
		// agree on accept/reject, and accepted graphs must be consistent.
		g1, err1 := ReadBinary(bytes.NewReader(data))
		c1, errCSR := ReadCSR(bytes.NewReader(data))
		if (err1 == nil) != (errCSR == nil) {
			t.Fatalf("ReadBinary err=%v but ReadCSR err=%v", err1, errCSR)
		}
		if err1 == nil {
			checkConsistent(t, g1)
			back, err := c1.Materialize()
			if err != nil {
				t.Fatalf("Materialize after accepted decode: %v", err)
			}
			if !g1.Equal(back) {
				t.Fatal("ReadBinary and ReadCSR disagree on the decoded graph")
			}
		}

		// Side 2: build a graph from the bytes and round-trip it.
		if len(data) == 0 {
			return
		}
		n := int(data[0])%64 + 1
		g := New(n)
		for i := 1; i+2 < len(data); i += 3 {
			u := NodeID(int(data[i]) % n)
			v := NodeID(int(data[i+1]) % n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			// float64(byte)/255 is exact in TSV and v1, and survives v2's
			// float64 escape column; bytes divisible by 255's structure do
			// not generally land on the q16 grid, so both PROB encodings
			// get exercised across inputs.
			g.MustAddEdge(u, v, float64(data[i+2])/255)
		}

		var tsv bytes.Buffer
		if err := WriteTSV(&tsv, g); err != nil {
			t.Fatalf("WriteTSV: %v", err)
		}
		fromTSV, err := ReadTSV(&tsv)
		if err != nil {
			t.Fatalf("ReadTSV after write: %v", err)
		}
		if !g.Equal(fromTSV) {
			t.Fatal("TSV round trip changed the graph")
		}

		var bin bytes.Buffer
		if err := WriteBinary(&bin, fromTSV); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		fromBin, err := ReadBinary(&bin)
		if err != nil {
			t.Fatalf("ReadBinary after write: %v", err)
		}
		if !g.Equal(fromBin) {
			t.Fatal("TSV->binary round trip changed the graph")
		}

		var v2 bytes.Buffer
		if err := WriteBinaryV2(&v2, fromBin); err != nil {
			t.Fatalf("WriteBinaryV2: %v", err)
		}
		v2bytes := v2.Bytes()
		fromV2, err := ReadBinary(bytes.NewReader(v2bytes))
		if err != nil {
			t.Fatalf("ReadBinary(v2) after write: %v", err)
		}
		if !g.Equal(fromV2) {
			t.Fatal("v1->v2 round trip changed the graph")
		}
		fromV2CSR, err := ReadCSR(bytes.NewReader(v2bytes))
		if err != nil {
			t.Fatalf("ReadCSR(v2) after write: %v", err)
		}
		back, err := fromV2CSR.Materialize()
		if err != nil {
			t.Fatalf("Materialize: %v", err)
		}
		if !g.Equal(back) {
			t.Fatal("v2 CSR decode changed the graph")
		}
	})
}

// checkConsistent asserts the structural invariants every successfully
// parsed graph must satisfy.
func checkConsistent(t *testing.T, g *Graph) {
	t.Helper()
	if g.NumNodes() < 0 || g.NumEdges() < 0 {
		t.Fatalf("negative sizes: nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.U >= e.V || e.P < 0 || e.P > 1 {
			t.Fatalf("invalid edge %+v", e)
		}
		if int(e.V) >= g.NumNodes() {
			t.Fatalf("edge %+v beyond node count %d", e, g.NumNodes())
		}
	}
}
