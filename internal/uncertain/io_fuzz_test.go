package uncertain

import (
	"bytes"
	"testing"
)

// FuzzGraphRoundTrip hardens both serialization formats from two sides:
// arbitrary bytes fed to the binary reader must fail cleanly or yield an
// internally consistent graph, and any graph constructed from the fuzzed
// bytes must survive TSV and binary round trips unchanged — including a
// cross-format trip (write TSV, read, write binary, read), since LoadFile
// auto-detects the format and the two paths must agree on the graph.
func FuzzGraphRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 128, 1, 2, 255, 0, 2, 0})
	f.Add([]byte("GRGU\x01\x00\x00\x00"))
	f.Add([]byte{0x47, 0x52, 0x47, 0x55, 1, 0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{7}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Side 1: the binary reader on raw fuzz input.
		if g, err := ReadBinary(bytes.NewReader(data)); err == nil {
			checkConsistent(t, g)
		}

		// Side 2: build a graph from the bytes and round-trip it.
		if len(data) == 0 {
			return
		}
		n := int(data[0])%64 + 1
		g := New(n)
		for i := 1; i+2 < len(data); i += 3 {
			u := NodeID(int(data[i]) % n)
			v := NodeID(int(data[i+1]) % n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			// float64(byte)/255 is exact in both formats: the binary format
			// stores raw bits and the TSV writer uses 'g', -1 (shortest
			// round-trip) formatting.
			g.MustAddEdge(u, v, float64(data[i+2])/255)
		}

		var tsv bytes.Buffer
		if err := WriteTSV(&tsv, g); err != nil {
			t.Fatalf("WriteTSV: %v", err)
		}
		fromTSV, err := ReadTSV(&tsv)
		if err != nil {
			t.Fatalf("ReadTSV after write: %v", err)
		}
		if !g.Equal(fromTSV) {
			t.Fatal("TSV round trip changed the graph")
		}

		var bin bytes.Buffer
		if err := WriteBinary(&bin, fromTSV); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		fromBin, err := ReadBinary(&bin)
		if err != nil {
			t.Fatalf("ReadBinary after write: %v", err)
		}
		if !g.Equal(fromBin) {
			t.Fatal("TSV->binary round trip changed the graph")
		}
	})
}

// checkConsistent asserts the structural invariants every successfully
// parsed graph must satisfy.
func checkConsistent(t *testing.T, g *Graph) {
	t.Helper()
	if g.NumNodes() < 0 || g.NumEdges() < 0 {
		t.Fatalf("negative sizes: nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.U >= e.V || e.P < 0 || e.P > 1 {
			t.Fatalf("invalid edge %+v", e)
		}
		if int(e.V) >= g.NumNodes() {
			t.Fatalf("edge %+v beyond node count %d", e, g.NumNodes())
		}
	}
}
