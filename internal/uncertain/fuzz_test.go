package uncertain

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTSV hardens the parser: arbitrary input must either fail with
// an error or produce a graph that survives a write/read round trip.
func FuzzReadTSV(f *testing.F) {
	f.Add("3\n0 1 0.5\n1 2 0.25\n")
	f.Add("# comment\n\n2\n0\t1\t1\n")
	f.Add("0\n")
	f.Add("abc\n")
	f.Add("3\n0 1 0.5\n0 1 0.5\n")
	f.Add("5\n0 1 1e-3\n")
	f.Add("2\n0 1 NaN\n")
	f.Add("2\n0 1 +Inf\n")
	f.Add("9999999999999\n")
	f.Add("3\n-1 1 0.5\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadTSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// A successfully parsed graph must be internally consistent and
		// round-trippable.
		if g.NumNodes() < 0 || g.NumEdges() < 0 {
			t.Fatalf("negative sizes: %v", g)
		}
		for i := 0; i < g.NumEdges(); i++ {
			e := g.Edge(i)
			if e.U >= e.V || e.P < 0 || e.P > 1 {
				t.Fatalf("invalid edge %+v", e)
			}
			if int(e.V) >= g.NumNodes() {
				t.Fatalf("edge %+v beyond node count %d", e, g.NumNodes())
			}
		}
		var buf bytes.Buffer
		if err := WriteTSV(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		h, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("re-read after write: %v", err)
		}
		if !g.Equal(h) {
			t.Fatal("round trip changed the graph")
		}
	})
}
