package uncertain

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary format: magic, version, node count, edge count, then (u, v, p)
// triples little-endian. Roughly 5x smaller and an order of magnitude
// faster to load than the TSV format for large graphs.
const (
	binaryMagic   uint32 = 0x55475247 // "UGRG"
	binaryVersion uint32 = 1
)

// WriteBinary serializes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, v := range []uint32{binaryMagic, binaryVersion, uint32(g.NumNodes()), uint32(g.NumEdges())} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, e := range g.SortedEdges() {
		if err := binary.Write(bw, binary.LittleEndian, uint32(e.U)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(e.V)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(e.P)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the format written by WriteBinary, validating every
// edge through the normal construction path.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var header [4]uint32
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("%w: truncated header: %v", ErrBadFormat, err)
		}
	}
	if header[0] != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadFormat, header[0])
	}
	if header[1] != binaryVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, header[1])
	}
	n, m := int(header[2]), int(header[3])
	if n > MaxFileNodes {
		return nil, fmt.Errorf("%w: node count %d exceeds limit", ErrBadFormat, n)
	}
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		return nil, fmt.Errorf("%w: %d edges impossible for %d nodes", ErrBadFormat, m, n)
	}
	g := New(n)
	for i := 0; i < m; i++ {
		var u, v uint32
		var pBits uint64
		if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
			return nil, fmt.Errorf("%w: truncated edge %d: %v", ErrBadFormat, i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("%w: truncated edge %d: %v", ErrBadFormat, i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &pBits); err != nil {
			return nil, fmt.Errorf("%w: truncated edge %d: %v", ErrBadFormat, i, err)
		}
		if u > uint32(MaxFileNodes) || v > uint32(MaxFileNodes) {
			return nil, fmt.Errorf("%w: edge %d endpoints out of range", ErrBadFormat, i)
		}
		if err := g.AddEdge(NodeID(u), NodeID(v), math.Float64frombits(pBits)); err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
	}
	return g, nil
}

// SaveBinaryFile writes g to path in binary format.
func SaveBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinaryFile reads a binary graph from path.
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
