package uncertain

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary container: every binary graph file starts with the same two
// little-endian words — magic then version — followed by a version-specific
// body.
//
// Version 1 body: node count and edge count as uint32, then (u uint32,
// v uint32, p float64bits) triples in sorted edge order. Roughly 5x smaller
// and an order of magnitude faster to load than the TSV format.
//
// Version 2 body: the sectioned format of io_v2.go — length-prefixed,
// checksummed sections carrying delta/varint-coded edges and a quantized
// probability column. See DESIGN.md §14.
const (
	binaryMagic     uint32 = 0x55475247 // "UGRG"
	binaryVersion   uint32 = 1
	binaryVersionV2 uint32 = 2
)

// ErrTooLarge is returned by the binary writers when a graph cannot be
// represented in the on-disk format: more than MaxFileNodes vertices (the
// readers refuse such headers, so writing them would produce files nothing
// can load back) or an edge count that does not fit the v1 uint32 field.
var ErrTooLarge = errors.New("uncertain: graph too large for binary format")

// checkWritable rejects graphs whose counts the binary formats cannot
// round-trip. Both versions share the MaxFileNodes cap; v1 additionally
// needs the edge count to fit its uint32 field, which the cap already
// implies is the binding constraint only for absurd inputs.
func checkWritable(n, m int) error {
	if n > MaxFileNodes {
		return fmt.Errorf("%w: %d nodes exceeds MaxFileNodes %d", ErrTooLarge, n, MaxFileNodes)
	}
	if int64(m) > math.MaxUint32 {
		return fmt.Errorf("%w: %d edges exceeds uint32", ErrTooLarge, m)
	}
	return nil
}

// WriteBinary serializes g in the version-1 binary format. It refuses
// graphs the readers would reject (ErrTooLarge) instead of silently
// truncating the counts through the uint32 header fields.
func WriteBinary(w io.Writer, g View) error {
	if err := checkWritable(g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for _, v := range []uint32{binaryMagic, binaryVersion, uint32(g.NumNodes()), uint32(g.NumEdges())} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, e := range g.SortedEdges() {
		if err := binary.Write(bw, binary.LittleEndian, uint32(e.U)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(e.V)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(e.P)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readBinaryHeader consumes the shared magic + version prefix and returns
// the version word.
func readBinaryHeader(br *bufio.Reader) (uint32, error) {
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return 0, fmt.Errorf("%w: truncated header: %v", ErrBadFormat, err)
	}
	if magic != binaryMagic {
		return 0, fmt.Errorf("%w: bad magic %#x", ErrBadFormat, magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return 0, fmt.Errorf("%w: truncated header: %v", ErrBadFormat, err)
	}
	return version, nil
}

// requireEOF verifies the stream ends exactly where the format says it
// should: trailing bytes mean a corrupt or mis-framed file, not a graph.
func requireEOF(br *bufio.Reader) error {
	if _, err := br.ReadByte(); err == nil {
		return fmt.Errorf("%w: trailing data after graph body", ErrBadFormat)
	} else if err != io.EOF {
		return fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return nil
}

// ReadBinary parses the binary container written by WriteBinary (v1) or
// WriteBinaryV2, dispatching on the version word and validating every edge.
// The stream must end cleanly at the end of the graph body; trailing bytes
// are ErrBadFormat.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	version, err := readBinaryHeader(br)
	if err != nil {
		return nil, err
	}
	switch version {
	case binaryVersion:
		return readV1Body(br)
	case binaryVersionV2:
		n, edges, err := readV2Body(br)
		if err != nil {
			return nil, err
		}
		return FromEdges(n, edges)
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
}

// readV1Body parses the version-1 body after the magic/version prefix.
func readV1Body(br *bufio.Reader) (*Graph, error) {
	var header [2]uint32
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("%w: truncated header: %v", ErrBadFormat, err)
		}
	}
	n, m := int(header[0]), int(header[1])
	if n > MaxFileNodes {
		return nil, fmt.Errorf("%w: node count %d exceeds limit", ErrBadFormat, n)
	}
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		return nil, fmt.Errorf("%w: %d edges impossible for %d nodes", ErrBadFormat, m, n)
	}
	g := New(n)
	for i := 0; i < m; i++ {
		var u, v uint32
		var pBits uint64
		if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
			return nil, fmt.Errorf("%w: truncated edge %d: %v", ErrBadFormat, i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("%w: truncated edge %d: %v", ErrBadFormat, i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &pBits); err != nil {
			return nil, fmt.Errorf("%w: truncated edge %d: %v", ErrBadFormat, i, err)
		}
		// Validate against the header's node count, not the global cap:
		// any endpoint >= n can never be a vertex of this graph, and the
		// check also keeps NodeID conversion below from going negative.
		if u >= uint32(n) || v >= uint32(n) {
			return nil, fmt.Errorf("%w: edge %d endpoints (%d,%d) out of range for n=%d", ErrBadFormat, i, u, v, n)
		}
		if err := g.AddEdge(NodeID(u), NodeID(v), math.Float64frombits(pBits)); err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
	}
	if err := requireEOF(br); err != nil {
		return nil, err
	}
	return g, nil
}

// SaveBinaryFile writes g to path in version-1 binary format.
func SaveBinaryFile(path string, g View) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinaryFile reads a binary graph (either version) from path.
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
