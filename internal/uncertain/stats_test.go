package uncertain

import (
	"math"
	"testing"
)

func TestMeanProb(t *testing.T) {
	if got := New(3).MeanProb(); got != 0 {
		t.Fatalf("MeanProb of edgeless graph = %v, want 0", got)
	}
	g := mustGraph(t, 3, Edge{0, 1, 0.2}, Edge{1, 2, 0.8})
	if got := g.MeanProb(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MeanProb = %v, want 0.5", got)
	}
}

func TestExpectedCounts(t *testing.T) {
	g := mustGraph(t, 4, Edge{0, 1, 0.5}, Edge{1, 2, 0.25}, Edge{2, 3, 1})
	if got := g.ExpectedNumEdges(); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("ExpectedNumEdges = %v, want 1.75", got)
	}
	if got := g.ExpectedAvgDegree(); math.Abs(got-2*1.75/4) > 1e-12 {
		t.Fatalf("ExpectedAvgDegree = %v, want %v", got, 2*1.75/4)
	}
	if got := New(0).ExpectedAvgDegree(); got != 0 {
		t.Fatalf("ExpectedAvgDegree on empty graph = %v", got)
	}
}

func TestExpectedDegreesVector(t *testing.T) {
	g := mustGraph(t, 3, Edge{0, 1, 0.5}, Edge{0, 2, 0.25})
	degs := g.ExpectedDegrees()
	want := []float64{0.75, 0.5, 0.25}
	for i := range want {
		if math.Abs(degs[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpectedDegrees[%d] = %v, want %v", i, degs[i], want[i])
		}
	}
	// Must agree with the per-vertex method.
	for v := 0; v < 3; v++ {
		if math.Abs(degs[v]-g.ExpectedDegree(NodeID(v))) > 1e-12 {
			t.Fatalf("vector and per-vertex expected degree disagree at %d", v)
		}
	}
}

func TestDegreeStdDev(t *testing.T) {
	// Star with certain edges: degrees 3,1,1,1 -> mean 1.5,
	// variance (2.25+0.25*3)/4 = 0.75.
	g := mustGraph(t, 4, Edge{0, 1, 1}, Edge{0, 2, 1}, Edge{0, 3, 1})
	want := math.Sqrt(0.75)
	if got := g.DegreeStdDev(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("DegreeStdDev = %v, want %v", got, want)
	}
	if got := New(0).DegreeStdDev(); got != 0 {
		t.Fatalf("DegreeStdDev on empty graph = %v", got)
	}
	// Regular graph: zero spread.
	cyc := mustGraph(t, 3, Edge{0, 1, 1}, Edge{1, 2, 1}, Edge{0, 2, 1})
	if got := cyc.DegreeStdDev(); got > 1e-12 {
		t.Fatalf("DegreeStdDev of regular graph = %v, want 0", got)
	}
}

func TestMaxStructuralDegree(t *testing.T) {
	g := mustGraph(t, 5, Edge{0, 1, 0.1}, Edge{0, 2, 0.1}, Edge{0, 3, 0.1}, Edge{3, 4, 0.9})
	if got := g.MaxStructuralDegree(); got != 3 {
		t.Fatalf("MaxStructuralDegree = %d, want 3", got)
	}
	if got := New(2).MaxStructuralDegree(); got != 0 {
		t.Fatalf("MaxStructuralDegree of edgeless = %d, want 0", got)
	}
}

func TestProbHistogram(t *testing.T) {
	g := mustGraph(t, 5,
		Edge{0, 1, 0.05}, Edge{0, 2, 0.15}, Edge{0, 3, 0.95}, Edge{1, 2, 1})
	h := g.ProbHistogram(10)
	if h[0] != 1 || h[1] != 1 || h[9] != 2 {
		t.Fatalf("ProbHistogram = %v", h)
	}
	var total int
	for _, c := range h {
		total += c
	}
	if total != g.NumEdges() {
		t.Fatalf("histogram total %d != edges %d", total, g.NumEdges())
	}
	// Default bin count on nonpositive input.
	if got := len(g.ProbHistogram(0)); got != 10 {
		t.Fatalf("default bins = %d, want 10", got)
	}
}

func TestStructuralDegreeHistogram(t *testing.T) {
	g := mustGraph(t, 4, Edge{0, 1, 1}, Edge{0, 2, 1}, Edge{0, 3, 1})
	h := g.StructuralDegreeHistogram()
	// Degrees: 3,1,1,1.
	if h[1] != 3 || h[3] != 1 {
		t.Fatalf("StructuralDegreeHistogram = %v", h)
	}
	var total int
	for _, c := range h {
		total += c
	}
	if total != g.NumNodes() {
		t.Fatalf("histogram total %d != nodes %d", total, g.NumNodes())
	}
}
