package uncertain

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand/v2"
	"path/filepath"
	"testing"
)

// randomV2Graph builds a random graph; when quantized is set, every
// probability lies on the q16 grid so the compact column engages.
func randomV2Graph(tb testing.TB, seed uint64, n, wantEdges int, quantized bool) *Graph {
	tb.Helper()
	rng := rand.New(rand.NewPCG(seed, 99))
	g := New(n)
	for g.NumEdges() < wantEdges {
		u := NodeID(rng.IntN(n))
		v := NodeID(rng.IntN(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		p := rng.Float64()
		if quantized {
			p = Quantize16(p)
		}
		g.MustAddEdge(u, v, p)
	}
	return g
}

func TestV2RoundTripQuantized(t *testing.T) {
	g := randomV2Graph(t, 7, 200, 600, true)
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("quantized v2 round trip changed the graph")
	}
}

func TestV2RoundTripExactFloats(t *testing.T) {
	// rng.Float64 values essentially never land on the q16 grid, so this
	// exercises the float64 escape column.
	g := randomV2Graph(t, 8, 150, 400, false)
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("float64 v2 round trip changed the graph")
	}
}

func TestV2RoundTripEdgeCases(t *testing.T) {
	cases := map[string]*Graph{
		"empty":      New(0),
		"no edges":   New(5),
		"single":     mustGraph(t, 2, Edge{0, 1, 0.25}),
		"p zero one": mustGraph(t, 3, Edge{0, 1, 0}, Edge{1, 2, 1}),
		"row zero":   mustGraph(t, 4, Edge{0, 1, 1}, Edge{0, 2, 1}, Edge{0, 3, 1}),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteBinaryV2(&buf, g); err != nil {
				t.Fatal(err)
			}
			h, err := ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(h) {
				t.Fatal("round trip changed the graph")
			}
		})
	}
}

func TestReadCSRMatchesReadBinary(t *testing.T) {
	g := randomV2Graph(t, 9, 100, 300, true)
	for name, write := range map[string]func(*bytes.Buffer) error{
		"v1": func(b *bytes.Buffer) error { return WriteBinary(b, g) },
		"v2": func(b *bytes.Buffer) error { return WriteBinaryV2(b, g) },
	} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := write(&buf); err != nil {
				t.Fatal(err)
			}
			c, err := ReadCSR(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			back, err := c.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(back) {
				t.Fatal("CSR decode disagrees with the source graph")
			}
		})
	}
}

func TestV2StreamingWriterMatchesWriteBinaryV2(t *testing.T) {
	g := randomV2Graph(t, 10, 80, 200, true)
	var whole, streamed bytes.Buffer
	if err := WriteBinaryV2(&whole, g); err != nil {
		t.Fatal(err)
	}
	vw, err := NewV2Writer(&streamed, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.SortedEdges() {
		if err := vw.AddEdge(e.U, e.V, e.P); err != nil {
			t.Fatal(err)
		}
	}
	if err := vw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole.Bytes(), streamed.Bytes()) {
		t.Fatal("streaming writer and whole-graph writer should emit identical bytes")
	}
}

func TestV2WriterRejectsBadEdges(t *testing.T) {
	newW := func(t *testing.T) *V2Writer {
		vw, err := NewV2Writer(&bytes.Buffer{}, 10)
		if err != nil {
			t.Fatal(err)
		}
		return vw
	}
	t.Run("unsorted", func(t *testing.T) {
		vw := newW(t)
		if err := vw.AddEdge(3, 4, 0.5); err != nil {
			t.Fatal(err)
		}
		if err := vw.AddEdge(1, 2, 0.5); err == nil {
			t.Fatal("out-of-order edge should error")
		}
	})
	t.Run("duplicate", func(t *testing.T) {
		vw := newW(t)
		if err := vw.AddEdge(3, 4, 0.5); err != nil {
			t.Fatal(err)
		}
		if err := vw.AddEdge(3, 4, 0.5); err == nil {
			t.Fatal("duplicate edge should error")
		}
	})
	t.Run("non canonical", func(t *testing.T) {
		vw := newW(t)
		if err := vw.AddEdge(4, 3, 0.5); err == nil {
			t.Fatal("u >= v should error")
		}
	})
	t.Run("out of range", func(t *testing.T) {
		vw := newW(t)
		if err := vw.AddEdge(3, 10, 0.5); !errors.Is(err, ErrNodeOutOfRange) {
			t.Fatalf("want ErrNodeOutOfRange, got %v", err)
		}
	})
	t.Run("bad probability", func(t *testing.T) {
		vw := newW(t)
		if err := vw.AddEdge(3, 4, 1.5); !errors.Is(err, ErrBadProbability) {
			t.Fatalf("want ErrBadProbability, got %v", err)
		}
	})
}

// v2Section frames a section the way the writer does, for hand-building
// corrupt and exotic files in tests.
func v2Section(id uint32, payload []byte) []byte {
	var buf bytes.Buffer
	if err := writeSection(&buf, id, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func v2Container(sections ...[]byte) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint32(out[0:4], binaryMagic)
	binary.LittleEndian.PutUint32(out[4:8], binaryVersionV2)
	for _, s := range sections {
		out = append(out, s...)
	}
	return out
}

// metaPayload encodes a META section payload.
func metaPayload(n, m uint64, probEnc byte) []byte {
	p := binary.AppendUvarint(nil, n)
	p = binary.AppendUvarint(p, m)
	return append(p, probEnc)
}

func TestV2SkipsUnknownSections(t *testing.T) {
	g := mustGraph(t, 3, Edge{0, 1, Quantize16(0.5)}, Edge{1, 2, Quantize16(0.25)})
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	// Splice an unknown section just before END! (the last 16 header
	// bytes, since END! has no payload).
	data := buf.Bytes()
	endOff := len(data) - 16
	spliced := append([]byte{}, data[:endOff]...)
	spliced = append(spliced, v2Section(0x41525458 /* "XTRA" */, []byte("future payload"))...)
	spliced = append(spliced, data[endOff:]...)
	h, err := ReadBinary(bytes.NewReader(spliced))
	if err != nil {
		t.Fatalf("unknown section should be skipped, got %v", err)
	}
	if !g.Equal(h) {
		t.Fatal("graph changed after skipping unknown section")
	}
}

func TestV2RejectsCorruptFiles(t *testing.T) {
	g := randomV2Graph(t, 11, 40, 100, true)
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	mutate := func(f func([]byte) []byte) []byte {
		return f(append([]byte{}, valid...))
	}
	cases := map[string][]byte{
		"flipped payload byte": mutate(func(b []byte) []byte {
			b[8+16] ^= 0x40 // first byte of META payload; CRC now mismatches
			return b
		}),
		"flipped checksum": mutate(func(b []byte) []byte {
			b[8+12] ^= 0x01 // META section CRC field
			return b
		}),
		"truncated section": mutate(func(b []byte) []byte {
			return b[:len(b)-20] // cut into the last sections
		}),
		"truncated header": mutate(func(b []byte) []byte {
			return b[:8+7] // cut inside the first section header
		}),
		"trailing garbage": mutate(func(b []byte) []byte {
			return append(b, 0xFF)
		}),
		"first section not META": v2Container(
			v2Section(secEDGE, nil),
		),
		"duplicate META": v2Container(
			v2Section(secMETA, metaPayload(3, 0, probEncQ16)),
			v2Section(secMETA, metaPayload(3, 0, probEncQ16)),
		),
		"bad varint in EDGE": v2Container(
			v2Section(secMETA, metaPayload(3, 1, probEncQ16)),
			v2Section(secEDGE, []byte{0x80}), // unterminated uvarint
		),
		"EDGE trailing bytes": v2Container(
			v2Section(secMETA, metaPayload(3, 1, probEncQ16)),
			v2Section(secEDGE, []byte{0, 0, 0}), // one edge plus a stray byte
		),
		"endpoint out of range": v2Container(
			v2Section(secMETA, metaPayload(3, 1, probEncQ16)),
			v2Section(secEDGE, binary.AppendUvarint(binary.AppendUvarint(nil, 0), 7)), // (0,8) with n=3
		),
		"impossible edge count": v2Container(
			v2Section(secMETA, metaPayload(2, 9, probEncQ16)),
		),
		"oversized node count": v2Container(
			v2Section(secMETA, metaPayload(MaxFileNodes+1, 0, probEncQ16)),
		),
		"unknown prob encoding": v2Container(
			v2Section(secMETA, metaPayload(3, 0, 7)),
		),
		"PROB before EDGE": v2Container(
			v2Section(secMETA, metaPayload(3, 1, probEncQ16)),
			v2Section(secPROB, []byte{0, 0}),
		),
		"PROB length mismatch": v2Container(
			v2Section(secMETA, metaPayload(3, 1, probEncQ16)),
			v2Section(secEDGE, []byte{0, 0}), // edge (0,1)
			v2Section(secPROB, []byte{0, 0, 0}),
		),
		"prob outside [0,1]": v2Container(
			v2Section(secMETA, metaPayload(3, 1, probEncFloat64)),
			v2Section(secEDGE, []byte{0, 0}),
			v2Section(secPROB, binary.LittleEndian.AppendUint64(nil, math.Float64bits(2.0))),
		),
		"missing PROB": v2Container(
			v2Section(secMETA, metaPayload(3, 1, probEncQ16)),
			v2Section(secEDGE, []byte{0, 0}),
			v2Section(secEND, nil),
		),
		"END with payload": v2Container(
			v2Section(secMETA, metaPayload(3, 0, probEncQ16)),
			v2Section(secEDGE, nil),
			v2Section(secPROB, nil),
			v2Section(secEND, []byte{1}),
		),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
				t.Fatalf("want ErrBadFormat, got %v", err)
			}
			if _, err := ReadCSR(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
				t.Fatalf("ReadCSR: want ErrBadFormat, got %v", err)
			}
		})
	}
}

func TestV2SmallerThanV1AndTSV(t *testing.T) {
	g := randomV2Graph(t, 12, 500, 2000, true)
	var tsv, v1, v2 bytes.Buffer
	if err := WriteTSV(&tsv, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&v1, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryV2(&v2, g); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() {
		t.Fatalf("v2 (%d bytes) should beat v1 (%d bytes)", v2.Len(), v1.Len())
	}
	if 3*v2.Len() >= tsv.Len() {
		t.Fatalf("v2 (%d bytes) should be at least 3x smaller than TSV (%d bytes)", v2.Len(), tsv.Len())
	}
}

func TestLoadFileAndLoadCSRAutoDetectV2(t *testing.T) {
	g := randomV2Graph(t, 13, 50, 120, true)
	dir := t.TempDir()
	paths := map[string]func(string) error{
		"g.tsv": func(p string) error { return SaveFile(p, g) },
		"g.v1":  func(p string) error { return SaveBinaryFile(p, g) },
		"g.v2":  func(p string) error { return SaveBinaryV2File(p, g) },
	}
	for name, save := range paths {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(dir, name)
			if err := save(p); err != nil {
				t.Fatal(err)
			}
			fromFile, err := LoadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(fromFile) {
				t.Fatal("LoadFile changed the graph")
			}
			c, err := LoadCSR(p)
			if err != nil {
				t.Fatal(err)
			}
			back, err := c.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(back) {
				t.Fatal("LoadCSR changed the graph")
			}
		})
	}
}

func TestQuantize16(t *testing.T) {
	for _, p := range []float64{0, 1, 0.5, 0.123456, 1.0 / 65535, 32767.0 / 65535} {
		q := Quantize16(p)
		if math.Abs(q-p) > 1.0/131070+1e-15 {
			t.Fatalf("Quantize16(%v) = %v drifted too far", p, q)
		}
		if Quantize16(q) != q {
			t.Fatalf("Quantize16 should be idempotent at %v", q)
		}
	}
}
