package uncertain

import (
	"bytes"
	"io"
	"math/rand/v2"
	"sync"
	"testing"
)

// The format benchmarks measure, on one shared 100k-edge graph, what each
// container format costs to decode and how many bytes it occupies at rest.
// The probabilities lie on the q16 grid (the profile genug's discrete and
// quantized pipelines produce), so the v2 compact probability column
// engages — the configuration the ≥5x-decode / ≥3x-size gates in
// scripts/check.sh are written against. Every benchmark reports
// bytes_on_disk so BENCH_format.json tracks size alongside speed.
const (
	fmtBenchNodes = 20_000
	fmtBenchEdges = 100_000
)

var fmtBench struct {
	once        sync.Once
	tsv, v1, v2 []byte
}

func fmtBenchData(tb testing.TB) (tsv, v1, v2 []byte) {
	tb.Helper()
	fmtBench.once.Do(func() {
		g := randomV2Graph(tb, 0xF0, fmtBenchNodes, fmtBenchEdges, true)
		var bTSV, bV1, bV2 bytes.Buffer
		if err := WriteTSV(&bTSV, g); err != nil {
			tb.Fatal(err)
		}
		if err := WriteBinary(&bV1, g); err != nil {
			tb.Fatal(err)
		}
		if err := WriteBinaryV2(&bV2, g); err != nil {
			tb.Fatal(err)
		}
		fmtBench.tsv, fmtBench.v1, fmtBench.v2 = bTSV.Bytes(), bV1.Bytes(), bV2.Bytes()
	})
	if fmtBench.tsv == nil {
		tb.Fatal("format benchmark corpus failed to build")
	}
	return fmtBench.tsv, fmtBench.v1, fmtBench.v2
}

// BenchmarkFormatDecode decodes the same graph from each format. The
// tsv/v1/v2 cases land on the slice-backed *Graph; v2-csr decodes straight
// into the packed read-only view.
func BenchmarkFormatDecode(b *testing.B) {
	tsv, v1, v2 := fmtBenchData(b)
	cases := []struct {
		name   string
		data   []byte
		decode func(r io.Reader) (View, error)
	}{
		{"tsv", tsv, func(r io.Reader) (View, error) { return ReadTSV(r) }},
		{"v1", v1, func(r io.Reader) (View, error) { return ReadBinary(r) }},
		{"v2", v2, func(r io.Reader) (View, error) { return ReadBinary(r) }},
		{"v2-csr", v2, func(r io.Reader) (View, error) { return ReadCSR(r) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportMetric(float64(len(c.data)), "bytes_on_disk")
			b.SetBytes(int64(len(c.data)))
			for i := 0; i < b.N; i++ {
				g, err := c.decode(bytes.NewReader(c.data))
				if err != nil {
					b.Fatal(err)
				}
				if g.NumEdges() != fmtBenchEdges {
					b.Fatalf("decoded %d edges, want %d", g.NumEdges(), fmtBenchEdges)
				}
			}
		})
	}
}

// BenchmarkFormatSampleWorld draws possible worlds from a freshly decoded
// v2 graph through both representations: the slice-backed graph and the
// CSR view. Equal numbers here are the perf half of the bit-identity
// claim — the packed view costs nothing on the sampling hot path.
func BenchmarkFormatSampleWorld(b *testing.B) {
	_, _, v2 := fmtBenchData(b)
	g, err := ReadBinary(bytes.NewReader(v2))
	if err != nil {
		b.Fatal(err)
	}
	c, err := ReadCSR(bytes.NewReader(v2))
	if err != nil {
		b.Fatal(err)
	}
	for _, src := range []struct {
		name string
		s    *WorldSampler
	}{{"graph", g.Sampler()}, {"csr", c.Sampler()}} {
		b.Run(src.name, func(b *testing.B) {
			var w World
			var pcg rand.PCG
			src.s.SampleInto(&w, &pcg) // warm the bitset
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pcg.Seed(0xBEEF, uint64(i))
				src.s.SampleInto(&w, &pcg)
			}
		})
	}
}
