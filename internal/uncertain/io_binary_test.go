package uncertain

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := mustGraph(t, 5, Edge{0, 1, 0.5}, Edge{2, 3, 0.125}, Edge{0, 4, 1}, Edge{1, 4, 0})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("binary round trip changed the graph")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := mustGraph(t, 3, Edge{0, 2, 0.75})
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	h, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("file round trip changed the graph")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     {1, 2, 3},
		"bad magic": append([]byte{0, 0, 0, 0}, make([]byte, 12)...),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
				t.Fatalf("want ErrBadFormat, got %v", err)
			}
		})
	}
}

func TestBinaryRejectsBadVersion(t *testing.T) {
	g := mustGraph(t, 2, Edge{0, 1, 0.5})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // corrupt version
	if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestBinaryRejectsTruncatedEdges(t *testing.T) {
	g := mustGraph(t, 3, Edge{0, 1, 0.5}, Edge{1, 2, 0.5})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-7] // cut into the last edge
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated edge data should error")
	}
}

func TestBinaryRejectsImpossibleCounts(t *testing.T) {
	// Header says 2 nodes, 9 edges: impossible for a simple graph.
	var buf bytes.Buffer
	g := mustGraph(t, 2, Edge{0, 1, 0.5})
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[12] = 9 // edge count low byte
	if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

// TestWriteBinaryRejectsOversizedGraph locks the writer-side count guard:
// a graph with more than MaxFileNodes vertices used to be written with its
// node count silently truncated through the uint32 header field, producing
// a file ReadBinary refuses (or worse, mis-frames). The writer must refuse
// up front instead. The graph is built as a bare struct literal — the
// guard only needs the counts, and New would allocate adjacency slices for
// 16M+ vertices.
func TestWriteBinaryRejectsOversizedGraph(t *testing.T) {
	g := &Graph{edgeCore: edgeCore{n: MaxFileNodes + 1}}
	if err := WriteBinary(&bytes.Buffer{}, g); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("WriteBinary on %d nodes: want ErrTooLarge, got %v", MaxFileNodes+1, err)
	}
	if err := WriteBinaryV2(&bytes.Buffer{}, g); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("WriteBinaryV2 on %d nodes: want ErrTooLarge, got %v", MaxFileNodes+1, err)
	}
	if _, err := NewV2Writer(&bytes.Buffer{}, MaxFileNodes+1); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("NewV2Writer on %d nodes: want ErrTooLarge, got %v", MaxFileNodes+1, err)
	}
}

// TestBinaryRejectsTrailingGarbage locks the clean-EOF contract: the v1
// reader used to stop after m edges and silently ignore whatever followed,
// so a mis-framed or corrupt-header file could parse as a smaller graph.
func TestBinaryRejectsTrailingGarbage(t *testing.T) {
	g := mustGraph(t, 3, Edge{0, 1, 0.5}, Edge{1, 2, 0.25})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := append(buf.Bytes(), 0xAB)
	if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("trailing byte: want ErrBadFormat, got %v", err)
	}
}

// TestBinaryRejectsEndpointBeyondHeaderN locks the endpoint guard: the v1
// reader used to compare endpoints against the global MaxFileNodes cap
// instead of the header's node count, so an endpoint in (n, MaxFileNodes]
// fell through to AddEdge and surfaced as a construction error rather
// than ErrBadFormat.
func TestBinaryRejectsEndpointBeyondHeaderN(t *testing.T) {
	// Hand-build a v1 file: n=3, m=1, edge (1, 5): endpoint 5 >= n.
	var buf bytes.Buffer
	for _, v := range []uint32{binaryMagic, binaryVersion, 3, 1} {
		if err := writeU32(&buf, v); err != nil {
			t.Fatal(err)
		}
	}
	writeU32(&buf, 1)
	writeU32(&buf, 5)
	var pb [8]byte
	buf.Write(pb[:]) // p = 0.0
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("endpoint 5 with n=3: want ErrBadFormat, got %v", err)
	}
}

func writeU32(buf *bytes.Buffer, v uint32) error {
	var b [4]byte
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	_, err := buf.Write(b[:])
	return err
}

func TestBinaryQuickRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		n := 2 + rng.IntN(40)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u := NodeID(rng.IntN(n))
			v := NodeID(rng.IntN(n))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v, rng.Float64())
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		h, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return g.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySmallerThanTSV(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	g := New(500)
	for g.NumEdges() < 2000 {
		u := NodeID(rng.IntN(500))
		v := NodeID(rng.IntN(500))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, rng.Float64())
	}
	var tsv, bin bytes.Buffer
	if err := WriteTSV(&tsv, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= tsv.Len() {
		t.Fatalf("binary (%d bytes) should beat TSV (%d bytes)", bin.Len(), tsv.Len())
	}
}

func TestLoadFileAutoDetectsBinary(t *testing.T) {
	g := mustGraph(t, 4, Edge{0, 1, 0.5}, Edge{2, 3, 0.25})
	dir := t.TempDir()
	binPath := filepath.Join(dir, "g.bin")
	tsvPath := filepath.Join(dir, "g.tsv")
	if err := SaveBinaryFile(binPath, g); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(tsvPath, g); err != nil {
		t.Fatal(err)
	}
	fromBin, err := LoadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	fromTSV, err := LoadFile(tsvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !fromBin.Equal(g) || !fromTSV.Equal(g) {
		t.Fatal("auto-detected loads should match the original")
	}
}
