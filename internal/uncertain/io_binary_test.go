package uncertain

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := mustGraph(t, 5, Edge{0, 1, 0.5}, Edge{2, 3, 0.125}, Edge{0, 4, 1}, Edge{1, 4, 0})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("binary round trip changed the graph")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := mustGraph(t, 3, Edge{0, 2, 0.75})
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	h, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("file round trip changed the graph")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     {1, 2, 3},
		"bad magic": append([]byte{0, 0, 0, 0}, make([]byte, 12)...),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
				t.Fatalf("want ErrBadFormat, got %v", err)
			}
		})
	}
}

func TestBinaryRejectsBadVersion(t *testing.T) {
	g := mustGraph(t, 2, Edge{0, 1, 0.5})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // corrupt version
	if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestBinaryRejectsTruncatedEdges(t *testing.T) {
	g := mustGraph(t, 3, Edge{0, 1, 0.5}, Edge{1, 2, 0.5})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-7] // cut into the last edge
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated edge data should error")
	}
}

func TestBinaryRejectsImpossibleCounts(t *testing.T) {
	// Header says 2 nodes, 9 edges: impossible for a simple graph.
	var buf bytes.Buffer
	g := mustGraph(t, 2, Edge{0, 1, 0.5})
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[12] = 9 // edge count low byte
	if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestBinaryQuickRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		n := 2 + rng.IntN(40)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u := NodeID(rng.IntN(n))
			v := NodeID(rng.IntN(n))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v, rng.Float64())
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		h, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return g.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySmallerThanTSV(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	g := New(500)
	for g.NumEdges() < 2000 {
		u := NodeID(rng.IntN(500))
		v := NodeID(rng.IntN(500))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, rng.Float64())
	}
	var tsv, bin bytes.Buffer
	if err := WriteTSV(&tsv, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= tsv.Len() {
		t.Fatalf("binary (%d bytes) should beat TSV (%d bytes)", bin.Len(), tsv.Len())
	}
}

func TestLoadFileAutoDetectsBinary(t *testing.T) {
	g := mustGraph(t, 4, Edge{0, 1, 0.5}, Edge{2, 3, 0.25})
	dir := t.TempDir()
	binPath := filepath.Join(dir, "g.bin")
	tsvPath := filepath.Join(dir, "g.tsv")
	if err := SaveBinaryFile(binPath, g); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(tsvPath, g); err != nil {
		t.Fatal(err)
	}
	fromBin, err := LoadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	fromTSV, err := LoadFile(tsvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !fromBin.Equal(g) || !fromTSV.Equal(g) {
		t.Fatal("auto-detected loads should match the original")
	}
}
