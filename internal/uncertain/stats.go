package uncertain

// MeanProb returns the average edge probability, or 0 for an edgeless
// graph.
func (g *Graph) MeanProb() float64 { return meanProb(g.edges) }

// ExpectedNumEdges returns E[|E(world)|] = sum of edge probabilities.
func (g *Graph) ExpectedNumEdges() float64 { return expectedNumEdges(g.edges) }

// ExpectedAvgDegree returns E[average degree] = 2*sum(p)/|V|.
func (g *Graph) ExpectedAvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * g.ExpectedNumEdges() / float64(g.n)
}

// ExpectedDegrees returns the expected degree of every vertex.
func (g *Graph) ExpectedDegrees() []float64 {
	out := make([]float64, g.n)
	for _, e := range g.edges {
		out[e.U] += e.P
		out[e.V] += e.P
	}
	return out
}

// DegreeStdDev returns the standard deviation of the expected-degree
// property across vertices. Used as the kernel bandwidth theta = sigma_G of
// the uniqueness score (Definition 4).
func (g *Graph) DegreeStdDev() float64 { return degreeStdDev(g.n, g.ExpectedDegrees()) }

// MaxStructuralDegree returns the maximum structural degree over vertices.
func (g *Graph) MaxStructuralDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// ProbHistogram buckets the edge probabilities into `bins` equal-width bins
// over [0,1] and returns the per-bin counts. p = 1 lands in the last bin.
func (g *Graph) ProbHistogram(bins int) []int { return probHistogram(g.edges, bins) }

// StructuralDegreeHistogram returns counts[d] = number of vertices with
// structural degree d.
func (g *Graph) StructuralDegreeHistogram() []int {
	h := make([]int, g.MaxStructuralDegree()+1)
	for v := 0; v < g.n; v++ {
		h[len(g.adj[v])]++
	}
	return h
}
