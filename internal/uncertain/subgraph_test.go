package uncertain

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1, 0.5}, {1, 2, 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.NumNodes() != 3 {
		t.Fatalf("shape: %v", g)
	}
	if _, err := FromEdges(2, []Edge{{0, 5, 0.5}}); err == nil {
		t.Fatal("invalid edge should propagate")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := mustGraph(t, 5,
		Edge{0, 1, 0.5}, Edge{1, 2, 0.25}, Edge{2, 3, 0.75}, Edge{3, 4, 0.1}, Edge{0, 4, 0.9})
	sub, back, err := g.InducedSubgraph([]NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 {
		t.Fatalf("nodes = %d", sub.NumNodes())
	}
	// Edges inside {1,2,3}: (1,2) and (2,3) -> relabeled (0,1), (1,2).
	if sub.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", sub.NumEdges())
	}
	if p, _ := sub.Prob(0, 1); p != 0.25 {
		t.Fatalf("sub prob(0,1) = %v, want 0.25", p)
	}
	if p, _ := sub.Prob(1, 2); p != 0.75 {
		t.Fatalf("sub prob(1,2) = %v, want 0.75", p)
	}
	if back[0] != 1 || back[1] != 2 || back[2] != 3 {
		t.Fatalf("back mapping = %v", back)
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := mustGraph(t, 3, Edge{0, 1, 0.5})
	if _, _, err := g.InducedSubgraph([]NodeID{0, 7}); err == nil {
		t.Fatal("out-of-range vertex should error")
	}
	if _, _, err := g.InducedSubgraph([]NodeID{0, 0}); err == nil {
		t.Fatal("duplicate vertex should error")
	}
	empty, _, err := g.InducedSubgraph(nil)
	if err != nil || empty.NumNodes() != 0 {
		t.Fatalf("empty induced set: %v, %v", empty, err)
	}
}

func TestInducedSubgraphPreservesExpectedDegreesQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := 4 + rng.IntN(20)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u := NodeID(rng.IntN(n))
			v := NodeID(rng.IntN(n))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v, rng.Float64())
		}
		// Induce on ALL vertices: must reproduce the graph exactly.
		all := make([]NodeID, n)
		for i := range all {
			all[i] = NodeID(i)
		}
		sub, _, err := g.InducedSubgraph(all)
		if err != nil {
			return false
		}
		return sub.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdWorld(t *testing.T) {
	g := mustGraph(t, 4, Edge{0, 1, 0.9}, Edge{1, 2, 0.5}, Edge{2, 3, 0.1})
	w := g.ThresholdWorld(0.5)
	if !w.Present(0) || !w.Present(1) || w.Present(2) {
		t.Fatalf("threshold 0.5: %v %v %v", w.Present(0), w.Present(1), w.Present(2))
	}
	if got := g.ThresholdWorld(0).NumEdges(); got != 3 {
		t.Fatalf("threshold 0 should include all edges, got %d", got)
	}
	if got := g.ThresholdWorld(1.1).NumEdges(); got != 0 {
		t.Fatalf("threshold > 1 should include none, got %d", got)
	}
}

func TestSupportComponents(t *testing.T) {
	g := mustGraph(t, 7,
		Edge{0, 1, 0.2}, Edge{1, 2, 0.9}, // component {0,1,2}
		Edge{3, 4, 0.1}, // component {3,4}
		Edge{5, 6, 0},   // p=0: no support edge
	)
	comps := g.SupportComponents()
	if len(comps) != 4 {
		t.Fatalf("want components {0,1,2},{3,4},{5},{6}; got %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("largest component = %v", comps[0])
	}
	if len(comps[1]) != 2 {
		t.Fatalf("second component = %v", comps[1])
	}
}
