package uncertain

import (
	"errors"
	"math"
	"sort"
	"testing"
)

func mustGraph(t *testing.T, n int, edges ...Edge) *Graph {
	t.Helper()
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V, e.P); err != nil {
			t.Fatalf("AddEdge(%d,%d,%v): %v", e.U, e.V, e.P, err)
		}
	}
	return g
}

func TestNewEmpty(t *testing.T) {
	g := New(3)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	if New(-5).NumNodes() != 0 {
		t.Fatal("negative n should clamp to 0")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	tests := []struct {
		name    string
		u, v    NodeID
		p       float64
		wantErr error
	}{
		{"self loop", 1, 1, 0.5, ErrSelfLoop},
		{"u out of range", -1, 0, 0.5, ErrNodeOutOfRange},
		{"v out of range", 0, 3, 0.5, ErrNodeOutOfRange},
		{"negative prob", 0, 1, -0.1, ErrBadProbability},
		{"prob above one", 0, 1, 1.1, ErrBadProbability},
		{"NaN prob", 0, 1, math.NaN(), ErrBadProbability},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.u, tt.v, tt.p); !errors.Is(err, tt.wantErr) {
				t.Fatalf("AddEdge = %v, want %v", err, tt.wantErr)
			}
		})
	}
	if g.NumEdges() != 0 {
		t.Fatal("failed AddEdge calls must not mutate the graph")
	}
}

func TestAddEdgeDuplicate(t *testing.T) {
	g := mustGraph(t, 3, Edge{0, 1, 0.5})
	if err := g.AddEdge(0, 1, 0.3); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("duplicate same order: %v", err)
	}
	if err := g.AddEdge(1, 0, 0.3); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("duplicate reversed order: %v", err)
	}
}

func TestEdgeBoundaryProbabilities(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 1, 0); err != nil {
		t.Fatalf("p=0 should be legal: %v", err)
	}
	g2 := New(2)
	if err := g2.AddEdge(0, 1, 1); err != nil {
		t.Fatalf("p=1 should be legal: %v", err)
	}
}

func TestEdgeCanonicalOrder(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(3, 1, 0.7); err != nil {
		t.Fatal(err)
	}
	e := g.Edge(0)
	if e.U != 1 || e.V != 3 {
		t.Fatalf("edge stored as (%d,%d), want canonical (1,3)", e.U, e.V)
	}
}

func TestLookups(t *testing.T) {
	g := mustGraph(t, 4, Edge{0, 1, 0.5}, Edge{1, 2, 0.25})
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("HasEdge(0,2) should be false")
	}
	if got := g.EdgeIndex(2, 1); got != 1 {
		t.Fatalf("EdgeIndex(2,1) = %d, want 1", got)
	}
	if got := g.EdgeIndex(0, 3); got != -1 {
		t.Fatalf("EdgeIndex missing = %d, want -1", got)
	}
	p, err := g.Prob(1, 2)
	if err != nil || p != 0.25 {
		t.Fatalf("Prob(1,2) = %v, %v", p, err)
	}
	if _, err := g.Prob(0, 3); !errors.Is(err, ErrNoSuchEdge) {
		t.Fatalf("Prob missing edge: %v", err)
	}
}

func TestSetProb(t *testing.T) {
	g := mustGraph(t, 2, Edge{0, 1, 0.5})
	if err := g.SetProb(0, 0.9); err != nil {
		t.Fatal(err)
	}
	if p, _ := g.Prob(0, 1); p != 0.9 {
		t.Fatalf("Prob after SetProb = %v, want 0.9", p)
	}
	if err := g.SetProb(5, 0.1); !errors.Is(err, ErrNoSuchEdge) {
		t.Fatalf("SetProb bad index: %v", err)
	}
	if err := g.SetProb(0, 2); !errors.Is(err, ErrBadProbability) {
		t.Fatalf("SetProb bad prob: %v", err)
	}
	if err := g.SetProb(0, math.NaN()); !errors.Is(err, ErrBadProbability) {
		t.Fatalf("SetProb NaN: %v", err)
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := mustGraph(t, 4, Edge{0, 1, 0.5}, Edge{0, 2, 0.25}, Edge{0, 3, 1})
	if g.Degree(0) != 3 {
		t.Fatalf("Degree(0) = %d, want 3", g.Degree(0))
	}
	if g.Degree(3) != 1 {
		t.Fatalf("Degree(3) = %d, want 1", g.Degree(3))
	}
	if got := g.ExpectedDegree(0); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("ExpectedDegree(0) = %v, want 1.75", got)
	}
	nbrs := g.Neighbors(0, nil)
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	if len(nbrs) != 3 || nbrs[0] != 1 || nbrs[1] != 2 || nbrs[2] != 3 {
		t.Fatalf("Neighbors(0) = %v", nbrs)
	}
	probs := g.IncidentProbs(0, nil)
	var sum float64
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1.75) > 1e-12 {
		t.Fatalf("IncidentProbs sum = %v, want 1.75", sum)
	}
	idx := g.IncidentEdges(3, nil)
	if len(idx) != 1 || idx[0] != 2 {
		t.Fatalf("IncidentEdges(3) = %v", idx)
	}
}

func TestNeighborsAppendsToBuffer(t *testing.T) {
	g := mustGraph(t, 3, Edge{0, 1, 0.5})
	buf := []NodeID{99}
	buf = g.Neighbors(0, buf)
	if len(buf) != 2 || buf[0] != 99 || buf[1] != 1 {
		t.Fatalf("Neighbors should append, got %v", buf)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := mustGraph(t, 3, Edge{0, 1, 0.5}, Edge{1, 2, 0.25})
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone should equal original")
	}
	if err := c.SetProb(0, 0.9); err != nil {
		t.Fatal(err)
	}
	if p, _ := g.Prob(0, 1); p != 0.5 {
		t.Fatal("mutating clone leaked into original")
	}
	if err := c.AddEdge(0, 2, 0.1); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 2) {
		t.Fatal("adding to clone leaked into original")
	}
}

func TestEqual(t *testing.T) {
	a := mustGraph(t, 3, Edge{0, 1, 0.5})
	b := mustGraph(t, 3, Edge{1, 0, 0.5})
	if !a.Equal(b) {
		t.Fatal("graphs with same edges should be equal regardless of insertion order")
	}
	c := mustGraph(t, 3, Edge{0, 1, 0.6})
	if a.Equal(c) {
		t.Fatal("different probability should break equality")
	}
	d := mustGraph(t, 4, Edge{0, 1, 0.5})
	if a.Equal(d) {
		t.Fatal("different node count should break equality")
	}
	e := mustGraph(t, 3, Edge{0, 2, 0.5})
	if a.Equal(e) {
		t.Fatal("different edge set should break equality")
	}
}

func TestSortedEdges(t *testing.T) {
	g := mustGraph(t, 4, Edge{2, 3, 0.1}, Edge{0, 1, 0.2}, Edge{0, 3, 0.3})
	es := g.SortedEdges()
	want := []Edge{{0, 1, 0.2}, {0, 3, 0.3}, {2, 3, 0.1}}
	for i, e := range es {
		if e != want[i] {
			t.Fatalf("SortedEdges[%d] = %v, want %v", i, e, want[i])
		}
	}
}

func TestMustAddEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddEdge should panic on invalid input")
		}
	}()
	New(2).MustAddEdge(0, 0, 0.5)
}

func TestStringSummary(t *testing.T) {
	g := mustGraph(t, 3, Edge{0, 1, 0.5})
	if s := g.String(); s == "" {
		t.Fatal("String should not be empty")
	}
}
