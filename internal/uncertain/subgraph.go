package uncertain

import "fmt"

// FromEdges builds a graph over n vertices from an edge list; a
// convenience constructor for literals and loaders.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V, e.P); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// relabeled densely 0..len(nodes)-1 in the given order, plus the mapping
// from new ids back to the original ids. Duplicate or out-of-range
// vertices are rejected.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, []NodeID, error) {
	newID := make(map[NodeID]NodeID, len(nodes))
	back := make([]NodeID, len(nodes))
	for i, v := range nodes {
		if v < 0 || int(v) >= g.n {
			return nil, nil, fmt.Errorf("%w: %d", ErrNodeOutOfRange, v)
		}
		if _, dup := newID[v]; dup {
			return nil, nil, fmt.Errorf("uncertain: duplicate vertex %d in induced set", v)
		}
		newID[v] = NodeID(i)
		back[i] = v
	}
	sub := New(len(nodes))
	for _, e := range g.edges {
		u, okU := newID[e.U]
		v, okV := newID[e.V]
		if okU && okV {
			if err := sub.AddEdge(u, v, e.P); err != nil {
				return nil, nil, err
			}
		}
	}
	return sub, back, nil
}

// ThresholdWorld returns the deterministic world containing exactly the
// edges with probability >= tau. ThresholdWorld(0.5) is the most probable
// world; ThresholdWorld(~0) approaches the support graph.
func (g *Graph) ThresholdWorld(tau float64) *World {
	w := &World{src: g, core: &g.edgeCore, bits: NewBitset(len(g.edges))}
	for i, e := range g.edges {
		if e.P >= tau {
			w.bits.Set(i)
			w.m++
		}
	}
	return w
}

// SupportComponents returns the connected components of the support graph
// (every edge with p > 0 counted as present), largest first. Useful for
// understanding what reliability can ever connect.
func (g *Graph) SupportComponents() [][]NodeID {
	w := &World{src: g, core: &g.edgeCore, bits: NewBitset(len(g.edges))}
	for i, e := range g.edges {
		if e.P > 0 {
			w.bits.Set(i)
			w.m++
		}
	}
	labels := w.ComponentLabels()
	groups := make(map[int32][]NodeID)
	for v, l := range labels {
		groups[l] = append(groups[l], NodeID(v))
	}
	out := make([][]NodeID, 0, len(groups))
	for _, members := range groups {
		out = append(out, members)
	}
	// Largest first; tie-break on smallest member for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if len(b) > len(a) || (len(b) == len(a) && b[0] < a[0]) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}
