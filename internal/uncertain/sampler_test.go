package uncertain

import (
	"math/rand/v2"
	"testing"
)

// mixedGraph covers every sampler class: impossible (p=0), certain (p=1),
// high-probability per-edge draws, and a low-probability class populous
// enough (>= geomMinRun edges sharing one p < geomCut) to be skip-sampled.
func mixedGraph() *Graph {
	g := New(40)
	g.MustAddEdge(0, 1, 0)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 0.8)
	g.MustAddEdge(3, 4, 0.5)
	for i := 0; i < 20; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+20), 0.05)
	}
	for i := 5; i < 15; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), 0.6)
	}
	return g
}

// TestSamplerMatchesSampleWorld pins the determinism contract: from the
// same PCG state, SampleInto draws the bit-for-bit identical world to
// SampleWorld through the rand.Rand wrapper — one draw per edge with
// 0 < p < 1, in edge-index order.
func TestSamplerMatchesSampleWorld(t *testing.T) {
	g := mixedGraph()
	s := g.Sampler()
	var w World
	var pcg rand.PCG
	for i := uint64(0); i < 200; i++ {
		pcg.Seed(42, i)
		s.SampleInto(&w, &pcg)
		want := g.SampleWorld(rand.New(rand.NewPCG(42, i)))
		if w.NumEdges() != want.NumEdges() {
			t.Fatalf("seed stream %d: %d edges, SampleWorld drew %d", i, w.NumEdges(), want.NumEdges())
		}
		for j := 0; j < g.NumEdges(); j++ {
			if w.Present(j) != want.Present(j) {
				t.Fatalf("seed stream %d: edge %d presence %v, SampleWorld drew %v",
					i, j, w.Present(j), want.Present(j))
			}
		}
	}
}

// TestSamplerInvalidation: mutating the graph must rebuild the cached
// sampler so stale thresholds are never used.
func TestSamplerInvalidation(t *testing.T) {
	g := mixedGraph()
	s1 := g.Sampler()
	if g.Sampler() != s1 {
		t.Fatal("unchanged graph should reuse the cached sampler")
	}
	if err := g.SetProb(2, 0.01); err != nil {
		t.Fatal(err)
	}
	s2 := g.Sampler()
	if s2 == s1 {
		t.Fatal("SetProb must invalidate the cached sampler")
	}
	var w World
	var pcg rand.PCG
	pcg.Seed(7, 7)
	s2.SampleInto(&w, &pcg)
	want := g.SampleWorld(rand.New(rand.NewPCG(7, 7)))
	for j := 0; j < g.NumEdges(); j++ {
		if w.Present(j) != want.Present(j) {
			t.Fatalf("rebuilt sampler disagrees with SampleWorld at edge %d", j)
		}
	}
}

// TestGeometricSamplerDeterministic: the skip sampler is deterministic per
// seed (same PCG state => same world), even though its stream consumption
// differs from SampleInto.
func TestGeometricSamplerDeterministic(t *testing.T) {
	g := mixedGraph()
	s := g.Sampler()
	var w1, w2 World
	var pcg rand.PCG
	pcg.Seed(3, 99)
	s.SampleIntoGeometric(&w1, &pcg)
	bits1 := append(Bitset(nil), w1.Bits()...)
	pcg.Seed(3, 99)
	s.SampleIntoGeometric(&w2, &pcg)
	for i, word := range w2.Bits() {
		if bits1[i] != word {
			t.Fatal("geometric sampler is not deterministic per seed")
		}
	}
	if w1.NumEdges() != w2.NumEdges() {
		t.Fatal("edge count mismatch across identical seeds")
	}
}

// TestGeometricSamplerFrequency: geometric-skip sampling must preserve
// per-edge inclusion frequencies — same distribution as the per-edge path,
// just a different stream.
func TestGeometricSamplerFrequency(t *testing.T) {
	g := mixedGraph()
	s := g.Sampler()
	const n = 20000
	counts := make([]int, g.NumEdges())
	var w World
	var pcg rand.PCG
	for i := 0; i < n; i++ {
		pcg.Seed(11, uint64(i))
		s.SampleIntoGeometric(&w, &pcg)
		for j := range counts {
			if w.Present(j) {
				counts[j]++
			}
		}
	}
	for j := range counts {
		p := g.Edge(j).P
		got := float64(counts[j]) / n
		// ~6 sigma for the worst-case p=0.5 edge at n=20000 is ~0.021.
		if diff := got - p; diff > 0.025 || diff < -0.025 {
			t.Errorf("edge %d (p=%v): geometric inclusion frequency %v", j, p, got)
		}
	}
}

// TestSampleIntoReusesStorage: repeated sampling into one world must not
// allocate once the bitset has grown.
func TestSampleIntoReusesStorage(t *testing.T) {
	g := mixedGraph()
	s := g.Sampler()
	var w World
	var pcg rand.PCG
	pcg.Seed(1, 1)
	s.SampleInto(&w, &pcg) // warm: allocate the bitset
	allocs := testing.AllocsPerRun(100, func() {
		pcg.Seed(1, 2)
		s.SampleInto(&w, &pcg)
	})
	if allocs != 0 {
		t.Fatalf("SampleInto allocated %v times per world on the steady state", allocs)
	}
}
