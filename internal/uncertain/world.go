package uncertain

import (
	"math/rand/v2"

	"chameleon/internal/unionfind"
)

// World is one possible world of an uncertain graph: a deterministic simple
// graph over the same vertex set containing a subset of the edges.
//
// A World keeps a reference to the uncertain graph it was sampled from so
// that edge identities (indices) stay aligned between the two.
type World struct {
	g       *Graph
	present []bool // per edge index
	m       int    // number of present edges
}

// SampleWorld draws one possible world of g: each edge is included
// independently with its probability, using rng as the randomness source.
func (g *Graph) SampleWorld(rng *rand.Rand) *World {
	w := &World{g: g, present: make([]bool, len(g.edges))}
	for i, e := range g.edges {
		if e.P >= 1 || (e.P > 0 && rng.Float64() < e.P) {
			w.present[i] = true
			w.m++
		}
	}
	return w
}

// MostProbableWorld returns the world that includes exactly the edges with
// p >= 0.5, which maximizes the world probability under independence.
func (g *Graph) MostProbableWorld() *World {
	w := &World{g: g, present: make([]bool, len(g.edges))}
	for i, e := range g.edges {
		if e.P >= 0.5 {
			w.present[i] = true
			w.m++
		}
	}
	return w
}

// WorldFromMask builds a world from an explicit edge-presence mask.
// The mask is copied.
func (g *Graph) WorldFromMask(present []bool) *World {
	if len(present) != len(g.edges) {
		panic("uncertain: mask length mismatch")
	}
	w := &World{g: g, present: append([]bool(nil), present...)}
	for _, p := range w.present {
		if p {
			w.m++
		}
	}
	return w
}

// Graph returns the uncertain graph this world was sampled from.
func (w *World) Graph() *Graph { return w.g }

// NumNodes returns |V|.
func (w *World) NumNodes() int { return w.g.n }

// NumEdges returns the number of edges present in this world.
func (w *World) NumEdges() int { return w.m }

// Present reports whether edge i of the underlying uncertain graph is
// present in this world.
func (w *World) Present(i int) bool { return w.present[i] }

// PresenceMask returns the internal presence mask. The caller must not
// mutate it.
func (w *World) PresenceMask() []bool { return w.present }

// Degree returns the degree of v in this world.
func (w *World) Degree(v NodeID) int {
	d := 0
	for _, he := range w.g.adj[v] {
		if w.present[he.Edge] {
			d++
		}
	}
	return d
}

// Neighbors appends v's neighbors in this world to buf and returns it.
func (w *World) Neighbors(v NodeID, buf []NodeID) []NodeID {
	for _, he := range w.g.adj[v] {
		if w.present[he.Edge] {
			buf = append(buf, he.To)
		}
	}
	return buf
}

// Components returns the union-find structure over this world's edges.
func (w *World) Components() *unionfind.DSU {
	d := unionfind.New(w.g.n)
	for i, e := range w.g.edges {
		if w.present[i] {
			d.Union(int(e.U), int(e.V))
		}
	}
	return d
}

// ComponentLabels returns a vector mapping each vertex to a canonical
// component representative.
func (w *World) ComponentLabels() []int32 {
	d := w.Components()
	labels := make([]int32, w.g.n)
	for v := 0; v < w.g.n; v++ {
		labels[v] = int32(d.Find(v))
	}
	return labels
}

// ConnectedPairs returns the number of unordered vertex pairs that are
// connected in this world.
func (w *World) ConnectedPairs() int64 {
	return w.Components().ConnectedPairs()
}

// BFSDistances computes single-source shortest-path hop distances from src
// in this world. Unreachable vertices get -1.
func (w *World) BFSDistances(src NodeID) []int32 {
	dist := make([]int32, w.g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, 64)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, he := range w.g.adj[u] {
			if !w.present[he.Edge] {
				continue
			}
			if dist[he.To] < 0 {
				dist[he.To] = dist[u] + 1
				queue = append(queue, he.To)
			}
		}
	}
	return dist
}

// AdjacencyLists materializes the world's adjacency lists; useful for
// algorithms that iterate neighborhoods repeatedly (e.g. clustering
// coefficient, ANF).
func (w *World) AdjacencyLists() [][]NodeID {
	deg := make([]int, w.g.n)
	for i, e := range w.g.edges {
		if w.present[i] {
			deg[e.U]++
			deg[e.V]++
		}
	}
	lists := make([][]NodeID, w.g.n)
	for v := range lists {
		lists[v] = make([]NodeID, 0, deg[v])
	}
	for i, e := range w.g.edges {
		if w.present[i] {
			lists[e.U] = append(lists[e.U], e.V)
			lists[e.V] = append(lists[e.V], e.U)
		}
	}
	return lists
}
