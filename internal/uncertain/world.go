package uncertain

import (
	"math/rand/v2"

	"chameleon/internal/unionfind"
)

// World is one possible world of an uncertain graph: a deterministic simple
// graph over the same vertex set containing a subset of the edges. Presence
// is stored as a packed bitset (one bit per edge index), so per-world scans
// iterate set bits word-parallel instead of one bool per edge.
//
// A World keeps a reference to the view it was sampled from (either a
// *Graph or a *CSR) so that edge identities (indices) stay aligned between
// the two, plus a direct handle on the packed storage so the component
// kernels never pay interface dispatch.
//
// The zero value is an empty world not bound to any graph; it becomes
// usable once a WorldSampler samples into it.
type World struct {
	src  View
	core *edgeCore
	bits Bitset // per edge index
	m    int    // number of present edges
}

// SampleWorld draws one possible world of g: each edge is included
// independently with its probability, using rng as the randomness source.
// One Float64 is consumed per edge with 0 < p < 1, in edge-index order;
// WorldSampler.SampleInto draws the identical world from the same PCG
// state without allocating.
func (g *Graph) SampleWorld(rng *rand.Rand) *World { return sampleWorldOf(g, rng) }

// MostProbableWorld returns the world that includes exactly the edges with
// p >= 0.5, which maximizes the world probability under independence.
func (g *Graph) MostProbableWorld() *World { return mostProbableWorldOf(g) }

// WorldFromMask builds a world from an explicit edge-presence mask.
// The mask is copied (packed) rather than referenced.
func (g *Graph) WorldFromMask(present []bool) *World { return worldFromMaskOf(g, present) }

// Source returns the view this world was sampled from.
func (w *World) Source() View { return w.src }

// NumNodes returns |V|.
func (w *World) NumNodes() int { return w.core.n }

// NumEdges returns the number of edges present in this world.
func (w *World) NumEdges() int { return w.m }

// Present reports whether edge i of the underlying uncertain graph is
// present in this world.
func (w *World) Present(i int) bool { return w.bits.Get(i) }

// SetPresence forces edge i to the given presence, adjusting the edge
// count. Used by conditional estimators that pin one edge while keeping
// the rest of a sampled world (common-random-numbers conditioning).
func (w *World) SetPresence(i int, present bool) {
	if w.bits.Get(i) == present {
		return
	}
	if present {
		w.bits.Set(i)
		w.m++
	} else {
		w.bits.Clear(i)
		w.m--
	}
}

// Bits returns the internal presence bitset. The caller must not mutate
// it; use SetPresence to modify a world.
func (w *World) Bits() Bitset { return w.bits }

// PresenceMask returns the presence mask unpacked into a fresh bool slice.
// It allocates; hot paths should iterate Bits instead.
func (w *World) PresenceMask() []bool { return w.bits.Mask(len(w.core.edges)) }

// Degree returns the degree of v in this world.
func (w *World) Degree(v NodeID) int {
	d := 0
	w.src.forIncident(v, func(_ NodeID, e int32) {
		if w.bits.Get(int(e)) {
			d++
		}
	})
	return d
}

// Neighbors appends v's neighbors in this world to buf and returns it.
func (w *World) Neighbors(v NodeID, buf []NodeID) []NodeID {
	w.src.forIncident(v, func(to NodeID, e int32) {
		if w.bits.Get(int(e)) {
			buf = append(buf, to)
		}
	})
	return buf
}

// ComponentsInto unions this world's edges into d, resetting it first.
// A nil d (or one sized for a different vertex count) is replaced by a
// fresh structure; the possibly-new DSU is returned. Edges are unioned in
// ascending index order, so the resulting parent forest is identical
// however the DSU is recycled.
func (w *World) ComponentsInto(d *unionfind.DSU) *unionfind.DSU {
	d, _ = w.ComponentsPairsInto(d)
	return d
}

// ComponentsPairsInto is ComponentsInto fused with the connected-pair
// count: merging components of sizes a and b connects a*b pairs, so the
// count falls out of the union loop and skips ConnectedPairs' O(|V|) root
// scan. This is the per-world call of the Monte Carlo estimators.
func (w *World) ComponentsPairsInto(d *unionfind.DSU) (*unionfind.DSU, int64) {
	if d == nil || d.Len() != w.core.n {
		d = unionfind.New(w.core.n)
	} else {
		d.Reset()
	}
	pairs := d.UnionBitsetEdges(w.bits, w.core.uv)
	return d, pairs
}

// Components returns the union-find structure over this world's edges.
func (w *World) Components() *unionfind.DSU {
	return w.ComponentsInto(nil)
}

// ComponentLabels returns a vector mapping each vertex to a canonical
// component representative.
func (w *World) ComponentLabels() []int32 {
	d := w.Components()
	labels := make([]int32, w.core.n)
	for v := 0; v < w.core.n; v++ {
		labels[v] = int32(d.Find(v))
	}
	return labels
}

// ConnectedPairs returns the number of unordered vertex pairs that are
// connected in this world.
func (w *World) ConnectedPairs() int64 {
	return w.Components().ConnectedPairs()
}

// BFSDistances computes single-source shortest-path hop distances from src
// in this world. Unreachable vertices get -1.
func (w *World) BFSDistances(src NodeID) []int32 {
	dist := make([]int32, w.core.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, 64)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		w.src.forIncident(u, func(to NodeID, e int32) {
			if !w.bits.Get(int(e)) {
				return
			}
			if dist[to] < 0 {
				dist[to] = dist[u] + 1
				queue = append(queue, to)
			}
		})
	}
	return dist
}

// AdjacencyLists materializes the world's adjacency lists; useful for
// algorithms that iterate neighborhoods repeatedly (e.g. clustering
// coefficient, ANF).
func (w *World) AdjacencyLists() [][]NodeID {
	deg := make([]int, w.core.n)
	for i, e := range w.core.edges {
		if w.bits.Get(i) {
			deg[e.U]++
			deg[e.V]++
		}
	}
	lists := make([][]NodeID, w.core.n)
	for v := range lists {
		lists[v] = make([]NodeID, 0, deg[v])
	}
	for i, e := range w.core.edges {
		if w.bits.Get(i) {
			lists[e.U] = append(lists[e.U], e.V)
			lists[e.V] = append(lists[e.V], e.U)
		}
	}
	return lists
}
