package uncertain

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	g := mustGraph(t, 4, Edge{0, 1, 0.5}, Edge{2, 3, 0.125}, Edge{0, 3, 1})
	var buf bytes.Buffer
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("round trip changed the graph")
	}
}

func TestReadTSVCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n3\n# another\n0 1 0.5\n\n1\t2\t0.25\n"
	g, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestReadTSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"only comments", "# nothing\n"},
		{"bad count", "abc\n"},
		{"negative count", "-3\n"},
		{"count with extra fields", "3 4\n"},
		{"edge with two fields", "3\n0 1\n"},
		{"edge with four fields", "3\n0 1 0.5 9\n"},
		{"bad node", "3\nx 1 0.5\n"},
		{"bad second node", "3\n0 y 0.5\n"},
		{"bad prob", "3\n0 1 maybe\n"},
		{"prob out of range", "3\n0 1 1.5\n"},
		{"node out of range", "3\n0 7 0.5\n"},
		{"duplicate edge", "3\n0 1 0.5\n1 0 0.2\n"},
		{"self loop", "3\n1 1 0.5\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadTSV(strings.NewReader(tt.in)); err == nil {
				t.Fatalf("ReadTSV(%q) should fail", tt.in)
			}
		})
	}
}

func TestReadTSVErrorMentionsLine(t *testing.T) {
	_, err := ReadTSV(strings.NewReader("3\n0 1 0.5\nbroken line here\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error should name the offending line, got %v", err)
	}
}

func TestBadFormatIsErrBadFormat(t *testing.T) {
	_, err := ReadTSV(strings.NewReader("nope\n"))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := mustGraph(t, 3, Edge{0, 1, 0.75})
	path := filepath.Join(t.TempDir(), "g.tsv")
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	h, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("file round trip changed the graph")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.tsv")); err == nil {
		t.Fatal("loading a missing file should fail")
	}
}

func TestWriteTSVDeterministic(t *testing.T) {
	g := mustGraph(t, 4, Edge{2, 3, 0.1}, Edge{0, 1, 0.2})
	var a, b bytes.Buffer
	if err := WriteTSV(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteTSV(&b, g); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteTSV should be deterministic")
	}
	if !strings.HasPrefix(a.String(), "4\n0\t1\t0.2\n") {
		t.Fatalf("unexpected output:\n%s", a.String())
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		n := 2 + rng.IntN(30)
		g := New(n)
		m := rng.IntN(2 * n)
		for i := 0; i < m; i++ {
			u := NodeID(rng.IntN(n))
			v := NodeID(rng.IntN(n))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if err := g.AddEdge(u, v, rng.Float64()); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := WriteTSV(&buf, g); err != nil {
			return false
		}
		h, err := ReadTSV(&buf)
		if err != nil {
			return false
		}
		return g.Equal(h) && h.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTSVNodeCap(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("99999999999999\n")); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("absurd node count should be rejected, got %v", err)
	}
}
