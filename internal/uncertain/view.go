package uncertain

import "math/rand/v2"

// View is the read-only uncertain-graph surface the engines run on. Both
// the mutable slice-backed *Graph and the packed read-only *CSR adjacency
// view implement it, so the Monte Carlo estimators, the privacy measures
// and the serialization paths accept either representation
// interchangeably.
//
// The interface is sealed to this package (dataCore is unexported):
// adding a third representation means adding it here, next to the world
// and sampler kernels that have to understand its storage.
//
// Implementations must be safe for concurrent readers; mutating a *Graph
// while any reader (including a sampler or world) uses it is not.
type View interface {
	// Structure.
	NumNodes() int
	NumEdges() int
	Edge(i int) Edge
	Edges() []Edge
	SortedEdges() []Edge
	EdgeIndex(u, v NodeID) int
	HasEdge(u, v NodeID) bool
	Degree(v NodeID) int
	Neighbors(v NodeID, buf []NodeID) []NodeID
	IncidentEdges(v NodeID, buf []int32) []int32
	IncidentProbs(v NodeID, buf []float64) []float64

	// Snapshot identity: (View identity, Version) names one immutable
	// edge set + probability assignment; caches key on it.
	Version() uint64

	// Possible-world machinery.
	Sampler() *WorldSampler
	SampleWorld(rng *rand.Rand) *World
	MostProbableWorld() *World
	WorldFromMask(present []bool) *World

	// Derived statistics (the privacy objectives' inputs).
	ExpectedDegree(v NodeID) float64
	ExpectedDegrees() []float64
	DegreeStdDev() float64
	MaxStructuralDegree() int
	StructuralDegreeHistogram() []int
	MeanProb() float64
	ExpectedNumEdges() float64
	ExpectedAvgDegree() float64
	ProbHistogram(bins int) []int

	// dataCore seals the interface and hands the packed storage to the
	// sampling kernels without per-edge interface dispatch.
	dataCore() *edgeCore
	// forIncident iterates the incident half-edges of v.
	forIncident(v NodeID, fn func(to NodeID, edge int32))
}

var (
	_ View = (*Graph)(nil)
	_ View = (*CSR)(nil)
)

// sampleWorldOf draws one possible world of src with rng: each edge is
// included independently with its probability, one Float64 per edge with
// 0 < p < 1, in edge-index order. Shared by Graph.SampleWorld and
// CSR.SampleWorld so the draw order contract holds for both.
func sampleWorldOf(src View, rng *rand.Rand) *World {
	core := src.dataCore()
	w := &World{src: src, core: core, bits: NewBitset(len(core.edges))}
	for i, e := range core.edges {
		if e.P >= 1 || (e.P > 0 && rng.Float64() < e.P) {
			w.bits.Set(i)
			w.m++
		}
	}
	return w
}

// mostProbableWorldOf returns the world including exactly the edges with
// p >= 0.5, which maximizes the world probability under independence.
func mostProbableWorldOf(src View) *World {
	core := src.dataCore()
	w := &World{src: src, core: core, bits: NewBitset(len(core.edges))}
	for i, e := range core.edges {
		if e.P >= 0.5 {
			w.bits.Set(i)
			w.m++
		}
	}
	return w
}

// worldFromMaskOf builds a world from an explicit edge-presence mask,
// copying (packing) the mask rather than referencing it.
func worldFromMaskOf(src View, present []bool) *World {
	core := src.dataCore()
	if len(present) != len(core.edges) {
		panic("uncertain: mask length mismatch")
	}
	w := &World{src: src, core: core, bits: BitsetFromMask(present)}
	w.m = w.bits.Count()
	return w
}
