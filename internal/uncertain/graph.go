// Package uncertain implements the uncertain-graph data model used
// throughout the Chameleon framework.
//
// An uncertain graph G = (V, E, p) is a simple undirected graph whose edges
// carry independent existence probabilities. Under possible-world semantics
// the graph denotes a distribution over 2^|E| deterministic graphs, where
// each world materializes every edge independently with its probability.
package uncertain

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// NodeID identifies a vertex. Vertices are dense integers in [0, NumNodes).
type NodeID = int32

// Edge is an undirected uncertain edge with existence probability P.
// Invariant: U < V and 0 <= P <= 1.
type Edge struct {
	U, V NodeID
	P    float64
}

// halfEdge is one direction of an edge in the adjacency structure.
type halfEdge struct {
	To   NodeID
	Edge int32 // index into Graph.edges
}

// edgeCore is the storage shared by the two graph representations — the
// mutable slice-backed *Graph and the read-only packed *CSR view: vertex
// count, edge list and the packed endpoints the bitset union kernel
// streams. Methods that need only this storage live here and promote to
// both types.
type edgeCore struct {
	n     int
	edges []Edge
	uv    []uint64 // packed endpoints (u<<32|v) parallel to edges, one
	// load per edge in the bitset union kernel
}

// NumNodes returns |V|.
func (c *edgeCore) NumNodes() int { return c.n }

// NumEdges returns |E|.
func (c *edgeCore) NumEdges() int { return len(c.edges) }

// Edge returns the i-th edge. Edges keep their insertion index for the
// lifetime of the graph; SetProb mutates probabilities in place.
func (c *edgeCore) Edge(i int) Edge { return c.edges[i] }

// Edges returns a copy of the edge list.
func (c *edgeCore) Edges() []Edge {
	out := make([]Edge, len(c.edges))
	copy(out, c.edges)
	return out
}

// SortedEdges returns the edges ordered by (U, V); useful for deterministic
// output.
func (c *edgeCore) SortedEdges() []Edge {
	out := c.Edges()
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// dataCore exposes the shared storage to package-internal kernels; it is
// also the unexported method that seals the View interface to this
// package.
func (c *edgeCore) dataCore() *edgeCore { return c }

// Graph is a simple undirected uncertain graph. The zero value is not
// usable; construct with New.
type Graph struct {
	edgeCore
	adj   [][]halfEdge
	index map[[2]NodeID]int32 // canonical (u<v) pair -> edge index

	// version counts structural mutations (AddEdge, SetProb). It
	// invalidates derived snapshots: the cached WorldSampler below and any
	// external caches keyed by (graph, version), e.g. reliability label
	// caches. Mutation is not safe concurrently with reads; the atomic on
	// sampler only covers concurrent readers of an unchanging graph.
	version uint64
	sampler atomic.Pointer[WorldSampler]
}

// Common construction and validation errors.
var (
	ErrNodeOutOfRange = errors.New("uncertain: node out of range")
	ErrSelfLoop       = errors.New("uncertain: self-loop not allowed")
	ErrDuplicateEdge  = errors.New("uncertain: duplicate edge")
	ErrBadProbability = errors.New("uncertain: probability outside [0,1]")
	ErrNoSuchEdge     = errors.New("uncertain: no such edge")
)

// New returns an empty uncertain graph over n vertices labeled 0..n-1.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		edgeCore: edgeCore{n: n},
		adj:      make([][]halfEdge, n),
		index:    make(map[[2]NodeID]int32),
	}
}

// canonical orders an endpoint pair so that u < v.
func canonical(u, v NodeID) [2]NodeID {
	if u > v {
		u, v = v, u
	}
	return [2]NodeID{u, v}
}

func (g *Graph) checkPair(u, v NodeID) error {
	if u < 0 || int(u) >= g.n || v < 0 || int(v) >= g.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrNodeOutOfRange, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("%w: node %d", ErrSelfLoop, u)
	}
	return nil
}

// AddEdge inserts the undirected edge {u,v} with probability p.
// It rejects self-loops, duplicate edges, out-of-range endpoints and
// probabilities outside [0,1].
func (g *Graph) AddEdge(u, v NodeID, p float64) error {
	if err := g.checkPair(u, v); err != nil {
		return err
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("%w: %v on (%d,%d)", ErrBadProbability, p, u, v)
	}
	key := canonical(u, v)
	if _, dup := g.index[key]; dup {
		return fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, v)
	}
	idx := int32(len(g.edges))
	g.edges = append(g.edges, Edge{U: key[0], V: key[1], P: p})
	g.uv = append(g.uv, uint64(key[0])<<32|uint64(key[1]))
	g.adj[key[0]] = append(g.adj[key[0]], halfEdge{To: key[1], Edge: idx})
	g.adj[key[1]] = append(g.adj[key[1]], halfEdge{To: key[0], Edge: idx})
	g.index[key] = idx
	g.version++
	return nil
}

// MustAddEdge is AddEdge that panics on error; intended for tests and
// literals where the input is known valid.
func (g *Graph) MustAddEdge(u, v NodeID, p float64) {
	if err := g.AddEdge(u, v, p); err != nil {
		panic(err)
	}
}

// EdgeIndex returns the index of edge {u,v}, or -1 if absent.
func (g *Graph) EdgeIndex(u, v NodeID) int {
	if i, ok := g.index[canonical(u, v)]; ok {
		return int(i)
	}
	return -1
}

// HasEdge reports whether {u,v} is an edge of the graph.
func (g *Graph) HasEdge(u, v NodeID) bool { return g.EdgeIndex(u, v) >= 0 }

// Prob returns the existence probability of edge {u,v}.
func (g *Graph) Prob(u, v NodeID) (float64, error) {
	i := g.EdgeIndex(u, v)
	if i < 0 {
		return 0, fmt.Errorf("%w: (%d,%d)", ErrNoSuchEdge, u, v)
	}
	return g.edges[i].P, nil
}

// SetProb sets the probability of the i-th edge.
func (g *Graph) SetProb(i int, p float64) error {
	if i < 0 || i >= len(g.edges) {
		return fmt.Errorf("%w: index %d", ErrNoSuchEdge, i)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("%w: %v", ErrBadProbability, p)
	}
	g.edges[i].P = p
	g.version++
	return nil
}

// Degree returns the structural degree of v: the number of incident
// uncertain edges regardless of probability.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// ExpectedDegree returns E[deg(v)] = sum of incident edge probabilities.
func (g *Graph) ExpectedDegree(v NodeID) float64 {
	var s float64
	for _, he := range g.adj[v] {
		s += g.edges[he.Edge].P
	}
	return s
}

// Neighbors appends the neighbors of v to buf and returns it.
// The result is not sorted.
func (g *Graph) Neighbors(v NodeID, buf []NodeID) []NodeID {
	for _, he := range g.adj[v] {
		buf = append(buf, he.To)
	}
	return buf
}

// IncidentEdges appends indices of edges incident to v to buf.
func (g *Graph) IncidentEdges(v NodeID, buf []int32) []int32 {
	for _, he := range g.adj[v] {
		buf = append(buf, he.Edge)
	}
	return buf
}

// IncidentProbs appends the probabilities of edges incident to v to buf.
func (g *Graph) IncidentProbs(v NodeID, buf []float64) []float64 {
	for _, he := range g.adj[v] {
		buf = append(buf, g.edges[he.Edge].P)
	}
	return buf
}

// Version returns the mutation counter: it changes on every AddEdge and
// SetProb, so (graph pointer, version) identifies one immutable snapshot
// of the edge set and probabilities. Caches of derived data key on it.
func (g *Graph) Version() uint64 { return g.version }

// Clone returns a deep copy of g. The clone starts with a fresh derived
// state (no cached sampler) and its own version counter.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	c.uv = append([]uint64(nil), g.uv...)
	for v := range g.adj {
		c.adj[v] = append([]halfEdge(nil), g.adj[v]...)
	}
	for k, i := range g.index {
		c.index[k] = i
	}
	c.version = g.version
	return c
}

// Equal reports whether g and h have identical vertex counts and identical
// edge sets with equal probabilities.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || len(g.edges) != len(h.edges) {
		return false
	}
	for _, e := range g.edges {
		j := h.EdgeIndex(e.U, e.V)
		if j < 0 || h.edges[j].P != e.P {
			return false
		}
	}
	return true
}

// forIncident calls fn for every incident half-edge of v.
func (g *Graph) forIncident(v NodeID, fn func(to NodeID, edge int32)) {
	for _, he := range g.adj[v] {
		fn(he.To, he.Edge)
	}
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	return fmt.Sprintf("uncertain.Graph{n=%d m=%d meanP=%.3f}", g.n, len(g.edges), g.MeanProb())
}
