package uncertain

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
)

// SamplingMode selects the world-drawing strategy of the Monte Carlo
// estimators. All modes draw each edge independently with its configured
// probability — per-world marginals are identical — but they differ in how
// worlds relate to each other (and to the worlds of a second graph),
// trading the plain-iid stream for lower estimator variance.
type SamplingMode uint8

const (
	// SampleIndependent draws every world from an independent per-index
	// PCG stream. This is the default and the cross-implementation replay
	// contract: bit-identical to Graph.SampleWorld over the same state.
	SampleIndependent SamplingMode = iota
	// SampleAntithetic draws worlds in antithetic pairs: indices 2j and
	// 2j+1 replay the same PCG stream, the odd index with complemented
	// uniforms (u -> 1-u). Each world's marginals are exact; within a pair
	// the edge indicators are maximally negatively correlated, which
	// reduces the variance of any estimate monotone in edge presence
	// (connected pairs, reliability).
	SampleAntithetic
	// SampleStratified draws each edge's uniform from a randomly shifted
	// per-edge rank-1 lattice (a Cranley–Patterson rotation): world s of
	// edge e compares offset_e + s*step_e against the edge's threshold.
	// The random offset makes every single world exactly an independent
	// Bernoulli draw per edge, while across worlds each edge's hit count
	// tracks n*p with low discrepancy. Any world-count prefix is valid, so
	// the mode composes with adaptive stopping. Worlds are NOT mutually
	// independent across sample indices (that is the point), so
	// cross-world joint statistics are not product-form.
	SampleStratified
	// SampleCoupled derives each edge's uniform by hashing (seed, world
	// index, edge endpoints). Because the hash is keyed by endpoints
	// rather than edge position, two graphs sharing an edge draw the SAME
	// uniform for it at every sample index — common random numbers — so
	// difference estimates (discrepancy, Δ expected connectivity) keep
	// only the variance of the edges whose probabilities actually differ.
	SampleCoupled
)

// String implements fmt.Stringer with the CLI flag spellings.
func (m SamplingMode) String() string {
	switch m {
	case SampleIndependent:
		return "independent"
	case SampleAntithetic:
		return "antithetic"
	case SampleStratified:
		return "stratified"
	case SampleCoupled:
		return "coupled"
	default:
		return fmt.Sprintf("SamplingMode(%d)", uint8(m))
	}
}

// ParseSamplingMode maps the CLI flag spellings (and "" meaning the
// default) back to a SamplingMode.
func ParseSamplingMode(s string) (SamplingMode, error) {
	switch s {
	case "", "independent":
		return SampleIndependent, nil
	case "antithetic":
		return SampleAntithetic, nil
	case "stratified":
		return SampleStratified, nil
	case "coupled":
		return SampleCoupled, nil
	default:
		return SampleIndependent, fmt.Errorf("uncertain: unknown sampling mode %q (want independent, antithetic, stratified or coupled)", s)
	}
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche mixer whose
// output over a counter input passes BigCrush. It is the hash behind the
// stratified offsets/steps and the coupled per-edge uniforms.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// golden is the 64-bit golden-ratio multiplier used to spread packed edge
// endpoints before mixing.
const golden = 0x9e3779b97f4a7c15

// coupledStep is the per-index increment of the coupled hash stream (the
// odd LCG multiplier from L64X128; any odd constant with good avalanche
// interaction works).
const coupledStep = 0xd1342543de82ef95

// SampleIntoAntithetic draws one world like SampleInto but with every
// uniform complemented when mirror is set: the draw d in [0,2^53) becomes
// mask53-d, i.e. u -> 1-u. With mirror false it is bit-identical to
// SampleInto, so estimators run even indices plain and odd indices
// mirrored over the SAME stream to form antithetic pairs. Marginals are
// exact either way: the complement is a bijection on the 53-bit draws, so
// exactly ceil(p*2^53) of them fall under each edge's threshold.
func (s *WorldSampler) SampleIntoAntithetic(w *World, pcg *rand.PCG, mirror bool) {
	var flip uint64
	if mirror {
		flip = mask53
	}
	s.sampleThreshold(w, pcg, flip)
}

// SampleInto draws one possible world into w, reusing w's bitset storage.
// The world drawn from a given PCG state is bit-for-bit identical to
// Graph.SampleWorld with a rand.Rand over the same state: one draw per
// edge with 0 < p < 1, in edge-index order. This is the determinism
// contract every Monte Carlo estimator builds on.
func (s *WorldSampler) SampleInto(w *World, pcg *rand.PCG) {
	s.sampleThreshold(w, pcg, 0)
}

// sampleThreshold is the shared threshold-comparison kernel: one PCG draw
// per uncertain edge, XORed with flip (0 = plain, mask53 = antithetic
// complement) before the threshold test.
func (s *WorldSampler) sampleThreshold(w *World, pcg *rand.PCG, flip uint64) {
	w.src, w.core = s.src, s.core
	nE := len(s.thresh)
	words := bitsetWords(nE)
	if cap(w.bits) < words {
		w.bits = make(Bitset, words)
	} else {
		w.bits = w.bits[:words]
	}
	thresh := s.thresh
	m := 0
	// Build each output word in a register and store it once, instead of a
	// read-modify-write per set bit. A threshold of 0 (p <= 0) never draws;
	// threshAlways (p >= 1) sets the bit without drawing.
	for wi := 0; wi < words; wi++ {
		base := wi << 6
		end := base + 64
		if end > nE {
			end = nE
		}
		var word uint64
		for k, t := range thresh[base:end] {
			if t == threshAlways {
				word |= 1 << uint(k)
				continue
			}
			if t == 0 {
				continue
			}
			// Branchless set: the comparison outcome is a coin flip, so a
			// conditional bit-or beats a 50%-mispredicted branch.
			var b uint64
			if pcg.Uint64()&mask53^flip < t {
				b = 1
			}
			word |= b << uint(k)
		}
		w.bits[wi] = word
		m += bits.OnesCount64(word)
	}
	w.m = m
}

// SampleIntoGeometricAntithetic is SampleIntoGeometric with complemented
// uniforms when mirror is set — the geometric-skip counterpart of
// SampleIntoAntithetic. The complement is applied to the raw 53-bit draw
// before BOTH uses (the dense threshold test and the log-gap mapping), so
// the mirrored world consumes the stream identically and the pairing
// survives the skip path. With mirror false it is bit-identical to
// SampleIntoGeometric.
func (s *WorldSampler) SampleIntoGeometricAntithetic(w *World, pcg *rand.PCG, mirror bool) {
	var flip uint64
	if mirror {
		flip = mask53
	}
	s.sampleGeometric(w, pcg, flip)
}

// SampleIntoGeometric draws one possible world into w using geometric-skip
// sampling for low-probability edge classes: within a class of k edges
// sharing probability p, the gap to the next present edge is geometric, so
// the cost is O(k*p) draws instead of k. High-probability and certain
// edges take the per-edge path.
//
// The result follows the same distribution as SampleInto but consumes the
// PCG stream differently, so the drawn world differs for the same state:
// deterministic per seed, but a different world stream. Estimators expose
// this as an opt-in (Estimator.FastSampling) precisely because it trades
// the cross-implementation replay contract for speed.
func (s *WorldSampler) SampleIntoGeometric(w *World, pcg *rand.PCG) {
	s.sampleGeometric(w, pcg, 0)
}

// sampleGeometric is the shared geometric-skip kernel; flip complements
// every 53-bit draw (0 = plain, mask53 = antithetic mirror).
func (s *WorldSampler) sampleGeometric(w *World, pcg *rand.PCG, flip uint64) {
	w.src, w.core = s.src, s.core
	w.bits = w.bits.grow(len(s.core.edges))
	m := 0
	for _, i := range s.dense {
		t := s.thresh[i]
		if t == threshAlways {
			w.bits.Set(int(i))
			m++
		} else if pcg.Uint64()&mask53^flip < t {
			w.bits.Set(int(i))
			m++
		}
	}
	for ci := range s.classes {
		c := &s.classes[ci]
		pos := 0
		for pos < len(c.idx) {
			// u in (0,1]: the +1 offset keeps Log finite at the stream's 0.
			u := (float64(pcg.Uint64()&mask53^flip) + 1) * (1.0 / (1 << 53))
			gap := math.Log(u) * c.invLog1p
			if gap >= float64(len(c.idx)-pos) {
				break
			}
			pos += int(gap)
			w.bits.Set(int(c.idx[pos]))
			m++
			pos++
		}
	}
	w.m = m
}

// edgeKey spreads an edge's packed endpoints (u<<32|v) for hashing. Keyed
// by endpoints rather than edge index so two graphs sharing an edge derive
// the same per-edge randomness whatever position the edge occupies.
func edgeKey(uv uint64) uint64 { return uv * golden }

// SampleIntoStratified draws world idx of the seed-keyed randomized
// lattice: edge e's uniform is the top 53 bits of
//
//	offset_e + idx * step_e  (mod 2^64)
//
// with offset_e = mix64(seed ^ key_e) and step_e = mix64(key_e+golden)|1.
// The offset is a uniform hash of the seed, so each fixed idx is exactly
// one independent Bernoulli draw per edge (a Cranley–Patterson rotation of
// the per-edge lattice); across idx each edge walks an equidistributed
// orbit, so hit counts track n*p with low discrepancy — the stratification.
// Certain and impossible edges consume no randomness, as in SampleInto.
//
// Draws are keyed by (seed, idx, endpoints) alone — no stream state — so
// any subset of indices can be drawn in any order, which is what lets the
// adaptive chunk scheduler and the σ-checkpoint resume replay worlds
// exactly.
func (s *WorldSampler) SampleIntoStratified(w *World, seed uint64, idx int) {
	s.sampleHashed(w, seed, idx, false)
}

// SampleIntoCoupled draws world idx with every edge's uniform hashed from
// (seed, idx, endpoints): u_e = mix64(mix64(seed^key_e) + idx*coupledStep).
// The hash never involves the graph's edge ordering or any stream state,
// so two graphs evaluated at the same seed and index draw identical
// uniforms for every edge they share — common random numbers. Difference
// estimators then see variance only from the edges whose probabilities
// differ between the graphs. Like the stratified mode, draws are
// position-independent and replay exactly under resume.
func (s *WorldSampler) SampleIntoCoupled(w *World, seed uint64, idx int) {
	s.sampleHashed(w, seed, idx, true)
}

// sampleHashed is the shared stateless kernel behind the stratified and
// coupled modes: both derive a per-edge base from (seed, endpoints) and
// advance it per index, differing only in whether the per-index value is
// mixed again (coupled: pseudo-independent across indices) or used raw
// (stratified: a lattice orbit across indices).
func (s *WorldSampler) sampleHashed(w *World, seed uint64, idx int, mixIndex bool) {
	w.src, w.core = s.src, s.core
	nE := len(s.thresh)
	words := bitsetWords(nE)
	if cap(w.bits) < words {
		w.bits = make(Bitset, words)
	} else {
		w.bits = w.bits[:words]
	}
	thresh := s.thresh
	uvs := s.core.uv
	i := uint64(idx)
	m := 0
	for wi := 0; wi < words; wi++ {
		base := wi << 6
		end := base + 64
		if end > nE {
			end = nE
		}
		var word uint64
		for k, t := range thresh[base:end] {
			if t == threshAlways {
				word |= 1 << uint(k)
				continue
			}
			if t == 0 {
				continue
			}
			key := edgeKey(uvs[base+k])
			var u uint64
			if mixIndex {
				u = mix64(mix64(seed^key) + i*coupledStep)
			} else {
				u = mix64(seed^key) + i*(mix64(key+golden)|1)
			}
			var b uint64
			if u>>11 < t {
				b = 1
			}
			word |= b << uint(k)
		}
		w.bits[wi] = word
		m += bits.OnesCount64(word)
	}
	w.m = m
}
