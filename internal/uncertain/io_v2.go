package uncertain

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Version-2 sectioned binary format (see DESIGN.md §14).
//
// After the shared magic + version prefix the file is a sequence of
// framed sections:
//
//	id      uint32  little-endian fourcc
//	length  uint64  payload byte count
//	crc     uint32  CRC-32C (Castagnoli) of the payload
//	payload [length]byte
//
// Sections defined by this version:
//
//	META  uvarint n, uvarint m, probEnc byte (0 = q16 quantized,
//	      1 = exact float64). Must be the first section.
//	EDGE  the m edges sorted by (U,V), delta/varint coded: per edge,
//	      du = u - prevU as uvarint, then dv as uvarint where
//	      dv = v-u-1 when du > 0 (first edge of a new row) and
//	      dv = v-prevV-1 otherwise; prevU = prevV = 0 initially.
//	PROB  the m probabilities in edge order: uint16 q with p = q/65535
//	      under probEnc 0 (exactly 2m bytes), float64 bits under
//	      probEnc 1 (exactly 8m bytes).
//	END!  empty; terminates the section list. The stream must end
//	      immediately after it.
//
// Unknown section ids are skipped (their CRC is still verified), so future
// versions can add sections without breaking this reader; META must stay
// first so readers can size and validate everything that follows.
//
// The quantized probability column engages only when every probability
// survives the q16 round-trip exactly (p == float64(q)/65535); otherwise
// the writer falls back to the exact column, so decode(encode(g)) == g in
// every case.
const (
	secMETA uint32 = 0x4154454D // "META"
	secEDGE uint32 = 0x45474445 // "EDGE"
	secPROB uint32 = 0x424F5250 // "PROB"
	secEND  uint32 = 0x21444E45 // "END!"

	probEncQ16     byte = 0 // uint16 quantized, p = q/65535
	probEncFloat64 byte = 1 // exact float64 bits
)

// q16Max is the quantization denominator: probabilities are stored as
// q/65535 when exact.
const q16Max = 65535

// crcTable is the Castagnoli polynomial table shared by writer and reader.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// quantizeProb returns the q16 code for p and whether the round-trip is
// exact.
func quantizeProb(p float64) (uint16, bool) {
	q := uint16(math.Round(p * q16Max))
	return q, float64(q)/q16Max == p
}

// Quantize16 snaps p to the nearest probability representable by the v2
// quantized column (a multiple of 1/65535, absolute error <= 1/131070).
// Generators that pre-quantize their probabilities through it get the
// 2-byte column — and files 3x+ smaller than TSV — instead of the exact
// 8-byte fallback.
func Quantize16(p float64) float64 {
	q, _ := quantizeProb(p)
	return float64(q) / q16Max
}

// writeSection frames one section: id, length, CRC-32C, payload.
func writeSection(w io.Writer, id uint32, payload []byte) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], id)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// V2Writer streams a version-2 file edge by edge, so generators can emit
// million-node graphs without materializing an edge slice or a *Graph.
// Edges must arrive in strictly increasing (U,V) order with canonical
// U < V endpoints; Close emits the buffered sections. The writer buffers
// roughly 11 bytes per edge (the varint-coded edge stream plus the raw
// probability column) — an order of magnitude less than a materialized
// graph.
type V2Writer struct {
	w io.Writer
	n int
	m int

	edgeBuf []byte // delta/varint-coded edge stream
	probs   []float64
	allQ16  bool

	prevU, prevV NodeID
	closed       bool
}

// NewV2Writer starts a version-2 stream over n vertices written to w.
// Nothing is written until Close; the caller owns w's lifetime.
func NewV2Writer(w io.Writer, n int) (*V2Writer, error) {
	if n < 0 || n > MaxFileNodes {
		return nil, fmt.Errorf("%w: %d nodes exceeds MaxFileNodes %d", ErrTooLarge, n, MaxFileNodes)
	}
	return &V2Writer{w: w, n: n, allQ16: true}, nil
}

// AddEdge appends one edge. Edges must be canonical (u < v, endpoints in
// range, p in [0,1]) and strictly increasing in (u,v) order.
//
// The delta state starts at the virtual edge (0,0), which sorts strictly
// before every canonical edge, so the first real edge needs no special
// case: the decoder starts from the same state.
func (vw *V2Writer) AddEdge(u, v NodeID, p float64) error {
	if vw.closed {
		return fmt.Errorf("uncertain: V2Writer already closed")
	}
	if u < 0 || v < 0 || int(u) >= vw.n || int(v) >= vw.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrNodeOutOfRange, u, v, vw.n)
	}
	if u >= v {
		return fmt.Errorf("uncertain: v2 edges must be canonical u < v, got (%d,%d)", u, v)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("%w: %v on (%d,%d)", ErrBadProbability, p, u, v)
	}
	if u < vw.prevU || (u == vw.prevU && v <= vw.prevV) {
		return fmt.Errorf("uncertain: v2 edges must be sorted, (%d,%d) after (%d,%d)", u, v, vw.prevU, vw.prevV)
	}
	du := uint64(u - vw.prevU)
	var dv uint64
	if du > 0 {
		dv = uint64(v - u - 1)
	} else {
		dv = uint64(v - vw.prevV - 1)
	}
	vw.edgeBuf = binary.AppendUvarint(vw.edgeBuf, du)
	vw.edgeBuf = binary.AppendUvarint(vw.edgeBuf, dv)
	if vw.allQ16 {
		if _, ok := quantizeProb(p); !ok {
			vw.allQ16 = false
		}
	}
	vw.probs = append(vw.probs, p)
	vw.prevU, vw.prevV = u, v
	vw.m++
	return nil
}

// Close emits the buffered sections and terminates the stream. It does not
// close the underlying writer.
func (vw *V2Writer) Close() error {
	if vw.closed {
		return nil
	}
	vw.closed = true
	bw := bufio.NewWriter(vw.w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], binaryVersionV2)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	probEnc := probEncQ16
	if !vw.allQ16 {
		probEnc = probEncFloat64
	}
	meta := binary.AppendUvarint(nil, uint64(vw.n))
	meta = binary.AppendUvarint(meta, uint64(vw.m))
	meta = append(meta, probEnc)
	if err := writeSection(bw, secMETA, meta); err != nil {
		return err
	}
	if err := writeSection(bw, secEDGE, vw.edgeBuf); err != nil {
		return err
	}
	var probs []byte
	if vw.allQ16 {
		probs = make([]byte, 2*len(vw.probs))
		for i, p := range vw.probs {
			q, _ := quantizeProb(p)
			binary.LittleEndian.PutUint16(probs[2*i:], q)
		}
	} else {
		probs = make([]byte, 8*len(vw.probs))
		for i, p := range vw.probs {
			binary.LittleEndian.PutUint64(probs[8*i:], math.Float64bits(p))
		}
	}
	if err := writeSection(bw, secPROB, probs); err != nil {
		return err
	}
	if err := writeSection(bw, secEND, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBinaryV2 serializes g in the sectioned version-2 format. Graphs
// whose probabilities all survive 16-bit quantization exactly get the
// compact probability column; everything else round-trips bit-exactly
// through the float64 column.
func WriteBinaryV2(w io.Writer, g View) error {
	if err := checkWritable(g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	vw, err := NewV2Writer(w, g.NumNodes())
	if err != nil {
		return err
	}
	for _, e := range g.SortedEdges() {
		if err := vw.AddEdge(e.U, e.V, e.P); err != nil {
			return err
		}
	}
	return vw.Close()
}

// readSectionHeader reads one section frame header.
func readSectionHeader(br *bufio.Reader) (id uint32, length uint64, crc uint32, err error) {
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, 0, fmt.Errorf("%w: truncated section header: %v", ErrBadFormat, err)
	}
	return binary.LittleEndian.Uint32(hdr[0:4]),
		binary.LittleEndian.Uint64(hdr[4:12]),
		binary.LittleEndian.Uint32(hdr[12:16]), nil
}

// readSectionPayload buffers and CRC-checks a known section's payload.
// maxLen guards the allocation against corrupt length fields.
func readSectionPayload(br *bufio.Reader, length uint64, crc uint32, maxLen uint64, what string) ([]byte, error) {
	if length > maxLen {
		return nil, fmt.Errorf("%w: %s section length %d exceeds limit %d", ErrBadFormat, what, length, maxLen)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated %s section: %v", ErrBadFormat, what, err)
	}
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return nil, fmt.Errorf("%w: %s section checksum mismatch (got %#x want %#x)", ErrBadFormat, what, got, crc)
	}
	return payload, nil
}

// skipSection streams an unknown section through the CRC without
// buffering it, preserving forward compatibility with future sections.
func skipSection(br *bufio.Reader, length uint64, crc uint32) error {
	h := crc32.New(crcTable)
	if _, err := io.CopyN(h, br, int64(length)); err != nil {
		return fmt.Errorf("%w: truncated section: %v", ErrBadFormat, err)
	}
	if got := h.Sum32(); got != crc {
		return fmt.Errorf("%w: section checksum mismatch (got %#x want %#x)", ErrBadFormat, got, crc)
	}
	return nil
}

// readV2Body parses the sectioned body after the magic/version prefix and
// returns the vertex count plus the decoded, validated edge slice (sorted,
// canonical, deduplicated by construction of the delta code).
func readV2Body(br *bufio.Reader) (int, []Edge, error) {
	var (
		n, m     int
		probEnc  byte
		edges    []Edge
		haveMeta bool
		haveEdge bool
		haveProb bool
	)
	for {
		id, length, crc, err := readSectionHeader(br)
		if err != nil {
			return 0, nil, err
		}
		if !haveMeta && id != secMETA {
			return 0, nil, fmt.Errorf("%w: first section %#x is not META", ErrBadFormat, id)
		}
		switch id {
		case secMETA:
			if haveMeta {
				return 0, nil, fmt.Errorf("%w: duplicate META section", ErrBadFormat)
			}
			payload, err := readSectionPayload(br, length, crc, 64, "META")
			if err != nil {
				return 0, nil, err
			}
			n, m, probEnc, err = parseMeta(payload)
			if err != nil {
				return 0, nil, err
			}
			haveMeta = true
		case secEDGE:
			if haveEdge {
				return 0, nil, fmt.Errorf("%w: duplicate EDGE section", ErrBadFormat)
			}
			// A valid encoding spends at most 2 maximal uvarints per edge.
			payload, err := readSectionPayload(br, length, crc, uint64(m)*20+16, "EDGE")
			if err != nil {
				return 0, nil, err
			}
			edges, err = decodeEdges(payload, n, m)
			if err != nil {
				return 0, nil, err
			}
			haveEdge = true
		case secPROB:
			if haveProb {
				return 0, nil, fmt.Errorf("%w: duplicate PROB section", ErrBadFormat)
			}
			if !haveEdge {
				return 0, nil, fmt.Errorf("%w: PROB section before EDGE", ErrBadFormat)
			}
			want := uint64(m) * 2
			if probEnc == probEncFloat64 {
				want = uint64(m) * 8
			}
			if length != want {
				return 0, nil, fmt.Errorf("%w: PROB section length %d, want %d", ErrBadFormat, length, want)
			}
			payload, err := readSectionPayload(br, length, crc, want, "PROB")
			if err != nil {
				return 0, nil, err
			}
			if err := decodeProbs(payload, probEnc, edges); err != nil {
				return 0, nil, err
			}
			haveProb = true
		case secEND:
			if length != 0 {
				return 0, nil, fmt.Errorf("%w: END! section with payload", ErrBadFormat)
			}
			if _, err := readSectionPayload(br, length, crc, 0, "END!"); err != nil {
				return 0, nil, err
			}
			if !haveEdge || !haveProb {
				return 0, nil, fmt.Errorf("%w: missing EDGE or PROB section", ErrBadFormat)
			}
			if err := requireEOF(br); err != nil {
				return 0, nil, err
			}
			return n, edges, nil
		default:
			if err := skipSection(br, length, crc); err != nil {
				return 0, nil, err
			}
		}
	}
}

// parseMeta decodes the META payload: n, m, probability encoding.
func parseMeta(payload []byte) (n, m int, probEnc byte, err error) {
	un, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, 0, 0, fmt.Errorf("%w: bad META node count", ErrBadFormat)
	}
	payload = payload[k:]
	um, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, 0, 0, fmt.Errorf("%w: bad META edge count", ErrBadFormat)
	}
	payload = payload[k:]
	if len(payload) != 1 {
		return 0, 0, 0, fmt.Errorf("%w: bad META length", ErrBadFormat)
	}
	probEnc = payload[0]
	if probEnc != probEncQ16 && probEnc != probEncFloat64 {
		return 0, 0, 0, fmt.Errorf("%w: unknown probability encoding %d", ErrBadFormat, probEnc)
	}
	if un > MaxFileNodes {
		return 0, 0, 0, fmt.Errorf("%w: node count %d exceeds limit", ErrBadFormat, un)
	}
	n = int(un)
	maxEdges := uint64(n) * uint64(n-1) / 2
	if um > maxEdges {
		return 0, 0, 0, fmt.Errorf("%w: %d edges impossible for %d nodes", ErrBadFormat, um, n)
	}
	return n, int(um), probEnc, nil
}

// decodeEdges decodes the delta/varint edge stream; probabilities are
// filled in by decodeProbs. The delta code makes the edges strictly
// increasing in (U,V) by construction, so sortedness, canonical u < v and
// absence of duplicates only need local checks.
func decodeEdges(payload []byte, n, m int) ([]Edge, error) {
	edges := make([]Edge, m)
	var prevU, prevV uint64
	pos := 0
	for i := 0; i < m; i++ {
		du, k := binary.Uvarint(payload[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("%w: bad varint in edge %d", ErrBadFormat, i)
		}
		pos += k
		dv, k := binary.Uvarint(payload[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("%w: bad varint in edge %d", ErrBadFormat, i)
		}
		pos += k
		u := prevU + du
		var v uint64
		if du > 0 {
			v = u + 1 + dv
		} else {
			v = prevV + 1 + dv
		}
		if u >= uint64(n) || v >= uint64(n) {
			return nil, fmt.Errorf("%w: edge %d endpoints (%d,%d) out of range for n=%d", ErrBadFormat, i, u, v, n)
		}
		edges[i] = Edge{U: NodeID(u), V: NodeID(v)}
		prevU, prevV = u, v
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes in EDGE section", ErrBadFormat, len(payload)-pos)
	}
	return edges, nil
}

// decodeProbs fills the probability column into edges.
func decodeProbs(payload []byte, probEnc byte, edges []Edge) error {
	switch probEnc {
	case probEncQ16:
		for i := range edges {
			q := binary.LittleEndian.Uint16(payload[2*i:])
			edges[i].P = float64(q) / q16Max
		}
	case probEncFloat64:
		for i := range edges {
			p := math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
			if math.IsNaN(p) || p < 0 || p > 1 {
				return fmt.Errorf("%w: edge %d probability %v outside [0,1]", ErrBadFormat, i, p)
			}
			edges[i].P = p
		}
	}
	return nil
}

// ReadCSR parses a binary graph (either version) directly into the packed
// CSR view, skipping the mutable graph's adjacency slices and edge map.
// This is the fast path for the read-only engines: decode straight to the
// layout they run on.
func ReadCSR(r io.Reader) (*CSR, error) {
	return readCSRFrom(bufio.NewReader(r))
}

// SaveBinaryV2File writes g to path in the sectioned version-2 format.
func SaveBinaryV2File(path string, g View) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinaryV2(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCSR reads an uncertain graph from path straight into a CSR view,
// auto-detecting the format like LoadFile: binary containers decode
// directly (v2 without ever building a *Graph), TSV parses through the
// mutable graph first.
func LoadCSR(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(4)
	if err == nil && len(head) == 4 && binary.LittleEndian.Uint32(head) == binaryMagic {
		return readCSRFrom(br)
	}
	g, err := ReadTSV(br)
	if err != nil {
		return nil, err
	}
	return NewCSR(g), nil
}

// readCSRFrom is ReadCSR over an existing bufio.Reader (no double
// buffering when LoadCSR has already peeked the magic).
func readCSRFrom(br *bufio.Reader) (*CSR, error) {
	version, err := readBinaryHeader(br)
	if err != nil {
		return nil, err
	}
	switch version {
	case binaryVersion:
		g, err := readV1Body(br)
		if err != nil {
			return nil, err
		}
		return NewCSR(g), nil
	case binaryVersionV2:
		n, edges, err := readV2Body(br)
		if err != nil {
			return nil, err
		}
		return newCSRFromEdges(n, edges), nil
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
}
