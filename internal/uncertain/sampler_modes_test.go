package uncertain

import (
	"math"
	"math/rand/v2"
	"testing"
)

func modeTestGraph(t *testing.T) *Graph {
	t.Helper()
	g := New(8)
	edges := []struct {
		u, v NodeID
		p    float64
	}{
		{0, 1, 0.5}, {1, 2, 0.2}, {2, 3, 0.8}, {3, 4, 1.0},
		{4, 5, 0.0}, {5, 6, 0.05}, {6, 7, 0.95}, {0, 7, 0.3},
	}
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.p); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// The antithetic kernels with mirror=false must be bit-identical to the
// plain kernels: estimators rely on even pair members replaying the
// default stream exactly.
func TestAntitheticMirrorFalseIdentical(t *testing.T) {
	g := modeTestGraph(t)
	s := g.Sampler()
	var wa, wb World
	var pa, pb rand.PCG
	for seed := uint64(0); seed < 8; seed++ {
		pa.Seed(1, seed)
		pb.Seed(1, seed)
		s.SampleInto(&wa, &pa)
		s.SampleIntoAntithetic(&wb, &pb, false)
		for i := 0; i < g.NumEdges(); i++ {
			if wa.Present(i) != wb.Present(i) {
				t.Fatalf("seed %d edge %d: SampleIntoAntithetic(mirror=false) diverged from SampleInto", seed, i)
			}
		}
		pa.Seed(1, seed)
		pb.Seed(1, seed)
		s.SampleIntoGeometric(&wa, &pa)
		s.SampleIntoGeometricAntithetic(&wb, &pb, false)
		for i := 0; i < g.NumEdges(); i++ {
			if wa.Present(i) != wb.Present(i) {
				t.Fatalf("seed %d edge %d: geometric antithetic(mirror=false) diverged", seed, i)
			}
		}
	}
}

// At p = 0.5 the threshold is exactly 2^52... not quite: t = ceil(0.5*2^53)
// = 2^52. d < 2^52 iff mask53-d >= 2^52 (d and its complement never land on
// the same side), so the mirror world is the exact complement of the plain
// world on every p=0.5 edge. The general antithetic guarantee follows the
// same bijection argument; this pins the sharpest case.
func TestAntitheticMirrorComplementAtHalf(t *testing.T) {
	g := New(4)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1], 0.5); err != nil {
			t.Fatal(err)
		}
	}
	s := g.Sampler()
	var plain, mirror World
	var pa, pb rand.PCG
	for seed := uint64(0); seed < 32; seed++ {
		pa.Seed(9, seed)
		pb.Seed(9, seed)
		s.SampleIntoAntithetic(&plain, &pa, false)
		s.SampleIntoAntithetic(&mirror, &pb, true)
		for i := 0; i < 3; i++ {
			if plain.Present(i) == mirror.Present(i) {
				t.Fatalf("seed %d edge %d: mirror world must complement the plain world at p=0.5", seed, i)
			}
		}
	}
}

// Antithetic marginals stay exact under mirroring: over many pairs, the
// mirrored worlds alone must hit each edge at rate p (the complement is a
// bijection on the 53-bit draws, so exactly ceil(p*2^53) of them pass).
func TestAntitheticMirrorMarginals(t *testing.T) {
	g := modeTestGraph(t)
	s := g.Sampler()
	const n = 40000
	counts := make([]int, g.NumEdges())
	var w World
	var pcg rand.PCG
	for i := 0; i < n; i++ {
		pcg.Seed(3, uint64(i))
		s.SampleIntoAntithetic(&w, &pcg, true)
		for e := 0; e < g.NumEdges(); e++ {
			if w.Present(e) {
				counts[e]++
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		p := g.Edge(e).P
		got := float64(counts[e]) / n
		// 6-sigma binomial band; deterministic seeds make this stable.
		tol := 6*math.Sqrt(p*(1-p)/n) + 1e-9
		if math.Abs(got-p) > tol {
			t.Errorf("edge %d: mirrored marginal %.4f, want %.4f +- %.4f", e, got, p, tol)
		}
	}
}

// The hashed modes are pure functions of (seed, index, endpoints): same
// inputs replay the same world, certain/impossible edges are pinned, and
// different seeds decorrelate.
func TestHashedModesDeterministic(t *testing.T) {
	g := modeTestGraph(t)
	s := g.Sampler()
	for _, mode := range []struct {
		name string
		draw func(w *World, seed uint64, idx int)
	}{
		{"stratified", s.SampleIntoStratified},
		{"coupled", s.SampleIntoCoupled},
	} {
		var a, b World
		diff := 0
		for idx := 0; idx < 64; idx++ {
			mode.draw(&a, 42, idx)
			mode.draw(&b, 42, idx)
			for e := 0; e < g.NumEdges(); e++ {
				if a.Present(e) != b.Present(e) {
					t.Fatalf("%s: world %d not deterministic at edge %d", mode.name, idx, e)
				}
			}
			if !a.Present(3) {
				t.Fatalf("%s: world %d dropped the p=1 edge", mode.name, idx)
			}
			if a.Present(4) {
				t.Fatalf("%s: world %d included the p=0 edge", mode.name, idx)
			}
			mode.draw(&b, 43, idx)
			for e := 0; e < g.NumEdges(); e++ {
				if a.Present(e) != b.Present(e) {
					diff++
				}
			}
		}
		if diff == 0 {
			t.Errorf("%s: changing the seed never changed any world", mode.name)
		}
	}
}

// Marginal sanity for the hashed modes: per-edge hit rates over many
// indices track p. The stratified orbit makes the counts low-discrepancy
// (closer than binomial); the coupled hash behaves like an iid stream.
func TestHashedModesMarginals(t *testing.T) {
	g := modeTestGraph(t)
	s := g.Sampler()
	const n = 40000
	for _, mode := range []struct {
		name string
		draw func(w *World, seed uint64, idx int)
	}{
		{"stratified", s.SampleIntoStratified},
		{"coupled", s.SampleIntoCoupled},
	} {
		counts := make([]int, g.NumEdges())
		var w World
		for i := 0; i < n; i++ {
			mode.draw(&w, 17, i)
			for e := 0; e < g.NumEdges(); e++ {
				if w.Present(e) {
					counts[e]++
				}
			}
		}
		for e := 0; e < g.NumEdges(); e++ {
			p := g.Edge(e).P
			got := float64(counts[e]) / n
			tol := 6*math.Sqrt(p*(1-p)/n) + 1e-9
			if math.Abs(got-p) > tol {
				t.Errorf("%s edge %d: marginal %.4f, want %.4f +- %.4f", mode.name, e, got, p, tol)
			}
		}
	}
}

// The common-random-numbers contract of the coupled (and stratified) mode:
// draws are keyed by endpoints, not edge position, so a graph sharing an
// edge with another — at a DIFFERENT index and among different neighbors —
// draws the identical presence for it whenever the probability matches.
func TestCoupledSharedEdgesAgreeAcrossGraphs(t *testing.T) {
	ga := New(6)
	for _, e := range []struct {
		u, v NodeID
		p    float64
	}{{0, 1, 0.4}, {1, 2, 0.7}, {2, 3, 0.15}, {3, 4, 0.6}} {
		if err := ga.AddEdge(e.u, e.v, e.p); err != nil {
			t.Fatal(err)
		}
	}
	// gb shares three of ga's edges but at shifted indices (an extra edge
	// first) and with one probability changed.
	gb := New(6)
	for _, e := range []struct {
		u, v NodeID
		p    float64
	}{{4, 5, 0.5}, {0, 1, 0.4}, {1, 2, 0.7}, {2, 3, 0.9}, {3, 4, 0.6}} {
		if err := gb.AddEdge(e.u, e.v, e.p); err != nil {
			t.Fatal(err)
		}
	}
	sa, sb := ga.Sampler(), gb.Sampler()
	// (edge in ga, matching edge in gb) with identical endpoints+p.
	shared := [][2]int{{0, 1}, {1, 2}, {3, 4}}
	for _, mode := range []struct {
		name  string
		drawA func(w *World, seed uint64, idx int)
		drawB func(w *World, seed uint64, idx int)
	}{
		{"coupled", sa.SampleIntoCoupled, sb.SampleIntoCoupled},
		{"stratified", sa.SampleIntoStratified, sb.SampleIntoStratified},
	} {
		var wa, wb World
		for idx := 0; idx < 512; idx++ {
			mode.drawA(&wa, 23, idx)
			mode.drawB(&wb, 23, idx)
			for _, pair := range shared {
				if wa.Present(pair[0]) != wb.Present(pair[1]) {
					t.Fatalf("%s world %d: shared edge drew differently (ga[%d] vs gb[%d])",
						mode.name, idx, pair[0], pair[1])
				}
			}
		}
	}
}
