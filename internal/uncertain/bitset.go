package uncertain

import "math/bits"

// Bitset is a packed bit vector over uint64 words: bit i lives in word
// i/64 at position i%64. It is the presence representation of possible
// worlds: one bit per edge index, 64 edges per word, so whole-world
// operations (population counts, set-bit iteration, copies) run
// word-parallel instead of one branchy bool at a time.
type Bitset []uint64

// bitsetWords returns the number of words needed to hold n bits.
func bitsetWords(n int) int { return (n + 63) / 64 }

// NewBitset returns a zeroed bitset with capacity for n bits.
func NewBitset(n int) Bitset { return make(Bitset, bitsetWords(n)) }

// Get reports whether bit i is set.
func (b Bitset) Get(i int) bool { return b[uint(i)>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bitset) Set(i int) { b[uint(i)>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bitset) Clear(i int) { b[uint(i)>>6] &^= 1 << (uint(i) & 63) }

// Reset zeroes every word.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEachSet calls fn for every set bit in ascending order.
func (b Bitset) ForEachSet(fn func(i int)) {
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// BitsetFromMask packs a bool mask into a bitset.
func BitsetFromMask(mask []bool) Bitset {
	b := NewBitset(len(mask))
	for i, p := range mask {
		if p {
			b.Set(i)
		}
	}
	return b
}

// Mask unpacks the first n bits into a fresh bool slice.
func (b Bitset) Mask(n int) []bool {
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = b.Get(i)
	}
	return mask
}

// grow returns a bitset backed by b with capacity for exactly n bits,
// reusing b's storage when large enough. All words are zeroed.
func (b Bitset) grow(n int) Bitset {
	words := bitsetWords(n)
	if cap(b) < words {
		return make(Bitset, words)
	}
	b = b[:words]
	b.Reset()
	return b
}
