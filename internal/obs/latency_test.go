package obs

import (
	"sync"
	"testing"
	"time"
)

// TestLatencyRegistry: get-or-create identity, concurrent recording and
// snapshot quantile ordering for the latency-class instrument.
func TestLatencyRegistry(t *testing.T) {
	r := NewRegistry()
	l := r.Latency("query.latency.all")
	if r.Latency("query.latency.all") != l {
		t.Fatal("Latency is not get-or-create")
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				l.Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()

	s := r.Snapshot().Latencies["query.latency.all"]
	if s.Count != 4000 {
		t.Fatalf("count = %d, want 4000", s.Count)
	}
	if !(s.MinNS <= s.P50NS && s.P50NS <= s.P90NS && s.P90NS <= s.P99NS &&
		s.P99NS <= s.P999NS && s.P999NS <= s.MaxNS) {
		t.Fatalf("quantiles not ordered: %+v", s)
	}
	if s.MinNS != int64(time.Microsecond) || s.MaxNS != int64(time.Millisecond) {
		t.Fatalf("min/max = %d/%d", s.MinNS, s.MaxNS)
	}
	if mean := s.Mean(); mean < 4e5 || mean > 6e5 {
		t.Fatalf("mean = %v, want ~500µs", mean)
	}
}

// TestLatencyCorrectedObserve: the CO back-fill reaches the registry
// instrument (count grows by the synthesized ramp, quantiles shift up).
func TestLatencyCorrectedObserve(t *testing.T) {
	r := NewRegistry()
	l := r.Latency("lat")
	for i := 0; i < 99; i++ {
		l.Observe(time.Millisecond)
	}
	l.ObserveCorrected(time.Second, 10*time.Millisecond)
	s := l.Snapshot()
	// 99 plain + 1 stalled + 99 back-filled ramp samples (990ms..10ms).
	if s.Count != 199 {
		t.Fatalf("count = %d, want 199", s.Count)
	}
	if s.P99NS < int64(900*time.Millisecond) {
		t.Fatalf("corrected p99 = %v, want stall-dominated", time.Duration(s.P99NS))
	}
}
