// Package wideevent emits one-line JSON "wide events": a single
// structured record per request carrying every dimension of that request
// — identity, kind, parameters, outcome, latency — so questions that
// would need a new metric ("p99 of knn queries with k>32 that errored")
// are answered by filtering the event log after the fact.
//
// One event per request does not survive thousands of requests per
// second, so the writer samples: errors and slow requests (the events
// worth keeping) are always written, and the "ok" bulk is kept 1-in-N.
// Every event records the sampling rate it survived, so downstream
// aggregation can re-weight counts.
//
// Like the rest of the obs subsystem a nil *Writer drops everything, so
// the request path needs no gating.
package wideevent

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one wide event. Attrs carries the request-specific dimensions
// (query parameters, target nodes, ...) flattened into the record.
type Event struct {
	At        time.Time `json:"at"`
	RequestID string    `json:"request_id,omitempty"`
	Kind      string    `json:"kind"`
	Outcome   string    `json:"outcome"` // "ok" or "error"
	Error     string    `json:"error,omitempty"`
	LatencyNS int64     `json:"latency_ns"`
	// SampledN is the 1-in-N rate this event survived: 1 for always-kept
	// events (errors, slow requests), the configured SampleEvery for the
	// ok bulk. Aggregations multiply counts by it.
	SampledN int            `json:"sampled_n"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// Options configures a Writer.
type Options struct {
	// SampleEvery keeps 1-in-N ok events (deterministic counter, not
	// random, so tests and replays are stable). Values <= 1 keep all.
	SampleEvery int
	// SlowThreshold, when positive, always keeps events at or above this
	// latency regardless of sampling — tail behavior is what the log is
	// for.
	SlowThreshold time.Duration
}

// Writer appends events as JSON lines. Safe for concurrent use; nil is
// a no-op.
type Writer struct {
	opts Options

	mu      sync.Mutex
	w       *bufio.Writer
	c       io.Closer
	enc     *json.Encoder
	seq     int64
	written int64
	dropped int64
	err     error
}

// NewWriter wraps w. If w also implements io.Closer, Close closes it.
func NewWriter(w io.Writer, opts Options) *Writer {
	bw := bufio.NewWriter(w)
	wr := &Writer{opts: opts, w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		wr.c = c
	}
	return wr
}

// Open appends to the named file (creating it if absent).
func Open(path string, opts Options) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return NewWriter(f, opts), nil
}

// keepLocked decides an event's fate and stamps its survival rate.
func (w *Writer) keepLocked(e *Event) bool {
	e.SampledN = 1
	if e.Outcome != "ok" {
		return true
	}
	if w.opts.SlowThreshold > 0 && e.LatencyNS >= int64(w.opts.SlowThreshold) {
		return true
	}
	if w.opts.SampleEvery <= 1 {
		return true
	}
	w.seq++
	if (w.seq-1)%int64(w.opts.SampleEvery) == 0 {
		e.SampledN = w.opts.SampleEvery
		return true
	}
	return false
}

// Write records one event, subject to sampling. The first write error
// sticks and is returned by Close (and every later Write). No-op on nil.
func (w *Writer) Write(e Event) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.keepLocked(&e) {
		w.dropped++
		return nil
	}
	if w.err != nil {
		return w.err
	}
	if err := w.enc.Encode(e); err != nil {
		w.err = err
		return err
	}
	w.written++
	return nil
}

// Written returns the number of events written so far (0 on nil).
func (w *Writer) Written() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// Dropped returns the number of events the sampler discarded.
func (w *Writer) Dropped() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// Close flushes buffered events and closes the underlying file, if the
// writer owns one. Safe on nil.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.err
	if ferr := w.w.Flush(); err == nil {
		err = ferr
	}
	if w.c != nil {
		if cerr := w.c.Close(); err == nil {
			err = cerr
		}
		w.c = nil
	}
	return err
}

// Read parses a wide-event log (one JSON object per line) back into
// events — the replay/analysis side of the format.
func Read(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, e)
	}
}

// ReadFile reads a wide-event log from disk.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
