package wideevent

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func ev(outcome string, lat time.Duration) Event {
	return Event{At: time.Unix(100, 0).UTC(), Kind: "pair_reliability",
		Outcome: outcome, LatencyNS: int64(lat)}
}

// TestSamplingPolicy: errors and slow events always survive; ok events
// are kept deterministically 1-in-N with the rate stamped on them.
func TestSamplingPolicy(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{SampleEvery: 10, SlowThreshold: 50 * time.Millisecond})

	for i := 0; i < 100; i++ {
		if err := w.Write(ev("ok", time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	w.Write(ev("error", time.Millisecond))
	w.Write(ev("ok", time.Second)) // slow: bypasses sampling
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// 100 ok events at 1-in-10 = 10 kept, plus the error and the slow one.
	if len(events) != 12 {
		t.Fatalf("kept %d events, want 12", len(events))
	}
	if w.Written() != 12 || w.Dropped() != 90 {
		t.Fatalf("written/dropped = %d/%d, want 12/90", w.Written(), w.Dropped())
	}
	var okSampled, alwaysKept int
	for _, e := range events {
		switch {
		case e.Outcome == "error", e.LatencyNS >= int64(50*time.Millisecond):
			alwaysKept++
			if e.SampledN != 1 {
				t.Fatalf("always-kept event has sampled_n=%d", e.SampledN)
			}
		default:
			okSampled++
			if e.SampledN != 10 {
				t.Fatalf("sampled ok event has sampled_n=%d, want 10", e.SampledN)
			}
		}
	}
	if okSampled != 10 || alwaysKept != 2 {
		t.Fatalf("okSampled=%d alwaysKept=%d", okSampled, alwaysKept)
	}
	// Re-weighting the sampled events recovers the true ok count.
	total := 0
	for _, e := range events {
		if e.Outcome == "ok" && e.LatencyNS < int64(50*time.Millisecond) {
			total += e.SampledN
		}
	}
	if total != 100 {
		t.Fatalf("re-weighted ok count = %d, want 100", total)
	}
}

// TestRoundTripFile: Open/Write/Close then ReadFile preserves every
// field, including nested attrs.
func TestRoundTripFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := Event{
		At: time.Unix(42, 0).UTC(), RequestID: "q-00000001", Kind: "knn",
		Outcome: "ok", LatencyNS: 123456,
		Attrs: map[string]any{"u": float64(7), "k": float64(10)},
	}
	if err := w.Write(in); err != nil {
		t.Fatal(err)
	}
	w.Write(Event{At: time.Unix(43, 0).UTC(), Kind: "degree", Outcome: "error", Error: "node out of range"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events", len(events))
	}
	got := events[0]
	if got.RequestID != in.RequestID || got.Kind != in.Kind || got.LatencyNS != in.LatencyNS ||
		!got.At.Equal(in.At) || got.Attrs["u"] != in.Attrs["u"] || got.SampledN != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if events[1].Error != "node out of range" || events[1].Outcome != "error" {
		t.Fatalf("error event mismatch: %+v", events[1])
	}
}

// TestConcurrentWrites: the writer serializes concurrent events into
// valid JSONL (meaningful under -race).
func TestConcurrentWrites(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{SampleEvery: 3})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Write(ev("ok", time.Microsecond))
			}
		}()
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatalf("concurrent writes corrupted the log: %v", err)
	}
	if int64(len(events)) != w.Written() {
		t.Fatalf("parsed %d events, writer reports %d", len(events), w.Written())
	}
	// Deterministic 1-in-3 regardless of interleaving: ceil(1600/3).
	if len(events) != 534 {
		t.Fatalf("kept %d, want 534", len(events))
	}
}

// TestNilWriter: the nil writer absorbs everything.
func TestNilWriter(t *testing.T) {
	var w *Writer
	if err := w.Write(ev("ok", 0)); err != nil {
		t.Fatal(err)
	}
	if w.Written() != 0 || w.Dropped() != 0 {
		t.Fatal("nil writer counted something")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
