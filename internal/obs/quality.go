package obs

import (
	"math"
	"sync"
)

// Welford is a streaming mean/variance accumulator (Welford's algorithm,
// with Chan et al.'s pairwise merge for combining per-worker partials).
// The zero value is an empty accumulator ready for use. Welford itself is
// not concurrency-safe; use the Quality registry instrument for shared
// accumulation, or accumulate per worker and Merge.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator's state into w.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// Count returns the number of observations.
func (w Welford) Count() int64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	v := w.m2 / float64(w.n-1)
	if v < 0 {
		return 0 // floating-point cancellation guard
	}
	return v
}

// StdDev returns the sample standard deviation.
func (w Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean, sqrt(Var/n): the spread
// of the Monte Carlo estimate itself rather than of the per-world values.
func (w Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return math.Sqrt(w.Variance() / float64(w.n))
}

// CI95 returns the normal-approximation 95% confidence interval of the
// mean, mean +/- 1.96*stderr. Valid for the sample sizes Monte Carlo
// estimators run at (the CLT regime); degenerate (lo==hi==mean) when the
// accumulator has fewer than two observations.
func (w Welford) CI95() (lo, hi float64) {
	half := 1.96 * w.StdErr()
	return w.mean - half, w.mean + half
}

// RelStdErr returns the relative standard error stderr/|mean| — the
// convergence figure of merit for a Monte Carlo estimate. Zero mean yields
// 0 when the spread is also zero (a converged all-zero estimate) and +Inf
// otherwise (an estimate with noise but no signal).
func (w Welford) RelStdErr() float64 {
	se := w.StdErr()
	if w.mean == 0 {
		if se == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return se / math.Abs(w.mean)
}

// Snapshot freezes the accumulator into its serializable form. An
// infinite relative standard error (noise around a zero mean) is clamped
// to MaxFloat64 so the snapshot stays valid JSON.
func (w Welford) Snapshot() QualitySnapshot {
	lo, hi := w.CI95()
	rse := w.RelStdErr()
	if math.IsInf(rse, 1) {
		rse = math.MaxFloat64
	}
	return QualitySnapshot{
		Count:     w.n,
		Mean:      w.mean,
		Variance:  w.Variance(),
		StdErr:    w.StdErr(),
		CI95Lo:    lo,
		CI95Hi:    hi,
		RelStdErr: rse,
	}
}

// Quality is a registry instrument tracking the statistical health of a
// stream of per-sample values: a concurrency-safe Welford accumulator from
// which standard error, confidence interval and relative-SE convergence
// figures are derived. Like every obs instrument it is nil-safe: a nil
// *Quality drops updates.
type Quality struct {
	mu sync.Mutex
	w  Welford
}

// Observe folds one per-sample value into the stream. No-op on nil.
func (q *Quality) Observe(v float64) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.w.Add(v)
	q.mu.Unlock()
}

// Merge folds a locally accumulated partial into the stream. No-op on nil.
func (q *Quality) Merge(w Welford) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.w.Merge(w)
	q.mu.Unlock()
}

// State returns the current accumulator state (zero for nil).
func (q *Quality) State() Welford {
	if q == nil {
		return Welford{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.w
}

// QualitySnapshot is the frozen state of one quality stream: the moments
// plus the derived estimator-health figures.
type QualitySnapshot struct {
	Count     int64   `json:"count"`
	Mean      float64 `json:"mean"`
	Variance  float64 `json:"variance"`
	StdErr    float64 `json:"stderr"`
	CI95Lo    float64 `json:"ci95_lo"`
	CI95Hi    float64 `json:"ci95_hi"`
	RelStdErr float64 `json:"rel_stderr"`
}
