// Package journal persists a run's telemetry as an append-only JSONL
// journal: one self-describing record per line, in write order. A run is
// bracketed by "begin" and "end" records; between them the writer appends
// periodic "snapshot" records (typically from the expose differ's
// OnSnapshot hook) and "span" records carrying finished phase traces. The
// Reader reloads a journal into per-run structures whose snapshots are
// the identical obs.Snapshot values that were written, so cross-run
// comparison works on the same structs the live registry produces.
//
// A nil *Writer is usable: every method is a no-op, matching the obs
// nil-disables-everything contract. CLIs hold one unconditionally and
// only open a file when -journal is set.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"chameleon/internal/obs"
)

// Record is one journal line. Type selects which of the optional fields
// are meaningful:
//
//	"begin":    RunID, At, Command, Args
//	"snapshot": RunID, At, Snapshot, Rates
//	"span":     RunID, At, Span
//	"end":      RunID, At, Status, Snapshot (the final CI report),
//	            Error (what stopped a "failed"/"interrupted" run)
type Record struct {
	Type     string             `json:"type"`
	RunID    string             `json:"run_id"`
	At       time.Time          `json:"at"`
	Command  string             `json:"command,omitempty"`
	Args     []string           `json:"args,omitempty"`
	Status   string             `json:"status,omitempty"`
	Error    string             `json:"error,omitempty"`
	Snapshot *obs.Snapshot      `json:"snapshot,omitempty"`
	Rates    map[string]float64 `json:"rates,omitempty"`
	Span     *obs.Span          `json:"span,omitempty"`
}

var runSeq atomic.Int64

// NewRunID returns a journal run identifier: UTC timestamp, pid, and a
// process-local sequence number, unique across concurrent runs appending
// to a shared journal file.
func NewRunID(now time.Time) string {
	return fmt.Sprintf("%s-%d-%d", now.UTC().Format("20060102T150405"), os.Getpid(), runSeq.Add(1))
}

// Writer appends records to a journal stream. Safe for concurrent use;
// each record is written with a single buffered-flush so lines from
// concurrent writers through the same *Writer never interleave.
type Writer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	runID string
}

// NewWriter wraps an open stream. The caller keeps ownership of w unless
// it is also an io.Closer handed in via Open.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Open opens (creating or appending) the journal file at path.
func Open(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	jw := NewWriter(f)
	jw.c = f
	return jw, nil
}

// RunID returns the identifier established by Begin ("" before Begin or
// on a nil writer).
func (w *Writer) RunID() string {
	if w == nil {
		return ""
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.runID
}

func (w *Writer) append(rec Record) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if rec.RunID == "" {
		rec.RunID = w.runID
	}
	enc := json.NewEncoder(w.w)
	if err := enc.Encode(rec); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return w.w.Flush()
}

// Begin opens a run: allocates a run ID (unless one is pre-set via the
// returned ID of a previous Begin) and appends the "begin" record.
func (w *Writer) Begin(command string, args []string, at time.Time) (string, error) {
	if w == nil {
		return "", nil
	}
	id := NewRunID(at)
	w.mu.Lock()
	w.runID = id
	w.mu.Unlock()
	return id, w.append(Record{Type: "begin", RunID: id, At: at, Command: command, Args: args})
}

// WriteSnapshot appends a periodic metrics snapshot with the differ's
// counter rates. Its signature matches the expose OnSnapshot hook:
//
//	srv := expose.New(o, expose.Options{OnSnapshot: func(at time.Time, s obs.Snapshot, r map[string]float64) {
//		jw.WriteSnapshot(at, s, r)
//	}})
func (w *Writer) WriteSnapshot(at time.Time, s obs.Snapshot, rates map[string]float64) error {
	if w == nil {
		return nil
	}
	return w.append(Record{Type: "snapshot", At: at, Snapshot: &s, Rates: rates})
}

// WriteSpan appends a finished phase trace.
func (w *Writer) WriteSpan(at time.Time, s *obs.Span) error {
	if w == nil || s == nil {
		return nil
	}
	return w.append(Record{Type: "span", At: at, Span: s})
}

// End closes the run with its status ("done", "failed" or "interrupted")
// and the final registry snapshot — the run's CI report, quality streams
// included.
func (w *Writer) End(at time.Time, status string, final obs.Snapshot) error {
	return w.EndWithError(at, status, "", final)
}

// EndWithError is End carrying the message of whatever stopped the run —
// the error of a "failed" run, the signal or deadline of an "interrupted"
// one — so a replayed journal can say why, not just that, a run died.
func (w *Writer) EndWithError(at time.Time, status, errMsg string, final obs.Snapshot) error {
	if w == nil {
		return nil
	}
	return w.append(Record{Type: "end", At: at, Status: status, Error: errMsg, Snapshot: &final})
}

// Close flushes and closes the underlying file (no-op for NewWriter over
// a caller-owned stream, or a nil writer).
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.c != nil {
		c := w.c
		w.c = nil
		return c.Close()
	}
	return nil
}

// SnapshotPoint is one periodic snapshot within a run.
type SnapshotPoint struct {
	At       time.Time
	Snapshot obs.Snapshot
	Rates    map[string]float64
}

// Run is one replayed run: its identity, every periodic snapshot in
// journal order, the recorded phase traces, and the final snapshot. A run
// without an end record keeps Status "running" and a zero End time — the
// signature of a journal truncated mid-run (a crash or a kill -9 that
// outran the interrupt handler).
type Run struct {
	ID        string
	Command   string
	Args      []string
	Start     time.Time
	End       time.Time
	Status    string
	Error     string // what stopped a "failed"/"interrupted" run, if recorded
	Snapshots []SnapshotPoint
	Spans     []*obs.Span
	Final     *obs.Snapshot
}

// Truncated reports whether the run never reached its end record: it is
// either still in flight or its process died without flushing one.
func (r *Run) Truncated() bool { return r.End.IsZero() }

// Read replays a journal stream into runs, keyed and ordered by first
// appearance. Records for runs whose "begin" line is missing (a truncated
// journal) still accumulate under their run ID. Malformed lines abort
// with an error naming the line number.
func Read(r io.Reader) ([]*Run, error) {
	byID := map[string]*Run{}
	var order []*Run
	get := func(id string) *Run {
		run, ok := byID[id]
		if !ok {
			run = &Run{ID: id}
			byID[id] = run
			order = append(order, run)
		}
		return run
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26) // snapshots of big sweeps are long lines
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("journal: line %d: %w", line, err)
		}
		run := get(rec.RunID)
		switch rec.Type {
		case "begin":
			run.Command, run.Args, run.Start = rec.Command, rec.Args, rec.At
			if run.Status == "" {
				run.Status = "running"
			}
		case "snapshot":
			if rec.Snapshot == nil {
				return nil, fmt.Errorf("journal: line %d: snapshot record without snapshot", line)
			}
			run.Snapshots = append(run.Snapshots, SnapshotPoint{At: rec.At, Snapshot: *rec.Snapshot, Rates: rec.Rates})
		case "span":
			if rec.Span == nil {
				return nil, fmt.Errorf("journal: line %d: span record without span", line)
			}
			run.Spans = append(run.Spans, rec.Span)
		case "end":
			run.End, run.Status, run.Error, run.Final = rec.At, rec.Status, rec.Error, rec.Snapshot
		default:
			return nil, fmt.Errorf("journal: line %d: unknown record type %q", line, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return order, nil
}

// ReadFile replays the journal file at path.
func ReadFile(path string) ([]*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	return Read(f)
}
