package journal

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/obs/expose"
)

func populatedObserver() *obs.Observer {
	o := obs.NewObserver()
	r := o.Registry()
	r.Counter("mc.worlds_sampled").Add(512)
	r.Gauge("err.stderr.mean").Set(0.03125)
	h := r.Histogram("op.seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.002, 0.02, 0.2, 2} {
		h.Observe(v)
	}
	q := r.Quality("mc.quality.ExpectedConnectedPairs")
	for _, v := range []float64{10, 12, 11, 9, 8} {
		q.Observe(v)
	}
	return o
}

// TestRoundTrip is the acceptance-criterion test: a journal written from
// live snapshots replays into IDENTICAL snapshot structs.
func TestRoundTrip(t *testing.T) {
	o := populatedObserver()
	snap1 := o.Registry().Snapshot()
	o.Registry().Counter("mc.worlds_sampled").Add(100)
	snap2 := o.Registry().Snapshot()

	span := obs.NewSpan("anonymize")
	child := span.StartChild("sigma-search")
	child.SetAttr("sigma", 0.5)
	child.End()
	span.End()

	var buf bytes.Buffer
	w := NewWriter(&buf)
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	id, err := w.Begin("experiments", []string{"-quick", "-serve", ":9100"}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if id == "" || w.RunID() != id {
		t.Fatalf("Begin run ID = %q, writer holds %q", id, w.RunID())
	}
	rates := map[string]float64{"mc.worlds_sampled": 51.2}
	if err := w.WriteSnapshot(t0.Add(5*time.Second), snap1, rates); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSnapshot(t0.Add(10*time.Second), snap2, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSpan(t0.Add(11*time.Second), span); err != nil {
		t.Fatal(err)
	}
	if err := w.End(t0.Add(12*time.Second), "done", snap2); err != nil {
		t.Fatal(err)
	}

	runs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("replayed %d runs, want 1", len(runs))
	}
	run := runs[0]
	if run.ID != id || run.Command != "experiments" || run.Status != "done" {
		t.Errorf("run identity = %+v", run)
	}
	if !reflect.DeepEqual(run.Args, []string{"-quick", "-serve", ":9100"}) {
		t.Errorf("args = %v", run.Args)
	}
	if !run.Start.Equal(t0) || !run.End.Equal(t0.Add(12*time.Second)) {
		t.Errorf("start/end = %v / %v", run.Start, run.End)
	}

	if len(run.Snapshots) != 2 {
		t.Fatalf("replayed %d snapshots, want 2", len(run.Snapshots))
	}
	if !reflect.DeepEqual(run.Snapshots[0].Snapshot, snap1) {
		t.Errorf("snapshot 1 not identical:\ngot  %+v\nwant %+v", run.Snapshots[0].Snapshot, snap1)
	}
	if !reflect.DeepEqual(run.Snapshots[0].Rates, rates) {
		t.Errorf("rates = %v, want %v", run.Snapshots[0].Rates, rates)
	}
	if !reflect.DeepEqual(run.Snapshots[1].Snapshot, snap2) {
		t.Errorf("snapshot 2 not identical")
	}
	if run.Final == nil || !reflect.DeepEqual(*run.Final, snap2) {
		t.Errorf("final snapshot not identical")
	}

	// Spans round-trip up to JSON equivalence (Attrs values decode as
	// generic JSON numbers).
	if len(run.Spans) != 1 {
		t.Fatalf("replayed %d spans, want 1", len(run.Spans))
	}
	wantSpan, _ := json.Marshal(span)
	gotSpan, _ := json.Marshal(run.Spans[0])
	if !bytes.Equal(wantSpan, gotSpan) {
		t.Errorf("span round-trip:\ngot  %s\nwant %s", gotSpan, wantSpan)
	}
}

// TestRoundTripExtremeFloats: the snapshot clamps +Inf RSE to
// MaxFloat64 precisely so journal lines stay valid JSON; make sure that
// value survives the trip bit-exactly.
func TestRoundTripExtremeFloats(t *testing.T) {
	o := obs.NewObserver()
	q := o.Registry().Quality("noise.around.zero")
	q.Observe(-1)
	q.Observe(1)
	snap := o.Registry().Snapshot()
	if snap.Quality["noise.around.zero"].RelStdErr != math.MaxFloat64 {
		t.Fatalf("precondition: RSE = %v, want MaxFloat64", snap.Quality["noise.around.zero"].RelStdErr)
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Begin("t", nil, time.Unix(0, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	if err := w.End(time.Unix(1, 0).UTC(), "done", snap); err != nil {
		t.Fatal(err)
	}
	runs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*runs[0].Final, snap) {
		t.Errorf("extreme-float snapshot not identical after replay")
	}
}

// TestFileAppendAcrossRuns: Open appends, so sequential runs accumulate
// in one journal file and replay as distinct runs in order.
func TestFileAppendAcrossRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	t0 := time.Date(2026, 8, 6, 9, 0, 0, 0, time.UTC)
	var ids []string
	for i := 0; i < 2; i++ {
		w, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		id, err := w.Begin("chameleon", nil, t0.Add(time.Duration(i)*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if err := w.End(t0.Add(time.Duration(i)*time.Minute+30*time.Second), "done", obs.Snapshot{}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("replayed %d runs, want 2", len(runs))
	}
	for i, run := range runs {
		if run.ID != ids[i] {
			t.Errorf("run %d ID = %q, want %q", i, run.ID, ids[i])
		}
		if run.Status != "done" {
			t.Errorf("run %d status = %q", i, run.Status)
		}
	}
	if ids[0] == ids[1] {
		t.Errorf("run IDs collide: %q", ids[0])
	}
}

// TestExposeHookIntegration: the writer's WriteSnapshot slots straight
// into the expose differ's OnSnapshot hook, journaling every tick.
func TestExposeHookIntegration(t *testing.T) {
	o := populatedObserver()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Begin("experiments", nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	srv := expose.New(o, expose.Options{OnSnapshot: func(at time.Time, s obs.Snapshot, r map[string]float64) {
		w.WriteSnapshot(at, s, r)
	}})
	srv.Poll()
	o.Registry().Counter("mc.worlds_sampled").Add(64)
	srv.Poll()
	if err := w.End(time.Now(), "done", o.Registry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	runs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || len(runs[0].Snapshots) != 2 {
		t.Fatalf("runs=%d snapshots=%d, want 1 run with 2 snapshots", len(runs), len(runs[0].Snapshots))
	}
	if got := runs[0].Snapshots[1].Snapshot.Counters["mc.worlds_sampled"]; got != 576 {
		t.Errorf("tick-2 counter = %d, want 576", got)
	}
}

// TestTruncatedAndMalformed: replay tolerates a run with no end record,
// and reports malformed lines with their line number.
func TestTruncatedAndMalformed(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Begin("experiments", nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	runs, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Status != "running" {
		t.Errorf("truncated journal: %+v", runs)
	}

	if _, err := Read(strings.NewReader("{not json\n")); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("malformed line error = %v, want line-numbered error", err)
	}
	if _, err := Read(strings.NewReader(`{"type":"wat","run_id":"x"}` + "\n")); err == nil || !strings.Contains(err.Error(), "wat") {
		t.Errorf("unknown type error = %v", err)
	}

	// Payload-less snapshot and span records are malformed, not nil
	// entries: a nil in Run.Snapshots/Run.Spans would surface as "null" in
	// journalreplay -json and panic any consumer that dereferences it.
	if _, err := Read(strings.NewReader(`{"type":"snapshot","run_id":"x"}` + "\n")); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("snapshot-without-snapshot error = %v, want line-numbered error", err)
	}
	if _, err := Read(strings.NewReader(`{"type":"span","run_id":"x"}` + "\n")); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("span-without-span error = %v, want line-numbered error", err)
	}
}

// TestEndWithError: the end record's error message survives the round
// trip, and runs with/without an end record are told apart by Truncated.
func TestEndWithError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Begin("chameleon", nil, time.Unix(10, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	if err := w.EndWithError(time.Unix(20, 0).UTC(), "interrupted", "signal: interrupt", obs.Snapshot{}); err != nil {
		t.Fatal(err)
	}
	runs, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	run := runs[0]
	if run.Status != "interrupted" || run.Error != "signal: interrupt" {
		t.Errorf("run = status %q error %q, want interrupted / signal: interrupt", run.Status, run.Error)
	}
	if run.Truncated() {
		t.Error("run with an end record reported as truncated")
	}

	// A journal that stops mid-run has no end record: truncated.
	var cut bytes.Buffer
	w2 := NewWriter(&cut)
	if _, err := w2.Begin("chameleon", nil, time.Unix(30, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	runs, err = Read(bytes.NewReader(cut.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !runs[0].Truncated() || runs[0].Status != "running" {
		t.Errorf("end-less run = truncated %v status %q, want true/running", runs[0].Truncated(), runs[0].Status)
	}
}

// TestNilWriterSafety: every method on a nil *Writer no-ops, so the CLIs
// journal unconditionally.
func TestNilWriterSafety(t *testing.T) {
	var w *Writer
	if id, err := w.Begin("x", nil, time.Now()); id != "" || err != nil {
		t.Errorf("nil Begin = %q, %v", id, err)
	}
	if w.RunID() != "" {
		t.Error("nil RunID != \"\"")
	}
	if err := w.WriteSnapshot(time.Now(), obs.Snapshot{}, nil); err != nil {
		t.Errorf("nil WriteSnapshot: %v", err)
	}
	if err := w.WriteSpan(time.Now(), obs.NewSpan("s")); err != nil {
		t.Errorf("nil WriteSpan: %v", err)
	}
	if err := w.End(time.Now(), "done", obs.Snapshot{}); err != nil {
		t.Errorf("nil End: %v", err)
	}
	if err := w.EndWithError(time.Now(), "failed", "boom", obs.Snapshot{}); err != nil {
		t.Errorf("nil EndWithError: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}
