// Package obs is the stdlib-only observability subsystem of the pipeline:
// a registry of atomic counters, gauges, fixed-bucket histograms and
// HDR-backed latency instruments with JSON and aligned-text snapshot
// export; lightweight hierarchical spans
// with monotonic timing for phase-level traces; an Observer that bundles
// both with optional structured logging; and helpers that wire the runtime
// profilers (pprof, execution trace) into the CLIs.
//
// Every type is safe to use through a nil receiver: a nil *Registry hands
// out nil instruments, and nil instruments drop updates. Instrumented hot
// paths therefore need no branching of their own — with observability off
// the cost is a pointer test per update.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// TimeBuckets are the default histogram bounds for durations in seconds,
// spanning microsecond estimator calls to minute-scale sweeps.
var TimeBuckets = []float64{
	1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60,
}

// Histogram counts observations into fixed buckets. Bucket i holds
// observations v <= bounds[i]; one implicit overflow bucket holds the rest.
// Observe is lock-free and safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry is a concurrency-safe, get-or-create collection of named
// instruments. The zero value is NOT usable; construct with NewRegistry.
// A nil *Registry is usable and hands out nil instruments.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	qualities map[string]*Quality
	lats      map[string]*Latency
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		qualities: make(map[string]*Quality),
		lats:      make(map[string]*Latency),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a usable no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Latency returns the named latency-class instrument (an HDR histogram
// over durations), creating it on first use.
func (r *Registry) Latency(name string) *Latency {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.lats[name]
	if !ok {
		l = newLatency()
		r.lats[name] = l
	}
	return l
}

// Quality returns the named estimator-quality stream, creating it on
// first use.
func (r *Registry) Quality(name string) *Quality {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.qualities[name]
	if !ok {
		q = &Quality{}
		r.qualities[name] = q
	}
	return q
}

// BucketCount is one histogram bucket in a snapshot. LE is the bucket's
// inclusive upper bound formatted as a decimal string ("+Inf" for the
// overflow bucket) so the snapshot stays valid JSON.
type BucketCount struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Mean    float64       `json:"mean"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts by
// linear interpolation inside the containing bucket, the way Prometheus's
// histogram_quantile does: the bucket's mass is assumed uniform between
// its lower and upper bound. Observations in the overflow bucket have no
// upper bound, so a quantile landing there returns the largest finite
// bound. Returns 0 for an empty histogram.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum int64
	lower, largestFinite := 0.0, 0.0
	for _, b := range h.Buckets {
		upper, isInf := bucketBound(b.LE)
		if !isInf {
			largestFinite = upper
		}
		prev := cum
		cum += b.Count
		if float64(cum) >= rank {
			if isInf {
				return largestFinite
			}
			frac := (rank - float64(prev)) / float64(b.Count)
			return lower + (upper-lower)*frac
		}
		if !isInf {
			lower = upper
		}
	}
	return largestFinite
}

// bucketBound parses a snapshot bucket's LE string back into its numeric
// upper bound; the overflow bucket reports isInf.
func bucketBound(le string) (bound float64, isInf bool) {
	if le == "+Inf" {
		return math.Inf(1), true
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, true // malformed bound: treat as unbounded
	}
	return v, false
}

// Snapshot is the frozen state of a registry. Maps serialize with sorted
// keys, so the JSON form is deterministic for a given state.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Latencies  map[string]LatencySnapshot   `json:"latencies"`
	Quality    map[string]QualitySnapshot   `json:"quality"`
}

// Snapshot freezes the registry's current state. A nil registry yields an
// empty (but fully initialized) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Latencies:  map[string]LatencySnapshot{},
		Quality:    map[string]QualitySnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		if hs.Count > 0 {
			hs.Mean = hs.Sum / float64(hs.Count)
		}
		for i := range h.counts {
			n := h.counts[i].Load()
			if n == 0 {
				continue // keep snapshots small: empty buckets are implied
			}
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			hs.Buckets = append(hs.Buckets, BucketCount{LE: le, Count: n})
		}
		s.Histograms[name] = hs
	}
	for name, l := range r.lats {
		s.Latencies[name] = l.Snapshot()
	}
	for name, q := range r.qualities {
		s.Quality[name] = q.State().Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as an aligned, alphabetically sorted text
// table.
func (s Snapshot) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(tw, "counter\t%s\t%d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(tw, "gauge\t%s\t%g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(tw, "histogram\t%s\tcount=%d sum=%.6g mean=%.6g\n", name, h.Count, h.Sum, h.Mean)
		if h.Count > 0 {
			fmt.Fprintf(tw, "\t  quantiles\tp50=%.6g p90=%.6g p99=%.6g p999=%.6g\n",
				h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Quantile(0.999))
		}
		for _, b := range h.Buckets {
			fmt.Fprintf(tw, "\t  le=%s\t%d\n", b.LE, b.Count)
		}
	}
	for _, name := range sortedKeys(s.Latencies) {
		l := s.Latencies[name]
		fmt.Fprintf(tw, "latency\t%s\tcount=%d mean=%v min=%v max=%v\n",
			name, l.Count, time.Duration(l.Mean()),
			time.Duration(l.MinNS), time.Duration(l.MaxNS))
		if l.Count > 0 {
			fmt.Fprintf(tw, "\t  quantiles\tp50=%v p90=%v p99=%v p999=%v\n",
				time.Duration(l.P50NS), time.Duration(l.P90NS),
				time.Duration(l.P99NS), time.Duration(l.P999NS))
		}
	}
	for _, name := range sortedKeys(s.Quality) {
		q := s.Quality[name]
		fmt.Fprintf(tw, "quality\t%s\tn=%d mean=%.6g stderr=%.6g ci95=[%.6g, %.6g] rse=%.4g\n",
			name, q.Count, q.Mean, q.StdErr, q.CI95Lo, q.CI95Hi, q.RelStdErr)
	}
	return tw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
