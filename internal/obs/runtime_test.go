package obs

import (
	"math"
	"runtime"
	"testing"
)

// TestRuntimeSamplerGauges: one Sample publishes plausible values for the
// scalar runtime gauges.
func TestRuntimeSamplerGauges(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	s.Sample()

	snap := reg.Snapshot()
	if g := snap.Gauges[RuntimeGoroutines]; g < 1 {
		t.Fatalf("%s = %v, want >= 1", RuntimeGoroutines, g)
	}
	if g := snap.Gauges[RuntimeHeapBytes]; g <= 0 {
		t.Fatalf("%s = %v, want > 0", RuntimeHeapBytes, g)
	}
	if g := snap.Gauges[RuntimeTotalBytes]; g < snap.Gauges[RuntimeHeapBytes] {
		t.Fatalf("total %v < heap %v", g, snap.Gauges[RuntimeHeapBytes])
	}
	if g := snap.Gauges[RuntimeGomaxprocs]; g != float64(runtime.GOMAXPROCS(0)) {
		t.Fatalf("%s = %v, want %d", RuntimeGomaxprocs, g, runtime.GOMAXPROCS(0))
	}
	if g := snap.Gauges[RuntimeGCCycles]; g < 0 {
		t.Fatalf("%s = %v, want >= 0", RuntimeGCCycles, g)
	}
}

// TestRuntimeSamplerGCPauseDelta: the first Sample only records the
// baseline; after forced GC cycles a later Sample replays the new pauses
// into the registry histogram.
func TestRuntimeSamplerGCPauseDelta(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	s.Sample() // baseline — must not replay process history

	if h, ok := reg.Snapshot().Histograms[RuntimeGCPause]; ok && h.Count > 0 {
		t.Fatalf("baseline sample replayed %d historical pauses", h.Count)
	}

	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	s.Sample()
	h, ok := reg.Snapshot().Histograms[RuntimeGCPause]
	if !ok || h.Count == 0 {
		t.Fatal("no GC pauses recorded after forced GC cycles")
	}
	if h.Sum < 0 || math.IsNaN(h.Sum) || math.IsInf(h.Sum, 0) {
		t.Fatalf("pause sum = %v", h.Sum)
	}
}

// TestRuntimeSamplerSchedLatency: quantile gauges exist, are ordered, and
// finite once goroutines have been scheduled.
func TestRuntimeSamplerSchedLatency(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	done := make(chan struct{})
	for i := 0; i < 16; i++ {
		go func() { done <- struct{}{} }()
	}
	for i := 0; i < 16; i++ {
		<-done
	}
	s.Sample()
	snap := reg.Snapshot()
	p50 := snap.Gauges[RuntimeSchedLatency+".p50"]
	p90 := snap.Gauges[RuntimeSchedLatency+".p90"]
	p99 := snap.Gauges[RuntimeSchedLatency+".p99"]
	if p50 < 0 || p90 < p50 || p99 < p90 {
		t.Fatalf("latency quantiles out of order: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	if math.IsInf(p99, 0) || math.IsNaN(p99) {
		t.Fatalf("p99 = %v, want finite", p99)
	}
}

// TestRuntimeSamplerNil: a nil registry yields a nil sampler and Sample
// stays a no-op, matching the package's nil-safety convention.
func TestRuntimeSamplerNil(t *testing.T) {
	if s := NewRuntimeSampler(nil); s != nil {
		t.Fatal("nil registry must yield nil sampler")
	}
	var s *RuntimeSampler
	s.Sample() // must not panic
}

// TestBucketMidpoint covers the infinite-edge fallbacks.
func TestBucketMidpoint(t *testing.T) {
	inf := math.Inf(1)
	bounds := []float64{math.Inf(-1), 1, 3, inf}
	for i, want := range []float64{1, 2, 3} {
		if got := bucketMidpoint(bounds, i); got != want {
			t.Fatalf("bucket %d midpoint = %v, want %v", i, got, want)
		}
	}
	if got := bucketMidpoint(bounds, 7); got != 0 {
		t.Fatalf("out-of-range midpoint = %v, want 0", got)
	}
}
