package obs

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// StartProfiles enables the runtime profilers selected by non-empty paths:
// a CPU profile, a heap profile (written at stop time, after a GC), and an
// execution trace. It returns a stop function that must be called exactly
// once — typically deferred from main — to flush and close everything.
//
// On error, anything already started is stopped before returning.
func StartProfiles(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}

	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			cleanup()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: execution trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("obs: execution trace: %w", err)
		}
	}

	return func() error {
		var errs []error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("obs: cpu profile: %w", err))
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("obs: execution trace: %w", err))
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				errs = append(errs, fmt.Errorf("obs: heap profile: %w", err))
			} else {
				runtime.GC() // materialize up-to-date allocation stats
				if err := pprof.WriteHeapProfile(f); err != nil {
					errs = append(errs, fmt.Errorf("obs: heap profile: %w", err))
				}
				if err := f.Close(); err != nil {
					errs = append(errs, fmt.Errorf("obs: heap profile: %w", err))
				}
			}
		}
		return errors.Join(errs...)
	}, nil
}
