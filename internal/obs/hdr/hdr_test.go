package hdr

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
)

// exactQuantile is the reference order statistic the histogram
// approximates: rank ceil(q*n) of the sorted sample, matching
// Snapshot.Quantile's rank convention.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestQuantileWithinRelativeError is the property pinning the package's
// central claim: for arbitrary sample sets and every probed quantile,
// the histogram's answer is >= the exact order statistic and exceeds it
// by at most the configured relative error.
func TestQuantileWithinRelativeError(t *testing.T) {
	configs := []Config{
		{},                  // defaults: 2^-7
		{RelError: 0.05},    // coarse: 2^-5
		{RelError: 0.001},   // fine: 2^-10
		{MaxValue: 1 << 30}, // smaller range, default error
	}
	quantiles := []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}
	rng := rand.New(rand.NewPCG(42, 7))

	for ci, cfg := range configs {
		resolved := makeLayout(cfg)
		relErr := 1 / float64(resolved.subHalf)
		for trial := 0; trial < 20; trial++ {
			h := New(cfg)
			n := 100 + rng.IntN(5000)
			vals := make([]int64, n)
			for i := range vals {
				switch trial % 3 {
				case 0: // log-uniform across the whole range (latency-like)
					vals[i] = int64(math.Exp(rng.Float64() * math.Log(float64(resolved.maxValue))))
				case 1: // small exact-range integers
					vals[i] = rng.Int64N(resolved.subCount)
				default: // heavy-tailed mixture
					vals[i] = rng.Int64N(1000)
					if rng.IntN(10) == 0 {
						vals[i] = rng.Int64N(resolved.maxValue)
					}
				}
				h.Record(vals[i])
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			s := h.Snapshot()
			for _, q := range quantiles {
				exact := exactQuantile(vals, q)
				got := s.Quantile(q)
				if got < exact {
					t.Fatalf("cfg %d trial %d q=%v: got %d below exact %d", ci, trial, q, got, exact)
				}
				if diff := got - exact; float64(diff) > relErr*float64(exact) {
					t.Fatalf("cfg %d trial %d q=%v: got %d vs exact %d, error %d exceeds bound %v",
						ci, trial, q, got, exact, diff, relErr*float64(exact))
				}
			}
			if s.Min != vals[0] || s.Max != vals[n-1] {
				t.Fatalf("cfg %d trial %d: min/max = %d/%d, want %d/%d", ci, trial, s.Min, s.Max, vals[0], vals[n-1])
			}
			var sum int64
			for _, v := range vals {
				sum += v
			}
			if s.Sum != sum || s.Count != int64(n) {
				t.Fatalf("cfg %d trial %d: sum/count = %d/%d, want %d/%d", ci, trial, s.Sum, s.Count, sum, n)
			}
		}
	}
}

// TestQuantileEdgeCases: empty histograms, single values, saturation
// above MaxValue and negative clamping.
func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	nilH.Record(5) // must not panic
	nilH.RecordCorrected(5, 1)
	if s := nilH.Snapshot(); s.Quantile(0.5) != 0 || s.Count != 0 {
		t.Error("nil histogram snapshot not empty")
	}

	h := New(Config{})
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	h.Record(777)
	for _, q := range []float64{0.001, 0.5, 1} {
		if got := h.Snapshot().Quantile(q); got != 777 {
			t.Errorf("single-value quantile(%v) = %d, want 777", q, got)
		}
	}

	h = New(Config{MaxValue: 1 << 20})
	h.Record(-5)                // clamps to 0
	h.Record(math.MaxInt64)     // saturates into the top bucket
	h.Record(math.MaxInt64 / 2) // likewise
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 0 {
		t.Errorf("min = %d, want 0 (clamped)", s.Min)
	}
	if got := s.Quantile(1); got != s.Max {
		t.Errorf("p100 = %d, want recorded max %d", got, s.Max)
	}
}

// TestMergeAssociativeCommutative: merging is bucket addition, so every
// association and order of the same three histograms must yield an
// identical snapshot (counts, totals, extremes and therefore quantiles).
func TestMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	mk := func(n int, scale int64) *Histogram {
		h := New(Config{})
		for i := 0; i < n; i++ {
			h.Record(rng.Int64N(scale))
		}
		return h
	}
	fill := []func() *Histogram{
		func() *Histogram { return mk(500, 1000) },
		func() *Histogram { return mk(300, 1<<30) },
		func() *Histogram { return mk(700, 1<<12) },
	}
	// Rebuild identical source histograms per grouping (merge mutates the
	// receiver) by re-deriving them from fixed seeds.
	build := func() (a, b, c *Histogram) {
		rng = rand.New(rand.NewPCG(9, 9))
		return fill[0](), fill[1](), fill[2]()
	}

	a, b, c := build()
	left := New(Config{})
	for _, h := range []*Histogram{a, b, c} { // (a+b)+c
		if err := left.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	a, b, c = build()
	bc := New(Config{})
	bc.Merge(b)
	bc.Merge(c)
	right := New(Config{})
	right.Merge(a)
	right.Merge(bc) // a+(b+c)

	a, b, c = build()
	rev := New(Config{})
	for _, h := range []*Histogram{c, a, b} { // reordered
		rev.Merge(h)
	}

	ls, rs, vs := left.Snapshot(), right.Snapshot(), rev.Snapshot()
	for _, pair := range []struct {
		name string
		x, y Snapshot
	}{{"associativity", ls, rs}, {"commutativity", ls, vs}} {
		if pair.x.Count != pair.y.Count || pair.x.Sum != pair.y.Sum ||
			pair.x.Min != pair.y.Min || pair.x.Max != pair.y.Max {
			t.Fatalf("%s: totals differ: %+v vs %+v", pair.name, pair.x.Count, pair.y.Count)
		}
		for i := range pair.x.Counts {
			if pair.x.Counts[i] != pair.y.Counts[i] {
				t.Fatalf("%s: bucket %d differs: %d vs %d", pair.name, i, pair.x.Counts[i], pair.y.Counts[i])
			}
		}
		for _, q := range []float64{0.5, 0.99, 0.999} {
			if pair.x.Quantile(q) != pair.y.Quantile(q) {
				t.Fatalf("%s: quantile(%v) differs", pair.name, q)
			}
		}
	}
}

// TestMergeMismatchedLayouts: differing configurations must refuse to
// merge rather than silently mix incompatible bucket geometries.
func TestMergeMismatchedLayouts(t *testing.T) {
	a := New(Config{RelError: 0.01})
	b := New(Config{RelError: 0.05})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of mismatched layouts succeeded")
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err == nil {
		t.Fatal("snapshot merge of mismatched layouts succeeded")
	}
}

// TestSnapshotMergeIntoZero: a zero-value Snapshot adopts the first
// merged state, so callers can fold a set of snapshots without knowing
// the configuration up front.
func TestSnapshotMergeIntoZero(t *testing.T) {
	h := New(Config{})
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	var acc Snapshot
	if err := acc.Merge(h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := acc.Merge(h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if acc.Count != 200 || acc.Min != 1000 || acc.Max != 100000 {
		t.Fatalf("accumulated snapshot = count %d min %d max %d", acc.Count, acc.Min, acc.Max)
	}
}

// TestCoordinatedOmissionCorrection simulates the pinned-stall scenario
// CO correction exists for: a FIFO server with 1ms service time fed by
// 10ms open-loop arrivals freezes for 2 seconds mid-run. Ground truth is
// the intended-start latency of every arrival (queue waits included).
// Naive service-time recording misses the queued arrivals' waits
// entirely and reports a ~1ms p99; RecordCorrected back-fills the stall
// on a linear ramp and must recover the intended-start p99 to within the
// ramp's granularity.
func TestCoordinatedOmissionCorrection(t *testing.T) {
	const (
		interval = int64(10_000_000) // 10ms arrival period
		base     = int64(1_000_000)  // 1ms service time
		stall    = int64(2_000_000_000)
		nOps     = 1000
		stallAt  = 100
	)
	truth := New(Config{})
	naive := New(Config{})
	corrected := New(Config{})

	serverFree := int64(0)
	for i := 0; i < nOps; i++ {
		arrival := int64(i) * interval
		start := arrival
		if serverFree > start {
			start = serverFree
		}
		svc := base
		if i == stallAt {
			svc = stall
		}
		complete := start + svc
		serverFree = complete
		truth.Record(complete - arrival) // intended-start latency
		naive.Record(svc)                // what a blocked (closed-loop) probe sees
		corrected.RecordCorrected(svc, interval)
	}

	truthP99 := truth.Snapshot().Quantile(0.99)
	naiveP99 := naive.Snapshot().Quantile(0.99)
	correctedP99 := corrected.Snapshot().Quantile(0.99)

	if truthP99 < stall/2 {
		t.Fatalf("scenario broken: intended-start p99 = %d, want a stall-dominated value", truthP99)
	}
	if naiveP99 > truthP99/100 {
		t.Fatalf("naive p99 = %d not << truth %d; the omission being corrected is absent", naiveP99, truthP99)
	}
	ratio := float64(correctedP99) / float64(truthP99)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("corrected p99 = %d vs intended-start truth %d (ratio %.3f), want within 15%%",
			correctedP99, truthP99, ratio)
	}
}

// TestRecorderConcurrent hammers one shared Recorder from many
// goroutines (the lock-free shard-and-merge claim, meaningful under
// -race) and checks the merged snapshot accounts for every recording.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(Config{}, 4)
	const (
		writers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 3))
			for i := 0; i < perW; i++ {
				r.Record(rng.Int64N(1 << 25))
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("count = %d, want %d", s.Count, writers*perW)
	}
	if r.Count() != writers*perW {
		t.Fatalf("Count() = %d, want %d", r.Count(), writers*perW)
	}
	if p50 := s.Quantile(0.5); p50 <= 0 || p50 > 1<<25 {
		t.Fatalf("p50 = %d out of range", p50)
	}

	var nilR *Recorder
	nilR.Record(1)
	nilR.RecordCorrected(1, 1)
	if nilR.Count() != 0 || nilR.Snapshot().Count != 0 {
		t.Error("nil recorder not a no-op")
	}
}
