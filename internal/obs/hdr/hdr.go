// Package hdr implements a High Dynamic Range histogram for latency
// recording: log-linear bucketing with a configurable relative-error
// bound, lock-free concurrent recording, mergeable state, and a
// coordinated-omission corrector for open-loop load measurement.
//
// The value axis (nanoseconds, or any non-negative int64 unit) is split
// into exponential "octaves", each subdivided into 2^m linear
// sub-buckets. Within an octave every bucket spans at most value/2^m, so
// any quantile read from the bucket bounds is within a relative error of
// 2^-m of the exact order statistic — the classical HdrHistogram
// guarantee, with m derived from Config.RelError. Memory is a few KB per
// histogram (one int64 counter per bucket), independent of the number of
// recorded values, and two histograms with the same configuration merge
// by bucket-count addition — an associative, commutative operation, which
// is what makes the shard-and-merge Recorder and cross-process
// aggregation sound.
//
// Like the rest of the obs subsystem, a nil *Histogram or *Recorder is a
// usable no-op.
package hdr

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"time"
)

// DefaultMaxValue is the highest trackable value when Config.MaxValue is
// zero: 2^42 ns is about 73 minutes, far beyond any request latency this
// repo measures. Values above the maximum saturate into the top bucket.
const DefaultMaxValue = int64(1) << 42

// DefaultRelError is the quantile relative-error bound when
// Config.RelError is zero: 2^-7, i.e. quantiles accurate to within
// 0.79%, at a cost of 128 linear sub-buckets per octave.
const DefaultRelError = 1.0 / 128

// Config fixes a histogram's bucket layout. Histograms merge only when
// their configurations are equal after defaulting.
type Config struct {
	// RelError bounds the relative error of Snapshot.Quantile: the
	// reported value differs from the exact order statistic by at most
	// RelError × value. Internally rounded down to the next power of two
	// (2^-m); zero means DefaultRelError.
	RelError float64
	// MaxValue is the largest distinguishable value; larger recordings
	// saturate into the top bucket. Zero means DefaultMaxValue.
	MaxValue int64
}

// layout is the resolved bucket geometry. subHalf = 2^m linear
// sub-buckets per octave; values below subCount = 2·subHalf are exact
// (unit-width buckets), values above land in octave e >= 1 where bucket
// width is 2^e and the relative error is bounded by 1/subHalf.
type layout struct {
	m        uint  // sub-bucket magnitude
	subHalf  int64 // 1 << m
	subCount int64 // 2 << m
	maxValue int64
	nBuckets int
}

func makeLayout(cfg Config) layout {
	relErr := cfg.RelError
	if relErr <= 0 {
		relErr = DefaultRelError
	}
	// Smallest m with 2^-m <= relErr; clamped so the bucket array stays
	// sane (m=20 is a 0.0001% bound and ~1M buckets per octave already).
	m := uint(math.Ceil(math.Log2(1 / relErr)))
	if m < 1 {
		m = 1
	}
	if m > 20 {
		m = 20
	}
	l := layout{m: m, subHalf: 1 << m, subCount: 2 << m}
	l.maxValue = cfg.MaxValue
	if l.maxValue <= 0 {
		l.maxValue = DefaultMaxValue
	}
	if l.maxValue < l.subCount {
		l.maxValue = l.subCount // keep at least one full linear range
	}
	l.nBuckets = l.index(l.maxValue) + 1
	return l
}

// index maps a value to its bucket. Values in [0, subCount) are exact;
// above that, octave e = len(v) - (m+1) >= 1 holds values in
// [subCount<<(e-1), subCount<<e) across subHalf buckets of width 2^e.
func (l layout) index(v int64) int {
	if v < 0 {
		v = 0
	}
	if v > l.maxValue {
		v = l.maxValue
	}
	if v < l.subCount {
		return int(v)
	}
	e := uint(bits.Len64(uint64(v))) - (l.m + 1)
	return int(l.subCount + int64(e-1)*l.subHalf + (v >> e) - l.subHalf)
}

// bounds returns bucket i's inclusive value range.
func (l layout) bounds(i int) (lo, hi int64) {
	if int64(i) < l.subCount {
		return int64(i), int64(i)
	}
	rem := int64(i) - l.subCount
	e := uint(rem/l.subHalf) + 1
	r := rem % l.subHalf
	lo = (l.subHalf + r) << e
	return lo, lo + (1 << e) - 1
}

// Histogram is a concurrent HDR histogram. Record is lock-free: one
// atomic add per bucket plus count/sum/min/max maintenance. Construct
// with New.
type Histogram struct {
	layout
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // MaxInt64 until the first recording
	max    atomic.Int64
}

// New builds a histogram with the given configuration (zero fields take
// the package defaults).
func New(cfg Config) *Histogram {
	l := makeLayout(cfg)
	h := &Histogram{layout: l, counts: make([]atomic.Int64, l.nBuckets)}
	h.min.Store(math.MaxInt64)
	return h
}

// Record adds one value. Negative values clamp to zero and values above
// the configured maximum clamp to it (saturating into the top bucket),
// so count, sum, min and max always describe the clamped stream and the
// sum cannot overflow on outliers. No-op on a nil histogram.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if v > h.maxValue {
		v = h.maxValue
	}
	h.counts[h.index(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// RecordCorrected records v and back-fills the coordinated-omission gap:
// when a measured operation stalls past the expected interval between
// operations (the open-loop arrival period), the operations that SHOULD
// have started during the stall never ran, so their latencies were never
// recorded and naive percentiles are biased low. Following HdrHistogram,
// the corrector synthesizes those missing samples on a linear ramp:
// v-interval, v-2·interval, ... down to the interval. A non-positive
// interval degrades to plain Record.
func (h *Histogram) RecordCorrected(v, expectedInterval int64) {
	if h == nil {
		return
	}
	h.Record(v)
	if expectedInterval <= 0 {
		return
	}
	for x := v - expectedInterval; x >= expectedInterval; x -= expectedInterval {
		h.Record(x)
	}
}

// Merge folds o's recordings into h. Both histograms must share one
// configuration; merging is bucket-count addition, so it is associative
// and commutative and never loses precision. Safe while both sides keep
// recording (the merged state then reflects some interleaving). A nil o
// is a no-op.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	if h.layout != o.layout {
		return fmt.Errorf("hdr: merge of mismatched layouts (m=%d max=%d vs m=%d max=%d)",
			h.m, h.maxValue, o.m, o.maxValue)
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for {
		om, hm := o.min.Load(), h.min.Load()
		if om >= hm || h.min.CompareAndSwap(hm, om) {
			break
		}
	}
	for {
		om, hm := o.max.Load(), h.max.Load()
		if om <= hm || h.max.CompareAndSwap(hm, om) {
			break
		}
	}
	return nil
}

// Count returns the number of recordings (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot freezes the histogram into an immutable, query-able state.
// Returns an empty snapshot on a nil histogram.
func (h *Histogram) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{}
	}
	s := Snapshot{
		layout: h.layout,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Max:    h.max.Load(),
	}
	if min := h.min.Load(); min != math.MaxInt64 {
		s.Min = min
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Snapshot is a frozen histogram state. The zero value is an empty
// snapshot whose Quantile returns 0.
type Snapshot struct {
	layout
	Counts []int64
	Count  int64
	Sum    int64
	Min    int64
	Max    int64
}

// Quantile returns the q-quantile (0 < q <= 1) of the recorded values,
// within the configured relative-error bound: the reported value is >=
// the exact order statistic and exceeds it by at most RelError × value.
// Returns 0 for an empty snapshot.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, n := range s.Counts {
		cum += n
		if cum >= rank {
			_, hi := s.bounds(i)
			// The exact order statistic lies inside bucket i and is <= the
			// recorded maximum, so min(hi, Max) still upper-bounds it while
			// keeping p100 == Max exactly.
			if s.Max > 0 && hi > s.Max {
				return s.Max
			}
			return hi
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the recorded values (exact: it is
// computed from the untruncated sum, not the buckets).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge folds o into s (same-configuration requirement as
// Histogram.Merge).
func (s *Snapshot) Merge(o Snapshot) error {
	if o.Count == 0 && len(o.Counts) == 0 {
		return nil
	}
	if len(s.Counts) == 0 {
		// Merging into an empty zero-value snapshot adopts o wholesale.
		*s = o
		s.Counts = append([]int64(nil), o.Counts...)
		return nil
	}
	if s.layout != o.layout {
		return fmt.Errorf("hdr: merge of mismatched snapshot layouts")
	}
	for i, n := range o.Counts {
		s.Counts[i] += n
	}
	s.Sum += o.Sum
	if o.Count > 0 {
		if s.Count == 0 || o.Min < s.Min {
			s.Min = o.Min
		}
		if o.Max > s.Max {
			s.Max = o.Max
		}
	}
	s.Count += o.Count
	return nil
}

// Recorder shards recordings over several histograms so concurrent
// writers on different cores do not contend on the same counter cache
// lines, and merges them on Snapshot. The shard is picked per recording
// from the calling thread's lock-free RNG, so any goroutine may record
// through one shared Recorder.
type Recorder struct {
	shards []*Histogram
	mask   uint64
	cfg    Config
}

// NewRecorder builds a sharded recorder. shards is rounded up to a power
// of two; zero picks a default sized to the machine (capped at 8 — the
// recording rates this repo sees saturate long after that).
func NewRecorder(cfg Config, shards int) *Recorder {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards > 8 {
			shards = 8
		}
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	r := &Recorder{shards: make([]*Histogram, n), mask: uint64(n - 1), cfg: cfg}
	for i := range r.shards {
		r.shards[i] = New(cfg)
	}
	return r
}

// Record adds one value to a randomly chosen shard. No-op on nil.
func (r *Recorder) Record(v int64) {
	if r == nil {
		return
	}
	r.shards[rand.Uint64()&r.mask].Record(v)
}

// RecordDuration records a duration in nanoseconds.
func (r *Recorder) RecordDuration(d time.Duration) { r.Record(int64(d)) }

// RecordCorrected is the sharded form of Histogram.RecordCorrected; the
// synthesized back-fill samples land on the same shard as the observed
// one.
func (r *Recorder) RecordCorrected(v, expectedInterval int64) {
	if r == nil {
		return
	}
	r.shards[rand.Uint64()&r.mask].RecordCorrected(v, expectedInterval)
}

// Count returns the total recordings across shards (0 on nil).
func (r *Recorder) Count() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for _, h := range r.shards {
		n += h.Count()
	}
	return n
}

// Snapshot merges the shards into one frozen state. Returns an empty
// snapshot on nil.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	merged := New(r.cfg)
	for _, h := range r.shards {
		merged.Merge(h) // same config by construction: cannot fail
	}
	return merged.Snapshot()
}
