package obs

import (
	"math"
	"testing"
)

// naive two-pass mean/variance for cross-checking the streaming updates.
func naiveStats(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs) - 1)
	return
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	xs := []float64{3.5, -1.25, 0, 42, 7.75, 3.5, 19, -8, 0.001, 5}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	mean, variance := naiveStats(xs)
	if w.Count() != int64(len(xs)) {
		t.Fatalf("count = %d, want %d", w.Count(), len(xs))
	}
	if math.Abs(w.Mean()-mean) > 1e-12 {
		t.Errorf("mean = %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Errorf("variance = %v, want %v", w.Variance(), variance)
	}
	wantSE := math.Sqrt(variance / float64(len(xs)))
	if math.Abs(w.StdErr()-wantSE) > 1e-12 {
		t.Errorf("stderr = %v, want %v", w.StdErr(), wantSE)
	}
	lo, hi := w.CI95()
	if math.Abs((hi-lo)-2*1.96*wantSE) > 1e-12 {
		t.Errorf("CI95 width = %v, want %v", hi-lo, 2*1.96*wantSE)
	}
	if math.Abs(w.RelStdErr()-wantSE/math.Abs(mean)) > 1e-12 {
		t.Errorf("rse = %v, want %v", w.RelStdErr(), wantSE/math.Abs(mean))
	}
}

// TestWelfordMergeEquivalence: merging per-worker partials must agree with
// one sequential accumulation, whatever the split.
func TestWelfordMergeEquivalence(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = math.Sin(float64(i)) * float64(i%7)
	}
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	for _, split := range []int{1, 13, 50, 100} {
		var a, b Welford
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.Count() != whole.Count() {
			t.Fatalf("split %d: count %d != %d", split, a.Count(), whole.Count())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
			t.Errorf("split %d: mean %v != %v", split, a.Mean(), whole.Mean())
		}
		if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
			t.Errorf("split %d: variance %v != %v", split, a.Variance(), whole.Variance())
		}
	}
	// Merging into an empty accumulator adopts the other side wholesale.
	var empty Welford
	empty.Merge(whole)
	if empty != whole {
		t.Error("merge into empty accumulator did not adopt the state")
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.StdErr() != 0 || w.RelStdErr() != 0 {
		t.Error("empty accumulator must report zero spread")
	}
	w.Add(5)
	if w.Variance() != 0 {
		t.Error("single observation must report zero variance")
	}
	lo, hi := w.CI95()
	if lo != 5 || hi != 5 {
		t.Errorf("single-observation CI = [%v, %v], want degenerate [5, 5]", lo, hi)
	}

	// Noise around a zero mean: infinite relative SE, clamped in snapshots.
	var z Welford
	z.Add(1)
	z.Add(-1)
	if !math.IsInf(z.RelStdErr(), 1) {
		t.Errorf("zero-mean rse = %v, want +Inf", z.RelStdErr())
	}
	if snap := z.Snapshot(); snap.RelStdErr != math.MaxFloat64 {
		t.Errorf("snapshot rse = %v, want MaxFloat64 clamp", snap.RelStdErr)
	}
}

// TestQualityNilSafety: the nil-disables-everything contract must extend
// to the new instrument, through both a nil instrument and a nil registry.
func TestQualityNilSafety(t *testing.T) {
	var q *Quality
	q.Observe(3)
	q.Merge(Welford{})
	if got := q.State(); got != (Welford{}) {
		t.Errorf("nil quality state = %+v, want zero", got)
	}
	var r *Registry
	r.Quality("x").Observe(1) // must not panic
	if s := r.Snapshot(); len(s.Quality) != 0 {
		t.Errorf("nil registry snapshot has quality entries: %v", s.Quality)
	}
}

func TestRegistryQuality(t *testing.T) {
	r := NewRegistry()
	q := r.Quality("mc.quality.test")
	if q2 := r.Quality("mc.quality.test"); q2 != q {
		t.Fatal("Quality is not get-or-create")
	}
	q.Observe(2)
	q.Observe(4)
	var part Welford
	part.Add(6)
	q.Merge(part)
	snap := r.Snapshot().Quality["mc.quality.test"]
	if snap.Count != 3 || math.Abs(snap.Mean-4) > 1e-12 {
		t.Errorf("snapshot = %+v, want count 3 mean 4", snap)
	}
	if snap.StdErr <= 0 || snap.CI95Lo >= snap.CI95Hi {
		t.Errorf("snapshot lacks spread: %+v", snap)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4, 8})
	// 10 observations spread so the quantiles land in known buckets.
	for _, v := range []float64{0.5, 0.5, 1.5, 1.5, 1.5, 3, 3, 3, 5, 20} {
		h.Observe(v)
	}
	hs := r.Snapshot().Histograms["h"]

	// p50: rank 5 falls in the (1,2] bucket (cumulative 2 then 5): upper
	// edge of that bucket by linear interpolation.
	if got := hs.Quantile(0.50); math.Abs(got-2) > 1e-9 {
		t.Errorf("p50 = %v, want 2", got)
	}
	// p90: rank 9 falls in the (4,8] bucket.
	if got := hs.Quantile(0.90); got <= 4 || got > 8 {
		t.Errorf("p90 = %v, want in (4, 8]", got)
	}
	// p99: rank 9.9 falls in the overflow bucket: clamp to the largest
	// finite bound.
	if got := hs.Quantile(0.99); got != 8 {
		t.Errorf("p99 = %v, want 8 (largest finite bound)", got)
	}
	// Empty histogram.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}
