package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race this also proves the absence of data races.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits") // get-or-create racing on purpose
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramConcurrent checks bucket placement, count and sum under
// concurrent observation.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{1, 10, 100}
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := r.Histogram("lat", bounds)
			for i := 0; i < perWorker; i++ {
				h.Observe(0.5) // <= 1 bucket
				h.Observe(5)   // <= 10 bucket
				h.Observe(1e6) // overflow
			}
		}()
	}
	wg.Wait()
	h := r.Histogram("lat", bounds)
	if got := h.Count(); got != int64(3*workers*perWorker) {
		t.Fatalf("count = %d, want %d", got, 3*workers*perWorker)
	}
	wantSum := float64(workers*perWorker) * (0.5 + 5 + 1e6)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %g, want %g", got, wantSum)
	}
	snap := r.Snapshot().Histograms["lat"]
	if len(snap.Buckets) != 3 {
		t.Fatalf("buckets = %+v, want 3 non-empty", snap.Buckets)
	}
	per := int64(workers * perWorker)
	for i, want := range []BucketCount{{"1", per}, {"10", per}, {"+Inf", per}} {
		if snap.Buckets[i] != want {
			t.Fatalf("bucket %d = %+v, want %+v", i, snap.Buckets[i], want)
		}
	}
}

// TestGauge checks last-write-wins semantics and nil safety.
func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("level")
	g.Set(1.5)
	g.Set(-2.25)
	if got := r.Gauge("level").Value(); got != -2.25 {
		t.Fatalf("gauge = %v, want -2.25", got)
	}
}

// TestNilRegistryIsNoop: a nil registry and its nil instruments must
// absorb every operation.
func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Gauge("y").Set(1)
	r.Histogram("z", TimeBuckets).Observe(3)
	r.Latency("l").Observe(time.Millisecond)
	r.Latency("l").ObserveCorrected(time.Second, time.Millisecond)
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter = %d", got)
	}
	if got := r.Latency("l").Count(); got != 0 {
		t.Fatalf("nil latency count = %d", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Latencies) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
	var o *Observer
	o.Log("dropped")
	o.AttachSpan(NewSpan("s"))
	if o.Registry() != nil || o.Spans() != nil {
		t.Fatal("nil observer must expose nil registry and no spans")
	}
}

// TestHistogramBadBounds: non-ascending bounds are a programming error.
func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-ascending bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}
