package expose

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"chameleon/internal/obs"
)

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, quality streams expanded into their derived estimator-health
// gauges, histograms with cumulative le-buckets plus _sum and _count,
// latency instruments as summaries carrying their p50/p90/p99/p999 SLO
// quantiles in seconds, and
// the differ's counter rates as companion _per_second gauges. Metric names
// are namespaced and sanitized (every character outside [a-zA-Z0-9_:]
// becomes '_'), and families are emitted in sorted order so the output is
// deterministic for a given snapshot.
//
// Each metric name is emitted at most once: distinct registry names can
// sanitize or expand to the same exposition name (e.g. a gauge "a.b_c"
// next to a gauge "a.b.c", or a gauge shadowing a quality stream's
// derived suffixes), and the Prometheus text parser rejects a scrape that
// repeats a "# TYPE" line or a sample name. First family in emission
// order (counters, gauges, quality, histograms, latencies, rates) wins;
// later claims are dropped.
func WritePrometheus(w io.Writer, namespace string, s obs.Snapshot, rates map[string]float64) error {
	p := &promWriter{w: w, ns: namespace, seen: map[string]bool{}}

	for _, name := range sortedKeys(s.Counters) {
		if !p.family(name, "counter") {
			continue
		}
		p.sample(p.name(name), "", float64(s.Counters[name]))
	}
	for _, name := range sortedKeys(s.Gauges) {
		if !p.family(name, "gauge") {
			continue
		}
		p.sample(p.name(name), "", s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Quality) {
		q := s.Quality[name]
		base := p.name(name)
		for _, part := range []struct {
			suffix string
			value  float64
		}{
			{"_count", float64(q.Count)},
			{"_mean", q.Mean},
			{"_stderr", q.StdErr},
			{"_ci95_lo", q.CI95Lo},
			{"_ci95_hi", q.CI95Hi},
			{"_rel_stderr", q.RelStdErr},
		} {
			if !p.claim(base + part.suffix) {
				continue
			}
			if p.err == nil {
				_, p.err = fmt.Fprintf(p.w, "# TYPE %s%s gauge\n", base, part.suffix)
			}
			p.sample(base+part.suffix, "", part.value)
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		base := p.name(name)
		if !p.claimAll(base, base+"_bucket", base+"_sum", base+"_count") {
			continue
		}
		if p.err == nil {
			_, p.err = fmt.Fprintf(p.w, "# TYPE %s histogram\n", base)
		}
		var cum int64
		seenInf := false
		for _, b := range h.Buckets {
			cum += b.Count
			if b.LE == "+Inf" {
				seenInf = true
			}
			p.sample(base+"_bucket", `le="`+b.LE+`"`, float64(cum))
		}
		if !seenInf {
			p.sample(base+"_bucket", `le="+Inf"`, float64(h.Count))
		}
		p.sample(base+"_sum", "", h.Sum)
		p.sample(base+"_count", "", float64(h.Count))
	}
	for _, name := range sortedKeys(s.Latencies) {
		l := s.Latencies[name]
		base := p.name(name)
		if !p.claimAll(base, base+"_sum", base+"_count") {
			continue
		}
		if p.err == nil {
			_, p.err = fmt.Fprintf(p.w, "# TYPE %s summary\n", base)
		}
		// Latencies record nanoseconds; the exposition follows the
		// Prometheus base-unit convention and publishes seconds.
		for _, qv := range []struct {
			q  string
			ns int64
		}{
			{"0.5", l.P50NS}, {"0.9", l.P90NS}, {"0.99", l.P99NS}, {"0.999", l.P999NS},
		} {
			p.sample(base, `quantile="`+qv.q+`"`, float64(qv.ns)/1e9)
		}
		p.sample(base+"_sum", "", float64(l.SumNS)/1e9)
		p.sample(base+"_count", "", float64(l.Count))
	}
	for _, name := range sortedKeys(rates) {
		rateName := p.name(name) + "_per_second"
		if !p.claim(rateName) {
			continue
		}
		if p.err == nil {
			_, p.err = fmt.Fprintf(p.w, "# TYPE %s gauge\n", rateName)
		}
		p.sample(rateName, "", rates[name])
	}
	return p.err
}

type promWriter struct {
	w    io.Writer
	ns   string
	seen map[string]bool
	err  error
}

// claim reserves an exposition metric name, returning false if an earlier
// family already emitted it.
func (p *promWriter) claim(name string) bool {
	if p.seen[name] {
		return false
	}
	p.seen[name] = true
	return true
}

// claimAll reserves a set of names atomically: either every name was free
// and is now claimed, or none is touched.
func (p *promWriter) claimAll(names ...string) bool {
	for _, n := range names {
		if p.seen[n] {
			return false
		}
	}
	for _, n := range names {
		p.seen[n] = true
	}
	return true
}

// name builds the namespaced, sanitized metric name.
func (p *promWriter) name(raw string) string {
	return p.ns + "_" + sanitizeMetricName(raw)
}

// family claims the sanitized name and writes its # TYPE line, returning
// false (emitting nothing) when the name was already taken.
func (p *promWriter) family(raw, typ string) bool {
	name := p.name(raw)
	if !p.claim(name) {
		return false
	}
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, "# TYPE %s %s\n", name, typ)
	}
	return true
}

func (p *promWriter) sample(name, label string, v float64) {
	if p.err != nil {
		return
	}
	if label != "" {
		_, p.err = fmt.Fprintf(p.w, "%s{%s} %s\n", name, label, formatValue(v))
		return
	}
	_, p.err = fmt.Fprintf(p.w, "%s %s\n", name, formatValue(v))
}

// formatValue renders a sample value; strconv's 'g' yields "+Inf", "-Inf"
// and "NaN" spellings, which the text format accepts verbatim.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeMetricName maps a dotted registry name onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_:], replacing every other byte with '_'.
// Registry names never start with a digit (they are dotted identifiers),
// so no leading-digit escape is needed.
func sanitizeMetricName(name string) string {
	out := []byte(name)
	for i := 0; i < len(out); i++ {
		c := out[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == ':':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
