// Package expose serves an Observer's live state over HTTP for the
// duration of a run: Prometheus-text /metrics, a /healthz liveness probe,
// a /runs JSON listing of the run records registered with the server, a
// /trace JSON view of the live span trees, and the stdlib pprof handlers
// under /debug/pprof/. A background differ snapshots the registry on a
// fixed interval and turns counter deltas into per-second rates, which
// /metrics publishes as companion *_per_second gauges; an optional
// OnSnapshot hook receives every tick (the journal uses it to record
// periodic snapshots). Each tick also samples runtime/metrics — Go
// runtime health gauges land on /metrics alongside the run's own.
//
// Like the rest of the obs subsystem, a nil *Server is usable: every
// method is a no-op, so CLIs can hold one unconditionally and only
// construct it when -serve is set.
package expose

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"chameleon/internal/obs"
)

// DefaultNamespace prefixes every exported metric name.
const DefaultNamespace = "chameleon"

// DefaultInterval is the differ tick period when Options.Interval is zero.
const DefaultInterval = 5 * time.Second

// shutdownTimeout bounds the graceful-drain window in Close: in-flight
// requests (a /metrics scrape, a pprof profile download) get this long to
// finish before the server is closed abruptly.
const shutdownTimeout = 2 * time.Second

// Options configures a Server.
type Options struct {
	// Namespace is the metric-name prefix (DefaultNamespace if empty).
	Namespace string
	// Interval is the snapshot-differ period (DefaultInterval if zero).
	Interval time.Duration
	// OnSnapshot, when non-nil, is invoked after every differ tick —
	// periodic and Poll-forced alike — with the snapshot just taken and
	// the counter rates computed from it. It runs on the differ goroutine;
	// keep it fast or hand off.
	OnSnapshot func(at time.Time, s obs.Snapshot, rates map[string]float64)
	// Handlers mounts extra endpoints on the served mux, keyed by
	// pattern (e.g. "/query"). The built-in endpoints win on pattern
	// collision — the telemetry contract is not overridable.
	Handlers map[string]http.Handler
}

// buildInfo identifies the running binary for the build_info gauge.
type buildInfo struct {
	version   string
	goVersion string
}

// readBuildInfo extracts version identity from the binary's embedded
// build metadata: the main module version when built from a module proxy,
// else the VCS revision a `go build` stamped, else "devel".
func readBuildInfo() buildInfo {
	b := buildInfo{version: "devel", goVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		b.version = v
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" && len(kv.Value) >= 12 {
			b.version = kv.Value[:12]
		}
	}
	return b
}

// RunInfo is one run record listed by /runs. Progress and ETASeconds are
// filled at serve time for running records from the run.progress /
// run.eta_seconds registry gauges the σ-search and sweep publish.
type RunInfo struct {
	ID         string    `json:"id"`
	Command    string    `json:"command"`
	Args       []string  `json:"args,omitempty"`
	Start      time.Time `json:"start"`
	Status     string    `json:"status"` // "running", "done", "failed"
	Progress   float64   `json:"progress,omitempty"`
	ETASeconds float64   `json:"eta_seconds,omitempty"`
}

// Server exposes one Observer. Construct with New; start the listener
// with Start or mount Handler() yourself.
type Server struct {
	o     *obs.Observer
	opts  Options
	start time.Time
	build buildInfo
	rt    *obs.RuntimeSampler

	mu     sync.Mutex
	prev   obs.Snapshot
	prevAt time.Time
	rates  map[string]float64
	runs   []RunInfo

	lis      net.Listener
	srv      *http.Server
	done     chan struct{}
	wg       sync.WaitGroup
	serveErr error // guarded by mu; set by the Serve goroutine
}

// New builds a server over the observer. The differ's first baseline is
// the registry state at construction time.
func New(o *obs.Observer, opts Options) *Server {
	if opts.Namespace == "" {
		opts.Namespace = DefaultNamespace
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	now := time.Now()
	return &Server{
		o:      o,
		opts:   opts,
		start:  now,
		build:  readBuildInfo(),
		rt:     obs.NewRuntimeSampler(o.Registry()),
		prev:   o.Registry().Snapshot(),
		prevAt: now,
		rates:  map[string]float64{},
	}
}

// Handler returns the endpoint mux: /metrics, /healthz, /runs,
// /debug/pprof/ and an index page at /. Returns nil on a nil server.
func (s *Server) Handler() http.Handler {
	if s == nil {
		return nil
	}
	mux := http.NewServeMux()
	for pat, h := range s.opts.Handlers {
		if h == nil || builtinPatterns[pat] {
			continue
		}
		mux.Handle(pat, h)
	}
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr (e.g. ":9100" or "127.0.0.1:0"), serves the handler in
// the background and starts the differ ticker. It returns the bound
// address, which differs from addr when port 0 was requested. No-op on a
// nil server.
func (s *Server) Start(addr string) (string, error) {
	if s == nil {
		return "", nil
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("expose: listen %s: %w", addr, err)
	}
	s.lis = lis
	s.srv = &http.Server{Handler: s.Handler()}
	s.done = make(chan struct{})
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		// Shutdown/Close make Serve return ErrServerClosed; anything else
		// (an accept failure, say) is a real fault surfaced by Close.
		if err := s.srv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
		}
	}()
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Poll()
			case <-s.done:
				return
			}
		}
	}()
	return lis.Addr().String(), nil
}

// Close stops the differ, drains the HTTP server gracefully (in-flight
// requests get shutdownTimeout to complete; then the server is closed
// abruptly) and waits for both goroutines to exit. It reports any error
// the Serve loop hit while running, so a listener that died mid-run is
// not silently forgotten. Safe on a nil or never-started server.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	close(s.done)
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// The drain window expired (or the context machinery failed):
		// fall back to an abrupt close so Close never hangs on a stuck
		// client connection.
		err = errors.Join(err, s.srv.Close())
	}
	s.wg.Wait()
	s.mu.Lock()
	err = errors.Join(err, s.serveErr)
	s.serveErr = nil
	s.mu.Unlock()
	s.srv = nil
	return err
}

// Poll forces one differ tick: snapshot the registry, convert counter
// deltas since the previous tick into per-second rates, and fire the
// OnSnapshot hook. Exposed so tests (and non-serving callers) can drive
// the differ deterministically. No-op on a nil server.
func (s *Server) Poll() {
	if s == nil {
		return
	}
	s.pollAt(time.Now())
}

func (s *Server) pollAt(now time.Time) {
	// Refresh the Go runtime gauges first so the tick's snapshot (and the
	// journal record the OnSnapshot hook writes) carries current values.
	// This runs on the differ tick, off the instrumented hot paths.
	s.rt.Sample()
	cur := s.o.Registry().Snapshot()

	s.mu.Lock()
	dt := now.Sub(s.prevAt).Seconds()
	rates := make(map[string]float64, len(cur.Counters))
	if dt > 0 {
		for name, v := range cur.Counters {
			rates[name] = float64(v-s.prev.Counters[name]) / dt
		}
	}
	s.prev = cur
	s.prevAt = now
	s.rates = rates
	hook := s.opts.OnSnapshot
	s.mu.Unlock()

	if hook != nil {
		hook(now, cur, rates)
	}
}

// Rates returns a copy of the counter rates computed by the latest differ
// tick (empty before the first tick, or on a nil server).
func (s *Server) Rates() map[string]float64 {
	out := map[string]float64{}
	if s == nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.rates {
		out[k] = v
	}
	return out
}

// AddRun registers a run record for /runs. Records are listed in
// registration order. No-op on a nil server.
func (s *Server) AddRun(info RunInfo) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runs = append(s.runs, info)
}

// SetRunStatus updates the status of a previously added run. No-op when
// the ID is unknown or the server is nil.
func (s *Server) SetRunStatus(id, status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.runs {
		if s.runs[i].ID == id {
			s.runs[i].Status = status
		}
	}
}

// builtinPatterns is the telemetry contract: Options.Handlers cannot
// override these, and the index page lists everything else separately.
var builtinPatterns = map[string]bool{
	"/": true, "/metrics": true, "/healthz": true, "/runs": true,
	"/trace": true, "/debug/pprof/": true, "/debug/pprof/cmdline": true,
	"/debug/pprof/profile": true, "/debug/pprof/symbol": true,
	"/debug/pprof/trace": true,
}

// ExtraPatterns returns the non-builtin patterns actually mounted from
// Options.Handlers, sorted. Empty (and nil-safe) when none are.
func (s *Server) ExtraPatterns() []string {
	if s == nil {
		return nil
	}
	var pats []string
	for pat, h := range s.opts.Handlers {
		if h == nil || builtinPatterns[pat] {
			continue
		}
		pats = append(pats, pat)
	}
	sort.Strings(pats)
	return pats
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "chameleon telemetry\n\n/metrics       Prometheus text exposition\n/healthz       liveness probe\n/runs          run records (JSON)\n/trace         live span trees (JSON)\n/debug/pprof/  runtime profiles\n")
	if extra := s.ExtraPatterns(); len(extra) > 0 {
		fmt.Fprintf(w, "\nmounted handlers\n")
		for _, pat := range extra {
			fmt.Fprintf(w, "%s\n", pat)
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.o.Registry().Snapshot()
	s.mu.Lock()
	rates := make(map[string]float64, len(s.rates))
	for k, v := range s.rates {
		rates[k] = v
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, s.opts.Namespace, snap, rates)
	up := s.opts.Namespace + "_uptime_seconds"
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", up, up, formatValue(time.Since(s.start).Seconds()))
	// build_info is the standard dashboard-labeling idiom: a constant 1
	// whose labels carry the identity. The registry has no label support,
	// so it is emitted directly, like the uptime gauge above.
	bi := s.opts.Namespace + "_build_info"
	fmt.Fprintf(w, "# TYPE %s gauge\n%s{version=%q,go_version=%q,gomaxprocs=\"%d\"} 1\n",
		bi, bi, s.build.version, s.build.goVersion, runtime.GOMAXPROCS(0))
}

// handleTrace serves the current span trees as JSON. Snapshots are taken
// at request time, so running spans report live durations; the payload is
// the SpanSnapshot shape (name/start/start_ns/duration_ns/running/attrs/
// children) under a "spans" key, with "at" stamping the capture moment.
func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	var snaps []*obs.SpanSnapshot
	for _, sp := range s.o.Spans() {
		if snap := sp.SnapshotTree(); snap != nil {
			snaps = append(snaps, snap)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		At    time.Time           `json:"at"`
		Spans []*obs.SpanSnapshot `json:"spans"`
	}{time.Now(), snaps})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]RunInfo, len(s.runs))
	copy(runs, s.runs)
	s.mu.Unlock()
	// Running records reflect the live progress gauges the σ-search (and
	// the sweep) publish. Read via the snapshot, not Registry().Gauge —
	// the getter would mint zero-valued gauges into /metrics on every
	// /runs request of an uninstrumented run.
	snap := s.o.Registry().Snapshot()
	if p, ok := snap.Gauges[obs.ProgressGauge]; ok {
		for i := range runs {
			if runs[i].Status == "running" {
				runs[i].Progress = p
				runs[i].ETASeconds = snap.Gauges[obs.ETAGauge]
			}
		}
	}
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].Start.Before(runs[j].Start) })
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Runs []RunInfo `json:"runs"`
	}{runs})
}
