// Package expose serves an Observer's live state over HTTP for the
// duration of a run: Prometheus-text /metrics, a /healthz liveness probe,
// a /runs JSON listing of the run records registered with the server, and
// the stdlib pprof handlers under /debug/pprof/. A background differ
// snapshots the registry on a fixed interval and turns counter deltas
// into per-second rates, which /metrics publishes as companion
// *_per_second gauges; an optional OnSnapshot hook receives every tick
// (the journal uses it to record periodic snapshots).
//
// Like the rest of the obs subsystem, a nil *Server is usable: every
// method is a no-op, so CLIs can hold one unconditionally and only
// construct it when -serve is set.
package expose

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"chameleon/internal/obs"
)

// DefaultNamespace prefixes every exported metric name.
const DefaultNamespace = "chameleon"

// DefaultInterval is the differ tick period when Options.Interval is zero.
const DefaultInterval = 5 * time.Second

// shutdownTimeout bounds the graceful-drain window in Close: in-flight
// requests (a /metrics scrape, a pprof profile download) get this long to
// finish before the server is closed abruptly.
const shutdownTimeout = 2 * time.Second

// Options configures a Server.
type Options struct {
	// Namespace is the metric-name prefix (DefaultNamespace if empty).
	Namespace string
	// Interval is the snapshot-differ period (DefaultInterval if zero).
	Interval time.Duration
	// OnSnapshot, when non-nil, is invoked after every differ tick —
	// periodic and Poll-forced alike — with the snapshot just taken and
	// the counter rates computed from it. It runs on the differ goroutine;
	// keep it fast or hand off.
	OnSnapshot func(at time.Time, s obs.Snapshot, rates map[string]float64)
}

// RunInfo is one run record listed by /runs.
type RunInfo struct {
	ID      string    `json:"id"`
	Command string    `json:"command"`
	Args    []string  `json:"args,omitempty"`
	Start   time.Time `json:"start"`
	Status  string    `json:"status"` // "running", "done", "failed"
}

// Server exposes one Observer. Construct with New; start the listener
// with Start or mount Handler() yourself.
type Server struct {
	o     *obs.Observer
	opts  Options
	start time.Time

	mu     sync.Mutex
	prev   obs.Snapshot
	prevAt time.Time
	rates  map[string]float64
	runs   []RunInfo

	lis      net.Listener
	srv      *http.Server
	done     chan struct{}
	wg       sync.WaitGroup
	serveErr error // guarded by mu; set by the Serve goroutine
}

// New builds a server over the observer. The differ's first baseline is
// the registry state at construction time.
func New(o *obs.Observer, opts Options) *Server {
	if opts.Namespace == "" {
		opts.Namespace = DefaultNamespace
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	now := time.Now()
	return &Server{
		o:      o,
		opts:   opts,
		start:  now,
		prev:   o.Registry().Snapshot(),
		prevAt: now,
		rates:  map[string]float64{},
	}
}

// Handler returns the endpoint mux: /metrics, /healthz, /runs,
// /debug/pprof/ and an index page at /. Returns nil on a nil server.
func (s *Server) Handler() http.Handler {
	if s == nil {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr (e.g. ":9100" or "127.0.0.1:0"), serves the handler in
// the background and starts the differ ticker. It returns the bound
// address, which differs from addr when port 0 was requested. No-op on a
// nil server.
func (s *Server) Start(addr string) (string, error) {
	if s == nil {
		return "", nil
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("expose: listen %s: %w", addr, err)
	}
	s.lis = lis
	s.srv = &http.Server{Handler: s.Handler()}
	s.done = make(chan struct{})
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		// Shutdown/Close make Serve return ErrServerClosed; anything else
		// (an accept failure, say) is a real fault surfaced by Close.
		if err := s.srv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
		}
	}()
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Poll()
			case <-s.done:
				return
			}
		}
	}()
	return lis.Addr().String(), nil
}

// Close stops the differ, drains the HTTP server gracefully (in-flight
// requests get shutdownTimeout to complete; then the server is closed
// abruptly) and waits for both goroutines to exit. It reports any error
// the Serve loop hit while running, so a listener that died mid-run is
// not silently forgotten. Safe on a nil or never-started server.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	close(s.done)
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// The drain window expired (or the context machinery failed):
		// fall back to an abrupt close so Close never hangs on a stuck
		// client connection.
		err = errors.Join(err, s.srv.Close())
	}
	s.wg.Wait()
	s.mu.Lock()
	err = errors.Join(err, s.serveErr)
	s.serveErr = nil
	s.mu.Unlock()
	s.srv = nil
	return err
}

// Poll forces one differ tick: snapshot the registry, convert counter
// deltas since the previous tick into per-second rates, and fire the
// OnSnapshot hook. Exposed so tests (and non-serving callers) can drive
// the differ deterministically. No-op on a nil server.
func (s *Server) Poll() {
	if s == nil {
		return
	}
	s.pollAt(time.Now())
}

func (s *Server) pollAt(now time.Time) {
	cur := s.o.Registry().Snapshot()

	s.mu.Lock()
	dt := now.Sub(s.prevAt).Seconds()
	rates := make(map[string]float64, len(cur.Counters))
	if dt > 0 {
		for name, v := range cur.Counters {
			rates[name] = float64(v-s.prev.Counters[name]) / dt
		}
	}
	s.prev = cur
	s.prevAt = now
	s.rates = rates
	hook := s.opts.OnSnapshot
	s.mu.Unlock()

	if hook != nil {
		hook(now, cur, rates)
	}
}

// Rates returns a copy of the counter rates computed by the latest differ
// tick (empty before the first tick, or on a nil server).
func (s *Server) Rates() map[string]float64 {
	out := map[string]float64{}
	if s == nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.rates {
		out[k] = v
	}
	return out
}

// AddRun registers a run record for /runs. Records are listed in
// registration order. No-op on a nil server.
func (s *Server) AddRun(info RunInfo) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runs = append(s.runs, info)
}

// SetRunStatus updates the status of a previously added run. No-op when
// the ID is unknown or the server is nil.
func (s *Server) SetRunStatus(id, status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.runs {
		if s.runs[i].ID == id {
			s.runs[i].Status = status
		}
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "chameleon telemetry\n\n/metrics       Prometheus text exposition\n/healthz       liveness probe\n/runs          run records (JSON)\n/debug/pprof/  runtime profiles\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.o.Registry().Snapshot()
	s.mu.Lock()
	rates := make(map[string]float64, len(s.rates))
	for k, v := range s.rates {
		rates[k] = v
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, s.opts.Namespace, snap, rates)
	up := s.opts.Namespace + "_uptime_seconds"
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", up, up, formatValue(time.Since(s.start).Seconds()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]RunInfo, len(s.runs))
	copy(runs, s.runs)
	s.mu.Unlock()
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].Start.Before(runs[j].Start) })
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Runs []RunInfo `json:"runs"`
	}{runs})
}
