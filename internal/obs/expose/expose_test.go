package expose

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"chameleon/internal/obs"
)

func testObserver() *obs.Observer {
	o := obs.NewObserver()
	r := o.Registry()
	r.Counter("mc.worlds_sampled").Add(1000)
	r.Counter("sweep.cells").Add(3)
	r.Gauge("err.stderr.mean").Set(0.125)
	r.Gauge("weird name-with.chars").Set(-1.5)
	h := r.Histogram("op.seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 2, 4} {
		h.Observe(v)
	}
	q := r.Quality("mc.quality.ExpectedConnectedPairs")
	for _, v := range []float64{100, 104, 96, 102, 98} {
		q.Observe(v)
	}
	lat := r.Latency("query.latency.all")
	for i := 0; i < 100; i++ {
		lat.ObserveNS(1_000_000) // 1ms
	}
	// The last-call companion gauges recordQuality writes next to the
	// pooled stream: their sanitized names must coexist with the stream's
	// own _stderr/_ci95_* expansion on one scrape.
	r.Gauge("mc.quality.ExpectedConnectedPairs.last_stderr").Set(0.7)
	r.Gauge("mc.quality.ExpectedConnectedPairs.last_rse").Set(0.007)
	return o
}

// metricLine matches a Prometheus text-format sample: a valid metric name,
// an optional label set (histogram le buckets, build_info identity
// labels), and a float value.
var metricLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?Inf|[+-]?\d+(\.\d+)?([eE][+-]?\d+)?)$`)

// typeLine matches a # TYPE comment.
var typeLine = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary)$`)

// TestMetricsEndpointFormat round-trips /metrics through httptest and
// checks every line against the Prometheus text exposition grammar.
func TestMetricsEndpointFormat(t *testing.T) {
	s := New(testObserver(), Options{})
	s.Poll() // populate rates

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain prefix", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// The Prometheus text parser aborts the whole scrape on a repeated
	// "# TYPE" line or sample name, so duplicates are hard failures here.
	samples := map[string]float64{}
	typed := map[string]bool{}
	var bucketLines []string
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			tm := typeLine.FindStringSubmatch(line)
			if tm == nil {
				t.Errorf("malformed comment line: %q", line)
				continue
			}
			if typed[tm[1]] {
				t.Errorf("duplicate # TYPE for metric %s", tm[1])
			}
			typed[tm[1]] = true
			continue
		}
		m := metricLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		if _, dup := samples[m[1]+m[2]]; dup {
			t.Errorf("duplicate sample %s%s", m[1], m[2])
		}
		v, _ := strconv.ParseFloat(m[3], 64)
		samples[m[1]+m[2]] = v
		if strings.HasPrefix(m[2], `{le="`) {
			bucketLines = append(bucketLines, line)
		}
	}

	want := map[string]float64{
		"chameleon_mc_worlds_sampled":                            1000,
		"chameleon_sweep_cells":                                  3,
		"chameleon_err_stderr_mean":                              0.125,
		"chameleon_weird_name_with_chars":                        -1.5,
		"chameleon_mc_quality_ExpectedConnectedPairs_count":      5,
		"chameleon_mc_quality_ExpectedConnectedPairs_mean":       100,
		"chameleon_op_seconds_count":                             5,
		"chameleon_op_seconds_sum":                               6.555,
		`chameleon_op_seconds_bucket{le="0.01"}`:                 1,
		`chameleon_op_seconds_bucket{le="0.1"}`:                  2,
		`chameleon_op_seconds_bucket{le="1"}`:                    3,
		`chameleon_op_seconds_bucket{le="+Inf"}`:                 5,
		"chameleon_mc_worlds_sampled_per_second":                 samples["chameleon_mc_worlds_sampled_per_second"],
		"chameleon_mc_quality_ExpectedConnectedPairs_stderr":     math.Sqrt(10) / math.Sqrt(5),
		"chameleon_mc_quality_ExpectedConnectedPairs_rel_stderr": math.Sqrt(10) / math.Sqrt(5) / 100,

		// Last-call companion gauges alongside the pooled expansion.
		"chameleon_mc_quality_ExpectedConnectedPairs_last_stderr": 0.7,
		"chameleon_mc_quality_ExpectedConnectedPairs_last_rse":    0.007,

		// The latency instrument's summary exposition: every recorded value
		// is exactly 1ms, so all SLO quantiles clamp to the observed max.
		`chameleon_query_latency_all{quantile="0.5"}`:   0.001,
		`chameleon_query_latency_all{quantile="0.99"}`:  0.001,
		`chameleon_query_latency_all{quantile="0.999"}`: 0.001,
		"chameleon_query_latency_all_sum":               0.1,
		"chameleon_query_latency_all_count":             100,
	}
	for name, v := range want {
		got, ok := samples[name]
		if !ok {
			t.Errorf("missing sample %s", name)
			continue
		}
		if math.Abs(got-v) > 1e-9*math.Max(1, math.Abs(v)) {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	if _, ok := samples["chameleon_mc_worlds_sampled_per_second"]; !ok {
		t.Error("missing differ rate gauge chameleon_mc_worlds_sampled_per_second")
	}
	if _, ok := samples["chameleon_uptime_seconds"]; !ok {
		t.Error("missing chameleon_uptime_seconds")
	}

	// Cumulative bucket counts must be monotonically non-decreasing.
	var prev float64
	for _, line := range bucketLines {
		v := samples[line[:strings.LastIndexByte(line, ' ')]]
		if v < prev {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
}

// TestRatesDiffer: Poll converts counter deltas into per-second rates
// against the previous tick's baseline.
func TestRatesDiffer(t *testing.T) {
	o := obs.NewObserver()
	c := o.Registry().Counter("work.items")
	c.Add(10)
	s := New(o, Options{})

	// Force a measurable dt by back-dating the baseline.
	s.mu.Lock()
	s.prevAt = s.prevAt.Add(-2 * time.Second)
	s.prev.Counters["work.items"] = 0
	s.mu.Unlock()

	s.pollAt(time.Now())
	r := s.Rates()
	if got := r["work.items"]; math.Abs(got-5) > 0.5 {
		t.Errorf("rate = %v, want ~5/s (10 items over ~2s)", got)
	}

	// Second tick with no counter movement: rate falls to zero.
	s.mu.Lock()
	s.prevAt = s.prevAt.Add(-time.Second)
	s.mu.Unlock()
	s.pollAt(time.Now())
	if got := s.Rates()["work.items"]; got != 0 {
		t.Errorf("idle rate = %v, want 0", got)
	}
}

// TestOnSnapshotHook: the differ hook fires on every Poll with the
// snapshot just taken.
func TestOnSnapshotHook(t *testing.T) {
	o := obs.NewObserver()
	o.Registry().Counter("c").Add(7)
	var calls int
	var last obs.Snapshot
	s := New(o, Options{OnSnapshot: func(_ time.Time, snap obs.Snapshot, _ map[string]float64) {
		calls++
		last = snap
	}})
	s.Poll()
	s.Poll()
	if calls != 2 {
		t.Fatalf("hook fired %d times, want 2", calls)
	}
	if last.Counters["c"] != 7 {
		t.Errorf("hook snapshot counter = %d, want 7", last.Counters["c"])
	}
}

// TestRunsAndHealthz covers the non-metrics endpoints.
func TestRunsAndHealthz(t *testing.T) {
	s := New(testObserver(), Options{})
	s.AddRun(RunInfo{ID: "r1", Command: "experiments", Args: []string{"-quick"}, Start: time.Now(), Status: "running"})
	s.SetRunStatus("r1", "done")
	s.SetRunStatus("missing", "failed") // unknown ID: ignored

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("/healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Runs []RunInfo `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != 1 || out.Runs[0].ID != "r1" || out.Runs[0].Status != "done" {
		t.Errorf("/runs = %+v", out.Runs)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/debug/pprof/ status = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/nope status = %d, want 404", resp.StatusCode)
	}
}

// TestStartClose: Start binds an ephemeral port, /metrics is reachable
// over real TCP, and Close shuts everything down.
func TestStartClose(t *testing.T) {
	s := New(testObserver(), Options{Interval: 10 * time.Millisecond})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "chameleon_mc_worlds_sampled 1000") {
		t.Errorf("served metrics missing counter; got:\n%s", body)
	}
	time.Sleep(30 * time.Millisecond) // let the ticker fire at least once
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
	if err := s.Close(); err != nil { // idempotent
		t.Errorf("second Close: %v", err)
	}
}

// TestCloseDrainsInFlightRequest: Close shuts down gracefully, so a
// request already being served completes instead of being cut off
// mid-response.
func TestCloseDrainsInFlightRequest(t *testing.T) {
	s := New(testObserver(), Options{Interval: time.Hour})
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "done")
	})
	// Start with the instrumented mux in place of the default handler.
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.srv.Handler = mux

	body := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			body <- "error: " + err.Error()
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body <- string(b)
	}()
	<-entered

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	// Give Close a moment to enter its drain, then let the handler finish
	// well inside the shutdown window.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if err := <-closed; err != nil {
		t.Fatalf("Close during in-flight request: %v", err)
	}
	if got := <-body; got != "done" {
		t.Errorf("in-flight response = %q, want %q (request was cut off)", got, "done")
	}
}

// TestCloseReportsServeError: a listener that dies mid-run is surfaced
// by Close instead of being swallowed by the Serve goroutine.
func TestCloseReportsServeError(t *testing.T) {
	s := New(testObserver(), Options{Interval: time.Hour})
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	// Kill the listener out from under Serve: Serve returns a non-
	// ErrServerClosed accept error, which Close must report (Close joins
	// it with whatever its own shutdown saw). Wait until Serve has
	// actually observed the dead listener — if Close's Shutdown wins the
	// race, Serve returns ErrServerClosed and the fault is lost.
	s.lis.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		got := s.serveErr
		s.mu.Unlock()
		if got != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Serve never observed the closed listener")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err == nil {
		t.Error("Close returned nil after the listener died under Serve")
	}
}

// TestNilServerSafety: every method on a nil *Server is a usable no-op,
// matching the obs nil-disables-everything contract.
func TestNilServerSafety(t *testing.T) {
	var s *Server
	if h := s.Handler(); h != nil {
		t.Error("nil server Handler() != nil")
	}
	if addr, err := s.Start(":0"); addr != "" || err != nil {
		t.Errorf("nil server Start = %q, %v", addr, err)
	}
	s.Poll()
	if r := s.Rates(); len(r) != 0 {
		t.Errorf("nil server Rates = %v", r)
	}
	s.AddRun(RunInfo{ID: "x"})
	s.SetRunStatus("x", "done")
	if err := s.Close(); err != nil {
		t.Errorf("nil server Close: %v", err)
	}
}

// TestNoDuplicateMetricNames: distinct registry names that sanitize or
// expand to the same exposition name must yield exactly one family — a
// repeated # TYPE line or sample name aborts a Prometheus scrape. The
// colliding inputs here are a gauge shadowing a quality stream's _stderr
// expansion (the recordQuality-vs-expansion hazard), two gauges that
// sanitize identically, and a counter whose _per_second rate gauge lands
// on an existing gauge name.
func TestNoDuplicateMetricNames(t *testing.T) {
	o := obs.NewObserver()
	r := o.Registry()
	q := r.Quality("mc.quality.ERR")
	q.Observe(1)
	q.Observe(3)
	r.Gauge("mc.quality.ERR.stderr").Set(99)  // collides with the stream's _stderr expansion
	r.Gauge("dotted.name").Set(1)             // and its underscore twin:
	r.Gauge("dotted_name").Set(2)             //   both sanitize to dotted_name
	r.Counter("work.items").Add(5)            // rate gauge work_items_per_second ...
	r.Gauge("work.items_per_second").Set(123) // ... collides with this gauge

	var sb strings.Builder
	err := WritePrometheus(&sb, "ns", o.Registry().Snapshot(), map[string]float64{"work.items": 2.5})
	if err != nil {
		t.Fatal(err)
	}
	typed := map[string]bool{}
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if tm := typeLine.FindStringSubmatch(line); tm != nil {
			if typed[tm[1]] {
				t.Errorf("duplicate # TYPE for metric %s", tm[1])
			}
			typed[tm[1]] = true
			continue
		}
		m := metricLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed line: %q", line)
			continue
		}
		if seen[m[1]+m[2]] {
			t.Errorf("duplicate sample %s%s", m[1], m[2])
		}
		seen[m[1]+m[2]] = true
	}
	// First family in emission order wins: the gauge beats the quality
	// expansion and the rate, the lexically first gauge beats its twin.
	if !strings.Contains(sb.String(), "ns_mc_quality_ERR_stderr 99\n") {
		t.Error("gauge did not win the colliding mc_quality_ERR_stderr name")
	}
	if !strings.Contains(sb.String(), "ns_work_items_per_second 123\n") {
		t.Error("gauge did not win the colliding work_items_per_second name")
	}
	if !seen["ns_mc_quality_ERR_mean"] {
		t.Error("non-colliding quality expansion suffixes were dropped")
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"mc.worlds_sampled":    "mc_worlds_sampled",
		"err.stderr.mean":      "err_stderr_mean",
		"weird name-with.char": "weird_name_with_char",
		"already_ok:name":      "already_ok:name",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestTraceEndpoint: /trace serves the observer's span trees as JSON;
// running spans carry running=true with a live duration, ended spans their
// frozen one.
func TestTraceEndpoint(t *testing.T) {
	o := testObserver()
	root := o.StartSpan("anonymize")
	g := root.StartChild("genobf")
	g.SetAttr("sigma", 0.5)
	time.Sleep(time.Millisecond)
	g.End()
	root.StartChild("bisection") // still running

	s := New(o, Options{})
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/trace", nil))
	if rr.Code != 200 {
		t.Fatalf("/trace status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var payload struct {
		At    time.Time           `json:"at"`
		Spans []*obs.SpanSnapshot `json:"spans"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatalf("/trace body: %v\n%s", err, rr.Body.String())
	}
	if payload.At.IsZero() || len(payload.Spans) != 1 {
		t.Fatalf("payload = at %v, %d spans", payload.At, len(payload.Spans))
	}
	tree := payload.Spans[0]
	if !tree.Running || tree.DurationNS <= 0 {
		t.Fatalf("root must be running with live duration: %+v", tree)
	}
	gs := tree.Find("genobf")
	if gs == nil || gs.Running || gs.DurationNS <= 0 {
		t.Fatalf("genobf snapshot = %+v", gs)
	}
	if v, ok := gs.Attrs["sigma"]; !ok || v != 0.5 {
		t.Fatalf("genobf attrs = %v", gs.Attrs)
	}
	if bs := tree.Find("bisection"); bs == nil || !bs.Running {
		t.Fatalf("bisection snapshot = %+v", bs)
	}
}

// TestBuildInfoAndRuntimeMetrics: /metrics carries the build_info identity
// gauge always, and the Go runtime gauges once a differ tick has sampled
// them.
func TestBuildInfoAndRuntimeMetrics(t *testing.T) {
	o := testObserver()
	s := New(o, Options{})
	scrape := func() string {
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
		return rr.Body.String()
	}

	body := scrape()
	if !strings.Contains(body, `chameleon_build_info{version="`) ||
		!strings.Contains(body, `go_version="go`) ||
		!strings.Contains(body, `gomaxprocs="`) {
		t.Fatalf("/metrics missing build_info labels:\n%s", body)
	}

	s.Poll()
	body = scrape()
	for _, name := range []string{
		"chameleon_runtime_goroutines",
		"chameleon_runtime_heap_bytes",
		"chameleon_runtime_gomaxprocs",
	} {
		if !strings.Contains(body, name+" ") {
			t.Fatalf("/metrics missing %s after a poll:\n%s", name, body)
		}
	}
}

// TestRunsProgress: a running record surfaces the run.progress and
// run.eta_seconds gauges; finished records do not, and nothing is
// reported before the gauges exist (no registry pollution via the
// gauge getter).
func TestRunsProgress(t *testing.T) {
	o := testObserver()
	s := New(o, Options{})
	s.AddRun(RunInfo{ID: "r1", Command: "anonymize", Start: time.Now(), Status: "running"})
	s.AddRun(RunInfo{ID: "r0", Command: "anonymize", Start: time.Now().Add(-time.Hour), Status: "done"})

	fetch := func() []RunInfo {
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/runs", nil))
		var payload struct {
			Runs []RunInfo `json:"runs"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
			t.Fatalf("/runs body: %v", err)
		}
		return payload.Runs
	}

	for _, r := range fetch() {
		if r.Progress != 0 || r.ETASeconds != 0 {
			t.Fatalf("progress shown before any gauge exists: %+v", r)
		}
	}
	if _, ok := o.Registry().Snapshot().Gauges[obs.ProgressGauge]; ok {
		t.Fatal("/runs serving minted the progress gauge into the registry")
	}

	o.Registry().Gauge(obs.ProgressGauge).Set(0.62)
	o.Registry().Gauge(obs.ETAGauge).Set(14.5)
	runs := fetch()
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(runs))
	}
	// Sorted by start: r0 (done) first, r1 (running) second.
	if runs[0].ID != "r0" || runs[0].Progress != 0 || runs[0].ETASeconds != 0 {
		t.Fatalf("done record must not carry progress: %+v", runs[0])
	}
	if runs[1].ID != "r1" || runs[1].Progress != 0.62 || runs[1].ETASeconds != 14.5 {
		t.Fatalf("running record progress = %+v", runs[1])
	}
}

// TestTraceServingConcurrentWithSpanMutation hammers /trace (and /metrics)
// while other goroutines start, attribute and end spans in the same trees
// — the live mid-run serving path. Meaningful under -race, which the
// check.sh double-count pass runs over this package.
func TestTraceServingConcurrentWithSpanMutation(t *testing.T) {
	o := obs.NewObserver()
	s := New(o, Options{})
	handler := s.Handler()
	root := o.StartSpan("anonymize")

	// Writers stop CREATING spans after maxChildren each — children are
	// never removed from their parent, so an unbounded creation loop makes
	// every snapshot deep-copy (and JSON-marshal) an ever-growing tree and
	// the test goes quadratic under -race. Past the cap they keep mutating
	// attributes of live spans, so every scrape below still races against
	// concurrent StartChild/SetAttr/End traffic.
	const (
		writers     = 4
		maxChildren = 512
	)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			phase := root.StartChild("phase")
			for i := 0; ; i++ {
				select {
				case <-done:
					phase.End()
					return
				default:
				}
				if i < maxChildren {
					g := phase.StartChild("genobf")
					g.SetAttr("sigma", float64(i))
					a := g.StartChild("attempt")
					a.SetAttr("ok", i%2 == 0)
					a.End()
					g.End()
				} else {
					phase.SetAttr("sigma", float64(i))
				}
				o.Registry().Counter("core.genobf_calls").Add(1)
			}
		}(w)
	}

	for i := 0; i < 50; i++ {
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, httptest.NewRequest("GET", "/trace", nil))
		if rr.Code != 200 {
			t.Fatalf("/trace status = %d", rr.Code)
		}
		var payload struct {
			Spans []*obs.SpanSnapshot `json:"spans"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
			t.Fatalf("mid-run /trace body invalid: %v", err)
		}
		if len(payload.Spans) != 1 || payload.Spans[0].Name != "anonymize" {
			t.Fatalf("mid-run /trace spans = %+v", payload.Spans)
		}
		s.Poll()
		rr = httptest.NewRecorder()
		handler.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
		if rr.Code != 200 {
			t.Fatalf("/metrics status = %d", rr.Code)
		}
	}
	close(done)
	wg.Wait()
	root.End()

	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest("GET", "/trace", nil))
	var payload struct {
		Spans []*obs.SpanSnapshot `json:"spans"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Spans[0].Running {
		t.Fatal("ended root still reported running")
	}
	if got := len(payload.Spans[0].Children); got != writers {
		t.Fatalf("phases = %d, want %d", got, writers)
	}
}
