package obs

import (
	"time"

	"chameleon/internal/obs/hdr"
)

// Latency is the registry's latency-class instrument: a sharded HDR
// histogram recording durations in nanoseconds. Unlike the fixed-bucket
// Histogram — whose quantiles interpolate within hand-picked bounds and
// saturate at the largest finite one — a Latency answers p50/p99/p999
// within a guaranteed relative-error bound across the whole nanosecond-
// to-minutes range, which is what request-path SLOs need. Recording is
// lock-free; a nil *Latency drops updates like every other instrument.
type Latency struct{ rec *hdr.Recorder }

func newLatency() *Latency {
	return &Latency{rec: hdr.NewRecorder(hdr.Config{}, 0)}
}

// Observe records one duration. No-op on a nil latency.
func (l *Latency) Observe(d time.Duration) {
	if l != nil {
		l.rec.Record(int64(d))
	}
}

// ObserveNS records one duration given in nanoseconds.
func (l *Latency) ObserveNS(ns int64) {
	if l != nil {
		l.rec.Record(ns)
	}
}

// ObserveCorrected records a duration with coordinated-omission
// back-fill: when d overran the expected interval between operations,
// the operations that should have started during the overrun are
// synthesized on a linear ramp (see hdr.Histogram.RecordCorrected).
func (l *Latency) ObserveCorrected(d, expectedInterval time.Duration) {
	if l != nil {
		l.rec.RecordCorrected(int64(d), int64(expectedInterval))
	}
}

// Count returns the number of recordings (0 on nil).
func (l *Latency) Count() int64 {
	if l == nil {
		return 0
	}
	return l.rec.Count()
}

// Snapshot freezes the latency distribution into its summary statistics.
func (l *Latency) Snapshot() LatencySnapshot {
	if l == nil {
		return LatencySnapshot{}
	}
	s := l.rec.Snapshot()
	return LatencySnapshot{
		Count:  s.Count,
		SumNS:  s.Sum,
		MinNS:  s.Min,
		MaxNS:  s.Max,
		P50NS:  s.Quantile(0.50),
		P90NS:  s.Quantile(0.90),
		P99NS:  s.Quantile(0.99),
		P999NS: s.Quantile(0.999),
	}
}

// LatencySnapshot is the frozen state of one Latency: the SLO quantiles
// precomputed at snapshot time (each within the HDR relative-error
// bound), plus totals. All fields are plain integers so the snapshot
// round-trips through JSON (the journal) without loss.
type LatencySnapshot struct {
	Count  int64 `json:"count"`
	SumNS  int64 `json:"sum_ns"`
	MinNS  int64 `json:"min_ns"`
	MaxNS  int64 `json:"max_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
}

// Mean returns the mean recorded duration in nanoseconds.
func (s LatencySnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}
