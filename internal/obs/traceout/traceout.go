// Package traceout exports obs span trees in the Chrome trace-event JSON
// format (the "JSON Array Format" with a traceEvents envelope), which
// chrome://tracing and Perfetto's trace viewer load directly. Each span
// becomes one "X" (complete) event with microsecond timestamps; each root
// tree gets its own thread row named after the root span, so concurrent
// runs (e.g. sweep cells) render as parallel tracks.
package traceout

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"chameleon/internal/obs"
)

// Event is a single Chrome trace event. Only the fields the viewers
// require are modeled: phase "X" (complete, with Dur) for spans and phase
// "M" (metadata) for process/thread naming. TS and Dur are microseconds,
// the native unit of the format.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// File is the top-level envelope. DisplayTimeUnit hints the viewer's
// default zoom unit; OtherData carries free-form run metadata.
type File struct {
	TraceEvents     []Event        `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

const pid = 1

// Convert flattens snapshot trees into trace events. Timestamps are
// rebased so the earliest root starts at ts=0; each root is assigned its
// own tid (1-based, in input order) with a thread_name metadata event, and
// a single process_name metadata event labels the whole track group.
// Running spans are exported with their live duration and a running:true
// arg so an interrupted run's trace is still truthful.
func Convert(roots []*obs.SpanSnapshot) []Event {
	var base time.Time
	for _, r := range roots {
		if r == nil {
			continue
		}
		if base.IsZero() || r.Start.Before(base) {
			base = r.Start
		}
	}
	events := []Event{{
		Name: "process_name", Ph: "M", PID: pid, TID: 0,
		Args: map[string]any{"name": "chameleon"},
	}}
	tid := 0
	for _, r := range roots {
		if r == nil {
			continue
		}
		tid++
		events = append(events, Event{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": r.Name},
		})
		startUS := float64(r.Start.Sub(base).Nanoseconds()) / 1e3
		events = appendSpan(events, r, startUS, tid)
	}
	return events
}

// appendSpan emits the "X" event for s at absolute time tsUS and recurses
// into children using their parent-relative offsets.
func appendSpan(events []Event, s *obs.SpanSnapshot, tsUS float64, tid int) []Event {
	ev := Event{
		Name: s.Name,
		Cat:  "span",
		Ph:   "X",
		TS:   tsUS,
		Dur:  float64(s.DurationNS) / 1e3,
		PID:  pid,
		TID:  tid,
	}
	if len(s.Attrs) > 0 || s.Running {
		ev.Args = make(map[string]any, len(s.Attrs)+1)
		for k, v := range s.Attrs {
			ev.Args[k] = v
		}
		if s.Running {
			ev.Args["running"] = true
		}
	}
	events = append(events, ev)
	for _, c := range s.Children {
		if c == nil {
			continue
		}
		childTS := tsUS + float64(c.StartNS)/1e3
		// Offsets are measured against the parent's start; clamp tiny
		// negative skew (clock reads race span creation) so viewers never
		// see a child left of its parent.
		if childTS < tsUS {
			childTS = tsUS
		}
		events = appendSpan(events, c, childTS, tid)
	}
	return events
}

// Write emits the full trace file for the given snapshot trees.
func Write(w io.Writer, roots []*obs.SpanSnapshot, otherData map[string]any) error {
	f := File{
		TraceEvents:     Convert(roots),
		DisplayTimeUnit: "ms",
		OtherData:       otherData,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteFile writes the trace to path, creating or truncating it.
func WriteFile(path string, roots []*obs.SpanSnapshot, otherData map[string]any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("traceout: %w", err)
	}
	if err := Write(f, roots, otherData); err != nil {
		f.Close()
		return fmt.Errorf("traceout: write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("traceout: close %s: %w", path, err)
	}
	return nil
}

// ExportObserver snapshots every span tree attached to o and writes them
// to path. A nil observer or one with no spans still produces a valid
// (empty) trace file, so a -traceout flag never fails just because a run
// aborted before tracing started.
func ExportObserver(path string, o *obs.Observer) error {
	var snaps []*obs.SpanSnapshot
	if o != nil {
		for _, s := range o.Spans() {
			if snap := s.SnapshotTree(); snap != nil {
				snaps = append(snaps, snap)
			}
		}
	}
	return WriteFile(path, snaps, map[string]any{
		"exporter": "chameleon traceout",
	})
}
