package traceout

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"chameleon/internal/obs"
)

// buildTree makes a realistic two-root span forest: a finished anonymize
// tree with nested genobf/attempt spans, and a second root that is still
// running when snapshotted.
func buildTree(t *testing.T) []*obs.SpanSnapshot {
	t.Helper()
	root := obs.NewSpan("anonymize")
	g := root.StartChild("genobf")
	g.SetAttr("sigma", 0.5)
	a := g.StartChild("attempt")
	a.SetAttr("ok", true)
	time.Sleep(time.Millisecond)
	a.End()
	g.End()
	root.End()

	live := obs.NewSpan("sweep")
	live.StartChild("cell")
	time.Sleep(time.Millisecond)

	return []*obs.SpanSnapshot{root.SnapshotTree(), live.SnapshotTree()}
}

// TestChromeTraceSchema validates the exported file against the Chrome
// trace-event schema requirements that chrome://tracing and Perfetto
// enforce: a top-level "traceEvents" array, every event with a phase of
// "X" or "M", microsecond ts/dur that are non-negative, complete events
// carrying pid/tid, and names non-empty throughout.
func TestChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, buildTree(t), map[string]any{"k": 100}); err != nil {
		t.Fatal(err)
	}

	// Decode generically: the schema check must see what a viewer sees,
	// not our own structs.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	rawEvents, ok := doc["traceEvents"]
	if !ok {
		t.Fatal(`trace file missing top-level "traceEvents" key`)
	}
	var unit string
	if err := json.Unmarshal(doc["displayTimeUnit"], &unit); err != nil || (unit != "ms" && unit != "ns") {
		t.Fatalf("displayTimeUnit = %q, want ms or ns", unit)
	}
	var events []map[string]any
	if err := json.Unmarshal(rawEvents, &events); err != nil {
		t.Fatalf("traceEvents is not an array of objects: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events exported")
	}

	var xEvents, mEvents int
	for i, ev := range events {
		name, _ := ev["name"].(string)
		if name == "" {
			t.Fatalf("event %d has no name: %v", i, ev)
		}
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			xEvents++
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				t.Fatalf("event %d (%s): ts = %v, want non-negative number", i, name, ev["ts"])
			}
			if dur, ok := ev["dur"].(float64); ok && dur < 0 {
				t.Fatalf("event %d (%s): dur = %v, want >= 0", i, name, dur)
			}
			if _, ok := ev["pid"].(float64); !ok {
				t.Fatalf("event %d (%s) missing pid", i, name)
			}
			if _, ok := ev["tid"].(float64); !ok {
				t.Fatalf("event %d (%s) missing tid", i, name)
			}
		case "M":
			mEvents++
			args, _ := ev["args"].(map[string]any)
			if n, _ := args["name"].(string); n == "" {
				t.Fatalf("metadata event %d missing args.name", i)
			}
		default:
			t.Fatalf("event %d (%s): unexpected phase %q", i, name, ph)
		}
	}
	// 5 spans (anonymize/genobf/attempt + sweep/cell) and 3 metadata
	// events (process_name + one thread_name per root).
	if xEvents != 5 || mEvents != 3 {
		t.Fatalf("events = %d X + %d M, want 5 X + 3 M", xEvents, mEvents)
	}
}

// TestConvertTimelineGeometry checks the timing math: children sit inside
// their parents, roots are rebased against the earliest start, each root
// has a distinct tid, and a running span exports its live duration with a
// running arg.
func TestConvertTimelineGeometry(t *testing.T) {
	events := Convert(buildTree(t))

	find := func(name string) Event {
		t.Helper()
		for _, e := range events {
			if e.Ph == "X" && e.Name == name {
				return e
			}
		}
		t.Fatalf("no X event named %s", name)
		return Event{}
	}
	anonymize, genobf, attempt := find("anonymize"), find("genobf"), find("attempt")
	sweep, cell := find("sweep"), find("cell")

	if anonymize.TS != 0 {
		t.Fatalf("earliest root ts = %v, want 0", anonymize.TS)
	}
	if genobf.TS < anonymize.TS || genobf.TS+genobf.Dur > anonymize.TS+anonymize.Dur+1 {
		t.Fatalf("genobf [%v,+%v] escapes anonymize [%v,+%v]",
			genobf.TS, genobf.Dur, anonymize.TS, anonymize.Dur)
	}
	if attempt.TS < genobf.TS {
		t.Fatalf("attempt starts before its parent")
	}
	if anonymize.TID == sweep.TID || anonymize.TID == 0 || sweep.TID == 0 {
		t.Fatalf("roots share a tid: %d vs %d", anonymize.TID, sweep.TID)
	}
	if cell.TID != sweep.TID {
		t.Fatalf("cell tid %d differs from its root's %d", cell.TID, sweep.TID)
	}
	if sweep.TS <= 0 {
		t.Fatalf("later root ts = %v, want > 0 after rebasing", sweep.TS)
	}
	if run, _ := sweep.Args["running"].(bool); !run || sweep.Dur <= 0 {
		t.Fatalf("running root must export running=true with live dur, got %+v", sweep)
	}
	if v, ok := genobf.Args["sigma"]; !ok || v != 0.5 {
		t.Fatalf("span attrs must become args, got %v", genobf.Args)
	}
}

// TestExportObserver covers the file path and the degenerate inputs: a nil
// observer and an observer with no spans still write a valid empty trace.
func TestExportObserver(t *testing.T) {
	dir := t.TempDir()

	o := obs.NewObserver()
	s := o.StartSpan("anonymize")
	s.End()
	path := filepath.Join(dir, "trace.json")
	if err := ExportObserver(path, o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("exported file is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) < 2 {
		t.Fatalf("events = %d, want metadata + span", len(f.TraceEvents))
	}

	empty := filepath.Join(dir, "empty.json")
	if err := ExportObserver(empty, nil); err != nil {
		t.Fatalf("nil observer export: %v", err)
	}
	data, err = os.ReadFile(empty)
	if err != nil {
		t.Fatal(err)
	}
	var ef File
	if err := json.Unmarshal(data, &ef); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}

	if err := ExportObserver(filepath.Join(dir, "no/such/dir/x.json"), o); err == nil {
		t.Fatal("unwritable path must error")
	}
}
