package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// Names of the gauges and histograms the runtime sampler publishes.
const (
	RuntimeGoroutines   = "runtime.goroutines"
	RuntimeGomaxprocs   = "runtime.gomaxprocs"
	RuntimeHeapBytes    = "runtime.heap_bytes"
	RuntimeTotalBytes   = "runtime.total_bytes"
	RuntimeGCCycles     = "runtime.gc_cycles"
	RuntimeGCPause      = "runtime.gc_pause_seconds"
	RuntimeSchedLatency = "runtime.sched_latency_seconds"
)

// gcPauseBuckets spans the realistic Go GC stop-the-world pause range,
// 10µs to 100ms.
var gcPauseBuckets = []float64{1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1}

// maxPauseReplay caps how many individual pause observations one Sample
// call replays into the registry histogram; a long gap between samples on
// a GC-heavy process must not turn a poll tick into an O(pauses) stall.
const maxPauseReplay = 10_000

// RuntimeSampler reads the runtime/metrics package and publishes Go
// runtime health — goroutines, heap, GC pauses, scheduler latency — into
// a Registry, from which the expose server's Prometheus endpoint picks
// them up like any other gauge. Sampling is pull-based: the caller (the
// expose differ tick) invokes Sample at its own cadence, so the sampler
// adds no goroutine and no overhead when telemetry is off.
//
// GC pauses arrive from the runtime as a cumulative histogram; Sample
// replays the delta since the previous call into a registry Histogram by
// observing each new pause at its bucket midpoint. Scheduler latencies
// can accumulate millions of counts, so those are summarized into
// p50/p90/p99 gauges computed directly from the cumulative distribution
// instead of replayed.
type RuntimeSampler struct {
	reg     *Registry
	samples []metrics.Sample
	// prevPause holds the previous cumulative GC pause bucket counts,
	// aligned with the runtime histogram's bucket layout.
	prevPause []uint64
}

// NewRuntimeSampler returns a sampler publishing into reg. A nil registry
// yields a nil sampler, on which Sample is a no-op.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	if reg == nil {
		return nil
	}
	s := &RuntimeSampler{reg: reg}
	for _, name := range []string{
		"/sched/goroutines:goroutines",
		"/memory/classes/heap/objects:bytes",
		"/memory/classes/total:bytes",
		"/gc/cycles/total:gc-cycles",
		"/gc/pauses:seconds",
		"/sched/latencies:seconds",
	} {
		s.samples = append(s.samples, metrics.Sample{Name: name})
	}
	return s
}

// Sample reads the runtime metrics once and updates the registry.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	metrics.Read(s.samples)
	for _, m := range s.samples {
		switch m.Name {
		case "/sched/goroutines:goroutines":
			s.reg.Gauge(RuntimeGoroutines).Set(sampleFloat(m.Value))
		case "/memory/classes/heap/objects:bytes":
			s.reg.Gauge(RuntimeHeapBytes).Set(sampleFloat(m.Value))
		case "/memory/classes/total:bytes":
			s.reg.Gauge(RuntimeTotalBytes).Set(sampleFloat(m.Value))
		case "/gc/cycles/total:gc-cycles":
			s.reg.Gauge(RuntimeGCCycles).Set(sampleFloat(m.Value))
		case "/gc/pauses:seconds":
			s.samplePauses(m.Value)
		case "/sched/latencies:seconds":
			s.sampleSchedLatency(m.Value)
		}
	}
	s.reg.Gauge(RuntimeGomaxprocs).Set(float64(runtime.GOMAXPROCS(0)))
}

func sampleFloat(v metrics.Value) float64 {
	switch v.Kind() {
	case metrics.KindUint64:
		return float64(v.Uint64())
	case metrics.KindFloat64:
		return v.Float64()
	default:
		return 0
	}
}

// samplePauses replays new GC pause observations (the delta of the
// cumulative runtime histogram since the last call) into the registry
// histogram, each at its bucket's midpoint.
func (s *RuntimeSampler) samplePauses(v metrics.Value) {
	if v.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := v.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return
	}
	if len(s.prevPause) != len(h.Counts) {
		// First sample (or a layout change): record the baseline without
		// replaying history — pauses from before the sampler existed are
		// not this run's signal.
		s.prevPause = append(s.prevPause[:0], h.Counts...)
		return
	}
	hist := s.reg.Histogram(RuntimeGCPause, gcPauseBuckets)
	replayed := 0
	for i, c := range h.Counts {
		delta := c - s.prevPause[i]
		s.prevPause[i] = c
		if delta == 0 {
			continue
		}
		mid := bucketMidpoint(h.Buckets, i)
		for j := uint64(0); j < delta && replayed < maxPauseReplay; j++ {
			hist.Observe(mid)
			replayed++
		}
	}
}

// sampleSchedLatency publishes p50/p90/p99 goroutine scheduling latency
// gauges from the cumulative runtime distribution.
func (s *RuntimeSampler) sampleSchedLatency(v metrics.Value) {
	if v.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := v.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return
	}
	for _, q := range []struct {
		name string
		p    float64
	}{
		{RuntimeSchedLatency + ".p50", 0.50},
		{RuntimeSchedLatency + ".p90", 0.90},
		{RuntimeSchedLatency + ".p99", 0.99},
	} {
		s.reg.Gauge(q.name).Set(histQuantile(h, total, q.p))
	}
}

// histQuantile returns the q-quantile of a runtime Float64Histogram,
// reading each bucket at its midpoint.
func histQuantile(h *metrics.Float64Histogram, total uint64, q float64) float64 {
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return bucketMidpoint(h.Buckets, i)
		}
	}
	return bucketMidpoint(h.Buckets, len(h.Counts)-1)
}

// bucketMidpoint returns a representative value for bucket i of a runtime
// histogram with len(Counts)+1 boundaries. Infinite edges fall back to the
// finite neighbor.
func bucketMidpoint(bounds []float64, i int) float64 {
	if i < 0 || i+1 >= len(bounds) {
		return 0
	}
	lo, hi := bounds[i], bounds[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, +1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, +1):
		return lo
	default:
		return (lo + hi) / 2
	}
}
