package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Span is one timed node of a hierarchical trace. StartNS is the offset of
// the span's start from its parent's start (0 for a root), so a subtree
// stays self-consistent when adopted into another tree. Timing uses the
// monotonic clock carried by time.Time.
//
// All methods are safe on a nil *Span, so call sites need no guards when
// tracing is off. Attribute and child updates are mutex-protected and safe
// for concurrent use.
type Span struct {
	Name       string         `json:"name"`
	StartNS    int64          `json:"start_ns"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*Span        `json:"children,omitempty"`

	mu    sync.Mutex
	start time.Time
	ended bool
}

// NewSpan starts a new root span.
func NewSpan(name string) *Span {
	return &Span{Name: name, start: time.Now()}
}

// StartChild starts a new child span nested under s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	c := &Span{Name: name, start: now, StartNS: now.Sub(s.start).Nanoseconds()}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// Adopt attaches an independently started span (and its subtree) as a
// child of s, rebasing its start offset onto s.
func (s *Span) Adopt(c *Span) {
	if s == nil || c == nil {
		return
	}
	c.StartNS = c.start.Sub(s.start).Nanoseconds()
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
}

// End freezes the span's duration. Only the first End takes effect, so a
// span's duration never shrinks or grows after it is read.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.DurationNS = time.Since(s.start).Nanoseconds()
	}
	s.mu.Unlock()
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Duration returns the frozen duration, or the running duration for a span
// that has not ended yet.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return time.Duration(s.DurationNS)
	}
	return time.Since(s.start)
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]any)
	}
	s.Attrs[key] = value
	s.mu.Unlock()
}

// Attr returns the named attribute.
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.Attrs[key]
	return v, ok
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s (s itself included), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, c := range children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// FindAll returns every span named name in the subtree rooted at s, in
// depth-first order.
func (s *Span) FindAll(name string) []*Span {
	var out []*Span
	s.findAll(name, &out)
	return out
}

func (s *Span) findAll(name string, out *[]*Span) {
	if s == nil {
		return
	}
	if s.Name == name {
		*out = append(*out, s)
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, c := range children {
		c.findAll(name, out)
	}
}

// WriteTree renders the span tree as indented text, one span per line with
// its duration and attributes.
func (s *Span) WriteTree(w io.Writer) error {
	if s == nil {
		return nil
	}
	return s.writeTree(w, 0)
}

func (s *Span) writeTree(w io.Writer, depth int) error {
	s.mu.Lock()
	name := s.Name
	dur := time.Duration(s.DurationNS)
	attrs := make([]string, 0, len(s.Attrs))
	for _, k := range sortedKeys(s.Attrs) {
		attrs = append(attrs, fmt.Sprintf("%s=%v", k, s.Attrs[k]))
	}
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()

	line := fmt.Sprintf("%s%s %v", strings.Repeat("  ", depth), name, dur)
	if len(attrs) > 0 {
		line += " {" + strings.Join(attrs, " ") + "}"
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range children {
		if err := c.writeTree(w, depth+1); err != nil {
			return err
		}
	}
	return nil
}
