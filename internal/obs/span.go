package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Span is one timed node of a hierarchical trace. StartNS is the offset of
// the span's start from its parent's start (0 for a root), so a subtree
// stays self-consistent when adopted into another tree. Timing uses the
// monotonic clock carried by time.Time.
//
// All methods are safe on a nil *Span, so call sites need no guards when
// tracing is off. Attribute and child updates are mutex-protected and safe
// for concurrent use.
type Span struct {
	Name       string         `json:"name"`
	StartNS    int64          `json:"start_ns"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*Span        `json:"children,omitempty"`

	mu    sync.Mutex
	start time.Time
	ended bool
}

// NewSpan starts a new root span.
func NewSpan(name string) *Span {
	return &Span{Name: name, start: time.Now()}
}

// StartChild starts a new child span nested under s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	c := &Span{Name: name, start: now, StartNS: now.Sub(s.start).Nanoseconds()}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// Adopt attaches an independently started span (and its subtree) as a
// child of s, rebasing its start offset onto s.
func (s *Span) Adopt(c *Span) {
	if s == nil || c == nil {
		return
	}
	c.StartNS = c.start.Sub(s.start).Nanoseconds()
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
}

// End freezes the span's duration. Only the first End takes effect, so a
// span's duration never shrinks or grows after it is read.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.DurationNS = time.Since(s.start).Nanoseconds()
	}
	s.mu.Unlock()
}

// runningLocked reports whether the span is still accumulating time.
// Spans rehydrated from JSON (journal replay, tests building literals)
// carry no wall-clock start; their DurationNS is authoritative even though
// End was never called on them. Caller holds s.mu.
func (s *Span) runningLocked() bool {
	return !s.ended && !s.start.IsZero()
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Duration returns the frozen duration, or the running duration for a span
// that has not ended yet.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runningLocked() {
		return time.Since(s.start)
	}
	return time.Duration(s.DurationNS)
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]any)
	}
	s.Attrs[key] = value
	s.mu.Unlock()
}

// Attr returns the named attribute.
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.Attrs[key]
	return v, ok
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s (s itself included), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, c := range children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// FindAll returns every span named name in the subtree rooted at s, in
// depth-first order.
func (s *Span) FindAll(name string) []*Span {
	var out []*Span
	s.findAll(name, &out)
	return out
}

func (s *Span) findAll(name string, out *[]*Span) {
	if s == nil {
		return
	}
	if s.Name == name {
		*out = append(*out, s)
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, c := range children {
		c.findAll(name, out)
	}
}

// SpanSnapshot is a point-in-time copy of a span tree. Unlike marshaling
// the *Span directly — whose DurationNS is frozen at 0 until End — a
// snapshot reports the live duration of running spans and flags them, so
// exported views (the /trace endpoint, the trace-event file) stay truthful
// mid-run. Start is the span's absolute start time (monotonic-clock
// accurate when consumed in-process); StartNS is the parent-relative
// offset, same as on Span.
type SpanSnapshot struct {
	Name       string          `json:"name"`
	Start      time.Time       `json:"start"`
	StartNS    int64           `json:"start_ns"`
	DurationNS int64           `json:"duration_ns"`
	Running    bool            `json:"running,omitempty"`
	Attrs      map[string]any  `json:"attrs,omitempty"`
	Children   []*SpanSnapshot `json:"children,omitempty"`
}

// SnapshotTree freezes the subtree rooted at s into a SpanSnapshot,
// concurrently safe with spans being started, attributed and ended in the
// same tree. Returns nil on a nil span.
func (s *Span) SnapshotTree() *SpanSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	snap := &SpanSnapshot{
		Name:       s.Name,
		Start:      s.start,
		StartNS:    s.StartNS,
		DurationNS: s.DurationNS,
		Running:    s.runningLocked(),
	}
	if snap.Running {
		snap.DurationNS = time.Since(s.start).Nanoseconds()
	}
	if len(s.Attrs) > 0 {
		snap.Attrs = make(map[string]any, len(s.Attrs))
		for k, v := range s.Attrs {
			snap.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.SnapshotTree())
	}
	return snap
}

// Find returns the first snapshot named name in a depth-first walk of the
// subtree rooted at s (s itself included), or nil.
func (s *SpanSnapshot) Find(name string) *SpanSnapshot {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// WriteTree renders the span tree as indented text, one span per line with
// its duration and attributes.
func (s *Span) WriteTree(w io.Writer) error {
	if s == nil {
		return nil
	}
	return s.writeTree(w, 0)
}

func (s *Span) writeTree(w io.Writer, depth int) error {
	s.mu.Lock()
	name := s.Name
	// A span still running has a frozen DurationNS of 0; report the live
	// duration instead so dumping a tree mid-run shows elapsed time, not a
	// misleading zero.
	dur := time.Duration(s.DurationNS)
	if s.runningLocked() {
		dur = time.Since(s.start)
	}
	attrs := make([]string, 0, len(s.Attrs))
	for _, k := range sortedKeys(s.Attrs) {
		attrs = append(attrs, fmt.Sprintf("%s=%v", k, s.Attrs[k]))
	}
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()

	line := fmt.Sprintf("%s%s %v", strings.Repeat("  ", depth), name, dur)
	if len(attrs) > 0 {
		line += " {" + strings.Join(attrs, " ") + "}"
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range children {
		if err := c.writeTree(w, depth+1); err != nil {
			return err
		}
	}
	return nil
}
