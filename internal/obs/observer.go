package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"sync"
)

// Gauge names shared between progress producers (the σ-search in core,
// the sweep in exp) and consumers (the expose server's /runs view).
// Progress is a completed fraction in [0,1]; the ETA is a seconds
// estimate from the mean cost of the remaining units of work.
const (
	ProgressGauge = "run.progress"
	ETAGauge      = "run.eta_seconds"
)

// Observer bundles a metrics registry, collected trace roots and an
// optional structured logger. It is the single hook instrumented code
// accepts: a nil *Observer disables all three at the cost of a pointer
// test per call.
type Observer struct {
	// Logger, when non-nil, receives structured progress events via Log
	// and Debug. Set it right after NewObserver; it is read without
	// locking.
	Logger *slog.Logger

	reg *Registry

	mu    sync.Mutex
	spans []*Span
}

// NewObserver returns an observer with a fresh registry and no logger.
func NewObserver() *Observer {
	return &Observer{reg: NewRegistry()}
}

// Registry returns the metrics registry (nil for a nil observer, which is
// itself a usable no-op registry).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// StartSpan starts a new root span and records it with the observer.
func (o *Observer) StartSpan(name string) *Span {
	if o == nil {
		return nil
	}
	s := NewSpan(name)
	o.AttachSpan(s)
	return s
}

// AttachSpan records an externally built trace root with the observer so
// snapshots include it.
func (o *Observer) AttachSpan(s *Span) {
	if o == nil || s == nil {
		return
	}
	o.mu.Lock()
	o.spans = append(o.spans, s)
	o.mu.Unlock()
}

// Spans returns the recorded trace roots in attachment order.
func (o *Observer) Spans() []*Span {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*Span(nil), o.spans...)
}

// Log emits an info-level structured event if a logger is configured.
func (o *Observer) Log(msg string, args ...any) {
	if o == nil || o.Logger == nil {
		return
	}
	o.Logger.Info(msg, args...)
}

// Debug emits a debug-level structured event if a logger is configured.
func (o *Observer) Debug(msg string, args ...any) {
	if o == nil || o.Logger == nil {
		return
	}
	o.Logger.Debug(msg, args...)
}

// ObserverSnapshot is the full frozen state of an observer: the registry
// snapshot plus every recorded trace root.
type ObserverSnapshot struct {
	Snapshot
	Spans []*Span `json:"spans,omitempty"`
}

// Snapshot freezes the observer's registry and trace roots.
func (o *Observer) Snapshot() ObserverSnapshot {
	return ObserverSnapshot{Snapshot: o.Registry().Snapshot(), Spans: o.Spans()}
}

// WriteJSON writes the full observer snapshot as indented JSON.
func (o *Observer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(o.Snapshot())
}

// WriteText writes the registry as an aligned table followed by each trace
// rendered as an indented tree.
func (o *Observer) WriteText(w io.Writer) error {
	if err := o.Registry().Snapshot().WriteText(w); err != nil {
		return err
	}
	for _, s := range o.Spans() {
		if err := s.WriteTree(w); err != nil {
			return err
		}
	}
	return nil
}

// NewLogger returns a text slog logger suitable for -v CLI output: debug
// level, no timestamps stripped (operators correlate with wall clock).
func NewLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug}))
}
