package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanNestingInvariants: children start no earlier than their parent,
// offsets are non-negative and non-decreasing in creation order, and an
// ended child fits inside its parent's window when ended first.
func TestSpanNestingInvariants(t *testing.T) {
	root := NewSpan("root")
	a := root.StartChild("a")
	aa := a.StartChild("aa")
	time.Sleep(time.Millisecond)
	aa.End()
	a.End()
	b := root.StartChild("b")
	b.End()
	root.End()

	if root.StartNS != 0 {
		t.Fatalf("root offset = %d, want 0", root.StartNS)
	}
	if a.StartNS < 0 || b.StartNS < a.StartNS {
		t.Fatalf("child offsets out of order: a=%d b=%d", a.StartNS, b.StartNS)
	}
	// aa is offset from a; its window must fit inside a's.
	if aa.StartNS < 0 || aa.StartNS+aa.DurationNS > a.DurationNS {
		t.Fatalf("aa [%d,+%d] escapes a (dur %d)", aa.StartNS, aa.DurationNS, a.DurationNS)
	}
	if a.StartNS+a.DurationNS > root.DurationNS {
		t.Fatalf("a escapes root")
	}
	if len(root.Children) != 2 || root.Children[0] != a || root.Children[1] != b {
		t.Fatalf("children order wrong: %+v", root.Children)
	}
}

// TestSpanEndIdempotent: the first End freezes the duration.
func TestSpanEndIdempotent(t *testing.T) {
	s := NewSpan("s")
	s.End()
	d := s.DurationNS
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.DurationNS != d {
		t.Fatalf("second End changed duration: %d -> %d", d, s.DurationNS)
	}
	if !s.Ended() {
		t.Fatal("span should report ended")
	}
}

// TestSpanAdoptRebasesOffset: an adopted root becomes a child with a
// parent-relative offset; its own children keep their offsets.
func TestSpanAdoptRebasesOffset(t *testing.T) {
	parent := NewSpan("parent")
	time.Sleep(time.Millisecond)
	orphan := NewSpan("orphan")
	kid := orphan.StartChild("kid")
	kid.End()
	orphan.End()
	kidOffset := kid.StartNS
	parent.Adopt(orphan)
	parent.End()
	if orphan.StartNS <= 0 {
		t.Fatalf("adopted offset = %d, want > 0 (started after parent)", orphan.StartNS)
	}
	if kid.StartNS != kidOffset {
		t.Fatalf("adoption must not touch grandchildren offsets")
	}
	if parent.Find("kid") != kid {
		t.Fatal("Find must reach adopted subtree")
	}
}

// TestSpanFindAndAttrs exercises the query helpers.
func TestSpanFindAndAttrs(t *testing.T) {
	root := NewSpan("root")
	for i := 0; i < 3; i++ {
		c := root.StartChild("attempt")
		c.SetAttr("i", i)
		c.End()
	}
	root.End()
	if got := len(root.FindAll("attempt")); got != 3 {
		t.Fatalf("FindAll = %d, want 3", got)
	}
	first := root.Find("attempt")
	if v, ok := first.Attr("i"); !ok || v != 0 {
		t.Fatalf("first attempt attr = %v, %v", v, ok)
	}
	if root.Find("missing") != nil {
		t.Fatal("Find of a missing name must be nil")
	}
	var nilSpan *Span
	if nilSpan.Find("x") != nil || nilSpan.FindAll("x") != nil {
		t.Fatal("nil span queries must be empty")
	}
	if _, ok := nilSpan.Attr("x"); ok {
		t.Fatal("nil span has no attrs")
	}
}

// TestSpanConcurrentChildren: concurrent StartChild/SetAttr must be safe
// (meaningful under -race).
func TestSpanConcurrentChildren(t *testing.T) {
	root := NewSpan("root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.StartChild("c")
				c.SetAttr("w", w)
				c.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got := len(root.FindAll("c")); got != 400 {
		t.Fatalf("children = %d, want 400", got)
	}
}

// TestSnapshotTree: a snapshot copies names, offsets and attrs; running
// spans report a live (non-zero, growing) duration and Running true, ended
// spans the frozen duration with Running false.
func TestSnapshotTree(t *testing.T) {
	root := NewSpan("root")
	done := root.StartChild("done")
	done.SetAttr("sigma", 0.25)
	time.Sleep(time.Millisecond)
	done.End()
	live := root.StartChild("live")
	time.Sleep(time.Millisecond)

	snap := root.SnapshotTree()
	if snap.Name != "root" || !snap.Running || snap.DurationNS <= 0 {
		t.Fatalf("root snapshot = %+v, want running with live duration", snap)
	}
	if len(snap.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(snap.Children))
	}
	ds := snap.Find("done")
	if ds == nil || ds.Running || ds.DurationNS != done.DurationNS {
		t.Fatalf("done snapshot = %+v, want frozen duration %d", ds, done.DurationNS)
	}
	if v, ok := ds.Attrs["sigma"]; !ok || v != 0.25 {
		t.Fatalf("done attrs = %v", ds.Attrs)
	}
	ls := snap.Find("live")
	if ls == nil || !ls.Running || ls.DurationNS <= 0 {
		t.Fatalf("live snapshot = %+v, want running with live duration", ls)
	}
	if ls.StartNS != live.StartNS {
		t.Fatalf("live offset = %d, want %d", ls.StartNS, live.StartNS)
	}

	// A later snapshot of a still-running span reports a larger duration;
	// mutating the snapshot's attrs never touches the span.
	time.Sleep(time.Millisecond)
	snap2 := root.SnapshotTree()
	if snap2.Find("live").DurationNS <= ls.DurationNS {
		t.Fatal("running span's snapshot duration did not grow")
	}
	ds.Attrs["sigma"] = 99.0
	if v, _ := done.Attr("sigma"); v != 0.25 {
		t.Fatal("snapshot attrs alias the span's map")
	}

	var nilSpan *Span
	if nilSpan.SnapshotTree() != nil {
		t.Fatal("nil span snapshot must be nil")
	}
	var nilSnap *SpanSnapshot
	if nilSnap.Find("x") != nil {
		t.Fatal("nil snapshot Find must be nil")
	}
}

// TestWriteTreeLiveDurations: dumping a tree whose spans are still running
// must print their elapsed time, not the frozen zero of an unfinished span.
func TestWriteTreeLiveDurations(t *testing.T) {
	root := NewSpan("root")
	root.StartChild("running")
	time.Sleep(2 * time.Millisecond)
	var sb strings.Builder
	if err := root.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if strings.HasSuffix(line, " 0s") {
			t.Fatalf("live tree printed a zero duration:\n%s", sb.String())
		}
	}
}

// TestWriteTree renders names, durations and attributes with indentation.
func TestWriteTree(t *testing.T) {
	root := NewSpan("root")
	c := root.StartChild("child")
	c.SetAttr("sigma", 0.5)
	c.End()
	root.End()
	var sb strings.Builder
	if err := root.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "root ") || !strings.Contains(out, "  child ") {
		t.Fatalf("tree output:\n%s", out)
	}
	if !strings.Contains(out, "sigma=0.5") {
		t.Fatalf("attrs missing:\n%s", out)
	}
}
