package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden snapshot files")

// goldenObserver builds a fully deterministic observer state: fixed metric
// values and a span tree with hand-set offsets/durations.
func goldenObserver() *Observer {
	o := NewObserver()
	r := o.Registry()
	r.Counter("core.genobf_calls").Add(18)
	r.Counter("mc.worlds_sampled").Add(3000)
	r.Gauge("core.sigma").Set(0.03125)
	h := r.Histogram("mc.seconds.EdgeRelevance", []float64{0.001, 0.01, 0.1, 1})
	h.Observe(0.004)
	h.Observe(0.007)
	h.Observe(0.25)
	q := r.Quality("mc.quality.ExpectedConnectedPairs")
	for _, v := range []float64{100, 104, 96, 102, 98} {
		q.Observe(v)
	}
	lat := r.Latency("query.latency.all")
	for i := int64(1); i <= 100; i++ {
		lat.ObserveNS(i * 100_000) // 0.1ms .. 10ms ramp
	}

	attempt := &Span{
		Name:       "attempt",
		StartNS:    1_000,
		DurationNS: 40_000,
		Attrs:      map[string]any{"epsilon_tilde": 0.01, "ok": true, "injected_edges": 12},
	}
	genobf := &Span{
		Name:       "genobf",
		StartNS:    5_000,
		DurationNS: 50_000,
		Attrs:      map[string]any{"sigma": 0.5},
		Children:   []*Span{attempt},
	}
	root := &Span{
		Name:       "anonymize",
		StartNS:    0,
		DurationNS: 100_000,
		Children:   []*Span{genobf},
	}
	o.AttachSpan(root)
	return o
}

// TestSnapshotGolden locks the JSON and text export formats against
// testdata goldens (refresh with `go test ./internal/obs -run Golden -update`).
func TestSnapshotGolden(t *testing.T) {
	o := goldenObserver()
	cases := []struct {
		file  string
		write func(*bytes.Buffer) error
	}{
		{"snapshot.json", func(b *bytes.Buffer) error { return o.WriteJSON(b) }},
		{"snapshot.txt", func(b *bytes.Buffer) error { return o.WriteText(b) }},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			var buf bytes.Buffer
			if err := c.write(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", c.file)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("snapshot drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s",
					path, buf.Bytes(), want)
			}
		})
	}
}

// TestSnapshotStableAcrossCalls: two snapshots of an unchanged observer
// must serialize identically (map ordering must not leak through).
func TestSnapshotStableAcrossCalls(t *testing.T) {
	o := goldenObserver()
	var a, b bytes.Buffer
	if err := o.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSON snapshot is not deterministic")
	}
}
