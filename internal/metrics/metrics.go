// Package metrics evaluates the graph statistics used in the paper's
// utility evaluation (Section VI-A) under possible-world semantics:
// degree-based metrics (average node degree, maximal degree, degree
// distribution), node-separation metrics (average distance, effective
// diameter — via ANF), and the clustering coefficient. Except for the
// average degree, which has a closed form, every metric is the Monte Carlo
// average over sampled worlds.
package metrics

import (
	"math/rand/v2"
	"runtime"
	"sync"

	"chameleon/internal/anf"
	"chameleon/internal/hyperanf"
	"chameleon/internal/privacy"
	"chameleon/internal/uncertain"
)

// Options configures metric estimation.
type Options struct {
	// Samples is the number of sampled worlds (default 1000 for cheap
	// metrics; distance/clustering callers typically pass fewer).
	Samples int
	// Seed drives world sampling.
	Seed uint64
	// Workers caps parallelism; 0 = GOMAXPROCS.
	Workers int
	// ANF configures the neighborhood-function estimator for distance
	// metrics.
	ANF anf.Options
	// UseHyperANF switches the distance metrics to the HyperLogLog-based
	// HyperANF estimator [8] instead of the classic Flajolet–Martin ANF.
	UseHyperANF bool
	// HyperANF configures the HyperANF estimator when UseHyperANF is set.
	HyperANF hyperanf.Options
}

func (o Options) samples(def int) int {
	if o.Samples <= 0 {
		return def
	}
	return o.Samples
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// forEachWorld samples n worlds in parallel and calls fn per world.
func (o Options) forEachWorld(g *uncertain.Graph, n int, fn func(i int, w *uncertain.World)) {
	workers := o.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			rng := rand.New(rand.NewPCG(o.Seed, uint64(i)+1))
			fn(i, g.SampleWorld(rng))
		}
		return
	}
	var wg sync.WaitGroup
	jobs := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rng := rand.New(rand.NewPCG(o.Seed, uint64(i)+1))
				fn(i, g.SampleWorld(rng))
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// AverageDegree returns the expected average node degree. Closed form:
// 2 * sum(p) / |V|.
func AverageDegree(g *uncertain.Graph) float64 { return g.ExpectedAvgDegree() }

// MaxDegree estimates E[max_v deg(v)] over sampled worlds.
func (o Options) MaxDegree(g *uncertain.Graph) float64 {
	n := o.samples(1000)
	maxes := make([]int, n)
	o.forEachWorld(g, n, func(i int, w *uncertain.World) {
		m := 0
		for v := 0; v < w.NumNodes(); v++ {
			if d := w.Degree(uncertain.NodeID(v)); d > m {
				m = d
			}
		}
		maxes[i] = m
	})
	var total float64
	for _, m := range maxes {
		total += float64(m)
	}
	return total / float64(n)
}

// DegreeDistribution estimates the expected degree histogram:
// out[d] = E[#vertices with degree d] over sampled worlds.
func (o Options) DegreeDistribution(g *uncertain.Graph) []float64 {
	n := o.samples(1000)
	var mu sync.Mutex
	var acc []float64
	o.forEachWorld(g, n, func(i int, w *uncertain.World) {
		local := make([]int, g.MaxStructuralDegree()+1)
		for v := 0; v < w.NumNodes(); v++ {
			local[w.Degree(uncertain.NodeID(v))]++
		}
		mu.Lock()
		for len(acc) < len(local) {
			acc = append(acc, 0)
		}
		for d, c := range local {
			acc[d] += float64(c)
		}
		mu.Unlock()
	})
	for d := range acc {
		acc[d] /= float64(n)
	}
	return acc
}

// ExpectedDegreeDistribution computes the expected degree histogram
// analytically: out[d] = sum over vertices of Pr[deg(v) = d], with the
// per-vertex Poisson-binomial distributions evaluated exactly. It is the
// closed-form counterpart of the Monte Carlo DegreeDistribution and
// useful for cross-validating sampling budgets.
func ExpectedDegreeDistribution(g *uncertain.Graph) []float64 {
	out := make([]float64, g.MaxStructuralDegree()+1)
	var buf []float64
	for v := 0; v < g.NumNodes(); v++ {
		buf = g.IncidentProbs(uncertain.NodeID(v), buf[:0])
		for d, p := range privacy.DegreeDistribution(buf) {
			out[d] += p
		}
	}
	return out
}

// DistanceStats is the node-separation summary of one graph.
type DistanceStats struct {
	AverageDistance   float64 // mean shortest-path length over connected pairs
	EffectiveDiameter float64 // 90th-percentile distance
}

// Distances estimates average distance and effective diameter as Monte
// Carlo averages of per-world ANF results.
func (o Options) Distances(g *uncertain.Graph) DistanceStats {
	n := o.samples(100)
	ad := make([]float64, n)
	ed := make([]float64, n)
	o.forEachWorld(g, n, func(i int, w *uncertain.World) {
		var r anf.Result
		if o.UseHyperANF {
			opts := o.HyperANF
			opts.Seed = o.Seed ^ (uint64(i) * 0x9e3779b9)
			r = hyperanf.Neighborhood(w, opts)
		} else {
			opts := o.ANF
			opts.Seed = o.Seed ^ (uint64(i) * 0x9e3779b9)
			r = anf.Neighborhood(w, opts)
		}
		ad[i] = r.AverageDistance()
		ed[i] = r.EffectiveDiameter(0.9)
	})
	var sa, se float64
	for i := 0; i < n; i++ {
		sa += ad[i]
		se += ed[i]
	}
	return DistanceStats{AverageDistance: sa / float64(n), EffectiveDiameter: se / float64(n)}
}

// ClusteringCoefficient estimates the expected average local clustering
// coefficient over sampled worlds.
func (o Options) ClusteringCoefficient(g *uncertain.Graph) float64 {
	n := o.samples(100)
	vals := make([]float64, n)
	o.forEachWorld(g, n, func(i int, w *uncertain.World) {
		vals[i] = worldClustering(w)
	})
	var total float64
	for _, v := range vals {
		total += v
	}
	return total / float64(n)
}

// worldClustering computes the average local clustering coefficient of a
// deterministic world: for each vertex with degree >= 2, the fraction of
// neighbor pairs that are themselves adjacent; vertices with degree < 2
// contribute 0, following the common convention.
func worldClustering(w *uncertain.World) float64 {
	n := w.NumNodes()
	if n == 0 {
		return 0
	}
	adj := w.AdjacencyLists()
	// Adjacency membership for O(1) edge tests in this world.
	present := make(map[uint64]bool)
	key := func(a, b uncertain.NodeID) uint64 {
		if a > b {
			a, b = b, a
		}
		return uint64(a)<<32 | uint64(uint32(b))
	}
	for v := 0; v < n; v++ {
		for _, u := range adj[v] {
			if uncertain.NodeID(v) < u {
				present[key(uncertain.NodeID(v), u)] = true
			}
		}
	}
	var total float64
	for v := 0; v < n; v++ {
		neigh := adj[v]
		d := len(neigh)
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if present[key(neigh[i], neigh[j])] {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(d*(d-1))
	}
	return total / float64(n)
}

// RelativeError returns |measured - original| / |original|, the "ratio of
// absolute difference against the original" the paper reports per metric.
// A zero original with nonzero measured returns +1 by convention.
func RelativeError(original, measured float64) float64 {
	diff := measured - original
	if diff < 0 {
		diff = -diff
	}
	if original == 0 {
		if diff == 0 {
			return 0
		}
		return 1
	}
	if original < 0 {
		original = -original
	}
	return diff / original
}
