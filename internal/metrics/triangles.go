package metrics

import (
	"sort"

	"chameleon/internal/uncertain"
)

// ExpectedTriangles computes E[#triangles] exactly: by linearity of
// expectation over the support triangles, each contributes the product of
// its three edge probabilities. Triangle enumeration uses the standard
// degree-ordered intersection, O(m^{3/2}) on the support graph.
func ExpectedTriangles(g *uncertain.Graph) float64 {
	n := g.NumNodes()
	// Orient each support edge from the lower-rank endpoint to the higher
	// (rank = (degree, id)); every triangle is then counted exactly once
	// at its lowest-rank vertex.
	rank := make([]int, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := g.Degree(uncertain.NodeID(order[a])), g.Degree(uncertain.NodeID(order[b]))
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	for r, v := range order {
		rank[v] = r
	}

	// Forward adjacency with probabilities.
	type arc struct {
		to uncertain.NodeID
		p  float64
	}
	fwd := make([][]arc, n)
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.P <= 0 {
			continue
		}
		u, v := e.U, e.V
		if rank[u] > rank[v] {
			u, v = v, u
		}
		fwd[u] = append(fwd[u], arc{to: v, p: e.P})
	}

	var total float64
	mark := make([]float64, n) // probability of the (u, w) arc, 0 if absent
	for u := 0; u < n; u++ {
		for _, a := range fwd[u] {
			mark[a.to] = a.p
		}
		for _, a := range fwd[u] {
			for _, b := range fwd[a.to] {
				if pw := mark[b.to]; pw > 0 {
					total += a.p * b.p * pw
				}
			}
		}
		for _, a := range fwd[u] {
			mark[a.to] = 0
		}
	}
	return total
}

// Triangles estimates E[#triangles] by Monte Carlo; it exists to
// cross-validate the closed form and for callers that already pay for
// sampled worlds.
func (o Options) Triangles(g *uncertain.Graph) float64 {
	n := o.samples(500)
	counts := make([]float64, n)
	o.forEachWorld(g, n, func(i int, w *uncertain.World) {
		counts[i] = float64(worldTriangles(w))
	})
	var total float64
	for _, c := range counts {
		total += c
	}
	return total / float64(n)
}

// worldTriangles counts triangles in one deterministic world.
func worldTriangles(w *uncertain.World) int64 {
	n := w.NumNodes()
	adj := w.AdjacencyLists()
	rank := make([]int, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := len(adj[order[a]]), len(adj[order[b]])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	for r, v := range order {
		rank[v] = r
	}
	fwd := make([][]uncertain.NodeID, n)
	for u := 0; u < n; u++ {
		for _, v := range adj[u] {
			if rank[u] < rank[v] {
				fwd[u] = append(fwd[u], v)
			}
		}
	}
	marked := make([]bool, n)
	var total int64
	for u := 0; u < n; u++ {
		for _, v := range fwd[u] {
			marked[v] = true
		}
		for _, v := range fwd[u] {
			for _, x := range fwd[v] {
				if marked[x] {
					total++
				}
			}
		}
		for _, v := range fwd[u] {
			marked[v] = false
		}
	}
	return total
}
