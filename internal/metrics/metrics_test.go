package metrics

import (
	"math"
	"math/rand/v2"
	"testing"

	"chameleon/internal/gen"
	"chameleon/internal/uncertain"
)

func certainGraph(t *testing.T, n int, edges ...[2]uncertain.NodeID) *uncertain.Graph {
	t.Helper()
	g := uncertain.New(n)
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1], 1)
	}
	return g
}

func TestAverageDegreeClosedForm(t *testing.T) {
	g := uncertain.New(4)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.25)
	want := 2 * 0.75 / 4
	if got := AverageDegree(g); math.Abs(got-want) > 1e-12 {
		t.Fatalf("AverageDegree = %v, want %v", got, want)
	}
}

func TestMaxDegreeDeterministic(t *testing.T) {
	g := certainGraph(t, 5, [2]uncertain.NodeID{0, 1}, [2]uncertain.NodeID{0, 2}, [2]uncertain.NodeID{0, 3})
	o := Options{Samples: 20, Seed: 1}
	if got := o.MaxDegree(g); got != 3 {
		t.Fatalf("MaxDegree = %v, want 3", got)
	}
}

func TestMaxDegreeUncertain(t *testing.T) {
	// Star with p=0.5 edges: E[max degree] is between 0 and 4.
	g := uncertain.New(5)
	for i := 1; i < 5; i++ {
		g.MustAddEdge(0, uncertain.NodeID(i), 0.5)
	}
	o := Options{Samples: 4000, Seed: 2}
	got := o.MaxDegree(g)
	// Max degree = center degree ~ Binomial(4, 0.5) unless 0; its mean
	// is slightly above 2 (max with leaf degrees).
	if got < 1.8 || got > 2.6 {
		t.Fatalf("E[max degree] = %v, want ~2.1", got)
	}
}

func TestDegreeDistributionSumsToNodes(t *testing.T) {
	g, err := gen.ErdosRenyi(30, 60, gen.UniformProbs(0.2, 0.8), rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Samples: 200, Seed: 3}
	dist := o.DegreeDistribution(g)
	var total float64
	for _, c := range dist {
		total += c
	}
	if math.Abs(total-30) > 1e-9 {
		t.Fatalf("degree distribution mass = %v, want 30", total)
	}
}

func TestDegreeDistributionDeterministicGraph(t *testing.T) {
	g := certainGraph(t, 4, [2]uncertain.NodeID{0, 1}, [2]uncertain.NodeID{2, 3})
	o := Options{Samples: 10, Seed: 4}
	dist := o.DegreeDistribution(g)
	if dist[1] != 4 {
		t.Fatalf("all four vertices have degree 1, got %v", dist)
	}
}

func TestDistancesPathGraph(t *testing.T) {
	// Certain path of 3: avg distance 8/6, effective diameter <= 2.
	g := certainGraph(t, 3, [2]uncertain.NodeID{0, 1}, [2]uncertain.NodeID{1, 2})
	o := Options{Samples: 5, Seed: 5}
	o.ANF.Trials = 128
	d := o.Distances(g)
	if math.Abs(d.AverageDistance-8.0/6.0) > 0.4 {
		t.Fatalf("AverageDistance = %v, want ~%v", d.AverageDistance, 8.0/6.0)
	}
	if d.EffectiveDiameter <= 0 || d.EffectiveDiameter > 2.5 {
		t.Fatalf("EffectiveDiameter = %v", d.EffectiveDiameter)
	}
}

func TestDistancesScaleWithGraph(t *testing.T) {
	longPath := uncertain.New(60)
	for i := 0; i < 59; i++ {
		longPath.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i+1), 1)
	}
	shortPath := uncertain.New(10)
	for i := 0; i < 9; i++ {
		shortPath.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i+1), 1)
	}
	o := Options{Samples: 3, Seed: 6}
	o.ANF.Trials = 64
	long := o.Distances(longPath)
	short := o.Distances(shortPath)
	if long.AverageDistance <= short.AverageDistance {
		t.Fatalf("longer path should have larger avg distance: %v vs %v",
			long.AverageDistance, short.AverageDistance)
	}
}

func TestClusteringTriangle(t *testing.T) {
	g := certainGraph(t, 3, [2]uncertain.NodeID{0, 1}, [2]uncertain.NodeID{1, 2}, [2]uncertain.NodeID{0, 2})
	o := Options{Samples: 10, Seed: 7}
	if got := o.ClusteringCoefficient(g); math.Abs(got-1) > 1e-12 {
		t.Fatalf("triangle clustering = %v, want 1", got)
	}
}

func TestClusteringStar(t *testing.T) {
	g := certainGraph(t, 4, [2]uncertain.NodeID{0, 1}, [2]uncertain.NodeID{0, 2}, [2]uncertain.NodeID{0, 3})
	o := Options{Samples: 10, Seed: 8}
	if got := o.ClusteringCoefficient(g); got != 0 {
		t.Fatalf("star clustering = %v, want 0", got)
	}
}

func TestClusteringKnownMix(t *testing.T) {
	// Triangle 0-1-2 plus pendant 2-3: local CCs are 1, 1, 1/3, 0 -> 7/12.
	g := certainGraph(t, 4,
		[2]uncertain.NodeID{0, 1}, [2]uncertain.NodeID{1, 2},
		[2]uncertain.NodeID{0, 2}, [2]uncertain.NodeID{2, 3})
	o := Options{Samples: 10, Seed: 9}
	want := 7.0 / 12.0
	if got := o.ClusteringCoefficient(g); math.Abs(got-want) > 1e-12 {
		t.Fatalf("clustering = %v, want %v", got, want)
	}
}

func TestClusteringUncertainBetween(t *testing.T) {
	// Triangle with p=0.5 edges: expected clustering strictly between 0
	// and 1.
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.5)
	g.MustAddEdge(0, 2, 0.5)
	o := Options{Samples: 2000, Seed: 10}
	got := o.ClusteringCoefficient(g)
	// Each vertex has CC 1 iff all three edges present (prob 1/8 given
	// its two incident edges present)... overall E ~ 3 * P(all three) / 3 = 1/8.
	if math.Abs(got-0.125) > 0.03 {
		t.Fatalf("uncertain triangle clustering = %v, want ~0.125", got)
	}
}

func TestRelativeError(t *testing.T) {
	cases := []struct {
		orig, meas, want float64
	}{
		{10, 12, 0.2},
		{10, 8, 0.2},
		{10, 10, 0},
		{0, 0, 0},
		{0, 5, 1},
		{-10, -8, 0.2},
	}
	for _, c := range cases {
		if got := RelativeError(c.orig, c.meas); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelativeError(%v, %v) = %v, want %v", c.orig, c.meas, got, c.want)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	g, err := gen.ErdosRenyi(40, 100, gen.UniformProbs(0.1, 0.9), rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	serial := Options{Samples: 100, Seed: 11, Workers: 1}
	parallel := Options{Samples: 100, Seed: 11, Workers: 8}
	if a, b := serial.MaxDegree(g), parallel.MaxDegree(g); a != b {
		t.Fatalf("MaxDegree differs across workers: %v vs %v", a, b)
	}
	if a, b := serial.ClusteringCoefficient(g), parallel.ClusteringCoefficient(g); a != b {
		t.Fatalf("Clustering differs across workers: %v vs %v", a, b)
	}
}

func TestDistancesHyperANFAgreesWithFM(t *testing.T) {
	g, err := gen.BarabasiAlbert(120, 2, gen.UniformProbs(0.6, 1), rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	fm := Options{Samples: 5, Seed: 12}
	fm.ANF.Trials = 64
	hll := Options{Samples: 5, Seed: 12, UseHyperANF: true}
	hll.HyperANF.LogRegisters = 8
	a := fm.Distances(g)
	b := hll.Distances(g)
	if a.AverageDistance <= 0 || b.AverageDistance <= 0 {
		t.Fatalf("distances should be positive: %+v %+v", a, b)
	}
	if math.Abs(a.AverageDistance-b.AverageDistance)/a.AverageDistance > 0.3 {
		t.Fatalf("FM %v and HyperANF %v disagree", a.AverageDistance, b.AverageDistance)
	}
}

func TestExpectedDegreeDistributionMatchesMC(t *testing.T) {
	g, err := gen.ErdosRenyi(25, 50, gen.UniformProbs(0.1, 0.9), rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatal(err)
	}
	analytic := ExpectedDegreeDistribution(g)
	mc := (Options{Samples: 8000, Seed: 13}).DegreeDistribution(g)
	var mass float64
	for d := range analytic {
		mass += analytic[d]
		var m float64
		if d < len(mc) {
			m = mc[d]
		}
		if math.Abs(analytic[d]-m) > 0.35 {
			t.Fatalf("degree %d: analytic %v, MC %v", d, analytic[d], m)
		}
	}
	if math.Abs(mass-25) > 1e-9 {
		t.Fatalf("analytic distribution mass = %v, want 25", mass)
	}
}

func TestExpectedTrianglesClosedForm(t *testing.T) {
	// Single triangle with probabilities 0.5, 0.4, 0.3: E = 0.06.
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.4)
	g.MustAddEdge(0, 2, 0.3)
	if got := ExpectedTriangles(g); math.Abs(got-0.06) > 1e-12 {
		t.Fatalf("E[triangles] = %v, want 0.06", got)
	}
	// No triangle in a star.
	star := certainGraph(t, 4, [2]uncertain.NodeID{0, 1}, [2]uncertain.NodeID{0, 2}, [2]uncertain.NodeID{0, 3})
	if got := ExpectedTriangles(star); got != 0 {
		t.Fatalf("star E[triangles] = %v, want 0", got)
	}
	// K4 certain: 4 triangles.
	k4 := certainGraph(t, 4,
		[2]uncertain.NodeID{0, 1}, [2]uncertain.NodeID{0, 2}, [2]uncertain.NodeID{0, 3},
		[2]uncertain.NodeID{1, 2}, [2]uncertain.NodeID{1, 3}, [2]uncertain.NodeID{2, 3})
	if got := ExpectedTriangles(k4); math.Abs(got-4) > 1e-12 {
		t.Fatalf("K4 E[triangles] = %v, want 4", got)
	}
}

func TestExpectedTrianglesMatchesMC(t *testing.T) {
	g, err := gen.ErdosRenyi(40, 160, gen.UniformProbs(0.2, 0.9), rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatal(err)
	}
	exact := ExpectedTriangles(g)
	mc := (Options{Samples: 6000, Seed: 8}).Triangles(g)
	if exact <= 0 {
		t.Fatal("test graph should contain expected triangles")
	}
	if math.Abs(exact-mc)/exact > 0.1 {
		t.Fatalf("closed form %v vs MC %v", exact, mc)
	}
}

func TestExpectedTrianglesIgnoresZeroEdges(t *testing.T) {
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.4)
	g.MustAddEdge(0, 2, 0)
	if got := ExpectedTriangles(g); got != 0 {
		t.Fatalf("zero-probability edge should kill the triangle, got %v", got)
	}
}
