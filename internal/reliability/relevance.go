package reliability

import (
	"time"

	"chameleon/internal/uncertain"
)

// EdgeRelevance estimates the edge reliability relevance ERR^e for every
// edge (Definition 5, aggregated form) using the sample-reuse estimator of
// Algorithm 2: the N sampled worlds are drawn once, each world's
// connected-pair count cc is computed once, and for every edge the worlds
// are grouped by the edge's presence bit:
//
//	ERR^e  =  E[cc | e present] - E[cc | e absent]
//	       ~= CC_e / n_e        - CC_ne / n_ne
//
// where n_e worlds contain e and n_ne do not. Total cost is
// O(N * alpha(|V|) * |E|) instead of the naive O(|E| * N * alpha(|V|) * |E|)
// (Lemma 3 vs Lemma 2).
//
// Edges whose presence bit never varies across the samples (probability 0
// or 1, or extreme probabilities at small N) fall back to explicit
// conditional sampling for the missing side.
func (e Estimator) EdgeRelevance(g *uncertain.Graph) []float64 {
	defer e.timeOp("EdgeRelevance", time.Now())
	n := e.samples()
	m := g.NumEdges()

	type sampleResult struct {
		cc   float64
		mask []bool
	}
	results := make([]sampleResult, n)
	e.forEachSample(g, func(i int, w *uncertain.World) {
		results[i] = sampleResult{
			cc:   float64(w.ConnectedPairs()),
			mask: append([]bool(nil), w.PresenceMask()...),
		}
	})

	ccPresent := make([]float64, m)
	ccAbsent := make([]float64, m)
	nPresent := make([]int, m)
	for _, r := range results {
		for i := 0; i < m; i++ {
			if r.mask[i] {
				ccPresent[i] += r.cc
				nPresent[i]++
			} else {
				ccAbsent[i] += r.cc
			}
		}
	}

	err := make([]float64, m)
	for i := 0; i < m; i++ {
		var meanE, meanNE float64
		switch {
		case nPresent[i] == 0:
			meanNE = ccAbsent[i] / float64(n)
			meanE = e.conditionalCC(g, i, true)
		case nPresent[i] == n:
			meanE = ccPresent[i] / float64(n)
			meanNE = e.conditionalCC(g, i, false)
		default:
			meanE = ccPresent[i] / float64(nPresent[i])
			meanNE = ccAbsent[i] / float64(n-nPresent[i])
		}
		v := meanE - meanNE
		if v < 0 {
			// The true ERR is non-negative (connectivity in G_e dominates
			// G_ne); clamp sampling noise.
			v = 0
		}
		err[i] = v
	}
	return err
}

// conditionalCC estimates E[cc] with edge i forced to the given presence,
// using a reduced sample budget (this path only triggers for edges with
// probability 0 or 1).
func (e Estimator) conditionalCC(g *uncertain.Graph, edge int, present bool) float64 {
	n := e.samples() / 4
	if n < 32 {
		n = 32
	}
	var total float64
	for i := 0; i < n; i++ {
		rng := e.rngFor(1_000_000 + i)
		w := g.SampleWorld(rng)
		mask := append([]bool(nil), w.PresenceMask()...)
		mask[edge] = present
		total += float64(g.WorldFromMask(mask).ConnectedPairs())
	}
	return total / float64(n)
}

// EdgeRelevanceNaive is the baseline ERR estimator of Lemma 2: for every
// edge it runs an independent conditional Monte Carlo estimation with the
// edge forced present and forced absent. It exists for the cost-comparison
// ablation bench; EdgeRelevance gives the same estimates at 1/|E| of the
// cost.
func (e Estimator) EdgeRelevanceNaive(g *uncertain.Graph) []float64 {
	m := g.NumEdges()
	n := e.samples()
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		var ccE, ccNE float64
		for s := 0; s < n; s++ {
			rng := e.rngFor(i*n + s)
			w := g.SampleWorld(rng)
			mask := append([]bool(nil), w.PresenceMask()...)
			mask[i] = true
			ccE += float64(g.WorldFromMask(mask).ConnectedPairs())
			mask[i] = false
			ccNE += float64(g.WorldFromMask(mask).ConnectedPairs())
		}
		v := (ccE - ccNE) / float64(n)
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// VertexRelevance aggregates edge relevance to the vertex level:
// VRR^u = sum over edges e incident to u of p(e) * ERR^e.
func VertexRelevance(g *uncertain.Graph, edgeRelevance []float64) []float64 {
	out := make([]float64, g.NumNodes())
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		w := e.P * edgeRelevance[i]
		out[e.U] += w
		out[e.V] += w
	}
	return out
}

// NormalizeToUnit rescales xs into [0,1] by dividing by the maximum.
// An all-zero input is returned unchanged.
func NormalizeToUnit(xs []float64) []float64 {
	max := 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	out := make([]float64, len(xs))
	if max == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / max
	}
	return out
}
