package reliability

import (
	"math"
	"math/bits"
	"sync"
	"time"

	"chameleon/internal/uncertain"
)

// relArena holds EdgeRelevance's per-call sampling state: every world's
// packed presence bitset (N rows of `words` uint64s) and connected-pair
// count. Pooled across calls so the σ-search, which evaluates hundreds of
// candidates, reuses one allocation.
type relArena struct {
	masks []uint64
	cc    []float64
}

var relArenaPool = sync.Pool{New: func() any { return new(relArena) }}

// grow resizes the arena for n worlds of `words` mask words each, reusing
// capacity. Rows are fully overwritten by the sampling pass, so no zeroing.
func (ar *relArena) grow(n, words int) {
	if need := n * words; cap(ar.masks) < need {
		ar.masks = make([]uint64, need)
	} else {
		ar.masks = ar.masks[:need]
	}
	if cap(ar.cc) < n {
		ar.cc = make([]float64, n)
	} else {
		ar.cc = ar.cc[:n]
	}
}

// EdgeRelevance estimates the edge reliability relevance ERR^e for every
// edge (Definition 5, aggregated form) using the sample-reuse estimator of
// Algorithm 2: the N sampled worlds are drawn once, each world's
// connected-pair count cc is computed once, and for every edge the worlds
// are grouped by the edge's presence bit:
//
//	ERR^e  =  E[cc | e present] - E[cc | e absent]
//	       ~= CC_e / n_e        - CC_ne / n_ne
//
// where n_e worlds contain e and n_ne do not. Total cost is
// O(N * alpha(|V|) * |E|) instead of the naive O(|E| * N * alpha(|V|) * |E|)
// (Lemma 3 vs Lemma 2).
//
// The grouping pass is word-parallel: per world it iterates the set bits
// of the packed presence mask (and of its complement) instead of testing
// one bool per edge. Worlds are accumulated in ascending sample order per
// edge, so the floating-point sums — and hence the estimates — are
// bit-identical to a sequential per-edge scan.
//
// Edges whose presence bit never varies across the samples (probability 0
// or 1, or extreme probabilities at small N) fall back to explicit
// conditional sampling for the missing side.
func (e Estimator) EdgeRelevance(g uncertain.View) []float64 {
	defer e.timeOp("EdgeRelevance", time.Now())
	m := g.NumEdges()
	words := (m + 63) / 64

	ar := relArenaPool.Get().(*relArena)
	ar.grow(e.budget(), words)
	ccStat := e.forEachSample(g, func(i int, sc *scratch) float64 {
		_, pairs := sc.componentsPairs()
		ar.cc[i] = float64(pairs)
		copy(ar.masks[i*words:(i+1)*words], sc.world.Bits())
		return float64(pairs)
	})
	if e.cancelled() {
		// The arena rows for undrawn samples are uninitialized: scanning
		// them could index phantom edges past m. Return zeros; the caller
		// observes Ctx.Err() and discards the result.
		relArenaPool.Put(ar)
		return make([]float64, m)
	}
	e.recordQuality("EdgeRelevance", ccStat)
	// Effective sample count: the stopping-rule prefix in adaptive mode
	// (always contiguous, so rows [0,n) of the arena are exactly the counted
	// worlds), the fixed budget otherwise.
	n := e.effSamples(ccStat)

	// tailMask zeroes the complement's phantom bits past edge m-1.
	tailMask := ^uint64(0)
	if r := m & 63; r != 0 {
		tailMask = 1<<uint(r) - 1
	}

	ccPresent := make([]float64, m)
	ccAbsent := make([]float64, m)
	nPresent := make([]int, m)
	for s := 0; s < n; s++ {
		cc := ar.cc[s]
		row := ar.masks[s*words : (s+1)*words]
		for wi, word := range row {
			base := wi << 6
			inv := ^word
			if wi == words-1 {
				inv &= tailMask
			}
			for word != 0 {
				j := base + bits.TrailingZeros64(word)
				word &= word - 1
				ccPresent[j] += cc
				nPresent[j]++
			}
			for inv != 0 {
				j := base + bits.TrailingZeros64(inv)
				inv &= inv - 1
				ccAbsent[j] += cc
			}
		}
	}
	relArenaPool.Put(ar)

	// Per-edge standard error of the ERR estimate, from the pooled cc
	// variance: Var(ERR^e) ~ Var(cc) * (1/n_e + 1/n_ne) under the grouped
	// two-sample difference of means. Aggregated to mean/max gauges — the
	// estimator-quality signal the σ-search precompute is judged by.
	varCC := ccStat.Variance()
	var seSum, seMax float64
	seEdges := 0

	err := make([]float64, m)
	for i := 0; i < m; i++ {
		var meanE, meanNE float64
		switch {
		case nPresent[i] == 0:
			meanNE = ccAbsent[i] / float64(n)
			meanE = e.conditionalCC(g, i, true)
		case nPresent[i] == n:
			meanE = ccPresent[i] / float64(n)
			meanNE = e.conditionalCC(g, i, false)
		default:
			meanE = ccPresent[i] / float64(nPresent[i])
			meanNE = ccAbsent[i] / float64(n-nPresent[i])
			se := math.Sqrt(varCC * (1/float64(nPresent[i]) + 1/float64(n-nPresent[i])))
			seSum += se
			if se > seMax {
				seMax = se
			}
			seEdges++
		}
		v := meanE - meanNE
		if v < 0 {
			// The true ERR is non-negative (connectivity in G_e dominates
			// G_ne); clamp sampling noise.
			v = 0
		}
		err[i] = v
	}
	if seEdges > 0 && e.Obs != nil {
		reg := e.Obs.Registry()
		reg.Gauge("err.stderr.mean").Set(seSum / float64(seEdges))
		reg.Gauge("err.stderr.max").Set(seMax)
	}
	return err
}

// conditionalCC estimates E[cc] with edge i forced to the given presence,
// using a reduced sample budget (this path only triggers for edges with
// probability 0 or 1). It samples into a pooled scratch and pins the edge
// bit in place instead of copying the mask.
//
// The 1_000_000+i seed offset is deliberate, not an accident of history:
// every edge's conditional estimate draws the SAME auxiliary world stream
// (offset past the main sample indices), i.e. common random numbers across
// edges, so the conditional means differ only through the pinned edge and
// compare without independent sampling noise.
func (e Estimator) conditionalCC(g uncertain.View, edge int, present bool) float64 {
	n := e.samples() / 4
	if n < 32 {
		n = 32
	}
	sampler := g.Sampler()
	draw := e.drawFn()
	sc := scratchPool.Get().(*scratch)
	var total float64
	for i := 0; i < n; i++ {
		if i%sampleChunk == 0 && e.cancelled() {
			break // partial mean: caller observes Ctx.Err() and discards
		}
		draw(e.Seed, sampler, sc, 1_000_000+i)
		sc.world.SetPresence(edge, present)
		_, pairs := sc.componentsPairs()
		total += float64(pairs)
	}
	scratchPool.Put(sc)
	return total / float64(n)
}

// EdgeRelevanceNaive is the baseline ERR estimator of Lemma 2: for every
// edge it runs an independent conditional Monte Carlo estimation with the
// edge forced present and forced absent. It exists for the cost-comparison
// ablation bench; EdgeRelevance gives the same estimates at 1/|E| of the
// cost.
func (e Estimator) EdgeRelevanceNaive(g uncertain.View) []float64 {
	m := g.NumEdges()
	n := e.samples()
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		if e.cancelled() {
			break // partial ranking: caller observes Ctx.Err() and discards
		}
		var ccE, ccNE float64
		for s := 0; s < n; s++ {
			rng := e.rngFor(i*n + s)
			w := g.SampleWorld(rng)
			mask := append([]bool(nil), w.PresenceMask()...)
			mask[i] = true
			ccE += float64(g.WorldFromMask(mask).ConnectedPairs())
			mask[i] = false
			ccNE += float64(g.WorldFromMask(mask).ConnectedPairs())
		}
		v := (ccE - ccNE) / float64(n)
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// VertexRelevance aggregates edge relevance to the vertex level:
// VRR^u = sum over edges e incident to u of p(e) * ERR^e.
func VertexRelevance(g uncertain.View, edgeRelevance []float64) []float64 {
	out := make([]float64, g.NumNodes())
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		w := e.P * edgeRelevance[i]
		out[e.U] += w
		out[e.V] += w
	}
	return out
}

// NormalizeToUnit rescales xs into [0,1] by dividing by the maximum.
// An all-zero input is returned unchanged.
func NormalizeToUnit(xs []float64) []float64 {
	max := 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	out := make([]float64, len(xs))
	if max == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / max
	}
	return out
}
