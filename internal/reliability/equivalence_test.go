package reliability

import (
	"math/rand/v2"
	"testing"

	"chameleon/internal/uncertain"
)

// This file pins the optimized Monte Carlo kernels to reference
// implementations that mirror the pre-bitset estimators: one
// rand.Rand-driven g.SampleWorld per sample index, bool presence masks,
// per-edge boolean scans, and row-major label matrices. The determinism
// contract (one Float64-equivalent draw per edge with 0 < p < 1, in
// edge-index order, RNG state (Seed, streamFor(i)) for world i; float
// accumulation in ascending sample order) makes the optimized output not
// just statistically equal but BIT-IDENTICAL, and these tests assert
// exact float equality to catch any drift in that contract.

// referenceConditionalCC mirrors conditionalCC: E[cc] with edge pinned,
// over the shared auxiliary world stream at offset 1_000_000.
func referenceConditionalCC(e Estimator, g *uncertain.Graph, edge int, present bool) float64 {
	n := e.samples() / 4
	if n < 32 {
		n = 32
	}
	var total float64
	for i := 0; i < n; i++ {
		w := g.SampleWorld(e.rngFor(1_000_000 + i))
		mask := w.PresenceMask()
		mask[edge] = present
		total += float64(g.WorldFromMask(mask).ConnectedPairs())
	}
	return total / float64(n)
}

// referenceEdgeRelevance mirrors the pre-bitset Algorithm 2 estimator:
// sample N worlds into bool masks, then scan one bool per (edge, world).
func referenceEdgeRelevance(e Estimator, g *uncertain.Graph) []float64 {
	n := e.samples()
	m := g.NumEdges()
	masks := make([][]bool, n)
	cc := make([]float64, n)
	for i := 0; i < n; i++ {
		w := g.SampleWorld(e.rngFor(i))
		masks[i] = w.PresenceMask()
		cc[i] = float64(w.ConnectedPairs())
	}
	out := make([]float64, m)
	for j := 0; j < m; j++ {
		var ccPresent, ccAbsent float64
		nPresent := 0
		for i := 0; i < n; i++ {
			if masks[i][j] {
				ccPresent += cc[i]
				nPresent++
			} else {
				ccAbsent += cc[i]
			}
		}
		var meanE, meanNE float64
		switch {
		case nPresent == 0:
			meanNE = ccAbsent / float64(n)
			meanE = referenceConditionalCC(e, g, j, true)
		case nPresent == n:
			meanE = ccPresent / float64(n)
			meanNE = referenceConditionalCC(e, g, j, false)
		default:
			meanE = ccPresent / float64(nPresent)
			meanNE = ccAbsent / float64(n-nPresent)
		}
		v := meanE - meanNE
		if v < 0 {
			v = 0
		}
		out[j] = v
	}
	return out
}

// referenceLabels samples the row-major label matrix world by world.
func referenceLabels(e Estimator, g *uncertain.Graph) [][]int32 {
	n := e.samples()
	labels := make([][]int32, n)
	for i := 0; i < n; i++ {
		labels[i] = g.SampleWorld(e.rngFor(i)).ComponentLabels()
	}
	return labels
}

// referenceDiscrepancy mirrors the pre-transpose full-pair scan.
func referenceDiscrepancy(e Estimator, g, h *uncertain.Graph) float64 {
	lg := referenceLabels(e, g)
	lh := referenceLabels(e, h)
	n := e.samples()
	nv := g.NumNodes()
	nInv := 1 / float64(n)
	var delta float64
	for u := 0; u < nv; u++ {
		for v := u + 1; v < nv; v++ {
			var cg, ch int
			for s := 0; s < n; s++ {
				if lg[s][u] == lg[s][v] {
					cg++
				}
				if lh[s][u] == lh[s][v] {
					ch++
				}
			}
			d := float64(cg-ch) * nInv
			if d < 0 {
				d = -d
			}
			delta += d
		}
	}
	return delta
}

// referenceSampledPairDiscrepancy mirrors the pair-sampled estimator,
// including its exact pair-generation RNG.
func referenceSampledPairDiscrepancy(e Estimator, g, h *uncertain.Graph, ps PairSample) float64 {
	n := g.NumNodes()
	pairs := ps.Pairs
	if pairs <= 0 {
		pairs = 20000
	}
	rng := rand.New(rand.NewPCG(ps.Seed, 0x6a09e667f3bcc909))
	us := make([]int, pairs)
	vs := make([]int, pairs)
	for i := 0; i < pairs; i++ {
		u := rng.IntN(n)
		v := rng.IntN(n - 1)
		if v >= u {
			v++
		}
		us[i], vs[i] = u, v
	}
	lg := referenceLabels(e, g)
	lh := referenceLabels(e, h)
	nInv := 1 / float64(e.samples())
	var total float64
	for i := 0; i < pairs; i++ {
		var cg, ch int
		for s := range lg {
			if lg[s][us[i]] == lg[s][vs[i]] {
				cg++
			}
			if lh[s][us[i]] == lh[s][vs[i]] {
				ch++
			}
		}
		d := float64(cg-ch) * nInv
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total / float64(pairs)
}

// referencePairReliability mirrors the per-world connectivity count.
func referencePairReliability(e Estimator, g *uncertain.Graph, u, v int) float64 {
	n := e.samples()
	var total float64
	for i := 0; i < n; i++ {
		if g.SampleWorld(e.rngFor(i)).Components().Connected(u, v) {
			total++
		}
	}
	return total / float64(n)
}

// degenerateGraph mixes certain (p=1), impossible (p=0) and probabilistic
// edges so the conditional-sampling fallbacks of EdgeRelevance trigger.
func degenerateGraph() *uncertain.Graph {
	g := uncertain.New(6)
	g.MustAddEdge(0, 1, 0)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 0.5)
	g.MustAddEdge(3, 4, 0.9)
	g.MustAddEdge(0, 4, 0.1)
	g.MustAddEdge(4, 5, 1)
	return g
}

// equivalenceGraphs is the test matrix: mixed probabilities, a denser
// random graph, and the degenerate 0/1 mix.
func equivalenceGraphs() map[string]*uncertain.Graph {
	return map[string]*uncertain.Graph{
		"small":      smallGraph(),
		"random":     randomGraph(11, 40, 90),
		"degenerate": degenerateGraph(),
	}
}

func TestEdgeRelevanceMatchesReference(t *testing.T) {
	for name, g := range equivalenceGraphs() {
		for _, workers := range []int{1, 4} {
			est := Estimator{Samples: 96, Seed: 5, Workers: workers}
			got := est.EdgeRelevance(g)
			want := referenceEdgeRelevance(est, g)
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("%s workers=%d: EdgeRelevance[%d] = %v, reference %v",
						name, workers, j, got[j], want[j])
				}
			}
		}
	}
}

func TestDiscrepancyMatchesReference(t *testing.T) {
	for name, g := range equivalenceGraphs() {
		h := g.Clone()
		for i := 0; i < g.NumEdges(); i += 2 {
			if err := h.SetProb(i, h.Edge(i).P*0.75); err != nil {
				t.Fatal(err)
			}
		}
		want := referenceDiscrepancy(Estimator{Samples: 80, Seed: 9}, g, h)
		for _, workers := range []int{1, 4} {
			for _, cache := range []*LabelCache{nil, NewLabelCache()} {
				est := Estimator{Samples: 80, Seed: 9, Workers: workers, Cache: cache}
				got, err := est.Discrepancy(g, h)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("%s workers=%d cache=%v: Discrepancy = %v, reference %v",
						name, workers, cache != nil, got, want)
				}
				// A second call must replay identically whether it is a cache
				// hit or a full resample.
				again, err := est.Discrepancy(g, h)
				if err != nil {
					t.Fatal(err)
				}
				if again != want {
					t.Errorf("%s workers=%d cache=%v: repeat Discrepancy = %v, reference %v",
						name, workers, cache != nil, again, want)
				}
			}
		}
	}
}

func TestSampledPairDiscrepancyMatchesReference(t *testing.T) {
	g := randomGraph(13, 35, 70)
	h := g.Clone()
	for i := 0; i < 10; i++ {
		if err := h.SetProb(i, h.Edge(i).P/3); err != nil {
			t.Fatal(err)
		}
	}
	ps := PairSample{Pairs: 500, Seed: 3}
	want := referenceSampledPairDiscrepancy(Estimator{Samples: 64, Seed: 2}, g, h, ps)
	for _, workers := range []int{1, 4} {
		for _, cache := range []*LabelCache{nil, NewLabelCache()} {
			est := Estimator{Samples: 64, Seed: 2, Workers: workers, Cache: cache}
			got, err := est.SampledPairDiscrepancy(g, h, ps)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("workers=%d cache=%v: SampledPairDiscrepancy = %v, reference %v",
					workers, cache != nil, got, want)
			}
		}
	}
}

func TestPairReliabilityMatchesReference(t *testing.T) {
	for name, g := range equivalenceGraphs() {
		for _, workers := range []int{1, 4} {
			est := Estimator{Samples: 128, Seed: 17, Workers: workers}
			got := est.PairReliability(g, 0, int32(g.NumNodes()-1))
			want := referencePairReliability(est, g, 0, g.NumNodes()-1)
			if got != want {
				t.Errorf("%s workers=%d: PairReliability = %v, reference %v",
					name, workers, got, want)
			}
		}
	}
}

func TestExpectedConnectedPairsCachePathMatches(t *testing.T) {
	g := randomGraph(19, 30, 55)
	plain := Estimator{Samples: 100, Seed: 4}
	want := plain.ExpectedConnectedPairs(g)

	cached := Estimator{Samples: 100, Seed: 4, Cache: NewLabelCache()}
	if got := cached.ExpectedConnectedPairs(g); got != want {
		t.Fatalf("uncached-counting path with cache attached = %v, want %v", got, want)
	}
	// Populate the label cache, then the cc-summing hit path must agree too.
	if _, err := cached.Discrepancy(g, g.Clone()); err != nil {
		t.Fatal(err)
	}
	if cached.Cache.Len() == 0 {
		t.Fatal("Discrepancy did not populate the label cache")
	}
	if got := cached.ExpectedConnectedPairs(g); got != want {
		t.Fatalf("label-cache hit path = %v, want %v", got, want)
	}
}

// TestLabelCacheInvalidation pins the invalidation rule: any SetProb bumps
// the graph version, so stale labelings are never served.
func TestLabelCacheInvalidation(t *testing.T) {
	g := randomGraph(23, 25, 50)
	h := g.Clone()
	est := Estimator{Samples: 60, Seed: 8, Cache: NewLabelCache()}
	before, err := est.Discrepancy(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if before != 0 {
		t.Fatalf("identical graphs should have zero discrepancy, got %v", before)
	}
	if err := h.SetProb(0, h.Edge(0).P/10); err != nil {
		t.Fatal(err)
	}
	after, err := est.Discrepancy(g, h)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceDiscrepancy(Estimator{Samples: 60, Seed: 8}, g, h)
	if after != want {
		t.Fatalf("post-mutation Discrepancy = %v, reference %v (stale cache entry served?)", after, want)
	}
}
