package reliability

import (
	"math"
	"testing"

	"chameleon/internal/obs"
	"chameleon/internal/uncertain"
)

// TestAdaptiveStopsEarly: with a loose target on a well-behaved statistic,
// the sequential stopping rule must cut sampling far short of the cap, at
// a chunk boundary, and past the minimum floor.
func TestAdaptiveStopsEarly(t *testing.T) {
	g := randomGraph(71, 40, 120)
	est := Estimator{Seed: 1, Workers: 1, TargetRSE: 0.05, MaxSamples: 16384}
	w := est.forEachSample(g, func(i int, sc *scratch) float64 {
		_, pairs := sc.componentsPairs()
		return float64(pairs)
	})
	n := int(w.Count())
	if n >= est.maxSamples() {
		t.Fatalf("adaptive run consumed the full cap (%d samples); expected early stop", n)
	}
	if n < adaptiveMinSamples {
		t.Fatalf("stopped at %d samples, below the %d-sample floor", n, adaptiveMinSamples)
	}
	if n%sampleChunk != 0 {
		t.Fatalf("stopped at %d, not a %d-world chunk boundary", n, sampleChunk)
	}
	if rse := w.RelStdErr(); rse > est.TargetRSE {
		t.Fatalf("stopped with RSE %v above target %v", rse, est.TargetRSE)
	}
}

// TestAdaptiveCapped: an unreachable target must stop exactly at the cap.
func TestAdaptiveCapped(t *testing.T) {
	g := randomGraph(72, 40, 110)
	est := Estimator{Seed: 2, Workers: 1, TargetRSE: 1e-12, MaxSamples: 256}
	w := est.forEachSample(g, func(i int, sc *scratch) float64 {
		_, pairs := sc.componentsPairs()
		return float64(pairs)
	})
	if int(w.Count()) != 256 {
		t.Fatalf("capped run counted %d samples, want exactly the 256 cap", int(w.Count()))
	}
}

// TestAdaptiveWorkerIndependence: the stopping decision is a function of
// the chunk-order prefix alone, so every worker count must stop at the
// same sample count with identical moments — the parallel rounds replay
// the serial schedule exactly.
func TestAdaptiveWorkerIndependence(t *testing.T) {
	g := randomGraph(73, 50, 100)
	run := func(workers int) obs.Welford {
		est := Estimator{Seed: 3, Workers: workers, TargetRSE: 0.04, MaxSamples: 8192}
		return est.forEachSample(g, func(i int, sc *scratch) float64 {
			_, pairs := sc.componentsPairs()
			return float64(pairs)
		})
	}
	serial := run(1)
	if serial.Count() >= 8192 || serial.Count() < adaptiveMinSamples {
		t.Fatalf("serial baseline stopped at %v samples; test needs a mid-range stop", serial.Count())
	}
	for _, workers := range []int{2, 3, 4, 7} {
		par := run(workers)
		if par.Count() != serial.Count() {
			t.Fatalf("workers=%d stopped at %v samples, serial at %v", workers, par.Count(), serial.Count())
		}
		if math.Abs(par.Mean()-serial.Mean()) > 1e-9*math.Abs(serial.Mean()) {
			t.Errorf("workers=%d: mean %v != serial %v", workers, par.Mean(), serial.Mean())
		}
		if math.Abs(par.Variance()-serial.Variance()) > 1e-6*serial.Variance() {
			t.Errorf("workers=%d: variance %v != serial %v", workers, par.Variance(), serial.Variance())
		}
	}
}

// TestAdaptiveEstimateMatchesExactAndFixed: adaptive estimates target the
// same quantity as fixed-budget ones; with a tight target the estimate
// must land near the fixed-N reference.
func TestAdaptiveEstimateMatchesExactAndFixed(t *testing.T) {
	g := smallGraph()
	fixed := Estimator{Samples: 20000, Seed: 1}.ExpectedConnectedPairs(g)
	adaptive := Estimator{Seed: 1, TargetRSE: 0.01, MaxSamples: 32768}.ExpectedConnectedPairs(g)
	if math.Abs(fixed-adaptive) > 0.25 {
		t.Fatalf("adaptive E[cc] = %v, fixed-N reference = %v", adaptive, fixed)
	}
}

// TestAdaptiveMetricsClosedLoop: an adaptive run must publish the
// mc.adaptive.* gauges and the per-op stop-reason counters, and must NOT
// bump the fixed-budget mc.quality.undersampled flag — the budget is the
// closed loop now (ISSUE 7 satellite: converged vs capped are
// distinguishable).
func TestAdaptiveMetricsClosedLoop(t *testing.T) {
	g := randomGraph(74, 40, 100)
	o := obs.NewObserver()
	est := Estimator{Seed: 4, Obs: o, TargetRSE: 0.05, MaxSamples: 16384}
	est.ExpectedConnectedPairs(g)
	snap := o.Registry().Snapshot()
	for _, gauge := range []string{
		"mc.adaptive.last_samples", "mc.adaptive.last_drawn",
		"mc.adaptive.last_rse", "mc.adaptive.last_savings",
	} {
		if _, ok := snap.Gauges[gauge]; !ok {
			t.Errorf("missing adaptive gauge %s", gauge)
		}
	}
	if snap.Gauges["mc.adaptive.last_drawn"] < snap.Gauges["mc.adaptive.last_samples"] {
		t.Error("drawn worlds cannot be fewer than counted samples")
	}
	if snap.Counters["mc.adaptive.converged"]+snap.Counters["mc.adaptive.capped"] == 0 {
		t.Error("no adaptive stop reason recorded")
	}
	if snap.Counters["mc.quality.undersampled"] != 0 {
		t.Error("adaptive run bumped the fixed-budget undersampled flag")
	}
	converged := snap.Counters["mc.adaptive.ExpectedConnectedPairs.converged"]
	capped := snap.Counters["mc.adaptive.ExpectedConnectedPairs.capped"]
	if converged+capped != 1 {
		t.Errorf("per-op stop reason: converged=%d capped=%d, want exactly one", converged, capped)
	}

	// A capped run flips the per-op reason.
	o2 := obs.NewObserver()
	Estimator{Seed: 4, Obs: o2, TargetRSE: 1e-12, MaxSamples: 256}.ExpectedConnectedPairs(g)
	snap2 := o2.Registry().Snapshot()
	if snap2.Counters["mc.adaptive.ExpectedConnectedPairs.capped"] != 1 {
		t.Error("unreachable target did not record a capped stop for the op")
	}
	if snap2.Counters["mc.quality.undersampled"] != 0 {
		t.Error("capped adaptive run leaked into the undersampled counter")
	}
}

// TestAdaptiveLoopSteadyStateAllocs: the serial adaptive chunk loop must
// keep the zero-allocation steady state of the fixed path — the stopping
// rule reads a stack accumulator, the draw kernels are package functions,
// and nothing in the chunk loop escapes.
func TestAdaptiveLoopSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; guard runs in the non-race pass")
	}
	g := randomGraph(75, 60, 140)
	visit := func(i int, sc *scratch) float64 { _, p := sc.componentsPairs(); return float64(p) }
	for _, mode := range []uncertain.SamplingMode{
		uncertain.SampleIndependent, uncertain.SampleAntithetic,
		uncertain.SampleStratified, uncertain.SampleCoupled,
	} {
		est := Estimator{Seed: 1, Workers: 1, TargetRSE: 0.05, MaxSamples: 512, Mode: mode}
		est.forEachSample(g, visit) // warm-up: sampler snapshot + pooled scratch
		allocs := testing.AllocsPerRun(20, func() {
			est.forEachSample(g, visit)
		})
		if allocs != 0 {
			t.Errorf("mode %v: adaptive serial loop allocated %v times per pass, want 0", mode, allocs)
		}
	}
}

// TestModeWorkerIndependence: every sampling mode draws world i as a pure
// function of (seed, i), so parallel scheduling must replay the serial
// worlds for all modes — including the paired antithetic indices.
func TestModeWorkerIndependence(t *testing.T) {
	g := randomGraph(76, 50, 110)
	for _, mode := range []uncertain.SamplingMode{
		uncertain.SampleAntithetic, uncertain.SampleStratified, uncertain.SampleCoupled,
	} {
		collect := func(workers int) []int64 {
			est := Estimator{Samples: 192, Seed: 5, Workers: workers, Mode: mode}
			out := make([]int64, est.samples())
			est.forEachSample(g, func(i int, sc *scratch) float64 {
				_, out[i] = sc.componentsPairs()
				return float64(out[i])
			})
			return out
		}
		serial := collect(1)
		for _, workers := range []int{2, 5} {
			got := collect(workers)
			for i := range serial {
				if got[i] != serial[i] {
					t.Fatalf("mode %v workers=%d: world %d has %d pairs, serial drew %d",
						mode, workers, i, got[i], serial[i])
				}
			}
		}
	}
}

// TestLabelKeyCoversSamplingTuple is the cache-correctness satellite of
// ISSUE 7: labelKey used to key only on `fast`, so a mode or adaptive
// change silently served stale labels. Every field of the sampling tuple
// must now change the key.
func TestLabelKeyCoversSamplingTuple(t *testing.T) {
	g := randomGraph(77, 20, 40)
	base := Estimator{Samples: 100, Seed: 1}
	variants := []Estimator{
		{Samples: 100, Seed: 1, FastSampling: true},
		{Samples: 100, Seed: 1, Mode: uncertain.SampleAntithetic},
		{Samples: 100, Seed: 1, Mode: uncertain.SampleStratified},
		{Samples: 100, Seed: 1, Mode: uncertain.SampleCoupled},
		{Samples: 100, Seed: 1, TargetRSE: 0.05},
		{Samples: 100, Seed: 1, TargetRSE: 0.01},
		{Samples: 100, Seed: 1, TargetRSE: 0.05, MaxSamples: 4096},
		{Samples: 200, Seed: 1},
		{Samples: 100, Seed: 2},
	}
	seen := map[labelKey]int{base.labelKeyFor(g): -1}
	for i, v := range variants {
		k := v.labelKeyFor(g)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with %d: %+v", i, prev, k)
		}
		seen[k] = i
	}
}

// TestLabelCacheMissesOnModeChange: the functional half of the satellite —
// re-querying the same graph under a different sampling mode must MISS the
// cache and produce a fresh labeling, not serve the stale one.
func TestLabelCacheMissesOnModeChange(t *testing.T) {
	g := randomGraph(78, 25, 50)
	cache := NewLabelCache()
	o := obs.NewObserver()
	indep := Estimator{Samples: 100, Seed: 3, Cache: cache, Obs: o}
	anti := Estimator{Samples: 100, Seed: 3, Cache: cache, Obs: o, Mode: uncertain.SampleAntithetic}

	indep.sampleLabelsT(g)
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries after first labeling, want 1", cache.Len())
	}
	anti.sampleLabelsT(g)
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries after mode change, want 2 (mode change must miss)", cache.Len())
	}
	snap := o.Registry().Snapshot()
	if snap.Counters["mc.label_cache.misses"] != 2 || snap.Counters["mc.label_cache.hits"] != 0 {
		t.Errorf("hits=%d misses=%d, want 0/2: the mode change must not hit",
			snap.Counters["mc.label_cache.hits"], snap.Counters["mc.label_cache.misses"])
	}
	indep.sampleLabelsT(g) // unchanged tuple: now a hit
	if got := o.Registry().Snapshot().Counters["mc.label_cache.hits"]; got != 1 {
		t.Errorf("re-query under the original tuple recorded %d hits, want 1", got)
	}
}

// TestCoupledDiscrepancyOrderInvariant: the sharp common-random-numbers
// contract at the metric level. Two graphs with the SAME edge set but
// different insertion order draw identical worlds under the coupled mode
// (draws are keyed by endpoints, not edge position), so their discrepancy
// is exactly zero — while the position-keyed independent streams
// decorrelate and leave sampling noise.
func TestCoupledDiscrepancyOrderInvariant(t *testing.T) {
	edges := []struct {
		u, v uncertain.NodeID
		p    float64
	}{
		{0, 1, 0.9}, {1, 2, 0.5}, {2, 3, 0.7}, {3, 4, 0.2}, {0, 2, 0.3}, {4, 5, 0.8},
	}
	ga := uncertain.New(6)
	for _, e := range edges {
		ga.MustAddEdge(e.u, e.v, e.p)
	}
	gb := uncertain.New(6)
	for i := len(edges) - 1; i >= 0; i-- {
		gb.MustAddEdge(edges[i].u, edges[i].v, edges[i].p)
	}

	coupled := Estimator{Samples: 500, Seed: 7, Mode: uncertain.SampleCoupled}
	d, err := coupled.Discrepancy(ga, gb)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("coupled discrepancy over reordered edge lists = %v, want exactly 0", d)
	}

	indep := Estimator{Samples: 500, Seed: 7}
	di, err := indep.Discrepancy(ga, gb)
	if err != nil {
		t.Fatal(err)
	}
	if di == 0 {
		t.Fatal("independent streams are position-keyed; reordering should decorrelate them")
	}
}

// TestDeltaExpectedConnectedPairsCRN: the paired Δ estimator must match
// the difference of exact expectations, and the coupled mode must achieve
// a large variance-reduction factor on a small perturbation — the
// mechanism behind the ≥5× sample-efficiency acceptance criterion.
func TestDeltaExpectedConnectedPairsCRN(t *testing.T) {
	g := randomGraph(79, 30, 70)
	h := perturbClone(g, 0.05)

	fixedΔ := Estimator{Samples: 30000, Seed: 11}.mustDelta(t, g, h)
	o := obs.NewObserver()
	crn := Estimator{Seed: 11, Mode: uncertain.SampleCoupled, Obs: o,
		TargetRSE: 0.05, MaxSamples: 30000}
	crnΔ := crn.mustDelta(t, g, h)
	if math.Abs(crnΔ-fixedΔ) > 0.35*math.Abs(fixedΔ)+0.5 {
		t.Errorf("coupled Δ = %v, independent fixed-N Δ = %v", crnΔ, fixedΔ)
	}
	snap := o.Registry().Snapshot()
	if vr := snap.Gauges["mc.adaptive.vr_factor"]; vr < 3 {
		t.Errorf("coupled variance-reduction factor = %v, want >= 3 on a 5%% perturbation", vr)
	}
	if snap.Gauges["mc.adaptive.last_samples"] >= 30000 {
		t.Error("coupled adaptive Δ did not stop before the cap")
	}
}

func (e Estimator) mustDelta(t *testing.T, g, h *uncertain.Graph) float64 {
	t.Helper()
	d, err := e.DeltaExpectedConnectedPairs(g, h)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// perturbClone copies g and lowers every uncertain edge's probability by
// eps (clamped away from 0), modeling a near-identical, slightly less
// connected candidate of the σ-search. One-directional so the Δ of
// expected connectivity has real magnitude — a relative-SE stopping target
// is unreachable on a near-zero mean.
func perturbClone(g *uncertain.Graph, eps float64) *uncertain.Graph {
	h := uncertain.New(g.NumNodes())
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		p := e.P
		if p > 0 && p < 1 {
			p -= eps
			if p <= 0 {
				p = 0.01
			}
		}
		h.MustAddEdge(e.U, e.V, p)
	}
	return h
}

// BenchmarkAdaptiveChunkLoop measures the steady-state adaptive sampling
// loop on the serial path under the coupled sampler: one full sequential
// pass (draw chunk, merge Welford, check stop rule) per op over a warm
// estimator. allocs/op must stay 0 — scripts/check.sh gates it alongside
// the world-sampler kernels, so the closed loop never grows a per-chunk
// allocation.
func BenchmarkAdaptiveChunkLoop(b *testing.B) {
	g := randomGraph(79, 120, 300)
	est := Estimator{Seed: 1, Workers: 1, TargetRSE: 0.02, MaxSamples: 1024, Mode: uncertain.SampleCoupled}
	visit := func(i int, sc *scratch) float64 {
		_, p := sc.componentsPairs()
		return float64(p)
	}
	est.forEachSample(g, visit) // warm-up: sampler snapshot + pooled scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.forEachSample(g, visit)
	}
}
