// Package reliability implements the paper's reliability machinery under
// possible-world semantics: Monte Carlo estimators for two-terminal
// reliability (Definition 1), the reliability-discrepancy utility-loss
// metric (Definition 2), and the edge/vertex reliability-relevance measures
// with the sample-reuse estimator of Algorithm 2.
package reliability

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/uncertain"
	"chameleon/internal/unionfind"
)

// DefaultSamples is the Monte Carlo sample count the paper uses throughout
// ("1000 usually suffices to achieve accuracy convergence" [30]).
const DefaultSamples = 1000

// DefaultMaxSamples caps adaptive sequential sampling when MaxSamples is
// left zero: generous enough that well-behaved estimates converge long
// before it, small enough that a pathological stream (near-zero mean)
// cannot run away.
const DefaultMaxSamples = 16384

// sampleChunk is the unit of work handed to a worker: 64 consecutive
// sample indices, matching one bitset word so chunk boundaries align with
// word boundaries in any transposed layout, and coarse enough that the
// atomic claim is negligible against the per-world sampling cost.
const sampleChunk = 64

// adaptiveMinSamples is the floor before the sequential stopping rule may
// fire: below two chunks the Welford variance estimate is too noisy to
// trust a relative-standard-error test (early small-sample flukes would
// stop genuinely unconverged streams).
const adaptiveMinSamples = 2 * sampleChunk

// Estimator carries the Monte Carlo configuration shared by the
// estimators in this package.
type Estimator struct {
	// Samples is the number of possible worlds drawn (N) in fixed-budget
	// mode. Zero means DefaultSamples. With TargetRSE set it is ignored
	// (the budget becomes MaxSamples).
	Samples int
	// Seed makes estimates reproducible. The same seed always draws the
	// same worlds.
	Seed uint64
	// Workers caps sampling parallelism. Zero means GOMAXPROCS.
	Workers int
	// Obs, when non-nil, receives Monte Carlo metrics: worlds sampled,
	// per-worker sample counts and per-estimator wall-time histograms.
	Obs *obs.Observer
	// Cache, when non-nil, memoizes sampled component labels across
	// estimator calls, keyed by (graph identity, graph version, samples,
	// seed, sampling mode). Safe to share between estimators.
	Cache *LabelCache
	// FastSampling switches world drawing to geometric-skip sampling of
	// low-probability edge classes. Same world distribution, different
	// world stream for a given seed: still deterministic, but estimates no
	// longer replay bit-for-bit against the default sampler. It applies to
	// the independent and antithetic modes; the hashed modes (stratified,
	// coupled) have no stream to skip along and ignore it.
	FastSampling bool
	// Mode selects the world-drawing strategy (default
	// uncertain.SampleIndependent). All modes share per-world marginals;
	// the variance-reduced ones change how worlds relate to each other
	// (antithetic, stratified) or to a second graph's worlds (coupled).
	Mode uncertain.SamplingMode
	// TargetRSE, when positive, switches the estimator to adaptive
	// sequential stopping: worlds are drawn in sampleChunk-sized chunks
	// until the per-world statistic's relative standard error drops to the
	// target (or MaxSamples is reached). The effective sample count is then
	// data-dependent; callers divide by the accumulator count rather than
	// Samples. Zero keeps the fixed budget.
	TargetRSE float64
	// MaxSamples caps the adaptive mode's total draw. Zero means
	// DefaultMaxSamples. Ignored without TargetRSE.
	MaxSamples int
	// Ctx, when non-nil, cancels sampling cooperatively: workers stop
	// claiming chunks (and the serial loop stops drawing) at the next
	// sampleChunk boundary once the context is done. A cancelled call
	// still returns — with a value computed from the partial sample set,
	// which is statistically meaningless — so callers that set Ctx MUST
	// check Ctx.Err() after every estimator call and discard the result
	// when it is non-nil. Nil means no cancellation, and the hot loop pays
	// only a nil test per chunk.
	Ctx context.Context
}

// cancelled reports whether the estimator's context is done. One nil test
// on the no-context fast path.
func (e Estimator) cancelled() bool {
	return e.Ctx != nil && e.Ctx.Err() != nil
}

func (e Estimator) samples() int {
	if e.Samples <= 0 {
		return DefaultSamples
	}
	return e.Samples
}

// adaptive reports whether sequential stopping is enabled.
func (e Estimator) adaptive() bool { return e.TargetRSE > 0 }

func (e Estimator) maxSamples() int {
	if e.MaxSamples <= 0 {
		return DefaultMaxSamples
	}
	return e.MaxSamples
}

// budget is the largest sample count a call may draw: the fixed N, or the
// adaptive cap. Callers size per-world side arrays by it and truncate to
// effSamples afterwards.
func (e Estimator) budget() int {
	if e.adaptive() {
		return e.maxSamples()
	}
	return e.samples()
}

// effSamples is the number of worlds that actually fed the estimate: the
// accumulator count in adaptive mode (the counted prefix is always
// contiguous from index 0), the configured N otherwise. Clamped to >= 1 so
// cancelled adaptive calls — whose results are discarded anyway — never
// divide by zero.
func (e Estimator) effSamples(w obs.Welford) int {
	if e.adaptive() {
		if n := int(w.Count()); n > 0 {
			return n
		}
		return 1
	}
	return e.samples()
}

func (e Estimator) workers() int {
	if e.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.Workers
}

// streamFor derives the PCG stream constant for sample i; with Seed it
// fully determines the RNG state that draws world i.
func (e Estimator) streamFor(i int) uint64 {
	return uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
}

// rngFor derives an independent deterministic RNG for sample i. The scratch
// fast path reproduces the exact same state via pcg.Seed(e.Seed,
// e.streamFor(i)) without the rand.Rand allocation.
func (e Estimator) rngFor(i int) *rand.Rand {
	return rand.New(rand.NewPCG(e.Seed, e.streamFor(i)))
}

// timeOp records one completed estimator operation: its wall time into a
// per-operation latency instrument (mc.latency.<op>, an HDR histogram
// whose p50/p99/p999 hold across the microsecond-to-minute range — the
// old fixed-bucket mc.seconds.* histograms clamped fast-op quantiles to
// the largest finite bound) and an invocation counter. Call it deferred
// with the operation's start time; with Obs nil it costs one pointer
// test.
func (e Estimator) timeOp(name string, start time.Time) {
	if e.Obs == nil {
		return
	}
	reg := e.Obs.Registry()
	reg.Counter("mc.ops." + name).Inc()
	reg.Latency("mc.latency." + name).Observe(time.Since(start))
}

// scratch is one worker's reusable Monte Carlo state: the PCG that is
// re-seeded per sample, the world the sampler fills in place, and the
// union-find structure recycled across worlds. Pooled so steady-state
// sampling performs zero allocations.
type scratch struct {
	pcg   rand.PCG
	world uncertain.World
	dsu   *unionfind.DSU
}

// components returns the component structure of the scratch's current
// world, reusing the scratch's union-find storage.
func (sc *scratch) components() *unionfind.DSU {
	sc.dsu = sc.world.ComponentsInto(sc.dsu)
	return sc.dsu
}

// componentsPairs additionally returns the world's connected-pair count,
// computed incrementally inside the union loop.
func (sc *scratch) componentsPairs() (*unionfind.DSU, int64) {
	d, pairs := sc.world.ComponentsPairsInto(sc.dsu)
	sc.dsu = d
	return d, pairs
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// drawFunc draws world i of the sampler into the scratch under the given
// base seed. Every draw is keyed by the sample index alone — re-seeded
// streams or stateless hashes — so indices can be drawn in any order by
// any scheduling, which is what makes worker counts, chunked adaptive
// stopping and checkpoint resume all produce identical worlds.
type drawFunc func(seed uint64, s *uncertain.WorldSampler, sc *scratch, i int)

func drawIndependent(seed uint64, s *uncertain.WorldSampler, sc *scratch, i int) {
	sc.pcg.Seed(seed, uint64(i)*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d)
	s.SampleInto(&sc.world, &sc.pcg)
}

func drawIndependentGeom(seed uint64, s *uncertain.WorldSampler, sc *scratch, i int) {
	sc.pcg.Seed(seed, uint64(i)*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d)
	s.SampleIntoGeometric(&sc.world, &sc.pcg)
}

// Antithetic pairing: indices 2j and 2j+1 re-seed the SAME stream (keyed
// by the pair index j), the odd one drawing complemented uniforms. Pairs
// never straddle chunk boundaries (sampleChunk is even), and each index
// re-seeds from scratch, so scheduling cannot split or reorder a pair's
// draws.
func drawAntithetic(seed uint64, s *uncertain.WorldSampler, sc *scratch, i int) {
	sc.pcg.Seed(seed, uint64(i>>1)*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d)
	s.SampleIntoAntithetic(&sc.world, &sc.pcg, i&1 == 1)
}

func drawAntitheticGeom(seed uint64, s *uncertain.WorldSampler, sc *scratch, i int) {
	sc.pcg.Seed(seed, uint64(i>>1)*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d)
	s.SampleIntoGeometricAntithetic(&sc.world, &sc.pcg, i&1 == 1)
}

func drawStratified(seed uint64, s *uncertain.WorldSampler, sc *scratch, i int) {
	s.SampleIntoStratified(&sc.world, seed, i)
}

func drawCoupled(seed uint64, s *uncertain.WorldSampler, sc *scratch, i int) {
	s.SampleIntoCoupled(&sc.world, seed, i)
}

// drawFn selects the world-drawing kernel for the configured mode as a
// package-level function (no closure allocation). Call sites keep the
// returned variable single-assignment: a reassigned variable captured by
// the worker goroutines would be heap-allocated on every forEachSample
// call, even down the serial path.
func (e Estimator) drawFn() drawFunc {
	switch e.Mode {
	case uncertain.SampleAntithetic:
		if e.FastSampling {
			return drawAntitheticGeom
		}
		return drawAntithetic
	case uncertain.SampleStratified:
		return drawStratified
	case uncertain.SampleCoupled:
		return drawCoupled
	default:
		if e.FastSampling {
			return drawIndependentGeom
		}
		return drawIndependent
	}
}

// pairSeed is the seed a paired loop uses to draw the SECOND graph's
// worlds. The hashed modes keep the base seed: index-aligned draws then
// reuse the same uniform per edge-endpoint pair, which IS the
// common-random-numbers coupling. The stream modes decorrelate the second
// graph so the classical independent two-sample analysis applies.
func (e Estimator) pairSeed() uint64 {
	switch e.Mode {
	case uncertain.SampleStratified, uncertain.SampleCoupled:
		return e.Seed
	default:
		return e.Seed ^ 0x6c62272e07bb0142
	}
}

// workerNames pre-renders the per-worker counter names so the sampling
// loop never formats strings.
var workerNames = func() (names [64]string) {
	for i := range names {
		names[i] = fmt.Sprintf("mc.worker.%02d.samples", i)
	}
	return
}()

func workerName(w int) string {
	if w < len(workerNames) {
		return workerNames[w]
	}
	return fmt.Sprintf("mc.worker.%02d.samples", w)
}

// stopRSE is the sequential stopping rule: enough samples for the variance
// estimate to be trustworthy, and relative standard error at or below the
// target. A zero-variance stream (constant statistic) stops at the floor —
// its RelStdErr is exactly 0.
func stopRSE(w obs.Welford, target float64) bool {
	return w.Count() >= adaptiveMinSamples && w.RelStdErr() <= target
}

// forEachSample runs fn(sampleIndex, scratch) over sampled worlds of g,
// fanning out over the configured workers. When fn is called, sc.world
// holds world sampleIndex; fn may use sc.components() and must not retain
// references into the scratch past its return. fn must be safe for
// concurrent invocation on distinct indices.
//
// fn returns the world's per-sample statistic (the value whose mean the
// caller is estimating); forEachSample streams it through a Welford
// accumulator — one per worker, merged once at the end — and returns the
// merged state, from which callers derive the estimator's standard error
// and confidence interval (see recordQuality). Callers with no meaningful
// per-world statistic return 0 and drop the result. In fixed-budget mode
// the estimates themselves are never computed from the accumulator (its
// merge order is scheduling-dependent in the parallel case); they keep
// their existing deterministic reductions. In adaptive mode (TargetRSE >
// 0) the accumulator additionally DECIDES the sample count — see
// forEachSampleAdaptive — and its count is the effective N.
//
// Work is handed out in chunks of sampleChunk consecutive indices claimed
// off an atomic cursor, and each worker draws worlds into a pooled scratch,
// so the steady state allocates nothing. Metrics go through the nil-safe
// registry path: a nil Obs yields a nil registry whose instruments drop
// updates, so no call site guards.
//
// Cancellation (Estimator.Ctx) is cooperative at chunk boundaries: the
// serial loop re-tests the context every sampleChunk samples and the
// parallel workers re-test it before claiming each chunk, so a cancelled
// call drains within one chunk per worker and forEachSample returns with
// whatever was accumulated. The mc.worlds_sampled and per-worker counters
// record the worlds actually drawn (not the requested budget), so the
// sample-balance invariant sum(mc.worker.*) == mc.worlds_sampled holds on
// interrupted runs too.
func (e Estimator) forEachSample(g uncertain.View, fn func(i int, sc *scratch) float64) obs.Welford {
	if e.adaptive() {
		return e.forEachSampleAdaptive(g, fn)
	}
	n := e.samples()
	reg := e.Obs.Registry()
	sampler := g.Sampler()
	draw := e.drawFn()
	workers := e.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Separate accumulator from the parallel path's: that one is
		// captured by the worker closures and therefore heap-allocated;
		// this one stays on the stack, keeping the serial steady state
		// allocation-free.
		var stat obs.Welford
		sc := scratchPool.Get().(*scratch)
		i := 0
		for ; i < n; i++ {
			if i%sampleChunk == 0 && e.cancelled() {
				break
			}
			draw(e.Seed, sampler, sc, i)
			stat.Add(fn(i, sc))
		}
		scratchPool.Put(sc)
		reg.Counter("mc.worlds_sampled").Add(int64(i))
		reg.Counter(workerName(0)).Add(int64(i))
		return stat
	}
	var stat obs.Welford
	var totalDrawn int64
	var mu sync.Mutex
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := scratchPool.Get().(*scratch)
			var drawn int64
			var local obs.Welford
			for !e.cancelled() {
				start := int(cursor.Add(sampleChunk)) - sampleChunk
				if start >= n {
					break
				}
				end := start + sampleChunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					draw(e.Seed, sampler, sc, i)
					local.Add(fn(i, sc))
				}
				drawn += int64(end - start)
			}
			scratchPool.Put(sc)
			mu.Lock()
			stat.Merge(local)
			totalDrawn += drawn
			mu.Unlock()
			reg.Counter(workerName(w)).Add(drawn)
		}(w)
	}
	wg.Wait()
	reg.Counter("mc.worlds_sampled").Add(totalDrawn)
	return stat
}

// forEachSampleAdaptive is the sequential-stopping sampling loop: draw
// chunks of sampleChunk worlds, fold each chunk into the running Welford
// state IN CHUNK-INDEX ORDER, and stop at the first chunk boundary where
// the prefix's relative standard error reaches TargetRSE (after the
// adaptiveMinSamples floor), or at the MaxSamples cap.
//
// The stopping decision is a function of the chunk-order prefix alone, so
// any worker count stops at the same boundary and returns the same
// accumulator: the parallel path runs rounds of one chunk per worker with
// a barrier, then merges that round's chunks in order, replaying exactly
// the serial schedule. Workers may overdraw chunks past the stopping
// boundary within the final round; those worlds are counted as drawn (the
// sample-balance invariant reflects actual work) but excluded from the
// accumulator, so the counted prefix is always contiguous — callers
// truncate their per-world side arrays to the accumulator count.
func (e Estimator) forEachSampleAdaptive(g uncertain.View, fn func(i int, sc *scratch) float64) obs.Welford {
	reg := e.Obs.Registry()
	sampler := g.Sampler()
	draw := e.drawFn()
	maxS := e.maxSamples()
	target := e.TargetRSE
	workers := e.workers()
	if maxChunks := (maxS + sampleChunk - 1) / sampleChunk; workers > maxChunks {
		workers = maxChunks
	}
	if workers <= 1 {
		// Stack accumulator and no closures: the serial adaptive loop keeps
		// the steady-state zero-allocation property (guarded by
		// TestAdaptiveLoopSteadyStateAllocs).
		var stat obs.Welford
		sc := scratchPool.Get().(*scratch)
		drawn := 0
		for drawn < maxS && !e.cancelled() {
			end := drawn + sampleChunk
			if end > maxS {
				end = maxS
			}
			for i := drawn; i < end; i++ {
				draw(e.Seed, sampler, sc, i)
				stat.Add(fn(i, sc))
			}
			drawn = end
			if stopRSE(stat, target) {
				break
			}
		}
		scratchPool.Put(sc)
		reg.Counter("mc.worlds_sampled").Add(int64(drawn))
		reg.Counter(workerName(0)).Add(int64(drawn))
		e.recordAdaptive(stat, drawn)
		return stat
	}

	var stat obs.Welford
	var totalDrawn int64
	partials := make([]obs.Welford, workers)
	counts := make([]int, workers)
	base := 0
	stopped := false
	for base < maxS && !stopped && !e.cancelled() {
		roundEnd := base + workers*sampleChunk
		if roundEnd > maxS {
			roundEnd = maxS
		}
		nChunks := (roundEnd - base + sampleChunk - 1) / sampleChunk
		var wg sync.WaitGroup
		for c := 0; c < nChunks; c++ {
			counts[c] = 0
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				if e.cancelled() {
					return
				}
				sc := scratchPool.Get().(*scratch)
				start := base + c*sampleChunk
				end := start + sampleChunk
				if end > roundEnd {
					end = roundEnd
				}
				var local obs.Welford
				for i := start; i < end; i++ {
					draw(e.Seed, sampler, sc, i)
					local.Add(fn(i, sc))
				}
				scratchPool.Put(sc)
				partials[c] = local
				counts[c] = end - start
			}(c)
		}
		wg.Wait()
		for c := 0; c < nChunks; c++ {
			if counts[c] == 0 {
				// Cancelled before this chunk ran: the merged prefix ends
				// here (later chunks of the round, if any ran, are dropped —
				// the prefix must stay contiguous).
				stopped = true
				break
			}
			reg.Counter(workerName(c)).Add(int64(counts[c]))
			totalDrawn += int64(counts[c])
			stat.Merge(partials[c])
			if stopRSE(stat, target) {
				stopped = true
				// Later chunks of this round were drawn concurrently but are
				// past the stopping boundary: count the work, drop the data.
				for d := c + 1; d < nChunks; d++ {
					if counts[d] > 0 {
						reg.Counter(workerName(d)).Add(int64(counts[d]))
						totalDrawn += int64(counts[d])
					}
				}
				break
			}
		}
		base = roundEnd
	}
	reg.Counter("mc.worlds_sampled").Add(totalDrawn)
	e.recordAdaptive(stat, int(totalDrawn))
	return stat
}

// forEachSamplePair runs fn(i, scg, sch) over PAIRED worlds of g and h:
// for each sample index, world i of g and world i of h are drawn and
// handed to fn together, and fn's per-index statistic (typically a
// difference) feeds the accumulator — fixed-budget or adaptive, exactly as
// in forEachSample, whose scheduling, counting and cancellation contracts
// all apply (each drawn pair counts as two worlds).
//
// Under the hashed modes (coupled, stratified) both graphs draw from the
// SAME seed, so every edge the graphs share receives identical uniforms at
// every index — the common-random-numbers coupling that collapses the
// variance of difference estimates. Under the stream modes the second
// graph draws from a decorrelated seed (pairSeed), giving the classical
// independent two-sample estimator.
func (e Estimator) forEachSamplePair(g, h uncertain.View, fn func(i int, scg, sch *scratch) float64) obs.Welford {
	reg := e.Obs.Registry()
	samplerG, samplerH := g.Sampler(), h.Sampler()
	draw := e.drawFn()
	seedH := e.pairSeed()
	limit := e.budget()
	target := e.TargetRSE
	workers := e.workers()
	if maxChunks := (limit + sampleChunk - 1) / sampleChunk; workers > maxChunks {
		workers = maxChunks
	}
	if workers <= 1 {
		var stat obs.Welford
		scg := scratchPool.Get().(*scratch)
		sch := scratchPool.Get().(*scratch)
		drawn := 0
		for drawn < limit && !e.cancelled() {
			end := drawn + sampleChunk
			if end > limit {
				end = limit
			}
			for i := drawn; i < end; i++ {
				draw(e.Seed, samplerG, scg, i)
				draw(seedH, samplerH, sch, i)
				stat.Add(fn(i, scg, sch))
			}
			drawn = end
			if e.adaptive() && stopRSE(stat, target) {
				break
			}
		}
		scratchPool.Put(scg)
		scratchPool.Put(sch)
		reg.Counter("mc.worlds_sampled").Add(2 * int64(drawn))
		reg.Counter(workerName(0)).Add(2 * int64(drawn))
		if e.adaptive() {
			e.recordAdaptive(stat, drawn)
		}
		return stat
	}

	var stat obs.Welford
	var totalDrawn int64
	partials := make([]obs.Welford, workers)
	counts := make([]int, workers)
	base := 0
	stopped := false
	for base < limit && !stopped && !e.cancelled() {
		roundEnd := base + workers*sampleChunk
		if roundEnd > limit {
			roundEnd = limit
		}
		nChunks := (roundEnd - base + sampleChunk - 1) / sampleChunk
		var wg sync.WaitGroup
		for c := 0; c < nChunks; c++ {
			counts[c] = 0
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				if e.cancelled() {
					return
				}
				scg := scratchPool.Get().(*scratch)
				sch := scratchPool.Get().(*scratch)
				start := base + c*sampleChunk
				end := start + sampleChunk
				if end > roundEnd {
					end = roundEnd
				}
				var local obs.Welford
				for i := start; i < end; i++ {
					draw(e.Seed, samplerG, scg, i)
					draw(seedH, samplerH, sch, i)
					local.Add(fn(i, scg, sch))
				}
				scratchPool.Put(scg)
				scratchPool.Put(sch)
				partials[c] = local
				counts[c] = end - start
			}(c)
		}
		wg.Wait()
		for c := 0; c < nChunks; c++ {
			if counts[c] == 0 {
				stopped = true
				break
			}
			reg.Counter(workerName(c)).Add(2 * int64(counts[c]))
			totalDrawn += int64(counts[c])
			stat.Merge(partials[c])
			if e.adaptive() && stopRSE(stat, target) {
				stopped = true
				for d := c + 1; d < nChunks; d++ {
					if counts[d] > 0 {
						reg.Counter(workerName(d)).Add(2 * int64(counts[d]))
						totalDrawn += int64(counts[d])
					}
				}
				break
			}
		}
		base = roundEnd
	}
	reg.Counter("mc.worlds_sampled").Add(2 * totalDrawn)
	if e.adaptive() {
		e.recordAdaptive(stat, int(totalDrawn))
	}
	return stat
}

// recordAdaptive publishes one adaptive call's closed-loop outcome: the
// effective sample count, worlds actually drawn (including final-round
// overdraw), achieved RSE, the savings factor against the cap, and the
// stop reason (converged vs capped — the distinction the old
// mc.quality.undersampled counter could not make). Cancelled calls record
// only the cancellation: their statistics cover a truncated stream.
func (e Estimator) recordAdaptive(w obs.Welford, drawn int) {
	if e.Obs == nil {
		return
	}
	reg := e.Obs.Registry()
	if e.cancelled() {
		reg.Counter("mc.adaptive.cancelled").Inc()
		return
	}
	reg.Gauge("mc.adaptive.last_samples").Set(float64(w.Count()))
	reg.Gauge("mc.adaptive.last_drawn").Set(float64(drawn))
	rse := w.RelStdErr()
	if math.IsInf(rse, 1) {
		rse = math.MaxFloat64
	}
	reg.Gauge("mc.adaptive.last_rse").Set(rse)
	if w.Count() > 0 {
		reg.Gauge("mc.adaptive.last_savings").Set(float64(e.maxSamples()) / float64(w.Count()))
	}
	if stopRSE(w, e.TargetRSE) {
		reg.Counter("mc.adaptive.converged").Inc()
	} else {
		reg.Counter("mc.adaptive.capped").Inc()
	}
}

// UndersampledRSE is the relative-standard-error threshold above which an
// estimate counts as under-sampled: the configured Monte Carlo budget left
// more than 5% relative noise on the estimate, so downstream consumers
// (the σ-search, the figure sweeps) are operating on a shaky number.
const UndersampledRSE = 0.05

// recordQuality publishes the statistical health of one completed estimate
// into the registry: the pooled per-sample stream (mean/variance/CI across
// every call), last-call standard-error and CI gauges, and the relative-SE
// convergence gauge. In fixed-budget mode, estimates whose relative SE
// exceeds UndersampledRSE bump the mc.quality.undersampled counter and
// emit a debug log, flagging σ-search steps and sweep cells that ran
// under-budgeted. In adaptive mode the budget is the closed loop itself,
// so the flag is replaced by per-operation stop-reason counters
// (mc.adaptive.<op>.converged / .capped) keyed to the ACHIEVED RSE against
// the configured target. Free (one pointer test) with Obs nil; estimates
// with no spread information (fewer than two samples) record nothing.
//
// The accumulator must hold per-WORLD statistics (one observation per
// sampled world, the forEachSample contract) so that stderr is the Monte
// Carlo error of the estimate. Per-pair discrepancy values do not qualify
// — see recordPairSpread.
func (e Estimator) recordQuality(op string, w obs.Welford) {
	e.recordStream("mc.quality."+op, op, w, true)
}

// recordPairSpread publishes the dispersion of per-PAIR values under
// mc.pairspread.<op>. Every pair is evaluated against the SAME N sampled
// worlds, so the values are correlated and the stream's stderr/CI are NOT
// the Monte Carlo error of the estimate: for Discrepancy (all pairs) they
// are a pure dispersion diagnostic, and for SampledPairDiscrepancy they
// bound only the pair-sampling error conditional on the drawn worlds,
// excluding world-sampling noise. These streams therefore never feed the
// mc.quality.undersampled convergence flag.
func (e Estimator) recordPairSpread(op string, w obs.Welford) {
	e.recordStream("mc.pairspread."+op, op, w, false)
}

// recordStream merges the accumulator into the named quality stream and
// sets the last-call gauges. The gauge names carry a "last_" prefix so
// their sanitized /metrics forms (mc_quality_X_last_stderr, ...) never
// collide with the stream's own pooled expansion (mc_quality_X_stderr,
// ...) — a collision would duplicate metric families and abort Prometheus
// scrapes. convergence gates the under-sampled flag (fixed budget) or the
// per-op stop-reason counters (adaptive).
func (e Estimator) recordStream(name, op string, w obs.Welford, convergence bool) {
	if e.Obs == nil || w.Count() < 2 || e.cancelled() {
		// A cancelled estimate's accumulator covers a truncated sample set;
		// recording it would pollute the quality streams of the final
		// (interrupted) snapshot with bogus convergence data.
		return
	}
	reg := e.Obs.Registry()
	reg.Quality(name).Merge(w)
	reg.Gauge(name + ".last_stderr").Set(w.StdErr())
	lo, hi := w.CI95()
	reg.Gauge(name + ".last_ci95_lo").Set(lo)
	reg.Gauge(name + ".last_ci95_hi").Set(hi)
	rse := w.RelStdErr()
	reg.Gauge(name + ".last_rse").Set(rse)
	if !convergence {
		return
	}
	if e.adaptive() {
		// Closed loop: report the achieved RSE against the configured
		// target and the stop reason, per operation. A capped stream is the
		// adaptive analogue of under-sampled — the cap bound the budget
		// before the target was met — and is distinguishable from a
		// converged one, which the old undersampled counter never was.
		if rse <= e.TargetRSE {
			reg.Counter("mc.adaptive." + op + ".converged").Inc()
		} else {
			reg.Counter("mc.adaptive." + op + ".capped").Inc()
			e.Obs.Debug("mc: adaptive estimate capped before target RSE",
				"op", op, "rse", rse, "target", e.TargetRSE, "samples", w.Count())
		}
		return
	}
	if rse > UndersampledRSE {
		reg.Counter("mc.quality.undersampled").Inc()
		e.Obs.Debug("mc: estimate under-sampled",
			"op", op, "rse", rse, "samples", w.Count(), "stderr", w.StdErr())
	}
}

// SampleLabels draws worlds and returns their component-label vectors:
// labels[i][v] is the component representative of vertex v in world i. In
// adaptive mode the returned slice is truncated to the effective sample
// count (the per-world statistic driving the stopping rule is the world's
// connected-pair count).
func (e Estimator) SampleLabels(g uncertain.View) [][]int32 {
	labels := make([][]int32, e.budget())
	nv := g.NumNodes()
	w := e.forEachSample(g, func(i int, sc *scratch) float64 {
		d, pairs := sc.componentsPairs()
		row := make([]int32, nv)
		for v := range row {
			row[v] = int32(d.Find(v))
		}
		labels[i] = row
		return float64(pairs)
	})
	if e.adaptive() {
		labels = labels[:e.effSamples(w)]
	}
	return labels
}

// ExpectedConnectedPairs estimates E[cc(G)]: the expected number of
// connected unordered vertex pairs.
func (e Estimator) ExpectedConnectedPairs(g uncertain.View) float64 {
	defer e.timeOp("ExpectedConnectedPairs", time.Now())
	if ls := e.cachedLabels(g); ls != nil {
		var total float64
		var w obs.Welford
		for _, c := range ls.cc {
			total += float64(c)
			w.Add(float64(c))
		}
		e.recordQuality("ExpectedConnectedPairs", w)
		return total / float64(len(ls.cc))
	}
	counts := make([]int64, e.budget())
	w := e.forEachSample(g, func(i int, sc *scratch) float64 {
		_, counts[i] = sc.componentsPairs()
		return float64(counts[i])
	})
	e.recordQuality("ExpectedConnectedPairs", w)
	n := e.effSamples(w)
	var total float64
	for _, c := range counts[:n] {
		total += float64(c)
	}
	return total / float64(n)
}

// PairReliability estimates R_{u,v}(G) (Definition 1): the probability that
// u and v are connected. With a Cache attached the estimate is read off
// the memoized component labels — identical worlds, identical labels, so
// the value matches the uncached fixed-budget path bit-for-bit, and a
// warm cache answers in O(N) label comparisons without sampling.
func (e Estimator) PairReliability(g uncertain.View, u, v uncertain.NodeID) float64 {
	defer e.timeOp("PairReliability", time.Now())
	if e.Cache != nil {
		ls := e.sampleLabelsT(g)
		ru, rv := ls.row(int(u)), ls.row(int(v))
		var w obs.Welford
		hits := 0
		for s := range ru {
			if ru[s] == rv[s] {
				hits++
				w.Add(1)
			} else {
				w.Add(0)
			}
		}
		e.recordQuality("PairReliability", w)
		n := len(ru)
		if n == 0 {
			n = 1 // cancelled before any world: caller discards via Ctx.Err()
		}
		return float64(hits) / float64(n)
	}
	hits := make([]int8, e.budget())
	w := e.forEachSample(g, func(i int, sc *scratch) float64 {
		if sc.components().Connected(int(u), int(v)) {
			hits[i] = 1
			return 1
		}
		return 0
	})
	e.recordQuality("PairReliability", w)
	n := e.effSamples(w)
	var total float64
	for _, h := range hits[:n] {
		total += float64(h)
	}
	return total / float64(n)
}

// ReliabilityVector estimates R_{src,v} for every v against a single
// source; handy for k-nearest-neighbor style queries (cf. [30]). With a
// Cache attached the vector is computed from the memoized transposed
// labels (same worlds, same values as the uncached path), so repeated
// k-NN queries against one graph sample it exactly once.
func (e Estimator) ReliabilityVector(g uncertain.View, src uncertain.NodeID) []float64 {
	defer e.timeOp("ReliabilityVector", time.Now())
	if e.Cache != nil {
		ls := e.sampleLabelsT(g)
		out := make([]float64, g.NumNodes())
		rs := ls.row(int(src))
		n := len(rs)
		if n == 0 {
			n = 1 // cancelled before any world: caller discards via Ctx.Err()
		}
		inv := 1 / float64(n)
		for v := range out {
			rv := ls.row(v)
			c := 0
			for s := range rs {
				if rv[s] == rs[s] {
					c++
				}
			}
			out[v] = float64(c) * inv
		}
		out[src] = 1
		return out
	}
	labels := e.SampleLabels(g)
	out := make([]float64, g.NumNodes())
	n := 0
	for _, l := range labels {
		if l == nil {
			break // cancelled mid-sampling: rows past the cut were never drawn
		}
		n++
		ls := l[src]
		for v := range out {
			if l[v] == ls {
				out[v]++
			}
		}
	}
	if n == 0 {
		n = 1 // cancelled before any world: result is discarded by the caller
	}
	inv := 1 / float64(n)
	for v := range out {
		out[v] *= inv
	}
	out[src] = 1
	return out
}
