// Package reliability implements the paper's reliability machinery under
// possible-world semantics: Monte Carlo estimators for two-terminal
// reliability (Definition 1), the reliability-discrepancy utility-loss
// metric (Definition 2), and the edge/vertex reliability-relevance measures
// with the sample-reuse estimator of Algorithm 2.
package reliability

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/uncertain"
)

// DefaultSamples is the Monte Carlo sample count the paper uses throughout
// ("1000 usually suffices to achieve accuracy convergence" [30]).
const DefaultSamples = 1000

// Estimator carries the Monte Carlo configuration shared by the
// estimators in this package.
type Estimator struct {
	// Samples is the number of possible worlds drawn (N). Zero means
	// DefaultSamples.
	Samples int
	// Seed makes estimates reproducible. The same seed always draws the
	// same worlds.
	Seed uint64
	// Workers caps sampling parallelism. Zero means GOMAXPROCS.
	Workers int
	// Obs, when non-nil, receives Monte Carlo metrics: worlds sampled,
	// per-worker sample counts and per-estimator wall-time histograms.
	Obs *obs.Observer
}

func (e Estimator) samples() int {
	if e.Samples <= 0 {
		return DefaultSamples
	}
	return e.Samples
}

func (e Estimator) workers() int {
	if e.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.Workers
}

// rngFor derives an independent deterministic RNG for sample i.
func (e Estimator) rngFor(i int) *rand.Rand {
	return rand.New(rand.NewPCG(e.Seed, uint64(i)*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d))
}

// timeOp records one completed estimator operation: its wall time into a
// per-operation histogram and an invocation counter. Call it deferred with
// the operation's start time; with Obs nil it costs one pointer test.
func (e Estimator) timeOp(name string, start time.Time) {
	if e.Obs == nil {
		return
	}
	reg := e.Obs.Registry()
	reg.Counter("mc.ops." + name).Inc()
	reg.Histogram("mc.seconds."+name, obs.TimeBuckets).ObserveDuration(time.Since(start))
}

// forEachSample runs fn(sampleIndex, world) for N sampled worlds of g,
// fanning out over the configured workers. fn must be safe for concurrent
// invocation on distinct indices.
func (e Estimator) forEachSample(g *uncertain.Graph, fn func(i int, w *uncertain.World)) {
	n := e.samples()
	reg := e.Obs.Registry()
	workers := e.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i, g.SampleWorld(e.rngFor(i)))
		}
		reg.Counter("mc.worlds_sampled").Add(int64(n))
		if reg != nil {
			reg.Counter("mc.worker.00.samples").Add(int64(n))
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var drawn int64
			for i := range next {
				fn(i, g.SampleWorld(e.rngFor(i)))
				drawn++
			}
			if reg != nil {
				reg.Counter(fmt.Sprintf("mc.worker.%02d.samples", w)).Add(drawn)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	reg.Counter("mc.worlds_sampled").Add(int64(n))
}

// SampleLabels draws N worlds and returns their component-label vectors:
// labels[i][v] is the component representative of vertex v in world i.
func (e Estimator) SampleLabels(g *uncertain.Graph) [][]int32 {
	labels := make([][]int32, e.samples())
	e.forEachSample(g, func(i int, w *uncertain.World) {
		labels[i] = w.ComponentLabels()
	})
	return labels
}

// ExpectedConnectedPairs estimates E[cc(G)]: the expected number of
// connected unordered vertex pairs.
func (e Estimator) ExpectedConnectedPairs(g *uncertain.Graph) float64 {
	defer e.timeOp("ExpectedConnectedPairs", time.Now())
	n := e.samples()
	counts := make([]int64, n)
	e.forEachSample(g, func(i int, w *uncertain.World) {
		counts[i] = w.ConnectedPairs()
	})
	var total float64
	for _, c := range counts {
		total += float64(c)
	}
	return total / float64(n)
}

// PairReliability estimates R_{u,v}(G) (Definition 1): the probability that
// u and v are connected.
func (e Estimator) PairReliability(g *uncertain.Graph, u, v uncertain.NodeID) float64 {
	defer e.timeOp("PairReliability", time.Now())
	n := e.samples()
	hits := make([]int8, n)
	e.forEachSample(g, func(i int, w *uncertain.World) {
		if w.Components().Connected(int(u), int(v)) {
			hits[i] = 1
		}
	})
	var total float64
	for _, h := range hits {
		total += float64(h)
	}
	return total / float64(n)
}

// ReliabilityVector estimates R_{src,v} for every v against a single
// source; handy for k-nearest-neighbor style queries (cf. [30]).
func (e Estimator) ReliabilityVector(g *uncertain.Graph, src uncertain.NodeID) []float64 {
	defer e.timeOp("ReliabilityVector", time.Now())
	n := e.samples()
	labels := e.SampleLabels(g)
	out := make([]float64, g.NumNodes())
	for i := 0; i < n; i++ {
		l := labels[i]
		ls := l[src]
		for v := range out {
			if l[v] == ls {
				out[v]++
			}
		}
	}
	inv := 1 / float64(n)
	for v := range out {
		out[v] *= inv
	}
	out[src] = 1
	return out
}
