// Package reliability implements the paper's reliability machinery under
// possible-world semantics: Monte Carlo estimators for two-terminal
// reliability (Definition 1), the reliability-discrepancy utility-loss
// metric (Definition 2), and the edge/vertex reliability-relevance measures
// with the sample-reuse estimator of Algorithm 2.
package reliability

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/uncertain"
	"chameleon/internal/unionfind"
)

// DefaultSamples is the Monte Carlo sample count the paper uses throughout
// ("1000 usually suffices to achieve accuracy convergence" [30]).
const DefaultSamples = 1000

// sampleChunk is the unit of work handed to a worker: 64 consecutive
// sample indices, matching one bitset word so chunk boundaries align with
// word boundaries in any transposed layout, and coarse enough that the
// atomic claim is negligible against the per-world sampling cost.
const sampleChunk = 64

// Estimator carries the Monte Carlo configuration shared by the
// estimators in this package.
type Estimator struct {
	// Samples is the number of possible worlds drawn (N). Zero means
	// DefaultSamples.
	Samples int
	// Seed makes estimates reproducible. The same seed always draws the
	// same worlds.
	Seed uint64
	// Workers caps sampling parallelism. Zero means GOMAXPROCS.
	Workers int
	// Obs, when non-nil, receives Monte Carlo metrics: worlds sampled,
	// per-worker sample counts and per-estimator wall-time histograms.
	Obs *obs.Observer
	// Cache, when non-nil, memoizes sampled component labels across
	// estimator calls, keyed by (graph identity, graph version, samples,
	// seed, sampling mode). Safe to share between estimators.
	Cache *LabelCache
	// FastSampling switches world drawing to geometric-skip sampling of
	// low-probability edge classes. Same world distribution, different
	// world stream for a given seed: still deterministic, but estimates no
	// longer replay bit-for-bit against the default sampler.
	FastSampling bool
	// Ctx, when non-nil, cancels sampling cooperatively: workers stop
	// claiming chunks (and the serial loop stops drawing) at the next
	// sampleChunk boundary once the context is done. A cancelled call
	// still returns — with a value computed from the partial sample set,
	// which is statistically meaningless — so callers that set Ctx MUST
	// check Ctx.Err() after every estimator call and discard the result
	// when it is non-nil. Nil means no cancellation, and the hot loop pays
	// only a nil test per chunk.
	Ctx context.Context
}

// cancelled reports whether the estimator's context is done. One nil test
// on the no-context fast path.
func (e Estimator) cancelled() bool {
	return e.Ctx != nil && e.Ctx.Err() != nil
}

func (e Estimator) samples() int {
	if e.Samples <= 0 {
		return DefaultSamples
	}
	return e.Samples
}

func (e Estimator) workers() int {
	if e.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.Workers
}

// streamFor derives the PCG stream constant for sample i; with Seed it
// fully determines the RNG state that draws world i.
func (e Estimator) streamFor(i int) uint64 {
	return uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
}

// rngFor derives an independent deterministic RNG for sample i. The scratch
// fast path reproduces the exact same state via pcg.Seed(e.Seed,
// e.streamFor(i)) without the rand.Rand allocation.
func (e Estimator) rngFor(i int) *rand.Rand {
	return rand.New(rand.NewPCG(e.Seed, e.streamFor(i)))
}

// timeOp records one completed estimator operation: its wall time into a
// per-operation histogram and an invocation counter. Call it deferred with
// the operation's start time; with Obs nil it costs one pointer test.
func (e Estimator) timeOp(name string, start time.Time) {
	if e.Obs == nil {
		return
	}
	reg := e.Obs.Registry()
	reg.Counter("mc.ops." + name).Inc()
	reg.Histogram("mc.seconds."+name, obs.TimeBuckets).ObserveDuration(time.Since(start))
}

// scratch is one worker's reusable Monte Carlo state: the PCG that is
// re-seeded per sample, the world the sampler fills in place, and the
// union-find structure recycled across worlds. Pooled so steady-state
// sampling performs zero allocations.
type scratch struct {
	pcg   rand.PCG
	world uncertain.World
	dsu   *unionfind.DSU
}

// components returns the component structure of the scratch's current
// world, reusing the scratch's union-find storage.
func (sc *scratch) components() *unionfind.DSU {
	sc.dsu = sc.world.ComponentsInto(sc.dsu)
	return sc.dsu
}

// componentsPairs additionally returns the world's connected-pair count,
// computed incrementally inside the union loop.
func (sc *scratch) componentsPairs() (*unionfind.DSU, int64) {
	d, pairs := sc.world.ComponentsPairsInto(sc.dsu)
	sc.dsu = d
	return d, pairs
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// sampleFn selects the world-drawing kernel as a method expression (no
// closure allocation). Call sites keep the returned variable
// single-assignment: a reassigned variable captured by the worker
// goroutines would be heap-allocated on every forEachSample call, even
// down the serial path.
func sampleFn(fast bool) func(*uncertain.WorldSampler, *uncertain.World, *rand.PCG) {
	if fast {
		return (*uncertain.WorldSampler).SampleIntoGeometric
	}
	return (*uncertain.WorldSampler).SampleInto
}

// workerNames pre-renders the per-worker counter names so the sampling
// loop never formats strings.
var workerNames = func() (names [64]string) {
	for i := range names {
		names[i] = fmt.Sprintf("mc.worker.%02d.samples", i)
	}
	return
}()

func workerName(w int) string {
	if w < len(workerNames) {
		return workerNames[w]
	}
	return fmt.Sprintf("mc.worker.%02d.samples", w)
}

// forEachSample runs fn(sampleIndex, scratch) for N sampled worlds of g,
// fanning out over the configured workers. When fn is called, sc.world
// holds world sampleIndex; fn may use sc.components() and must not retain
// references into the scratch past its return. fn must be safe for
// concurrent invocation on distinct indices.
//
// fn returns the world's per-sample statistic (the value whose mean the
// caller is estimating); forEachSample streams it through a Welford
// accumulator — one per worker, merged once at the end — and returns the
// merged state, from which callers derive the estimator's standard error
// and confidence interval (see recordQuality). Callers with no meaningful
// per-world statistic return 0 and drop the result. The estimates
// themselves are never computed from the accumulator (its merge order is
// scheduling-dependent in the parallel case); they keep their existing
// deterministic reductions.
//
// Work is handed out in chunks of sampleChunk consecutive indices claimed
// off an atomic cursor, and each worker draws worlds into a pooled scratch,
// so the steady state allocates nothing. Metrics go through the nil-safe
// registry path: a nil Obs yields a nil registry whose instruments drop
// updates, so no call site guards.
//
// Cancellation (Estimator.Ctx) is cooperative at chunk boundaries: the
// serial loop re-tests the context every sampleChunk samples and the
// parallel workers re-test it before claiming each chunk, so a cancelled
// call drains within one chunk per worker and forEachSample returns with
// whatever was accumulated. The mc.worlds_sampled and per-worker counters
// record the worlds actually drawn (not the requested budget), so the
// sample-balance invariant sum(mc.worker.*) == mc.worlds_sampled holds on
// interrupted runs too.
func (e Estimator) forEachSample(g *uncertain.Graph, fn func(i int, sc *scratch) float64) obs.Welford {
	n := e.samples()
	reg := e.Obs.Registry()
	sampler := g.Sampler()
	sample := sampleFn(e.FastSampling)
	workers := e.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Separate accumulator from the parallel path's: that one is
		// captured by the worker closures and therefore heap-allocated;
		// this one stays on the stack, keeping the serial steady state
		// allocation-free.
		var stat obs.Welford
		sc := scratchPool.Get().(*scratch)
		i := 0
		for ; i < n; i++ {
			if i%sampleChunk == 0 && e.cancelled() {
				break
			}
			sc.pcg.Seed(e.Seed, e.streamFor(i))
			sample(sampler, &sc.world, &sc.pcg)
			stat.Add(fn(i, sc))
		}
		scratchPool.Put(sc)
		reg.Counter("mc.worlds_sampled").Add(int64(i))
		reg.Counter(workerName(0)).Add(int64(i))
		return stat
	}
	var stat obs.Welford
	var totalDrawn int64
	var mu sync.Mutex
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := scratchPool.Get().(*scratch)
			var drawn int64
			var local obs.Welford
			for !e.cancelled() {
				start := int(cursor.Add(sampleChunk)) - sampleChunk
				if start >= n {
					break
				}
				end := start + sampleChunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					sc.pcg.Seed(e.Seed, e.streamFor(i))
					sample(sampler, &sc.world, &sc.pcg)
					local.Add(fn(i, sc))
				}
				drawn += int64(end - start)
			}
			scratchPool.Put(sc)
			mu.Lock()
			stat.Merge(local)
			totalDrawn += drawn
			mu.Unlock()
			reg.Counter(workerName(w)).Add(drawn)
		}(w)
	}
	wg.Wait()
	reg.Counter("mc.worlds_sampled").Add(totalDrawn)
	return stat
}

// UndersampledRSE is the relative-standard-error threshold above which an
// estimate counts as under-sampled: the configured Monte Carlo budget left
// more than 5% relative noise on the estimate, so downstream consumers
// (the σ-search, the figure sweeps) are operating on a shaky number.
const UndersampledRSE = 0.05

// recordQuality publishes the statistical health of one completed estimate
// into the registry: the pooled per-sample stream (mean/variance/CI across
// every call), last-call standard-error and CI gauges, and the relative-SE
// convergence gauge. Estimates whose relative SE exceeds UndersampledRSE
// bump the mc.quality.undersampled counter and emit a debug log, flagging
// σ-search steps and sweep cells that ran under-budgeted. Free (one
// pointer test) with Obs nil; estimates with no spread information (fewer
// than two samples) record nothing.
//
// The accumulator must hold per-WORLD statistics (one observation per
// sampled world, the forEachSample contract) so that stderr is the Monte
// Carlo error of the estimate. Per-pair discrepancy values do not qualify
// — see recordPairSpread.
func (e Estimator) recordQuality(op string, w obs.Welford) {
	e.recordStream("mc.quality."+op, op, w, true)
}

// recordPairSpread publishes the dispersion of per-PAIR values under
// mc.pairspread.<op>. Every pair is evaluated against the SAME N sampled
// worlds, so the values are correlated and the stream's stderr/CI are NOT
// the Monte Carlo error of the estimate: for Discrepancy (all pairs) they
// are a pure dispersion diagnostic, and for SampledPairDiscrepancy they
// bound only the pair-sampling error conditional on the drawn worlds,
// excluding world-sampling noise. These streams therefore never feed the
// mc.quality.undersampled convergence flag.
func (e Estimator) recordPairSpread(op string, w obs.Welford) {
	e.recordStream("mc.pairspread."+op, op, w, false)
}

// recordStream merges the accumulator into the named quality stream and
// sets the last-call gauges. The gauge names carry a "last_" prefix so
// their sanitized /metrics forms (mc_quality_X_last_stderr, ...) never
// collide with the stream's own pooled expansion (mc_quality_X_stderr,
// ...) — a collision would duplicate metric families and abort Prometheus
// scrapes. convergence gates the under-sampled flag.
func (e Estimator) recordStream(name, op string, w obs.Welford, convergence bool) {
	if e.Obs == nil || w.Count() < 2 || e.cancelled() {
		// A cancelled estimate's accumulator covers a truncated sample set;
		// recording it would pollute the quality streams of the final
		// (interrupted) snapshot with bogus convergence data.
		return
	}
	reg := e.Obs.Registry()
	reg.Quality(name).Merge(w)
	reg.Gauge(name + ".last_stderr").Set(w.StdErr())
	lo, hi := w.CI95()
	reg.Gauge(name + ".last_ci95_lo").Set(lo)
	reg.Gauge(name + ".last_ci95_hi").Set(hi)
	rse := w.RelStdErr()
	reg.Gauge(name + ".last_rse").Set(rse)
	if convergence && rse > UndersampledRSE {
		reg.Counter("mc.quality.undersampled").Inc()
		e.Obs.Debug("mc: estimate under-sampled",
			"op", op, "rse", rse, "samples", w.Count(), "stderr", w.StdErr())
	}
}

// SampleLabels draws N worlds and returns their component-label vectors:
// labels[i][v] is the component representative of vertex v in world i.
func (e Estimator) SampleLabels(g *uncertain.Graph) [][]int32 {
	labels := make([][]int32, e.samples())
	nv := g.NumNodes()
	e.forEachSample(g, func(i int, sc *scratch) float64 {
		d := sc.components()
		row := make([]int32, nv)
		for v := range row {
			row[v] = int32(d.Find(v))
		}
		labels[i] = row
		return 0 // no scalar statistic: the label vector is the product
	})
	return labels
}

// ExpectedConnectedPairs estimates E[cc(G)]: the expected number of
// connected unordered vertex pairs.
func (e Estimator) ExpectedConnectedPairs(g *uncertain.Graph) float64 {
	defer e.timeOp("ExpectedConnectedPairs", time.Now())
	n := e.samples()
	if ls := e.cachedLabels(g); ls != nil {
		var total float64
		var w obs.Welford
		for _, c := range ls.cc {
			total += float64(c)
			w.Add(float64(c))
		}
		e.recordQuality("ExpectedConnectedPairs", w)
		return total / float64(n)
	}
	counts := make([]int64, n)
	w := e.forEachSample(g, func(i int, sc *scratch) float64 {
		_, counts[i] = sc.componentsPairs()
		return float64(counts[i])
	})
	e.recordQuality("ExpectedConnectedPairs", w)
	var total float64
	for _, c := range counts {
		total += float64(c)
	}
	return total / float64(n)
}

// PairReliability estimates R_{u,v}(G) (Definition 1): the probability that
// u and v are connected.
func (e Estimator) PairReliability(g *uncertain.Graph, u, v uncertain.NodeID) float64 {
	defer e.timeOp("PairReliability", time.Now())
	n := e.samples()
	hits := make([]int8, n)
	w := e.forEachSample(g, func(i int, sc *scratch) float64 {
		if sc.components().Connected(int(u), int(v)) {
			hits[i] = 1
			return 1
		}
		return 0
	})
	e.recordQuality("PairReliability", w)
	var total float64
	for _, h := range hits {
		total += float64(h)
	}
	return total / float64(n)
}

// ReliabilityVector estimates R_{src,v} for every v against a single
// source; handy for k-nearest-neighbor style queries (cf. [30]).
func (e Estimator) ReliabilityVector(g *uncertain.Graph, src uncertain.NodeID) []float64 {
	defer e.timeOp("ReliabilityVector", time.Now())
	n := e.samples()
	labels := e.SampleLabels(g)
	out := make([]float64, g.NumNodes())
	for i := 0; i < n; i++ {
		l := labels[i]
		if l == nil {
			break // cancelled mid-sampling: rows past the cut were never drawn
		}
		ls := l[src]
		for v := range out {
			if l[v] == ls {
				out[v]++
			}
		}
	}
	inv := 1 / float64(n)
	for v := range out {
		out[v] *= inv
	}
	out[src] = 1
	return out
}
