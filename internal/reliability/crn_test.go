package reliability

import (
	"math"
	"testing"
)

// TestCommonRandomNumbersReduceVariance documents a deliberate design
// decision: Discrepancy and SampledPairDiscrepancy sample the SAME worlds
// (same seed stream) for both graphs, so shared randomness cancels out of
// the difference |R_uv(g) - R_uv(h)| — the classic common-random-numbers
// variance reduction. Estimating each graph's reliability independently
// and differencing afterwards is substantially noisier.
func TestCommonRandomNumbersReduceVariance(t *testing.T) {
	g := randomGraph(41, 40, 90)
	h := g.Clone()
	for i := 0; i < 20; i++ {
		if err := h.SetProb(i, h.Edge(i).P/2); err != nil {
			t.Fatal(err)
		}
	}

	const reps = 12
	const samples = 150
	pairU, pairV := 1, 30

	var crn, indep []float64
	for r := uint64(0); r < reps; r++ {
		// CRN: same seed for both graphs (what the package does).
		sharedG := Estimator{Samples: samples, Seed: r}
		sharedH := Estimator{Samples: samples, Seed: r}
		crn = append(crn, sharedG.PairReliability(g, int32(pairU), int32(pairV))-
			sharedH.PairReliability(h, int32(pairU), int32(pairV)))
		// Independent streams.
		indepG := Estimator{Samples: samples, Seed: r}
		indepH := Estimator{Samples: samples, Seed: r + 10_000}
		indep = append(indep, indepG.PairReliability(g, int32(pairU), int32(pairV))-
			indepH.PairReliability(h, int32(pairU), int32(pairV)))
	}

	variance := func(xs []float64) float64 {
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		var ss float64
		for _, x := range xs {
			d := x - mean
			ss += d * d
		}
		return ss / float64(len(xs))
	}
	vCRN, vIndep := variance(crn), variance(indep)
	if math.IsNaN(vCRN) || math.IsNaN(vIndep) {
		t.Fatal("variance computation failed")
	}
	if vCRN >= vIndep {
		t.Fatalf("common random numbers should reduce variance: CRN %v vs independent %v", vCRN, vIndep)
	}
}
