package reliability

import (
	"fmt"
	"math/rand/v2"
	"time"

	"chameleon/internal/uncertain"
)

// Discrepancy estimates the reliability discrepancy Delta (Definition 2)
// between the original graph g and the perturbed graph h over ALL vertex
// pairs: sum_{u<v} |R_uv(g) - R_uv(h)|.
//
// Cost is O(N * |V|^2) label comparisons; use SampledPairDiscrepancy for
// large graphs.
func (e Estimator) Discrepancy(g, h *uncertain.Graph) (float64, error) {
	defer e.timeOp("Discrepancy", time.Now())
	if g.NumNodes() != h.NumNodes() {
		return 0, fmt.Errorf("reliability: vertex count mismatch %d vs %d", g.NumNodes(), h.NumNodes())
	}
	lg := e.SampleLabels(g)
	lh := e.SampleLabels(h)
	n := g.NumNodes()
	nInv := 1 / float64(len(lg))
	var delta float64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			var cg, ch int
			for i := range lg {
				if lg[i][u] == lg[i][v] {
					cg++
				}
				if lh[i][u] == lh[i][v] {
					ch++
				}
			}
			d := float64(cg-ch) * nInv
			if d < 0 {
				d = -d
			}
			delta += d
		}
	}
	return delta, nil
}

// PairSample configures the pair-sampled discrepancy estimator.
type PairSample struct {
	Pairs int    // number of random vertex pairs (default 20000)
	Seed  uint64 // pair-sampling seed
}

// SampledPairDiscrepancy estimates the AVERAGE per-pair reliability
// discrepancy, E_{u,v}|R_uv(g) - R_uv(h)|, from a random sample of vertex
// pairs. Multiply by |V|(|V|-1)/2 for an estimate of the total Delta.
//
// This is the estimator used by the figure benchmarks: the paper reports
// the "average reliability discrepancy" (Figure 4) which is exactly this
// per-pair mean.
func (e Estimator) SampledPairDiscrepancy(g, h *uncertain.Graph, ps PairSample) (float64, error) {
	defer e.timeOp("SampledPairDiscrepancy", time.Now())
	if g.NumNodes() != h.NumNodes() {
		return 0, fmt.Errorf("reliability: vertex count mismatch %d vs %d", g.NumNodes(), h.NumNodes())
	}
	n := g.NumNodes()
	if n < 2 {
		return 0, nil
	}
	pairs := ps.Pairs
	if pairs <= 0 {
		pairs = 20000
	}
	rng := rand.New(rand.NewPCG(ps.Seed, 0x6a09e667f3bcc909))
	us := make([]int, pairs)
	vs := make([]int, pairs)
	for i := 0; i < pairs; i++ {
		u := rng.IntN(n)
		v := rng.IntN(n - 1)
		if v >= u {
			v++
		}
		us[i], vs[i] = u, v
	}
	lg := e.SampleLabels(g)
	lh := e.SampleLabels(h)
	nInv := 1 / float64(len(lg))
	var total float64
	for i := 0; i < pairs; i++ {
		u, v := us[i], vs[i]
		var cg, ch int
		for s := range lg {
			if lg[s][u] == lg[s][v] {
				cg++
			}
			if lh[s][u] == lh[s][v] {
				ch++
			}
		}
		d := float64(cg-ch) * nInv
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total / float64(pairs), nil
}

// RelativeDiscrepancy returns the sampled per-pair discrepancy normalized
// by the original graph's mean pair reliability, giving the "ratio of
// absolute difference against the original" reported in the evaluation.
func (e Estimator) RelativeDiscrepancy(g, h *uncertain.Graph, ps PairSample) (float64, error) {
	avg, err := e.SampledPairDiscrepancy(g, h, ps)
	if err != nil {
		return 0, err
	}
	n := g.NumNodes()
	totalPairs := float64(n) * float64(n-1) / 2
	base := e.ExpectedConnectedPairs(g) / totalPairs
	if base == 0 {
		return 0, nil
	}
	return avg / base, nil
}
