package reliability

import (
	"fmt"
	"math/rand/v2"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/uncertain"
)

// pairAbsDiff returns |#connected(g) - #connected(h)| * nInv for one
// vertex pair, streaming the first m worlds of the two vertices'
// contiguous label rows. Counts are integers, so the result is independent
// of accumulation order and matches the world-major scan it replaced
// exactly (nInv is the precomputed reciprocal of m). m is the MINIMUM of
// the two labelings' counted worlds: adaptive labelings of different
// graphs may stop at different counts, and comparing index-aligned worlds
// is what keeps the coupled (common-random-numbers) modes paired.
func pairAbsDiff(lg, lh *labelSet, u, v, m int, nInv float64) float64 {
	gu, gv := lg.row(u)[:m], lg.row(v)[:m]
	hu, hv := lh.row(u)[:m], lh.row(v)[:m]
	var cg, ch int
	for s := range gu {
		if gu[s] == gv[s] {
			cg++
		}
		if hu[s] == hv[s] {
			ch++
		}
	}
	d := float64(cg-ch) * nInv
	if d < 0 {
		d = -d
	}
	return d
}

// pairWorlds is the common world count two labelings are compared over:
// the minimum of their counted worlds (they differ only when adaptive
// stopping converged at different points for the two graphs), clamped to 1
// so a cancelled empty labeling — whose result is discarded anyway — never
// divides by zero.
func pairWorlds(lg, lh *labelSet) int {
	m := lg.samples
	if lh.samples < m {
		m = lh.samples
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Discrepancy estimates the reliability discrepancy Delta (Definition 2)
// between the original graph g and the perturbed graph h over ALL vertex
// pairs: sum_{u<v} |R_uv(g) - R_uv(h)|.
//
// Labels are held vertex-major (one contiguous row of N world labels per
// vertex), so the O(|V|^2) pair loop streams two rows per graph instead of
// striding across N separate label vectors. With a Cache attached, g's
// labeling is computed once and shared across every candidate h.
//
// Cost is O(N * |V|^2) label comparisons; use SampledPairDiscrepancy for
// large graphs.
func (e Estimator) Discrepancy(g, h uncertain.View) (float64, error) {
	defer e.timeOp("Discrepancy", time.Now())
	if g.NumNodes() != h.NumNodes() {
		return 0, fmt.Errorf("reliability: vertex count mismatch %d vs %d", g.NumNodes(), h.NumNodes())
	}
	lg := e.sampleLabelsT(g)
	lh := e.sampleLabelsT(h)
	n := g.NumNodes()
	m := pairWorlds(lg, lh)
	nInv := 1 / float64(m)
	var delta float64
	var w obs.Welford
	for u := 0; u < n; u++ {
		if u&63 == 0 && e.cancelled() {
			break // partial sum: caller observes Ctx.Err() and discards
		}
		for v := u + 1; v < n; v++ {
			d := pairAbsDiff(lg, lh, u, v, m, nInv)
			delta += d
			w.Add(d)
		}
	}
	// Per-pair values share the same N worlds and are correlated, so this
	// is a spread diagnostic, not Monte Carlo error: see recordPairSpread.
	e.recordPairSpread("Discrepancy", w)
	e.releaseLabels(lg)
	e.releaseLabels(lh)
	return delta, nil
}

// PairSample configures the pair-sampled discrepancy estimator.
type PairSample struct {
	Pairs int    // number of random vertex pairs (default 20000)
	Seed  uint64 // pair-sampling seed
}

// SampledPairDiscrepancy estimates the AVERAGE per-pair reliability
// discrepancy, E_{u,v}|R_uv(g) - R_uv(h)|, from a random sample of vertex
// pairs. Multiply by |V|(|V|-1)/2 for an estimate of the total Delta.
//
// This is the estimator used by the figure benchmarks: the paper reports
// the "average reliability discrepancy" (Figure 4) which is exactly this
// per-pair mean.
func (e Estimator) SampledPairDiscrepancy(g, h uncertain.View, ps PairSample) (float64, error) {
	defer e.timeOp("SampledPairDiscrepancy", time.Now())
	if g.NumNodes() != h.NumNodes() {
		return 0, fmt.Errorf("reliability: vertex count mismatch %d vs %d", g.NumNodes(), h.NumNodes())
	}
	n := g.NumNodes()
	if n < 2 {
		return 0, nil
	}
	pairs := ps.Pairs
	if pairs <= 0 {
		pairs = 20000
	}
	rng := rand.New(rand.NewPCG(ps.Seed, 0x6a09e667f3bcc909))
	us := make([]int, pairs)
	vs := make([]int, pairs)
	for i := 0; i < pairs; i++ {
		u := rng.IntN(n)
		v := rng.IntN(n - 1)
		if v >= u {
			v++
		}
		us[i], vs[i] = u, v
	}
	lg := e.sampleLabelsT(g)
	lh := e.sampleLabelsT(h)
	m := pairWorlds(lg, lh)
	nInv := 1 / float64(m)
	var total float64
	var w obs.Welford
	for i := 0; i < pairs; i++ {
		if i&1023 == 0 && e.cancelled() {
			break // partial sum: caller observes Ctx.Err() and discards
		}
		d := pairAbsDiff(lg, lh, us[i], vs[i], m, nInv)
		total += d
		w.Add(d)
	}
	// Pairs are drawn iid, so this stream's stderr bounds the PAIR-sampling
	// error of the mean conditional on the drawn worlds; it says nothing
	// about world-sampling convergence (all pairs reuse the same N worlds),
	// hence pairspread rather than quality: see recordPairSpread.
	e.recordPairSpread("SampledPairDiscrepancy", w)
	e.releaseLabels(lg)
	e.releaseLabels(lh)
	return total / float64(pairs), nil
}

// DeltaExpectedConnectedPairs estimates E[cc(G)] - E[cc(H)] from PAIRED
// worlds: world i of both graphs is drawn at the same sample index (see
// forEachSamplePair), the per-index difference feeds the accumulator, and
// the estimate is the mean difference. Under the coupled and stratified
// modes the two draws share one uniform per common edge — common random
// numbers — so the difference's variance collapses to the contribution of
// the edges whose probabilities actually differ; adaptive stopping then
// reaches a target RSE in a fraction of the samples the independent
// two-sample estimator needs. The achieved variance-reduction factor,
// (Var cc(G) + Var cc(H)) / Var(cc(G)-cc(H)), is published as the
// mc.adaptive.vr_factor gauge (≈1 for independent draws, ≫1 under CRN).
func (e Estimator) DeltaExpectedConnectedPairs(g, h uncertain.View) (float64, error) {
	defer e.timeOp("DeltaExpectedConnectedPairs", time.Now())
	if g.NumNodes() != h.NumNodes() {
		return 0, fmt.Errorf("reliability: vertex count mismatch %d vs %d", g.NumNodes(), h.NumNodes())
	}
	limit := e.budget()
	dg := make([]float64, limit)
	dh := make([]float64, limit)
	w := e.forEachSamplePair(g, h, func(i int, scg, sch *scratch) float64 {
		_, pg := scg.componentsPairs()
		_, ph := sch.componentsPairs()
		dg[i], dh[i] = float64(pg), float64(ph)
		return float64(pg) - float64(ph)
	})
	e.recordQuality("DeltaExpectedConnectedPairs", w)
	// Deterministic reduction over the counted prefix: the parallel fixed
	// path's accumulator merge order is scheduling-dependent in its float
	// rounding, so the estimate is recomputed sequentially from the side
	// arrays, like every other estimator in this package.
	n := e.effSamples(w)
	var sum float64
	var sg, sh, sd obs.Welford
	for i := 0; i < n; i++ {
		d := dg[i] - dh[i]
		sum += d
		sg.Add(dg[i])
		sh.Add(dh[i])
		sd.Add(d)
	}
	if e.Obs != nil {
		if vd := sd.Variance(); vd > 0 {
			e.Obs.Registry().Gauge("mc.adaptive.vr_factor").Set((sg.Variance() + sh.Variance()) / vd)
		}
	}
	return sum / float64(n), nil
}

// RelativeDiscrepancy returns the sampled per-pair discrepancy normalized
// by the original graph's mean pair reliability, giving the "ratio of
// absolute difference against the original" reported in the evaluation.
// With a Cache attached, the normalization term reuses the worlds the
// discrepancy pass just sampled for g.
func (e Estimator) RelativeDiscrepancy(g, h uncertain.View, ps PairSample) (float64, error) {
	avg, err := e.SampledPairDiscrepancy(g, h, ps)
	if err != nil {
		return 0, err
	}
	n := g.NumNodes()
	totalPairs := float64(n) * float64(n-1) / 2
	base := e.ExpectedConnectedPairs(g) / totalPairs
	if base == 0 {
		return 0, nil
	}
	return avg / base, nil
}
