package reliability

import (
	"fmt"
	"math/rand/v2"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/uncertain"
)

// pairAbsDiff returns |#connected(g) - #connected(h)| * nInv for one
// vertex pair, streaming the two vertices' contiguous label rows. Counts
// are integers, so the result is independent of accumulation order and
// matches the world-major scan it replaced exactly (nInv is the same
// precomputed reciprocal of N the old scan multiplied by).
func pairAbsDiff(lg, lh *labelSet, u, v int, nInv float64) float64 {
	gu, gv := lg.row(u), lg.row(v)
	hu, hv := lh.row(u), lh.row(v)
	var cg, ch int
	for s := range gu {
		if gu[s] == gv[s] {
			cg++
		}
		if hu[s] == hv[s] {
			ch++
		}
	}
	d := float64(cg-ch) * nInv
	if d < 0 {
		d = -d
	}
	return d
}

// Discrepancy estimates the reliability discrepancy Delta (Definition 2)
// between the original graph g and the perturbed graph h over ALL vertex
// pairs: sum_{u<v} |R_uv(g) - R_uv(h)|.
//
// Labels are held vertex-major (one contiguous row of N world labels per
// vertex), so the O(|V|^2) pair loop streams two rows per graph instead of
// striding across N separate label vectors. With a Cache attached, g's
// labeling is computed once and shared across every candidate h.
//
// Cost is O(N * |V|^2) label comparisons; use SampledPairDiscrepancy for
// large graphs.
func (e Estimator) Discrepancy(g, h *uncertain.Graph) (float64, error) {
	defer e.timeOp("Discrepancy", time.Now())
	if g.NumNodes() != h.NumNodes() {
		return 0, fmt.Errorf("reliability: vertex count mismatch %d vs %d", g.NumNodes(), h.NumNodes())
	}
	lg := e.sampleLabelsT(g)
	lh := e.sampleLabelsT(h)
	n := g.NumNodes()
	nInv := 1 / float64(lg.samples)
	var delta float64
	var w obs.Welford
	for u := 0; u < n; u++ {
		if u&63 == 0 && e.cancelled() {
			break // partial sum: caller observes Ctx.Err() and discards
		}
		for v := u + 1; v < n; v++ {
			d := pairAbsDiff(lg, lh, u, v, nInv)
			delta += d
			w.Add(d)
		}
	}
	// Per-pair values share the same N worlds and are correlated, so this
	// is a spread diagnostic, not Monte Carlo error: see recordPairSpread.
	e.recordPairSpread("Discrepancy", w)
	e.releaseLabels(lg)
	e.releaseLabels(lh)
	return delta, nil
}

// PairSample configures the pair-sampled discrepancy estimator.
type PairSample struct {
	Pairs int    // number of random vertex pairs (default 20000)
	Seed  uint64 // pair-sampling seed
}

// SampledPairDiscrepancy estimates the AVERAGE per-pair reliability
// discrepancy, E_{u,v}|R_uv(g) - R_uv(h)|, from a random sample of vertex
// pairs. Multiply by |V|(|V|-1)/2 for an estimate of the total Delta.
//
// This is the estimator used by the figure benchmarks: the paper reports
// the "average reliability discrepancy" (Figure 4) which is exactly this
// per-pair mean.
func (e Estimator) SampledPairDiscrepancy(g, h *uncertain.Graph, ps PairSample) (float64, error) {
	defer e.timeOp("SampledPairDiscrepancy", time.Now())
	if g.NumNodes() != h.NumNodes() {
		return 0, fmt.Errorf("reliability: vertex count mismatch %d vs %d", g.NumNodes(), h.NumNodes())
	}
	n := g.NumNodes()
	if n < 2 {
		return 0, nil
	}
	pairs := ps.Pairs
	if pairs <= 0 {
		pairs = 20000
	}
	rng := rand.New(rand.NewPCG(ps.Seed, 0x6a09e667f3bcc909))
	us := make([]int, pairs)
	vs := make([]int, pairs)
	for i := 0; i < pairs; i++ {
		u := rng.IntN(n)
		v := rng.IntN(n - 1)
		if v >= u {
			v++
		}
		us[i], vs[i] = u, v
	}
	lg := e.sampleLabelsT(g)
	lh := e.sampleLabelsT(h)
	nInv := 1 / float64(lg.samples)
	var total float64
	var w obs.Welford
	for i := 0; i < pairs; i++ {
		if i&1023 == 0 && e.cancelled() {
			break // partial sum: caller observes Ctx.Err() and discards
		}
		d := pairAbsDiff(lg, lh, us[i], vs[i], nInv)
		total += d
		w.Add(d)
	}
	// Pairs are drawn iid, so this stream's stderr bounds the PAIR-sampling
	// error of the mean conditional on the drawn worlds; it says nothing
	// about world-sampling convergence (all pairs reuse the same N worlds),
	// hence pairspread rather than quality: see recordPairSpread.
	e.recordPairSpread("SampledPairDiscrepancy", w)
	e.releaseLabels(lg)
	e.releaseLabels(lh)
	return total / float64(pairs), nil
}

// RelativeDiscrepancy returns the sampled per-pair discrepancy normalized
// by the original graph's mean pair reliability, giving the "ratio of
// absolute difference against the original" reported in the evaluation.
// With a Cache attached, the normalization term reuses the worlds the
// discrepancy pass just sampled for g.
func (e Estimator) RelativeDiscrepancy(g, h *uncertain.Graph, ps PairSample) (float64, error) {
	avg, err := e.SampledPairDiscrepancy(g, h, ps)
	if err != nil {
		return 0, err
	}
	n := g.NumNodes()
	totalPairs := float64(n) * float64(n-1) / 2
	base := e.ExpectedConnectedPairs(g) / totalPairs
	if base == 0 {
		return 0, nil
	}
	return avg / base, nil
}
