package reliability

import (
	"math"
	"testing"
	"testing/quick"

	"chameleon/internal/exact"
	"chameleon/internal/uncertain"
)

func TestEdgeRelevanceMatchesExact(t *testing.T) {
	g := smallGraph()
	want, err := exact.EdgeReliabilityRelevance(g)
	if err != nil {
		t.Fatal(err)
	}
	est := Estimator{Samples: 30000, Seed: 3}
	got := est.EdgeRelevance(g)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.25 {
			t.Errorf("edge %d: reuse estimate %v, exact %v", i, got[i], want[i])
		}
	}
}

func TestEdgeRelevanceNaiveMatchesExact(t *testing.T) {
	g := smallGraph()
	want, err := exact.EdgeReliabilityRelevance(g)
	if err != nil {
		t.Fatal(err)
	}
	est := Estimator{Samples: 4000, Seed: 4}
	got := est.EdgeRelevanceNaive(g)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.3 {
			t.Errorf("edge %d: naive estimate %v, exact %v", i, got[i], want[i])
		}
	}
}

func TestEdgeRelevanceBridgeDominates(t *testing.T) {
	// Two dense clusters joined by one bridge (the Figure 5a motif): the
	// bridge's relevance must dwarf every intra-cluster edge.
	g := uncertain.New(8)
	for _, c := range [][]uncertain.NodeID{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				g.MustAddEdge(c[i], c[j], 0.9)
			}
		}
	}
	g.MustAddEdge(3, 4, 0.9)
	bridge := g.EdgeIndex(3, 4)
	est := Estimator{Samples: 3000, Seed: 6}
	rel := est.EdgeRelevance(g)
	for i := range rel {
		if i == bridge {
			continue
		}
		if rel[bridge] <= 2*rel[i] {
			t.Fatalf("bridge relevance %v should dominate edge %d relevance %v",
				rel[bridge], i, rel[i])
		}
	}
}

func TestEdgeRelevanceDeterministicEdges(t *testing.T) {
	// p=1 and p=0 edges exercise the conditional fallback paths.
	g := uncertain.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 0)
	g.MustAddEdge(2, 3, 0.5)
	est := Estimator{Samples: 2000, Seed: 7}
	rel := est.EdgeRelevance(g)
	for i, r := range rel {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("edge %d relevance = %v", i, r)
		}
	}
	// Edge 1-2 (p=0): making it present would connect {0,1} with {2,...}:
	// relevance must be clearly positive.
	if rel[1] < 0.5 {
		t.Fatalf("p=0 connector relevance = %v, want substantial", rel[1])
	}
}

func TestEdgeRelevanceNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 12, 18)
		est := Estimator{Samples: 200, Seed: seed}
		for _, r := range est.EdgeRelevance(g) {
			if r < 0 || math.IsNaN(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveAndReuseAgree(t *testing.T) {
	g := randomGraph(21, 10, 14)
	reuse := (Estimator{Samples: 20000, Seed: 8}).EdgeRelevance(g)
	naive := (Estimator{Samples: 3000, Seed: 9}).EdgeRelevanceNaive(g)
	for i := range reuse {
		if math.Abs(reuse[i]-naive[i]) > 0.6 {
			t.Errorf("edge %d: reuse %v vs naive %v", i, reuse[i], naive[i])
		}
	}
}

func TestVertexRelevanceAggregation(t *testing.T) {
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.25)
	edgeRel := []float64{2, 4}
	vrr := VertexRelevance(g, edgeRel)
	want := []float64{0.5 * 2, 0.5*2 + 0.25*4, 0.25 * 4}
	for v := range want {
		if math.Abs(vrr[v]-want[v]) > 1e-12 {
			t.Fatalf("VRR[%d] = %v, want %v", v, vrr[v], want[v])
		}
	}
}

func TestNormalizeToUnit(t *testing.T) {
	out := NormalizeToUnit([]float64{2, 4, 0})
	want := []float64{0.5, 1, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("NormalizeToUnit = %v", out)
		}
	}
	zero := NormalizeToUnit([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("all-zero input should stay zero, got %v", zero)
	}
	if len(NormalizeToUnit(nil)) != 0 {
		t.Fatal("nil input should give empty output")
	}
}

func TestReuseEstimatorMuchFasterThanNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	g := randomGraph(30, 60, 180)
	est := Estimator{Samples: 300, Seed: 1, Workers: 1}
	// This is the Lemma 2 vs Lemma 3 claim: the reuse estimator does one
	// pass over N worlds; the naive estimator repeats it per edge. We
	// check work, not wall-clock, by verifying both produce comparable
	// output while the bench (BenchmarkERRNaiveVsReuse) captures cost.
	reuse := est.EdgeRelevance(g)
	if len(reuse) != g.NumEdges() {
		t.Fatalf("relevance length %d != edges %d", len(reuse), g.NumEdges())
	}
}
