package reliability

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"chameleon/internal/obs"
	"chameleon/internal/uncertain"
)

func cancelTestGraph(t *testing.T) *uncertain.Graph {
	t.Helper()
	g := uncertain.New(40)
	for u := 0; u < 39; u++ {
		if err := g.AddEdge(uncertain.NodeID(u), uncertain.NodeID(u+1), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < 30; u += 3 {
		if err := g.AddEdge(uncertain.NodeID(u), uncertain.NodeID(u+5), 0.3); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestForEachSampleCancelledUpFront: a context that is already done stops
// the serial and the parallel path at the first chunk boundary, and the
// sample-balance invariant (per-worker counters sum to worlds_sampled)
// holds for the truncated run.
func TestForEachSampleCancelledUpFront(t *testing.T) {
	g := cancelTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		o := obs.NewObserver()
		est := Estimator{Samples: 2048, Seed: 9, Workers: workers, Obs: o, Ctx: ctx}
		var calls atomic.Int64
		est.forEachSample(g, func(i int, sc *scratch) float64 {
			calls.Add(1)
			return 0
		})
		if calls.Load() != 0 {
			t.Errorf("workers=%d: %d samples drawn under a pre-cancelled context, want 0", workers, calls.Load())
		}
		snap := o.Registry().Snapshot()
		var workerSum int64
		for name, v := range snap.Counters {
			if strings.HasPrefix(name, "mc.worker.") {
				workerSum += v
			}
		}
		if got := snap.Counters["mc.worlds_sampled"]; got != workerSum {
			t.Errorf("workers=%d: worlds_sampled=%d but per-worker counters sum to %d", workers, got, workerSum)
		}
	}
}

// TestForEachSampleCancelMidway: cancelling while sampling is in flight
// stops every worker at its next chunk boundary — strictly fewer worlds
// than the budget are drawn — and the counters account for exactly the
// worlds that fn saw.
func TestForEachSampleCancelMidway(t *testing.T) {
	g := cancelTestGraph(t)
	const n = 1 << 14
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		o := obs.NewObserver()
		est := Estimator{Samples: n, Seed: 9, Workers: workers, Obs: o, Ctx: ctx}
		var calls atomic.Int64
		est.forEachSample(g, func(i int, sc *scratch) float64 {
			if calls.Add(1) == 3*sampleChunk {
				cancel()
			}
			return 1
		})
		drawn := calls.Load()
		if drawn >= n {
			t.Errorf("workers=%d: cancellation did not stop sampling (drew all %d worlds)", workers, n)
		}
		if drawn < 3*sampleChunk {
			t.Errorf("workers=%d: drew %d worlds, want at least the %d before cancel", workers, drawn, 3*sampleChunk)
		}
		snap := o.Registry().Snapshot()
		if got := snap.Counters["mc.worlds_sampled"]; got != drawn {
			t.Errorf("workers=%d: worlds_sampled=%d, fn saw %d", workers, got, drawn)
		}
		var workerSum int64
		for name, v := range snap.Counters {
			if strings.HasPrefix(name, "mc.worker.") {
				workerSum += v
			}
		}
		if workerSum != drawn {
			t.Errorf("workers=%d: per-worker counters sum to %d, fn saw %d", workers, workerSum, drawn)
		}
	}
}

// TestNilContextSamplesEverything: the default (no Ctx) configuration is
// untouched by the cancellation plumbing.
func TestNilContextSamplesEverything(t *testing.T) {
	g := cancelTestGraph(t)
	est := Estimator{Samples: 300, Seed: 4, Workers: 2}
	var calls atomic.Int64
	est.forEachSample(g, func(i int, sc *scratch) float64 {
		calls.Add(1)
		return 0
	})
	if calls.Load() != 300 {
		t.Fatalf("drew %d worlds, want 300", calls.Load())
	}
}

// TestCancelledEstimateNotCached: a labeling cut short by cancellation
// must not enter the label cache, where it would poison later (resumed)
// estimator calls keyed identically.
func TestCancelledEstimateNotCached(t *testing.T) {
	g := cancelTestGraph(t)
	cache := NewLabelCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	est := Estimator{Samples: 256, Seed: 5, Cache: cache, Ctx: ctx}
	if _, err := est.Discrepancy(g, g); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatalf("cancelled labeling was cached (%d entries), want 0", cache.Len())
	}

	// The same estimator without the cancelled context fills the cache and
	// computes a clean self-discrepancy of zero.
	est.Ctx = context.Background()
	d, err := est.Discrepancy(g, g)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("self-discrepancy = %v, want 0", d)
	}
	if cache.Len() == 0 {
		t.Fatal("clean labeling was not cached")
	}
}

// TestCancelledQualityNotRecorded: cancelled estimates must not publish
// estimator-quality streams (their accumulators cover a truncated sample
// set).
func TestCancelledQualityNotRecorded(t *testing.T) {
	g := cancelTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := obs.NewObserver()
	est := Estimator{Samples: 256, Seed: 5, Obs: o, Ctx: ctx}
	est.ExpectedConnectedPairs(g)
	if q := o.Registry().Snapshot().Quality; len(q) != 0 {
		t.Fatalf("cancelled estimate recorded quality streams: %v", q)
	}
}

// TestEdgeRelevanceCancelled: EdgeRelevance under a cancelled context
// returns a discardable zero vector of the right shape instead of scanning
// uninitialized arena rows.
func TestEdgeRelevanceCancelled(t *testing.T) {
	g := cancelTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	est := Estimator{Samples: 256, Seed: 5, Ctx: ctx}
	rel := est.EdgeRelevance(g)
	if len(rel) != g.NumEdges() {
		t.Fatalf("len = %d, want %d", len(rel), g.NumEdges())
	}
	for i, v := range rel {
		if v != 0 {
			t.Fatalf("rel[%d] = %v, want 0 under cancellation", i, v)
		}
	}
}
