//go:build race

package reliability

// raceEnabled reports whether the race detector is compiled in. The
// detector's shadow-memory bookkeeping allocates, so allocation-count
// assertions are meaningless under -race and are skipped.
const raceEnabled = true
