package reliability

import "testing"

// TestForEachSampleSteadyStateAllocs enforces the tentpole guarantee: the
// steady-state sampling loop — draw world, union components, count pairs —
// performs zero allocations. Everything lives in the pooled per-worker
// scratch (PCG re-seeded in place, bitset world, recycled DSU), the
// sampler snapshot is cached on the graph, and the nil-Observer metrics
// path hands out nil instruments without allocating.
func TestForEachSampleSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; guard runs in the non-race pass")
	}
	g := randomGraph(31, 60, 140)
	est := Estimator{Samples: 64, Seed: 1, Workers: 1}
	visit := func(i int, sc *scratch) float64 { sc.componentsPairs(); return 0 }
	// Warm-up: builds the sampler snapshot, grows the pooled scratch's
	// bitset and DSU to this graph's size.
	est.forEachSample(g, visit)
	allocs := testing.AllocsPerRun(20, func() {
		est.forEachSample(g, visit)
	})
	if allocs != 0 {
		t.Fatalf("steady-state sampling allocated %v times per pass, want 0", allocs)
	}
}

// TestForEachSampleWorkerIndependence: the chunked parallel scheduler must
// produce results identical to the serial loop for any worker count —
// world i is always drawn from RNG state (Seed, streamFor(i)) regardless
// of which worker claims it.
func TestForEachSampleWorkerIndependence(t *testing.T) {
	g := randomGraph(37, 50, 110)
	collect := func(workers int) []int64 {
		est := Estimator{Samples: 130, Seed: 3, Workers: workers}
		out := make([]int64, est.samples())
		est.forEachSample(g, func(i int, sc *scratch) float64 {
			_, out[i] = sc.componentsPairs()
			return float64(out[i])
		})
		return out
	}
	serial := collect(1)
	for _, workers := range []int{2, 4, 7} {
		got := collect(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: world %d has %d connected pairs, serial drew %d",
					workers, i, got[i], serial[i])
			}
		}
	}
}
