package reliability

import (
	"math"
	"testing"

	"chameleon/internal/obs"
)

// TestQualityRecorded: every estimator op must publish its statistical
// health — pooled per-sample stream, last-call stderr/CI gauges and the
// relative-SE convergence gauge — into the registry.
func TestQualityRecorded(t *testing.T) {
	g := randomGraph(11, 40, 90)
	h := randomGraph(12, 40, 88)
	o := obs.NewObserver()
	est := Estimator{Samples: 200, Seed: 5, Workers: 2, Obs: o}

	ecc := est.ExpectedConnectedPairs(g)
	est.PairReliability(g, 0, 7)
	est.EdgeRelevance(g)
	if _, err := est.SampledPairDiscrepancy(g, h, PairSample{Pairs: 500, Seed: 3}); err != nil {
		t.Fatal(err)
	}

	snap := o.Registry().Snapshot()
	for _, op := range []string{
		"mc.quality.ExpectedConnectedPairs",
		"mc.quality.PairReliability",
		"mc.quality.EdgeRelevance",
		// Per-pair discrepancy values are correlated across the shared
		// worlds, so they publish as pairspread, not quality.
		"mc.pairspread.SampledPairDiscrepancy",
	} {
		q, ok := snap.Quality[op]
		if !ok {
			t.Errorf("missing quality stream %s: %v", op, snap.Quality)
			continue
		}
		if q.Count < 2 {
			t.Errorf("%s: count = %d, want >= 2", op, q.Count)
		}
		if q.CI95Lo > q.Mean || q.CI95Hi < q.Mean {
			t.Errorf("%s: CI [%v, %v] does not bracket mean %v", op, q.CI95Lo, q.CI95Hi, q.Mean)
		}
		for _, gauge := range []string{".last_stderr", ".last_ci95_lo", ".last_ci95_hi", ".last_rse"} {
			if _, ok := snap.Gauges[op+gauge]; !ok {
				t.Errorf("missing gauge %s%s", op, gauge)
			}
		}
	}
	if _, ok := snap.Quality["mc.quality.SampledPairDiscrepancy"]; ok {
		t.Error("per-pair discrepancy leaked into the mc.quality namespace")
	}

	// The ExpectedConnectedPairs stream's mean is the estimate itself
	// (both are means over the same drawn worlds).
	q := snap.Quality["mc.quality.ExpectedConnectedPairs"]
	if math.Abs(q.Mean-ecc) > 1e-9*math.Abs(ecc) {
		t.Errorf("quality mean %v != estimate %v", q.Mean, ecc)
	}

	// Per-edge ERR standard-error aggregates from the σ-search precompute.
	if snap.Gauges["err.stderr.mean"] <= 0 || snap.Gauges["err.stderr.max"] < snap.Gauges["err.stderr.mean"] {
		t.Errorf("ERR stderr gauges implausible: mean=%v max=%v",
			snap.Gauges["err.stderr.mean"], snap.Gauges["err.stderr.max"])
	}
}

// TestQualityCachedPathRecorded: an ExpectedConnectedPairs call served
// from the label cache must still publish quality (from the cached cc
// stream) — the CI report cannot silently vanish when caching kicks in.
func TestQualityCachedPathRecorded(t *testing.T) {
	g := randomGraph(21, 35, 70)
	o := obs.NewObserver()
	est := Estimator{Samples: 150, Seed: 9, Obs: o, Cache: NewLabelCache()}
	if _, err := est.Discrepancy(g, g); err != nil { // populates the cache for g
		t.Fatal(err)
	}
	before := o.Registry().Snapshot().Quality["mc.quality.ExpectedConnectedPairs"].Count
	est.ExpectedConnectedPairs(g) // cache hit
	after := o.Registry().Snapshot().Quality["mc.quality.ExpectedConnectedPairs"].Count
	if after != before+150 {
		t.Errorf("cached-path call added %d quality observations, want 150", after-before)
	}
}

// TestQualityNilObserver: the nil-disables-everything contract — estimates
// are bit-identical with and without an observer, and the nil path records
// nothing and does not panic.
func TestQualityNilObserver(t *testing.T) {
	g := randomGraph(31, 40, 85)
	h := randomGraph(32, 40, 80)
	withObs := Estimator{Samples: 120, Seed: 4, Obs: obs.NewObserver()}
	without := Estimator{Samples: 120, Seed: 4}

	if a, b := withObs.ExpectedConnectedPairs(g), without.ExpectedConnectedPairs(g); a != b {
		t.Errorf("ExpectedConnectedPairs differs with observer: %v vs %v", a, b)
	}
	if a, b := withObs.PairReliability(g, 1, 5), without.PairReliability(g, 1, 5); a != b {
		t.Errorf("PairReliability differs with observer: %v vs %v", a, b)
	}
	ra, rb := withObs.EdgeRelevance(g), without.EdgeRelevance(g)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("EdgeRelevance[%d] differs with observer: %v vs %v", i, ra[i], rb[i])
		}
	}
	da, err := withObs.SampledPairDiscrepancy(g, h, PairSample{Pairs: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	db, err := without.SampledPairDiscrepancy(g, h, PairSample{Pairs: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Errorf("SampledPairDiscrepancy differs with observer: %v vs %v", da, db)
	}
}

// TestUndersampledFlagged: a tiny sample budget on a high-variance
// statistic must trip the relative-SE convergence flag.
func TestUndersampledFlagged(t *testing.T) {
	g := randomGraph(41, 60, 75) // sparse: cc varies a lot across worlds
	o := obs.NewObserver()
	est := Estimator{Samples: 4, Seed: 2, Obs: o}
	est.ExpectedConnectedPairs(g)
	snap := o.Registry().Snapshot()
	rse := snap.Gauges["mc.quality.ExpectedConnectedPairs.last_rse"]
	if rse <= UndersampledRSE {
		t.Skipf("4-sample estimate happened to converge (rse=%v); nothing to flag", rse)
	}
	if snap.Counters["mc.quality.undersampled"] == 0 {
		t.Errorf("rse=%v above threshold but undersampled counter not bumped", rse)
	}
}

// TestPairSpreadNotConvergence: the pairspread streams measure per-pair
// spread over a shared world sample, not Monte Carlo error, so they must
// never trip the mc.quality.undersampled convergence flag — however noisy
// the per-pair values are.
func TestPairSpreadNotConvergence(t *testing.T) {
	g := randomGraph(61, 50, 70)
	h := randomGraph(62, 50, 65)
	o := obs.NewObserver()
	est := Estimator{Samples: 100, Seed: 6, Obs: o}
	if _, err := est.SampledPairDiscrepancy(g, h, PairSample{Pairs: 200, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	snap := o.Registry().Snapshot()
	q, ok := snap.Quality["mc.pairspread.SampledPairDiscrepancy"]
	if !ok || q.Count != 200 {
		t.Fatalf("pairspread stream = %+v (ok=%v), want 200 observations", q, ok)
	}
	if rse := snap.Gauges["mc.pairspread.SampledPairDiscrepancy.last_rse"]; rse > UndersampledRSE {
		if snap.Counters["mc.quality.undersampled"] != 0 {
			t.Errorf("pairspread rse=%v bumped the undersampled convergence counter", rse)
		}
	} else {
		t.Logf("pairspread rse=%v below threshold; counter check vacuous", rse)
	}
}

// TestQualityMergeAcrossWorkers: the per-worker Welford partials must
// merge into the same moments the serial path accumulates, up to
// floating-point reassociation.
func TestQualityMergeAcrossWorkers(t *testing.T) {
	g := randomGraph(51, 45, 100)
	stats := func(workers int) obs.QualitySnapshot {
		o := obs.NewObserver()
		est := Estimator{Samples: 256, Seed: 8, Workers: workers, Obs: o}
		est.ExpectedConnectedPairs(g)
		return o.Registry().Snapshot().Quality["mc.quality.ExpectedConnectedPairs"]
	}
	serial := stats(1)
	for _, workers := range []int{2, 5} {
		par := stats(workers)
		if par.Count != serial.Count {
			t.Fatalf("workers=%d: count %d != %d", workers, par.Count, serial.Count)
		}
		if math.Abs(par.Mean-serial.Mean) > 1e-9*math.Abs(serial.Mean) {
			t.Errorf("workers=%d: mean %v != %v", workers, par.Mean, serial.Mean)
		}
		if math.Abs(par.Variance-serial.Variance) > 1e-6*serial.Variance {
			t.Errorf("workers=%d: variance %v != %v", workers, par.Variance, serial.Variance)
		}
	}
}
