package reliability

import (
	"math"
	"sync"
	"time"

	"chameleon/internal/uncertain"
)

// labelKey identifies one immutable Monte Carlo labeling: the graph
// snapshot (pointer identity plus mutation version, so in-place edits
// invalidate) and everything that determines the drawn worlds — the full
// sampling-mode tuple (mode, fast path, seed, fixed budget, and the
// adaptive target/cap, which together determine the effective sample count
// since the stopping rule is a deterministic function of the drawn
// stream). Workers does not participate: the worlds, labels and stopping
// point are identical however sampling is scheduled.
type labelKey struct {
	// g is the view's identity. Both implementations (*uncertain.Graph,
	// *uncertain.CSR) are pointers, so the interface value is comparable
	// and hashes by identity, which is exactly the snapshot semantics the
	// version field extends.
	g          uncertain.View
	version    uint64
	samples    int
	seed       uint64
	fast       bool
	mode       uncertain.SamplingMode
	targetRSE  uint64 // math.Float64bits of TargetRSE (0 = fixed budget)
	maxSamples int    // adaptive cap; 0 outside adaptive mode
}

// labelSet is a transposed component-label matrix over N sampled worlds:
// lab[v*stride+s] is vertex v's component representative in world s, so
// one vertex's labels across all worlds are contiguous — the layout the
// discrepancy pair loop streams over. cc[s] is world s's connected-pair
// count, carried alongside so discrepancy and expected-connectivity calls
// share one sampling pass. stride is the allocated row width (the sampling
// budget); samples <= stride is the count that actually fed the estimate —
// adaptive runs truncate to the stopping point without reshaping the
// matrix.
type labelSet struct {
	n       int
	samples int
	stride  int
	lab     []int32
	cc      []int64
}

// row returns vertex v's labels across the counted sampled worlds.
func (ls *labelSet) row(v int) []int32 {
	return ls.lab[v*ls.stride : v*ls.stride+ls.samples]
}

// grow resizes the matrix for n vertices and `samples` worlds, reusing
// capacity. Every counted cell is overwritten by the sampling pass, so no
// zeroing.
func (ls *labelSet) grow(n, samples int) {
	ls.n, ls.samples, ls.stride = n, samples, samples
	if need := n * samples; cap(ls.lab) < need {
		ls.lab = make([]int32, need)
	} else {
		ls.lab = ls.lab[:need]
	}
	if cap(ls.cc) < samples {
		ls.cc = make([]int64, samples)
	} else {
		ls.cc = ls.cc[:samples]
	}
}

// truncate narrows the counted world range to the adaptive stopping point:
// rows keep their allocated stride, but row() and cc expose only the
// contiguous prefix the stopping rule accepted.
func (ls *labelSet) truncate(worlds int) {
	if worlds < ls.samples {
		ls.samples = worlds
		ls.cc = ls.cc[:worlds]
	}
}

// labelSetPool recycles label matrices for estimators running without a
// cache, where the matrices would otherwise be per-call garbage (hundreds
// of KB each on the bench graphs).
var labelSetPool = sync.Pool{New: func() any { return new(labelSet) }}

// labelCacheCap bounds the number of retained label sets. Each entry is
// O(|V|·N) int32s; the sweep working set is one original graph labeling
// plus a handful of obfuscated candidates, so a small LRU suffices.
const labelCacheCap = 8

// LabelCache memoizes sampled component labels across estimator calls.
// The σ-search and the evaluation sweep both resample the *original* graph
// for every candidate comparison; with a shared cache that graph is
// sampled and labeled once per (samples, seed) configuration and every
// subsequent Discrepancy/SampledPairDiscrepancy/ExpectedConnectedPairs
// call against it is a lookup.
//
// Entries are invalidated by the graph version embedded in the key: any
// AddEdge/SetProb bumps the version, so stale labelings are simply never
// hit again and age out of the LRU. A LabelCache is safe for concurrent
// use.
type LabelCache struct {
	mu      sync.Mutex
	entries map[labelKey]*labelSet
	order   []labelKey // recency order, least recently used first
}

// NewLabelCache returns an empty label cache.
func NewLabelCache() *LabelCache {
	return &LabelCache{entries: make(map[labelKey]*labelSet)}
}

func (c *LabelCache) get(k labelKey) *labelSet {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ls, ok := c.entries[k]
	if !ok {
		return nil
	}
	// LRU touch: move k to the back so a hot entry — the original graph,
	// re-queried for every candidate of a search or sweep — survives the
	// churn of single-use candidate labelings.
	for i, cur := range c.order {
		if cur == k {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = k
			break
		}
	}
	return ls
}

func (c *LabelCache) put(k labelKey, ls *labelSet) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return
	}
	for len(c.order) >= labelCacheCap {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[k] = ls
	c.order = append(c.order, k)
}

// Len returns the number of cached label sets.
func (c *LabelCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (e Estimator) labelKeyFor(g uncertain.View) labelKey {
	k := labelKey{g: g, version: g.Version(), samples: e.samples(), seed: e.Seed,
		fast: e.FastSampling, mode: e.Mode}
	if e.adaptive() {
		k.targetRSE = math.Float64bits(e.TargetRSE)
		k.maxSamples = e.maxSamples()
	}
	return k
}

// cachedLabels returns the memoized label set for g under this estimator
// configuration, or nil when absent (or no cache is attached). It never
// computes.
func (e Estimator) cachedLabels(g uncertain.View) *labelSet {
	if e.Cache == nil {
		return nil
	}
	ls := e.Cache.get(e.labelKeyFor(g))
	if ls != nil {
		e.Obs.Registry().Counter("mc.label_cache.hits").Inc()
	}
	return ls
}

// sampleLabelsT returns the transposed label matrix for g, from the cache
// when possible, sampling (and, with a cache attached, storing) otherwise.
// The label values are exactly those of SampleLabels for the same
// configuration; only the layout differs.
func (e Estimator) sampleLabelsT(g uncertain.View) *labelSet {
	if ls := e.cachedLabels(g); ls != nil {
		return ls
	}
	nv := g.NumNodes()
	ns := e.budget()
	var ls *labelSet
	if e.Cache == nil {
		ls = labelSetPool.Get().(*labelSet)
	} else {
		ls = new(labelSet)
	}
	ls.grow(nv, ns)
	w := e.forEachSample(g, func(i int, sc *scratch) float64 {
		d, pairs := sc.componentsPairs()
		ls.cc[i] = pairs
		lab := ls.lab
		for v := 0; v < nv; v++ {
			lab[v*ns+i] = int32(d.Find(v))
		}
		return float64(pairs)
	})
	if e.adaptive() {
		ls.truncate(e.effSamples(w))
	}
	if e.Cache != nil {
		if e.cancelled() {
			// A labeling cut short by cancellation holds uninitialized
			// cells; caching it would poison later (resumed) calls in the
			// same process. The caller discards it via Ctx.Err().
			return ls
		}
		e.Obs.Registry().Counter("mc.label_cache.misses").Inc()
		e.Cache.put(e.labelKeyFor(g), ls)
	}
	return ls
}

// WarmCache samples and memoizes g's component labels under this
// estimator's configuration, so subsequent cache-routed calls
// (PairReliability, ReliabilityVector, ExpectedConnectedPairs,
// Discrepancy) are pure lookups. The query plane calls it once at
// startup to keep the sampling cost off the first request's latency.
// No-op without a Cache; a cancelled warm-up (Estimator.Ctx) leaves the
// cache unpopulated.
func (e Estimator) WarmCache(g uncertain.View) {
	if e.Cache == nil {
		return
	}
	defer e.timeOp("WarmCache", time.Now())
	e.sampleLabelsT(g)
}

// releaseLabels hands an uncached label set back to the pool once a caller
// is done streaming it. With a cache attached the set is owned by the
// cache and retained for future hits, so release is a no-op.
func (e Estimator) releaseLabels(ls *labelSet) {
	if e.Cache == nil {
		labelSetPool.Put(ls)
	}
}
