package reliability

import (
	"math"
	"testing"

	"chameleon/internal/exact"
)

func TestDiscrepancyIdenticalGraphs(t *testing.T) {
	g := smallGraph()
	est := Estimator{Samples: 500, Seed: 1}
	d, err := est.Discrepancy(g, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("Discrepancy(g, g) = %v, want 0 (same seed samples the same worlds)", d)
	}
}

func TestDiscrepancyMatchesExact(t *testing.T) {
	g := smallGraph()
	h := g.Clone()
	if err := h.SetProb(0, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := h.SetProb(3, 0.9); err != nil {
		t.Fatal(err)
	}
	want, err := exact.Discrepancy(g, h)
	if err != nil {
		t.Fatal(err)
	}
	est := Estimator{Samples: 30000, Seed: 2}
	got, err := est.Discrepancy(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.25 {
		t.Fatalf("MC discrepancy %v, exact %v", got, want)
	}
}

func TestDiscrepancyNodeMismatch(t *testing.T) {
	g := smallGraph()
	h := randomGraph(1, 7, 5)
	if _, err := (Estimator{Samples: 10}).Discrepancy(g, h); err == nil {
		t.Fatal("mismatched vertex counts should error")
	}
	if _, err := (Estimator{Samples: 10}).SampledPairDiscrepancy(g, h, PairSample{}); err == nil {
		t.Fatal("mismatched vertex counts should error (sampled)")
	}
}

func TestSampledPairDiscrepancyApproximatesFull(t *testing.T) {
	g := randomGraph(11, 60, 150)
	h := g.Clone()
	for i := 0; i < 30; i++ {
		if err := h.SetProb(i, 1-h.Edge(i).P); err != nil {
			t.Fatal(err)
		}
	}
	est := Estimator{Samples: 800, Seed: 5}
	full, err := est.Discrepancy(g, h)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	perPairFull := full / (float64(n) * float64(n-1) / 2)
	sampled, err := est.SampledPairDiscrepancy(g, h, PairSample{Pairs: 40000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if perPairFull == 0 {
		t.Fatal("expected a nonzero discrepancy in this setup")
	}
	if math.Abs(sampled-perPairFull)/perPairFull > 0.15 {
		t.Fatalf("sampled per-pair %v, full per-pair %v", sampled, perPairFull)
	}
}

func TestSampledPairDiscrepancyTinyGraph(t *testing.T) {
	g := randomGraph(12, 1, 0)
	h := g.Clone()
	est := Estimator{Samples: 10, Seed: 1}
	d, err := est.SampledPairDiscrepancy(g, h, PairSample{Pairs: 10})
	if err != nil || d != 0 {
		t.Fatalf("single-node graph: d=%v err=%v", d, err)
	}
}

func TestSampledPairsNeverSelfPairs(t *testing.T) {
	// Implicitly verified by the estimator being finite and stable on a
	// 2-node graph where the only valid pair is (0,1).
	g := randomGraph(13, 2, 1)
	h := g.Clone()
	if err := h.SetProb(0, 0); err != nil {
		t.Fatal(err)
	}
	est := Estimator{Samples: 4000, Seed: 9}
	d, err := est.SampledPairDiscrepancy(g, h, PairSample{Pairs: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := g.Edge(0).P // R drops from p to 0 for the only pair
	if math.Abs(d-want) > 0.05 {
		t.Fatalf("2-node discrepancy %v, want ~%v", d, want)
	}
}

func TestRelativeDiscrepancy(t *testing.T) {
	g := smallGraph()
	est := Estimator{Samples: 2000, Seed: 7}
	rel, err := est.RelativeDiscrepancy(g, g.Clone(), PairSample{Pairs: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel != 0 {
		t.Fatalf("relative discrepancy of identical graphs = %v, want 0", rel)
	}
	// Zeroing a bridge must create a positive relative discrepancy.
	h := g.Clone()
	if err := h.SetProb(5, 0); err != nil { // edge 4-5, the only route to 5
		t.Fatal(err)
	}
	rel2, err := est.RelativeDiscrepancy(g, h, PairSample{Pairs: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel2 <= 0 {
		t.Fatalf("bridge removal should be visible, got %v", rel2)
	}
}

func TestRelativeDiscrepancyEmptyBase(t *testing.T) {
	// A graph with zero-probability edges has zero base reliability; the
	// ratio convention returns 0.
	g := randomGraph(14, 5, 3)
	for i := 0; i < g.NumEdges(); i++ {
		if err := g.SetProb(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	est := Estimator{Samples: 50, Seed: 1}
	rel, err := est.RelativeDiscrepancy(g, g.Clone(), PairSample{Pairs: 100})
	if err != nil || rel != 0 {
		t.Fatalf("rel=%v err=%v, want 0, nil", rel, err)
	}
}
