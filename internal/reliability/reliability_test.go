package reliability

import (
	"math"
	"math/rand/v2"
	"testing"

	"chameleon/internal/exact"
	"chameleon/internal/uncertain"
)

// smallGraph builds a fixed 6-node test graph with mixed probabilities.
func smallGraph() *uncertain.Graph {
	g := uncertain.New(6)
	g.MustAddEdge(0, 1, 0.9)
	g.MustAddEdge(1, 2, 0.5)
	g.MustAddEdge(2, 3, 0.7)
	g.MustAddEdge(3, 4, 0.2)
	g.MustAddEdge(0, 2, 0.3)
	g.MustAddEdge(4, 5, 0.8)
	return g
}

func randomGraph(seed uint64, n, m int) *uncertain.Graph {
	rng := rand.New(rand.NewPCG(seed, 77))
	g := uncertain.New(n)
	for g.NumEdges() < m {
		u := uncertain.NodeID(rng.IntN(n))
		v := uncertain.NodeID(rng.IntN(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, rng.Float64())
	}
	return g
}

func TestEstimatorDefaults(t *testing.T) {
	var e Estimator
	if e.samples() != DefaultSamples {
		t.Fatalf("default samples = %d, want %d", e.samples(), DefaultSamples)
	}
	if e.workers() < 1 {
		t.Fatal("workers must be at least 1")
	}
}

func TestExpectedConnectedPairsMatchesExact(t *testing.T) {
	g := smallGraph()
	want, err := exact.ExpectedConnectedPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	est := Estimator{Samples: 20000, Seed: 1}
	got := est.ExpectedConnectedPairs(g)
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("MC E[cc] = %v, exact = %v", got, want)
	}
}

func TestPairReliabilityMatchesExact(t *testing.T) {
	g := smallGraph()
	est := Estimator{Samples: 20000, Seed: 2}
	for _, pair := range [][2]uncertain.NodeID{{0, 1}, {0, 3}, {0, 5}, {2, 4}} {
		want, err := exact.PairReliability(g, pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		got := est.PairReliability(g, pair[0], pair[1])
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("R(%d,%d): MC %v, exact %v", pair[0], pair[1], got, want)
		}
	}
}

func TestEstimatorDeterministicAcrossWorkers(t *testing.T) {
	g := randomGraph(5, 40, 100)
	serial := Estimator{Samples: 200, Seed: 9, Workers: 1}
	parallel := Estimator{Samples: 200, Seed: 9, Workers: 8}
	if a, b := serial.ExpectedConnectedPairs(g), parallel.ExpectedConnectedPairs(g); a != b {
		t.Fatalf("serial %v != parallel %v — estimates must not depend on worker count", a, b)
	}
	la := serial.SampleLabels(g)
	lb := parallel.SampleLabels(g)
	for i := range la {
		for v := range la[i] {
			if la[i][v] != lb[i][v] {
				t.Fatal("sampled worlds must not depend on worker count")
			}
		}
	}
}

func TestEstimatorDeterministicPerSeed(t *testing.T) {
	g := randomGraph(6, 30, 60)
	e := Estimator{Samples: 100, Seed: 4}
	if a, b := e.ExpectedConnectedPairs(g), e.ExpectedConnectedPairs(g); a != b {
		t.Fatal("same seed must give the same estimate")
	}
	e2 := Estimator{Samples: 100, Seed: 5}
	if a, b := e.ExpectedConnectedPairs(g), e2.ExpectedConnectedPairs(g); a == b {
		t.Log("different seeds coincided (possible but unlikely); not failing")
	}
}

func TestReliabilityVector(t *testing.T) {
	g := smallGraph()
	est := Estimator{Samples: 10000, Seed: 3}
	vec := est.ReliabilityVector(g, 0)
	if vec[0] != 1 {
		t.Fatalf("self reliability = %v, want 1", vec[0])
	}
	for v := 1; v < 6; v++ {
		want, err := exact.PairReliability(g, 0, uncertain.NodeID(v))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vec[v]-want) > 0.03 {
			t.Fatalf("vec[%d] = %v, exact %v", v, vec[v], want)
		}
	}
}

func TestSampleLabelsShape(t *testing.T) {
	g := smallGraph()
	est := Estimator{Samples: 7, Seed: 1}
	labels := est.SampleLabels(g)
	if len(labels) != 7 {
		t.Fatalf("got %d label vectors, want 7", len(labels))
	}
	for _, l := range labels {
		if len(l) != g.NumNodes() {
			t.Fatalf("label vector length %d, want %d", len(l), g.NumNodes())
		}
	}
}

func TestMCConvergence(t *testing.T) {
	// The MC error must shrink with the sample count (compare 100 vs
	// 10000 samples against the exact value).
	g := smallGraph()
	want, err := exact.ExpectedConnectedPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	var errSmall, errBig float64
	for trial := 0; trial < 5; trial++ {
		small := Estimator{Samples: 50, Seed: uint64(trial)}
		big := Estimator{Samples: 8000, Seed: uint64(trial)}
		errSmall += math.Abs(small.ExpectedConnectedPairs(g) - want)
		errBig += math.Abs(big.ExpectedConnectedPairs(g) - want)
	}
	if errBig >= errSmall {
		t.Fatalf("larger sample budget should be more accurate: err(50)=%v err(8000)=%v", errSmall, errBig)
	}
}
