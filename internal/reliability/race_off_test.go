//go:build !race

package reliability

const raceEnabled = false
