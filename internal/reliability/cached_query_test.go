package reliability

import (
	"testing"

	"chameleon/internal/obs"
	"chameleon/internal/uncertain"
)

// TestPairReliabilityCachedParity: with a LabelCache attached the
// fixed-budget estimate must match the uncached path bit-for-bit (same
// seed draws the same worlds; labels encode the same connectivity), and
// repeated calls must be served from the cache without resampling.
func TestPairReliabilityCachedParity(t *testing.T) {
	g := randomGraph(3, 40, 120)
	o := obs.NewObserver()
	plain := Estimator{Samples: 600, Seed: 11, Workers: 2}
	cached := Estimator{Samples: 600, Seed: 11, Workers: 2, Cache: NewLabelCache(), Obs: o}

	pairs := [][2]uncertain.NodeID{{0, 1}, {5, 17}, {2, 39}, {12, 12}}
	for _, p := range pairs {
		want := plain.PairReliability(g, p[0], p[1])
		got := cached.PairReliability(g, p[0], p[1])
		if got != want {
			t.Fatalf("PairReliability(%d,%d) cached = %v, uncached = %v", p[0], p[1], got, want)
		}
	}
	snap := o.Registry().Snapshot()
	// First call misses and samples; the rest are label-matrix lookups.
	if snap.Counters["mc.label_cache.misses"] != 1 {
		t.Fatalf("misses = %d, want 1", snap.Counters["mc.label_cache.misses"])
	}
	if snap.Counters["mc.label_cache.hits"] != int64(len(pairs)-1) {
		t.Fatalf("hits = %d, want %d", snap.Counters["mc.label_cache.hits"], len(pairs)-1)
	}
	if ops := snap.Counters["mc.ops.PairReliability"]; ops != int64(len(pairs)) {
		t.Fatalf("mc.ops.PairReliability = %d, want %d", ops, len(pairs))
	}
	if lat := snap.Latencies["mc.latency.PairReliability"]; lat.Count != int64(len(pairs)) {
		t.Fatalf("latency count = %d, want %d", lat.Count, len(pairs))
	}
}

// TestReliabilityVectorCachedParity: the cache-routed vector equals the
// uncached one for every target, and a warmed cache serves it without
// further sampling.
func TestReliabilityVectorCachedParity(t *testing.T) {
	g := randomGraph(7, 30, 80)
	o := obs.NewObserver()
	plain := Estimator{Samples: 400, Seed: 5}
	cached := Estimator{Samples: 400, Seed: 5, Cache: NewLabelCache(), Obs: o}

	cached.WarmCache(g)
	base := o.Registry().Snapshot().Counters["mc.worlds_sampled"]
	if base == 0 {
		t.Fatal("WarmCache sampled nothing")
	}

	want := plain.ReliabilityVector(g, 4)
	got := cached.ReliabilityVector(g, 4)
	if len(got) != len(want) {
		t.Fatalf("vector length %d vs %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("R[%d] cached = %v, uncached = %v", v, got[v], want[v])
		}
	}
	if got[4] != 1 {
		t.Fatal("self-reliability must be 1")
	}
	after := o.Registry().Snapshot().Counters["mc.worlds_sampled"]
	if after != base {
		t.Fatalf("cached ReliabilityVector resampled: worlds %d -> %d", base, after)
	}
}

// TestWarmCacheNoop: without a cache WarmCache does nothing (and must
// not panic or pollute the pool with a retained label set).
func TestWarmCacheNoop(t *testing.T) {
	g := smallGraph()
	o := obs.NewObserver()
	e := Estimator{Samples: 64, Seed: 1, Obs: o}
	e.WarmCache(g)
	if n := o.Registry().Snapshot().Counters["mc.worlds_sampled"]; n != 0 {
		t.Fatalf("cache-less WarmCache sampled %d worlds", n)
	}
}
