package atomicfile

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := Write(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := Write(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("content = %q, want %q", got, "new")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.json")
	in := map[string]float64{"sigma": 0.1234567890123456789, "eps": 0.05}
	if err := WriteJSON(path, in); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]float64
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	// encoding/json float64 round-trips must be bit-exact: the checkpoint
	// determinism argument depends on it.
	for k, v := range in {
		if out[k] != v {
			t.Fatalf("%s = %v, want %v", k, out[k], v)
		}
	}
}

func TestWriteMissingDir(t *testing.T) {
	if err := Write(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}
