package atomicfile

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// noTempLeft asserts the destination directory holds no abandoned temp
// files — every failure path must clean up after itself.
func noTempLeft(t *testing.T, path string) {
	t.Helper()
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

// wantOriginal asserts path still holds exactly its pre-failure content.
func wantOriginal(t *testing.T, path, content string) {
	t.Helper()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != content {
		t.Fatalf("original corrupted: %q, want %q", got, content)
	}
}

// TestPartialWriteLeavesOriginalIntact simulates a crash mid-payload: the
// write seam stores half the bytes and then fails, as a full disk or a
// kill during a large checkpoint would. The destination must still be the
// complete previous version, byte for byte.
func TestPartialWriteLeavesOriginalIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := Write(path, []byte("complete-old-state")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	writeFile = func(f *os.File, data []byte) (int, error) {
		n, _ := f.Write(data[:len(data)/2]) // torn write hits the temp file only
		return n, boom
	}
	t.Cleanup(func() { writeFile = (*os.File).Write })

	err := Write(path, []byte("new-state-that-never-lands"))
	if !errors.Is(err, boom) {
		t.Fatalf("Write error = %v, want the injected write failure", err)
	}
	wantOriginal(t, path, "complete-old-state")
	noTempLeft(t, path)
}

// TestSyncErrorSurfaces: an fsync failure means the new bytes may not be
// durable, so Write must fail (never rename) and report the cause.
func TestSyncErrorSurfaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := Write(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("fsync: I/O error")
	syncFile = func(*os.File) error { return boom }
	t.Cleanup(func() { syncFile = (*os.File).Sync })

	err := Write(path, []byte("new"))
	if !errors.Is(err, boom) {
		t.Fatalf("Write error = %v, want the injected sync failure", err)
	}
	wantOriginal(t, path, "old")
	noTempLeft(t, path)
}

// TestCloseErrorSurfaces: close is where delayed write errors surface on
// some filesystems (NFS famously), so it must fail the operation too.
func TestCloseErrorSurfaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := Write(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("close: deferred write error")
	closeFile = func(f *os.File) error {
		f.Close() // release the descriptor so the temp file can be removed
		return boom
	}
	t.Cleanup(func() { closeFile = (*os.File).Close })

	err := Write(path, []byte("new"))
	if !errors.Is(err, boom) {
		t.Fatalf("Write error = %v, want the injected close failure", err)
	}
	wantOriginal(t, path, "old")
	noTempLeft(t, path)
}

// TestRenameErrorSurfaces: a failed rename leaves the original in place
// and removes the orphaned temp file.
func TestRenameErrorSurfaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := Write(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("rename: permission denied")
	renameFile = func(oldpath, newpath string) error { return boom }
	t.Cleanup(func() { renameFile = os.Rename })

	err := Write(path, []byte("new"))
	if !errors.Is(err, boom) {
		t.Fatalf("Write error = %v, want the injected rename failure", err)
	}
	wantOriginal(t, path, "old")
	noTempLeft(t, path)
}

// TestRenameOverExistingSemantics pins the rename-over-existing contract
// Write relies on: replacing an existing destination preserves no trace
// of it, works repeatedly, and the destination is readable with the new
// content immediately after each Write returns.
func TestRenameOverExistingSemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bin")
	contents := []string{"v1", "v2-longer-than-before", "v3"}
	for _, c := range contents {
		if err := Write(path, []byte(c)); err != nil {
			t.Fatal(err)
		}
		wantOriginal(t, path, c)
		noTempLeft(t, path)
	}
	// The final file is a regular file with the last content, not a
	// symlink or a temp artifact.
	info, err := os.Lstat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Mode().IsRegular() {
		t.Fatalf("destination mode = %v, want a regular file", info.Mode())
	}
	if info.Size() != int64(len(contents[len(contents)-1])) {
		t.Fatalf("size = %d, want %d", info.Size(), len(contents[len(contents)-1]))
	}
}

// TestWriteJSONPropagatesFaults: the JSON wrapper goes through the same
// atomic path, so injected faults surface there too.
func TestWriteJSONPropagatesFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.json")
	if err := WriteJSON(path, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sync boom")
	syncFile = func(*os.File) error { return boom }
	t.Cleanup(func() { syncFile = (*os.File).Sync })
	if err := WriteJSON(path, map[string]int{"a": 2}); !errors.Is(err, boom) {
		t.Fatalf("WriteJSON error = %v, want injected fault", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"a": 1`) {
		t.Fatalf("original JSON corrupted: %s", raw)
	}
}
