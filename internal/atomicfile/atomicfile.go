// Package atomicfile writes files atomically: content lands in a
// temporary file in the destination directory and is renamed into place
// only after a successful flush, so readers never observe a torn write and
// an interrupt mid-write leaves the previous version intact. This is the
// durability primitive behind the σ-search and sweep checkpoints: a
// checkpoint file either is the old complete state or the new complete
// state, never a truncated hybrid.
package atomicfile

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Fault-injection seams: the crash-simulation tests override these to
// fail mid-write, on fsync, on close, or on rename, proving the original
// file survives every failure point. Production code never touches them.
var (
	writeFile  = (*os.File).Write
	syncFile   = (*os.File).Sync
	closeFile  = (*os.File).Close
	renameFile = os.Rename
)

// Write atomically replaces path with data.
func Write(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := writeFile(tmp, data); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicfile: %w", err)
	}
	// Sync before rename: a rename is only atomic against crashes if the
	// new content is durable first.
	if err := syncFile(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err := closeFile(tmp); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err := renameFile(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	return nil
}

// WriteJSON atomically replaces path with the indented JSON encoding of v.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	return Write(path, append(data, '\n'))
}
