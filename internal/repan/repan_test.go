package repan

import (
	"math/rand/v2"
	"testing"

	"chameleon/internal/core"
	"chameleon/internal/gen"
	"chameleon/internal/privacy"
	"chameleon/internal/uncertain"
)

func testGraph(t testing.TB, seed uint64) *uncertain.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(200, 3, gen.UniformProbs(0.1, 0.9), rand.New(rand.NewPCG(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRepresentativeIsDeterministic01(t *testing.T) {
	g := testGraph(t, 1)
	rep := Representative(g)
	if rep.NumNodes() != g.NumNodes() {
		t.Fatal("representative must keep the vertex set")
	}
	for i := 0; i < rep.NumEdges(); i++ {
		if rep.Edge(i).P != 1 {
			t.Fatalf("representative edge %d has p=%v, want 1", i, rep.Edge(i).P)
		}
	}
}

func TestRepresentativeSubsetOfOriginalEdges(t *testing.T) {
	g := testGraph(t, 2)
	rep := Representative(g)
	for i := 0; i < rep.NumEdges(); i++ {
		e := rep.Edge(i)
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("representative invented edge (%d,%d)", e.U, e.V)
		}
	}
}

func TestRepresentativeImprovesOnMostProbableWorld(t *testing.T) {
	g := testGraph(t, 3)
	// Baseline: most-probable world as a 0/1 graph.
	mp := uncertain.New(g.NumNodes())
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.P >= 0.5 {
			mp.MustAddEdge(e.U, e.V, 1)
		}
	}
	rep := Representative(g)
	if DegreeDiscrepancy(g, rep) > DegreeDiscrepancy(g, mp) {
		t.Fatalf("ADR rewiring should not worsen the degree discrepancy: rep %v vs mp %v",
			DegreeDiscrepancy(g, rep), DegreeDiscrepancy(g, mp))
	}
}

func TestRepresentativeLowProbabilityGraph(t *testing.T) {
	// All p < 0.5: the most-probable world is empty, but ADR must add
	// edges to approximate the expected degrees.
	g, err := gen.BarabasiAlbert(100, 3, gen.SmallProbs(0.3), rand.New(rand.NewPCG(4, 2)))
	if err != nil {
		t.Fatal(err)
	}
	rep := Representative(g)
	if rep.NumEdges() == 0 {
		t.Fatal("representative of a low-probability graph should not be empty")
	}
}

func TestDegreeDiscrepancy(t *testing.T) {
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.5)
	// Expected degrees: 0.5, 1.0, 0.5.
	empty := uncertain.New(3)
	if got := DegreeDiscrepancy(g, empty); got != 2 {
		t.Fatalf("discrepancy vs empty = %v, want 2", got)
	}
	full := uncertain.New(3)
	full.MustAddEdge(0, 1, 1)
	full.MustAddEdge(1, 2, 1)
	if got := DegreeDiscrepancy(g, full); got != 2 {
		t.Fatalf("discrepancy vs full = %v, want 2", got)
	}
}

func TestAnonymizeEndToEnd(t *testing.T) {
	g := testGraph(t, 5)
	const k, eps = 6, 0.05
	res, err := Anonymize(g, core.Params{K: k, Epsilon: eps, Samples: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.EpsilonTilde > eps {
		t.Fatalf("eps~ = %v > eps = %v", res.EpsilonTilde, eps)
	}
	if res.Variant != core.Boldi {
		t.Fatalf("Rep-An must use the Boldi obfuscator, got %v", res.Variant)
	}
	// The published graph k-obfuscates the representative's own degrees
	// (the pipeline is oblivious to the original uncertainty by design).
	rep := Representative(g)
	check, err := privacy.CheckObfuscation(res.Graph, privacy.DegreeProperty(rep), k)
	if err != nil {
		t.Fatal(err)
	}
	if check.EpsilonTilde > eps {
		t.Fatalf("published graph fails the representative check: %v", check.EpsilonTilde)
	}
}

func TestAnonymizeScalesCandidateBudget(t *testing.T) {
	// A low-probability graph loses most edges at extraction; the
	// rescaled candidate budget must still let the pipeline succeed.
	g, err := gen.BarabasiAlbert(200, 3, gen.SmallProbs(0.3), rand.New(rand.NewPCG(6, 2)))
	if err != nil {
		t.Fatal(err)
	}
	rep := Representative(g)
	if rep.NumEdges() >= g.NumEdges() {
		t.Skip("extraction did not shrink the edge set; scaling not exercised")
	}
	res, err := Anonymize(g, core.Params{K: 4, Epsilon: 0.05, Samples: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumNodes() != g.NumNodes() {
		t.Fatal("vertex set changed")
	}
}

func TestRepresentativeDeterministic(t *testing.T) {
	g := testGraph(t, 8)
	if !Representative(g).Equal(Representative(g)) {
		t.Fatal("Representative must be deterministic")
	}
}
