package repan

import (
	"math/rand/v2"
	"testing"

	"chameleon/internal/gen"
	"chameleon/internal/uncertain"
)

func TestRepresentativeABMValid(t *testing.T) {
	g := testGraph(t, 30)
	rep := RepresentativeABM(g, ABMOptions{Samples: 10, Seed: 1})
	if rep.NumNodes() != g.NumNodes() {
		t.Fatal("vertex set changed")
	}
	for i := 0; i < rep.NumEdges(); i++ {
		e := rep.Edge(i)
		if e.P != 1 {
			t.Fatalf("edge %d has p=%v, want 1", i, e.P)
		}
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("invented edge (%d,%d)", e.U, e.V)
		}
	}
}

func TestRepresentativeABMImprovesBetweennessFit(t *testing.T) {
	// On a low-probability graph the most-probable world drops most
	// edges and its betweenness profile collapses; the ABM refinement
	// must strictly improve the fit.
	g, err := gen.BarabasiAlbert(120, 3, gen.SmallProbs(0.35), rand.New(rand.NewPCG(31, 2)))
	if err != nil {
		t.Fatal(err)
	}
	opts := ABMOptions{Samples: 15, Seed: 3}
	mp := uncertain.New(g.NumNodes())
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.P >= 0.5 {
			mp.MustAddEdge(e.U, e.V, 1)
		}
	}
	abm := RepresentativeABM(g, opts)
	if BetweennessDiscrepancy(g, abm, opts) > BetweennessDiscrepancy(g, mp, opts) {
		t.Fatalf("ABM should not worsen the betweenness fit: abm %v vs mp %v",
			BetweennessDiscrepancy(g, abm, opts), BetweennessDiscrepancy(g, mp, opts))
	}
}

func TestRepresentativeABMDeterministic(t *testing.T) {
	g := testGraph(t, 32)
	opts := ABMOptions{Samples: 10, Seed: 7}
	if !RepresentativeABM(g, opts).Equal(RepresentativeABM(g, opts)) {
		t.Fatal("ABM extraction must be deterministic per seed")
	}
}

func TestABMOptionsDefaults(t *testing.T) {
	o := ABMOptions{}.withDefaults()
	if o.Samples != 30 || o.Passes != 4 || o.BatchFraction != 0.05 {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := ABMOptions{BatchFraction: 2}.withDefaults()
	if o2.BatchFraction != 0.05 {
		t.Fatalf("out-of-range batch fraction should reset, got %v", o2.BatchFraction)
	}
}
