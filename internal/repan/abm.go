package repan

import (
	"math"

	"chameleon/internal/centrality"
	"chameleon/internal/uncertain"
)

// ABMOptions configures the betweenness-targeting extraction.
type ABMOptions struct {
	// Samples is the Monte Carlo budget for the expected-betweenness
	// target (default 30).
	Samples int
	// Seed drives the estimation.
	Seed uint64
	// Passes bounds the greedy refinement rounds (default 4).
	Passes int
	// BatchFraction is the share of edges flipped per round (default 5%).
	BatchFraction float64
	// Workers caps sampling parallelism.
	Workers int
}

func (o ABMOptions) withDefaults() ABMOptions {
	if o.Samples <= 0 {
		o.Samples = 30
	}
	if o.Passes <= 0 {
		o.Passes = 4
	}
	if o.BatchFraction <= 0 || o.BatchFraction > 1 {
		o.BatchFraction = 0.05
	}
	return o
}

// RepresentativeABM extracts a deterministic representative targeting the
// expected BETWEENNESS profile instead of the expected degrees — the ABM
// variant of the representative-extraction line of work [29]. Starting
// from the most-probable world it repeatedly flips small batches of edges
// whose endpoints over- or under-broker shortest paths relative to the
// uncertain graph's expectation, keeping a batch only if it reduces the
// total betweenness deficit.
func RepresentativeABM(g *uncertain.Graph, o ABMOptions) *uncertain.Graph {
	o = o.withDefaults()
	n := g.NumNodes()
	m := g.NumEdges()

	target := centrality.Expected(g, centrality.Options{
		Samples: o.Samples, Seed: o.Seed, Workers: o.Workers,
	})

	present := make([]bool, m)
	for i := 0; i < m; i++ {
		if g.Edge(i).P >= 0.5 {
			present[i] = true
		}
	}

	objective := func(mask []bool) (float64, []float64) {
		bc := centrality.Betweenness(g.WorldFromMask(mask))
		var total float64
		deficit := make([]float64, n)
		for v := 0; v < n; v++ {
			deficit[v] = bc[v] - target[v]
			total += math.Abs(deficit[v])
		}
		return total, deficit
	}

	best, deficit := objective(present)
	batch := int(o.BatchFraction * float64(m))
	if batch < 1 {
		batch = 1
	}
	for pass := 0; pass < o.Passes; pass++ {
		// Score every edge: positive means flipping should shed
		// over-brokered mass (remove a present edge between surplus
		// endpoints, or add an absent edge between deficit endpoints).
		type scored struct {
			idx   int
			score float64
		}
		var candidates []scored
		for i := 0; i < m; i++ {
			e := g.Edge(i)
			s := deficit[e.U] + deficit[e.V]
			if present[i] && s > 0 {
				candidates = append(candidates, scored{i, s})
			} else if !present[i] && s < 0 {
				candidates = append(candidates, scored{i, -s})
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Partial selection of the top batch.
		limit := batch
		if limit > len(candidates) {
			limit = len(candidates)
		}
		for i := 0; i < limit; i++ {
			top := i
			for j := i + 1; j < len(candidates); j++ {
				if candidates[j].score > candidates[top].score {
					top = j
				}
			}
			candidates[i], candidates[top] = candidates[top], candidates[i]
		}

		trial := append([]bool(nil), present...)
		for _, c := range candidates[:limit] {
			trial[c.idx] = !trial[c.idx]
		}
		total, newDeficit := objective(trial)
		if total < best {
			best = total
			present = trial
			deficit = newDeficit
			continue
		}
		// The batch overshot: halve and retry on the next pass.
		batch /= 2
		if batch < 1 {
			break
		}
	}

	rep := uncertain.New(n)
	for i := 0; i < m; i++ {
		if present[i] {
			e := g.Edge(i)
			rep.MustAddEdge(e.U, e.V, 1)
		}
	}
	return rep
}

// BetweennessDiscrepancy returns sum_v |bc_rep(v) - E[bc_g(v)]|, the
// objective RepresentativeABM minimizes, for any deterministic
// representative of g.
func BetweennessDiscrepancy(g, rep *uncertain.Graph, o ABMOptions) float64 {
	o = o.withDefaults()
	target := centrality.Expected(g, centrality.Options{
		Samples: o.Samples, Seed: o.Seed, Workers: o.Workers,
	})
	bc := centrality.Betweenness(rep.ThresholdWorld(0.5))
	var total float64
	for v := range target {
		total += math.Abs(bc[v] - target[v])
	}
	return total
}
