// Package repan implements the paper's benchmark solution Rep-An
// (Section IV): it detaches the uncertainty by extracting a single
// deterministic representative instance of the uncertain graph (following
// the representative-extraction line of work of Parchas et al. [29]) and
// then anonymizes that representative with the conventional
// uncertainty-injection obfuscator of Boldi et al. [7].
//
// The two phases are deliberately oblivious to each other — that is the
// point of the baseline: the extraction step alone already distorts the
// reliability structure, and the obfuscation step optimizes a
// deterministic-graph objective.
package repan

import (
	"context"

	"chameleon/internal/core"
	"chameleon/internal/uncertain"
)

// Representative extracts a deterministic instance of g that approximates
// its expected vertex degrees: it starts from the most-probable world and
// greedily flips edge presences while the flips reduce the total
// expected-degree discrepancy sum_v |deg(v) - E[deg(v)]| (Average-Degree
// Rewiring in the spirit of [29]). The result is returned as an uncertain
// graph whose probabilities are all 0 or 1 restricted to the original edge
// set (absent edges are dropped).
func Representative(g *uncertain.Graph) *uncertain.Graph {
	n := g.NumNodes()
	m := g.NumEdges()
	expDeg := g.ExpectedDegrees()

	present := make([]bool, m)
	deg := make([]float64, n)
	for i := 0; i < m; i++ {
		e := g.Edge(i)
		if e.P >= 0.5 {
			present[i] = true
			deg[e.U]++
			deg[e.V]++
		}
	}

	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}

	// Greedy local search: flip any edge whose flip strictly reduces the
	// degree discrepancy at its endpoints. A handful of passes suffices to
	// reach a local optimum on the graphs we target.
	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i < m; i++ {
			e := g.Edge(i)
			var delta float64 // change in degree if flipped to present
			if present[i] {
				delta = -1
			} else {
				delta = 1
			}
			before := abs(deg[e.U]-expDeg[e.U]) + abs(deg[e.V]-expDeg[e.V])
			after := abs(deg[e.U]+delta-expDeg[e.U]) + abs(deg[e.V]+delta-expDeg[e.V])
			if after < before {
				present[i] = !present[i]
				deg[e.U] += delta
				deg[e.V] += delta
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	rep := uncertain.New(n)
	for i := 0; i < m; i++ {
		if present[i] {
			e := g.Edge(i)
			rep.MustAddEdge(e.U, e.V, 1)
		}
	}
	return rep
}

// DegreeDiscrepancy returns sum_v |deg_rep(v) - E[deg_g(v)]|, the objective
// the representative extraction minimizes.
func DegreeDiscrepancy(g, rep *uncertain.Graph) float64 {
	exp := g.ExpectedDegrees()
	var total float64
	for v := 0; v < g.NumNodes(); v++ {
		d := float64(rep.Degree(uncertain.NodeID(v))) - exp[v]
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total
}

// Anonymize runs the full Rep-An pipeline: extract the representative,
// then obfuscate it with the conventional (uncertainty-oblivious) Boldi
// scheme. The privacy check runs against the representative's own degrees,
// exactly as a pipeline unaware of the original uncertainty would do.
//
// The candidate-set budget c is defined against the ORIGINAL graph's edge
// count: representative extraction typically drops a large share of the
// low-probability edges, and computing c against the shrunken edge set
// would starve the baseline of injection candidates relative to Chameleon.
// The rescaling keeps the comparison fair — both pipelines may touch the
// same number of vertex pairs.
func Anonymize(g *uncertain.Graph, p core.Params) (*core.Result, error) {
	return AnonymizeContext(context.Background(), g, p)
}

// AnonymizeContext is Anonymize under a cancellable context; see
// core.AnonymizeContext for the cancellation and checkpoint/resume
// semantics. Checkpoints taken here reference the (deterministically
// re-derived) representative, so resuming through this function validates
// and replays correctly.
func AnonymizeContext(ctx context.Context, g *uncertain.Graph, p core.Params) (*core.Result, error) {
	rep := Representative(g)
	if rep.NumEdges() > 0 {
		c := p.SizeMultiplier
		if c <= 0 {
			c = 2.0
		}
		p.SizeMultiplier = c * float64(g.NumEdges()) / float64(rep.NumEdges())
	}
	p.Variant = core.Boldi
	return core.AnonymizeContext(ctx, rep, p)
}
