// Package exact computes possible-world quantities by exhaustive
// enumeration. It is exponential in the number of edges (O(2^|E|)) and
// exists as the ground truth against which the Monte Carlo estimators in
// internal/reliability are validated.
package exact

import (
	"fmt"

	"chameleon/internal/uncertain"
	"chameleon/internal/unionfind"
)

// MaxEdges is the largest edge count ForEachWorld will enumerate.
const MaxEdges = 24

// ForEachWorld enumerates every possible world of g, invoking fn with the
// world's presence mask and probability. The mask is reused between calls;
// fn must not retain it.
func ForEachWorld(g *uncertain.Graph, fn func(mask []bool, pr float64)) error {
	m := g.NumEdges()
	if m > MaxEdges {
		return fmt.Errorf("exact: %d edges exceeds enumeration limit %d", m, MaxEdges)
	}
	mask := make([]bool, m)
	probs := make([]float64, m)
	for i := 0; i < m; i++ {
		probs[i] = g.Edge(i).P
	}
	for bits := 0; bits < 1<<m; bits++ {
		pr := 1.0
		for i := 0; i < m; i++ {
			if bits&(1<<i) != 0 {
				mask[i] = true
				pr *= probs[i]
			} else {
				mask[i] = false
				pr *= 1 - probs[i]
			}
		}
		if pr > 0 {
			fn(mask, pr)
		}
	}
	return nil
}

// PairReliability computes R_{u,v}(G) (Definition 1) exactly.
func PairReliability(g *uncertain.Graph, u, v uncertain.NodeID) (float64, error) {
	var r float64
	err := ForEachWorld(g, func(mask []bool, pr float64) {
		d := dsuFor(g, mask)
		if d.Connected(int(u), int(v)) {
			r += pr
		}
	})
	return r, err
}

// AllPairReliability returns the full matrix R[u][v] (symmetric, R[u][u]=1).
func AllPairReliability(g *uncertain.Graph) ([][]float64, error) {
	n := g.NumNodes()
	r := make([][]float64, n)
	for i := range r {
		r[i] = make([]float64, n)
		r[i][i] = 1
	}
	err := ForEachWorld(g, func(mask []bool, pr float64) {
		d := dsuFor(g, mask)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if d.Connected(u, v) {
					r[u][v] += pr
					r[v][u] += pr
				}
			}
		}
	})
	return r, err
}

// ExpectedConnectedPairs computes E[cc(G)] exactly: the expected number of
// connected unordered vertex pairs over all worlds.
func ExpectedConnectedPairs(g *uncertain.Graph) (float64, error) {
	var total float64
	err := ForEachWorld(g, func(mask []bool, pr float64) {
		total += pr * float64(dsuFor(g, mask).ConnectedPairs())
	})
	return total, err
}

// Discrepancy computes the reliability discrepancy Delta (Definition 2)
// between the original graph g and a perturbed graph h with the same
// vertex set: sum over pairs of |R_uv(g) - R_uv(h)|.
func Discrepancy(g, h *uncertain.Graph) (float64, error) {
	if g.NumNodes() != h.NumNodes() {
		return 0, fmt.Errorf("exact: vertex count mismatch %d vs %d", g.NumNodes(), h.NumNodes())
	}
	rg, err := AllPairReliability(g)
	if err != nil {
		return 0, err
	}
	rh, err := AllPairReliability(h)
	if err != nil {
		return 0, err
	}
	var delta float64
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := rg[u][v] - rh[u][v]
			if d < 0 {
				d = -d
			}
			delta += d
		}
	}
	return delta, nil
}

// EdgeReliabilityRelevance computes ERR^e (Definition 5, aggregated form)
// exactly for every edge: the difference in expected connected pairs
// between the graph with e certainly present and certainly absent.
func EdgeReliabilityRelevance(g *uncertain.Graph) ([]float64, error) {
	m := g.NumEdges()
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		ge := g.Clone()
		if err := ge.SetProb(i, 1); err != nil {
			return nil, err
		}
		ccE, err := ExpectedConnectedPairs(ge)
		if err != nil {
			return nil, err
		}
		gne := g.Clone()
		if err := gne.SetProb(i, 0); err != nil {
			return nil, err
		}
		ccNE, err := ExpectedConnectedPairs(gne)
		if err != nil {
			return nil, err
		}
		out[i] = ccE - ccNE
	}
	return out, nil
}

// DegreeDistribution returns, for vertex v, the exact probability vector
// Pr[deg(v) = j] for j in 0..deg_structural(v), computed by enumeration of
// incident edge states only.
func DegreeDistribution(g *uncertain.Graph, v uncertain.NodeID) []float64 {
	probs := g.IncidentProbs(v, nil)
	dist := []float64{1}
	for _, p := range probs {
		next := make([]float64, len(dist)+1)
		for j, q := range dist {
			next[j] += q * (1 - p)
			next[j+1] += q * p
		}
		dist = next
	}
	return dist
}

func dsuFor(g *uncertain.Graph, mask []bool) *unionfind.DSU {
	d := unionfind.New(g.NumNodes())
	for i, present := range mask {
		if present {
			e := g.Edge(i)
			d.Union(int(e.U), int(e.V))
		}
	}
	return d
}
