package exact

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"chameleon/internal/uncertain"
)

const tol = 1e-12

func TestForEachWorldProbabilitiesSumToOne(t *testing.T) {
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.3)
	g.MustAddEdge(1, 2, 0.7)
	g.MustAddEdge(0, 2, 0.5)
	var total float64
	worlds := 0
	if err := ForEachWorld(g, func(mask []bool, pr float64) {
		total += pr
		worlds++
	}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-1) > tol {
		t.Fatalf("world probabilities sum to %v, want 1", total)
	}
	if worlds != 8 {
		t.Fatalf("enumerated %d worlds, want 8", worlds)
	}
}

func TestForEachWorldSkipsZeroProbability(t *testing.T) {
	g := uncertain.New(2)
	g.MustAddEdge(0, 1, 1)
	worlds := 0
	if err := ForEachWorld(g, func(mask []bool, pr float64) { worlds++ }); err != nil {
		t.Fatal(err)
	}
	if worlds != 1 {
		t.Fatalf("p=1 edge: %d worlds visited, want 1", worlds)
	}
}

func TestForEachWorldEdgeLimit(t *testing.T) {
	g := uncertain.New(30)
	for i := 0; i < MaxEdges+1; i++ {
		g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i+1), 0.5)
	}
	if err := ForEachWorld(g, func([]bool, float64) {}); err == nil {
		t.Fatal("exceeding MaxEdges should error")
	}
}

func TestPairReliabilitySingleEdge(t *testing.T) {
	g := uncertain.New(2)
	g.MustAddEdge(0, 1, 0.37)
	r, err := PairReliability(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.37) > tol {
		t.Fatalf("R = %v, want 0.37", r)
	}
}

func TestPairReliabilitySeries(t *testing.T) {
	// 0 -0.5- 1 -0.4- 2: R(0,2) = 0.2.
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.4)
	r, err := PairReliability(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.2) > tol {
		t.Fatalf("series R = %v, want 0.2", r)
	}
}

func TestPairReliabilityParallel(t *testing.T) {
	// Two parallel 2-hop paths from 0 to 3 via 1 and 2, all p=0.5:
	// each path works with prob 0.25; R = 1-(1-0.25)^2 = 0.4375.
	g := uncertain.New(4)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 3, 0.5)
	g.MustAddEdge(0, 2, 0.5)
	g.MustAddEdge(2, 3, 0.5)
	r, err := PairReliability(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.4375) > tol {
		t.Fatalf("parallel R = %v, want 0.4375", r)
	}
}

func TestAllPairReliability(t *testing.T) {
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.4)
	r, err := AllPairReliability(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if r[i][i] != 1 {
			t.Fatalf("diagonal r[%d][%d] = %v, want 1", i, i, r[i][i])
		}
		for j := 0; j < 3; j++ {
			if r[i][j] != r[j][i] {
				t.Fatal("matrix should be symmetric")
			}
		}
	}
	if math.Abs(r[0][2]-0.2) > tol {
		t.Fatalf("r[0][2] = %v, want 0.2", r[0][2])
	}
	// Check consistency with the single-pair function.
	for u := 0; u < 3; u++ {
		for v := u + 1; v < 3; v++ {
			single, err := PairReliability(g, uncertain.NodeID(u), uncertain.NodeID(v))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(single-r[u][v]) > tol {
				t.Fatalf("pair (%d,%d): %v vs matrix %v", u, v, single, r[u][v])
			}
		}
	}
}

func TestExpectedConnectedPairs(t *testing.T) {
	// Single edge p: E[cc] = p.
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.3)
	cc, err := ExpectedConnectedPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cc-0.3) > tol {
		t.Fatalf("E[cc] = %v, want 0.3", cc)
	}
	// E[cc] must equal the sum of pair reliabilities.
	g2 := uncertain.New(4)
	g2.MustAddEdge(0, 1, 0.5)
	g2.MustAddEdge(1, 2, 0.7)
	g2.MustAddEdge(2, 3, 0.2)
	g2.MustAddEdge(0, 3, 0.9)
	cc2, err := ExpectedConnectedPairs(g2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := AllPairReliability(g2)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			sum += r[u][v]
		}
	}
	if math.Abs(cc2-sum) > tol {
		t.Fatalf("E[cc] = %v, sum of reliabilities = %v", cc2, sum)
	}
}

func TestDiscrepancyIdenticalIsZero(t *testing.T) {
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.4)
	d, err := Discrepancy(g, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("Discrepancy(g,g) = %v, want 0", d)
	}
}

func TestDiscrepancySingleEdgeChange(t *testing.T) {
	g := uncertain.New(2)
	g.MustAddEdge(0, 1, 0.5)
	h := g.Clone()
	if err := h.SetProb(0, 0.8); err != nil {
		t.Fatal(err)
	}
	d, err := Discrepancy(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.3) > tol {
		t.Fatalf("Discrepancy = %v, want 0.3", d)
	}
}

func TestDiscrepancyNodeMismatch(t *testing.T) {
	g := uncertain.New(2)
	g.MustAddEdge(0, 1, 0.5)
	h := uncertain.New(3)
	h.MustAddEdge(0, 1, 0.5)
	if _, err := Discrepancy(g, h); err == nil {
		t.Fatal("node-count mismatch should error")
	}
}

func TestEdgeRelevanceBridgeVsRedundant(t *testing.T) {
	// Triangle 0-1-2 (edges 0,1,2) plus pendant bridge 2-3 (edge 3).
	// The bridge must have strictly higher relevance than any triangle
	// edge: removing a triangle edge leaves connectivity intact.
	g := uncertain.New(4)
	g.MustAddEdge(0, 1, 0.8)
	g.MustAddEdge(1, 2, 0.8)
	g.MustAddEdge(0, 2, 0.8)
	g.MustAddEdge(2, 3, 0.8)
	rel, err := EdgeReliabilityRelevance(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if rel[3] <= rel[i] {
			t.Fatalf("bridge relevance %v should exceed triangle edge %d relevance %v",
				rel[3], i, rel[i])
		}
	}
	// A bridge to a leaf connects the leaf to everything: ERR = 3 pairs
	// reachable when present (times path reliabilities), and exactly 0
	// connected pairs involving node 3 when absent.
	if rel[3] <= 0 {
		t.Fatal("bridge relevance must be positive")
	}
}

// TestFactorizationLemma verifies Lemma 1: R_uv(G) =
// p(e) R_uv(G_e) + (1-p(e)) R_uv(G_not_e) on random small graphs.
func TestFactorizationLemma(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		n := 3 + rng.IntN(4)
		g := uncertain.New(n)
		m := 1 + rng.IntN(7)
		for i := 0; i < m; i++ {
			u := uncertain.NodeID(rng.IntN(n))
			v := uncertain.NodeID(rng.IntN(n))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v, rng.Float64())
		}
		if g.NumEdges() == 0 {
			return true
		}
		e := rng.IntN(g.NumEdges())
		p := g.Edge(e).P
		ge := g.Clone()
		if err := ge.SetProb(e, 1); err != nil {
			return false
		}
		gne := g.Clone()
		if err := gne.SetProb(e, 0); err != nil {
			return false
		}
		u := uncertain.NodeID(rng.IntN(n))
		v := uncertain.NodeID(rng.IntN(n))
		if u == v {
			return true
		}
		r, err := PairReliability(g, u, v)
		if err != nil {
			return false
		}
		re, err := PairReliability(ge, u, v)
		if err != nil {
			return false
		}
		rne, err := PairReliability(gne, u, v)
		if err != nil {
			return false
		}
		return math.Abs(r-(p*re+(1-p)*rne)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeDistributionMatchesEnumeration(t *testing.T) {
	g := uncertain.New(4)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(0, 2, 0.3)
	g.MustAddEdge(0, 3, 0.9)
	dist := DegreeDistribution(g, 0)
	// Brute force over the 8 states of the three incident edges.
	want := make([]float64, 4)
	probs := []float64{0.5, 0.3, 0.9}
	for bits := 0; bits < 8; bits++ {
		pr, deg := 1.0, 0
		for i, p := range probs {
			if bits&(1<<i) != 0 {
				pr *= p
				deg++
			} else {
				pr *= 1 - p
			}
		}
		want[deg] += pr
	}
	for j := range want {
		if math.Abs(dist[j]-want[j]) > tol {
			t.Fatalf("dist[%d] = %v, want %v", j, dist[j], want[j])
		}
	}
}
