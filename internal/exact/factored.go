package exact

import (
	"fmt"

	"chameleon/internal/uncertain"
	"chameleon/internal/unionfind"
)

// MaxFactorBranches bounds the work of the factoring algorithm; computing
// two-terminal reliability is #P-hard, so adversarial inputs must fail
// loudly instead of hanging.
const MaxFactorBranches = 50_000_000

// PairReliabilityFactored computes R_{u,v}(G) exactly with the classic
// factoring (contraction–deletion) algorithm: condition on one uncertain
// edge at a time, contracting it when present and deleting it when
// absent, with two prunings that make it exponentially cheaper than world
// enumeration in practice —
//
//   - an edge whose endpoints are already connected by conditioned edges
//     is irrelevant and consumes no branch;
//   - a state where u and v are already connected contributes its entire
//     remaining probability mass (1), and a state where v is unreachable
//     from u even using all remaining edges contributes 0.
//
// Unlike ForEachWorld's 2^|E| sweep this handles long paths, trees and
// sparse graphs of arbitrary size; it returns an error if the branch
// budget is exhausted (dense, highly connected inputs).
func PairReliabilityFactored(g *uncertain.Graph, u, v uncertain.NodeID) (float64, error) {
	n := g.NumNodes()
	if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
		return 0, fmt.Errorf("exact: pair (%d,%d) out of range (n=%d)", u, v, n)
	}
	if u == v {
		return 1, nil
	}

	// Order edges by BFS from u so the recursion settles u's side early;
	// deterministic edges are folded into the root state.
	order := bfsEdgeOrder(g, u)
	f := &factorer{g: g, order: order, u: int(u), v: int(v)}

	root := unionfind.New(n)
	var uncertainEdges []int
	for _, ei := range order {
		e := g.Edge(ei)
		switch {
		case e.P >= 1:
			root.Union(int(e.U), int(e.V))
		case e.P <= 0:
			// deleted from the start
		default:
			uncertainEdges = append(uncertainEdges, ei)
		}
	}
	f.edges = uncertainEdges
	r, err := f.recurse(0, root)
	if err != nil {
		return 0, err
	}
	return r, nil
}

type factorer struct {
	g        *uncertain.Graph
	order    []int
	edges    []int // uncertain edge indices in processing order
	u, v     int
	branches int
}

func (f *factorer) recurse(idx int, dsu *unionfind.DSU) (float64, error) {
	if dsu.Connected(f.u, f.v) {
		return 1, nil
	}
	// Skip edges made irrelevant by earlier contractions.
	for idx < len(f.edges) {
		e := f.g.Edge(f.edges[idx])
		if !dsu.Connected(int(e.U), int(e.V)) {
			break
		}
		idx++
	}
	if idx == len(f.edges) {
		return 0, nil
	}
	if !f.reachable(idx, dsu) {
		return 0, nil
	}
	f.branches++
	if f.branches > MaxFactorBranches {
		return 0, fmt.Errorf("exact: factoring branch budget exceeded (%d); input too dense", MaxFactorBranches)
	}

	e := f.g.Edge(f.edges[idx])
	p := e.P

	// Present branch: contract.
	present := cloneDSU(dsu)
	present.Union(int(e.U), int(e.V))
	rPresent, err := f.recurse(idx+1, present)
	if err != nil {
		return 0, err
	}
	// Absent branch: delete (just move on).
	rAbsent, err := f.recurse(idx+1, dsu)
	if err != nil {
		return 0, err
	}
	return p*rPresent + (1-p)*rAbsent, nil
}

// reachable reports whether v could still be connected to u using the
// current contractions plus ALL remaining uncertain edges.
func (f *factorer) reachable(idx int, dsu *unionfind.DSU) bool {
	probe := cloneDSU(dsu)
	for i := idx; i < len(f.edges); i++ {
		e := f.g.Edge(f.edges[i])
		probe.Union(int(e.U), int(e.V))
	}
	return probe.Connected(f.u, f.v)
}

func cloneDSU(d *unionfind.DSU) *unionfind.DSU {
	c := unionfind.New(d.Len())
	for i := 0; i < d.Len(); i++ {
		c.Union(i, d.Find(i))
	}
	return c
}

// bfsEdgeOrder returns all edge indices ordered by a BFS over the support
// graph from src, followed by any edges in components unreachable from
// src (their order is irrelevant to R_{src,*}).
func bfsEdgeOrder(g *uncertain.Graph, src uncertain.NodeID) []int {
	n := g.NumNodes()
	visited := make([]bool, n)
	taken := make([]bool, g.NumEdges())
	var order []int
	queue := []uncertain.NodeID{src}
	visited[src] = true
	var buf []int32
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		buf = g.IncidentEdges(x, buf[:0])
		for _, ei := range buf {
			if !taken[ei] {
				taken[ei] = true
				order = append(order, int(ei))
			}
			e := g.Edge(int(ei))
			next := e.U
			if next == x {
				next = e.V
			}
			if !visited[next] {
				visited[next] = true
				queue = append(queue, next)
			}
		}
	}
	for ei := range taken {
		if !taken[ei] {
			order = append(order, ei)
		}
	}
	return order
}
