package exact

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"chameleon/internal/uncertain"
)

func TestFactoredMatchesEnumeration(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		n := 3 + rng.IntN(5)
		g := uncertain.New(n)
		m := 1 + rng.IntN(10)
		for i := 0; i < m; i++ {
			u := uncertain.NodeID(rng.IntN(n))
			v := uncertain.NodeID(rng.IntN(n))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			// Mix in deterministic edges to exercise the root folding.
			p := rng.Float64()
			switch rng.IntN(5) {
			case 0:
				p = 0
			case 1:
				p = 1
			}
			g.MustAddEdge(u, v, p)
		}
		u := uncertain.NodeID(rng.IntN(n))
		v := uncertain.NodeID(rng.IntN(n))
		want, err := PairReliability(g, u, v)
		if err != nil {
			// u == v: enumeration path does not special-case it.
			return u == v
		}
		got, err := PairReliabilityFactored(g, u, v)
		if err != nil {
			return false
		}
		if u == v {
			return got == 1
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestFactoredSelfPair(t *testing.T) {
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	r, err := PairReliabilityFactored(g, 1, 1)
	if err != nil || r != 1 {
		t.Fatalf("self reliability = %v, %v", r, err)
	}
}

func TestFactoredRangeCheck(t *testing.T) {
	g := uncertain.New(2)
	g.MustAddEdge(0, 1, 0.5)
	if _, err := PairReliabilityFactored(g, 0, 5); err == nil {
		t.Fatal("out-of-range vertex should error")
	}
}

func TestFactoredLongPathBeyondEnumerationLimit(t *testing.T) {
	// A 60-edge path is far beyond ForEachWorld's 24-edge cap but trivial
	// for factoring: R(0, n-1) = prod p_i.
	const n = 61
	g := uncertain.New(n)
	want := 1.0
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < n-1; i++ {
		p := 0.8 + 0.19*rng.Float64()
		g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i+1), p)
		want *= p
	}
	got, err := PairReliabilityFactored(g, 0, n-1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("path reliability = %v, want %v", got, want)
	}
}

func TestFactoredTree(t *testing.T) {
	// Star: R(leaf_i, leaf_j) = p_i * p_j.
	g := uncertain.New(30)
	probs := make([]float64, 29)
	rng := rand.New(rand.NewPCG(6, 6))
	for i := 1; i < 30; i++ {
		probs[i-1] = rng.Float64()
		g.MustAddEdge(0, uncertain.NodeID(i), probs[i-1])
	}
	got, err := PairReliabilityFactored(g, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	want := probs[2] * probs[16]
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("star reliability = %v, want %v", got, want)
	}
}

func TestFactoredSeriesParallel(t *testing.T) {
	// Two disjoint 3-hop paths from s to t: R = 1 - (1 - p^3)^2 with p=0.5.
	g := uncertain.New(6)
	// Path A: 0-2-3-1, Path B: 0-4-5-1.
	for _, e := range [][2]uncertain.NodeID{{0, 2}, {2, 3}, {3, 1}, {0, 4}, {4, 5}, {5, 1}} {
		g.MustAddEdge(e[0], e[1], 0.5)
	}
	got, err := PairReliabilityFactored(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	pPath := 0.125
	want := 1 - (1-pPath)*(1-pPath)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("parallel paths reliability = %v, want %v", got, want)
	}
}

func TestFactoredDisconnected(t *testing.T) {
	g := uncertain.New(4)
	g.MustAddEdge(0, 1, 0.9)
	g.MustAddEdge(2, 3, 0.9)
	got, err := PairReliabilityFactored(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("cross-component reliability = %v, want 0", got)
	}
}

func TestFactoredDeterministicShortcut(t *testing.T) {
	// A certain path between u and v: reliability exactly 1 regardless of
	// any other uncertain edges.
	g := uncertain.New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	for i := 0; i < 4; i++ {
		if !g.HasEdge(uncertain.NodeID(i), uncertain.NodeID(i+1)) {
			g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i+1), 0.1)
		}
	}
	got, err := PairReliabilityFactored(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("certain path reliability = %v, want 1", got)
	}
}

func BenchmarkFactoredVsEnumeration(b *testing.B) {
	// 18-edge sparse graph: within enumeration's reach, to compare costs.
	rng := rand.New(rand.NewPCG(9, 9))
	g := uncertain.New(12)
	for g.NumEdges() < 18 {
		u := uncertain.NodeID(rng.IntN(12))
		v := uncertain.NodeID(rng.IntN(12))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, rng.Float64())
	}
	b.Run("enumeration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PairReliability(g, 0, 11); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("factoring", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PairReliabilityFactored(g, 0, 11); err != nil {
				b.Fatal(err)
			}
		}
	})
}
