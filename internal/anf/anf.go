// Package anf implements the Approximate Neighborhood Function of Palmer
// et al., the estimator family behind HyperANF [8], which the paper uses
// to approximate shortest-path statistics. Each vertex carries K parallel
// Flajolet–Martin bitmasks; one OR-propagation round per hop grows the
// masks to cover the h-hop neighborhood, and the least-zero-bit positions
// estimate the neighborhood sizes.
package anf

import (
	"math"
	"math/bits"
	"math/rand/v2"

	"chameleon/internal/uncertain"
)

// fmCorrection is the Flajolet–Martin bias correction constant.
const fmCorrection = 0.77351

// Options configures the estimator.
type Options struct {
	// Trials is the number of parallel bitmasks K; more trials reduce
	// variance. Default 32.
	Trials int
	// MaxHops caps the propagation rounds. Default 256.
	MaxHops int
	// Seed drives the random bit assignment.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 32
	}
	if o.MaxHops <= 0 {
		o.MaxHops = 256
	}
	return o
}

// Result holds the estimated neighborhood function of one world.
type Result struct {
	// N[h] estimates the number of ordered vertex pairs (v,u) with
	// dist(v,u) <= h, including v itself (so N[0] ~= |V|).
	N []float64
}

// Neighborhood computes the approximate neighborhood function of the given
// world.
func Neighborhood(w *uncertain.World, o Options) Result {
	o = o.withDefaults()
	n := w.NumNodes()
	k := o.Trials
	rng := rand.New(rand.NewPCG(o.Seed, 0x5bf03635))

	// masks[v*k + t] is trial t's bitmask for vertex v.
	masks := make([]uint64, n*k)
	for i := range masks {
		masks[i] = 1 << geometricBit(rng)
	}

	adj := w.AdjacencyLists()
	next := make([]uint64, n*k)

	result := Result{N: []float64{estimate(masks, n, k)}}
	for h := 1; h <= o.MaxHops; h++ {
		copy(next, masks)
		changed := false
		for v := 0; v < n; v++ {
			base := v * k
			for _, u := range adj[v] {
				ub := int(u) * k
				for t := 0; t < k; t++ {
					m := next[base+t] | masks[ub+t]
					if m != next[base+t] {
						next[base+t] = m
						changed = true
					}
				}
			}
		}
		masks, next = next, masks
		result.N = append(result.N, estimate(masks, n, k))
		if !changed {
			break
		}
	}
	return result
}

// geometricBit returns bit index i with probability 2^-(i+1), capped at 62.
func geometricBit(rng *rand.Rand) int {
	b := 0
	for rng.Float64() < 0.5 && b < 62 {
		b++
	}
	return b
}

// estimate sums the per-vertex FM estimates 2^b / 0.77351, with b the mean
// least-zero-bit position over the K trials.
func estimate(masks []uint64, n, k int) float64 {
	var total float64
	for v := 0; v < n; v++ {
		var sumB int
		for t := 0; t < k; t++ {
			sumB += bits.TrailingZeros64(^masks[v*k+t])
		}
		total += math.Exp2(float64(sumB)/float64(k)) / fmCorrection
	}
	return total
}

// AverageDistance derives the mean shortest-path length over connected
// ordered pairs from the neighborhood function.
func (r Result) AverageDistance() float64 {
	if len(r.N) < 2 {
		return 0
	}
	last := r.N[len(r.N)-1]
	reachable := last - r.N[0] // exclude distance-0 self pairs
	if reachable <= 0 {
		return 0
	}
	var weighted float64
	for h := 1; h < len(r.N); h++ {
		weighted += float64(h) * (r.N[h] - r.N[h-1])
	}
	return weighted / reachable
}

// EffectiveDiameter returns the smallest hop count h at which the
// neighborhood function reaches the given fraction (e.g. 0.9) of its final
// value, with linear interpolation between hops.
func (r Result) EffectiveDiameter(fraction float64) float64 {
	if len(r.N) == 0 {
		return 0
	}
	target := fraction * r.N[len(r.N)-1]
	for h := 0; h < len(r.N); h++ {
		if r.N[h] >= target {
			if h == 0 {
				return 0
			}
			prev := r.N[h-1]
			span := r.N[h] - prev
			if span <= 0 {
				return float64(h)
			}
			return float64(h-1) + (target-prev)/span
		}
	}
	return float64(len(r.N) - 1)
}

// ExactNeighborhood computes the exact neighborhood function of a world by
// running a BFS from every vertex. O(|V| * (|V| + |E|)); test-scale only.
func ExactNeighborhood(w *uncertain.World) Result {
	n := w.NumNodes()
	var counts []float64
	for v := 0; v < n; v++ {
		dist := w.BFSDistances(uncertain.NodeID(v))
		for _, d := range dist {
			if d < 0 {
				continue
			}
			for len(counts) <= int(d) {
				counts = append(counts, 0)
			}
			counts[d]++
		}
	}
	// Prefix-sum to N[h].
	for h := 1; h < len(counts); h++ {
		counts[h] += counts[h-1]
	}
	if counts == nil {
		counts = []float64{float64(n)}
	}
	return Result{N: counts}
}
