package anf

import (
	"math"
	"testing"

	"chameleon/internal/uncertain"
)

func certainWorld(t *testing.T, n int, edges [][2]uncertain.NodeID) *uncertain.World {
	t.Helper()
	g := uncertain.New(n)
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1], 1)
	}
	return g.MostProbableWorld()
}

func pathWorld(t *testing.T, n int) *uncertain.World {
	t.Helper()
	edges := make([][2]uncertain.NodeID, n-1)
	for i := range edges {
		edges[i] = [2]uncertain.NodeID{uncertain.NodeID(i), uncertain.NodeID(i + 1)}
	}
	return certainWorld(t, n, edges)
}

func TestExactNeighborhoodPath(t *testing.T) {
	// Path 0-1-2: N[0]=3 (self pairs), N[1]=3+4, N[2]=3+4+2.
	w := pathWorld(t, 3)
	r := ExactNeighborhood(w)
	want := []float64{3, 7, 9}
	if len(r.N) != len(want) {
		t.Fatalf("N = %v, want %v", r.N, want)
	}
	for i := range want {
		if r.N[i] != want[i] {
			t.Fatalf("N[%d] = %v, want %v", i, r.N[i], want[i])
		}
	}
}

func TestExactAverageDistancePath(t *testing.T) {
	// Path 0-1-2: ordered pairs distances {1,1,1,1,2,2}: mean 8/6.
	r := ExactNeighborhood(pathWorld(t, 3))
	want := 8.0 / 6.0
	if math.Abs(r.AverageDistance()-want) > 1e-12 {
		t.Fatalf("AverageDistance = %v, want %v", r.AverageDistance(), want)
	}
}

func TestExactAverageDistanceClique(t *testing.T) {
	w := certainWorld(t, 4, [][2]uncertain.NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	r := ExactNeighborhood(w)
	if got := r.AverageDistance(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("clique average distance = %v, want 1", got)
	}
}

func TestExactDisconnected(t *testing.T) {
	w := certainWorld(t, 4, [][2]uncertain.NodeID{{0, 1}}) // 2,3 isolated
	r := ExactNeighborhood(w)
	// Reachable ordered pairs: (0,1),(1,0) at distance 1.
	if got := r.AverageDistance(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("AverageDistance = %v, want 1", got)
	}
}

func TestExactEmptyWorld(t *testing.T) {
	w := certainWorld(t, 3, nil)
	r := ExactNeighborhood(w)
	if r.AverageDistance() != 0 {
		t.Fatalf("no reachable pairs: AverageDistance = %v, want 0", r.AverageDistance())
	}
	if r.EffectiveDiameter(0.9) != 0 {
		t.Fatalf("EffectiveDiameter = %v, want 0", r.EffectiveDiameter(0.9))
	}
}

func TestEffectiveDiameter(t *testing.T) {
	// Clique: everything reachable at 1 hop. Eff. diameter in (0, 1].
	w := certainWorld(t, 5, [][2]uncertain.NodeID{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}})
	r := ExactNeighborhood(w)
	ed := r.EffectiveDiameter(0.9)
	if ed <= 0 || ed > 1 {
		t.Fatalf("clique effective diameter = %v, want (0,1]", ed)
	}
	// Long path: effective diameter grows with length.
	long := ExactNeighborhood(pathWorld(t, 30)).EffectiveDiameter(0.9)
	short := ExactNeighborhood(pathWorld(t, 10)).EffectiveDiameter(0.9)
	if long <= short {
		t.Fatalf("longer path should have larger effective diameter: %v vs %v", long, short)
	}
}

func TestNeighborhoodMatchesExactOnPath(t *testing.T) {
	w := pathWorld(t, 40)
	approx := Neighborhood(w, Options{Trials: 64, Seed: 3})
	ex := ExactNeighborhood(w)
	// Compare final reachable-pair counts within FM error (~10% at K=64).
	gotFinal := approx.N[len(approx.N)-1]
	wantFinal := ex.N[len(ex.N)-1]
	if math.Abs(gotFinal-wantFinal)/wantFinal > 0.25 {
		t.Fatalf("final neighborhood %v, exact %v", gotFinal, wantFinal)
	}
	if math.Abs(approx.AverageDistance()-ex.AverageDistance())/ex.AverageDistance() > 0.25 {
		t.Fatalf("ANF avg distance %v, exact %v", approx.AverageDistance(), ex.AverageDistance())
	}
}

func TestNeighborhoodMatchesExactOnGrid(t *testing.T) {
	// 8x8 grid.
	const side = 8
	g := uncertain.New(side * side)
	id := func(r, c int) uncertain.NodeID { return uncertain.NodeID(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.MustAddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < side {
				g.MustAddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	w := g.MostProbableWorld()
	approx := Neighborhood(w, Options{Trials: 64, Seed: 5})
	ex := ExactNeighborhood(w)
	if math.Abs(approx.AverageDistance()-ex.AverageDistance())/ex.AverageDistance() > 0.2 {
		t.Fatalf("grid avg distance: ANF %v, exact %v", approx.AverageDistance(), ex.AverageDistance())
	}
	ed := approx.EffectiveDiameter(0.9)
	edx := ex.EffectiveDiameter(0.9)
	if math.Abs(ed-edx) > 3 {
		t.Fatalf("grid effective diameter: ANF %v, exact %v", ed, edx)
	}
}

func TestNeighborhoodMonotone(t *testing.T) {
	w := pathWorld(t, 25)
	r := Neighborhood(w, Options{Seed: 7})
	for h := 1; h < len(r.N); h++ {
		if r.N[h] < r.N[h-1]-1e-9 {
			t.Fatalf("neighborhood function must be nondecreasing: N[%d]=%v < N[%d]=%v",
				h, r.N[h], h-1, r.N[h-1])
		}
	}
}

func TestNeighborhoodTerminates(t *testing.T) {
	// Propagation stops once masks converge; the result must be shorter
	// than MaxHops on a small diameter graph.
	w := certainWorld(t, 6, [][2]uncertain.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	r := Neighborhood(w, Options{Seed: 1, MaxHops: 100})
	if len(r.N) > 10 {
		t.Fatalf("propagation should converge in ~diameter rounds, got %d", len(r.N))
	}
}

func TestNeighborhoodDeterministicPerSeed(t *testing.T) {
	w := pathWorld(t, 20)
	a := Neighborhood(w, Options{Seed: 9})
	b := Neighborhood(w, Options{Seed: 9})
	if len(a.N) != len(b.N) {
		t.Fatal("same seed must give same hop count")
	}
	for i := range a.N {
		if a.N[i] != b.N[i] {
			t.Fatal("same seed must give identical estimates")
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Trials != 32 || o.MaxHops != 256 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestEffectiveDiameterEmptyResult(t *testing.T) {
	if (Result{}).EffectiveDiameter(0.9) != 0 {
		t.Fatal("empty result should give 0")
	}
	if (Result{}).AverageDistance() != 0 {
		t.Fatal("empty result should give 0 average distance")
	}
}
