package gen

import (
	"math"
	"math/rand/v2"
	"testing"

	"chameleon/internal/uncertain"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 99)) }

func TestUniformProbsRange(t *testing.T) {
	pa := UniformProbs(0.2, 0.6)
	r := rng(1)
	for i := 0; i < 1000; i++ {
		p := pa(r)
		if p < 0.2 || p > 0.6 {
			t.Fatalf("p = %v out of [0.2, 0.6]", p)
		}
	}
}

func TestDiscreteProbsOnlyGivenValues(t *testing.T) {
	values := []float64{0.1, 0.5, 0.9}
	pa := DiscreteProbs(values, []float64{1, 2, 1})
	r := rng(2)
	counts := map[float64]int{}
	for i := 0; i < 4000; i++ {
		counts[pa(r)]++
	}
	if len(counts) != 3 {
		t.Fatalf("drew %d distinct values, want 3", len(counts))
	}
	// The middle value has twice the weight.
	if counts[0.5] < counts[0.1] || counts[0.5] < counts[0.9] {
		t.Fatalf("weights not respected: %v", counts)
	}
}

func TestDiscreteProbsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched values/weights should panic")
		}
	}()
	DiscreteProbs([]float64{0.1}, []float64{1, 2})
}

func TestSmallProbsProfile(t *testing.T) {
	pa := SmallProbs(0.29)
	r := rng(3)
	var sum float64
	const n = 20000
	small := 0
	for i := 0; i < n; i++ {
		p := pa(r)
		if p <= 0 || p > 1 {
			t.Fatalf("p = %v out of (0,1]", p)
		}
		if p < 0.3 {
			small++
		}
		sum += p
	}
	mean := sum / n
	if mean < 0.2 || mean > 0.35 {
		t.Fatalf("mean %v, want ~0.29 (truncation shifts it slightly)", mean)
	}
	if float64(small)/n < 0.5 {
		t.Fatal("SmallProbs should produce mostly small values")
	}
}

func TestErdosRenyiShape(t *testing.T) {
	g, err := ErdosRenyi(50, 120, UniformProbs(0, 1), rng(4))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 || g.NumEdges() != 120 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestErdosRenyiTooManyEdges(t *testing.T) {
	if _, err := ErdosRenyi(4, 7, UniformProbs(0, 1), rng(5)); err == nil {
		t.Fatal("7 edges on 4 nodes should fail")
	}
	// Exactly the maximum should work.
	g, err := ErdosRenyi(4, 6, UniformProbs(0, 1), rng(5))
	if err != nil || g.NumEdges() != 6 {
		t.Fatalf("complete graph: %v, edges %d", err, g.NumEdges())
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	const n, m = 300, 3
	g, err := BarabasiAlbert(n, m, UniformProbs(0, 1), rng(6))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != n {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Seed clique (m+1 choose 2) + m per additional vertex.
	wantEdges := m*(m+1)/2 + (n-m-1)*m
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
}

func TestBarabasiAlbertHeavyTail(t *testing.T) {
	g, err := BarabasiAlbert(500, 2, UniformProbs(0, 1), rng(7))
	if err != nil {
		t.Fatal(err)
	}
	maxDeg, sumDeg := 0, 0
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(uncertain.NodeID(v))
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sumDeg) / float64(g.NumNodes())
	if float64(maxDeg) < 5*avg {
		t.Fatalf("max degree %d should dwarf average %.1f in a preferential-attachment graph", maxDeg, avg)
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	if _, err := BarabasiAlbert(5, 0, UniformProbs(0, 1), rng(8)); err == nil {
		t.Fatal("mPer=0 should fail")
	}
	if _, err := BarabasiAlbert(3, 3, UniformProbs(0, 1), rng(8)); err == nil {
		t.Fatal("n <= mPer should fail")
	}
}

func TestSBMStructure(t *testing.T) {
	g, err := SBM(200, 2, 0.2, 0.01, UniformProbs(0, 1), rng(9))
	if err != nil {
		t.Fatal(err)
	}
	intra, inter := 0, 0
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if (int(e.U) < 100) == (int(e.V) < 100) {
			intra++
		} else {
			inter++
		}
	}
	if intra <= 3*inter {
		t.Fatalf("intra %d should dominate inter %d", intra, inter)
	}
}

func TestSBMErrors(t *testing.T) {
	if _, err := SBM(5, 0, 0.1, 0.1, UniformProbs(0, 1), rng(10)); err == nil {
		t.Fatal("blocks=0 should fail")
	}
	if _, err := SBM(2, 5, 0.1, 0.1, UniformProbs(0, 1), rng(10)); err == nil {
		t.Fatal("n < blocks should fail")
	}
}

func TestDatasetsBuild(t *testing.T) {
	for _, d := range Datasets() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			g, err := d.Build(rng(11))
			if err != nil {
				t.Fatal(err)
			}
			if g.NumNodes() != d.Nodes {
				t.Fatalf("nodes = %d, want %d", g.NumNodes(), d.Nodes)
			}
			if g.NumEdges() == 0 {
				t.Fatal("dataset has no edges")
			}
			if math.Abs(g.MeanProb()-d.PaperMeanP) > 0.08 {
				t.Fatalf("mean prob %.3f too far from paper value %.2f", g.MeanProb(), d.PaperMeanP)
			}
			if len(d.Ks) != 5 {
				t.Fatalf("want 5 sweep points, got %d", len(d.Ks))
			}
		})
	}
}

func TestDatasetByName(t *testing.T) {
	d, err := DatasetByName("dblp-s")
	if err != nil || d.PaperName != "DBLP" {
		t.Fatalf("DatasetByName(dblp-s) = %+v, %v", d, err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestKScaleMapping(t *testing.T) {
	d := Dataset{Ks: []int{10, 20, 30, 40, 50}}
	cases := map[int]int{100: 10, 150: 20, 200: 30, 250: 40, 300: 50, 50: 10, 400: 50}
	for paperK, want := range cases {
		if got := d.KScale(paperK); got != want {
			t.Errorf("KScale(%d) = %d, want %d", paperK, got, want)
		}
	}
}

func TestKScaleFallbackWithoutKs(t *testing.T) {
	d := Dataset{Nodes: 1000, PaperNodes: 100000}
	if got := d.KScale(100); got != 2 {
		t.Fatalf("degenerate ratio should clamp to 2, got %d", got)
	}
	d2 := Dataset{Nodes: 50000, PaperNodes: 100000}
	if got := d2.KScale(100); got != 50 {
		t.Fatalf("ratio scaling: got %d, want 50", got)
	}
}

func TestDatasetBuildDeterministic(t *testing.T) {
	d := DBLPScaled()
	g1, err := d.Build(rand.New(rand.NewPCG(42, 99)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := d.Build(rand.New(rand.NewPCG(42, 99)))
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(g2) {
		t.Fatal("same seed must build the same dataset")
	}
}

func TestWattsStrogatzShape(t *testing.T) {
	g, err := WattsStrogatz(100, 2, 0.1, UniformProbs(0.2, 0.8), rng(20))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Ring lattice baseline has n*kHalf edges; rewiring may drop a few on
	// collisions.
	if g.NumEdges() < 180 || g.NumEdges() > 200 {
		t.Fatalf("edges = %d, want ~200", g.NumEdges())
	}
}

func TestWattsStrogatzNoRewiringIsLattice(t *testing.T) {
	g, err := WattsStrogatz(20, 2, 0, UniformProbs(0, 1), rng(21))
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex connects to its 2 nearest neighbors on each side.
	for u := 0; u < 20; u++ {
		for d := 1; d <= 2; d++ {
			if !g.HasEdge(uncertain.NodeID(u), uncertain.NodeID((u+d)%20)) {
				t.Fatalf("missing lattice edge (%d,%d)", u, (u+d)%20)
			}
		}
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	if _, err := WattsStrogatz(10, 0, 0.1, UniformProbs(0, 1), rng(22)); err == nil {
		t.Fatal("kHalf=0 should fail")
	}
	if _, err := WattsStrogatz(4, 2, 0.1, UniformProbs(0, 1), rng(22)); err == nil {
		t.Fatal("n <= 2*kHalf should fail")
	}
	if _, err := WattsStrogatz(10, 2, 1.5, UniformProbs(0, 1), rng(22)); err == nil {
		t.Fatal("beta > 1 should fail")
	}
}

func TestWattsStrogatzRewiringShortensDistances(t *testing.T) {
	// The small-world effect: rewired lattices have much shorter average
	// distances than pure rings.
	lattice, err := WattsStrogatz(200, 2, 0, UniformProbs(1, 1), rng(23))
	if err != nil {
		t.Fatal(err)
	}
	rewired, err := WattsStrogatz(200, 2, 0.2, UniformProbs(1, 1), rng(23))
	if err != nil {
		t.Fatal(err)
	}
	avg := func(g *uncertain.Graph) float64 {
		w := g.ThresholdWorld(0.5)
		var total, count float64
		for _, d := range w.BFSDistances(0) {
			if d > 0 {
				total += float64(d)
				count++
			}
		}
		return total / count
	}
	if avg(rewired) >= avg(lattice) {
		t.Fatalf("rewiring should shorten distances: %v vs %v", avg(rewired), avg(lattice))
	}
}
