package gen

import (
	"testing"

	"chameleon/internal/uncertain"
)

// These tests pin the substitution contract of DESIGN.md §3: each scaled
// dataset must reproduce the shape properties Figure 3 reports for its
// paper counterpart. If a generator change breaks one of these, the
// experiment harness is no longer reproducing the paper's workloads.

func buildFidelity(t *testing.T, name string) *uncertain.Graph {
	t.Helper()
	d, err := DatasetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.Build(rng(100))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDBLPFidelityDiscreteProbabilities(t *testing.T) {
	// "the DBLP dataset only has a few probability values" (Fig. 3a).
	g := buildFidelity(t, "dblp-s")
	distinct := map[float64]bool{}
	for _, e := range g.Edges() {
		distinct[e.P] = true
	}
	if len(distinct) > 8 {
		t.Fatalf("dblp-s has %d distinct probabilities, want a handful", len(distinct))
	}
}

func TestBrightkiteFidelitySmallProbabilities(t *testing.T) {
	// "Brightkite dataset's probability values are generally very small".
	g := buildFidelity(t, "brightkite-s")
	small := 0
	for _, e := range g.Edges() {
		if e.P < 0.3 {
			small++
		}
	}
	if frac := float64(small) / float64(g.NumEdges()); frac < 0.6 {
		t.Fatalf("only %.0f%% of brightkite-s probabilities are small, want >= 60%%", 100*frac)
	}
}

func TestPPIFidelityUniformProbabilities(t *testing.T) {
	// "The PPI dataset has a more uniform probability distribution":
	// no histogram bin over its support should dominate.
	g := buildFidelity(t, "ppi-s")
	h := g.ProbHistogram(10)
	occupied := 0
	maxBin := 0
	for _, c := range h {
		if c > 0 {
			occupied++
		}
		if c > maxBin {
			maxBin = c
		}
	}
	if occupied < 5 {
		t.Fatalf("ppi-s probabilities occupy only %d bins", occupied)
	}
	if float64(maxBin) > 2.5*float64(g.NumEdges())/float64(occupied) {
		t.Fatalf("ppi-s probability histogram too peaked: max bin %d of %d edges", maxBin, g.NumEdges())
	}
}

func TestAllDatasetsHeavyTailed(t *testing.T) {
	// "all the three graphs have a heavy-tailed degree distribution
	// (i.e., an amount of unique nodes)" (Fig. 3b).
	for _, name := range []string{"dblp-s", "brightkite-s", "ppi-s"} {
		name := name
		t.Run(name, func(t *testing.T) {
			g := buildFidelity(t, name)
			maxDeg, sumDeg := 0, 0
			for v := 0; v < g.NumNodes(); v++ {
				d := g.Degree(uncertain.NodeID(v))
				sumDeg += d
				if d > maxDeg {
					maxDeg = d
				}
			}
			avg := float64(sumDeg) / float64(g.NumNodes())
			if float64(maxDeg) < 6*avg {
				t.Fatalf("max degree %d vs avg %.1f: no heavy tail", maxDeg, avg)
			}
			// Unique high-degree nodes exist: the top degree value should
			// be held by very few vertices.
			hist := g.StructuralDegreeHistogram()
			topHolders := 0
			for d := len(hist) - 1; d >= 0 && topHolders < 5; d-- {
				topHolders += hist[d]
			}
			if topHolders > 20 {
				t.Fatalf("tail is too crowded: %d holders of the top degrees", topHolders)
			}
		})
	}
}

func TestDensityOrderingMatchesPaper(t *testing.T) {
	// Table I: PPI is far denser than DBLP, which is denser than
	// Brightkite (average degrees ~64, ~13.5, ~7.3 in the paper).
	var avg [3]float64
	for i, name := range []string{"dblp-s", "brightkite-s", "ppi-s"} {
		g := buildFidelity(t, name)
		avg[i] = 2 * float64(g.NumEdges()) / float64(g.NumNodes())
	}
	dblp, brightkite, ppi := avg[0], avg[1], avg[2]
	if !(ppi > dblp && dblp > brightkite) {
		t.Fatalf("density ordering broken: ppi %.1f, dblp %.1f, brightkite %.1f", ppi, dblp, brightkite)
	}
}
