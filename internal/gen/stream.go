package gen

import (
	"io"
	"math/rand/v2"
	"slices"

	"chameleon/internal/uncertain"
)

// StreamErdosRenyi writes G(n, m) straight to w in the sectioned v2
// binary format without ever materializing an edge slice of Edge structs,
// a *Graph, or its adjacency: the working state is one packed uint64 per
// edge (the canonical endpoints) plus the v2 writer's ~11 bytes/edge
// buffers, so a million-node, ten-million-edge graph generates in a few
// hundred MB instead of the multiple GB a *Graph would take.
//
// The edge set is drawn by sample-sort-dedup-top-up rounds: draw the
// missing number of random canonical pairs, sort the packed codes, drop
// duplicates, repeat until m distinct edges remain. Each round's survivors
// are uniform over the remaining pairs, so the final set is exactly a
// uniform m-subset — the same distribution as ErdosRenyi, though not the
// same edges for the same seed, since the two consume the stream
// differently. Probabilities are drawn from pa in sorted edge order.
//
// The shape preconditions match ErdosRenyi (checkERShape): impossible and
// near-complete requests fail up front.
func StreamErdosRenyi(w io.Writer, n, m int, pa ProbAssigner, rng *rand.Rand) error {
	if err := checkERShape(n, m); err != nil {
		return err
	}
	codes := make([]uint64, 0, m+m/8)
	for len(codes) < m {
		// Top up with the missing count plus slack for collisions; the
		// near-complete guard keeps the expected collision rate low.
		need := m - len(codes)
		for i := 0; i < need+need/8+8 && len(codes) < cap(codes); i++ {
			u := uncertain.NodeID(rng.IntN(n))
			v := uncertain.NodeID(rng.IntN(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			codes = append(codes, uint64(u)<<32|uint64(v))
		}
		slices.Sort(codes)
		codes = slices.Compact(codes)
		if len(codes) > m {
			// Overshoot: dropping a uniformly random subset keeps the
			// remaining set uniform. Dropping the largest codes would not,
			// so evict random positions and re-sort.
			for len(codes) > m {
				i := rng.IntN(len(codes))
				codes[i] = codes[len(codes)-1]
				codes = codes[:len(codes)-1]
			}
			slices.Sort(codes)
		}
	}
	vw, err := uncertain.NewV2Writer(w, n)
	if err != nil {
		return err
	}
	for _, c := range codes {
		u := uncertain.NodeID(c >> 32)
		v := uncertain.NodeID(c & 0xFFFFFFFF)
		if err := vw.AddEdge(u, v, pa(rng)); err != nil {
			return err
		}
	}
	return vw.Close()
}
