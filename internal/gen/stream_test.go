package gen

import (
	"bytes"
	"strings"
	"testing"

	"chameleon/internal/uncertain"
)

// TestSmallProbsRejectsNonPositiveMean locks the construction guard: a
// mean <= 0 used to hand back an assigner whose rejection loop could
// never terminate, hanging the caller on the first edge.
func TestSmallProbsRejectsNonPositiveMean(t *testing.T) {
	for _, mean := range []float64{0, -0.5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SmallProbs(%v) should panic", mean)
				}
			}()
			SmallProbs(mean)
		}()
	}
}

// TestErdosRenyiRejectsNearComplete locks the dense-request guard: asking
// for an edge count within ~1% of the complete graph used to send the
// rejection sampler into a near-infinite retry loop instead of failing.
func TestErdosRenyiRejectsNearComplete(t *testing.T) {
	// n=100: maxEdges = 4950, the guard engages above 4901 edges.
	if _, err := ErdosRenyi(100, 4950, UniformProbs(0, 1), rng(6)); err == nil {
		t.Fatal("complete-graph request should error")
	} else if !strings.Contains(err.Error(), "1%") {
		t.Fatalf("want the dense-guard error, got %v", err)
	}
	// Just under the cutoff still works.
	if _, err := ErdosRenyi(100, 4900, UniformProbs(0, 1), rng(6)); err != nil {
		t.Fatalf("sparse-enough request should succeed, got %v", err)
	}
	// Small graphs stay exempt: the complete graph on 4 vertices is fine.
	if _, err := ErdosRenyi(4, 6, UniformProbs(0, 1), rng(6)); err != nil {
		t.Fatalf("small complete graph should succeed, got %v", err)
	}
}

func TestStreamErdosRenyiShape(t *testing.T) {
	const n, m = 500, 2000
	var buf bytes.Buffer
	if err := StreamErdosRenyi(&buf, n, m, UniformProbs(0.1, 0.9), rng(7)); err != nil {
		t.Fatal(err)
	}
	g, err := uncertain.ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("streamed output should be a valid v2 file: %v", err)
	}
	if g.NumNodes() != n || g.NumEdges() != m {
		t.Fatalf("got %d nodes %d edges, want %d/%d", g.NumNodes(), g.NumEdges(), n, m)
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.P < 0.1 || e.P > 0.9 {
			t.Fatalf("edge %d probability %v outside the assigner range", i, e.P)
		}
	}
	// Deterministic per seed.
	var buf2 bytes.Buffer
	if err := StreamErdosRenyi(&buf2, n, m, UniformProbs(0.1, 0.9), rng(7)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("StreamErdosRenyi should be deterministic for a fixed seed")
	}
}

func TestStreamErdosRenyiRejectsBadShapes(t *testing.T) {
	var buf bytes.Buffer
	if err := StreamErdosRenyi(&buf, 4, 7, UniformProbs(0, 1), rng(8)); err == nil {
		t.Fatal("impossible edge count should error")
	}
	if err := StreamErdosRenyi(&buf, 100, 4950, UniformProbs(0, 1), rng(8)); err == nil {
		t.Fatal("near-complete request should error")
	}
}
