// Package gen builds synthetic uncertain graphs: classic random topologies
// (Erdős–Rényi, Barabási–Albert, stochastic block model) combined with edge
// probability assigners that reproduce the probability profiles of the
// paper's datasets (Figure 3).
package gen

import (
	"fmt"
	"math/rand/v2"

	"chameleon/internal/uncertain"
)

// ProbAssigner draws an existence probability for a fresh edge.
type ProbAssigner func(rng *rand.Rand) float64

// UniformProbs assigns probabilities uniformly in [lo, hi].
func UniformProbs(lo, hi float64) ProbAssigner {
	return func(rng *rand.Rand) float64 {
		return lo + (hi-lo)*rng.Float64()
	}
}

// DiscreteProbs assigns one of the given values with the given weights.
// Reproduces the DBLP profile: "only a few probability values" (Fig. 3a).
func DiscreteProbs(values, weights []float64) ProbAssigner {
	if len(values) != len(weights) || len(values) == 0 {
		panic("gen: values/weights mismatch")
	}
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	return func(rng *rand.Rand) float64 {
		x := rng.Float64() * total
		for i, c := range cum {
			if x <= c {
				return values[i]
			}
		}
		return values[len(values)-1]
	}
}

// SmallProbs assigns predominantly small probabilities: an exponential
// with the given mean, truncated to (0, 1]. Reproduces the BRIGHTKITE
// profile ("probability values are generally very small", Fig. 3a).
//
// The mean must be positive: with mean <= 0 (or NaN) the rejection loop
// can never produce a value in (0, 1], so construction panics instead of
// handing back an assigner that spins forever on first use.
func SmallProbs(mean float64) ProbAssigner {
	if !(mean > 0) {
		panic(fmt.Sprintf("gen: SmallProbs mean must be > 0, got %v", mean))
	}
	return func(rng *rand.Rand) float64 {
		for {
			p := rng.ExpFloat64() * mean
			if p > 0 && p <= 1 {
				return p
			}
		}
	}
}

// checkERShape validates the G(n, m) request shared by ErdosRenyi and
// StreamErdosRenyi. Beyond the impossible case (m over the complete-graph
// count), it rejects near-complete requests up front: both generators
// place edges by rejection sampling, whose expected retries per edge grow
// like maxEdges/(maxEdges-m), so asking for m within ~1% of complete
// degrades to quadratic-and-worse work. The cutoff only engages for
// graphs large enough (maxEdges >= 100) for the retry cost to matter; a
// deterministic precondition beats a retry counter, which would make
// failure a coin flip of the seed.
func checkERShape(n, m int) error {
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		return fmt.Errorf("gen: cannot place %d edges in a %d-vertex simple graph", m, n)
	}
	if maxEdges >= 100 && int64(m) > maxEdges-maxEdges/100 {
		return fmt.Errorf("gen: %d edges is within 1%% of the complete %d-vertex graph (%d); rejection sampling degenerates, generate the dense graph directly", m, n, maxEdges)
	}
	return nil
}

// ErdosRenyi generates G(n, m): m distinct uniformly random edges over n
// vertices, probabilities drawn from pa. Near-complete requests (m within
// ~1% of the complete-graph edge count) are rejected; see checkERShape.
func ErdosRenyi(n, m int, pa ProbAssigner, rng *rand.Rand) (*uncertain.Graph, error) {
	if err := checkERShape(n, m); err != nil {
		return nil, err
	}
	g := uncertain.New(n)
	for g.NumEdges() < m {
		u := uncertain.NodeID(rng.IntN(n))
		v := uncertain.NodeID(rng.IntN(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v, pa(rng)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// BarabasiAlbert generates a preferential-attachment graph: it starts from
// a small seed clique and attaches each new vertex to mPer existing
// vertices chosen proportionally to their current degree. The result has a
// heavy-tailed degree distribution, matching the social graphs of the
// paper (Fig. 3b).
func BarabasiAlbert(n, mPer int, pa ProbAssigner, rng *rand.Rand) (*uncertain.Graph, error) {
	if mPer < 1 {
		return nil, fmt.Errorf("gen: mPer must be >= 1, got %d", mPer)
	}
	if n <= mPer {
		return nil, fmt.Errorf("gen: need n > mPer (n=%d, mPer=%d)", n, mPer)
	}
	g := uncertain.New(n)
	// Seed: clique over the first mPer+1 vertices.
	var targets []uncertain.NodeID // degree-weighted sampling pool
	for u := 0; u <= mPer; u++ {
		for v := u + 1; v <= mPer; v++ {
			if err := g.AddEdge(uncertain.NodeID(u), uncertain.NodeID(v), pa(rng)); err != nil {
				return nil, err
			}
			targets = append(targets, uncertain.NodeID(u), uncertain.NodeID(v))
		}
	}
	for v := mPer + 1; v < n; v++ {
		seen := make(map[uncertain.NodeID]bool, mPer)
		chosen := make([]uncertain.NodeID, 0, mPer) // insertion order: deterministic per seed
		for len(chosen) < mPer {
			var t uncertain.NodeID
			if rng.Float64() < 0.05 || len(targets) == 0 {
				// Small uniform escape keeps the pool from collapsing.
				t = uncertain.NodeID(rng.IntN(v))
			} else {
				t = targets[rng.IntN(len(targets))]
			}
			if int(t) == v || seen[t] {
				continue
			}
			seen[t] = true
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			if err := g.AddEdge(uncertain.NodeID(v), t, pa(rng)); err != nil {
				return nil, err
			}
			targets = append(targets, uncertain.NodeID(v), t)
		}
	}
	return g, nil
}

// WattsStrogatz generates a small-world graph: a ring lattice where every
// vertex connects to its kHalf nearest neighbors on each side, with each
// edge rewired to a uniform random endpoint with probability beta.
// Probabilities are drawn from pa.
func WattsStrogatz(n, kHalf int, beta float64, pa ProbAssigner, rng *rand.Rand) (*uncertain.Graph, error) {
	if kHalf < 1 {
		return nil, fmt.Errorf("gen: kHalf must be >= 1, got %d", kHalf)
	}
	if n <= 2*kHalf {
		return nil, fmt.Errorf("gen: need n > 2*kHalf (n=%d, kHalf=%d)", n, kHalf)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: beta must be in [0,1], got %v", beta)
	}
	g := uncertain.New(n)
	for u := 0; u < n; u++ {
		for d := 1; d <= kHalf; d++ {
			v := (u + d) % n
			if rng.Float64() < beta {
				// Rewire: keep u, pick a fresh endpoint.
				for tries := 0; tries < 4*n; tries++ {
					w := rng.IntN(n)
					if w != u && !g.HasEdge(uncertain.NodeID(u), uncertain.NodeID(w)) {
						v = w
						break
					}
				}
			}
			if g.HasEdge(uncertain.NodeID(u), uncertain.NodeID(v)) || u == v {
				continue
			}
			if err := g.AddEdge(uncertain.NodeID(u), uncertain.NodeID(v), pa(rng)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// SBM generates a stochastic block model: vertices are split evenly into
// blocks; a pair inside a block becomes an edge with probability pin, a
// cross pair with probability pout. Useful for community-structured
// workloads (the "two reliable clusters" motif of Figure 5a).
func SBM(n, blocks int, pin, pout float64, pa ProbAssigner, rng *rand.Rand) (*uncertain.Graph, error) {
	if blocks < 1 || n < blocks {
		return nil, fmt.Errorf("gen: bad SBM shape n=%d blocks=%d", n, blocks)
	}
	g := uncertain.New(n)
	block := func(v int) int { return v * blocks / n }
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pout
			if block(u) == block(v) {
				p = pin
			}
			if rng.Float64() < p {
				if err := g.AddEdge(uncertain.NodeID(u), uncertain.NodeID(v), pa(rng)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
