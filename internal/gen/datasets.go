package gen

import (
	"fmt"
	"math/rand/v2"

	"chameleon/internal/uncertain"
)

// Dataset describes one of the paper's evaluation graphs (Table I) and the
// scaled synthetic stand-in built here. Real DBLP/BRIGHTKITE/PPI data is
// not redistributable, so each stand-in reproduces the published shape
// properties (Figure 3): topology family, probability profile, density and
// the relative privacy-tolerance ordering. The substitution rationale is
// documented in DESIGN.md §3.
type Dataset struct {
	Name       string  // canonical lowercase name, e.g. "dblp-s"
	PaperName  string  // name used in the paper, e.g. "DBLP"
	PaperNodes int     // |V| in the paper (Table I)
	PaperEdges int     // |E| in the paper (Table I)
	PaperMeanP float64 // mean edge probability in the paper
	PaperEps   float64 // tolerance level in the paper

	Nodes   int     // scaled |V|
	Epsilon float64 // scaled tolerance
	// Ks is the scaled obfuscation-level sweep standing in for the paper's
	// k in {100, 150, 200, 250, 300}. A naive k/|V| rescaling degenerates
	// (k < 2) at laptop scale, so each dataset instead carries a
	// regime-preserving sweep: the smallest k needs little or no noise and
	// the largest pushes against the tolerance, exactly the pressure range
	// the paper explores.
	Ks    []int
	Build func(rng *rand.Rand) (*uncertain.Graph, error)
}

// KScale maps a paper-scale obfuscation level (the paper sweeps
// k in [100, 300]) onto this dataset's regime-preserving sweep by linear
// position: 100 -> Ks[0], 300 -> Ks[len-1].
func (d Dataset) KScale(paperK int) int {
	if len(d.Ks) == 0 {
		k := int(float64(paperK) * float64(d.Nodes) / float64(d.PaperNodes))
		if k < 2 {
			k = 2
		}
		return k
	}
	f := (float64(paperK) - 100) / 200
	if f < 0 {
		f = 0
	} else if f > 1 {
		f = 1
	}
	idx := int(f*float64(len(d.Ks)-1) + 0.5)
	return d.Ks[idx]
}

// Datasets returns the three scaled evaluation datasets in the paper's
// order: DBLP, BRIGHTKITE, PPI.
func Datasets() []Dataset {
	return []Dataset{DBLPScaled(), BrightkiteScaled(), PPIScaled()}
}

// DatasetByName returns the dataset with the given Name.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
}

// DBLPScaled is a stand-in for the DBLP co-authorship network: power-law
// topology, probabilities drawn from a handful of discrete predictor
// outputs with mean ~0.46.
func DBLPScaled() Dataset {
	return Dataset{
		Name:       "dblp-s",
		PaperName:  "DBLP",
		PaperNodes: 824774,
		PaperEdges: 5566096,
		PaperMeanP: 0.46,
		PaperEps:   1e-4,
		Nodes:      2400,
		Epsilon:    5e-3,
		Ks:         []int{5, 10, 15, 20, 25},
		Build: func(rng *rand.Rand) (*uncertain.Graph, error) {
			pa := DiscreteProbs(
				[]float64{0.13, 0.28, 0.46, 0.64, 0.80},
				[]float64{0.15, 0.23, 0.27, 0.22, 0.13},
			)
			return BarabasiAlbert(2400, 3, pa, rng)
		},
	}
}

// BrightkiteScaled is a stand-in for the BRIGHTKITE location-based social
// network: power-law topology with predominantly small probabilities
// (mean ~0.29).
func BrightkiteScaled() Dataset {
	return Dataset{
		Name:       "brightkite-s",
		PaperName:  "BRIGHTKITE",
		PaperNodes: 58228,
		PaperEdges: 214078,
		PaperMeanP: 0.29,
		PaperEps:   1e-3,
		Nodes:      1800,
		Epsilon:    1e-2,
		Ks:         []int{20, 40, 80, 120, 160},
		Build: func(rng *rand.Rand) (*uncertain.Graph, error) {
			return BarabasiAlbert(1800, 2, SmallProbs(0.29), rng)
		},
	}
}

// PPIScaled is a stand-in for the DREAM-challenge protein-protein
// interaction network: denser, flatter topology with a near-uniform
// probability profile (mean ~0.29).
func PPIScaled() Dataset {
	return Dataset{
		Name:       "ppi-s",
		PaperName:  "PPI",
		PaperNodes: 12420,
		PaperEdges: 397309,
		PaperMeanP: 0.29,
		PaperEps:   1e-2,
		Nodes:      1200,
		Epsilon:    2e-2,
		Ks:         []int{10, 20, 30, 40, 60},
		Build: func(rng *rand.Rand) (*uncertain.Graph, error) {
			// Dense preferential attachment: PPI is an order of magnitude
			// denser than the social graphs and, like them, keeps a
			// heavy-tailed hub structure (Fig. 3b shows unique high-degree
			// nodes in all three datasets).
			return BarabasiAlbert(1200, 10, UniformProbs(0.02, 0.56), rng)
		},
	}
}
