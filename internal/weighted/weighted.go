// Package weighted extends the uncertain-graph model with edge weights,
// covering the road-network motivation of the paper's related-work
// discussion: "each link in the road network can be weighted indicating
// the distance or travel time between them, and a probability can be
// assigned to model the likelihood of a traffic jam" [19]. Casting
// probabilities into weights is exactly the fallacy the paper warns
// against; here the two attributes coexist — weights describe cost,
// probabilities describe existence — and anonymization perturbs only the
// probabilities.
package weighted

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"chameleon/internal/uncertain"
)

// Graph is an uncertain graph whose edges additionally carry a
// non-negative weight (distance, travel time, cost). The weight vector is
// indexed by the underlying graph's edge indices.
type Graph struct {
	g *uncertain.Graph
	w []float64
}

// ErrWeightMismatch is returned when a weight vector does not line up
// with the edge list.
var ErrWeightMismatch = errors.New("weighted: weight vector does not match edge count")

// New wraps an uncertain graph with per-edge weights. weights[i] belongs
// to g.Edge(i); the slice is copied.
func New(g *uncertain.Graph, weights []float64) (*Graph, error) {
	if len(weights) != g.NumEdges() {
		return nil, fmt.Errorf("%w: %d weights for %d edges", ErrWeightMismatch, len(weights), g.NumEdges())
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("weighted: bad weight %v on edge %d", w, i)
		}
	}
	return &Graph{g: g, w: append([]float64(nil), weights...)}, nil
}

// Uniform wraps g with unit weights on every edge.
func Uniform(g *uncertain.Graph) *Graph {
	w := make([]float64, g.NumEdges())
	for i := range w {
		w[i] = 1
	}
	wg, err := New(g, w)
	if err != nil {
		panic(err) // unreachable: unit weights are always valid
	}
	return wg
}

// Uncertain returns the underlying probabilistic graph.
func (wg *Graph) Uncertain() *uncertain.Graph { return wg.g }

// Weight returns the weight of edge i.
func (wg *Graph) Weight(i int) float64 { return wg.w[i] }

// Weights returns a copy of the weight vector.
func (wg *Graph) Weights() []float64 { return append([]float64(nil), wg.w...) }

// WithProbabilities rebinds the same weights to a graph with identical
// edge identity but different probabilities — e.g. an anonymized version
// produced by the Chameleon pipeline. Every original edge must still be
// present; edges injected by the anonymizer receive the given
// defaultWeight.
func (wg *Graph) WithProbabilities(pub *uncertain.Graph, defaultWeight float64) (*Graph, error) {
	if pub.NumNodes() != wg.g.NumNodes() {
		return nil, fmt.Errorf("weighted: vertex count mismatch %d vs %d", pub.NumNodes(), wg.g.NumNodes())
	}
	if defaultWeight < 0 || math.IsNaN(defaultWeight) {
		return nil, fmt.Errorf("weighted: bad default weight %v", defaultWeight)
	}
	w := make([]float64, pub.NumEdges())
	for i := 0; i < pub.NumEdges(); i++ {
		e := pub.Edge(i)
		if j := wg.g.EdgeIndex(e.U, e.V); j >= 0 {
			w[i] = wg.w[j]
		} else {
			w[i] = defaultWeight
		}
	}
	return New(pub, w)
}

// Dijkstra computes single-source weighted shortest-path distances from
// src within one sampled world. Unreachable vertices get +Inf.
func (wg *Graph) Dijkstra(w *uncertain.World, src uncertain.NodeID) []float64 {
	n := wg.g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{node: src, d: 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(distEntry)
		if top.d > dist[top.node] {
			continue
		}
		var edges []int32
		edges = wg.g.IncidentEdges(top.node, edges)
		for _, ei := range edges {
			if !w.Present(int(ei)) {
				continue
			}
			e := wg.g.Edge(int(ei))
			to := e.U
			if to == top.node {
				to = e.V
			}
			if nd := top.d + wg.w[ei]; nd < dist[to] {
				dist[to] = nd
				heap.Push(pq, distEntry{node: to, d: nd})
			}
		}
	}
	return dist
}

type distEntry struct {
	node uncertain.NodeID
	d    float64
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// Options configures the Monte Carlo travel estimators.
type Options struct {
	// Samples is the number of sampled worlds (default 200).
	Samples int
	// Sources is the number of random Dijkstra sources per world
	// (default 16, capped at |V|).
	Sources int
	// Seed drives sampling.
	Seed uint64
	// Workers caps parallelism; 0 = GOMAXPROCS.
	Workers int
}

func (o Options) withDefaults(n int) Options {
	if o.Samples <= 0 {
		o.Samples = 200
	}
	if o.Sources <= 0 {
		o.Sources = 16
	}
	if o.Sources > n {
		o.Sources = n
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// TravelStats summarizes expected weighted reachability.
type TravelStats struct {
	// MeanCost is the average weighted shortest-path cost over reachable
	// source-destination pairs and sampled worlds.
	MeanCost float64
	// Reachability is the average fraction of destinations reachable from
	// a source.
	Reachability float64
}

// ExpectedTravel estimates the expected weighted shortest-path cost and
// reachability under possible-world semantics: worlds are sampled from
// the existence probabilities, then Dijkstra runs over the surviving
// edges with their weights.
func (wg *Graph) ExpectedTravel(o Options) TravelStats {
	n := wg.g.NumNodes()
	if n < 2 {
		return TravelStats{}
	}
	o = o.withDefaults(n)

	type result struct {
		cost  float64
		pairs int
		reach int
		total int
	}
	results := make([]result, o.Samples)
	var wgrp sync.WaitGroup
	jobs := make(chan int, o.Workers)
	for w := 0; w < o.Workers; w++ {
		wgrp.Add(1)
		go func() {
			defer wgrp.Done()
			for i := range jobs {
				rng := rand.New(rand.NewPCG(o.Seed, uint64(i)+1))
				world := wg.g.SampleWorld(rng)
				var r result
				for s := 0; s < o.Sources; s++ {
					src := uncertain.NodeID(rng.IntN(n))
					dist := wg.Dijkstra(world, src)
					for v, d := range dist {
						if uncertain.NodeID(v) == src {
							continue
						}
						r.total++
						if !math.IsInf(d, 1) {
							r.reach++
							r.cost += d
							r.pairs++
						}
					}
				}
				results[i] = r
			}
		}()
	}
	for i := 0; i < o.Samples; i++ {
		jobs <- i
	}
	close(jobs)
	wgrp.Wait()

	var agg result
	for _, r := range results {
		agg.cost += r.cost
		agg.pairs += r.pairs
		agg.reach += r.reach
		agg.total += r.total
	}
	out := TravelStats{}
	if agg.pairs > 0 {
		out.MeanCost = agg.cost / float64(agg.pairs)
	}
	if agg.total > 0 {
		out.Reachability = float64(agg.reach) / float64(agg.total)
	}
	return out
}
